package engine

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"
)

// streamNext adapts a slice of requests into a SolveBatchStream next
// function, optionally failing at a fixed index.
func streamNext(reqs []*Request, failAt int, failErr error) func() (*Request, error) {
	i := 0
	return func() (*Request, error) {
		if i == failAt && failErr != nil {
			return nil, failErr
		}
		if i >= len(reqs) {
			return nil, io.EOF
		}
		r := reqs[i]
		i++
		return r, nil
	}
}

func streamReqs(t *testing.T, count int) []*Request {
	t.Helper()
	reqs := make([]*Request, count)
	// Distinct thread counts let the order check identify each response
	// by the length of its assignment.
	for i, in := range corpus(t, count, 8) {
		reqs[i] = &Request{Instance: in, Backend: "a2", WantUtility: true}
	}
	return reqs
}

// TestSolveBatchStreamMatchesBatch pins the pipelining contract:
// responses come back strictly in input order and bit-identical to the
// plain batch path, regardless of which solve finishes first.
func TestSolveBatchStreamMatchesBatch(t *testing.T) {
	eng := New(Options{Workers: 4})
	defer eng.Close()
	ctx := context.Background()
	reqs := streamReqs(t, 24)

	want, err := eng.SolveBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Response
	n, err := eng.SolveBatchStream(ctx, streamNext(reqs, -1, nil), func(r *Response) error {
		got = append(got, r)
		return nil
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(reqs) || len(got) != len(reqs) {
		t.Fatalf("emitted %d responses (callback saw %d), want %d", n, len(got), len(reqs))
	}
	for i := range want {
		sameAssignment(t, "stream", got[i].Assignment, want[i].Assignment)
		if got[i].Utility != want[i].Utility {
			t.Fatalf("response %d: utility %v, want %v", i, got[i].Utility, want[i].Utility)
		}
	}
}

// TestSolveBatchStreamSolveError: a mid-stream solve failure surfaces in
// input order — every response before the failing request is emitted,
// nothing after it is.
func TestSolveBatchStreamSolveError(t *testing.T) {
	eng := New(Options{Workers: 4})
	defer eng.Close()
	reqs := streamReqs(t, 12)
	const bad = 7
	reqs[bad] = &Request{Instance: reqs[bad].Instance, Backend: "nope"}

	n, err := eng.SolveBatchStream(context.Background(), streamNext(reqs, -1, nil), func(*Response) error {
		return nil
	}, 4)
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("err = %v, want ErrUnknownBackend", err)
	}
	if n != bad {
		t.Fatalf("emitted %d responses before the failure, want %d", n, bad)
	}
}

// TestSolveBatchStreamNextError: a decode failure takes the slot of the
// request it failed to produce, so earlier responses still emit first
// and the error comes back verbatim.
func TestSolveBatchStreamNextError(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()
	reqs := streamReqs(t, 9)
	const bad = 5
	boom := errors.New("instance 5: mangled")

	n, err := eng.SolveBatchStream(context.Background(), streamNext(reqs, bad, boom), func(*Response) error {
		return nil
	}, 3)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n != bad {
		t.Fatalf("emitted %d responses before the decode failure, want %d", n, bad)
	}
}

// TestSolveBatchStreamEmitError: an emit failure stops the stream and
// is returned as the stream error.
func TestSolveBatchStreamEmitError(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()
	reqs := streamReqs(t, 8)
	boom := errors.New("client went away")

	emitted := 0
	n, err := eng.SolveBatchStream(context.Background(), streamNext(reqs, -1, nil), func(*Response) error {
		if emitted == 4 {
			return boom
		}
		emitted++
		return nil
	}, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n != 4 {
		t.Fatalf("emitted %d responses before the write failure, want 4", n)
	}
}

// TestSolveBatchStreamBounded: the decoder never runs more than the
// in-flight window (plus the request being decoded) ahead of the
// emitter — the bounded-memory contract. The emitter refuses to advance
// until it observes the bound held at every next call.
func TestSolveBatchStreamBounded(t *testing.T) {
	eng := New(Options{Workers: 4})
	defer eng.Close()
	reqs := streamReqs(t, 30)
	const win = 3

	// emitted crosses goroutines: emit advances it on the caller's
	// goroutine while next reads it on the producer's, so it must be
	// atomic. A stale read only makes the assertion stricter. decoded
	// stays plain — only next (serialized) touches it.
	decoded := 0
	var emitted atomic.Int64
	next := func() (*Request, error) {
		if ahead := decoded - int(emitted.Load()); ahead > win+1 {
			t.Errorf("decoder %d requests ahead of emitter, window is %d", ahead, win)
		}
		if decoded >= len(reqs) {
			return nil, io.EOF
		}
		r := reqs[decoded]
		decoded++
		return r, nil
	}
	n, err := eng.SolveBatchStream(context.Background(), next, func(*Response) error {
		emitted.Add(1)
		return nil
	}, win)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(reqs) {
		t.Fatalf("emitted %d, want %d", n, len(reqs))
	}
}

// TestSolveBatchStreamEmpty: an immediately-exhausted stream emits
// nothing and returns cleanly.
func TestSolveBatchStreamEmpty(t *testing.T) {
	eng := New(Options{Workers: 1})
	defer eng.Close()
	n, err := eng.SolveBatchStream(context.Background(), streamNext(nil, -1, nil), func(*Response) error {
		t.Fatal("emit called on an empty stream")
		return nil
	}, 0)
	if err != nil || n != 0 {
		t.Fatalf("got (%d, %v), want (0, nil)", n, err)
	}
}

// TestSolveBatchStreamCancel: cancelling the caller's context tears the
// stream down with context.Canceled.
func TestSolveBatchStreamCancel(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()
	reqs := streamReqs(t, 16)
	ctx, cancel := context.WithCancel(context.Background())

	n, err := eng.SolveBatchStream(ctx, streamNext(reqs, -1, nil), func(*Response) error {
		cancel()
		return nil
	}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n > len(reqs) {
		t.Fatalf("emitted %d of %d", n, len(reqs))
	}
}
