// Package interp provides shape-preserving interpolation of sampled curves.
//
// The centerpiece is PCHIP — Piecewise Cubic Hermite Interpolating
// Polynomial with Fritsch–Carlson slope limiting — which is the same
// algorithm behind Matlab's pchip function used by the paper's workload
// generator (IPDPS'16, §VII). PCHIP preserves monotonicity of the data: if
// the sample values are nondecreasing, the interpolant is nondecreasing
// everywhere, which is exactly the property utility functions require.
//
// A simpler piecewise-linear interpolant is also provided; it additionally
// preserves concavity exactly (a chord interpolant of concave data is
// concave), which some callers prefer over PCHIP's smoothness.
package interp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Curve is a one-dimensional interpolant over a finite domain.
type Curve interface {
	// At evaluates the curve at x. Arguments outside [Min, Max] are
	// clamped to the domain boundary.
	At(x float64) float64
	// DerivAt evaluates the first derivative at x (one-sided at the
	// domain boundaries, and from the right at interior knots).
	DerivAt(x float64) float64
	// Min returns the left end of the domain.
	Min() float64
	// Max returns the right end of the domain.
	Max() float64
}

// Common validation errors.
var (
	ErrTooFewPoints   = errors.New("interp: need at least two sample points")
	ErrLengthMismatch = errors.New("interp: xs and ys have different lengths")
	ErrNotIncreasing  = errors.New("interp: xs must be strictly increasing")
	ErrNonFinite      = errors.New("interp: sample contains NaN or Inf")
)

func validate(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return ErrLengthMismatch
	}
	if len(xs) < 2 {
		return ErrTooFewPoints
	}
	for i := range xs {
		if !isFinite(xs[i]) || !isFinite(ys[i]) {
			return ErrNonFinite
		}
		if i > 0 && xs[i] <= xs[i-1] {
			return fmt.Errorf("%w: xs[%d]=%v <= xs[%d]=%v",
				ErrNotIncreasing, i, xs[i], i-1, xs[i-1])
		}
	}
	return nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// locate returns the index i of the knot interval [xs[i], xs[i+1]]
// containing x, clamping to the first or last interval.
func locate(xs []float64, x float64) int {
	n := len(xs)
	if x <= xs[0] {
		return 0
	}
	if x >= xs[n-1] {
		return n - 2
	}
	// sort.SearchFloat64s returns the smallest i with xs[i] >= x.
	i := sort.SearchFloat64s(xs, x)
	if xs[i] == x {
		return min(i, n-2)
	}
	return i - 1
}

// Linear is a piecewise-linear interpolant. It preserves both monotonicity
// and concavity/convexity of the data exactly.
type Linear struct {
	xs, ys []float64
}

// NewLinear builds a piecewise-linear interpolant through (xs[i], ys[i]).
// xs must be strictly increasing. The slices are copied.
func NewLinear(xs, ys []float64) (*Linear, error) {
	if err := validate(xs, ys); err != nil {
		return nil, err
	}
	l := &Linear{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	}
	return l, nil
}

// At evaluates the interpolant, clamping x to the domain.
func (l *Linear) At(x float64) float64 {
	if x <= l.xs[0] {
		return l.ys[0]
	}
	n := len(l.xs)
	if x >= l.xs[n-1] {
		return l.ys[n-1]
	}
	i := locate(l.xs, x)
	t := (x - l.xs[i]) / (l.xs[i+1] - l.xs[i])
	return l.ys[i] + t*(l.ys[i+1]-l.ys[i])
}

// DerivAt returns the slope of the segment containing x.
func (l *Linear) DerivAt(x float64) float64 {
	i := locate(l.xs, x)
	return (l.ys[i+1] - l.ys[i]) / (l.xs[i+1] - l.xs[i])
}

// Min returns the left end of the domain.
func (l *Linear) Min() float64 { return l.xs[0] }

// Max returns the right end of the domain.
func (l *Linear) Max() float64 { return l.xs[len(l.xs)-1] }

// InvDeriv returns the right endpoint of the last segment in the initial
// run of segments with slope >= lambda, or Min() when the first segment is
// already below lambda. For concave data (nonincreasing slopes) this is the
// largest x with DerivAt(x) >= lambda.
func (l *Linear) InvDeriv(lambda float64) float64 {
	best := l.xs[0]
	for i := 0; i+1 < len(l.xs); i++ {
		if (l.ys[i+1]-l.ys[i])/(l.xs[i+1]-l.xs[i]) < lambda {
			break
		}
		best = l.xs[i+1]
	}
	return best
}

// Knots returns copies of the sample points.
func (l *Linear) Knots() (xs, ys []float64) {
	return append([]float64(nil), l.xs...), append([]float64(nil), l.ys...)
}

// KnotCount returns the number of sample points.
func (l *Linear) KnotCount() int { return len(l.xs) }

// Knot returns the i-th sample point without copying the knot slices.
func (l *Linear) Knot(i int) (x, y float64) { return l.xs[i], l.ys[i] }

// PCHIP is a piecewise cubic Hermite interpolant with Fritsch–Carlson
// monotone slope limiting — the algorithm behind Matlab's pchip.
//
// Within each interval [x_i, x_{i+1}] the curve is the cubic Hermite
// polynomial matching the data values and the limited derivative estimates
// d_i, d_{i+1}. The Fritsch–Carlson limiter guarantees the interpolant is
// monotone on every interval where the data is monotone, and has no
// overshoot at local extrema.
type PCHIP struct {
	xs, ys []float64
	d      []float64 // limited derivative at each knot
}

// NewPCHIP builds a monotone piecewise-cubic interpolant through
// (xs[i], ys[i]). xs must be strictly increasing. The slices are copied.
func NewPCHIP(xs, ys []float64) (*PCHIP, error) {
	if err := validate(xs, ys); err != nil {
		return nil, err
	}
	p := &PCHIP{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	}
	p.d = pchipSlopes(p.xs, p.ys)
	return p, nil
}

// pchipSlopes computes the Fritsch–Carlson limited derivatives.
func pchipSlopes(xs, ys []float64) []float64 {
	n := len(xs)
	d := make([]float64, n)
	if n == 2 {
		s := (ys[1] - ys[0]) / (xs[1] - xs[0])
		d[0], d[1] = s, s
		return d
	}
	h := make([]float64, n-1)   // interval widths
	del := make([]float64, n-1) // secant slopes
	for i := 0; i < n-1; i++ {
		h[i] = xs[i+1] - xs[i]
		del[i] = (ys[i+1] - ys[i]) / h[i]
	}
	// Interior knots: weighted harmonic mean of adjacent secants when they
	// have the same sign, zero otherwise (Fritsch–Carlson / Matlab pchip).
	for i := 1; i < n-1; i++ {
		if del[i-1]*del[i] <= 0 {
			d[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		d[i] = (w1 + w2) / (w1/del[i-1] + w2/del[i])
	}
	d[0] = edgeSlope(h[0], h[1], del[0], del[1])
	d[n-1] = edgeSlope(h[n-2], h[n-3], del[n-2], del[n-3])
	return d
}

// edgeSlope is the non-centered three-point endpoint formula with the
// shape-preserving clamps used by Matlab's pchip.
func edgeSlope(h0, h1, del0, del1 float64) float64 {
	d := ((2*h0+h1)*del0 - h0*del1) / (h0 + h1)
	if sign(d) != sign(del0) {
		return 0
	}
	if sign(del0) != sign(del1) && abs(d) > 3*abs(del0) {
		return 3 * del0
	}
	return d
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// At evaluates the interpolant, clamping x to the domain.
func (p *PCHIP) At(x float64) float64 {
	n := len(p.xs)
	if x <= p.xs[0] {
		return p.ys[0]
	}
	if x >= p.xs[n-1] {
		return p.ys[n-1]
	}
	i := locate(p.xs, x)
	h := p.xs[i+1] - p.xs[i]
	t := (x - p.xs[i]) / h
	// Cubic Hermite basis.
	t2 := t * t
	t3 := t2 * t
	h00 := 2*t3 - 3*t2 + 1
	h10 := t3 - 2*t2 + t
	h01 := -2*t3 + 3*t2
	h11 := t3 - t2
	return h00*p.ys[i] + h10*h*p.d[i] + h01*p.ys[i+1] + h11*h*p.d[i+1]
}

// DerivAt evaluates the derivative of the interpolant at x (clamped to the
// domain; zero outside, matching the flat extension used by At).
func (p *PCHIP) DerivAt(x float64) float64 {
	n := len(p.xs)
	if x < p.xs[0] || x > p.xs[n-1] {
		return 0
	}
	i := locate(p.xs, x)
	h := p.xs[i+1] - p.xs[i]
	t := (x - p.xs[i]) / h
	t2 := t * t
	dh00 := (6*t2 - 6*t) / h
	dh10 := 3*t2 - 4*t + 1
	dh01 := (-6*t2 + 6*t) / h
	dh11 := 3*t2 - 2*t
	return dh00*p.ys[i] + dh10*p.d[i] + dh01*p.ys[i+1] + dh11*p.d[i+1]
}

// Min returns the left end of the domain.
func (p *PCHIP) Min() float64 { return p.xs[0] }

// Max returns the right end of the domain.
func (p *PCHIP) Max() float64 { return p.xs[len(p.xs)-1] }

// InvDeriv returns the largest x in the domain with DerivAt(x) >= lambda,
// or Min() when the derivative is below lambda everywhere.
//
// Within a knot interval the Hermite derivative is the quadratic
//
//	p'(t) = A·t² + B·t + C,  t = (x - x_i)/h,
//	A = 3(d_i + d_{i+1}) - 6Δ,  B = 6Δ - 4d_i - 2d_{i+1},  C = d_i,
//
// where Δ is the secant slope, so the superlevel set {p' >= λ} is resolved
// exactly per segment by a quadratic solve. Segments are scanned right to
// left and the first nonempty superlevel set yields the supremum. This is
// O(#segments) with no curve evaluations, replacing the generic derivative
// bisection (~50 DerivAt calls per query) for callers that need the inverse
// in a hot loop.
func (p *PCHIP) InvDeriv(lambda float64) float64 {
	for i := len(p.xs) - 2; i >= 0; i-- {
		h := p.xs[i+1] - p.xs[i]
		del := (p.ys[i+1] - p.ys[i]) / h
		a := 3*(p.d[i]+p.d[i+1]) - 6*del
		b := 6*del - 4*p.d[i] - 2*p.d[i+1]
		if t, ok := largestSuplevel(a, b, p.d[i]-lambda); ok {
			x := p.xs[i] + t*h
			// Guard the affine map against rounding past the interval.
			if x > p.xs[i+1] {
				x = p.xs[i+1]
			}
			if x < p.xs[i] {
				x = p.xs[i]
			}
			return x
		}
	}
	return p.xs[0]
}

// largestSuplevel returns sup{t ∈ [0,1] : q(t) >= 0} for the quadratic
// q(t) = a·t² + b·t + c, and whether that set is nonempty.
func largestSuplevel(a, b, c float64) (float64, bool) {
	if a+b+c >= 0 { // q(1) >= 0: the supremum is the right endpoint.
		return 1, true
	}
	if a == 0 {
		if b <= 0 {
			// Constant or decreasing with q(1) < 0: q >= 0 up to the
			// single crossing, if it lies in the interval at all.
			if b == 0 {
				return 0, c >= 0
			}
			t := -c / b
			return t, t >= 0
		}
		return 0, false // increasing with q(1) < 0: negative throughout
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, false // no real roots and q(1) < 0: negative throughout
	}
	// Numerically stable root pair (avoids cancellation in -b ± √disc).
	s := math.Sqrt(disc)
	var w float64
	if b >= 0 {
		w = -0.5 * (b + s)
	} else {
		w = -0.5 * (b - s)
	}
	r1 := w / a
	r2 := 0.0
	if w != 0 {
		r2 = c / w
	}
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	if a < 0 {
		// Concave parabola: q >= 0 exactly on [r1, r2]. Since q(1) < 0 the
		// interval lies entirely left or right of 1.
		if r1 > 1 {
			return 0, false
		}
		return r2, r2 >= 0
	}
	// Convex parabola: q >= 0 on (-∞, r1] ∪ [r2, ∞); q(1) < 0 pins
	// 1 ∈ (r1, r2), so within [0,1] only [0, r1] can qualify.
	return r1, r1 >= 0
}

// Knots returns copies of the sample points.
func (p *PCHIP) Knots() (xs, ys []float64) {
	return append([]float64(nil), p.xs...), append([]float64(nil), p.ys...)
}

// KnotCount returns the number of sample points.
func (p *PCHIP) KnotCount() int { return len(p.xs) }

// Knot returns the i-th sample point without copying the knot slices.
func (p *PCHIP) Knot(i int) (x, y float64) { return p.xs[i], p.ys[i] }

// Slopes returns a copy of the limited knot derivatives.
func (p *PCHIP) Slopes() []float64 { return append([]float64(nil), p.d...) }

// IsMonotoneNondecreasing reports whether the sampled data is nondecreasing.
func IsMonotoneNondecreasing(ys []float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			return false
		}
	}
	return true
}

// IsConcaveData reports whether the sampled points (xs, ys) lie on a concave
// sequence, i.e. the secant slopes are nonincreasing up to tol.
func IsConcaveData(xs, ys []float64, tol float64) bool {
	if len(xs) != len(ys) || len(xs) < 3 {
		return true
	}
	prev := (ys[1] - ys[0]) / (xs[1] - xs[0])
	for i := 1; i < len(xs)-1; i++ {
		s := (ys[i+1] - ys[i]) / (xs[i+1] - xs[i])
		if s > prev+tol {
			return false
		}
		prev = s
	}
	return true
}
