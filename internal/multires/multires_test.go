package multires

import (
	"math"
	"testing"

	"aa/internal/alloc"
	"aa/internal/rng"
	"aa/internal/utility"
)

func randomInstance(r *rng.Rand, n, m, d int) *Instance {
	caps := make([]float64, d)
	for k := range caps {
		caps[k] = r.Uniform(50, 150)
	}
	in := &Instance{M: m, Cap: caps}
	for i := 0; i < n; i++ {
		w := make([]float64, d)
		for k := range w {
			w[k] = r.Uniform(0.1, 2)
		}
		var g utility.Func
		switch r.Intn(3) {
		case 0:
			g = utility.Log{Scale: r.Uniform(0.5, 4), Shift: r.Uniform(1, 20), C: 1000}
		case 1:
			g = utility.Power{Scale: r.Uniform(0.5, 2), Beta: r.Uniform(0.3, 0.9), C: 1000}
		default:
			g = utility.SatExp{Scale: r.Uniform(0.5, 4), K: r.Uniform(5, 40), C: 1000}
		}
		in.Threads = append(in.Threads, Thread{G: g, W: w})
	}
	return in
}

func TestValidate(t *testing.T) {
	in := randomInstance(rng.New(1), 4, 2, 3)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	lin := utility.Linear{Slope: 1, C: 10}
	bad := []*Instance{
		{M: 0, Cap: []float64{1}, Threads: []Thread{{G: lin, W: []float64{1}}}},
		{M: 1, Cap: nil, Threads: []Thread{{G: lin, W: []float64{1}}}},
		{M: 1, Cap: []float64{0}, Threads: []Thread{{G: lin, W: []float64{1}}}},
		{M: 1, Cap: []float64{1}},
		{M: 1, Cap: []float64{1}, Threads: []Thread{{W: []float64{1}}}},
		{M: 1, Cap: []float64{1}, Threads: []Thread{{G: lin, W: []float64{1, 2}}}},
		{M: 1, Cap: []float64{1}, Threads: []Thread{{G: lin, W: []float64{-1}}}},
		{M: 1, Cap: []float64{1}, Threads: []Thread{{G: lin, W: []float64{0}}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMaxBundles(t *testing.T) {
	in := &Instance{
		M:   1,
		Cap: []float64{100, 60},
		Threads: []Thread{
			{G: utility.Linear{Slope: 1, C: 1000}, W: []float64{2, 1}},  // CPU-bound: 50
			{G: utility.Linear{Slope: 1, C: 1000}, W: []float64{1, 3}},  // mem-bound: 20
			{G: utility.Linear{Slope: 1, C: 5}, W: []float64{0.1, 0.1}}, // G-capped: 5
		},
	}
	want := []float64{50, 20, 5}
	for i, w := range want {
		if got := in.MaxBundles(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("MaxBundles(%d) = %v, want %v", i, got, w)
		}
	}
}

// With one resource type, Allocate must match the scalar Fox greedy.
func TestAllocateReducesToScalarGreedy(t *testing.T) {
	fs := []utility.Func{
		utility.Log{Scale: 3, Shift: 10, C: 100},
		utility.SatExp{Scale: 4, K: 20, C: 100},
		utility.Power{Scale: 1, Beta: 0.5, C: 100},
	}
	threads := make([]Thread, len(fs))
	for i, f := range fs {
		threads[i] = Thread{G: f, W: []float64{1}}
	}
	bundles, total := Allocate([]float64{90}, threads, 1)
	want := alloc.Greedy(fs, 90, 1)
	if math.Abs(total-want.Total) > 1e-9 {
		t.Errorf("multi-res total %v != scalar greedy %v", total, want.Total)
	}
	for i := range bundles {
		if math.Abs(bundles[i]-want.Alloc[i]) > 1e-9 {
			t.Errorf("thread %d: %v vs %v", i, bundles[i], want.Alloc[i])
		}
	}
}

func TestAllocateRespectsEveryResource(t *testing.T) {
	threads := []Thread{
		{G: utility.Linear{Slope: 1, C: 1000}, W: []float64{1, 0.1}},
		{G: utility.Linear{Slope: 1, C: 1000}, W: []float64{0.1, 1}},
	}
	cap := []float64{10, 10}
	bundles, _ := Allocate(cap, threads, 0.5)
	for k := range cap {
		used := 0.0
		for i, t := range threads {
			used += bundles[i] * t.W[k]
		}
		if used > cap[k]+1e-9 {
			t.Errorf("resource %d overused: %v > %v", k, used, cap[k])
		}
	}
}

func TestAllocateBottleneckOnly(t *testing.T) {
	// Thread demands nothing of resource 1; only resource 0 limits it.
	threads := []Thread{
		{G: utility.Linear{Slope: 1, C: 1000}, W: []float64{1, 0}},
	}
	bundles, total := Allocate([]float64{20, 5}, threads, 1)
	if bundles[0] != 20 || total != 20 {
		t.Errorf("bundles %v, total %v, want 20", bundles[0], total)
	}
}

func TestAllocateDegenerate(t *testing.T) {
	if b, total := Allocate([]float64{10}, nil, 1); len(b) != 0 || total != 0 {
		t.Error("empty threads")
	}
	threads := []Thread{{G: utility.Linear{Slope: 1, C: 10}, W: []float64{1}}}
	if _, total := Allocate([]float64{10}, threads, 0); total != 0 {
		t.Error("zero unit should allocate nothing")
	}
}

func TestAssignFeasibleRandom(t *testing.T) {
	base := rng.New(7)
	for trial := 0; trial < 15; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 2+r.Intn(15), 1+r.Intn(4), 1+r.Intn(3))
		a := Assign(in, 0.5)
		if err := a.Validate(in, 1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestAssignDominatesRoundRobin(t *testing.T) {
	base := rng.New(8)
	wins, total := 0, 0
	for trial := 0; trial < 15; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 6+r.Intn(12), 2+r.Intn(3), 2)
		a := Assign(in, 0.5)
		rr := AssignRoundRobin(in, 0.5)
		if err := rr.Validate(in, 1e-9); err != nil {
			t.Fatalf("trial %d rr: %v", trial, err)
		}
		total++
		if a.Utility(in) >= rr.Utility(in)*(1-1e-9) {
			wins++
		}
	}
	if wins < total-1 { // allow one tie-breaking fluke
		t.Errorf("Assign beat round robin in only %d/%d trials", wins, total)
	}
}

func TestAssignSingleServerMatchesAllocate(t *testing.T) {
	r := rng.New(9)
	in := randomInstance(r, 8, 1, 2)
	a := Assign(in, 0.25)
	_, want := Allocate(in.Cap, in.Threads, 0.25)
	if got := a.Utility(in); math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("single-server Assign %v != Allocate %v", got, want)
	}
}

func TestComplementaryThreadsPack(t *testing.T) {
	// CPU-heavy and memory-heavy threads are complementary: a smart
	// assignment pairs them on the same server rather than grouping
	// same-shaped threads. With 2 servers and 4 threads (2 CPU-heavy,
	// 2 mem-heavy), pairing unlike threads doubles total bundles.
	mk := func(w []float64) Thread {
		return Thread{G: utility.Linear{Slope: 1, C: 1000}, W: w}
	}
	in := &Instance{
		M:   2,
		Cap: []float64{100, 100},
		Threads: []Thread{
			mk([]float64{2, 0.2}), mk([]float64{2, 0.2}), // CPU-heavy
			mk([]float64{0.2, 2}), mk([]float64{0.2, 2}), // mem-heavy
		},
	}
	a := Assign(in, 0.5)
	if err := a.Validate(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	// The unlike pairing achieves ~45.5 bundles per pair (t solves
	// 2.2t ≤ 100 per resource), i.e. ~90 bundles per server vs ~50 for
	// like pairing. Require comfortably above the like-pairing total.
	likeTotal := 2 * (100.0 / 2) // two servers, each pair sharing its bottleneck
	if u := a.Utility(in); u < likeTotal*1.3 {
		t.Errorf("total %v suggests like-threads were grouped (like pairing = %v)", u, likeTotal)
	}
}
