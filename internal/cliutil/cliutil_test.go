package cliutil

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"aa/internal/check"
)

func TestParseHelpPrintsSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("aathing", flag.ContinueOnError)
	var c Common
	c.AddFlags(fs)
	var stderr bytes.Buffer
	err := Parse(fs, []string{"-h"}, &stderr)
	if !errors.Is(err, ErrHelp) {
		t.Fatalf("-h returned %v, want ErrHelp", err)
	}
	for _, flagName := range []string{"-metrics-addr", "-trace-out", "-check"} {
		if !strings.Contains(stderr.String(), flagName) {
			t.Errorf("usage output missing %s:\n%s", flagName, stderr.String())
		}
	}
}

func TestParseErrorsSurface(t *testing.T) {
	fs := flag.NewFlagSet("aathing", flag.ContinueOnError)
	var c Common
	c.AddFlags(fs)
	var stderr bytes.Buffer
	if err := Parse(fs, []string{"-check=banana"}, &stderr); err == nil {
		t.Fatal("bad flag value accepted")
	}
}

func TestStartEnablesAndSummarizesChecks(t *testing.T) {
	c := Common{Check: true}
	var stderr bytes.Buffer
	shutdown, err := c.Start("aathing", &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !check.Enabled() {
		t.Error("Start with Check did not enable checking")
	}
	shutdown()
	if check.Enabled() {
		t.Error("shutdown did not disable checking")
	}
	if !strings.Contains(stderr.String(), "aathing: check:") {
		t.Errorf("missing check summary, stderr: %q", stderr.String())
	}
}

func TestStartWithoutFlagsIsQuiet(t *testing.T) {
	var c Common
	var stderr bytes.Buffer
	shutdown, err := c.Start("aathing", &stderr)
	if err != nil {
		t.Fatal(err)
	}
	shutdown()
	if stderr.Len() != 0 {
		t.Errorf("unexpected output: %q", stderr.String())
	}
}
