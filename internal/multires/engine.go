package multires

import (
	"context"
	"fmt"

	"aa/internal/engine"
)

// SolveSpec is the engine payload for the multires backend: the
// instance plus the bundle granularity Assign solves at.
type SolveSpec struct {
	In   *Instance
	Unit float64 // bundle step for the scarcity-priced greedy, > 0
}

// The multires backend runs the Leontief multi-resource Assign through
// the shared pipeline. The response maps bundle counts onto
// Response.Assignment.Alloc (one scalar per thread fully describes a
// Leontief allocation). No super-optimal bound exists for this variant,
// so Response.Bound stays NaN and checks fall back to feasibility only.
func init() {
	engine.Register(engine.Backend{
		Name: "multires",
		Doc:  "Leontief multi-resource assignment (request Payload: multires.SolveSpec)",
		Handle: func(ctx context.Context, req *engine.Request, resp *engine.Response) error {
			spec, ok := req.Payload.(SolveSpec)
			if !ok {
				if p, ok2 := req.Payload.(*SolveSpec); ok2 {
					spec = *p
				} else {
					return fmt.Errorf("%w: multires backend needs Payload of type multires.SolveSpec", engine.ErrBadRequest)
				}
			}
			if !(spec.Unit > 0) {
				return fmt.Errorf("%w: multires bundle unit %v", engine.ErrBadRequest, spec.Unit)
			}
			if spec.In == nil {
				return fmt.Errorf("%w: multires instance is nil", engine.ErrBadRequest)
			}
			if err := spec.In.Validate(); err != nil {
				return fmt.Errorf("%w: %v", engine.ErrBadRequest, err)
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			a := Assign(spec.In, spec.Unit)
			resp.Assignment.Server = a.Server
			resp.Assignment.Alloc = a.Bundles
			if req.WantUtility {
				resp.Utility = a.Utility(spec.In)
			}
			return nil
		},
	})
}
