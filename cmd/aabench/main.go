// Command aabench regenerates the paper's evaluation (Figures 1–3 of
// IPDPS'16 "Utility Maximizing Thread Assignment and Resource
// Allocation"): for each figure it sweeps the paper's parameter grid,
// runs Algorithm 2 against the super-optimal bound and the UU/UR/RU/RR
// heuristics over many random trials, and prints the mean utility ratios
// as a table (optionally also an ASCII chart and CSV files).
//
// Usage:
//
//	aabench [-fig all|fig1a|fig1b|fig2a|fig2b|fig3a|fig3b|fig3c|ext-ls]
//	        [-ext] [-plot] [-trials 1000] [-seed 1] [-workers 0]
//	        [-timeout 0] [-csv dir]
//
// Trials fan out across a solver pool with -workers goroutines
// (0 = GOMAXPROCS); the tables are identical for every worker count.
// -timeout bounds the whole run: on expiry the remaining trials are
// cancelled and the command fails with the deadline error. -ext
// additionally runs the extension experiments (e.g. ext-ls: local
// search and greedy-marginal against the super-optimal bound) when
// -fig all is selected.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"aa/internal/experiment"
	"aa/internal/hetero"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "aabench: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aabench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		fig      = fs.String("fig", "all", "figure id to run, or 'all'")
		trials   = fs.Int("trials", experiment.DefaultTrials, "random trials per sweep point")
		seed     = fs.Uint64("seed", 1, "base random seed")
		workers  = fs.Int("workers", 0, "solver pool workers (0 = GOMAXPROCS)")
		parallel = fs.Int("parallel", 0, "deprecated alias for -workers")
		timeout  = fs.Duration("timeout", 0, "overall deadline for the run (0 = none)")
		csvDir   = fs.String("csv", "", "directory to write per-figure CSV files (optional)")
		ext      = fs.Bool("ext", false, "with -fig all, also run the extension experiments")
		plot     = fs.Bool("plot", false, "render each figure as an ASCII chart as well")
		rom      = fs.Bool("rom", false, "also print the ratio-of-means estimator table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers == 0 {
		*workers = *parallel
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// ext-hetero and ext-runtime have their own harnesses (per-server
	// capacities and wall-clock timing do not fit the homogeneous
	// ratio-sweep pipeline).
	switch *fig {
	case "ext-hetero":
		tbl, err := hetero.SkewSeries(*trials, *seed)
		if err != nil {
			return err
		}
		return tbl.WriteASCII(stdout)
	case "ext-runtime":
		reps := *trials
		if reps > 50 {
			reps = 50 // timing needs repetitions, not the paper's 1000 trials
		}
		tbl, err := experiment.RuntimeTable(*seed, reps)
		if err != nil {
			return err
		}
		return tbl.WriteASCII(stdout)
	}

	var specs []experiment.Spec
	if *fig == "all" {
		specs = experiment.AllFigures(*trials)
		if *ext {
			specs = append(specs, experiment.AllExtensions(*trials)...)
		}
	} else {
		spec, ok := experiment.ByID(*fig, *trials)
		if !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		specs = []experiment.Spec{spec}
	}

	for _, spec := range specs {
		start := time.Now()
		res, err := experiment.RunContext(ctx, spec, *seed, *workers)
		if err != nil {
			return err
		}
		if err := experiment.Render(res).WriteASCII(stdout); err != nil {
			return err
		}
		if *rom {
			if err := experiment.RenderRoM(res).WriteASCII(stdout); err != nil {
				return err
			}
		}
		if *plot {
			if err := experiment.RenderChart(res).WriteASCII(stdout); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "(%s in %v)\n\n", spec.ID, time.Since(start).Round(time.Millisecond))

		if *csvDir != "" {
			if err := writeCSV(*csvDir, spec.ID, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSV(dir, id string, res *experiment.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiment.Render(res).WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	// Close errors matter here: the CSV is the artifact, and a failed
	// flush would otherwise be dropped silently.
	return f.Close()
}
