// Online rebalancing example — the paper's future-work §VIII scenario.
//
// Threads arrive, depart and get re-measured (their utility curves
// drift) over a simulated day. Three policies react to each event:
//
//   - full-resolve: re-run Algorithm 2 every time (best utility, most
//     thread migrations),
//   - incremental: never migrate, only re-divide the affected server,
//   - hybrid: incremental until measured utility falls below α·F̂, then
//     rebuild (α = the paper's 0.828 guarantee is the natural trigger).
//
// The example sweeps the per-migration cost and shows the crossover:
// cheap migrations favor always re-solving; expensive ones favor the
// hybrid and eventually the pure incremental policy.
package main

import (
	"fmt"

	"aa/internal/online"
	"aa/internal/rng"
	"aa/internal/utility"
)

func randomUtility(r *rng.Rand, c float64) utility.Func {
	switch r.Intn(3) {
	case 0:
		return utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, c/4), C: c}
	case 1:
		return utility.SatExp{Scale: r.Uniform(0.5, 5), K: r.Uniform(c/30, c/3), C: c}
	default:
		return utility.Power{Scale: r.Uniform(0.3, 2), Beta: r.Uniform(0.3, 0.9), C: c}
	}
}

func main() {
	const (
		m       = 4
		c       = 100.0
		nEvents = 300
	)
	r := rng.New(2025)

	// Build a day of churn: arrivals, departures, drifts.
	var events []online.Event
	nextID := 0
	var active []int
	t := 0.0
	for len(events) < nEvents {
		t += r.Uniform(0.5, 3)
		switch {
		case len(active) < 6 || r.Float64() < 0.4:
			events = append(events, online.Event{
				Time: t, Kind: online.Arrive, ID: nextID, Util: randomUtility(r, c)})
			active = append(active, nextID)
			nextID++
		case r.Float64() < 0.5:
			k := r.Intn(len(active))
			events = append(events, online.Event{Time: t, Kind: online.Depart, ID: active[k]})
			active = append(active[:k], active[k+1:]...)
		default:
			k := r.Intn(len(active))
			events = append(events, online.Event{
				Time: t, Kind: online.Drift, ID: active[k], Util: randomUtility(r, c)})
		}
	}
	horizon := events[len(events)-1].Time + 1

	policies := []online.Policy{
		online.FullResolve{},
		online.Hybrid{Threshold: 0.828},
		online.Incremental{},
	}

	fmt.Printf("%d events over %.0f time units on %d servers (C=%.0f)\n\n",
		nEvents, horizon, m, c)
	fmt.Printf("%-14s %12s %11s\n", "policy", "utility-int", "migrations")
	for _, p := range policies {
		res, err := online.Simulate(m, c, events, p, 0, horizon)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s %12.1f %11d\n", p.Name(), res.UtilityIntegral, res.Migrations)
	}

	fmt.Printf("\nnet value (utility − cost·migrations) as migration cost grows:\n")
	fmt.Printf("%10s %14s %14s %14s\n", "cost", "full-resolve", "hybrid(0.83)", "incremental")
	for _, cost := range []float64{0, 1, 5, 20, 100, 500} {
		fmt.Printf("%10.0f", cost)
		for _, p := range policies {
			res, err := online.Simulate(m, c, events, p, cost, horizon)
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %14.1f", res.Net)
		}
		fmt.Println()
	}
	fmt.Println("\nfull-resolve wins when moves are free; as each migration gets more")
	fmt.Println("expensive the hybrid, then the never-migrate policy, take over.")
}
