package engine

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

// corpus generates mixed instances across the figure workloads.
func corpus(t *testing.T, count, threads int) []*core.Instance {
	t.Helper()
	dists := []gen.Dist{gen.DefaultUniform, gen.DefaultNormal, gen.PowerLaw{Alpha: 2.5, Xmin: 0.1}}
	base := rng.New(41)
	ins := make([]*core.Instance, 0, count)
	for i := 0; i < count; i++ {
		in, err := gen.Instance(dists[i%len(dists)], 6, 1000, threads, base.Split(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, in)
	}
	return ins
}

func sameAssignment(t *testing.T, label string, got, want core.Assignment) {
	t.Helper()
	if len(got.Server) != len(want.Server) {
		t.Fatalf("%s: got %d threads, want %d", label, len(got.Server), len(want.Server))
	}
	for i := range want.Server {
		if got.Server[i] != want.Server[i] || got.Alloc[i] != want.Alloc[i] {
			t.Fatalf("%s: thread %d: got (%d, %v), want (%d, %v)",
				label, i, got.Server[i], got.Alloc[i], want.Server[i], want.Alloc[i])
		}
	}
}

// TestBackendsMatchDirect pins the central refactoring contract: every
// registry backend is bit-identical to the direct core call it
// replaced.
func TestBackendsMatchDirect(t *testing.T) {
	eng := New(Options{})
	ctx := context.Background()
	for _, in := range corpus(t, 6, 40) {
		direct := map[string]core.Assignment{
			"assign2": core.Assign2(in),
			"assign1": core.Assign1(in),
			"polish":  core.PolishAllocations(in, core.Assign2(in)),
			"greedy":  core.AssignGreedyMarginal(in),
			"uu":      core.AssignUU(in),
			"ur":      core.AssignUR(in, rng.New(7)),
			"ru":      core.AssignRU(in, rng.New(7)),
			"rr":      core.AssignRR(in, rng.New(7)),
		}
		lsWant, _ := core.Improve(in, core.Assign2(in), 0)
		direct["ls"] = lsWant
		for name, want := range direct {
			resp, err := eng.Solve(ctx, &Request{Instance: in, Backend: name, Seed: 7, WantUtility: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sameAssignment(t, name, resp.Assignment, want)
			if wantU := want.Utility(in); resp.Utility != wantU {
				t.Fatalf("%s: utility %v, want %v", name, resp.Utility, wantU)
			}
			if resp.Backend != name {
				t.Fatalf("%s: response labeled %q", name, resp.Backend)
			}
		}
	}
}

func TestExactBackend(t *testing.T) {
	in := corpus(t, 1, 6)[0]
	resp, err := New(Options{}).Solve(context.Background(), &Request{Instance: in, Backend: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.BranchAndBound(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "exact", resp.Assignment, want)
}

// TestAliases: the CLI short names resolve to the same backends.
func TestAliases(t *testing.T) {
	for alias, canonical := range map[string]string{"a2": "assign2", "a1": "assign1", "a2p": "polish", "gm": "greedy"} {
		bk, ok := Lookup(alias)
		if !ok || bk.Name != canonical {
			t.Fatalf("alias %q: got %v, want %q", alias, bk, canonical)
		}
	}
	if _, err := New(Options{}).Solve(context.Background(), &Request{Backend: "nope"}); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("unknown backend error = %v", err)
	}
}

// TestAltAssign1: one linearization feeds both algorithms, matching the
// direct pair exactly (the experiment-harness contract).
func TestAltAssign1(t *testing.T) {
	eng := New(Options{})
	for _, in := range corpus(t, 4, 30) {
		resp, err := eng.Solve(context.Background(), &Request{Instance: in, AltAssign1: true, WantUtility: true})
		if err != nil {
			t.Fatal(err)
		}
		sameAssignment(t, "assign2", resp.Assignment, core.Assign2(in))
		sameAssignment(t, "alt assign1", resp.Alt, core.Assign1(in))
		so := core.SuperOptimal(in)
		if resp.Bound != so.Total {
			t.Fatalf("bound %v, want %v", resp.Bound, so.Total)
		}
		if resp.AltUtility != resp.Alt.Utility(in) {
			t.Fatalf("alt utility %v, want %v", resp.AltUtility, resp.Alt.Utility(in))
		}
	}
}

// TestUtilityOptIn: without WantUtility the response carries NaN, and
// the assignment is still complete.
func TestUtilityOptIn(t *testing.T) {
	in := corpus(t, 1, 20)[0]
	resp, err := New(Options{}).Solve(context.Background(), &Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(resp.Utility) || !math.IsNaN(resp.AltUtility) {
		t.Fatalf("utility should be NaN without WantUtility, got %v / %v", resp.Utility, resp.AltUtility)
	}
	if math.IsNaN(resp.Bound) {
		t.Fatal("assign2 should always report the super-optimal bound")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := corpus(t, 1, 20)[0]
	var resp Response
	if err := New(Options{}).SolveInto(ctx, &Request{Instance: in}, &resp); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned %v", err)
	}
}

func TestBadRequest(t *testing.T) {
	if _, err := New(Options{}).Solve(context.Background(), &Request{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("nil instance returned %v", err)
	}
}

// Test fixtures registered once (the registry is process-global):
// test-broken returns an infeasible over-cap allocation to prove the
// check middleware rejects it; test-block parks until released to
// exercise queue backpressure.
var testBlock = make(chan struct{})

func init() {
	Register(Backend{
		Name: "test-broken", Doc: "test fixture: returns an infeasible assignment",
		Handle: func(ctx context.Context, req *Request, resp *Response) error {
			n := req.Instance.N()
			resp.Assignment.Reset(n)
			for i := 0; i < n; i++ {
				resp.Assignment.Server[i] = 0
				resp.Assignment.Alloc[i] = req.Instance.C * 2
			}
			return nil
		},
	})
	Register(Backend{
		Name: "test-block", Doc: "test fixture: blocks until released",
		Handle: func(ctx context.Context, req *Request, resp *Response) error {
			<-testBlock
			return nil
		},
	})
}

func TestCheckMiddleware(t *testing.T) {
	eng := New(Options{Check: true})
	in := corpus(t, 1, 20)[0]
	if _, err := eng.Solve(context.Background(), &Request{Instance: in}); err != nil {
		t.Fatalf("checked assign2 solve failed: %v", err)
	}
	_, err := eng.Solve(context.Background(), &Request{Instance: in, Backend: "test-broken"})
	if !errors.Is(err, check.ErrInfeasible) {
		t.Fatalf("checked broken solve returned %v, want ErrInfeasible", err)
	}

	// Per-request opt-in does the same on an unchecked engine.
	unchecked := New(Options{})
	if _, err := unchecked.Solve(context.Background(), &Request{Instance: in, Backend: "test-broken"}); err != nil {
		t.Fatalf("unchecked broken solve should pass through, got %v", err)
	}
	_, err = unchecked.Solve(context.Background(), &Request{Instance: in, Backend: "test-broken", Check: true})
	if !errors.Is(err, check.ErrInfeasible) {
		t.Fatalf("per-request check returned %v, want ErrInfeasible", err)
	}
}

// TestMiddlewareOrder: caller middleware runs inside cancellation but
// outside checking, and sees the resolved backend.
func TestMiddlewareOrder(t *testing.T) {
	var saw []string
	mw := func(next Handler) Handler {
		return func(ctx context.Context, req *Request, resp *Response) error {
			saw = append(saw, req.bk.Name)
			return next(ctx, req, resp)
		}
	}
	eng := New(Options{Middleware: []Middleware{mw}})
	in := corpus(t, 1, 10)[0]
	if _, err := eng.Solve(context.Background(), &Request{Instance: in, Backend: "a1"}); err != nil {
		t.Fatal(err)
	}
	if len(saw) != 1 || saw[0] != "assign1" {
		t.Fatalf("middleware saw %v", saw)
	}
}

func TestSolveBatch(t *testing.T) {
	eng := New(Options{Workers: 4})
	defer eng.Close()
	ins := corpus(t, 12, 25)
	reqs := make([]*Request, len(ins))
	for i, in := range ins {
		reqs[i] = &Request{Instance: in, WantUtility: true}
	}
	resps, err := eng.SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		sameAssignment(t, "batch", resp.Assignment, core.Assign2(ins[i]))
	}

	// First failure cancels and reports.
	reqs[5] = &Request{Backend: "nope"}
	if _, err := eng.SolveBatch(context.Background(), reqs); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("batch with bad request returned %v", err)
	}
}

// TestSubmitBackpressure: a full bounded queue rejects with
// ErrQueueFull rather than blocking. One worker (parked on the blocking
// fixture) plus one queue slot leaves at most two of eight submissions
// accepted.
func TestSubmitBackpressure(t *testing.T) {
	// Re-arm the release channel: a previous run (-count>1) closed it,
	// and close of a closed channel panics. Safe unsynchronized — every
	// prior handler returned before its run's drain loop finished.
	testBlock = make(chan struct{})
	eng := New(Options{Workers: 1, QueueDepth: 1})
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := eng.Submit(context.Background(), &Request{Backend: "test-block"})
			errs <- err
		}()
	}
	rejected := 0
	deadline := time.After(10 * time.Second)
	for rejected < 6 {
		select {
		case err := <-errs:
			switch {
			case errors.Is(err, ErrQueueFull):
				rejected++
			case err != nil:
				t.Fatalf("unexpected submit error: %v", err)
			default:
				t.Fatal("a submission completed while the backend was blocked")
			}
		case <-deadline:
			t.Fatalf("only %d rejects before timeout", rejected)
		}
	}
	close(testBlock)
	for seen := rejected; seen < 8; seen++ {
		if err := <-errs; err != nil && !errors.Is(err, ErrQueueFull) {
			t.Fatalf("drain: %v", err)
		}
	}
	eng.Close()
}

// TestSolveIntoZeroAllocs pins the steady-state allocation contract of
// the full pipeline (resolve → telemetry → cancel → check → workspace
// solve).
func TestSolveIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	eng := New(Options{})
	in := corpus(t, 1, 200)[0]
	req := &Request{Instance: in}
	var resp Response
	ctx := context.Background()
	if err := eng.SolveInto(ctx, req, &resp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := eng.SolveInto(ctx, req, &resp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SolveInto allocates %v per op in steady state, want 0", allocs)
	}
}
