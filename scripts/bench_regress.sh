#!/usr/bin/env bash
# Benchmark-regression gate: run the solver-core benchmark matrix (solve,
# superopt, assign1, assign2 across the six figure workloads at n in
# {100, 1k, 10k}, the retained reference implementations, the machine
# calibration probe, the zero-alloc session solve, and the solve-cache
# rungs: warm repair vs cold at the core, exact-hit/warm-start/cold
# through the engine), emit a
# BENCH_<rev>.json snapshot, assert the fast-path speedup floor, and —
# when bench/baseline.json exists — fail on any benchmark more than
# MAX_RATIO slower than the calibrated baseline or allocating more.
#
# Environment knobs:
#   BENCHTIME  per-benchmark budget passed to go test (default 100ms)
#   REV        revision label for the snapshot (default: git short hash)
#   OUT        snapshot path (default bench/BENCH_<rev>.json)
#   BASELINE   baseline path (default bench/baseline.json)
#   MAX_RATIO  ns/op regression threshold (default 1.20)
#   EMIT_ONLY  set to 1 to write the snapshot and skip both gates
#   AA_BENCH_1M    set to 1 to add the n=10^6 tier (serial vs parallel
#                  Assign2 and the full solve); benchgate then arms the
#                  2x parallel-speedup floor when run on >= 4 cores
#   BENCHTIME_1M   per-benchmark budget for the 10^6 tier (default 1x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-100ms}"
REV="${REV:-$(git rev-parse --short HEAD 2>/dev/null || echo dev)}"
OUT="${OUT:-bench/BENCH_${REV}.json}"
BASELINE="${BASELINE:-bench/baseline.json}"

mkdir -p bench
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "bench_regress: core benchmarks (benchtime=$BENCHTIME)..."
go test -run '^$' \
  -bench '^Benchmark(Calibrate|SuperOptimal|SuperOptimalRef|Assign1|Assign1Ref|Assign2|Assign2Parallel|Solve|Assign2Warm|Assign2WarmColdRef)$' \
  -benchtime "$BENCHTIME" ./internal/core/ | tee -a "$tmp"

if [ "${AA_BENCH_1M:-0}" = 1 ]; then
  echo "bench_regress: million-thread tier (AA_BENCH_1M=1)..."
  AA_BENCH_1M=1 go test -run '^$' \
    -bench '^Benchmark(Assign2Serial1M|Assign2Parallel1M|Solve1M)$' \
    -benchtime "${BENCHTIME_1M:-1x}" -timeout 30m ./internal/core/ | tee -a "$tmp"
fi

echo "bench_regress: solverpool session benchmark..."
go test -run '^$' -bench '^BenchmarkSolveSession$' \
  -benchtime "$BENCHTIME" ./internal/solverpool/ | tee -a "$tmp"

echo "bench_regress: engine pipeline and cache benchmarks..."
go test -run '^$' -bench '^Benchmark(EngineSolve$|Cache(ColdSolve|WarmStart|ExactHit)$)' \
  -benchtime "$BENCHTIME" ./internal/engine/ | tee -a "$tmp"

go run ./cmd/benchgate -emit -rev "$REV" <"$tmp" >"$OUT"
echo "bench_regress: wrote $OUT"

if [ "${EMIT_ONLY:-0}" = 1 ]; then
  exit 0
fi

go run ./cmd/benchgate -speedups -current "$OUT"

if [ -f "$BASELINE" ]; then
  go run ./cmd/benchgate -compare -baseline "$BASELINE" -current "$OUT" \
    -max-ratio "${MAX_RATIO:-1.20}"
else
  echo "bench_regress: no baseline at $BASELINE; skipping compare" \
    "(commit $OUT as bench/baseline.json to arm the gate)"
fi
