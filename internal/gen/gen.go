// Package gen implements the paper's synthetic workload generator
// (IPDPS'16 §VII) and a few extra utility families for the application
// substrates.
//
// For each thread the paper draws two values v and w from a distribution
// H conditioned on w ≤ v, then builds a smooth concave utility through
// the three points (0, 0), (C/2, v), (C, v+w) with Matlab's PCHIP. The
// condition w ≤ v makes the secant slopes nonincreasing (2v/C then 2w/C),
// so the data is concave. Four choices of H are evaluated: uniform,
// normal(1,1), power law(α) and a two-point discrete distribution
// parameterized by γ (probability of the low value) and θ = h/ℓ.
package gen

import (
	"fmt"

	"aa/internal/core"
	"aa/internal/rng"
	"aa/internal/utility"
)

// Dist draws the nonnegative values v used to shape utility curves.
type Dist interface {
	// Sample returns one nonnegative value.
	Sample(r *rng.Rand) float64
	// Name identifies the distribution in reports.
	Name() string
}

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws one value.
func (u Uniform) Sample(r *rng.Rand) float64 { return r.Uniform(u.Lo, u.Hi) }

// Name implements Dist.
func (u Uniform) Name() string { return fmt.Sprintf("uniform[%g,%g)", u.Lo, u.Hi) }

// DefaultUniform is the unit-interval uniform used for Figure 1(a).
var DefaultUniform = Uniform{Lo: 0, Hi: 1}

// Normal draws from a normal distribution truncated to positive values,
// matching the paper's normal(mean=1, stddev=1) utility draws
// (utilities must be nonnegative).
type Normal struct {
	Mean, Stddev float64
}

// Sample draws one positive value.
func (n Normal) Sample(r *rng.Rand) float64 { return r.PositiveNormal(n.Mean, n.Stddev) }

// Name implements Dist.
func (n Normal) Name() string { return fmt.Sprintf("normal(%g,%g)+", n.Mean, n.Stddev) }

// DefaultNormal is the paper's normal(1, 1) used for Figure 1(b).
var DefaultNormal = Normal{Mean: 1, Stddev: 1}

// PowerLaw draws from p(x) ∝ x^(-Alpha) on [Xmin, ∞) — the heavy-tailed
// distribution of Figure 2, which occasionally produces threads with very
// large maximum utility that must be placed carefully.
type PowerLaw struct {
	Alpha float64 // tail exponent, > 1; paper uses 2 in Fig. 2(a)
	Xmin  float64 // scale, > 0; 1 unless stated otherwise
}

// Sample draws one value.
func (p PowerLaw) Sample(r *rng.Rand) float64 { return r.PowerLaw(p.Alpha, p.Xmin) }

// Name implements Dist.
func (p PowerLaw) Name() string { return fmt.Sprintf("powerlaw(α=%g)", p.Alpha) }

// Discrete is the paper's two-point distribution of Figure 3: value ℓ
// with probability γ, else h = θ·ℓ.
type Discrete struct {
	L     float64 // low value ℓ, > 0
	Gamma float64 // P(ℓ), in [0, 1]
	Theta float64 // h/ℓ ratio, >= 1
}

// Sample draws ℓ or h = θℓ.
func (d Discrete) Sample(r *rng.Rand) float64 {
	return r.TwoPoint(d.L, d.Theta*d.L, d.Gamma)
}

// Name implements Dist.
func (d Discrete) Name() string {
	return fmt.Sprintf("discrete(γ=%g,θ=%g)", d.Gamma, d.Theta)
}

// Thread generates one utility function over capacity c by the paper's
// three-point PCHIP construction: draw v, w from dist with w ≤ v
// (order statistics of two draws), interpolate (0,0), (c/2, v), (c, v+w).
func Thread(dist Dist, c float64, r *rng.Rand) (utility.Func, error) {
	v := dist.Sample(r)
	w := dist.Sample(r)
	if w > v {
		v, w = w, v
	}
	return utility.NewSampled(
		[]float64{0, c / 2, c},
		[]float64{0, v, v + w},
	)
}

// Instance generates an AA instance with m servers of capacity c and n
// threads drawn independently from dist.
func Instance(dist Dist, m int, c float64, n int, r *rng.Rand) (*core.Instance, error) {
	threads := make([]utility.Func, n)
	for i := range threads {
		f, err := Thread(dist, c, r)
		if err != nil {
			return nil, fmt.Errorf("gen: thread %d: %w", i, err)
		}
		threads[i] = f
	}
	return &core.Instance{M: m, C: c, Threads: threads}, nil
}

// MixedFamilies generates an instance whose threads are drawn from the
// closed-form families (log, saturating-exponential, power, linear) with
// randomized parameters. Not part of the paper's evaluation — used by the
// extension benchmarks and examples for more structured workloads.
func MixedFamilies(m int, c float64, n int, r *rng.Rand) *core.Instance {
	threads := make([]utility.Func, n)
	for i := range threads {
		switch r.Intn(4) {
		case 0:
			threads[i] = utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, c/4), C: c}
		case 1:
			threads[i] = utility.SatExp{Scale: r.Uniform(0.5, 5), K: r.Uniform(c/50, c/3), C: c}
		case 2:
			threads[i] = utility.Power{Scale: r.Uniform(0.2, 2), Beta: r.Uniform(0.2, 1), C: c}
		default:
			threads[i] = utility.Linear{Slope: r.Uniform(0.001, 0.01), C: c}
		}
	}
	return &core.Instance{M: m, C: c, Threads: threads}
}
