package core

import (
	"time"

	"aa/internal/telemetry"
)

// Solver-stage metrics (aa_core_*), registered once at init in the
// process-wide telemetry registry. Recording is guarded by
// telemetry.Enabled() at every call site, so the disabled path costs a
// single atomic load per stage; work counters that would burden inner
// loops are accumulated in locals (or derived arithmetically) and
// flushed once per call.
//
// Naming scheme: aa_core_<stage>_<what>_total for work counters,
// aa_core_<stage>_seconds for stage-latency histograms (see DESIGN.md
// §7).
var (
	metricSuperOptCalls = telemetry.Default.Counter("aa_core_superopt_total")
	// metricBisectIters is the λ-search step count of the super-optimal
	// bound (Definition V.1): the observable behind the paper's
	// O(n (log mC)²) complexity claim.
	metricBisectIters    = telemetry.Default.Counter("aa_core_bisection_iterations_total")
	metricLinearizeCalls = telemetry.Default.Counter("aa_core_linearize_total")

	metricAssign1Calls = telemetry.Default.Counter("aa_core_assign1_total")
	// Greedy passes are Algorithm 1's outer iterations (one per thread).
	// Fit-checks and server ops count the work each implementation
	// actually performed, accumulated inside the loops rather than derived
	// from a formula: the reference scan fit-checks every unassigned
	// thread against the fullest server (n(n+1)/2 total) and walks all
	// m−1 other servers per pass, while the heap fast path fit-checks only
	// the full-queue tops it inspects (≤ 2n total) and counts one server
	// heap update plus its sift-down swaps per pass. The gap between the
	// two is the measured face of the O(mn²) → O((n+m) log(n+m)) rewrite.
	metricAssign1Passes    = telemetry.Default.Counter("aa_core_assign1_greedy_passes_total")
	metricAssign1FitChecks = telemetry.Default.Counter("aa_core_assign1_fit_checks_total")
	metricAssign1ServerOps = telemetry.Default.Counter("aa_core_assign1_server_ops_total")

	metricAssign2Calls = telemetry.Default.Counter("aa_core_assign2_total")
	// Sort comparisons (lines 1–2 of Algorithm 2) plus heap operations
	// (one updateTop per thread plus every sift-down swap) — the
	// observable behind the O(n log n + n log m) assignment phase.
	metricAssign2SortCmps = telemetry.Default.Counter("aa_core_assign2_sort_comparisons_total")
	metricAssign2HeapOps  = telemetry.Default.Counter("aa_core_assign2_heap_operations_total")

	// Warm-start re-solve counters: λ-searches seeded from a cached price
	// and cache-repair passes over changed threads (see internal/cache).
	metricSuperOptWarm = telemetry.Default.Counter("aa_core_superopt_warm_total")
	metricWarmRepairs  = telemetry.Default.Counter("aa_core_warm_repairs_total")

	metricExactNodes       = telemetry.Default.Counter("aa_core_exact_nodes_total")
	metricLocalSearchMoves = telemetry.Default.Counter("aa_core_localsearch_moves_total")

	metricSuperOptSeconds    = telemetry.Default.Histogram("aa_core_superopt_seconds", telemetry.LatencyBuckets)
	metricAssign1Seconds     = telemetry.Default.Histogram("aa_core_assign1_seconds", telemetry.LatencyBuckets)
	metricAssign2Seconds     = telemetry.Default.Histogram("aa_core_assign2_seconds", telemetry.LatencyBuckets)
	metricLocalSearchSeconds = telemetry.Default.Histogram("aa_core_localsearch_seconds", telemetry.LatencyBuckets)
)

// stageStart returns the stage start time when telemetry is on, the
// zero time otherwise; stageEnd flushes the latency histogram and an
// optional trace span. The pair keeps the time.Now calls off the
// disabled path.
func stageStart() time.Time {
	if telemetry.Enabled() {
		return time.Now()
	}
	return time.Time{}
}

// stageEnd flushes the latency histogram and, when tracing is on, a
// span parented to parent — the request span the engine planted in the
// workspace (SetSpanContext), or the zero SpanContext at package-level
// entry points, which falls back to the process-wide parent.
func stageEnd(start time.Time, h *telemetry.Histogram, span string, parent telemetry.SpanContext, n int) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Seconds())
	if telemetry.TraceEnabled() {
		telemetry.EmitSpanIn(parent, span, start, telemetry.Int("n", n))
	}
}
