package experiment

import (
	"testing"

	"aa/internal/check"
)

// A checked run must pass cleanly over figure workloads, and checking
// must not perturb the results: the rng stream (and so every ratio) is
// identical with verification on and off.
func TestRunCheckedMatchesUnchecked(t *testing.T) {
	spec := shrink(Fig3b(6), 4, 2)
	spec.Extra = []string{"LS", "GM"}
	plain, err := Run(spec, 21, 2)
	if err != nil {
		t.Fatal(err)
	}

	check.Enable()
	defer check.Disable()
	c0, v0 := check.Totals()
	checked, err := Run(spec, 21, 2)
	if err != nil {
		t.Fatalf("checked run failed: %v", err)
	}
	c1, v1 := check.Totals()
	if c1 == c0 {
		t.Error("check.Enable did not run any per-trial checks")
	}
	if v1 != v0 {
		t.Errorf("clean figure run grew aa_check_violations_total by %d", v1-v0)
	}

	for pi := range plain.Points {
		for c, a := range plain.Points[pi].Ratios {
			b := checked.Points[pi].Ratios[c]
			if a.Mean != b.Mean || a.Stddev != b.Stddev {
				t.Errorf("point %d column %s: unchecked %+v != checked %+v", pi, c, a, b)
			}
		}
	}
}
