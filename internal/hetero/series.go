package hetero

import (
	"fmt"

	"aa/internal/rng"
	"aa/internal/stats"
	"aa/internal/tableio"
	"aa/internal/utility"
)

// SkewSeries evaluates the heterogeneous extension across a capacity-skew
// sweep: m = 4 servers share a fixed total capacity, with skew s meaning
// one server holds fraction s of the total and the rest split evenly.
// At each skew it runs `trials` random instances and reports the
// generalized Algorithm 2's utility against the super-optimal bound and
// against the round-robin and proportional baselines (mean per-trial
// ratios). This is the ext-hetero experiment of DESIGN.md.
func SkewSeries(trials int, seed uint64) (*tableio.Table, error) {
	if trials < 1 {
		return nil, fmt.Errorf("hetero: %d trials", trials)
	}
	const (
		m        = 4
		totalCap = 400.0
		n        = 20
	)
	skews := []float64{0.25, 0.4, 0.55, 0.7, 0.85}
	t := tableio.New(
		fmt.Sprintf("ext-hetero: capacity skew sweep (m=%d, ΣC=%g, n=%d, %d trials)",
			m, totalCap, n, trials),
		"skew", "bigC", "A/SO", "A/RR", "A/PROP")
	base := rng.New(seed)
	// One workspace and one assignment arena serve every trial in the
	// sweep — the whole series allocates scratch once (pinned by
	// TestSkewSolveSteadyStateAllocs).
	var w Workspace
	var a Assignment
	for si, skew := range skews {
		big := totalCap * skew
		small := (totalCap - big) / float64(m-1)
		caps := []float64{big, small, small, small}
		vsSO := make([]float64, trials)
		vsRR := make([]float64, trials)
		vsProp := make([]float64, trials)
		pr := base.Split(uint64(si))
		for trial := 0; trial < trials; trial++ {
			r := pr.Split(uint64(trial))
			in := randomSkewInstance(r, n, caps)
			so := w.Assign(in, &a)
			u := a.Utility(in)
			rr := AssignRoundRobin(in).Utility(in)
			prop := AssignProportional(in).Utility(in)
			vsSO[trial] = ratio(u, so)
			vsRR[trial] = ratio(u, rr)
			vsProp[trial] = ratio(u, prop)
		}
		t.AddRow(
			tableio.FormatFloat(skew, 2),
			tableio.FormatFloat(big, 0),
			fmt.Sprintf("%.4f", stats.Mean(vsSO)),
			fmt.Sprintf("%.4f", stats.Mean(vsRR)),
			fmt.Sprintf("%.4f", stats.Mean(vsProp)),
		)
	}
	return t, nil
}

func ratio(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return 0
	}
	return num / den
}

// randomSkewInstance draws mixed strictly-increasing utilities over the
// largest capacity.
func randomSkewInstance(r *rng.Rand, n int, caps []float64) *Instance {
	maxCap := 0.0
	for _, c := range caps {
		if c > maxCap {
			maxCap = c
		}
	}
	threads := make([]utility.Func, n)
	for i := range threads {
		switch r.Intn(3) {
		case 0:
			threads[i] = utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, maxCap/3), C: maxCap}
		case 1:
			threads[i] = utility.Power{Scale: r.Uniform(0.5, 2), Beta: r.Uniform(0.3, 0.9), C: maxCap}
		default:
			threads[i] = utility.SatExp{Scale: r.Uniform(0.5, 4), K: r.Uniform(maxCap/30, maxCap/3), C: maxCap}
		}
	}
	return &Instance{Caps: append([]float64(nil), caps...), Threads: threads}
}
