package engine

// Tests for the solve-result cache middleware: exact hits must be
// byte-identical to the populating solve (including under thread
// permutation), warm starts must hold the feasibility + α contract and
// fall back to a cold solve when the repair loses it, and bypass/store
// policies must hold.

import (
	"context"
	"math"
	"testing"

	"aa/internal/cache"
	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/utility"
)

func newCached(t *testing.T, warmK int) (*Engine, cache.Cache) {
	t.Helper()
	c, err := cache.New(cache.Config{Mode: cache.ModeMemory, Size: 64})
	if err != nil {
		t.Fatal(err)
	}
	return New(Options{Cache: c, WarmK: warmK}), c
}

func TestCacheExactHit(t *testing.T) {
	eng, c := newCached(t, 0)
	ctx := context.Background()
	in := corpus(t, 1, 40)[0]
	req := &Request{Instance: in, WantUtility: true}

	first, err := eng.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "exact hit", second.Assignment, first.Assignment)
	if second.Utility != first.Utility || second.Bound != first.Bound || second.Lambda != first.Lambda {
		t.Fatalf("hit scalar drift: utility %v/%v bound %v/%v lambda %v/%v",
			second.Utility, first.Utility, second.Bound, first.Bound, second.Lambda, first.Lambda)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 store", st)
	}
}

func TestCacheExactHitPermutedInstance(t *testing.T) {
	// A request whose threads are a permutation of a cached instance's
	// must hit, and each thread must receive exactly the placement the
	// populating solve gave that same utility curve.
	eng, c := newCached(t, 0)
	ctx := context.Background()
	in := corpus(t, 1, 40)[0]
	first, err := eng.Solve(ctx, &Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}

	n := in.N()
	perm := make([]int, n) // reversal: distinct from identity for any n > 1
	for i := range perm {
		perm[i] = n - 1 - i
	}
	shuffled := &core.Instance{M: in.M, C: in.C, Threads: make([]utility.Func, n)}
	for i, p := range perm {
		shuffled.Threads[i] = in.Threads[p]
	}
	second, err := eng.Solve(ctx, &Request{Instance: shuffled})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("permuted request did not hit: %+v", st)
	}
	for i, p := range perm {
		if second.Assignment.Server[i] != first.Assignment.Server[p] ||
			second.Assignment.Alloc[i] != first.Assignment.Alloc[p] {
			t.Fatalf("thread %d (orig %d): got (%d, %v), want (%d, %v)",
				i, p, second.Assignment.Server[i], second.Assignment.Alloc[i],
				first.Assignment.Server[p], first.Assignment.Alloc[p])
		}
	}
}

func TestCacheHitComputesUtilityOnDemand(t *testing.T) {
	// Populating solve did not ask for utility (cached as NaN); a later
	// hit that wants it must evaluate it fresh instead of serving NaN.
	eng, _ := newCached(t, 0)
	ctx := context.Background()
	in := corpus(t, 1, 30)[0]
	if _, err := eng.Solve(ctx, &Request{Instance: in}); err != nil {
		t.Fatal(err)
	}
	hit, err := eng.Solve(ctx, &Request{Instance: in, WantUtility: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(hit.Utility) {
		t.Fatal("hit served NaN utility to a WantUtility request")
	}
	if want := hit.Assignment.Utility(in); hit.Utility != want {
		t.Fatalf("hit utility %v, want %v", hit.Utility, want)
	}
}

func TestCacheKeySeparatesBackendsAndParams(t *testing.T) {
	eng, c := newCached(t, 0)
	ctx := context.Background()
	in := corpus(t, 1, 30)[0]
	for _, req := range []*Request{
		{Instance: in},
		{Instance: in, Backend: "assign1"},
		{Instance: in, Backend: "ls", MaxMoves: 3},
		{Instance: in, Backend: "ls", MaxMoves: 4},
		{Instance: in, AltAssign1: true},
	} {
		if _, err := eng.Solve(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 5 {
		t.Fatalf("distinct (backend, params) requests shared entries: %+v", st)
	}
	// Stochastic backends key on seed; deterministic ones ignore it.
	if _, err := eng.Solve(ctx, &Request{Instance: in, Backend: "rr", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Solve(ctx, &Request{Instance: in, Backend: "rr", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Fatalf("different seeds hit the same stochastic entry: %+v", st)
	}
	if _, err := eng.Solve(ctx, &Request{Instance: in, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("deterministic backend keyed on seed: %+v", st)
	}
}

func TestCacheAltAssign1RoundTrip(t *testing.T) {
	eng, c := newCached(t, 0)
	ctx := context.Background()
	in := corpus(t, 1, 30)[0]
	req := &Request{Instance: in, AltAssign1: true, WantUtility: true}
	first, err := eng.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("alt request did not hit: %+v", st)
	}
	sameAssignment(t, "alt hit main", second.Assignment, first.Assignment)
	sameAssignment(t, "alt hit alt", second.Alt, first.Alt)
	if second.AltUtility != first.AltUtility {
		t.Fatalf("alt utility %v, want %v", second.AltUtility, first.AltUtility)
	}
}

func TestCacheNoCacheBypass(t *testing.T) {
	eng, c := newCached(t, 0)
	ctx := context.Background()
	in := corpus(t, 1, 30)[0]
	for i := 0; i < 2; i++ {
		if _, err := eng.Solve(ctx, &Request{Instance: in, NoCache: true}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bypasses != 2 || st.Hits != 0 || st.Misses != 0 || st.Stores != 0 {
		t.Fatalf("bypassed requests touched the cache: %+v", st)
	}
	// The bypassed solves stored nothing: a normal request still misses.
	if _, err := eng.Solve(ctx, &Request{Instance: in}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats after bypasses + one normal solve: %+v", st)
	}
}

func TestCacheNeverStoresInfeasibleResponses(t *testing.T) {
	// An unchecked engine lets test-broken's infeasible response through
	// to the caller, but the cache must still refuse to store it.
	eng, c := newCached(t, 0)
	ctx := context.Background()
	in := corpus(t, 1, 10)[0]
	if _, err := eng.Solve(ctx, &Request{Instance: in, Backend: "test-broken"}); err != nil {
		t.Fatalf("unchecked broken solve: %v", err)
	}
	if st := c.Stats(); st.Stores != 0 {
		t.Fatalf("infeasible response was stored: %+v", st)
	}
	if _, err := eng.Solve(ctx, &Request{Instance: in, Backend: "test-broken"}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Fatalf("second broken solve hit a poisoned entry: %+v", st)
	}
}

// churn replaces the last k threads of in with threads drawn from donor
// (same generator distribution family, so the churned instance stays in
// distribution — the regime the warm repair is built for).
func churn(in, donor *core.Instance, k int) *core.Instance {
	out := &core.Instance{M: in.M, C: in.C, Threads: append([]utility.Func{}, in.Threads...)}
	for i := in.N() - k; i < in.N(); i++ {
		out.Threads[i] = donor.Threads[i]
	}
	return out
}

func TestCacheWarmStart(t *testing.T) {
	eng, c := newCached(t, 8)
	ctx := context.Background()
	ins := corpus(t, 4, 400)
	in, donor := ins[0], ins[3] // indices 0 and 3 share the uniform workload
	if _, err := eng.Solve(ctx, &Request{Instance: in}); err != nil {
		t.Fatal(err)
	}

	churned := churn(in, donor, 4)
	warm, err := eng.Solve(ctx, &Request{Instance: churned})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.WarmStarts != 1 {
		t.Fatalf("churned solve did not warm-start: %+v", st)
	}
	if err := check.ProbeFeasible(churned, warm.Assignment, 0); err != nil {
		t.Fatalf("warm response infeasible: %v", err)
	}
	rep := check.RatioAgainst(warm.Bound, churned, warm.Assignment)
	if err := rep.ProbeAlpha(0); err != nil {
		t.Fatalf("warm response below α against its own bound: %v (ratio %v)", err, rep.Ratio)
	}

	// The warm result was stored under its own key: re-solving the
	// churned instance is now an exact hit, byte-identical.
	again, err := eng.Solve(ctx, &Request{Instance: churned})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("warm result not re-servable as exact hit: %+v", got)
	}
	sameAssignment(t, "warm then hit", again.Assignment, warm.Assignment)
}

func TestCacheWarmStartSkippedBeyondK(t *testing.T) {
	eng, c := newCached(t, 2)
	ctx := context.Background()
	in := corpus(t, 1, 100)[0]
	if _, err := eng.Solve(ctx, &Request{Instance: in}); err != nil {
		t.Fatal(err)
	}
	cold := New(Options{})
	churned := churn(in, corpus(t, 4, 100)[3], 10) // 10 > k = 2: must solve cold
	got, err := eng.Solve(ctx, &Request{Instance: churned})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.WarmStarts != 0 {
		t.Fatalf("warm-started past the k bound: %+v", st)
	}
	want, err := cold.Solve(ctx, &Request{Instance: churned})
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "beyond-k cold solve", got.Assignment, want.Assignment)
}

func TestCacheWarmStartFallsBackWhenBoundTrips(t *testing.T) {
	// Adversarial churn: the cached instance packs every server to the
	// brim with small threads, then one tiny thread is swapped for a
	// steep high-cap one. The repair can only give the newcomer the
	// slack the removed thread freed (≈ C/n), while F̂ awards it a whole
	// server's worth — the α probe trips and the middleware must fall
	// back to a cold solve, bit-identical to an uncached engine's.
	c, err := cache.New(cache.Config{Mode: cache.ModeMemory, Size: 64})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Cache: c, WarmK: 4})
	ctx := context.Background()

	const n, m, cap = 20, 2, 100.0
	prev := &core.Instance{M: m, C: cap, Threads: make([]utility.Func, n)}
	for i := range prev.Threads {
		prev.Threads[i] = utility.Linear{Slope: 1 + float64(i)*0.01, C: 2 * cap / n}
	}
	if _, err := eng.Solve(ctx, &Request{Instance: prev}); err != nil {
		t.Fatal(err)
	}

	cur := &core.Instance{M: m, C: cap, Threads: append([]utility.Func{}, prev.Threads...)}
	cur.Threads[n-1] = utility.Linear{Slope: 1000, C: cap}
	got, err := eng.Solve(ctx, &Request{Instance: cur})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.WarmStarts != 0 {
		t.Fatalf("repair that loses α was served: %+v", st)
	}
	want, err := New(Options{}).Solve(ctx, &Request{Instance: cur})
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "fallback cold solve", got.Assignment, want.Assignment)
	rep := check.RatioAgainst(got.Bound, cur, got.Assignment)
	if err := rep.ProbeAlpha(0); err != nil {
		t.Fatalf("fallback result below α: %v", err)
	}
}

func TestCacheOffEngineUntouched(t *testing.T) {
	// A ModeOff cache (or nil) must not install the middleware at all.
	eng := New(Options{Cache: cache.Noop()})
	ctx := context.Background()
	in := corpus(t, 1, 20)[0]
	a, err := eng.Solve(ctx, &Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{}).Solve(ctx, &Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "noop cache", a.Assignment, b.Assignment)
}
