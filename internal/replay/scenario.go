// Package replay is the trace-driven datacenter replay simulator: a
// deterministic discrete-event harness that plays recorded or synthetic
// arrival/departure traces — diurnal load curves, flash-crowd bursts,
// utility drift and correlated server failure/recovery episodes —
// through the real engine pipeline (or a live aaserve endpoint) at
// accelerated virtual time, and reports utility-vs-F̂, solve-latency
// percentiles and queue-depth trajectories per scenario.
//
// Determinism contract: every random draw comes from rng.SplitPath
// streams keyed by (seed, purpose, id), virtual time is derived purely
// from the trace and a deterministic solve-cost model, and all float
// accumulations run in fixed order. The same scenario + seed therefore
// yields a bit-identical canonical report on any machine, any run —
// the property the run-twice determinism test and the CI replay smoke
// enforce (the mgpusim acceptance-test idiom). Wall-clock measurements
// are confined to the report's "wall" section, which Canonical strips.
package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"aa/internal/gen"
)

// Scenario is a declarative replay scenario: the cluster shape, the
// load curve, the lifetime/drift/failure processes and the policy that
// reacts to them. Scenarios are small JSON files (see Load) or one of
// the built-in families (see Builtin).
type Scenario struct {
	Name     string  `json:"name"`
	Servers  int     `json:"servers"`
	Capacity float64 `json:"capacity"`
	// Horizon is the virtual end time in seconds; events at or after it
	// are ignored.
	Horizon float64 `json:"horizon"`
	// Policy is the rebalancing policy: "full-resolve", "incremental"
	// or "hybrid". Empty means full-resolve.
	Policy string `json:"policy,omitempty"`
	// HybridThreshold is the hybrid policy's rebuild threshold as a
	// fraction of the super-optimal bound; 0 means the paper's α.
	HybridThreshold float64 `json:"hybridThreshold,omitempty"`

	// InitialThreads, when positive, opens the trace with a single
	// ArriveBatch event at t=0 admitting that many threads at once — the
	// bigfleet regime (10⁵–10⁶ standing threads) where per-thread arrival
	// events would dwarf the rest of the timeline. Initial threads
	// persist to the horizon; the Poisson arrival process layers churn on
	// top, its ids starting at InitialThreads.
	InitialThreads int `json:"initialThreads,omitempty"`

	Utility  UtilitySpec  `json:"utility"`
	Arrivals ArrivalSpec  `json:"arrivals"`
	Lifetime LifetimeSpec `json:"lifetime"`
	// DriftRate is the global rate (events per virtual second) of
	// utility re-measurements of a uniformly chosen active thread.
	DriftRate float64      `json:"driftRate,omitempty"`
	Failures  *FailureSpec `json:"failures,omitempty"`

	// SolveCost scales the deterministic virtual-time cost model of one
	// re-solve: a solve of n threads on m servers occupies the virtual
	// solver for SolveCost·(n+m)·log2(n+m+2) seconds, during which
	// later events queue. 0 means DefaultSolveCost.
	SolveCost float64 `json:"solveCost,omitempty"`
	// GridPoints is the number of trajectory samples across the
	// horizon; 0 means DefaultGridPoints.
	GridPoints int `json:"gridPoints,omitempty"`
}

// Defaults for the knobs a scenario may leave zero.
const (
	DefaultSolveCost  = 1e-3
	DefaultGridPoints = 96
)

// UtilitySpec selects the paper's workload-generator distribution for
// arriving threads' utility curves (gen.Thread's three-point PCHIP
// construction).
type UtilitySpec struct {
	// Dist is "uniform", "normal", "powerlaw" or "discrete".
	Dist string `json:"dist"`
	// Uniform [Lo, Hi); defaults to the unit interval.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Normal(Mean, Stddev) conditioned positive; defaults to (1, 1).
	Mean   float64 `json:"mean,omitempty"`
	Stddev float64 `json:"stddev,omitempty"`
	// PowerLaw tail exponent and scale; defaults to (2, 1).
	Alpha float64 `json:"alpha,omitempty"`
	Xmin  float64 `json:"xmin,omitempty"`
	// Discrete low value ℓ, P(ℓ) and h/ℓ; defaults to (1, 0.5, 4).
	L     float64 `json:"l,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
	Theta float64 `json:"theta,omitempty"`
}

// Dist builds the gen.Dist the spec names.
func (u UtilitySpec) dist() (gen.Dist, error) {
	switch u.Dist {
	case "", "uniform":
		d := gen.Uniform{Lo: u.Lo, Hi: u.Hi}
		if d.Lo == 0 && d.Hi == 0 {
			d = gen.DefaultUniform
		}
		if !(d.Hi > d.Lo) {
			return nil, fmt.Errorf("replay: uniform utility needs hi > lo, got [%g,%g)", d.Lo, d.Hi)
		}
		return d, nil
	case "normal":
		d := gen.Normal{Mean: u.Mean, Stddev: u.Stddev}
		if d.Mean == 0 && d.Stddev == 0 {
			d = gen.DefaultNormal
		}
		if !(d.Stddev > 0) {
			return nil, fmt.Errorf("replay: normal utility needs stddev > 0, got %g", d.Stddev)
		}
		return d, nil
	case "powerlaw":
		d := gen.PowerLaw{Alpha: u.Alpha, Xmin: u.Xmin}
		if d.Alpha == 0 {
			d.Alpha = 2
		}
		if d.Xmin == 0 {
			d.Xmin = 1
		}
		if !(d.Alpha > 1) || !(d.Xmin > 0) {
			return nil, fmt.Errorf("replay: powerlaw utility needs alpha > 1 and xmin > 0, got (%g, %g)", d.Alpha, d.Xmin)
		}
		return d, nil
	case "discrete":
		d := gen.Discrete{L: u.L, Gamma: u.Gamma, Theta: u.Theta}
		if d.L == 0 && d.Gamma == 0 && d.Theta == 0 {
			d = gen.Discrete{L: 1, Gamma: 0.5, Theta: 4}
		}
		if !(d.L > 0) || d.Gamma < 0 || d.Gamma > 1 || d.Theta < 1 {
			return nil, fmt.Errorf("replay: discrete utility needs l > 0, gamma in [0,1], theta >= 1")
		}
		return d, nil
	}
	return nil, fmt.Errorf("replay: unknown utility dist %q", u.Dist)
}

// ArrivalSpec is the time-varying Poisson arrival process: a base rate
// modulated by an optional diurnal sinusoid and multiplicative
// flash-crowd bursts.
type ArrivalSpec struct {
	// BaseRate is the mean arrival rate in threads per virtual second.
	BaseRate float64      `json:"baseRate"`
	Diurnal  *DiurnalSpec `json:"diurnal,omitempty"`
	Bursts   []BurstSpec  `json:"bursts,omitempty"`
}

// DiurnalSpec modulates the base rate by 1 + Amplitude·sin(2πt/Period + Phase).
type DiurnalSpec struct {
	Amplitude float64 `json:"amplitude"`
	Period    float64 `json:"period"`
	Phase     float64 `json:"phase,omitempty"`
}

// BurstSpec multiplies the arrival rate by Multiplier on [Start, Start+Duration).
type BurstSpec struct {
	Start      float64 `json:"start"`
	Duration   float64 `json:"duration"`
	Multiplier float64 `json:"multiplier"`
}

// Rate evaluates the instantaneous arrival rate λ(t).
func (a ArrivalSpec) Rate(t float64) float64 {
	r := a.BaseRate
	if a.Diurnal != nil {
		r *= 1 + a.Diurnal.Amplitude*math.Sin(2*math.Pi*t/a.Diurnal.Period+a.Diurnal.Phase)
	}
	for _, b := range a.Bursts {
		if t >= b.Start && t < b.Start+b.Duration {
			r *= b.Multiplier
		}
	}
	if r < 0 {
		return 0
	}
	return r
}

// maxRate bounds λ(t) from above for Poisson thinning.
func (a ArrivalSpec) maxRate() float64 {
	r := a.BaseRate
	if a.Diurnal != nil {
		r *= 1 + math.Abs(a.Diurnal.Amplitude)
	}
	mult := 1.0
	for _, b := range a.Bursts {
		if b.Multiplier > mult {
			mult = b.Multiplier
		}
	}
	return r * mult
}

// LifetimeSpec is the exponential thread-lifetime distribution.
type LifetimeSpec struct {
	Mean float64 `json:"mean"`
}

// FailureSpec is the correlated server failure/recovery process:
// cluster-level failure episodes arrive with exponential inter-episode
// gaps of mean MTBF; each episode takes a contiguous group of GroupSize
// servers down together for an exponential duration of mean MTTR.
// Episodes never overlap, so at least Servers − GroupSize servers are
// always up.
type FailureSpec struct {
	MTBF      float64 `json:"mtbf"`
	MTTR      float64 `json:"mttr"`
	GroupSize int     `json:"groupSize"`
}

// Validate checks the scenario is well formed and fills nothing in —
// defaults are applied where the fields are consumed.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("replay: scenario needs a name")
	}
	if sc.Servers < 1 {
		return fmt.Errorf("replay: scenario %q: servers %d, need >= 1", sc.Name, sc.Servers)
	}
	if !(sc.Capacity > 0) {
		return fmt.Errorf("replay: scenario %q: capacity %g, need > 0", sc.Name, sc.Capacity)
	}
	if !(sc.Horizon > 0) {
		return fmt.Errorf("replay: scenario %q: horizon %g, need > 0", sc.Name, sc.Horizon)
	}
	switch sc.Policy {
	case "", "full-resolve", "incremental", "hybrid":
	default:
		return fmt.Errorf("replay: scenario %q: unknown policy %q", sc.Name, sc.Policy)
	}
	if sc.HybridThreshold < 0 || sc.HybridThreshold > 1 {
		return fmt.Errorf("replay: scenario %q: hybridThreshold %g outside [0,1]", sc.Name, sc.HybridThreshold)
	}
	if sc.InitialThreads < 0 {
		return fmt.Errorf("replay: scenario %q: initialThreads %d, need >= 0", sc.Name, sc.InitialThreads)
	}
	if _, err := sc.Utility.dist(); err != nil {
		return err
	}
	if !(sc.Arrivals.BaseRate > 0) {
		return fmt.Errorf("replay: scenario %q: arrivals.baseRate %g, need > 0", sc.Name, sc.Arrivals.BaseRate)
	}
	if d := sc.Arrivals.Diurnal; d != nil {
		if d.Amplitude < 0 || d.Amplitude > 1 {
			return fmt.Errorf("replay: scenario %q: diurnal amplitude %g outside [0,1]", sc.Name, d.Amplitude)
		}
		if !(d.Period > 0) {
			return fmt.Errorf("replay: scenario %q: diurnal period %g, need > 0", sc.Name, d.Period)
		}
	}
	for i, b := range sc.Arrivals.Bursts {
		if b.Start < 0 || !(b.Duration > 0) || b.Multiplier < 0 {
			return fmt.Errorf("replay: scenario %q: burst %d needs start >= 0, duration > 0, multiplier >= 0", sc.Name, i)
		}
	}
	if !(sc.Lifetime.Mean > 0) {
		return fmt.Errorf("replay: scenario %q: lifetime.mean %g, need > 0", sc.Name, sc.Lifetime.Mean)
	}
	if sc.DriftRate < 0 {
		return fmt.Errorf("replay: scenario %q: driftRate %g, need >= 0", sc.Name, sc.DriftRate)
	}
	if f := sc.Failures; f != nil {
		if !(f.MTBF > 0) || !(f.MTTR > 0) {
			return fmt.Errorf("replay: scenario %q: failures need mtbf > 0 and mttr > 0", sc.Name)
		}
		if f.GroupSize < 1 || f.GroupSize >= sc.Servers {
			return fmt.Errorf("replay: scenario %q: failure groupSize %d outside [1, servers-1=%d]",
				sc.Name, f.GroupSize, sc.Servers-1)
		}
	}
	if sc.SolveCost < 0 {
		return fmt.Errorf("replay: scenario %q: solveCost %g, need >= 0", sc.Name, sc.SolveCost)
	}
	if sc.GridPoints < 0 {
		return fmt.Errorf("replay: scenario %q: gridPoints %d, need >= 0", sc.Name, sc.GridPoints)
	}
	return nil
}

// solveCost returns the scenario's virtual solve-cost scale.
func (sc *Scenario) solveCost() float64 {
	if sc.SolveCost > 0 {
		return sc.SolveCost
	}
	return DefaultSolveCost
}

// gridPoints returns the scenario's trajectory sample count.
func (sc *Scenario) gridPoints() int {
	if sc.GridPoints > 0 {
		return sc.GridPoints
	}
	return DefaultGridPoints
}

// policyName returns the effective policy name.
func (sc *Scenario) policyName() string {
	if sc.Policy == "" {
		return "full-resolve"
	}
	return sc.Policy
}

// Decode reads a scenario from JSON, rejecting unknown fields so typos
// in scenario files fail loudly instead of silently using defaults.
func Decode(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("replay: decode scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	sc, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("replay: %s: %w", path, err)
	}
	return sc, nil
}

// builtins are the standing scenario families, in display order:
//
//   - diurnal: a day of sinusoidal load against a mid-size cluster,
//   - flash: flat load punctured by two flash-crowd bursts,
//   - failures: steady load with correlated failure/recovery episodes,
//   - churn: short-lived threads with heavy drift under the hybrid policy,
//   - bigfleet: a standing fleet of 2×10⁵ threads admitted in one batch
//     at t=0 with light churn on top — the million-thread regime the
//     parallel Assign2 path exists for (every full re-solve crosses the
//     parallel threshold).
var builtins = []Scenario{
	{
		Name: "diurnal", Servers: 6, Capacity: 1000, Horizon: 86400,
		Policy:  "full-resolve",
		Utility: UtilitySpec{Dist: "powerlaw"},
		Arrivals: ArrivalSpec{
			BaseRate: 0.02,
			Diurnal:  &DiurnalSpec{Amplitude: 0.8, Period: 86400, Phase: -math.Pi / 2},
		},
		Lifetime: LifetimeSpec{Mean: 1800},
		// Tuned so midday peak load nudges the virtual solver into
		// queueing while the overnight trough drains it — the queue
		// trajectory traces the diurnal curve.
		SolveCost: 0.02,
	},
	{
		Name: "flash", Servers: 6, Capacity: 1000, Horizon: 7200,
		Policy:  "full-resolve",
		Utility: UtilitySpec{Dist: "uniform"},
		Arrivals: ArrivalSpec{
			BaseRate: 0.05,
			Bursts: []BurstSpec{
				{Start: 1800, Duration: 300, Multiplier: 15},
				{Start: 5000, Duration: 600, Multiplier: 8},
			},
		},
		Lifetime: LifetimeSpec{Mean: 240},
		// Tuned so the 15× burst drives the virtual solver just past
		// saturation: the queue spikes into the tens and drains after.
		SolveCost: 0.002,
	},
	{
		Name: "failures", Servers: 8, Capacity: 500, Horizon: 14400,
		Policy:   "full-resolve",
		Utility:  UtilitySpec{Dist: "normal"},
		Arrivals: ArrivalSpec{BaseRate: 0.04},
		Lifetime: LifetimeSpec{Mean: 900},
		Failures: &FailureSpec{MTBF: 1800, MTTR: 600, GroupSize: 3},
	},
	{
		Name: "churn", Servers: 4, Capacity: 800, Horizon: 7200,
		Policy: "hybrid", HybridThreshold: 0.83,
		Utility:   UtilitySpec{Dist: "discrete"},
		Arrivals:  ArrivalSpec{BaseRate: 0.1},
		Lifetime:  LifetimeSpec{Mean: 120},
		DriftRate: 0.05,
	},
	{
		Name: "bigfleet", Servers: 64, Capacity: 1000, Horizon: 240,
		Policy:         "full-resolve",
		InitialThreads: 200_000,
		Utility:        UtilitySpec{Dist: "powerlaw"},
		Arrivals:       ArrivalSpec{BaseRate: 0.25},
		Lifetime:       LifetimeSpec{Mean: 600},
		// One virtual solver crunching 2×10⁵ threads: keep the virtual
		// service time sub-second so churn events don't queue unboundedly.
		SolveCost: 1e-6,
	},
}

// Builtin returns a deep copy of the named built-in scenario, safe for
// the caller to mutate.
func Builtin(name string) (*Scenario, bool) {
	for _, sc := range builtins {
		if sc.Name == name {
			c := sc
			if d := sc.Arrivals.Diurnal; d != nil {
				dd := *d
				c.Arrivals.Diurnal = &dd
			}
			c.Arrivals.Bursts = append([]BurstSpec(nil), sc.Arrivals.Bursts...)
			if f := sc.Failures; f != nil {
				ff := *f
				c.Failures = &ff
			}
			return &c, true
		}
	}
	return nil, false
}

// Builtins lists the built-in scenario names in display order.
func Builtins() []string {
	out := make([]string, len(builtins))
	for i, sc := range builtins {
		out[i] = sc.Name
	}
	return out
}
