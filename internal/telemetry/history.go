package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Metrics history: a bounded in-memory ring of periodic registry
// snapshots, so a scrape of GET /metrics/history answers "what did the
// counters and latency quantiles look like over the last N minutes"
// without an external time-series database. Snapshots are compact —
// counters and gauges keep their value, histograms are reduced to
// count/sum and the p50/p90/p99 estimates — so a default ring
// (360 points × 10 s = one hour) stays small even with hundreds of
// registered metrics.

// HistoryValue is one metric's reduction inside a snapshot.
type HistoryValue struct {
	Type  string  `json:"type"`
	Value float64 `json:"value"`           // counter/gauge value; histogram sum
	Count uint64  `json:"count,omitempty"` // histograms only
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// HistorySnapshot is the state of every registered metric at one
// instant.
type HistorySnapshot struct {
	TS      time.Time               `json:"ts"`
	Metrics map[string]HistoryValue `json:"metrics"`
}

// HistoryOptions configure StartHistory. The zero value means a 10 s
// interval and 360 retained points (one hour).
type HistoryOptions struct {
	// Interval between automatic snapshots; <= 0 means 10 s.
	Interval time.Duration
	// Capacity is the ring size in snapshots; <= 0 means 360.
	Capacity int
}

// History is a running snapshot ring over one registry. Create it with
// Registry.StartHistory; stop the background ticker with Stop.
type History struct {
	reg      *Registry
	interval time.Duration

	mu    sync.Mutex
	ring  []HistorySnapshot
	next  int
	count int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartHistory starts (or returns the already-running) metrics-history
// recorder for the registry: one immediate snapshot, then one every
// opts.Interval until Stop. The first call wins; later calls return
// the existing recorder and ignore their options.
func (r *Registry) StartHistory(opts HistoryOptions) *History {
	if opts.Interval <= 0 {
		opts.Interval = 10 * time.Second
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 360
	}
	h := &History{
		reg:      r,
		interval: opts.Interval,
		ring:     make([]HistorySnapshot, opts.Capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if !r.history.CompareAndSwap(nil, h) {
		return r.history.Load()
	}
	go h.loop()
	return h
}

// History returns the registry's running history recorder, or nil when
// StartHistory has not been called.
func (r *Registry) History() *History { return r.history.Load() }

// Interval returns the snapshot period.
func (h *History) Interval() time.Duration { return h.interval }

// Capacity returns the ring size in snapshots.
func (h *History) Capacity() int { return len(h.ring) }

func (h *History) loop() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	h.TakeSnapshot()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.TakeSnapshot()
		}
	}
}

// Stop halts the background ticker and waits for it to exit. The
// recorded snapshots stay readable; the recorder stays installed on
// the registry (a process stops history only on shutdown).
func (h *History) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// TakeSnapshot records the registry's current state into the ring. The
// background ticker calls it on schedule; tests and callers needing a
// point-in-time record may call it directly.
func (h *History) TakeSnapshot() {
	snap := HistorySnapshot{TS: time.Now(), Metrics: h.reg.historyValues()}
	h.mu.Lock()
	h.ring[h.next] = snap
	h.next = (h.next + 1) % len(h.ring)
	if h.count < len(h.ring) {
		h.count++
	}
	h.mu.Unlock()
}

// Snapshots returns the retained snapshots, oldest first.
func (h *History) Snapshots() []HistorySnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistorySnapshot, 0, h.count)
	start := h.next - h.count
	if start < 0 {
		start += len(h.ring)
	}
	for i := 0; i < h.count; i++ {
		out = append(out, h.ring[(start+i)%len(h.ring)])
	}
	return out
}

// historyValues reduces every registered metric to its HistoryValue.
func (r *Registry) historyValues() map[string]HistoryValue {
	entries := r.snapshot()
	out := make(map[string]HistoryValue, len(entries))
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			out[e.name] = HistoryValue{Type: "counter", Value: float64(e.counter.Value())}
		case kindGauge:
			out[e.name] = HistoryValue{Type: "gauge", Value: float64(e.gauge.Value())}
		case kindHistogram:
			h := e.hist
			out[e.name] = HistoryValue{
				Type:  "histogram",
				Value: h.Sum(),
				Count: h.Count(),
				P50:   h.Quantile(0.50),
				P90:   h.Quantile(0.90),
				P99:   h.Quantile(0.99),
			}
		}
	}
	return out
}

// historyResponse is the JSON shape of GET /metrics/history.
type historyResponse struct {
	IntervalSeconds float64           `json:"interval_seconds"`
	Capacity        int               `json:"capacity"`
	Snapshots       []HistorySnapshot `json:"snapshots"`
}

// historyHandler serves the history ring as JSON. ?last=N limits the
// response to the N most recent snapshots.
func historyHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h := reg.History()
		if h == nil {
			http.Error(w, "metrics history not enabled (telemetry.Registry.StartHistory)", http.StatusNotFound)
			return
		}
		snaps := h.Snapshots()
		if v := r.URL.Query().Get("last"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			if n < len(snaps) {
				snaps = snaps[len(snaps)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(historyResponse{
			IntervalSeconds: h.Interval().Seconds(),
			Capacity:        h.Capacity(),
			Snapshots:       snaps,
		})
	}
}
