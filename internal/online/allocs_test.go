package online

import (
	"testing"

	"aa/internal/rng"
)

// TestReactSteadyStateAllocs pins the scratch-reuse contract: once a
// policy has reacted to a populated state, further reactions that do
// not grow the system (drifts, and full re-solves of a stable thread
// set) allocate nothing — the instance snapshot, the engine
// request/response and the per-server reallocation buffers all live in
// the state's scratch.
func TestReactSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, tc := range []struct {
		name   string
		policy Policy
	}{
		{"full-resolve", FullResolve{}},
		{"incremental", Incremental{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewState(4, 100)
			r := rng.New(3)
			for id := 0; id < 24; id++ {
				s.Threads[id] = randomUtility(r, 100)
			}
			ev := Event{Time: 1, Kind: Drift, ID: 0, Util: s.Threads[0]}
			// Warm: size the scratch and place every thread.
			FullResolve{}.React(s, ev)
			tc.policy.React(s, ev)
			allocs := testing.AllocsPerRun(20, func() { tc.policy.React(s, ev) })
			if allocs != 0 {
				t.Fatalf("%s drift react allocates %v per op in steady state, want 0", tc.name, allocs)
			}
		})
	}
}
