// Package aa is the public API of this repository: an implementation of
// "Utility Maximizing Thread Assignment and Resource Allocation"
// (Lai, Fan, Zhang, Liu — IPDPS 2016).
//
// The AA (assign and allocate) problem places n threads onto m
// homogeneous servers with capacity C each and divides every server's
// resource among its threads, maximizing the total utility Σ f_i(c_i),
// where each f_i is a nonnegative, nondecreasing, concave utility
// function. The problem is NP-hard for m ≥ 2; Solve implements the
// paper's fast O(n (log mC)²) greedy with the proven approximation
// ratio Alpha = 2(√2−1) ≈ 0.828.
//
// # Quick start
//
//	inst := &aa.Instance{
//		M: 2, C: 100,
//		Threads: []aa.Utility{
//			aa.Log{Scale: 5, Shift: 10, C: 100},
//			aa.Power{Scale: 2, Beta: 0.5, C: 100},
//			aa.SatExp{Scale: 3, K: 20, C: 100},
//		},
//	}
//	sol := aa.Solve(inst)
//	fmt.Println(sol.Utility(inst), sol.Server, sol.Alloc)
//
// Every solver entry point here is a thin shim over internal/engine —
// the repository's unified request pipeline (named-backend registry +
// workspace pooling + invariant checking + telemetry + cancellation) —
// so a library call, an experiment trial, a CLI invocation and an
// aaserve request all execute the same code path. For concurrent
// workloads, SolveBatch and SolverPool fan independent solves out
// across a worker pool with per-request cancellation, bounded queueing
// and backpressure (see internal/solverpool).
//
// Beyond Solve, the package re-exports the super-optimal upper bound,
// Algorithm 1, the exact solvers for small instances, the comparison
// heuristics from the paper's evaluation, the synthetic workload
// generator of §VII, and the experiment harness that regenerates every
// figure of the paper. Deeper substrates (the multicore cache simulator,
// hosting and cloud scenarios, and the heterogeneous/multi-resource/
// online extensions) live under internal/ and are exercised through the
// example programs and cmd tools.
package aa

import (
	"context"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/experiment"
	"aa/internal/gen"
	"aa/internal/rng"
	"aa/internal/solverpool"
	"aa/internal/utility"
)

// Alpha is the approximation ratio 2(√2−1) ≈ 0.8284 guaranteed by both
// assignment algorithms (Theorems V.16 and VI.1 of the paper).
var Alpha = core.Alpha

// Core model types.
type (
	// Instance is an AA problem: M homogeneous servers of capacity C and
	// one Utility per thread.
	Instance = core.Instance
	// Assignment maps each thread to a server and an allocation.
	Assignment = core.Assignment
	// Utility is a thread's nonnegative, nondecreasing, concave utility
	// function over [0, C].
	Utility = utility.Func
	// SuperOpt is the pooled-knapsack relaxation: the upper bound F̂ and
	// allocations ĉ_i that drive the approximation algorithms.
	SuperOpt = core.SuperOpt
	// Linearized is the two-segment surrogate utility from the paper's
	// Equation 1.
	Linearized = core.Linearized
)

// Utility families (all concave, documented in internal/utility).
type (
	// Linear is f(x) = Slope·x.
	Linear = utility.Linear
	// CappedLinear is f(x) = Slope·min(x, Knee).
	CappedLinear = utility.CappedLinear
	// Power is f(x) = Scale·x^Beta, Beta ∈ (0, 1].
	Power = utility.Power
	// Log is f(x) = Scale·ln(1 + x/Shift).
	Log = utility.Log
	// SatExp is f(x) = Scale·(1 − e^(−x/K)).
	SatExp = utility.SatExp
	// Saturating is f(x) = Scale·x/(x + K).
	Saturating = utility.Saturating
	// PiecewiseLinear is a concave piecewise-linear curve through knots.
	PiecewiseLinear = utility.PiecewiseLinear
	// Sampled is a smooth PCHIP-interpolated curve through samples.
	Sampled = utility.Sampled
)

// Utility combinators (concavity-preserving).
type (
	// Scaled multiplies a utility by a nonnegative factor.
	Scaled = utility.Scaled
	// Sum is the pointwise sum of utilities.
	Sum = utility.Sum
	// Min is the pointwise minimum (e.g. a demand cap).
	Min = utility.Min
	// Offset adds a nonnegative constant.
	Offset = utility.Offset
)

// NewPiecewiseLinear builds a concave piecewise-linear utility through
// (xs[i], ys[i]); xs must start at 0 and the last knot defines the domain.
func NewPiecewiseLinear(xs, ys []float64) (*PiecewiseLinear, error) {
	return utility.NewPiecewiseLinear(xs, ys)
}

// NewSampled builds a smooth monotone utility through sampled points via
// PCHIP interpolation (the paper's own curve construction).
func NewSampled(xs, ys []float64) (*Sampled, error) {
	return utility.NewSampled(xs, ys)
}

// ValidateUtility numerically checks the three model assumptions
// (nonnegative, nondecreasing, concave) on a sample grid.
func ValidateUtility(f Utility, samples int, tol float64) error {
	return utility.Validate(f, samples, tol)
}

// engineSolve routes a facade call through the shared engine pipeline.
// The facade's no-error signatures predate the engine; an invalid
// instance (or a post-solve check violation under EnableChecks) yields
// the zero Assignment rather than a bogus result.
func engineSolve(backend string, req *engine.Request) Assignment {
	req.Backend = backend
	resp, err := engine.Default().Solve(context.Background(), req)
	if err != nil {
		return Assignment{}
	}
	return resp.Assignment
}

// Solve runs Algorithm 2, the paper's O(n (log mC)²) assignment with
// approximation ratio Alpha, through the engine pipeline. This is the
// recommended solver.
func Solve(in *Instance) Assignment {
	return engineSolve("assign2", &engine.Request{Instance: in})
}

// SolveAlgorithm1 runs Algorithm 1, the O(mn² + n (log mC)²) greedy with
// the same guarantee; it is kept for completeness and ablation.
func SolveAlgorithm1(in *Instance) Assignment {
	return engineSolve("assign1", &engine.Request{Instance: in})
}

// SolveExact finds an optimal assignment by branch and bound. It is
// exponential in the worst case (the problem is NP-hard) and refuses
// instances whose search exceeds maxNodes (0 = default limit); intended
// for small instances and calibration.
func SolveExact(in *Instance, maxNodes int) (Assignment, error) {
	resp, err := engine.Default().Solve(context.Background(),
		&engine.Request{Instance: in, Backend: "exact", MaxNodes: maxNodes})
	if err != nil {
		return Assignment{}, err
	}
	return resp.Assignment, nil
}

// SuperOptimal computes the paper's pooled-capacity upper bound: no
// feasible assignment can exceed its Total.
func SuperOptimal(in *Instance) SuperOpt { return core.SuperOptimal(in) }

// Improve post-optimizes an assignment with single-thread relocation
// local search (re-allocating affected servers optimally). Utility never
// decreases; maxMoves 0 means n·m moves. Useful after Solve on hard
// two-class workloads. Returns the result and the number of moves.
func Improve(in *Instance, a Assignment, maxMoves int) (Assignment, int) {
	return core.Improve(in, a, maxMoves)
}

// SolveGreedyMarginal is a strong baseline beyond the paper's four
// heuristics: marginal-gain greedy placement with optimal per-server
// allocation. No approximation guarantee; slower than Solve.
func SolveGreedyMarginal(in *Instance) Assignment {
	return engineSolve("greedy", &engine.Request{Instance: in})
}

// Polish keeps an assignment's placement but re-solves every server's
// allocation optimally against the original utilities. Utility never
// decreases; cheap (one concave allocation per server) and recommended
// after Solve when the last fraction of a percent matters.
func Polish(in *Instance, a Assignment) Assignment {
	return core.PolishAllocations(in, a)
}

// Batch solving (internal/solverpool): a worker-pool engine that fans
// independent solves out across GOMAXPROCS workers with per-request
// context cancellation, bounded queueing with reject-with-error
// backpressure, and atomic counters.
type (
	// SolverPool is a long-lived worker pool for streams of solve
	// requests. Create with NewSolverPool, release with Close.
	SolverPool = solverpool.Pool
	// SolverPoolOptions configure worker count and queue depth.
	SolverPoolOptions = solverpool.Options
	// SolverPoolStats is a snapshot of a pool's counters.
	SolverPoolStats = solverpool.Stats
)

// ErrQueueFull is the backpressure signal returned by SolverPool.Submit
// when the bounded job queue is at capacity.
var ErrQueueFull = solverpool.ErrQueueFull

// NewSolverPool starts a batch-solve worker pool. The zero options give
// GOMAXPROCS workers and a queue of twice that depth.
func NewSolverPool(opts SolverPoolOptions) *SolverPool { return solverpool.New(opts) }

// SolveBatch solves the instances concurrently across GOMAXPROCS
// workers and returns one Algorithm 2 assignment per instance, in input
// order, through the engine pipeline. The first failure cancels the
// remaining solves; cancelling ctx returns promptly with ctx.Err().
// Callers with a steady stream of requests should hold a NewSolverPool
// instead of paying pool startup per batch.
func SolveBatch(ctx context.Context, ins []*Instance) ([]Assignment, error) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	reqs := make([]*engine.Request, len(ins))
	for i, in := range ins {
		reqs[i] = &engine.Request{Instance: in}
	}
	resps, err := eng.SolveBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]Assignment, len(resps))
	for i, resp := range resps {
		out[i] = resp.Assignment
	}
	return out, nil
}

// Verification (internal/check): opt-in invariant checking for solver
// outputs. Verify enforces strict feasibility (thread caps included,
// unlike Assignment.Validate); VerifyRatio measures F against the
// super-optimal bound F̂ and its CheckAlpha/CheckBound methods flag
// violations of the proven guarantees. EnableChecks turns on
// process-wide post-solve verification in SolverPool, SolveBatch, the
// experiment harness and the online simulator — the library form of the
// CLIs' -check flag. Outcomes are counted in the aa_check_total and
// aa_check_violations_total telemetry metrics.

// CheckReport is the F/F̂ ratio report returned by VerifyRatio.
type CheckReport = check.RatioReport

// Typed verification errors, for errors.Is classification.
var (
	// ErrInfeasible wraps every feasibility violation found by Verify or
	// a checked solve.
	ErrInfeasible = check.ErrInfeasible
	// ErrRatioViolation wraps every approximation-ratio violation.
	ErrRatioViolation = check.ErrRatio
)

// Verify checks an assignment against the hard constraints of the AA
// problem: valid servers, finite nonnegative allocations within each
// thread's cap, and per-server loads within C(1+eps). eps <= 0 uses the
// default tolerance (1e-6).
func Verify(in *Instance, a Assignment, eps float64) error {
	return check.Feasible(in, a, eps)
}

// VerifyRatio computes the assignment's utility F against a freshly
// computed super-optimal bound F̂.
func VerifyRatio(in *Instance, a Assignment) CheckReport {
	return check.Ratio(in, a)
}

// EnableChecks turns on process-wide post-solve verification; a solve
// whose result violates feasibility or the α guarantee then fails with
// ErrInfeasible or ErrRatioViolation instead of returning the result.
func EnableChecks() { check.Enable() }

// DisableChecks turns process-wide verification back off.
func DisableChecks() { check.Disable() }

// Rand is the deterministic random generator used by the stochastic
// heuristics and the workload generator.
type Rand = rng.Rand

// NewRand returns a deterministic generator seeded with seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Heuristics from the paper's evaluation (§VII). UU/UR assign round
// robin, RU/RR assign uniformly at random; the second letter chooses
// equal (U) or random (R) per-server allocation.
var (
	HeuristicUU = core.AssignUU
	HeuristicUR = core.AssignUR
	HeuristicRU = core.AssignRU
	HeuristicRR = core.AssignRR
)

// FixedRequest is the introduction's strawman: each thread demands a
// fixed amount and is placed first-fit with no allocation adjustment.
func FixedRequest(in *Instance, requests []float64) Assignment {
	return core.AssignFixedRequest(in, requests)
}

// Workload generation (§VII): distributions for the three-point PCHIP
// thread construction.
type (
	// Dist is a distribution over nonnegative utility values.
	Dist = gen.Dist
	// UniformDist draws from [Lo, Hi).
	UniformDist = gen.Uniform
	// NormalDist draws from a positive-truncated normal.
	NormalDist = gen.Normal
	// PowerLawDist draws from p(x) ∝ x^(−Alpha) on [Xmin, ∞).
	PowerLawDist = gen.PowerLaw
	// DiscreteDist draws ℓ with probability γ, else θ·ℓ.
	DiscreteDist = gen.Discrete
)

// GenerateInstance draws an instance with n threads from dist, matching
// the paper's workload generator.
func GenerateInstance(dist Dist, m int, c float64, n int, r *Rand) (*Instance, error) {
	return gen.Instance(dist, m, c, n, r)
}

// Experiment harness types for regenerating the paper's figures.
type (
	// ExperimentSpec describes one figure's sweep.
	ExperimentSpec = experiment.Spec
	// ExperimentResult is a completed figure run.
	ExperimentResult = experiment.Result
)

// Figures returns the specs of every figure in the paper's evaluation
// with the given trial count (the paper uses 1000).
func Figures(trials int) []ExperimentSpec { return experiment.AllFigures(trials) }

// RunExperiment executes a figure spec deterministically in (spec, seed).
func RunExperiment(spec ExperimentSpec, seed uint64, workers int) (*ExperimentResult, error) {
	return experiment.Run(spec, seed, workers)
}

// RunExperimentContext is RunExperiment with cancellation: the trials
// fan out across a solver pool with the given worker count, and a
// cancelled or expired ctx aborts the run promptly. Results are
// identical for every worker count.
func RunExperimentContext(ctx context.Context, spec ExperimentSpec, seed uint64, workers int) (*ExperimentResult, error) {
	return experiment.RunContext(ctx, spec, seed, workers)
}
