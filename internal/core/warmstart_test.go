package core_test

// Tests for the warm-start repair path (SuperOptimalWarm / Assign2Warm)
// across the full figure workload corpus: the repaired assignment must
// stay feasible and hold the α-ratio bound against its own warm F̂ — the
// exact acceptance contract the engine's cache middleware enforces
// before serving a warm result.

import (
	"math"
	"testing"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
	"aa/internal/utility"
)

// perturb removes the last k threads of in and appends k fresh draws
// from the same distribution, modeling a churn step: most threads carry
// over, a few change. It returns the new instance and the index of the
// first changed slot.
func perturb(t *testing.T, in *core.Instance, dist gen.Dist, k int, r *rng.Rand) *core.Instance {
	t.Helper()
	n := in.N()
	if k > n {
		k = n
	}
	threads := make([]utility.Func, n)
	copy(threads, in.Threads)
	for i := n - k; i < n; i++ {
		f, err := gen.Thread(dist, in.C, r)
		if err != nil {
			t.Fatalf("gen.Thread: %v", err)
		}
		threads[i] = f
	}
	return &core.Instance{M: in.M, C: in.C, Threads: threads}
}

// seedFrom builds a WarmSeed for cur from a cold solve of prev: threads
// [0, n-k) carry their cached placement, the last k slots are marked
// uncovered for the repair pass.
func seedFrom(prev core.Assignment, lambda float64, n, k int) core.WarmSeed {
	seed := core.WarmSeed{
		Lambda: lambda,
		Server: make([]int, n),
		Alloc:  make([]float64, n),
	}
	for i := range seed.Server {
		seed.Server[i] = -1
	}
	for i := 0; i < n-k && i < len(prev.Server); i++ {
		seed.Server[i] = prev.Server[i]
		seed.Alloc[i] = prev.Alloc[i]
	}
	return seed
}

func TestSuperOptimalWarmMatchesColdBound(t *testing.T) {
	base := rng.New(4040)
	for wi, wl := range check.FigureWorkloads() {
		r := base.Split(uint64(wi))
		in, err := gen.Instance(wl.Dist, 6, 100, 80, r)
		if err != nil {
			t.Fatalf("%s: gen.Instance: %v", wl.Name, err)
		}
		cold := core.SuperOptimal(in)
		w := core.GetWorkspace()
		warm := w.SuperOptimalWarm(in, cold.Lambda)
		tol := 1e-6 * (1 + math.Abs(cold.Total))
		if math.Abs(warm.Total-cold.Total) > tol {
			t.Fatalf("%s: warm F̂ %v vs cold %v", wl.Name, warm.Total, cold.Total)
		}
		core.PutWorkspace(w)
	}
}

func TestAssign2WarmHoldsContractAcrossCorpus(t *testing.T) {
	base := rng.New(7070)
	for wi, wl := range check.FigureWorkloads() {
		// Shapes at the cache's operating point: churn of k ≤ 8 threads
		// against instances one to two orders of magnitude larger. (At
		// high churn fractions — say 4 of 40 heavy-tailed threads — the
		// repair can legitimately lose the α bound; the engine middleware
		// catches that with its probe and falls back to a cold solve,
		// covered by the engine tests.)
		for _, shape := range []struct{ m, n, k int }{
			{4, 200, 0}, {4, 200, 4}, {8, 800, 8}, {3, 300, 1}, {6, 500, 8},
		} {
			for trial := 0; trial < 3; trial++ {
				r := base.SplitPath(uint64(wi), uint64(shape.m), uint64(shape.n), uint64(trial))
				prev, err := gen.Instance(wl.Dist, shape.m, 100, shape.n, r)
				if err != nil {
					t.Fatalf("%s: gen.Instance: %v", wl.Name, err)
				}
				cur := perturb(t, prev, wl.Dist, shape.k, r)

				so := core.SuperOptimal(prev)
				cold := core.Assign2(prev)
				seed := seedFrom(cold, so.Lambda, cur.N(), shape.k)

				w := core.GetWorkspace()
				var out core.Assignment
				warmSo := w.Assign2Warm(cur, seed, &out)
				core.PutWorkspace(w)

				label := wl.Name
				if err := check.ProbeFeasible(cur, out, 0); err != nil {
					t.Fatalf("%s m=%d n=%d k=%d trial=%d: warm repair infeasible: %v",
						label, shape.m, shape.n, shape.k, trial, err)
				}
				rep := check.RatioAgainst(warmSo.Total, cur, out)
				if err := rep.ProbeAlpha(0); err != nil {
					t.Fatalf("%s m=%d n=%d k=%d trial=%d: warm repair ratio: %v (F/F̂ = %v)",
						label, shape.m, shape.n, shape.k, trial, err, rep.Ratio)
				}
			}
		}
	}
}

func TestAssign2WarmFullSeedReproducesColdPlacement(t *testing.T) {
	// With every thread covered by the seed (k = 0, same instance), the
	// repair pass has nothing to place: the output must be the seeded
	// assignment verbatim, and the warm F̂ the cold one.
	in, err := gen.Instance(gen.DefaultUniform, 5, 100, 64, rng.New(11))
	if err != nil {
		t.Fatalf("gen.Instance: %v", err)
	}
	so := core.SuperOptimal(in)
	cold := core.Assign2(in)
	seed := seedFrom(cold, so.Lambda, in.N(), 0)

	w := core.GetWorkspace()
	var out core.Assignment
	warmSo := w.Assign2Warm(in, seed, &out)
	core.PutWorkspace(w)

	for i := range cold.Server {
		if out.Server[i] != cold.Server[i] || out.Alloc[i] != cold.Alloc[i] {
			t.Fatalf("thread %d: warm (%d,%v) != cold (%d,%v)",
				i, out.Server[i], out.Alloc[i], cold.Server[i], cold.Alloc[i])
		}
	}
	tol := 1e-9 * (1 + math.Abs(so.Total))
	if math.Abs(warmSo.Total-so.Total) > tol {
		t.Fatalf("warm F̂ %v vs cold %v", warmSo.Total, so.Total)
	}
}

func TestAssign2WarmAllThreadsUncovered(t *testing.T) {
	// A seed covering nothing (every slot -1) degenerates to a plain
	// Algorithm 2 pass over all threads with only the λ-search warm. The
	// warm F̂ allocation can differ from the cold one in the last float
	// bits (the two searches stop by different criteria), so placements
	// need not match bit for bit — but the repaired assignment must hold
	// the full Algorithm 2 contract: feasible and within α of its F̂.
	in, err := gen.Instance(gen.DefaultNormal, 4, 100, 50, rng.New(23))
	if err != nil {
		t.Fatalf("gen.Instance: %v", err)
	}
	so := core.SuperOptimal(in)
	seed := seedFrom(core.Assignment{}, so.Lambda, in.N(), in.N())

	w := core.GetWorkspace()
	var out core.Assignment
	warmSo := w.Assign2Warm(in, seed, &out)
	core.PutWorkspace(w)

	if err := check.ProbeFeasible(in, out, 0); err != nil {
		t.Fatalf("warm repair with empty seed infeasible: %v", err)
	}
	if err := check.RatioAgainst(warmSo.Total, in, out).ProbeAlpha(0); err != nil {
		t.Fatalf("warm repair with empty seed ratio: %v", err)
	}
}
