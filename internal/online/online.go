// Package online extends AA to a dynamic setting — the paper's third
// future-work item (§VIII): thread sets and utilities change over time
// ("in practice the utility functions of threads may change over time.
// Thus, we would like to integrate online performance measurements into
// our algorithms to produce dynamically optimal assignments").
//
// An event-driven simulator feeds a timeline of arrivals, departures and
// utility drifts (re-measurements) to a rebalancing policy. Between
// events the system accrues total utility per unit time; every thread
// migration (server change for an already-placed thread) costs a fixed
// penalty, modelling cache-refill or VM move cost. Policies trade
// assignment quality against migration churn:
//
//   - FullResolve re-runs Algorithm 2 on every event (best utility, most
//     migrations),
//   - Incremental never migrates: it only re-allocates within the
//     affected server (zero churn, degrades over time),
//   - Hybrid is incremental but triggers a full re-solve when measured
//     quality drops below a threshold of the super-optimal bound.
package online

import (
	"context"
	"fmt"
	"sort"

	"aa/internal/alloc"
	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/utility"
)

// EventKind discriminates timeline events.
type EventKind int

// Event kinds.
const (
	Arrive EventKind = iota // a new thread appears
	Depart                  // a thread leaves
	Drift                   // a thread's utility is re-measured
)

// Event is one timeline entry. Events must be sorted by Time.
type Event struct {
	Time float64
	Kind EventKind
	ID   int          // thread identity
	Util utility.Func // for Arrive and Drift
}

// Placement is one thread's current server and allocation.
type Placement struct {
	Server int
	Alloc  float64
}

// State is the live system: the active threads and their placements.
type State struct {
	M       int
	C       float64
	Threads map[int]utility.Func
	Place   map[int]Placement

	// scr holds the scratch a policy reuses across events — the sorted
	// id order, the instance snapshot, the engine request/response of a
	// full re-solve, and the per-server reallocation buffers — so a
	// steady-state event loop performs no per-event heap allocation
	// (pinned by TestReactStableAllocs). A State is single-goroutine,
	// like the simulation that owns it.
	scr struct {
		ids     []int
		threads []utility.Func
		inst    core.Instance
		req     engine.Request
		resp    engine.Response
		members []int
		capped  []cappedAt
		fs      []utility.Func
		dst     []float64
	}
}

// NewState returns an empty system of m servers with capacity c.
func NewState(m int, c float64) *State {
	return &State{M: m, C: c, Threads: map[int]utility.Func{}, Place: map[int]Placement{}}
}

// ids returns the active thread ids in ascending order (determinism).
// The returned slice is scratch owned by the state, valid until the
// next ids or instance call.
func (s *State) ids() []int {
	s.scr.ids = s.scr.ids[:0]
	for id := range s.Threads {
		s.scr.ids = append(s.scr.ids, id)
	}
	sort.Ints(s.scr.ids)
	return s.scr.ids
}

// TotalUtility returns the instantaneous utility rate Σ f_i(alloc_i).
func (s *State) TotalUtility() float64 {
	total := 0.0
	for id, f := range s.Threads {
		total += f.Value(s.Place[id].Alloc)
	}
	return total
}

// Loads returns the per-server allocation sums.
func (s *State) Loads() []float64 {
	loads := make([]float64, s.M)
	for _, p := range s.Place {
		loads[p.Server] += p.Alloc
	}
	return loads
}

// Validate checks the state's placements are feasible.
func (s *State) Validate(tol float64) error {
	for id := range s.Threads {
		p, ok := s.Place[id]
		if !ok {
			return fmt.Errorf("online: thread %d unplaced", id)
		}
		if p.Server < 0 || p.Server >= s.M {
			return fmt.Errorf("online: thread %d on invalid server %d", id, p.Server)
		}
		if p.Alloc < -tol {
			return fmt.Errorf("online: thread %d negative allocation", id)
		}
	}
	for id := range s.Place {
		if _, ok := s.Threads[id]; !ok {
			return fmt.Errorf("online: stale placement for departed thread %d", id)
		}
	}
	for j, load := range s.Loads() {
		if load > s.C+tol*(1+s.C) {
			return fmt.Errorf("online: server %d overloaded: %v > %v", j, load, s.C)
		}
	}
	return nil
}

// Check runs the cap-aware feasibility invariants of internal/check on
// the live state — the -check hook of aaonline. Unlike Validate it also
// enforces each thread's own utility cap (not just server capacity) and
// counts the outcome into the aa_check_* metrics.
func (s *State) Check(eps float64) error {
	in, ids := s.instance()
	if len(ids) == 0 {
		return nil
	}
	a := core.NewAssignment(len(ids))
	for k, id := range ids {
		p, ok := s.Place[id]
		if !ok {
			return fmt.Errorf("%w: thread %d unplaced", check.ErrInfeasible, id)
		}
		a.Server[k] = p.Server
		a.Alloc[k] = p.Alloc
	}
	return check.Feasible(in, a, eps)
}

// instance builds a core.Instance snapshot plus the id order used,
// reusing the state's scratch buffers. The snapshot is valid until the
// next instance or ids call.
func (s *State) instance() (*core.Instance, []int) {
	ids := s.ids()
	s.scr.threads = s.scr.threads[:0]
	for _, id := range ids {
		s.scr.threads = append(s.scr.threads, s.Threads[id])
	}
	s.scr.inst = core.Instance{M: s.M, C: s.C, Threads: s.scr.threads}
	return &s.scr.inst, ids
}

// reallocServer re-optimizes allocations within one server, leaving the
// thread→server map untouched. The capped wrappers, func slice and
// allocation destination are state scratch (pointers into the capped
// slice avoid per-member interface boxing), so a steady-state realloc
// allocates nothing.
func (s *State) reallocServer(j int) {
	scr := &s.scr
	scr.members = scr.members[:0]
	for _, id := range s.ids() {
		if s.Place[id].Server == j {
			scr.members = append(scr.members, id)
		}
	}
	n := len(scr.members)
	if n == 0 {
		return
	}
	if cap(scr.capped) < n {
		scr.capped = make([]cappedAt, n)
		scr.fs = make([]utility.Func, n)
	}
	scr.capped = scr.capped[:n]
	scr.fs = scr.fs[:n]
	for k, id := range scr.members {
		f := s.Threads[id]
		scr.capped[k] = cappedAt{f: f, c: minFloat(f.Cap(), s.C)}
		scr.fs[k] = &scr.capped[k]
	}
	res := alloc.ConcaveInto(scr.dst, scr.fs, s.C)
	scr.dst = res.Alloc
	for k, id := range scr.members {
		s.Place[id] = Placement{Server: j, Alloc: res.Alloc[k]}
	}
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// cappedAt mirrors core's internal capacity clamp for local reallocation.
type cappedAt struct {
	f utility.Func
	c float64
}

func (cf cappedAt) Value(x float64) float64 {
	if x > cf.c {
		x = cf.c
	}
	return cf.f.Value(x)
}

func (cf cappedAt) Deriv(x float64) float64 {
	if x >= cf.c {
		return 0
	}
	return cf.f.Deriv(x)
}

func (cf cappedAt) Cap() float64 { return cf.c }

// Policy reacts to an applied event by updating placements. Applying the
// event (mutating Threads) is the simulator's job; the policy only
// repairs Place. It returns the set of migrated thread ids (server
// changes of threads that existed before the event).
type Policy interface {
	Name() string
	React(s *State, ev Event) (migrated []int)
}

// FullResolve re-runs Algorithm 2 on the active set after every event.
type FullResolve struct{}

// Name implements Policy.
func (FullResolve) Name() string { return "full-resolve" }

// React implements Policy. The re-solve rides the engine pipeline
// (pooled workspace, telemetry, process-wide checks) through the
// state's reusable request/response, so a stable steady state re-solves
// without allocating. In the near-impossible event the engine rejects
// the solve (a post-solve check violation), placements are left
// untouched and the simulator's own post-event validation reports it.
func (FullResolve) React(s *State, ev Event) []int {
	// Drop placements of departed threads first.
	for id := range s.Place {
		if _, ok := s.Threads[id]; !ok {
			delete(s.Place, id)
		}
	}
	in, ids := s.instance()
	if len(ids) == 0 {
		return nil
	}
	s.scr.req = engine.Request{Instance: in}
	if err := engine.Default().SolveInto(context.Background(), &s.scr.req, &s.scr.resp); err != nil {
		return nil
	}
	a := &s.scr.resp.Assignment
	var migrated []int
	for k, id := range ids {
		old, existed := s.Place[id]
		next := Placement{Server: a.Server[k], Alloc: a.Alloc[k]}
		if existed && id != ev.ID && old.Server != next.Server {
			migrated = append(migrated, id)
		}
		s.Place[id] = next
	}
	return migrated
}

// Incremental never migrates existing threads: arrivals go to the
// least-loaded server, and only the affected server is re-allocated.
type Incremental struct{}

// Name implements Policy.
func (Incremental) Name() string { return "incremental" }

// React implements Policy.
func (Incremental) React(s *State, ev Event) []int {
	switch ev.Kind {
	case Arrive:
		loads := s.Loads()
		best := 0
		for j := 1; j < s.M; j++ {
			if loads[j] < loads[best] {
				best = j
			}
		}
		s.Place[ev.ID] = Placement{Server: best, Alloc: 0}
		s.reallocServer(best)
	case Depart:
		if p, ok := s.Place[ev.ID]; ok {
			delete(s.Place, ev.ID)
			s.reallocServer(p.Server)
		}
	case Drift:
		if p, ok := s.Place[ev.ID]; ok {
			s.reallocServer(p.Server)
		}
	}
	return nil
}

// Hybrid runs Incremental, then falls back to a full re-solve whenever
// the incremental state's utility drops below Threshold times the
// super-optimal bound of the active set (the paper's α ≈ 0.828 is the
// natural setting: rebuild when the incremental state is worse than the
// approximation guarantee).
type Hybrid struct {
	Threshold float64
}

// Name implements Policy.
func (h Hybrid) Name() string { return fmt.Sprintf("hybrid(%.2f)", h.Threshold) }

// React implements Policy.
func (h Hybrid) React(s *State, ev Event) []int {
	migrated := (Incremental{}).React(s, ev)
	in, _ := s.instance()
	if in.N() == 0 {
		return migrated
	}
	bound := core.SuperOptimal(in).Total
	if bound <= 0 || s.TotalUtility() >= h.Threshold*bound {
		return migrated
	}
	return append(migrated, (FullResolve{}).React(s, ev)...)
}

// Result summarizes a simulation.
type Result struct {
	UtilityIntegral float64 // ∫ total utility dt over the horizon
	Migrations      int     // thread moves caused by the policy
	MigrationCost   float64 // Migrations × per-move cost
	Net             float64 // UtilityIntegral − MigrationCost
	FinalThreads    int
}

// Simulate plays the event timeline (sorted by Time) under the policy,
// accruing utility between events and charging moveCost per migration.
// horizon is the end time; events at or after it are ignored.
func Simulate(m int, c float64, events []Event, policy Policy, moveCost, horizon float64) (Result, error) {
	s := NewState(m, c)
	var res Result
	now := 0.0
	for _, ev := range events {
		if ev.Time >= horizon {
			break
		}
		if ev.Time < now {
			return Result{}, fmt.Errorf("online: events out of order at t=%v", ev.Time)
		}
		res.UtilityIntegral += s.TotalUtility() * (ev.Time - now)
		now = ev.Time

		switch ev.Kind {
		case Arrive:
			if ev.Util == nil {
				return Result{}, fmt.Errorf("online: arrival %d without utility", ev.ID)
			}
			if _, exists := s.Threads[ev.ID]; exists {
				return Result{}, fmt.Errorf("online: duplicate arrival %d", ev.ID)
			}
			s.Threads[ev.ID] = ev.Util
		case Depart:
			delete(s.Threads, ev.ID)
		case Drift:
			if _, exists := s.Threads[ev.ID]; !exists {
				continue // drift for a departed thread: ignore
			}
			if ev.Util == nil {
				return Result{}, fmt.Errorf("online: drift %d without utility", ev.ID)
			}
			s.Threads[ev.ID] = ev.Util
		}
		migrated := policy.React(s, ev)
		res.Migrations += len(migrated)
		if err := s.Validate(1e-6); err != nil {
			return Result{}, fmt.Errorf("online: after t=%v: %w", ev.Time, err)
		}
		if check.Enabled() {
			if err := s.Check(check.DefaultEps); err != nil {
				return Result{}, fmt.Errorf("online: after t=%v: %w", ev.Time, err)
			}
		}
	}
	res.UtilityIntegral += s.TotalUtility() * (horizon - now)
	res.MigrationCost = float64(res.Migrations) * moveCost
	res.Net = res.UtilityIntegral - res.MigrationCost
	res.FinalThreads = len(s.Threads)
	return res, nil
}
