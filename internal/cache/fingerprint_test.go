package cache

import (
	"bytes"
	"math/rand"
	"testing"

	"aa/internal/core"
	"aa/internal/utility"
)

// inst builds a small instance from closed-form utilities.
func inst(m int, c float64, fs ...utility.Func) *core.Instance {
	return &core.Instance{M: m, C: c, Threads: fs}
}

// threads draws n deterministic pseudo-random utilities spanning the
// closed-form families.
func threads(seedOffset, n int, c float64) []utility.Func {
	r := rand.New(rand.NewSource(int64(977 + seedOffset)))
	fs := make([]utility.Func, n)
	for i := range fs {
		switch r.Intn(4) {
		case 0:
			fs[i] = utility.Linear{Slope: 1 + r.Float64(), C: c}
		case 1:
			fs[i] = utility.Log{Scale: 1 + r.Float64(), Shift: 1 + r.Float64(), C: c}
		case 2:
			fs[i] = utility.Power{Scale: 1 + r.Float64(), Beta: 0.3 + 0.5*r.Float64(), C: c}
		default:
			fs[i] = utility.SatExp{Scale: 1 + r.Float64(), K: 10 + 50*r.Float64(), C: c}
		}
	}
	return fs
}

func mustCanon(t *testing.T, in *core.Instance) *Canonical {
	t.Helper()
	c, err := Canonicalize(in)
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	return c
}

func TestFingerprintOrderInvariance(t *testing.T) {
	fs := threads(0, 30, 100)
	in := inst(4, 100, fs...)
	fp := mustCanon(t, in).Fingerprint()

	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := r.Perm(len(fs))
		shuffled := make([]utility.Func, len(fs))
		for i, p := range perm {
			shuffled[i] = fs[p]
		}
		got := mustCanon(t, inst(4, 100, shuffled...)).Fingerprint()
		if got != fp {
			t.Fatalf("trial %d: permuted instance fingerprints differently:\n%s\n%s", trial, got, fp)
		}
	}
}

func TestFingerprintCollisionResistance(t *testing.T) {
	// Distinct instances — across sizes, shapes and parameters — must all
	// fingerprint differently. 600+ fingerprints at 256 bits: a single
	// collision here means the scheme is broken, not unlucky.
	seen := map[Fingerprint]string{}
	add := func(label string, in *core.Instance) {
		t.Helper()
		fp := mustCanon(t, in).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("collision between %s and %s", prev, label)
		}
		seen[fp] = label
	}
	for s := 0; s < 60; s++ {
		for _, n := range []int{1, 5, 17} {
			add("rand", inst(3, 100, threads(100+13*s+n, n, 100)...))
		}
	}
	base := threads(1, 8, 100)
	add("base", inst(3, 100, base...))
	add("m", inst(4, 100, base...))
	add("C", inst(3, 101, base...))
	add("dup-last", inst(3, 100, append(append([]utility.Func{}, base...), base[7])...))
	add("truncated", inst(3, 100, base[:7]...))
	mutated := append([]utility.Func{}, base...)
	mutated[3] = utility.Linear{Slope: 123.456, C: 100}
	add("one-thread", inst(3, 100, mutated...))
	capped := append([]utility.Func{}, base...)
	if l, ok := capped[0].(utility.Linear); ok {
		l.C = 50
		capped[0] = l
	} else {
		capped[0] = utility.Linear{Slope: 9, C: 50}
	}
	add("one-cap", inst(3, 100, capped...))
}

func TestCanonicalizeDeterministic(t *testing.T) {
	// Run-twice byte-compare: the canonical form (and everything derived
	// from it) must not depend on map iteration order or any other
	// per-run state.
	in := inst(5, 100, threads(42, 25, 100)...)
	a, b := mustCanon(t, in), mustCanon(t, in)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same instance fingerprints differently across runs")
	}
	for i := range a.Hashes {
		if a.Hashes[i] != b.Hashes[i] || a.Perm[i] != b.Perm[i] {
			t.Fatalf("canonical form differs at %d: (%x,%d) vs (%x,%d)",
				i, a.Hashes[i], a.Perm[i], b.Hashes[i], b.Perm[i])
		}
	}
}

func TestCanonicalPermRoundTrip(t *testing.T) {
	in := inst(3, 100, threads(9, 40, 100)...)
	c := mustCanon(t, in)
	if len(c.Hashes) != 40 || len(c.Perm) != 40 {
		t.Fatalf("canonical sizes %d/%d, want 40", len(c.Hashes), len(c.Perm))
	}
	for i := 1; i < len(c.Hashes); i++ {
		if bytes.Compare(c.Hashes[i-1][:], c.Hashes[i][:]) > 0 {
			t.Fatalf("hashes not sorted at %d", i)
		}
	}
	covered := make([]bool, 40)
	for _, orig := range c.Perm {
		if orig < 0 || orig >= 40 || covered[orig] {
			t.Fatalf("Perm is not a permutation: %v", c.Perm)
		}
		covered[orig] = true
	}
}

func TestCanonicalPermStableForDuplicates(t *testing.T) {
	// Equal curves hash equally; the stable sort must keep their original
	// indices ascending inside the run, so the i-th duplicate in one
	// instance pairs with the i-th in another.
	dup := utility.Log{Scale: 2, Shift: 5, C: 100}
	other := utility.Linear{Slope: 3, C: 100}
	in := inst(2, 100, dup, other, dup, dup)
	c := mustCanon(t, in)
	var dupIdx []int
	for k, orig := range c.Perm {
		if orig == 0 || orig == 2 || orig == 3 {
			_ = k
			dupIdx = append(dupIdx, orig)
		}
	}
	if len(dupIdx) != 3 || dupIdx[0] != 0 || dupIdx[1] != 2 || dupIdx[2] != 3 {
		t.Fatalf("duplicate run not in ascending original order: %v (Perm %v)", dupIdx, c.Perm)
	}
}

func TestCanonicalizeUnencodable(t *testing.T) {
	bad := inst(2, 100, unencodable{})
	if _, err := Canonicalize(bad); err == nil {
		t.Fatal("expected an error for a utility type without a wire encoding")
	}
}

// unencodable is a utility.Func instio has no case for.
type unencodable struct{}

func (unencodable) Value(x float64) float64 { return x }
func (unencodable) Deriv(x float64) float64 { return 1 }
func (unencodable) Cap() float64            { return 1 }

func TestRequestKeyDiscriminates(t *testing.T) {
	fp := mustCanon(t, inst(3, 100, threads(3, 6, 100)...)).Fingerprint()
	base := Params{Backend: "assign2"}
	keys := map[Key]string{}
	add := func(label string, p Params) {
		t.Helper()
		k := RequestKey(fp, p)
		if prev, dup := keys[k]; dup {
			t.Fatalf("request key collision between %s and %s", prev, label)
		}
		keys[k] = label
	}
	add("base", base)
	add("backend", Params{Backend: "assign1"})
	add("seed", Params{Backend: "assign2", Seed: 1})
	add("maxnodes", Params{Backend: "assign2", MaxNodes: 100})
	add("maxmoves", Params{Backend: "assign2", MaxMoves: 100})
	add("alt", Params{Backend: "assign2", Alt: true})

	// Same params, different fingerprint.
	fp2 := mustCanon(t, inst(4, 100, threads(3, 6, 100)...)).Fingerprint()
	if RequestKey(fp, base) == RequestKey(fp2, base) {
		t.Fatal("different fingerprints share a request key")
	}
	// Determinism.
	if RequestKey(fp, base) != RequestKey(fp, base) {
		t.Fatal("request key not deterministic")
	}
}

func TestGroupKey(t *testing.T) {
	a := mustCanon(t, inst(3, 100, threads(1, 4, 100)...))
	b := mustCanon(t, inst(3, 100, threads(2, 9, 100)...)) // different threads, same (m, C)
	if a.GroupKey("assign2") != b.GroupKey("assign2") {
		t.Fatal("same (m, C, backend) should share a group")
	}
	if a.GroupKey("assign2") == a.GroupKey("assign1") {
		t.Fatal("backend should separate groups")
	}
	c := mustCanon(t, inst(4, 100, threads(1, 4, 100)...))
	if a.GroupKey("assign2") == c.GroupKey("assign2") {
		t.Fatal("m should separate groups")
	}
	d := mustCanon(t, inst(3, 200, threads(1, 4, 100)...))
	if a.GroupKey("assign2") == d.GroupKey("assign2") {
		t.Fatal("C should separate groups")
	}
}

func TestDiff(t *testing.T) {
	fs := threads(5, 10, 100)
	a := mustCanon(t, inst(3, 100, fs...))

	t.Run("identical", func(t *testing.T) {
		b := mustCanon(t, inst(3, 100, fs...))
		matched, onlyA, onlyB := Diff(a, b)
		if len(matched) != 10 || len(onlyA) != 0 || len(onlyB) != 0 {
			t.Fatalf("matched %d onlyA %d onlyB %d, want 10/0/0", len(matched), len(onlyA), len(onlyB))
		}
		for _, pr := range matched {
			if pr[0] != pr[1] {
				t.Fatalf("identical canonical forms should match positionally: %v", pr)
			}
		}
	})

	t.Run("k-thread churn", func(t *testing.T) {
		churned := append([]utility.Func{}, fs...)
		churned[2] = utility.Linear{Slope: 77.7, C: 100}
		churned[7] = utility.Log{Scale: 88.8, Shift: 1, C: 100}
		b := mustCanon(t, inst(3, 100, churned...))
		matched, onlyA, onlyB := Diff(a, b)
		if len(matched) != 8 || len(onlyA) != 2 || len(onlyB) != 2 {
			t.Fatalf("matched %d onlyA %d onlyB %d, want 8/2/2", len(matched), len(onlyA), len(onlyB))
		}
		// Matched pairs must point at equal hashes, and matched positions
		// in b must map back to unchanged original threads.
		for _, pr := range matched {
			if a.Hashes[pr[0]] != b.Hashes[pr[1]] {
				t.Fatalf("matched pair %v has unequal hashes", pr)
			}
			orig := b.Perm[pr[1]]
			if orig == 2 || orig == 7 {
				t.Fatalf("changed thread %d reported as matched", orig)
			}
		}
	})

	t.Run("added and removed", func(t *testing.T) {
		grown := append(append([]utility.Func{}, fs...), utility.SatExp{Scale: 2, K: 5, C: 100})
		b := mustCanon(t, inst(3, 100, grown...))
		matched, onlyA, onlyB := Diff(a, b)
		if len(matched) != 10 || len(onlyA) != 0 || len(onlyB) != 1 {
			t.Fatalf("grow: matched %d onlyA %d onlyB %d, want 10/0/1", len(matched), len(onlyA), len(onlyB))
		}
		matched, onlyA, onlyB = Diff(b, a)
		if len(matched) != 10 || len(onlyA) != 1 || len(onlyB) != 0 {
			t.Fatalf("shrink: matched %d onlyA %d onlyB %d, want 10/1/0", len(matched), len(onlyA), len(onlyB))
		}
	})

	t.Run("duplicates pair in order", func(t *testing.T) {
		dup := utility.Log{Scale: 2, Shift: 5, C: 100}
		x := mustCanon(t, inst(2, 100, dup, dup, dup))
		y := mustCanon(t, inst(2, 100, dup, dup))
		matched, onlyA, onlyB := Diff(x, y)
		if len(matched) != 2 || len(onlyA) != 1 || len(onlyB) != 0 {
			t.Fatalf("matched %d onlyA %d onlyB %d, want 2/1/0", len(matched), len(onlyA), len(onlyB))
		}
	})

	t.Run("deterministic", func(t *testing.T) {
		churned := append([]utility.Func{}, fs...)
		churned[4] = utility.Power{Scale: 5, Beta: 0.5, C: 100}
		b := mustCanon(t, inst(3, 100, churned...))
		m1, a1, b1 := Diff(a, b)
		m2, a2, b2 := Diff(a, b)
		if len(m1) != len(m2) || len(a1) != len(a2) || len(b1) != len(b2) {
			t.Fatal("diff sizes differ across runs")
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("diff pair %d differs across runs", i)
			}
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("onlyA %d differs across runs", i)
			}
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("onlyB %d differs across runs", i)
			}
		}
	})
}

func TestStringForms(t *testing.T) {
	c := mustCanon(t, inst(2, 100, threads(8, 3, 100)...))
	fp := c.Fingerprint()
	if len(fp.String()) != 64 {
		t.Fatalf("fingerprint hex %q not 64 chars", fp.String())
	}
	k := RequestKey(fp, Params{Backend: "assign2"})
	if len(k.String()) != 64 {
		t.Fatalf("key hex %q not 64 chars", k.String())
	}
}

// TestCanonicalizeLargeRadixPath drives Canonicalize through the radix
// sort (n ≥ 256) with duplicate runs, cross-checking the exact
// invariants the small-n comparison sort gives: hashes ascending, Perm
// a permutation, duplicates in ascending original order, and the
// fingerprint invariant under shuffling at scale.
func TestCanonicalizeLargeRadixPath(t *testing.T) {
	const n = 1000
	c := 100.0
	fs := make([]utility.Func, 0, n)
	fs = append(fs, threads(3, 600, c)...)
	// 100 distinct curves × 4 copies each, interleaved so duplicate runs
	// arrive scattered through the input order.
	dups := threads(4, 100, c)
	for copyRound := 0; copyRound < 4; copyRound++ {
		fs = append(fs, dups...)
	}
	in := inst(8, c, fs...)
	canon := mustCanon(t, in)

	seen := make([]bool, n)
	for k, orig := range canon.Perm {
		if orig < 0 || orig >= n || seen[orig] {
			t.Fatalf("Perm[%d] = %d is not a permutation", k, orig)
		}
		seen[orig] = true
	}
	for k := 1; k < n; k++ {
		switch bytes.Compare(canon.Hashes[k-1][:], canon.Hashes[k][:]) {
		case 1:
			t.Fatalf("hashes out of order at %d", k)
		case 0:
			if canon.Perm[k-1] >= canon.Perm[k] {
				t.Fatalf("duplicate run at %d not in ascending original order: %d then %d",
					k, canon.Perm[k-1], canon.Perm[k])
			}
		}
	}

	fp := canon.Fingerprint()
	r := rand.New(rand.NewSource(11))
	perm := r.Perm(n)
	shuffled := make([]utility.Func, n)
	for i, p := range perm {
		shuffled[i] = fs[p]
	}
	if got := mustCanon(t, inst(8, c, shuffled...)).Fingerprint(); got != fp {
		t.Fatalf("large shuffled instance fingerprints differently:\n%s\n%s", got, fp)
	}
}
