package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"aa/internal/telemetry"
)

// ErrUnknownBackend is wrapped by every error caused by a request naming
// a backend that is not in the registry.
var ErrUnknownBackend = errors.New("engine: unknown backend")

// Backend is one named solver in the registry. The core algorithms
// (assign1, assign2, polish, ls, greedy, exact and the four placement
// heuristics) register themselves from this package; variant packages
// (online, hetero, multires, cloud, cosched, hosting) register adapters
// from their own init functions, so the registry's contents follow the
// importing binary's dependency graph — a binary that never imports
// internal/hetero does not advertise a "hetero" backend.
type Backend struct {
	// Name is the canonical registry key, e.g. "assign2".
	Name string
	// Aliases are alternative names resolving to this backend (the CLI
	// short forms: "a2" for assign2, "gm" for greedy, ...).
	Aliases []string
	// Doc is a one-line description shown by aasolve -h and aaserve
	// /backends.
	Doc string
	// Guaranteed marks backends that carry the paper's α = 2(√2−1)
	// approximation guarantee (Theorems V.5/V.6): Assign1, Assign2 and
	// anything built on top that only increases F (polish, local
	// search). The check middleware holds guaranteed backends to
	// α·F̂ ≤ F ≤ F̂ and everything else to F ≤ F̂ only.
	Guaranteed bool
	// Stochastic marks backends whose result depends on Request.Seed.
	Stochastic bool
	// Handle runs the solve. It must honor ctx between expensive stages,
	// write the result into resp, and treat resp's buffers as reusable
	// scratch (resize, don't assume empty).
	Handle Handler

	// Per-backend request/failure counters, created at Register time so
	// every registered backend appears on /metrics at zero.
	requests *telemetry.Counter
	failures *telemetry.Counter
}

var registry = struct {
	mu    sync.RWMutex
	byKey map[string]*Backend // canonical names and aliases
	names []string            // canonical names only, sorted lazily
}{byKey: make(map[string]*Backend)}

// Register installs a backend under its canonical name and aliases. It
// panics on an empty name, a nil handler, or any key collision —
// registration happens from init functions, where a collision is a
// programming error, not a runtime condition.
func Register(b Backend) {
	if b.Name == "" || b.Handle == nil {
		panic("engine: Register needs a name and a handler")
	}
	bk := new(Backend)
	*bk = b
	bk.requests = telemetry.Default.Counter(telemetry.Label("aa_engine_requests_total", "backend", bk.Name))
	bk.failures = telemetry.Default.Counter(telemetry.Label("aa_engine_failures_total", "backend", bk.Name))

	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, key := range append([]string{bk.Name}, bk.Aliases...) {
		if _, dup := registry.byKey[key]; dup {
			panic(fmt.Sprintf("engine: backend %q registered twice", key))
		}
		registry.byKey[key] = bk
	}
	registry.names = append(registry.names, bk.Name)
	sort.Strings(registry.names)
}

// Lookup resolves a canonical name or alias to its backend.
func Lookup(name string) (*Backend, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	bk, ok := registry.byKey[name]
	return bk, ok
}

// Backends returns the sorted canonical names of every registered
// backend.
func Backends() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return append([]string(nil), registry.names...)
}

// resolve picks the backend for a request: the request's own name if
// set, otherwise the engine's default.
func resolve(name, def string) (*Backend, error) {
	if name == "" {
		name = def
	}
	bk, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownBackend, name, Backends())
	}
	return bk, nil
}
