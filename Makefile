# Convenience targets for the aa reproduction.

GO ?= go

.PHONY: all build test vet fmtcheck tidy-check race check-smoke fuzz-smoke bench-smoke telemetry-smoke metrics-smoke serve-smoke batch-smoke cache-smoke trace-smoke replay-smoke relay-smoke cover-floor staticcheck vulncheck bench-json bench-regress bench-1m ci bench figures examples cover clean

all: build vet fmtcheck test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fail if any file needs gofmt (same check CI runs).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# go.mod must be tidy. -diff needs Go 1.23+; skips with a notice on
# older toolchains (CI runs it on the stable lane only).
tidy-check:
	@if $(GO) mod tidy -help 2>&1 | grep -q -- '-diff'; then \
		$(GO) mod tidy -diff; \
	else \
		echo "go mod tidy -diff unsupported by this toolchain; skipping"; \
	fi

# Full test suite under the race detector.
race:
	$(GO) test -race ./...

# Differential-verification harness over every figure workload, plus the
# solver invariant property tests (mirrors the CI check-smoke step).
check-smoke:
	$(GO) test -run='TestDifferential|TestSolversSatisfyInvariants' -count=1 ./internal/check

# Ten seconds of fuzzing per target: the concave-allocation invariants
# and the two check-layer targets (go test allows one -fuzz match per
# invocation, hence the separate runs).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzConcaveFeasibleAndDominant -fuzztime=10s ./internal/alloc
	$(GO) test -run='^$$' -fuzz=FuzzFeasibleConcave -fuzztime=10s ./internal/check
	$(GO) test -run='^$$' -fuzz=FuzzDifferentialAssign -fuzztime=10s ./internal/check
	$(GO) test -run='^$$' -fuzz=FuzzAssign2Parallel -fuzztime=10s ./internal/check

# Every benchmark compiled and run once.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Disabled/enabled telemetry cost on the Algorithm 2 pipeline.
telemetry-smoke:
	$(GO) test -run='^$$' -bench=TelemetryOverhead -benchtime=1x .

# Live /metrics endpoint scrape against a running aabench.
metrics-smoke:
	./scripts/metrics_smoke.sh

# End-to-end aaserve check: solve + batch over HTTP, live aa_engine_*
# metrics, graceful SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# Streaming /solve/batch check: a ~35 MB batch must stream back
# byte-identical to the buffered path, twice (determinism), with the
# server's peak RSS below the body size, and a small -max-batch-bytes
# must produce the typed 413.
batch-smoke:
	./scripts/batch_stream_smoke.sh

# End-to-end solve-result cache check: aaserve with -cache memory must
# serve a repeated solve byte-identically with aa_cache_hits_total
# moved, and ?cache=bypass must solve without touching the cache.
cache-smoke:
	./scripts/cache_smoke.sh

# End-to-end tracing check: solve over HTTP with a caller-supplied
# traceparent, then require a well-formed JSONL trace file whose spans
# join the caller's trace with every parent resolving.
trace-smoke:
	./scripts/trace_smoke.sh

# Deterministic-replay gate: diurnal, flash, failures and a recorded
# trace replayed twice with the same seed; any byte difference between
# the canonical reports fails.
replay-smoke:
	./scripts/replay_smoke.sh

# Cluster-tier check: three aaserve nodes behind an aarelay — failover
# mid-replay with a byte-identical report and zero failed solves, node
# recovery, shared relay cache, least-loaded shift off a saturated
# node, 429 rate limiting, and one connected trace tree across client,
# relay and nodes.
relay-smoke:
	./scripts/relay_smoke.sh

# Statement-coverage floors for internal/replay, internal/online,
# internal/telemetry, internal/cache, internal/router and
# internal/ratelimit.
cover-floor:
	./scripts/coverage_floor.sh

# Static analysis beyond go vet. Skips with a notice when the binary is
# not installed (CI installs it; no module dependency is added).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Known-vulnerability scan of the dependency graph (stdlib only here,
# so this mostly guards the toolchain version). Same skip rule.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Emit a bench/BENCH_<git rev>.json snapshot of the solver-core benchmark
# matrix (ns/op + allocs/op) without gating. BENCHTIME=1s for more stable
# numbers.
bench-json:
	EMIT_ONLY=1 ./scripts/bench_regress.sh

# The benchmark-regression gate CI runs: snapshot, fast-path speedup
# floor (Assign1 >= 5x, SuperOptimal >= 2x over the retained references
# at n=10k; zero allocs in the session solve), and comparison against
# bench/baseline.json with a 20% calibrated threshold.
bench-regress:
	./scripts/bench_regress.sh

# The opt-in n=10^6 tier: serial vs parallel Assign2 and the full solve
# at a million threads, folded into the snapshot. On >= 4 cores
# benchgate then enforces the >= 2x parallel-speedup floor.
bench-1m:
	AA_BENCH_1M=1 ./scripts/bench_regress.sh

# Mirror of .github/workflows/ci.yml.
ci: build vet fmtcheck tidy-check staticcheck vulncheck race check-smoke fuzz-smoke bench-smoke telemetry-smoke bench-regress metrics-smoke serve-smoke batch-smoke cache-smoke trace-smoke replay-smoke relay-smoke cover-floor

# One benchmark per paper figure/claim plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation at full scale (tables + CSV).
figures:
	$(GO) run ./cmd/aabench -fig all -ext -rom -trials 1000 -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cachepartition
	$(GO) run ./examples/hosting
	$(GO) run ./examples/cloudbroker
	$(GO) run ./examples/onlinerebalance
	$(GO) run ./examples/heterogeneous

cover:
	$(GO) test -cover ./...

clean:
	rm -f aabench
	rm -rf results
