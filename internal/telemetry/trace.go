package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// The trace sink is process-wide, like the registry: spans and events
// append JSONL records to the writer installed with SetTraceWriter.
// Writes are serialized by a mutex; with no writer installed, StartSpan
// and Event are a single atomic pointer load.
//
// Span records form trees (schema v2, DESIGN.md §12): every span
// carries a trace ID, its own span ID and its parent's span ID, so a
// JSONL file — or several files from different processes joined on
// trace_id — reconstructs into one request tree. Parents propagate
// three ways, in priority order: explicitly via context.Context
// (StartSpanCtx), through the process-wide default parent
// (SetProcessParent, installed by cliutil for every -trace-out run),
// or not at all, in which case the span roots a fresh trace.

type traceSink struct {
	mu       sync.Mutex
	w        io.Writer
	enc      *json.Encoder
	detached bool
}

var sink atomic.Pointer[traceSink]

// SetTraceWriter installs w as the JSONL trace destination (nil
// removes it). The caller owns w and closes it after removing it here;
// use DetachTraceWriter when w buffers (telemetry.Setup does) so the
// final records are flushed, never truncated.
func SetTraceWriter(w io.Writer) {
	if w == nil {
		detach()
		return
	}
	detach()
	sink.Store(&traceSink{w: w, enc: json.NewEncoder(w)})
}

// detach removes the current sink and waits out any in-flight write,
// returning the detached sink (nil when none was installed). After
// detach returns, no further bytes will be written to the old writer:
// emitters that raced the swap observe the detached flag under the
// sink mutex and drop their record instead.
func detach() *traceSink {
	s := sink.Swap(nil)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.detached = true
	s.mu.Unlock()
	return s
}

// Flusher is the single-method interface DetachTraceWriter uses to
// flush buffered trace writers (bufio.Writer satisfies it).
type Flusher interface {
	Flush() error
}

// DetachTraceWriter removes the installed trace writer, waits for any
// in-flight record to finish, and flushes the writer when it buffers
// (implements Flusher). It returns the flush error, so a failed final
// flush — a truncated trace artifact — is never silent. Safe to call
// with no writer installed.
func DetachTraceWriter() error {
	s := detach()
	if s == nil {
		return nil
	}
	if f, ok := s.w.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// TraceEnabled reports whether a trace writer is installed. Hot paths
// guard span creation behind it.
func TraceEnabled() bool { return sink.Load() != nil }

// Attr is one key/value attribute on a span or event.
type Attr struct {
	Key string
	Val any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: v} }

// Uint64 builds an unsigned integer attribute (seeds, IDs).
func Uint64(k string, v uint64) Attr { return Attr{Key: k, Val: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Val: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: v} }

// record is the JSONL schema (v2) shared by spans and events. Times
// are Unix microseconds; Dur is microseconds and present only on
// spans. Trace/Span/Parent are lowercase hex IDs; Parent is empty on
// trace roots, and all three are empty only for records emitted before
// the schema-v2 upgrade.
type record struct {
	Type   string         `json:"type"` // "span" or "event"
	Name   string         `json:"name"`
	Trace  string         `json:"trace_id,omitempty"`
	Span   string         `json:"span_id,omitempty"`
	Parent string         `json:"parent_id,omitempty"`
	TS     int64          `json:"ts_us"`
	Dur    float64        `json:"dur_us,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

func emit(rec record) {
	s := sink.Load()
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.detached {
		// Raced DetachTraceWriter: the writer may already be flushed and
		// closed, so the record is dropped whole rather than truncated.
		return
	}
	// Encode ignores errors deliberately: a full disk must not take the
	// solver down, and there is no caller to report to mid-solve.
	_ = s.enc.Encode(rec)
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// spanCtxKey carries a SpanContext in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc; SpanFromContext
// retrieves it. An invalid sc is carried as-is (and ignored by span
// creation), so callers need not special-case the zero value.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span context carried by ctx, or the zero
// SpanContext when ctx carries none. It never allocates.
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// Span is an in-flight trace span. The zero Span (returned when tracing
// is off) is inert: End is a no-op, Context returns the zero context.
type Span struct {
	name   string
	start  time.Time
	attrs  []Attr
	sc     SpanContext
	parent SpanID
}

// Context returns the span's identity — what a caller propagates to
// children, injects into a traceparent header, or logs for
// correlation.
func (s *Span) Context() SpanContext { return s.sc }

// AddAttrs appends attributes to an in-flight span (results known only
// at End time: status codes, error flags). No-op on the inert zero
// span.
func (s *Span) AddAttrs(attrs ...Attr) {
	if s.start.IsZero() {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// newSpan builds a live span under parent (with the usual fallback
// chain); callers have already checked that a sink is installed.
func newSpan(parent SpanContext, name string, attrs []Attr) Span {
	sc, pid := childOf(parent)
	return Span{name: name, start: time.Now(), attrs: attrs, sc: sc, parent: pid}
}

// StartSpan opens a span parented to the process-wide default parent
// (or rooting a fresh trace when none is installed). Callers on hot
// paths should guard with TraceEnabled() to avoid constructing the
// attrs slice when tracing is off; StartSpan itself also returns an
// inert span in that case.
func StartSpan(name string, attrs ...Attr) Span {
	if sink.Load() == nil {
		return Span{}
	}
	return newSpan(SpanContext{}, name, attrs)
}

// StartSpanIn opens a span under an explicit parent span context.
func StartSpanIn(parent SpanContext, name string, attrs ...Attr) Span {
	if sink.Load() == nil {
		return Span{}
	}
	return newSpan(parent, name, attrs)
}

// StartSpanCtx opens a span as a child of whatever span ctx carries
// (falling back to the process parent, then to a fresh root) and
// returns ctx re-wrapped to carry the new span, so nested calls build
// the tree automatically. With tracing off it returns ctx unchanged
// and the inert zero span — no allocation, one atomic load.
func StartSpanCtx(ctx context.Context, name string, attrs ...Attr) (context.Context, Span) {
	if sink.Load() == nil {
		return ctx, Span{}
	}
	s := newSpan(SpanFromContext(ctx), name, attrs)
	return ContextWithSpan(ctx, s.sc), s
}

// End closes the span and appends its JSONL record.
func (s Span) End() {
	if s.start.IsZero() {
		return
	}
	emit(record{
		Type:   "span",
		Name:   s.name,
		Trace:  s.sc.TraceID.String(),
		Span:   s.sc.SpanID.String(),
		Parent: parentHex(s.parent),
		TS:     s.start.UnixMicro(),
		Dur:    float64(time.Since(s.start).Nanoseconds()) / 1e3,
		Attrs:  attrMap(s.attrs),
	})
}

func parentHex(id SpanID) string {
	if id.IsZero() {
		return ""
	}
	return id.String()
}

// EmitSpan appends a span record for a region that began at start,
// for callers that track the start time themselves (the solver stages
// do, to share one time.Now with their latency histograms). The span
// parents to the process default, like StartSpan.
func EmitSpan(name string, start time.Time, attrs ...Attr) {
	EmitSpanIn(SpanContext{}, name, start, attrs...)
}

// EmitSpanIn is EmitSpan under an explicit parent span context: the
// solver stages pass the request span planted in their workspace so
// core.superopt/core.assign* become children of the engine root.
func EmitSpanIn(parent SpanContext, name string, start time.Time, attrs ...Attr) {
	if sink.Load() == nil {
		return
	}
	sc, pid := childOf(parent)
	emit(record{
		Type:   "span",
		Name:   name,
		Trace:  sc.TraceID.String(),
		Span:   sc.SpanID.String(),
		Parent: parentHex(pid),
		TS:     start.UnixMicro(),
		Dur:    float64(time.Since(start).Nanoseconds()) / 1e3,
		Attrs:  attrMap(attrs),
	})
}

// Event appends an instantaneous JSONL event, tagged with the process
// default parent's trace/span (when one is installed) so events
// correlate with the spans around them.
func Event(name string, attrs ...Attr) {
	eventIn(ProcessParent(), name, attrs)
}

// EventCtx appends an instantaneous JSONL event tagged with the span
// carried by ctx, so the event lands inside the enclosing span.
func EventCtx(ctx context.Context, name string, attrs ...Attr) {
	if sink.Load() == nil {
		return
	}
	sc := SpanFromContext(ctx)
	if !sc.Valid() {
		sc = ProcessParent()
	}
	eventIn(sc, name, attrs)
}

func eventIn(sc SpanContext, name string, attrs []Attr) {
	if sink.Load() == nil {
		return
	}
	rec := record{
		Type:  "event",
		Name:  name,
		TS:    time.Now().UnixMicro(),
		Attrs: attrMap(attrs),
	}
	if sc.Valid() {
		rec.Trace = sc.TraceID.String()
		rec.Span = sc.SpanID.String()
	}
	emit(rec)
}
