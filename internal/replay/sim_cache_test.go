package replay

// Replay-level cache coverage: a churn scenario re-solving through a
// cached engine reports hit/warm-start rates, the section is
// deterministic (TTL = 0), and a second replay of the same trace
// against the same cache is served entirely from exact hits.

import (
	"bytes"
	"testing"

	"aa/internal/cache"
)

// churnScenario is the builtin churn family under the full-resolve
// policy, shrunk: every arrival/departure/drift triggers a re-solve, so
// consecutive solve instances differ by only a few threads — the cache
// warm-start path's operating point.
func churnScenario(t *testing.T) *Scenario {
	t.Helper()
	sc := shrink(t, "churn")
	sc.Policy = "full-resolve"
	sc.HybridThreshold = 0
	if err := sc.Validate(); err != nil {
		t.Fatalf("churn scenario invalid: %v", err)
	}
	return sc
}

func newReplayCache(t *testing.T) cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{Mode: cache.ModeMemory, Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunCacheReportsWarmStartRates(t *testing.T) {
	sc := churnScenario(t)
	c := newReplayCache(t)
	rep, err := Run(sc, RunOptions{Seed: 42, Cache: c, WarmK: 8})
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.Cache
	if cs == nil {
		t.Fatal("cached replay produced no cache section")
	}
	if cs.Mode != string(cache.ModeMemory) {
		t.Fatalf("cache mode %q, want %q", cs.Mode, cache.ModeMemory)
	}
	if cs.Misses == 0 {
		t.Fatal("churn replay never missed — nothing was solved through the cache")
	}
	if cs.WarmStarts == 0 {
		t.Fatal("churn replay never warm-started despite per-event re-solves")
	}
	if cs.WarmStarts > cs.Misses {
		t.Fatalf("more warm starts (%d) than misses (%d)", cs.WarmStarts, cs.Misses)
	}
	lookups := float64(cs.Hits + cs.Misses)
	if got, want := cs.WarmRate, float64(cs.WarmStarts)/lookups; got != want {
		t.Fatalf("warmRate %v, want %v", got, want)
	}
	if got, want := cs.HitRate, float64(cs.Hits)/lookups; got != want {
		t.Fatalf("hitRate %v, want %v", got, want)
	}

	// Replaying the identical trace against the same cache is served
	// entirely from exact hits: every solve of the first run stored its
	// verified response, so the second run adds hits and no misses.
	rep2, err := Run(sc, RunOptions{Seed: 42, Cache: c, WarmK: 8})
	if err != nil {
		t.Fatal(err)
	}
	cs2 := rep2.Cache
	if cs2.Misses != cs.Misses {
		t.Fatalf("second replay of the same trace missed: %d misses, want %d", cs2.Misses, cs.Misses)
	}
	if cs2.Hits <= cs.Hits {
		t.Fatalf("second replay of the same trace gained no hits: %+v vs %+v", cs2, cs)
	}
	// The replayed utility trajectory is unchanged by cache serving.
	if rep2.Utility != rep.Utility {
		t.Fatalf("cache-served replay changed the utility stats:\n%+v\nvs\n%+v", rep2.Utility, rep.Utility)
	}
}

func TestRunCacheSectionDeterministic(t *testing.T) {
	sc := churnScenario(t)
	var a, b bytes.Buffer
	for i, buf := range []*bytes.Buffer{&a, &b} {
		rep, err := Run(sc, RunOptions{Seed: 7, Cache: newReplayCache(t), WarmK: 8})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if rep.Cache == nil {
			t.Fatalf("run %d: no cache section", i)
		}
		if err := rep.Canonical().WriteJSON(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed cached reports differ:\n%s", firstDiff(a.String(), b.String()))
	}
}

func TestRunCacheOffHasNoSection(t *testing.T) {
	sc := churnScenario(t)
	off, err := cache.New(cache.Config{Mode: cache.ModeOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []RunOptions{
		{Seed: 42},
		{Seed: 42, Cache: off, WarmK: 8},
	} {
		rep, err := Run(sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cache != nil {
			t.Fatalf("uncached replay grew a cache section: %+v", rep.Cache)
		}
	}
}
