package main

import (
	"bytes"
	"strings"
	"testing"

	"aa/internal/check"
)

func TestRunCheckedFigure(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-fig", "fig2b", "-trials", "3", "-check"}, &out, &errOut)
	if err != nil {
		t.Fatalf("checked figure run failed: %v", err)
	}
	if !strings.Contains(errOut.String(), "check:") {
		t.Errorf("missing check summary, stderr: %q", errOut.String())
	}
	if strings.Contains(errOut.String(), "0 checks") {
		t.Errorf("check summary reports no checks ran: %q", errOut.String())
	}
	if check.Enabled() {
		t.Error("run left process-wide checking enabled")
	}
}

func TestRunCheckEnvVar(t *testing.T) {
	t.Setenv("AA_CHECK", "1")
	var out, errOut bytes.Buffer
	if err := run([]string{"-fig", "fig1a", "-trials", "2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "check:") {
		t.Errorf("AA_CHECK=1 did not trigger checking, stderr: %q", errOut.String())
	}
}
