package core

import (
	"fmt"
	"math"

	"aa/internal/alloc"
	"aa/internal/telemetry"
	"aa/internal/utility"
)

// ExactLimit caps the search space of Exhaustive; beyond it the solver
// refuses rather than burning unbounded CPU (the problem is NP-hard,
// Theorem IV.1).
const ExactLimit = 4_000_000

// Exhaustive finds an optimal assignment by enumerating every partition
// of threads into servers (with server-symmetry breaking, since servers
// are homogeneous) and solving the per-server concave allocation exactly
// for each. It errors out if the symmetric search space m^n/m! would
// exceed ExactLimit. Intended for tests and for calibrating the
// approximation algorithms on small instances.
func Exhaustive(in *Instance) (Assignment, error) {
	n, m := in.N(), in.M
	if space := symmetricSpace(n, m); space > ExactLimit {
		return Assignment{}, fmt.Errorf("core: exhaustive search space ~%d exceeds limit %d", space, ExactLimit)
	}
	fs := cappedThreads(in)
	servers := make([]int, n)
	best := NewAssignment(n)
	bestUtil := math.Inf(-1)

	var recurse func(i, maxUsed int)
	recurse = func(i, maxUsed int) {
		if i == n {
			util, allocs := evaluatePartition(in, fs, servers)
			if util > bestUtil {
				bestUtil = util
				copy(best.Server, servers)
				copy(best.Alloc, allocs)
			}
			return
		}
		// Symmetry breaking: thread i may open at most one new server.
		limit := maxUsed + 1
		if limit >= m {
			limit = m - 1
		}
		for j := 0; j <= limit; j++ {
			servers[i] = j
			next := maxUsed
			if j > maxUsed {
				next = j
			}
			recurse(i+1, next)
		}
	}
	recurse(0, -1)
	return best, nil
}

// symmetricSpace estimates the number of symmetry-broken assignments
// (restricted-growth strings), capped to avoid overflow.
func symmetricSpace(n, m int) int {
	space := 1
	used := 0
	for i := 0; i < n; i++ {
		branch := used + 1
		if branch > m {
			branch = m
		}
		if space > ExactLimit/branch+1 {
			return ExactLimit + 1
		}
		space *= branch
		if used < m {
			used++
		}
	}
	return space
}

// evaluatePartition computes the optimal total utility of a fixed
// thread→server map by solving each server's concave allocation.
func evaluatePartition(in *Instance, fs []utility.Func, servers []int) (float64, []float64) {
	groups := make([][]int, in.M)
	for i, s := range servers {
		groups[s] = append(groups[s], i)
	}
	allocs := make([]float64, len(servers))
	total := 0.0
	for _, group := range groups {
		if len(group) == 0 {
			continue
		}
		gfs := make([]utility.Func, len(group))
		for k, i := range group {
			gfs[k] = fs[i]
		}
		res := alloc.Concave(gfs, in.C)
		total += res.Total
		for k, i := range group {
			allocs[i] = res.Alloc[k]
		}
	}
	return total, allocs
}

// BranchAndBound finds an optimal assignment by depth-first search with
// an admissible pruning bound. Threads are explored in nonincreasing
// super-optimal allocation order ("big rocks first"). The bound for a
// partial assignment is
//
//	Σ_j SO(group_j, C)  +  SO(unassigned, m·C)
//
// both terms of which only over-estimate the achievable utility, so
// pruning is safe. maxNodes limits the search (0 means ExactLimit);
// exceeding it returns an error.
func BranchAndBound(in *Instance, maxNodes int) (Assignment, error) {
	if maxNodes <= 0 {
		maxNodes = ExactLimit
	}
	n, m := in.N(), in.M
	fs := cappedThreads(in)

	// Explore large consumers first: deeper pruning near the root.
	so := SuperOptimal(in)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for a := 1; a < n; a++ { // insertion sort by ĉ desc (n is small here)
		for b := a; b > 0 && so.Alloc[order[b]] > so.Alloc[order[b-1]]; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}

	groups := make([][]int, m)
	best := NewAssignment(n)
	bestUtil := math.Inf(-1)
	nodes := 0

	// Seed the incumbent with Algorithm 2 so pruning bites immediately.
	seed := Assign2(in)
	bestUtil = seed.Utility(in)
	copy(best.Server, seed.Server)
	copy(best.Alloc, seed.Alloc)

	var recurse func(depth int) error
	recurse = func(depth int) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("core: branch-and-bound exceeded %d nodes", maxNodes)
		}
		if depth == n {
			servers := make([]int, n)
			for j, g := range groups {
				for _, i := range g {
					servers[i] = j
				}
			}
			util, allocs := evaluatePartition(in, fs, servers)
			if util > bestUtil {
				bestUtil = util
				copy(best.Server, servers)
				copy(best.Alloc, allocs)
			}
			return nil
		}
		if bound(in, fs, groups, order[depth:]) <= bestUtil+1e-9 {
			return nil
		}
		i := order[depth]
		openedEmpty := false
		for j := 0; j < m; j++ {
			if len(groups[j]) == 0 {
				if openedEmpty {
					continue // symmetric to an already-tried empty server
				}
				openedEmpty = true
			}
			groups[j] = append(groups[j], i)
			if err := recurse(depth + 1); err != nil {
				return err
			}
			groups[j] = groups[j][:len(groups[j])-1]
		}
		return nil
	}
	err := recurse(0)
	if telemetry.Enabled() {
		metricExactNodes.Add(uint64(nodes))
	}
	if err != nil {
		return Assignment{}, err
	}
	return best, nil
}

// bound returns the admissible upper bound for completing a partial
// assignment: each existing group solved alone on a full server, plus the
// unassigned threads pooled on the whole cluster.
func bound(in *Instance, fs []utility.Func, groups [][]int, unassigned []int) float64 {
	total := 0.0
	for _, group := range groups {
		if len(group) == 0 {
			continue
		}
		gfs := make([]utility.Func, len(group))
		for k, i := range group {
			gfs[k] = fs[i]
		}
		total += alloc.Concave(gfs, in.C).Total
	}
	if len(unassigned) > 0 {
		ufs := make([]utility.Func, len(unassigned))
		for k, i := range unassigned {
			ufs[k] = fs[i]
		}
		total += alloc.Concave(ufs, float64(in.M)*in.C).Total
	}
	return total
}
