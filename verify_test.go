package aa

import (
	"context"
	"errors"
	"testing"
)

func TestVerifyFacade(t *testing.T) {
	in := exampleInstance()
	sol := Solve(in)
	if err := Verify(in, sol, 0); err != nil {
		t.Fatalf("Verify rejected Solve output: %v", err)
	}
	bad := sol
	bad.Alloc = append([]float64(nil), sol.Alloc...)
	bad.Alloc[0] = -5
	if err := Verify(in, bad, 0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("got %v, want ErrInfeasible", err)
	}
}

func TestVerifyRatioFacade(t *testing.T) {
	in := exampleInstance()
	rep := VerifyRatio(in, Solve(in))
	if rep.Ratio < Alpha || rep.Ratio > 1+1e-9 {
		t.Errorf("Solve ratio %v outside [α, 1]", rep.Ratio)
	}
	if err := rep.CheckAlpha(0); err != nil {
		t.Errorf("CheckAlpha rejected Solve: %v", err)
	}
	low := CheckReport{F: 1, FHat: 100, Ratio: 0.01}
	if err := low.CheckAlpha(0); !errors.Is(err, ErrRatioViolation) {
		t.Errorf("got %v, want ErrRatioViolation", err)
	}
}

func TestCheckedSolverPoolFacade(t *testing.T) {
	p := NewSolverPool(SolverPoolOptions{Workers: 2, Check: true})
	defer p.Close()
	in := exampleInstance()
	sol, err := p.Solve(context.Background(), in)
	if err != nil {
		t.Fatalf("checked pool solve failed: %v", err)
	}
	if sol.Utility(in) <= 0 {
		t.Error("zero utility from checked solve")
	}
}

func TestEnableChecksCoversSolveBatch(t *testing.T) {
	EnableChecks()
	defer DisableChecks()
	out, err := SolveBatch(context.Background(), []*Instance{exampleInstance(), exampleInstance()})
	if err != nil {
		t.Fatalf("checked SolveBatch failed: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d assignments, want 2", len(out))
	}
}
