package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aa/internal/replay"
)

// traceRecord is the slice of the trace JSONL schema this test asserts on.
type traceRecord struct {
	Type   string `json:"type"`
	Name   string `json:"name"`
	Trace  string `json:"trace_id"`
	Span   string `json:"span_id"`
	Parent string `json:"parent_id"`
}

// TestReplayAgainstLiveServerJoinsTraces is the PR's acceptance test:
// a replay in -addr mode against a live aaserve produces ONE connected
// span tree that crosses the HTTP boundary — client event span →
// http.request → engine.solve → engine.dispatch → core stages — all
// sharing a single trace ID, with every parent resolving inside the
// trace file.
func TestReplayAgainstLiveServerJoinsTraces(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-trace-out", traceFile,
			"-history-interval", "0",
		}, testWriter{t}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// A tiny full-resolve scenario: a handful of arrivals, each of which
	// drives one /solve round trip over the real listener.
	sc := &replay.Scenario{
		Name: "trace-accept", Servers: 2, Capacity: 100, Horizon: 200,
		Policy:   "full-resolve",
		Utility:  replay.UtilitySpec{Dist: "uniform"},
		Arrivals: replay.ArrivalSpec{BaseRate: 0.05},
		Lifetime: replay.LifetimeSpec{Mean: 150},
	}
	rep, err := replay.Run(sc, replay.RunOptions{Seed: 11, Addr: addr})
	if err != nil {
		t.Fatalf("replay against live server: %v", err)
	}
	if rep.Solves.Resolves == 0 {
		t.Fatal("replay issued no solves; scenario too small to exercise tracing")
	}

	// Drain the server; run()'s shutdown path must flush and detach the
	// trace sink before returning, so the file is complete afterwards.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var recs []traceRecord
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" {
			continue
		}
		var rec traceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line not valid JSON (truncated final record?): %v\n%s", err, line)
		}
		recs = append(recs, rec)
	}

	byID := map[string]traceRecord{}
	byName := map[string][]traceRecord{}
	for _, r := range recs {
		if r.Type != "span" {
			continue
		}
		byID[r.Span] = r
		byName[r.Name] = append(byName[r.Name], r)
	}
	for _, name := range []string{
		"process", "replay.run", "replay.event",
		"http.request", "engine.solve", "engine.dispatch",
	} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %s span in trace file; spans present: %v", name, spanNames(byName))
		}
	}
	if len(byName["core.superopt"]) == 0 && len(byName["core.assign1"]) == 0 &&
		len(byName["core.assign2"]) == 0 {
		t.Fatalf("no core stage spans; spans present: %v", spanNames(byName))
	}

	// One connected tree: everything shares the process root's trace and
	// every parent pointer resolves to a span in the same file.
	proc := byName["process"][0]
	if proc.Parent != "" {
		t.Errorf("process span has parent %q, want root", proc.Parent)
	}
	for _, r := range recs {
		if r.Type != "span" {
			continue
		}
		if r.Trace != proc.Trace {
			t.Errorf("span %s trace %q, want the process trace %q", r.Name, r.Trace, proc.Trace)
		}
		if r.Parent == "" && r.Span != proc.Span {
			t.Errorf("span %s is an unexpected second root", r.Name)
		}
		if r.Parent != "" {
			if _, ok := byID[r.Parent]; !ok {
				t.Errorf("span %s parent %q not in the file", r.Name, r.Parent)
			}
		}
	}

	// The cross-boundary chain: every http.request hangs off a
	// replay.event (the traceparent header crossed the wire), every
	// engine.solve hangs off an http.request, and so on up the tree.
	wantParent := map[string]string{
		"replay.run":      "process",
		"replay.event":    "replay.run",
		"http.request":    "replay.event",
		"engine.solve":    "http.request",
		"engine.dispatch": "engine.solve",
	}
	for name, parentName := range wantParent {
		for _, r := range byName[name] {
			p, ok := byID[r.Parent]
			if !ok {
				t.Errorf("%s parent %q unresolved", name, r.Parent)
				continue
			}
			if p.Name != parentName {
				t.Errorf("%s parented to %q, want %q", name, p.Name, parentName)
			}
		}
	}

	// Core solver stages run on both sides of the wire: the server's
	// solves nest them under engine.dispatch, while the replay client's
	// local bound computations fall back to the process parent. The
	// server-side nesting is the cross-process contract — require it.
	dispatched := 0
	for name, rs := range byName {
		if !strings.HasPrefix(name, "core.") {
			continue
		}
		for _, r := range rs {
			p, ok := byID[r.Parent]
			if !ok {
				t.Errorf("%s parent %q unresolved", name, r.Parent)
				continue
			}
			switch p.Name {
			case "engine.dispatch":
				dispatched++
			case "process":
				// client-side bound computation; linked, just shallower
			default:
				t.Errorf("%s parented to %q, want engine.dispatch or process", name, p.Name)
			}
		}
	}
	if dispatched == 0 {
		t.Error("no core stage span nested under engine.dispatch")
	}
}

func spanNames(byName map[string][]traceRecord) []string {
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	return names
}
