package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"aa/internal/telemetry"
)

// traceRecord is the slice of the JSONL schema these tests assert on.
type traceRecord struct {
	Type   string         `json:"type"`
	Name   string         `json:"name"`
	Trace  string         `json:"trace_id"`
	Span   string         `json:"span_id"`
	Parent string         `json:"parent_id"`
	Attrs  map[string]any `json:"attrs"`
}

func decodeTrace(t *testing.T, buf *bytes.Buffer) []traceRecord {
	t.Helper()
	var out []traceRecord
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		var rec traceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line not JSON: %v\n%s", err, line)
		}
		out = append(out, rec)
	}
	return out
}

// TestSolveEmitsConnectedSpanTree pins the tentpole contract at the
// engine layer: one solve with tracing on produces a single connected
// tree — engine.solve root, engine.dispatch and engine.check children,
// core solver stages under dispatch — all sharing one trace ID.
func TestSolveEmitsConnectedSpanTree(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	var buf bytes.Buffer
	telemetry.SetTraceWriter(&buf)
	defer telemetry.SetTraceWriter(nil)

	eng := New(Options{})
	in := corpus(t, 1, 40)[0]
	req := &Request{Instance: in, Check: true}
	if _, err := eng.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	recs := decodeTrace(t, &buf)
	byName := map[string]traceRecord{}
	byID := map[string]traceRecord{}
	for _, r := range recs {
		if r.Type != "span" {
			continue
		}
		byName[r.Name] = r
		byID[r.Span] = r
	}

	root, ok := byName["engine.solve"]
	if !ok {
		t.Fatalf("no engine.solve span in:\n%s", buf.String())
	}
	if root.Parent != "" {
		t.Errorf("engine.solve has parent %q, want a fresh root", root.Parent)
	}
	if root.Attrs["backend"] != "assign2" || root.Attrs["n"].(float64) != 40 ||
		root.Attrs["check"] != true || root.Attrs["ok"] != true {
		t.Errorf("engine.solve attrs = %v", root.Attrs)
	}
	if _, hasM := root.Attrs["m"]; !hasM {
		t.Errorf("engine.solve missing m attr: %v", root.Attrs)
	}

	dispatch, ok := byName["engine.dispatch"]
	if !ok {
		t.Fatal("no engine.dispatch span")
	}
	if dispatch.Parent != root.Span {
		t.Errorf("engine.dispatch parent = %q, want engine.solve %q", dispatch.Parent, root.Span)
	}
	checkSpan, ok := byName["engine.check"]
	if !ok {
		t.Fatal("no engine.check span")
	}
	if checkSpan.Parent != root.Span {
		t.Errorf("engine.check parent = %q, want engine.solve %q", checkSpan.Parent, root.Span)
	}
	for _, stage := range []string{"core.superopt", "core.assign2"} {
		sp, ok := byName[stage]
		if !ok {
			t.Fatalf("no %s span", stage)
		}
		if sp.Parent != dispatch.Span {
			t.Errorf("%s parent = %q, want engine.dispatch %q", stage, sp.Parent, dispatch.Span)
		}
	}

	// Every span shares the root's trace and every parent resolves.
	for _, r := range recs {
		if r.Type != "span" {
			continue
		}
		if r.Trace != root.Trace {
			t.Errorf("span %s trace %q, want %q", r.Name, r.Trace, root.Trace)
		}
		if r.Parent != "" {
			if _, ok := byID[r.Parent]; !ok {
				t.Errorf("span %s parent %q not in the file", r.Name, r.Parent)
			}
		}
	}
}

// TestSolveInheritsCallerSpan pins context propagation: a caller that
// carries a span (an HTTP middleware, a replay event) becomes the
// parent of the engine.solve root, joining the caller's trace.
func TestSolveInheritsCallerSpan(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	var buf bytes.Buffer
	telemetry.SetTraceWriter(&buf)
	defer telemetry.SetTraceWriter(nil)

	eng := New(Options{})
	in := corpus(t, 1, 20)[0]

	ctx, caller := telemetry.StartSpanCtx(context.Background(), "caller.request")
	if _, err := eng.Solve(ctx, &Request{Instance: in}); err != nil {
		t.Fatal(err)
	}
	caller.End()

	recs := decodeTrace(t, &buf)
	byName := map[string]traceRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	callerRec, root := byName["caller.request"], byName["engine.solve"]
	if root.Parent != callerRec.Span {
		t.Errorf("engine.solve parent = %q, want caller span %q", root.Parent, callerRec.Span)
	}
	if root.Trace != callerRec.Trace {
		t.Errorf("engine.solve trace = %q, want caller trace %q", root.Trace, callerRec.Trace)
	}
}

// TestSubmitPropagatesSpanAcrossPool pins that the span context crosses
// the solver pool: a Submit from a traced caller still parents the
// engine.solve span to the caller even though a worker goroutine runs
// the solve.
func TestSubmitPropagatesSpanAcrossPool(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	var buf bytes.Buffer
	telemetry.SetTraceWriter(&buf)
	defer telemetry.SetTraceWriter(nil)

	eng := New(Options{})
	defer eng.Close()
	in := corpus(t, 1, 20)[0]

	ctx, caller := telemetry.StartSpanCtx(context.Background(), "caller.submit")
	if _, err := eng.Submit(ctx, &Request{Instance: in}); err != nil {
		t.Fatal(err)
	}
	caller.End()

	recs := decodeTrace(t, &buf)
	byName := map[string]traceRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if got, want := byName["engine.solve"].Parent, byName["caller.submit"].Span; got != want {
		t.Errorf("engine.solve parent = %q, want submitting span %q", got, want)
	}
}
