package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aa/internal/telemetry"
)

func TestRunSingleFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig2b", "-trials", "3"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fig2b", "A2/SO", "alpha"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestRunWithPlotAndCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-fig", "fig3c", "-trials", "2", "-plot", "-csv", dir}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "utility ratio") {
		t.Error("plot not rendered")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig3c.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "theta,n,A2/SO") {
		t.Errorf("csv header: %q", strings.SplitN(string(csv), "\n", 2)[0])
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig9z"}, &out, io.Discard); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-fig", "fig2b", "-trials", "2", "-seed", "3"}
	var a, b bytes.Buffer
	if err := run(args, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Strip the timing lines before comparing.
	clean := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "(") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if clean(a.String()) != clean(b.String()) {
		t.Error("same seed produced different tables")
	}
}

// Worker count must not change a single digit of the output.
func TestRunSameTablesForAnyWorkerCount(t *testing.T) {
	clean := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "(") { // timing line
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	var serial, parallel bytes.Buffer
	if err := run([]string{"-fig", "fig3b", "-trials", "6", "-seed", "9", "-workers", "1"}, &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "fig3b", "-trials", "6", "-seed", "9", "-workers", "8"}, &parallel, io.Discard); err != nil {
		t.Fatal(err)
	}
	if clean(serial.String()) != clean(parallel.String()) {
		t.Errorf("-workers=8 output differs from -workers=1:\n--- 1 ---\n%s\n--- 8 ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunTimeoutExpires(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "fig1a", "-trials", "5000", "-timeout", "1ms"}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRunParallelAliasStillWorks(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig2b", "-trials", "2", "-parallel", "2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig2b") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunVerboseSummary(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "fig2b", "-trials", "2", "-v"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := errBuf.String()
	for _, want := range []string{"telemetry: solves=", "p50=", "p99=", "bisection_iters/solve="} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in stderr:\n%s", want, s)
		}
	}
	if strings.Contains(s, "solves=0 ") {
		t.Errorf("summary reports zero solves:\n%s", s)
	}
}

func TestRunTraceOut(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig2b", "-trials", "2", "-trace-out", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	names := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec struct {
			Type string `json:"type"`
			Name string `json:"name"`
			TS   int64  `json:"ts_us"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		names[rec.Name] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"core.superopt", "core.assign2", "experiment.point"} {
		if !names[want] {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}
}

func TestRunMetricsAddr(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "fig2b", "-trials", "2", "-metrics-addr", "localhost:0"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "telemetry: serving") {
		t.Errorf("stderr missing serving line:\n%s", errBuf.String())
	}
}

func TestRunExtHetero(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "ext-hetero", "-trials", "3"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ext-hetero") || !strings.Contains(out.String(), "A/SO") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunExtRuntime(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "ext-runtime", "-trials", "1"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ext-runtime") || !strings.Contains(out.String(), "us/thread") {
		t.Errorf("output:\n%s", out.String())
	}
}
