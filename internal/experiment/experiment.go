// Package experiment is the evaluation harness reproducing the paper's
// §VII: for each figure it sweeps a parameter (β = n/m, power-law α,
// discrete γ or θ), generates many random instances, runs Algorithm 2
// against the super-optimal bound and the UU/UR/RU/RR heuristics, and
// reports the mean per-trial utility ratios the figures plot.
//
// Trials fan out across an internal/solverpool worker pool but are
// bit-reproducible: each trial derives its own generator from the
// experiment seed and its (sweep point, trial) coordinates via
// rng.SplitPath, and results are written to slots keyed by trial index,
// so output never depends on goroutine scheduling or worker count.
// Cancellation of the caller's context, or the first failing trial,
// promptly aborts the remaining trials.
package experiment

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/gen"
	"aa/internal/rng"
	"aa/internal/solverpool"
	"aa/internal/stats"
	"aa/internal/tableio"
	"aa/internal/telemetry"
)

// Competitors compared against Algorithm 2, in report order. SO is the
// super-optimal upper bound (the ratio is ≤ 1); the rest are heuristics
// (ratios ≥ 1 when Algorithm 2 wins). A1 is Algorithm 1, included as an
// ablation beyond the paper's own figures.
var Competitors = []string{"SO", "UU", "UR", "RU", "RR", "A1"}

// SweepPoint is one x-axis position of a figure: the parameter value, the
// value distribution H at that point and the thread count n. M, when
// positive, overrides the spec's server count for this point (used by
// the cluster-size sweep ext-m).
type SweepPoint struct {
	Param float64
	Dist  gen.Dist
	N     int
	M     int
}

// Spec describes one reproducible experiment (one paper figure).
type Spec struct {
	ID          string // e.g. "fig2a"
	Description string
	ParamName   string // x-axis label: "beta", "alpha", "gamma", "theta"
	M           int    // servers
	C           float64
	Trials      int
	Sweep       []SweepPoint
	// Extra lists additional competitor columns beyond Competitors:
	// "LS" (Algorithm 2 + relocation local search) and "GM"
	// (marginal-gain greedy). Used by the extension experiments.
	Extra []string
}

// columns returns the competitor keys reported by a spec.
func (s Spec) columns() []string {
	return append(append([]string(nil), Competitors...), s.Extra...)
}

// Point is the aggregated result at one sweep position. The paper says
// only "ratio of Algorithm 2's total utility versus the utilities of the
// other algorithms ... average performance from 1000 random trials",
// which admits two estimators; both are reported:
//
//   - Ratios[c]: summary of the per-trial ratio u(A2)/u(c) (mean of
//     ratios — sensitive to heavy-tailed trials);
//   - RatioOfMeans[c]: mean(u(A2)) / mean(u(c)) over the trials (ratio
//     of means — the more robust estimator).
type Point struct {
	Param        float64
	N            int
	Ratios       map[string]stats.Summary
	RatioOfMeans map[string]float64
}

// Result is a completed experiment.
type Result struct {
	Spec   Spec
	Points []Point
}

// Run executes the spec with the given base seed. workers <= 0 uses
// GOMAXPROCS. The result is deterministic in (spec, seed).
func Run(spec Spec, seed uint64, workers int) (*Result, error) {
	return RunContext(context.Background(), spec, seed, workers)
}

// RunContext is Run with cancellation: trials fan out across a
// solverpool with the given worker count, and a cancelled or expired
// ctx aborts the remaining trials promptly and returns ctx's error.
// The result is deterministic in (spec, seed) — identical for every
// worker count.
func RunContext(ctx context.Context, spec Spec, seed uint64, workers int) (*Result, error) {
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("experiment %s: nonpositive trial count", spec.ID)
	}
	if len(spec.Sweep) == 0 {
		return nil, fmt.Errorf("experiment %s: empty sweep", spec.ID)
	}
	pool := solverpool.New(solverpool.Options{Workers: workers})
	defer pool.Close()
	base := rng.New(seed)
	cols := spec.columns()
	res := &Result{Spec: spec, Points: make([]Point, len(spec.Sweep))}
	for pi, sp := range spec.Sweep {
		// Tag telemetry per figure/point: one span per sweep position, a
		// per-figure point counter, and (inside runPoint) a per-point
		// trial counter — all labeled so a /metrics scrape or a trace
		// file attributes solver work to the figure that caused it.
		var span telemetry.Span
		if telemetry.TraceEnabled() {
			span = telemetry.StartSpan("experiment.point",
				telemetry.String("fig", spec.ID),
				telemetry.Float("param", sp.Param),
				telemetry.Int("n", sp.N))
		}
		if telemetry.Enabled() {
			telemetry.Default.Counter(telemetry.Label("aa_experiment_points_total", "fig", spec.ID)).Inc()
		}
		nums, dens, err := runPoint(ctx, pool, spec, sp, base, pi)
		span.End()
		if err != nil {
			return nil, fmt.Errorf("experiment %s, %s=%g: %w", spec.ID, spec.ParamName, sp.Param, err)
		}
		pt := Point{
			Param:        sp.Param,
			N:            sp.N,
			Ratios:       make(map[string]stats.Summary, len(cols)),
			RatioOfMeans: make(map[string]float64, len(cols)),
		}
		for _, c := range cols {
			ratios := make([]float64, spec.Trials)
			var numSum, denSum float64
			for t := 0; t < spec.Trials; t++ {
				ratios[t] = safeRatio(nums[c][t], dens[c][t])
				numSum += nums[c][t]
				denSum += dens[c][t]
			}
			pt.Ratios[c] = stats.Summarize(ratios)
			pt.RatioOfMeans[c] = safeRatio(numSum, denSum)
		}
		res.Points[pi] = pt
	}
	return res, nil
}

// runPoint fans the point's trials out across the pool. Trial t writes
// its values into slot t of each column, so the aggregate is identical
// for every worker count; the first trial error (or a dead ctx) cancels
// the remaining trials and is returned.
func runPoint(ctx context.Context, pool *solverpool.Pool, spec Spec, sp SweepPoint, base *rng.Rand, pi int) (nums, dens map[string][]float64, err error) {
	cols := spec.columns()
	nums = make(map[string][]float64, len(cols))
	dens = make(map[string][]float64, len(cols))
	for _, c := range cols {
		nums[c] = make([]float64, spec.Trials)
		dens[c] = make([]float64, spec.Trials)
	}

	// One labeled counter per (figure, sweep position); looked up once
	// here, incremented per finished trial inside the tasks.
	var trialsDone *telemetry.Counter
	if telemetry.Enabled() {
		trialsDone = telemetry.Default.Counter(telemetry.Label(
			"aa_experiment_trials_total",
			"fig", spec.ID,
			"param", strconv.FormatFloat(sp.Param, 'g', -1, 64)))
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(e error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		mu.Unlock()
		cancel()
	}
	for t := 0; t < spec.Trials; t++ {
		t := t
		// Name the trial's stream by its coordinates so the draw sequence
		// is a pure function of (seed, point, trial).
		r := base.SplitPath(uint64(pi), uint64(t))
		wg.Add(1)
		task := func(tctx context.Context) error {
			defer wg.Done()
			if err := tctx.Err(); err != nil {
				fail(err)
				return err
			}
			num, den, err := runTrial(tctx, spec, sp, r)
			if err != nil {
				fail(err)
				return err
			}
			// Disjoint slots per trial: no lock needed.
			for c, v := range num {
				nums[c][t] = v
				dens[c][t] = den[c]
			}
			if trialsDone != nil {
				trialsDone.Inc()
			}
			return nil
		}
		if err := pool.Enqueue(pctx, task); err != nil {
			wg.Done()
			fail(err)
			break
		}
	}
	wg.Wait()
	return nums, dens, firstErr
}

// runTrial generates one instance and returns each column's ratio
// numerator and denominator for this trial.
func runTrial(ctx context.Context, spec Spec, sp SweepPoint, r *rng.Rand) (map[string]float64, map[string]float64, error) {
	m := spec.M
	if sp.M > 0 {
		m = sp.M
	}
	in, err := gen.Instance(sp.Dist, m, spec.C, sp.N, r)
	if err != nil {
		return nil, nil, err
	}
	// The paper pipeline rides the engine: one request solves Assign2
	// and (via AltAssign1) Assign1 from the same super-optimal
	// linearization, through the pooled-workspace fast path — across a
	// 1000-trial sweep the worker reuses the same scratch buffers. The
	// engine's assign2 backend is bit-identical to the package-level
	// calls, and none of these stages draws from r, so the published rng
	// stream (gen → UR → RU → RR) is unchanged.
	var resp engine.Response
	req := engine.Request{Instance: in, AltAssign1: true, WantUtility: true}
	if err := engine.Default().SolveInto(ctx, &req, &resp); err != nil {
		return nil, nil, err
	}
	a2, a1 := resp.Assignment, resp.Alt
	so := resp.Bound
	u2 := resp.Utility

	// The randomized heuristics must draw in this exact order (UR, RU,
	// RR) — it is the rng stream behind every published figure.
	heur := []namedAssignment{
		{"UU", core.AssignUU(in)},
		{"UR", core.AssignUR(in, r)},
		{"RU", core.AssignRU(in, r)},
		{"RR", core.AssignRR(in, r)},
	}

	num := map[string]float64{}
	den := map[string]float64{
		"SO": so,
		"A1": resp.AltUtility,
	}
	for _, h := range heur {
		den[h.name] = h.a.Utility(in)
	}
	for c := range den {
		num[c] = u2
	}
	if check.Enabled() {
		if err := verifyTrial(in, so, a1, a2, heur); err != nil {
			return nil, nil, err
		}
	}
	for _, extra := range spec.Extra {
		switch extra {
		case "LS":
			improved, _ := core.Improve(in, a2, 0)
			if check.Enabled() {
				if err := check.Feasible(in, improved, check.DefaultEps); err != nil {
					return nil, nil, fmt.Errorf("LS: %w", err)
				}
			}
			// Reported against SO so the column reads like the SO column:
			// how much of the bound A2+local-search attains.
			num["LS"], den["LS"] = improved.Utility(in), so
		case "GM":
			gm := core.AssignGreedyMarginal(in)
			if check.Enabled() {
				if err := check.Feasible(in, gm, check.DefaultEps); err != nil {
					return nil, nil, fmt.Errorf("GM: %w", err)
				}
			}
			num["GM"], den["GM"] = gm.Utility(in), so
		default:
			return nil, nil, fmt.Errorf("unknown extra competitor %q", extra)
		}
	}
	return num, den, nil
}

// namedAssignment labels a solver's output for verification messages.
type namedAssignment struct {
	name string
	a    core.Assignment
}

// verifyTrial is the harness's -check hook (aabench -check / AA_CHECK=1):
// every solver's assignment must be feasible, every utility must respect
// the super-optimal bound, and Assign1/Assign2 must clear the paper's α
// guarantee. The first violation fails the trial — and with it the whole
// run — rather than silently averaging a bogus ratio into a figure.
func verifyTrial(in *core.Instance, fhat float64, a1, a2 core.Assignment, heur []namedAssignment) error {
	solvers := append([]namedAssignment{{"A1", a1}, {"A2", a2}}, heur...)
	for _, s := range solvers {
		if err := check.Feasible(in, s.a, check.DefaultEps); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		rr := check.RatioAgainst(fhat, in, s.a)
		var err error
		if s.name == "A1" || s.name == "A2" {
			err = rr.CheckAlpha(0)
		} else {
			err = rr.CheckBound(0)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}

// safeRatio guards against degenerate zero-utility denominators (possible
// only when every utility is identically zero).
func safeRatio(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return 0
	}
	return num / den
}

// Render formats a result as a table with one row per sweep point, one
// "A2/<competitor>" column per base competitor and one "<X>/SO" column
// per extension competitor (extensions are measured against the bound).
func Render(res *Result) *tableio.Table {
	cols := res.Spec.columns()
	headers := make([]string, 0, len(cols)+2)
	headers = append(headers, res.Spec.ParamName, "n")
	for _, c := range Competitors {
		headers = append(headers, "A2/"+c)
	}
	for _, c := range res.Spec.Extra {
		headers = append(headers, c+"/SO")
	}
	title := fmt.Sprintf("%s: %s (m=%d, C=%g, %d trials)",
		res.Spec.ID, res.Spec.Description, res.Spec.M, res.Spec.C, res.Spec.Trials)
	t := tableio.New(title, headers...)
	for _, pt := range res.Points {
		cells := make([]string, 0, len(headers))
		cells = append(cells,
			tableio.FormatFloat(pt.Param, 2),
			fmt.Sprintf("%d", pt.N))
		for _, c := range cols {
			cells = append(cells, fmt.Sprintf("%.4f", pt.Ratios[c].Mean))
		}
		t.AddRow(cells...)
	}
	return t
}

// RenderRoM formats the ratio-of-means estimator (mean utilities divided
// before the ratio) — the robust alternative to Render's mean-of-ratios,
// useful on heavy-tailed panels.
func RenderRoM(res *Result) *tableio.Table {
	cols := res.Spec.columns()
	headers := make([]string, 0, len(cols)+2)
	headers = append(headers, res.Spec.ParamName, "n")
	for _, c := range Competitors {
		headers = append(headers, "A2/"+c)
	}
	for _, c := range res.Spec.Extra {
		headers = append(headers, c+"/SO")
	}
	title := fmt.Sprintf("%s: %s — ratio of mean utilities (m=%d, C=%g, %d trials)",
		res.Spec.ID, res.Spec.Description, res.Spec.M, res.Spec.C, res.Spec.Trials)
	t := tableio.New(title, headers...)
	for _, pt := range res.Points {
		cells := make([]string, 0, len(headers))
		cells = append(cells,
			tableio.FormatFloat(pt.Param, 2),
			fmt.Sprintf("%d", pt.N))
		for _, c := range cols {
			cells = append(cells, fmt.Sprintf("%.4f", pt.RatioOfMeans[c]))
		}
		t.AddRow(cells...)
	}
	return t
}

// RenderChart draws a result's ratio series as an ASCII line chart —
// the closest a terminal gets to the paper's figure panels.
func RenderChart(res *Result) *tableio.Chart {
	xs := make([]float64, len(res.Points))
	for i, pt := range res.Points {
		xs[i] = pt.Param
	}
	title := fmt.Sprintf("%s: %s (%d trials)", res.Spec.ID, res.Spec.Description, res.Spec.Trials)
	c := tableio.NewChart(title, res.Spec.ParamName, "utility ratio", xs)
	for _, comp := range res.Spec.columns() {
		ys := make([]float64, len(res.Points))
		for i, pt := range res.Points {
			ys[i] = pt.Ratios[comp].Mean
		}
		label := "A2/" + comp
		if comp == "LS" || comp == "GM" {
			label = comp + "/SO"
		}
		c.AddSeries(label, ys)
	}
	return c
}

// ---------------------------------------------------------------------------
// Figure specs (§VII): m = 8, C = 1000, default 1000 trials.
// ---------------------------------------------------------------------------

// Defaults shared by every figure.
const (
	DefaultM      = 8
	DefaultC      = 1000.0
	DefaultTrials = 1000
)

func betaSweep(dist func(beta int) gen.Dist, m int) []SweepPoint {
	points := make([]SweepPoint, 0, 15)
	for beta := 1; beta <= 15; beta++ {
		points = append(points, SweepPoint{
			Param: float64(beta),
			Dist:  dist(beta),
			N:     beta * m,
		})
	}
	return points
}

// Fig1a sweeps β under the uniform distribution (Figure 1(a)).
func Fig1a(trials int) Spec {
	return Spec{
		ID:          "fig1a",
		Description: "uniform distribution, ratio vs beta",
		ParamName:   "beta",
		M:           DefaultM,
		C:           DefaultC,
		Trials:      trials,
		Sweep:       betaSweep(func(int) gen.Dist { return gen.DefaultUniform }, DefaultM),
	}
}

// Fig1b sweeps β under the truncated normal(1,1) distribution
// (Figure 1(b)).
func Fig1b(trials int) Spec {
	return Spec{
		ID:          "fig1b",
		Description: "normal(1,1) distribution, ratio vs beta",
		ParamName:   "beta",
		M:           DefaultM,
		C:           DefaultC,
		Trials:      trials,
		Sweep:       betaSweep(func(int) gen.Dist { return gen.DefaultNormal }, DefaultM),
	}
}

// Fig2a sweeps β under the power-law distribution with α = 2
// (Figure 2(a)).
func Fig2a(trials int) Spec {
	return Spec{
		ID:          "fig2a",
		Description: "power law (alpha=2), ratio vs beta",
		ParamName:   "beta",
		M:           DefaultM,
		C:           DefaultC,
		Trials:      trials,
		Sweep:       betaSweep(func(int) gen.Dist { return gen.PowerLaw{Alpha: 2, Xmin: 1} }, DefaultM),
	}
}

// Fig2b sweeps the power-law exponent α at fixed β = 5 (Figure 2(b)).
func Fig2b(trials int) Spec {
	alphas := []float64{1.5, 2, 2.5, 3, 3.5, 4}
	points := make([]SweepPoint, 0, len(alphas))
	for _, a := range alphas {
		points = append(points, SweepPoint{
			Param: a,
			Dist:  gen.PowerLaw{Alpha: a, Xmin: 1},
			N:     5 * DefaultM,
		})
	}
	return Spec{
		ID:          "fig2b",
		Description: "power law, ratio vs alpha (beta=5)",
		ParamName:   "alpha",
		M:           DefaultM,
		C:           DefaultC,
		Trials:      trials,
		Sweep:       points,
	}
}

// Fig3a sweeps β under the discrete distribution with γ = 0.85, θ = 5
// (Figure 3(a)).
func Fig3a(trials int) Spec {
	return Spec{
		ID:          "fig3a",
		Description: "discrete (gamma=0.85, theta=5), ratio vs beta",
		ParamName:   "beta",
		M:           DefaultM,
		C:           DefaultC,
		Trials:      trials,
		Sweep: betaSweep(func(int) gen.Dist {
			return gen.Discrete{L: 1, Gamma: 0.85, Theta: 5}
		}, DefaultM),
	}
}

// Fig3b sweeps the discrete low-value probability γ at β = 5, θ = 5
// (Figure 3(b)).
func Fig3b(trials int) Spec {
	points := make([]SweepPoint, 0, 10)
	for g := 0.05; g <= 0.951; g += 0.1 {
		points = append(points, SweepPoint{
			Param: g,
			Dist:  gen.Discrete{L: 1, Gamma: g, Theta: 5},
			N:     5 * DefaultM,
		})
	}
	return Spec{
		ID:          "fig3b",
		Description: "discrete (theta=5, beta=5), ratio vs gamma",
		ParamName:   "gamma",
		M:           DefaultM,
		C:           DefaultC,
		Trials:      trials,
		Sweep:       points,
	}
}

// Fig3c sweeps the discrete high/low ratio θ at β = 5, γ = 0.85
// (Figure 3(c)).
func Fig3c(trials int) Spec {
	thetas := []float64{1, 2, 5, 10, 15, 20}
	points := make([]SweepPoint, 0, len(thetas))
	for _, th := range thetas {
		points = append(points, SweepPoint{
			Param: th,
			Dist:  gen.Discrete{L: 1, Gamma: 0.85, Theta: th},
			N:     5 * DefaultM,
		})
	}
	return Spec{
		ID:          "fig3c",
		Description: "discrete (gamma=0.85, beta=5), ratio vs theta",
		ParamName:   "theta",
		M:           DefaultM,
		C:           DefaultC,
		Trials:      trials,
		Sweep:       points,
	}
}

// ExtDiscreteLS is an extension beyond the paper: the hardest panel
// (two-point discrete, sweep β) with two additional solvers measured
// against the super-optimal bound — Algorithm 2 + relocation local
// search ("LS") and the marginal-gain greedy ("GM"). It quantifies how
// much of Algorithm 2's residual gap cheap post-optimization recovers.
func ExtDiscreteLS(trials int) Spec {
	s := Fig3a(trials)
	s.ID = "ext-ls"
	s.Description = "discrete (gamma=0.85, theta=5) with local search and greedy-marginal"
	// Keep the sweep short: the extra solvers cost O(n·m) allocations.
	s.Sweep = []SweepPoint{s.Sweep[1], s.Sweep[4], s.Sweep[9], s.Sweep[14]}
	s.Extra = []string{"LS", "GM"}
	return s
}

// AllFigures returns every paper-figure spec with the given trial count.
func AllFigures(trials int) []Spec {
	return []Spec{
		Fig1a(trials), Fig1b(trials),
		Fig2a(trials), Fig2b(trials),
		Fig3a(trials), Fig3b(trials), Fig3c(trials),
	}
}

// ExtClusterSize sweeps the server count m at fixed β = n/m = 5 — a
// question the paper leaves open (its evaluation fixes m = 8): does the
// advantage over the heuristics depend on cluster size? Power-law
// utilities keep the placement problem nontrivial at every scale.
func ExtClusterSize(trials int) Spec {
	ms := []int{2, 4, 8, 16, 32}
	points := make([]SweepPoint, 0, len(ms))
	for _, m := range ms {
		points = append(points, SweepPoint{
			Param: float64(m),
			Dist:  gen.PowerLaw{Alpha: 2, Xmin: 1},
			N:     5 * m,
			M:     m,
		})
	}
	return Spec{
		ID:          "ext-m",
		Description: "power law (alpha=2, beta=5), ratio vs cluster size m",
		ParamName:   "m",
		M:           DefaultM, // overridden per point
		C:           DefaultC,
		Trials:      trials,
		Sweep:       points,
	}
}

// AllExtensions returns the extension experiment specs.
func AllExtensions(trials int) []Spec {
	return []Spec{ExtDiscreteLS(trials), ExtClusterSize(trials)}
}

// ByID returns the figure or extension spec with the given id, or false.
func ByID(id string, trials int) (Spec, bool) {
	for _, s := range AllFigures(trials) {
		if s.ID == id {
			return s, true
		}
	}
	for _, s := range AllExtensions(trials) {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}
