package telemetry

import (
	"bufio"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"
)

// publishOnce guards the expvar.Publish of the default registry
// (expvar panics on duplicate names).
var publishOnce sync.Once

// Handler returns an http.Handler exposing the registry three ways:
//
//	/metrics          Prometheus text exposition format
//	/metrics/history  JSON ring of periodic snapshots (StartHistory)
//	/vars             expvar-style JSON of the registry
//	/debug/vars       standard expvar (cmdline, memstats, plus the
//	                  registry under "aa_metrics" when reg is Default)
//	/debug/pprof      the full net/http/pprof suite
//
// The root path serves a plain index of the endpoints.
func Handler(reg *Registry) http.Handler {
	if reg == Default {
		publishOnce.Do(func() {
			expvar.Publish("aa_metrics", expvar.Func(func() any {
				return Default.jsonSnapshot()
			}))
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/metrics/history", historyHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "aa telemetry\n\n/metrics\n/metrics/history\n/vars\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running telemetry HTTP server.
type Server struct {
	// Addr is the bound address, with the real port when the caller
	// asked for :0.
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Serve starts an HTTP server for reg on addr (e.g. "localhost:0") and
// returns once the listener is bound, so Addr is immediately usable.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else has
		// nowhere to go but the process log.
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "telemetry: serve %s: %v\n", s.Addr, err)
		}
	}()
	return s, nil
}

// Close stops the server immediately (in-flight scrapes are cut off;
// metrics are process state, nothing is lost).
func (s *Server) Close() error { return s.srv.Close() }

// Setup wires the two CLI observability flags in one call: a non-empty
// metricsAddr starts a Server for Default, a non-empty tracePath opens
// (truncates) the JSONL trace file behind a bufio.Writer, and either
// one enables telemetry process-wide. logf, when non-nil, receives one
// line per activated endpoint (CLIs pass a stderr printf).
//
// The returned shutdown func stops the server, detaches the trace sink
// (DetachTraceWriter, which waits out in-flight records and flushes the
// buffer), closes the trace file, and reports the first error — trace
// data is an artifact, a failed flush must not be dropped silently.
// shutdown is non-nil even when both flags are empty.
func Setup(metricsAddr, tracePath string, logf func(format string, args ...any)) (shutdown func() error, err error) {
	var srv *Server
	var traceFile *os.File
	if metricsAddr != "" {
		srv, err = Serve(metricsAddr, Default)
		if err != nil {
			return nil, err
		}
		Enable()
		if logf != nil {
			logf("telemetry: serving /metrics, /vars and /debug/pprof on http://%s\n", srv.Addr)
		}
	}
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			if srv != nil {
				srv.Close()
			}
			return nil, fmt.Errorf("telemetry: trace output: %w", err)
		}
		Enable()
		SetTraceWriter(bufio.NewWriter(traceFile))
		if logf != nil {
			logf("telemetry: writing trace events to %s\n", tracePath)
		}
	}
	return func() error {
		if srv != nil {
			srv.Close()
		}
		if traceFile == nil {
			return nil
		}
		err := DetachTraceWriter()
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("telemetry: trace output: %w", err)
		}
		return nil
	}, nil
}
