package cosched

import (
	"math"
	"testing"

	"aa/internal/cachesim"
	"aa/internal/core"
	"aa/internal/rng"
)

func symMatrix(vals [][]float64) PairCost {
	n := len(vals)
	pc := make(PairCost, n)
	for i := range pc {
		pc[i] = make([]float64, n)
		for j := range pc[i] {
			pc[i][j] = vals[i][j]
		}
	}
	return pc
}

func TestValidate(t *testing.T) {
	ok := symMatrix([][]float64{{0, 1}, {1, 0}})
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PairCost{
		{},
		{{0, 1}},                           // ragged
		{{0, 1}, {2, 0}},                   // asymmetric
		{{0, math.NaN()}, {math.NaN(), 0}}, // non-finite
	}
	for i, pc := range bad {
		if err := pc.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestOptimalPairsHandExample(t *testing.T) {
	// 4 threads; best pairing is (0,3) + (1,2) = 10 + 8 = 18.
	pc := symMatrix([][]float64{
		{0, 5, 6, 10},
		{5, 0, 8, 3},
		{6, 8, 0, 4},
		{10, 3, 4, 0},
	})
	p, err := OptimalPairs(pc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Value != 18 {
		t.Errorf("value %v, want 18", p.Value)
	}
	if len(p.Pairs) != 2 {
		t.Errorf("pairs %v", p.Pairs)
	}
}

func TestOptimalPairsRejects(t *testing.T) {
	odd := symMatrix([][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}})
	if _, err := OptimalPairs(odd); err == nil {
		t.Error("odd thread count accepted")
	}
	big := make(PairCost, MaxExactThreads+2)
	for i := range big {
		big[i] = make([]float64, MaxExactThreads+2)
	}
	if _, err := OptimalPairs(big); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestOptimalDominatesGreedyAndRoundRobin(t *testing.T) {
	base := rng.New(91)
	for trial := 0; trial < 20; trial++ {
		r := base.Split(uint64(trial))
		n := 2 * (2 + r.Intn(4)) // 4..10 threads
		pc := make(PairCost, n)
		for i := range pc {
			pc[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := r.Uniform(0, 10)
				pc[i][j], pc[j][i] = v, v
			}
		}
		opt, err := OptimalPairs(pc)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := GreedyPairs(pc)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := RoundRobinPairs(pc)
		if err != nil {
			t.Fatal(err)
		}
		if gr.Value > opt.Value+1e-9 || rr.Value > opt.Value+1e-9 {
			t.Errorf("trial %d: heuristic beat optimal (opt %v, greedy %v, rr %v)",
				trial, opt.Value, gr.Value, rr.Value)
		}
		// Each pairing must be a perfect matching.
		for _, p := range []Pairing{opt, gr, rr} {
			seen := make([]bool, n)
			for _, pair := range p.Pairs {
				if seen[pair[0]] || seen[pair[1]] || pair[0] == pair[1] {
					t.Fatalf("invalid matching %v", p.Pairs)
				}
				seen[pair[0]], seen[pair[1]] = true, true
			}
		}
	}
}

func TestServersMap(t *testing.T) {
	p := Pairing{Pairs: [][2]int{{0, 3}, {1, 2}}}
	servers := p.Servers(4)
	if servers[0] != 0 || servers[3] != 0 || servers[1] != 1 || servers[2] != 1 {
		t.Errorf("servers %v", servers)
	}
}

// The paper's §II argument made concrete: optimal co-scheduling (shared
// caches, measured pairwise) versus AA (partitioned caches, solo
// profiles). Co-scheduling needs O(n²) co-run measurements to build its
// cost matrix; AA needs O(n·W) solo runs — and with partitioning it
// should match or beat even the optimal pairing, because isolation
// dominates interference for antagonistic mixes.
func TestAAPartitioningBeatsOptimalCoScheduling(t *testing.T) {
	cfg := cachesim.Config{Sets: 32, Ways: 8, LineSize: 64}
	r := rng.New(92)
	gens := []cachesim.TraceGen{
		cachesim.WorkingSet{Lines: 100, LineSize: 64, Base: 0},
		cachesim.Stream{LineSize: 64, Base: 1 << 30},
		cachesim.WorkingSet{Lines: 150, LineSize: 64, Base: 2 << 30},
		cachesim.Stream{LineSize: 64, Base: 3 << 30},
	}
	workloads := cachesim.GenerateWorkloads(gens, 20000, cachesim.DefaultModel, r)
	n := len(gens)
	sockets := n / 2

	// Build the pairwise co-run matrix (the O(n²) measurement cost).
	pc := make(PairCost, n)
	for i := range pc {
		pc[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pair := []cachesim.Workload{workloads[i], workloads[j]}
			res, err := cachesim.SharedCoRun(cfg, 1, pair, []int{0, 0})
			if err != nil {
				t.Fatal(err)
			}
			pc[i][j], pc[j][i] = res.Total, res.Total
		}
	}
	opt, err := OptimalPairs(pc)
	if err != nil {
		t.Fatal(err)
	}

	// AA pipeline: solo profiles, joint solve, DP refinement, co-run.
	in, profiles, err := cachesim.BuildInstance(cfg, sockets, workloads)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Assign2(in)
	ways := cachesim.OptimizeWays(cfg, sockets, workloads, profiles, a)
	aaRes, err := cachesim.CoRunWays(cfg, sockets, workloads, a, ways)
	if err != nil {
		t.Fatal(err)
	}

	if aaRes.Total < opt.Value*0.95 {
		t.Errorf("AA partitioning (%v) materially below optimal co-scheduling (%v)",
			aaRes.Total, opt.Value)
	}
}
