// Command benchgate turns `go test -bench` text output into a stable
// JSON snapshot and gates one snapshot against another — the benchmark
// half of the repository's CI quality bar (scripts/bench_regress.sh).
//
// Modes:
//
//	benchgate -emit -rev <rev> < bench.txt > BENCH_<rev>.json
//	    Parse benchmark text from stdin into a JSON snapshot: ns/op and
//	    allocs/op per benchmark, keyed by the benchmark name with the
//	    trailing -<GOMAXPROCS> suffix stripped.
//
//	benchgate -compare -baseline bench/baseline.json -current BENCH_<rev>.json
//	    Fail (exit 1) if any benchmark present in both snapshots got more
//	    than -max-ratio times slower than the baseline (after machine
//	    calibration, see below), or allocates more per op than the
//	    baseline (strict: allocation counts are deterministic, so any
//	    increase is a real regression).
//
//	benchgate -speedups -current BENCH_<rev>.json
//	    Assert the fast-path speedup floor inside one snapshot: the
//	    retained reference implementations must be ≥ 5× slower than the
//	    fast Assign1 and ≥ 2× slower than the fast SuperOptimal at
//	    n = 10000, and the steady-state session solve must allocate
//	    nothing. This is how CI proves the fast paths stay fast-by-
//	    construction rather than fast-on-the-author's-machine.
//
// Calibration: snapshots include BenchmarkCalibrate, a fixed CPU-bound
// loop. -compare scales every baseline ns/op by the ratio of the current
// calibration time to the baseline's, so a slower (or faster) CI runner
// moves the whole gate instead of tripping it. Allocation gates need no
// calibration.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's measured cost.
type Bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is the JSON document benchgate emits and compares.
type Snapshot struct {
	Rev string `json:"rev"`
	// Procs is the GOMAXPROCS the benchmarks ran under (the suffix go
	// test appends to every name), recorded so core-count-conditional
	// gates — the n=10⁶ parallel-speedup floor — know whether this
	// machine could exhibit the speedup at all. 0 in snapshots predating
	// the field.
	Procs      int              `json:"procs,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// calibrateKey is the machine-speed probe every snapshot should carry.
const calibrateKey = "BenchmarkCalibrate"

func main() {
	var (
		emit     = flag.Bool("emit", false, "parse `go test -bench` text on stdin into JSON on stdout")
		compare  = flag.Bool("compare", false, "gate -current against -baseline")
		speedups = flag.Bool("speedups", false, "assert the fast-path speedup floor inside -current")
		rev      = flag.String("rev", "unknown", "revision label stored in the emitted snapshot")
		baseline = flag.String("baseline", "", "baseline snapshot path (for -compare)")
		current  = flag.String("current", "", "current snapshot path (for -compare / -speedups)")
		maxRatio = flag.Float64("max-ratio", 1.20, "ns/op regression threshold after calibration")
	)
	flag.Parse()

	switch {
	case *emit:
		snap, err := parseBenchText(os.Stdin, *rev)
		if err != nil {
			fatal(err)
		}
		if len(snap.Benchmarks) == 0 {
			fatal(fmt.Errorf("no benchmark lines found on stdin"))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fatal(err)
		}
	case *compare:
		base, err := loadSnapshot(*baseline)
		if err != nil {
			fatal(err)
		}
		cur, err := loadSnapshot(*current)
		if err != nil {
			fatal(err)
		}
		if errs := gate(base, cur, *maxRatio); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "REGRESSION:", e)
			}
			os.Exit(1)
		}
		fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline %s\n",
			len(shared(base, cur)), (*maxRatio-1)*100, base.Rev)
	case *speedups:
		cur, err := loadSnapshot(*current)
		if err != nil {
			fatal(err)
		}
		if errs := assertSpeedups(cur); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "SPEEDUP FLOOR:", e)
			}
			os.Exit(1)
		}
		fmt.Println("benchgate: fast-path speedup floor holds")
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

// parseBenchText reads `go test -bench` output and collects ns/op and
// allocs/op per benchmark. Lines that are not benchmark results (headers,
// PASS/ok, -v noise) are skipped. Repeated runs of one name keep the last
// measurement.
func parseBenchText(r *os.File, rev string) (*Snapshot, error) {
	snap := &Snapshot{Rev: rev, Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := splitProcs(fields[0])
		if procs > snap.Procs {
			snap.Procs = procs
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		b, ok := snap.Benchmarks[name], false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, ok = v, true
			case "allocs/op":
				b.AllocsPerOp, ok = v, true
			}
		}
		if ok {
			snap.Benchmarks[name] = b
		}
	}
	return snap, sc.Err()
}

// splitProcs strips the -<GOMAXPROCS> suffix go test appends to
// benchmark names (so snapshots from machines with different core
// counts share keys) and returns the core count it named, 0 if none.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}

func loadSnapshot(path string) (*Snapshot, error) {
	if path == "" {
		return nil, fmt.Errorf("snapshot path not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// shared returns the benchmark names present in both snapshots, sorted,
// excluding the calibration probe.
func shared(base, cur *Snapshot) []string {
	var names []string
	for name := range base.Benchmarks {
		if name == calibrateKey {
			continue
		}
		if _, ok := cur.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// gate compares cur against base: calibrated ns/op ratio at most
// maxRatio, allocs/op at most the baseline's.
func gate(base, cur *Snapshot, maxRatio float64) []string {
	scale := 1.0
	bc, bok := base.Benchmarks[calibrateKey]
	cc, cok := cur.Benchmarks[calibrateKey]
	if bok && cok && bc.NsPerOp > 0 {
		scale = cc.NsPerOp / bc.NsPerOp
	}
	var errs []string
	for _, name := range shared(base, cur) {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		if b.NsPerOp > 0 {
			limit := b.NsPerOp * scale * maxRatio
			if c.NsPerOp > limit {
				errs = append(errs, fmt.Sprintf(
					"%s: %.0f ns/op exceeds calibrated limit %.0f (baseline %.0f × machine %.2f × gate %.2f)",
					name, c.NsPerOp, limit, b.NsPerOp, scale, maxRatio))
			}
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			errs = append(errs, fmt.Sprintf("%s: %g allocs/op, baseline had %g",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return errs
}

// speedupFloor names one reference/fast benchmark pair and the minimum
// ns/op ratio between them.
type speedupFloor struct {
	ref, fast string
	min       float64
}

// overheadCeiling names a wrapped/base benchmark pair solving the same
// workload and the maximum ns/op ratio the wrapper may add.
type overheadCeiling struct {
	wrapped, base string
	max           float64
}

// assertSpeedups enforces the PR's headline numbers inside one snapshot.
func assertSpeedups(cur *Snapshot) []string {
	floors := []speedupFloor{
		{"BenchmarkAssign1Ref/fig1a-uniform/n=10000", "BenchmarkAssign1/fig1a-uniform/n=10000", 5},
		{"BenchmarkSuperOptimalRef/fig1a-uniform/n=10000", "BenchmarkSuperOptimal/fig1a-uniform/n=10000", 2},
		// Solve cache (PR 8), n=10⁴ / k=8 churn. The core pair pins the
		// ISSUE's headline: the warm repair ≥ 2× over a cold Assign2
		// pipeline on the same churned instance. The engine pairs pin the
		// end-to-end cache rungs, which carry the fixed canonicalization +
		// fingerprint cost on top of the solver work: exact hits must
		// still halve request latency, and a warm start must beat the
		// cold pipeline even after paying for its own lookup.
		{"BenchmarkAssign2WarmColdRef/n=10000", "BenchmarkAssign2Warm/n=10000", 2},
		{"BenchmarkCacheColdSolve/n=10000", "BenchmarkCacheExactHit/n=10000", 2},
		{"BenchmarkCacheColdSolve/n=10000", "BenchmarkCacheWarmStart/n=10000", 1.25},
	}
	var errs []string
	for _, f := range floors {
		ref, rok := cur.Benchmarks[f.ref]
		fast, fok := cur.Benchmarks[f.fast]
		switch {
		case !rok || !fok:
			errs = append(errs, fmt.Sprintf("missing %s or %s", f.ref, f.fast))
		case fast.NsPerOp <= 0 || ref.NsPerOp/fast.NsPerOp < f.min:
			errs = append(errs, fmt.Sprintf("%s is only %.2fx slower than %s, floor is %gx",
				f.ref, ref.NsPerOp/fast.NsPerOp, f.fast, f.min))
		}
	}
	// The engine pipeline (registry dispatch + middleware chain) runs the
	// same 8x400-thread workload as the raw session solve; riding it must
	// cost under 5% — both benchmarks live in the same snapshot, so this
	// needs no machine calibration.
	ceilings := []overheadCeiling{
		{"BenchmarkEngineSolve", "BenchmarkSolveSession", 1.05},
	}
	for _, c := range ceilings {
		wrapped, wok := cur.Benchmarks[c.wrapped]
		base, bok := cur.Benchmarks[c.base]
		switch {
		case !wok || !bok:
			errs = append(errs, fmt.Sprintf("missing %s or %s", c.wrapped, c.base))
		case base.NsPerOp <= 0 || wrapped.NsPerOp/base.NsPerOp > c.max:
			errs = append(errs, fmt.Sprintf("%s is %.3fx of %s, ceiling is %gx",
				c.wrapped, wrapped.NsPerOp/base.NsPerOp, c.base, c.max))
		}
	}
	// The million-thread tier rides along when the snapshot carries it
	// (the AA_BENCH_1M lane of bench_regress.sh): parallel Assign2 must
	// be ≥2× serial at n=10⁶ — but only on ≥4 cores, where the chunked
	// sorts have real parallelism to spend. Snapshots from smaller
	// machines record the numbers without arming the floor, and a
	// snapshot carrying only half the pair is malformed.
	const (
		bench1MSerial   = "BenchmarkAssign2Serial1M"
		bench1MParallel = "BenchmarkAssign2Parallel1M"
	)
	ser, serOK := cur.Benchmarks[bench1MSerial]
	par, parOK := cur.Benchmarks[bench1MParallel]
	switch {
	case serOK != parOK:
		errs = append(errs, fmt.Sprintf("snapshot has only one of %s / %s", bench1MSerial, bench1MParallel))
	case serOK && cur.Procs >= 4:
		if par.NsPerOp <= 0 || ser.NsPerOp/par.NsPerOp < 2 {
			errs = append(errs, fmt.Sprintf(
				"%s is only %.2fx faster than %s on %d cores, floor is 2x",
				bench1MParallel, ser.NsPerOp/par.NsPerOp, bench1MSerial, cur.Procs))
		}
	}
	for _, name := range []string{
		"BenchmarkSolveSession",
		"BenchmarkEngineSolve",
		"BenchmarkAssign1/fig1a-uniform/n=10000",
		"BenchmarkSolve/fig1a-uniform/n=10000",
		"BenchmarkAssign2Warm/n=10000",
	} {
		b, ok := cur.Benchmarks[name]
		if !ok {
			errs = append(errs, "missing "+name)
		} else if b.AllocsPerOp != 0 {
			errs = append(errs, fmt.Sprintf("%s: %g allocs/op, want 0", name, b.AllocsPerOp))
		}
	}
	return errs
}
