#!/usr/bin/env bash
# trace_smoke.sh — end-to-end check of request-scoped tracing.
#
# Builds aaserve and aagen, starts the server with -trace-out on an
# ephemeral port, and solves one instance over HTTP with a
# caller-supplied W3C traceparent header. After a SIGTERM drain the
# server's trace file must be well-formed JSONL (no truncated final
# record), the http.request span must continue the caller's trace and
# parent, the engine.solve span must nest under http.request, and every
# parent_id in the file must resolve — the only edge allowed to point
# outside the file is the caller-supplied one. The response must echo a
# traceparent on the caller's trace. Run from the repository root; CI
# runs it after the serve smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

# A fixed caller context, so the assertions are deterministic.
caller_trace="4bf92f3577b34da6a3ce929d0e0e4736"
caller_span="00f067aa0ba902b7"
caller_tp="00-$caller_trace-$caller_span-01"

tmpdir="$(mktemp -d)"
stderr_log="$tmpdir/stderr.log"
trace_file="$tmpdir/trace.jsonl"
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    [ -n "${pid:-}" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

go build -o "$tmpdir/aaserve" ./cmd/aaserve
go build -o "$tmpdir/aagen" ./cmd/aagen

"$tmpdir/aagen" -dist uniform -m 4 -c 1000 -n 30 -seed 7 >"$tmpdir/instance.json"

"$tmpdir/aaserve" -addr 127.0.0.1:0 -workers 2 -trace-out "$trace_file" \
    2>"$stderr_log" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's|.*listening on http://\([^ ]*\)$|\1|p' "$stderr_log" | head -n1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "trace_smoke: aaserve exited before listening" >&2
        cat "$stderr_log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "trace_smoke: never saw the listening line on stderr" >&2
    cat "$stderr_log" >&2
    exit 1
fi

# Solve with the caller's traceparent; keep the response headers.
if ! curl -fsS -D "$tmpdir/headers.txt" -X POST \
    -H "traceparent: $caller_tp" \
    --data-binary @"$tmpdir/instance.json" \
    "http://$addr/solve" >"$tmpdir/assignment.json"; then
    echo "trace_smoke: solve request failed" >&2
    cat "$stderr_log" >&2
    exit 1
fi

# The response must carry a traceparent continuing the caller's trace.
if ! grep -i "^traceparent: 00-$caller_trace-" "$tmpdir/headers.txt" >/dev/null; then
    echo "trace_smoke: response traceparent missing or off-trace" >&2
    cat "$tmpdir/headers.txt" >&2
    exit 1
fi
grep -iq "^x-request-id:" "$tmpdir/headers.txt" || {
    echo "trace_smoke: response missing X-Request-ID" >&2
    exit 1
}

# Drain: the shutdown path must flush the buffered trace sink, so the
# last JSONL record survives intact.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" != 0 ]; then
    echo "trace_smoke: aaserve exited $rc after SIGTERM" >&2
    cat "$stderr_log" >&2
    exit 1
fi

if command -v python3 >/dev/null 2>&1; then
    python3 - "$trace_file" "$caller_trace" "$caller_span" <<'EOF' || { echo "trace_smoke: bad trace file" >&2; cat "$trace_file" >&2; exit 1; }
import json, sys
path, caller_trace, caller_span = sys.argv[1:4]
spans, ids = [], set()
with open(path) as f:
    for line in f:
        line = line.rstrip("\n")
        if not line:
            continue
        rec = json.loads(line)  # any truncated record fails here
        if rec.get("type") == "span":
            spans.append(rec)
            ids.add(rec["span_id"])
assert spans, "trace file has no spans"

# Every parent resolves in-file, except the caller-supplied edge.
for s in spans:
    parent = s.get("parent_id", "")
    if parent and parent not in ids:
        assert parent == caller_span, \
            f'span {s["name"]} has dangling parent {parent}'

req = [s for s in spans if s["name"] == "http.request"]
assert req, "no http.request span"
r = req[0]
assert r["trace_id"] == caller_trace, f'http.request trace {r["trace_id"]}'
assert r["parent_id"] == caller_span, f'http.request parent {r["parent_id"]}'

solve = [s for s in spans if s["name"] == "engine.solve"
         and s.get("parent_id") == r["span_id"]]
assert solve, "engine.solve not nested under http.request"
assert solve[0]["trace_id"] == caller_trace

dispatch = [s for s in spans if s["name"] == "engine.dispatch"
            and s.get("parent_id") == solve[0]["span_id"]]
assert dispatch, "engine.dispatch not nested under engine.solve"

core = [s for s in spans if s["name"].startswith("core.")
        and s.get("parent_id") == dispatch[0]["span_id"]]
assert core, "no core stage span under engine.dispatch"
print(f"trace_smoke: {len(spans)} spans, caller trace joined through "
      f"http.request -> engine.solve -> {core[0]['name']}")
EOF
else
    # No python3: at least require well-shaped lines on the caller trace.
    grep -q "\"name\":\"http.request\"" "$trace_file" || {
        echo "trace_smoke: no http.request span" >&2
        exit 1
    }
    grep -q "\"trace_id\":\"$caller_trace\"" "$trace_file" || {
        echo "trace_smoke: caller trace id absent from trace file" >&2
        exit 1
    }
fi

echo "trace_smoke: OK ($(wc -l <"$trace_file") trace records from http://$addr)"
