#!/usr/bin/env bash
# cache_smoke.sh — end-to-end check of the aaserve solve-result cache.
#
# Builds aaserve and aagen, starts the server with -cache memory on an
# ephemeral port, POSTs the same instance twice, and fails unless the
# second response is byte-identical to the first with the
# aa_cache_hits_total counter moved. A ?cache=bypass request must solve
# without touching the cache (bypass counter moves, hit/miss counters
# don't). Run from the repository root; CI runs it after the serve
# smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d)"
stderr_log="$tmpdir/stderr.log"
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    [ -n "${pid:-}" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

go build -o "$tmpdir/aaserve" ./cmd/aaserve
go build -o "$tmpdir/aagen" ./cmd/aagen

"$tmpdir/aagen" -dist powerlaw -m 6 -c 1000 -n 40 -seed 5 >"$tmpdir/instance.json"

"$tmpdir/aaserve" -addr 127.0.0.1:0 -workers 2 -cache memory -cache-size 64 \
    2>"$stderr_log" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's|.*listening on http://\([^ ]*\)$|\1|p' "$stderr_log" | head -n1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "cache_smoke: aaserve exited before listening" >&2
        cat "$stderr_log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "cache_smoke: never saw the listening line on stderr" >&2
    cat "$stderr_log" >&2
    exit 1
fi

solve() {
    curl -fsS -X POST --data-binary @"$tmpdir/instance.json" "http://$addr/solve$1"
}

# metric NAME — current value of an aa_cache_* counter (0 if absent:
# counters register on first increment).
metric() {
    curl -fsS "http://$addr/metrics" | awk -v n="$1" '$1 == n {print $2}' | head -n1 |
        grep . || echo 0
}

# Populate, then hit: the repeat solve must be byte-identical and
# served from the cache.
solve "" >"$tmpdir/first.json"
solve "" >"$tmpdir/second.json"
if ! cmp -s "$tmpdir/first.json" "$tmpdir/second.json"; then
    echo "cache_smoke: cached response differs from populating one" >&2
    diff "$tmpdir/first.json" "$tmpdir/second.json" >&2 || true
    exit 1
fi
hits="$(metric aa_cache_hits_total)"
misses="$(metric aa_cache_misses_total)"
stores="$(metric aa_cache_stores_total)"
if [ "$hits" != 1 ] || [ "$misses" != 1 ] || [ "$stores" != 1 ]; then
    echo "cache_smoke: counters after populate+repeat: hits=$hits misses=$misses stores=$stores (want 1/1/1)" >&2
    exit 1
fi

# Bypass: solves fine, counts only a bypass.
solve "?cache=bypass" >"$tmpdir/bypass.json"
if ! cmp -s "$tmpdir/first.json" "$tmpdir/bypass.json"; then
    echo "cache_smoke: bypass solve of the same instance returned different bytes" >&2
    exit 1
fi
bypasses="$(metric aa_cache_bypasses_total)"
hits2="$(metric aa_cache_hits_total)"
misses2="$(metric aa_cache_misses_total)"
if [ "$bypasses" != 1 ] || [ "$hits2" != "$hits" ] || [ "$misses2" != "$misses" ]; then
    echo "cache_smoke: bypass touched the cache: bypasses=$bypasses hits=$hits2 misses=$misses2" >&2
    exit 1
fi

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" != 0 ]; then
    echo "cache_smoke: aaserve exited $rc after SIGTERM" >&2
    cat "$stderr_log" >&2
    exit 1
fi

echo "cache_smoke: OK (hit byte-identical, hits=$hits misses=$misses bypasses=$bypasses at http://$addr)"
