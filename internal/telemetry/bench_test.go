package telemetry

import (
	"testing"
	"time"
)

// BenchmarkEnabledCheck is the cost every instrumented region pays when
// telemetry is off: one atomic load and a branch.
func BenchmarkEnabledCheck(b *testing.B) {
	Disable()
	var n int
	for i := 0; i < b.N; i++ {
		if Enabled() {
			n++
		}
	}
	if n != 0 {
		b.Fatal("telemetry unexpectedly enabled")
	}
}

// BenchmarkCounterAdd is the enabled-path cost of a counter update.
func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("miscount")
	}
}

// BenchmarkHistogramObserve is the enabled-path cost of one latency
// observation against the default bucket layout.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}

// BenchmarkGuardedObserve is the full hot-path pattern the solver uses:
// check, time, observe — compared against BenchmarkEnabledCheck it
// shows what flipping the switch costs.
func BenchmarkGuardedObserve(b *testing.B) {
	Enable()
	defer Disable()
	h := NewHistogram(LatencyBuckets)
	c := new(Counter)
	for i := 0; i < b.N; i++ {
		if Enabled() {
			start := time.Now()
			c.Inc()
			h.Observe(time.Since(start).Seconds())
		}
	}
}
