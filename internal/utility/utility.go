// Package utility models thread utility functions.
//
// The paper (IPDPS'16) characterizes each thread by a nonnegative,
// nondecreasing, concave function f : [0, C] → ℝ≥0 giving its performance
// (throughput, hit rate, revenue, ...) as a function of the resource it is
// allocated. This package defines the Func interface the solvers consume,
// a library of closed-form concave families observed in practice (linear,
// capped linear, power, logarithmic, saturating exponential, M/M/1-style),
// sampled curves backed by shape-preserving interpolation, combinators,
// and numeric validators for the three model assumptions.
package utility

import (
	"errors"
	"fmt"
	"math"

	"aa/internal/interp"
)

// Func is a thread utility function on the domain [0, Cap()].
//
// Implementations must be nonnegative, nondecreasing and concave on the
// domain; Validate checks these properties numerically. Value and Deriv
// must accept any x (callers may probe slightly outside the domain during
// bisection) and clamp it to [0, Cap()].
type Func interface {
	// Value returns f(x) with x clamped to [0, Cap()].
	Value(x float64) float64
	// Deriv returns the right derivative f'(x) (one-sided at the
	// boundary). For concave f it is nonincreasing in x.
	Deriv(x float64) float64
	// Cap returns the domain upper bound, i.e. the server capacity C the
	// function was defined for.
	Cap() float64
}

// DerivInverter is an optional fast path: given a marginal value lambda,
// InverseDeriv returns the largest x in [0, Cap()] with Deriv(x) >= lambda
// (0 if none). The λ-bisection allocator uses it when available and falls
// back to InverseDeriv (the package function) otherwise.
type DerivInverter interface {
	InverseDeriv(lambda float64) float64
}

// clamp restricts x to [0, c].
func clamp(x, c float64) float64 {
	if x < 0 {
		return 0
	}
	if x > c {
		return c
	}
	return x
}

// ---------------------------------------------------------------------------
// Closed-form families
// ---------------------------------------------------------------------------

// Linear is f(x) = Slope·x, the simplest concave utility.
type Linear struct {
	Slope float64 // must be >= 0
	C     float64 // domain bound
}

// Value returns Slope·x.
func (l Linear) Value(x float64) float64 { return l.Slope * clamp(x, l.C) }

// Deriv returns Slope inside the domain and 0 beyond it.
func (l Linear) Deriv(x float64) float64 {
	if x >= l.C {
		return 0
	}
	return l.Slope
}

// Cap returns the domain bound.
func (l Linear) Cap() float64 { return l.C }

// InverseDeriv returns C when lambda <= Slope, else 0.
func (l Linear) InverseDeriv(lambda float64) float64 {
	if lambda <= l.Slope {
		return l.C
	}
	return 0
}

// CappedLinear is f(x) = Slope·min(x, Knee): linear up to the knee, flat
// after. This is the family used in the paper's NP-hardness reduction
// (Thm IV.1, with Slope = 1 and Knee = c_i) and its tightness example
// (Thm V.17).
type CappedLinear struct {
	Slope float64 // must be >= 0
	Knee  float64 // saturation point, in [0, C]
	C     float64 // domain bound
}

// Value returns Slope·min(x, Knee).
func (f CappedLinear) Value(x float64) float64 {
	x = clamp(x, f.C)
	if x > f.Knee {
		x = f.Knee
	}
	return f.Slope * x
}

// Deriv returns Slope before the knee and 0 after.
func (f CappedLinear) Deriv(x float64) float64 {
	if x < f.Knee && x < f.C {
		return f.Slope
	}
	return 0
}

// Cap returns the domain bound.
func (f CappedLinear) Cap() float64 { return f.C }

// InverseDeriv returns Knee when lambda <= Slope, else 0.
func (f CappedLinear) InverseDeriv(lambda float64) float64 {
	if lambda <= f.Slope {
		return clamp(f.Knee, f.C)
	}
	return 0
}

// Power is f(x) = Scale·x^Beta with Beta in (0, 1], the family used in the
// paper's introduction to show fixed-request allocation can be a factor
// n^(1-Beta) from optimal.
type Power struct {
	Scale float64 // must be >= 0
	Beta  float64 // in (0, 1]
	C     float64 // domain bound
}

// Value returns Scale·x^Beta.
func (p Power) Value(x float64) float64 {
	x = clamp(x, p.C)
	if x == 0 {
		return 0
	}
	return p.Scale * math.Pow(x, p.Beta)
}

// Deriv returns Scale·Beta·x^(Beta-1); at x = 0 it is +Inf for Beta < 1.
func (p Power) Deriv(x float64) float64 {
	if x >= p.C {
		return 0
	}
	if x <= 0 {
		if p.Beta < 1 {
			return math.Inf(1)
		}
		return p.Scale
	}
	return p.Scale * p.Beta * math.Pow(x, p.Beta-1)
}

// Cap returns the domain bound.
func (p Power) Cap() float64 { return p.C }

// InverseDeriv solves Scale·Beta·x^(Beta-1) = lambda in closed form.
func (p Power) InverseDeriv(lambda float64) float64 {
	if lambda <= 0 {
		return p.C
	}
	if p.Beta == 1 {
		if lambda <= p.Scale {
			return p.C
		}
		return 0
	}
	x := math.Pow(lambda/(p.Scale*p.Beta), 1/(p.Beta-1))
	return clamp(x, p.C)
}

// Log is f(x) = Scale·ln(1 + x/Shift), a slowly-saturating concave curve
// typical of cache hit rates over large working sets.
type Log struct {
	Scale float64 // must be >= 0
	Shift float64 // must be > 0
	C     float64 // domain bound
}

// Value returns Scale·ln(1 + x/Shift).
func (l Log) Value(x float64) float64 {
	return l.Scale * math.Log1p(clamp(x, l.C)/l.Shift)
}

// Deriv returns Scale / (Shift + x).
func (l Log) Deriv(x float64) float64 {
	if x >= l.C {
		return 0
	}
	return l.Scale / (l.Shift + clamp(x, l.C))
}

// Cap returns the domain bound.
func (l Log) Cap() float64 { return l.C }

// InverseDeriv solves Scale/(Shift+x) = lambda in closed form.
func (l Log) InverseDeriv(lambda float64) float64 {
	if lambda <= 0 {
		return l.C
	}
	return clamp(l.Scale/lambda-l.Shift, l.C)
}

// SatExp is f(x) = Scale·(1 − e^(−x/K)), a sharply saturating concave
// curve typical of working sets that fit in cache.
type SatExp struct {
	Scale float64 // must be >= 0
	K     float64 // must be > 0; smaller K saturates faster
	C     float64 // domain bound
}

// Value returns Scale·(1 − e^(−x/K)).
func (s SatExp) Value(x float64) float64 {
	return s.Scale * (1 - math.Exp(-clamp(x, s.C)/s.K))
}

// Deriv returns (Scale/K)·e^(−x/K).
func (s SatExp) Deriv(x float64) float64 {
	if x >= s.C {
		return 0
	}
	return s.Scale / s.K * math.Exp(-clamp(x, s.C)/s.K)
}

// Cap returns the domain bound.
func (s SatExp) Cap() float64 { return s.C }

// InverseDeriv solves (Scale/K)·e^(−x/K) = lambda in closed form.
func (s SatExp) InverseDeriv(lambda float64) float64 {
	if lambda <= 0 {
		return s.C
	}
	peak := s.Scale / s.K
	if lambda >= peak {
		return 0
	}
	return clamp(-s.K*math.Log(lambda/peak), s.C)
}

// Saturating is f(x) = Scale·x/(x+K), the M/M/1-style throughput curve used
// by the hosting substrate (throughput saturates as allocation grows).
type Saturating struct {
	Scale float64 // asymptotic maximum, >= 0
	K     float64 // half-saturation constant, > 0
	C     float64 // domain bound
}

// Value returns Scale·x/(x+K).
func (s Saturating) Value(x float64) float64 {
	x = clamp(x, s.C)
	if x == 0 {
		return 0
	}
	return s.Scale * x / (x + s.K)
}

// Deriv returns Scale·K/(x+K)².
func (s Saturating) Deriv(x float64) float64 {
	if x >= s.C {
		return 0
	}
	x = clamp(x, s.C)
	d := x + s.K
	return s.Scale * s.K / (d * d)
}

// Cap returns the domain bound.
func (s Saturating) Cap() float64 { return s.C }

// InverseDeriv solves Scale·K/(x+K)² = lambda in closed form.
func (s Saturating) InverseDeriv(lambda float64) float64 {
	if lambda <= 0 {
		return s.C
	}
	x := math.Sqrt(s.Scale*s.K/lambda) - s.K
	return clamp(x, s.C)
}

// ---------------------------------------------------------------------------
// Piecewise linear and sampled curves
// ---------------------------------------------------------------------------

// PiecewiseLinear is a concave piecewise-linear utility through a set of
// knots. It evaluates in O(log k) and inverts its derivative exactly, so it
// is the workhorse for linearized problems and for profiled curves where
// smoothness is not required.
type PiecewiseLinear struct {
	curve *interp.Linear
	c     float64
}

// NewPiecewiseLinear builds a piecewise-linear utility through
// (xs[i], ys[i]). The first knot must be at x = 0; the data must be
// nonnegative, nondecreasing and concave (nonincreasing secant slopes);
// the last knot defines Cap().
func NewPiecewiseLinear(xs, ys []float64) (*PiecewiseLinear, error) {
	if len(xs) == 0 || xs[0] != 0 {
		return nil, errors.New("utility: piecewise-linear curve must start at x=0")
	}
	if len(ys) > 0 && ys[0] < 0 {
		return nil, errors.New("utility: negative utility value")
	}
	if !interp.IsMonotoneNondecreasing(ys) {
		return nil, errors.New("utility: values must be nondecreasing")
	}
	if !interp.IsConcaveData(xs, ys, 1e-9) {
		return nil, errors.New("utility: values must be concave")
	}
	curve, err := interp.NewLinear(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("utility: %w", err)
	}
	return &PiecewiseLinear{curve: curve, c: xs[len(xs)-1]}, nil
}

// Value evaluates the curve at x.
func (p *PiecewiseLinear) Value(x float64) float64 { return p.curve.At(clamp(x, p.c)) }

// Knots returns copies of the curve's defining knots — the exact
// (xs, ys) the curve was built from.
func (p *PiecewiseLinear) Knots() (xs, ys []float64) { return p.curve.Knots() }

// KnotCount returns the number of defining knots.
func (p *PiecewiseLinear) KnotCount() int { return p.curve.KnotCount() }

// Knot returns the i-th defining knot without copying the knot slices.
func (p *PiecewiseLinear) Knot(i int) (x, y float64) { return p.curve.Knot(i) }

// Deriv returns the slope of the segment containing x.
func (p *PiecewiseLinear) Deriv(x float64) float64 {
	if x >= p.c {
		return 0
	}
	return p.curve.DerivAt(clamp(x, p.c))
}

// Cap returns the domain bound.
func (p *PiecewiseLinear) Cap() float64 { return p.c }

// InverseDeriv returns the largest x whose segment slope is >= lambda.
// Because the curve is concave the slopes are nonincreasing, so the answer
// is the right endpoint of the last segment with slope >= lambda.
func (p *PiecewiseLinear) InverseDeriv(lambda float64) float64 {
	return p.curve.InvDeriv(lambda)
}

// Sampled is a smooth utility backed by PCHIP interpolation of sampled
// points — how the paper's workload generator and the cache profiler
// produce utilities. The data must be nonnegative and nondecreasing; PCHIP
// preserves monotonicity. Concavity of the interpolant is inherited from
// concave data in practice but is not guaranteed pointwise; Validate can
// check it numerically when required.
type Sampled struct {
	curve *interp.PCHIP
	c     float64
}

// NewSampled builds a PCHIP-backed utility through (xs[i], ys[i]). The
// first knot must be at x = 0 and the data nonnegative and nondecreasing;
// the last knot defines Cap().
func NewSampled(xs, ys []float64) (*Sampled, error) {
	if len(xs) == 0 || xs[0] != 0 {
		return nil, errors.New("utility: sampled curve must start at x=0")
	}
	for _, y := range ys {
		if y < 0 {
			return nil, errors.New("utility: negative utility value")
		}
	}
	if !interp.IsMonotoneNondecreasing(ys) {
		return nil, errors.New("utility: values must be nondecreasing")
	}
	curve, err := interp.NewPCHIP(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("utility: %w", err)
	}
	return &Sampled{curve: curve, c: xs[len(xs)-1]}, nil
}

// Value evaluates the interpolated curve at x.
func (s *Sampled) Value(x float64) float64 { return s.curve.At(clamp(x, s.c)) }

// Knots returns copies of the curve's defining knots — the exact
// (xs, ys) the curve was built from.
func (s *Sampled) Knots() (xs, ys []float64) { return s.curve.Knots() }

// KnotCount returns the number of defining knots.
func (s *Sampled) KnotCount() int { return s.curve.KnotCount() }

// Knot returns the i-th defining knot without copying the knot slices.
func (s *Sampled) Knot(i int) (x, y float64) { return s.curve.Knot(i) }

// Deriv evaluates the interpolated derivative at x.
func (s *Sampled) Deriv(x float64) float64 {
	if x >= s.c {
		return 0
	}
	d := s.curve.DerivAt(clamp(x, s.c))
	if d < 0 {
		return 0 // numeric guard; PCHIP of monotone data is monotone
	}
	return d
}

// Cap returns the domain bound.
func (s *Sampled) Cap() float64 { return s.c }

// InverseDeriv returns the largest x with Deriv(x) >= lambda, resolved in
// closed form: the PCHIP derivative is quadratic within each knot interval,
// so each segment's superlevel set is an exact quadratic solve
// (interp.PCHIP.InvDeriv). This replaces the generic derivative bisection
// (~50 Deriv evaluations per query at the default tolerance) in the
// water-filling hot loop; sampled curves are what the paper's workload
// generator emits, so this is the path nearly every λ-probe takes.
func (s *Sampled) InverseDeriv(lambda float64) float64 {
	if lambda <= 0 {
		return s.c
	}
	return s.curve.InvDeriv(lambda)
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

// Scaled wraps a utility, multiplying its value by Factor >= 0. Positive
// scaling preserves all three model properties.
type Scaled struct {
	F      Func
	Factor float64
}

// Value returns Factor·F(x).
func (s Scaled) Value(x float64) float64 { return s.Factor * s.F.Value(x) }

// Deriv returns Factor·F'(x).
func (s Scaled) Deriv(x float64) float64 { return s.Factor * s.F.Deriv(x) }

// Cap returns the wrapped function's domain bound.
func (s Scaled) Cap() float64 { return s.F.Cap() }

// InverseDeriv delegates to the wrapped function when possible.
func (s Scaled) InverseDeriv(lambda float64) float64 {
	if s.Factor <= 0 {
		return 0
	}
	if inv, ok := s.F.(DerivInverter); ok {
		return inv.InverseDeriv(lambda / s.Factor)
	}
	return bisectInverseDeriv(s, lambda, defaultInvTol)
}

// Sum is the pointwise sum of utilities, itself concave and nondecreasing.
// All summands must share the same Cap.
type Sum struct {
	Fs []Func
}

// Value returns Σ F_i(x).
func (s Sum) Value(x float64) float64 {
	total := 0.0
	for _, f := range s.Fs {
		total += f.Value(x)
	}
	return total
}

// Deriv returns Σ F_i'(x).
func (s Sum) Deriv(x float64) float64 {
	total := 0.0
	for _, f := range s.Fs {
		total += f.Deriv(x)
	}
	return total
}

// Cap returns the common domain bound (the minimum across summands).
func (s Sum) Cap() float64 {
	if len(s.Fs) == 0 {
		return 0
	}
	c := s.Fs[0].Cap()
	for _, f := range s.Fs[1:] {
		if fc := f.Cap(); fc < c {
			c = fc
		}
	}
	return c
}

// Min is the pointwise minimum of utilities — still concave and
// nondecreasing, the standard way to express a demand cap
// ("throughput rises with allocation, but never beyond the offered
// load"): Min{F, CappedAt(demand)}.
type Min struct {
	Fs []Func
}

// Value returns min_i F_i(x).
func (m Min) Value(x float64) float64 {
	if len(m.Fs) == 0 {
		return 0
	}
	v := m.Fs[0].Value(x)
	for _, f := range m.Fs[1:] {
		if fv := f.Value(x); fv < v {
			v = fv
		}
	}
	return v
}

// Deriv returns the derivative of the currently-binding branch (the one
// achieving the minimum; ties pick the smaller derivative, which is the
// right one-sided derivative for a min of concave functions).
func (m Min) Deriv(x float64) float64 {
	if len(m.Fs) == 0 {
		return 0
	}
	bestV := m.Fs[0].Value(x)
	bestD := m.Fs[0].Deriv(x)
	for _, f := range m.Fs[1:] {
		v := f.Value(x)
		d := f.Deriv(x)
		tol := 1e-12 * (1 + math.Abs(bestV))
		switch {
		case v < bestV-tol:
			bestV, bestD = v, d
		case v <= bestV+tol && d < bestD:
			bestD = d
		}
	}
	return bestD
}

// Cap returns the common domain bound (the minimum across branches).
func (m Min) Cap() float64 {
	if len(m.Fs) == 0 {
		return 0
	}
	c := m.Fs[0].Cap()
	for _, f := range m.Fs[1:] {
		if fc := f.Cap(); fc < c {
			c = fc
		}
	}
	return c
}

// Offset adds a constant Base >= 0 to a utility: f(0) > 0 is allowed by
// the model (the paper only requires nonnegativity).
type Offset struct {
	F    Func
	Base float64
}

// Value returns Base + F(x).
func (o Offset) Value(x float64) float64 { return o.Base + o.F.Value(x) }

// Deriv returns F'(x).
func (o Offset) Deriv(x float64) float64 { return o.F.Deriv(x) }

// Cap returns the wrapped function's domain bound.
func (o Offset) Cap() float64 { return o.F.Cap() }

// InverseDeriv delegates to the wrapped function when possible.
func (o Offset) InverseDeriv(lambda float64) float64 {
	if inv, ok := o.F.(DerivInverter); ok {
		return inv.InverseDeriv(lambda)
	}
	return bisectInverseDeriv(o, lambda, defaultInvTol)
}

// ---------------------------------------------------------------------------
// Generic derivative inversion and validation
// ---------------------------------------------------------------------------

const defaultInvTol = 1e-9

// InverseDeriv returns the largest x in [0, f.Cap()] with f.Deriv(x) >=
// lambda, to within tol, assuming f is concave (so Deriv is nonincreasing).
// If the implementation provides a DerivInverter fast path it is used.
func InverseDeriv(f Func, lambda, tol float64) float64 {
	if inv, ok := f.(DerivInverter); ok {
		return inv.InverseDeriv(lambda)
	}
	return bisectInverseDeriv(f, lambda, tol)
}

// bisectInverseDeriv is the generic bisection without the fast-path
// dispatch — combinators use it as their fallback so a wrapper whose
// inner function lacks a closed form cannot recurse into itself.
//
// The iteration count is bounded: an absolute tolerance below the
// float64 ulp at the domain's magnitude would otherwise never be
// reached (hi−lo cannot shrink past one ulp), turning the loop into a
// spin. 100 halvings of any float64 interval reach the ulp regardless.
func bisectInverseDeriv(f Func, lambda, tol float64) float64 {
	c := f.Cap()
	if f.Deriv(0) < lambda {
		return 0
	}
	if f.Deriv(c) >= lambda {
		return c
	}
	lo, hi := 0.0, c
	for iter := 0; iter < 100 && hi-lo > tol; iter++ {
		mid := 0.5 * (lo + hi)
		if f.Deriv(mid) >= lambda {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ValidationError reports which model assumption a utility violates.
type ValidationError struct {
	Property string  // "nonnegative", "nondecreasing" or "concave"
	X        float64 // where the violation was detected
	Detail   string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("utility: not %s at x=%g: %s", e.Property, e.X, e.Detail)
}

// Validate numerically checks the three model assumptions — nonnegative,
// nondecreasing, concave — on a grid of samples points over [0, Cap()].
// tol absorbs floating-point noise; samples ~1000 is plenty in practice.
func Validate(f Func, samples int, tol float64) error {
	if samples < 3 {
		samples = 3
	}
	c := f.Cap()
	if c <= 0 {
		return errors.New("utility: nonpositive capacity")
	}
	step := c / float64(samples-1)
	prevV := f.Value(0)
	if prevV < -tol {
		return &ValidationError{Property: "nonnegative", X: 0,
			Detail: fmt.Sprintf("f(0)=%g", prevV)}
	}
	prevSlope := math.Inf(1)
	prevX := 0.0
	for i := 1; i < samples; i++ {
		x := float64(i) * step
		v := f.Value(x)
		if v < -tol {
			return &ValidationError{Property: "nonnegative", X: x,
				Detail: fmt.Sprintf("f(x)=%g", v)}
		}
		if v < prevV-tol*(1+math.Abs(prevV)) {
			return &ValidationError{Property: "nondecreasing", X: x,
				Detail: fmt.Sprintf("f drops from %g to %g", prevV, v)}
		}
		slope := (v - prevV) / (x - prevX)
		if slope > prevSlope+tol*(1+math.Abs(prevSlope)) {
			return &ValidationError{Property: "concave", X: x,
				Detail: fmt.Sprintf("secant slope rises from %g to %g", prevSlope, slope)}
		}
		prevV, prevX, prevSlope = v, x, slope
	}
	return nil
}
