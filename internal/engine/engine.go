// Package engine is the repository's unified solver pipeline: one
// request/response path that every solve in the tree — the public aa
// facade, the experiment harness, the workload variant packages, the
// five CLI binaries and the aaserve service — rides instead of wiring
// pooling, checking and telemetry per call site.
//
// The pieces, bottom up:
//
//   - A named-backend registry (see Backend/Register): "assign2" and
//     "assign1" are the paper's algorithms on the zero-alloc
//     core.Workspace fast path, joined by "polish", "ls", "greedy",
//     "exact" and the four placement heuristics; variant packages
//     register adapters ("online", "hetero", "multires", "cloud", ...)
//     from their own init functions and receive their input via
//     Request.Payload, which keeps the dependency arrow pointing at the
//     engine rather than out of it.
//
//   - A middleware chain (Handler/Middleware) composed once at Engine
//     construction, outermost first: telemetry (aa_engine_* counters,
//     latency histogram, and the per-request engine.solve root span
//     with engine.dispatch / core.* / engine.check children — skipped
//     entirely when telemetry is off), cancellation (fail fast on a dead
//     context; backends also check ctx between stages), any
//     caller-supplied middleware, then post-solve checking
//     (check.Feasible plus the ratio report against F̂ — α for
//     guaranteed backends, the F ≤ F̂ bound for heuristics), and
//     finally dispatch to the backend.
//
//   - An Engine, which owns the composed chain, the default backend
//     name, and a lazily started solverpool.Pool for the concurrent
//     entry points: Submit (non-blocking, ErrQueueFull backpressure —
//     the service front door) and SolveBatch (blocking enqueue, results
//     in input order, first error cancels the rest).
//
// Allocation discipline: Solve returns a fresh Response the caller
// owns; SolveInto reuses a caller-held Response and performs zero heap
// allocations in steady state on the workspace-backed backends, so hot
// loops (experiment trials, online re-solves, benchmarks) pay nothing
// for riding the pipeline. BenchmarkEngineSolve pins both properties
// against BenchmarkSolveSession.
package engine

import (
	"context"
	"errors"
	"io"
	"math"
	"sync"

	"aa/internal/cache"
	"aa/internal/core"
	"aa/internal/solverpool"
	"aa/internal/telemetry"
)

// ErrQueueFull is the backpressure signal from Submit, re-exported from
// solverpool so engine callers can errors.Is against it without
// importing the pool.
var ErrQueueFull = solverpool.ErrQueueFull

// ErrClosed is returned by the concurrent entry points (Submit,
// SolveBatch) after Close — re-exported from solverpool like
// ErrQueueFull. Synchronous entry points keep working after Close.
var ErrClosed = solverpool.ErrClosed

// Request describes one solve. The zero value plus an Instance is a
// valid request for the engine's default backend.
type Request struct {
	// Instance is the homogeneous AA instance for the core backends.
	// Variant adapters may leave it nil and use Payload instead.
	Instance *core.Instance
	// Backend names the registry entry to dispatch to; "" uses the
	// engine's default (normally "assign2"). Aliases resolve.
	Backend string
	// Seed derives the random stream for stochastic backends (the
	// ur/ru/rr heuristics). Deterministic backends ignore it.
	Seed uint64
	// MaxNodes bounds the branch-and-bound search of the "exact"
	// backend; <= 0 means the core default.
	MaxNodes int
	// MaxMoves bounds the "ls" local search; <= 0 means the core
	// default.
	MaxMoves int
	// AltAssign1 asks the assign2 backend to additionally run
	// Algorithm 1 from the same super-optimal linearization into
	// Response.Alt — one bound computation feeding both algorithms,
	// exactly as the experiment harness compares them.
	AltAssign1 bool
	// WantUtility asks the backend to evaluate the achieved total
	// utility F into Response.Utility (and AltUtility). Off by default
	// so the hot path matches the Session contract of "assignment
	// only"; callers that report F (CLIs, the service, experiments)
	// switch it on.
	WantUtility bool
	// Check forces post-solve verification for this request even when
	// neither the engine option nor the process-wide check.Enable is
	// set.
	Check bool
	// NoCache bypasses the engine's solve cache for this request (both
	// lookup and store), forcing a fresh solve. Meaningless on engines
	// built without Options.Cache.
	NoCache bool
	// Payload carries variant-specific input for adapter backends
	// (*hetero request, online state, cloud fleet, ...). The core
	// backends ignore it.
	Payload any

	// bk is the backend resolved by the engine before the chain runs,
	// so middleware reads it without repeating the registry lookup.
	bk *Backend
}

// Response is the result of one solve. Responses are plain data the
// caller owns; pass the same Response back to SolveInto to reuse its
// buffers.
type Response struct {
	// Assignment is the solver's thread placement and allocation. Its
	// backing arrays are reused across SolveInto calls.
	Assignment core.Assignment
	// Alt is Algorithm 1's assignment from the same linearization, valid
	// only when the request set AltAssign1.
	Alt core.Assignment
	// Utility is the achieved total utility F when the request set
	// WantUtility, else NaN.
	Utility float64
	// AltUtility is Alt's total utility under the same rule, else NaN.
	AltUtility float64
	// Bound is the super-optimal bound F̂ when the backend computed one
	// (the linearized backends get it for free), else NaN.
	Bound float64
	// Lambda is the water-filling price of the solve's λ-search when the
	// backend ran one (the linearized backends), else 0. The solve cache
	// persists it so warm-start re-solves can seed their λ-search.
	Lambda float64
	// Moves is the number of accepted local-search moves ("ls" backend).
	Moves int
	// Backend is the canonical name of the backend that produced this
	// response.
	Backend string
}

// prepare resets the response for a new solve. The assignment buffers
// are truncated to length zero (keeping their capacity, so the
// zero-alloc SolveInto contract holds): a reused Response must not leak
// the previous solve's Alt after a request without AltAssign1, nor a
// stale assignment tail after a backend that writes fewer threads.
func (r *Response) prepare(backend string) {
	r.Assignment.Server = r.Assignment.Server[:0]
	r.Assignment.Alloc = r.Assignment.Alloc[:0]
	r.Alt.Server = r.Alt.Server[:0]
	r.Alt.Alloc = r.Alt.Alloc[:0]
	r.Utility = math.NaN()
	r.AltUtility = math.NaN()
	r.Bound = math.NaN()
	r.Lambda = 0
	r.Moves = 0
	r.Backend = backend
}

// Handler is the engine's internal hop signature: solve req into resp.
// Backends and middleware share it.
type Handler func(ctx context.Context, req *Request, resp *Response) error

// Middleware wraps a Handler with a cross-cutting concern.
type Middleware func(Handler) Handler

// Chain composes middleware around a handler, first element outermost.
func Chain(h Handler, mw ...Middleware) Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// Solver is the engine's public face: anything that can answer a solve
// request. *Engine implements it.
type Solver interface {
	Solve(ctx context.Context, req *Request) (*Response, error)
}

// Options configure an Engine. The zero value is usable: default
// backend assign2, GOMAXPROCS workers with a queue of twice that depth
// (started lazily on first concurrent use), checking only by request or
// process-wide switch.
type Options struct {
	// Backend is the default backend for requests that leave
	// Request.Backend empty; "" means "assign2".
	Backend string
	// Workers and QueueDepth size the pool behind Submit/SolveBatch,
	// with the solverpool defaults for values <= 0.
	Workers    int
	QueueDepth int
	// Check turns on post-solve verification for every request through
	// this engine (the per-request Check field and the process-wide
	// check.Enable switch do the same with narrower/wider scope).
	Check bool
	// Middleware is appended inside the built-in telemetry and
	// cancellation layers but outside checking and dispatch.
	Middleware []Middleware
	// Cache installs the solve-result cache middleware (between the
	// caller middleware and checking, so miss-path solves are fully
	// verified before being stored). nil or a ModeOff cache leaves the
	// pipeline untouched — no per-request canonicalization cost.
	Cache cache.Cache
	// WarmK bounds the warm-start repair: a cache miss whose canonical
	// form differs from a cached instance's by at most WarmK threads on
	// each side (added and removed) is repaired from that entry instead
	// of solved cold. 0 disables warm starts (exact hits still serve).
	WarmK int
}

// Engine runs requests through the composed middleware chain and, for
// the concurrent entry points, a bounded worker pool. Safe for
// concurrent use.
type Engine struct {
	def     string
	handler Handler

	// poolMu guards the lazily started pool AND the closed flag: the
	// old sync.Once lazy start raced with Close — a post-Close Submit
	// silently restarted a fresh pool that was never drained (goroutine
	// and queue leak). Now every concurrent entry point resolves the
	// pool under the same lock Close takes, and sees ErrClosed instead.
	poolMu   sync.Mutex
	pool     *solverpool.Pool
	poolOpts solverpool.Options
	closed   bool
}

// New builds an engine: the middleware chain is composed here, once, so
// per-solve cost is a few direct calls.
func New(opts Options) *Engine {
	def := opts.Backend
	if def == "" {
		def = "assign2"
	}
	mw := make([]Middleware, 0, 4+len(opts.Middleware))
	mw = append(mw, withTelemetry, withCancel)
	mw = append(mw, opts.Middleware...)
	if opts.Cache != nil && opts.Cache.Mode() != cache.ModeOff {
		mw = append(mw, withSolveCache(opts.Cache, opts.WarmK))
	}
	mw = append(mw, withCheck(opts.Check))
	return &Engine{
		def:      def,
		handler:  Chain(dispatch, mw...),
		poolOpts: solverpool.Options{Workers: opts.Workers, QueueDepth: opts.QueueDepth},
	}
}

// dispatch is the innermost handler: hand the request to its resolved
// backend, under an engine.dispatch child span when tracing is on so
// the trace separates queueing/checking overhead from backend time.
func dispatch(ctx context.Context, req *Request, resp *Response) error {
	if !telemetry.TraceEnabled() {
		return req.bk.Handle(ctx, req, resp)
	}
	ctx, span := telemetry.StartSpanCtx(ctx, "engine.dispatch", telemetry.String("backend", req.bk.Name))
	err := req.bk.Handle(ctx, req, resp)
	span.AddAttrs(telemetry.Bool("ok", err == nil))
	span.End()
	return err
}

// SolveInto runs one request through the pipeline on the caller's
// goroutine, writing into a caller-owned Response. This is the
// zero-alloc steady-state path: with resp (and the pooled workspace
// buffers) grown to the workload's size, a workspace-backed solve
// allocates nothing.
func (e *Engine) SolveInto(ctx context.Context, req *Request, resp *Response) error {
	bk, err := resolve(req.Backend, e.def)
	if err != nil {
		return err
	}
	req.bk = bk
	resp.prepare(bk.Name)
	return e.handler(ctx, req, resp)
}

// Solve runs one request and returns a fresh Response the caller owns.
func (e *Engine) Solve(ctx context.Context, req *Request) (*Response, error) {
	resp := new(Response)
	if err := e.SolveInto(ctx, req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// lazyPool starts the worker pool on first concurrent use, so engines
// used purely synchronously (the package default, the aa facade) never
// spawn goroutines. After Close it returns ErrClosed rather than
// restarting a pool nothing would ever drain.
func (e *Engine) lazyPool() (*solverpool.Pool, error) {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if e.pool == nil {
		e.pool = solverpool.New(e.poolOpts)
	}
	return e.pool, nil
}

// Submit hands the request to the engine's pool without blocking: it
// returns ErrQueueFull when the bounded queue is at capacity (the
// backpressure signal a service turns into 429/503), ctx.Err() for a
// dead request, and otherwise waits for the result. The wait honors
// ctx even while a worker is still chewing.
func (e *Engine) Submit(ctx context.Context, req *Request) (*Response, error) {
	type result struct {
		resp *Response
		err  error
	}
	p, err := e.lazyPool()
	if err != nil {
		return nil, err
	}
	ch := make(chan result, 1)
	err = p.Submit(ctx, func(tctx context.Context) error {
		r, err := e.Solve(tctx, req)
		ch <- result{resp: r, err: err}
		return err
	})
	if err != nil {
		return nil, err
	}
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SolveBatch fans the requests out across the engine's pool and returns
// one response per request, in input order. Enqueueing blocks when the
// queue is full (the paced batch path); the first failure cancels every
// remaining solve and is returned.
func (e *Engine) SolveBatch(ctx context.Context, reqs []*Request) ([]*Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	p, err := e.lazyPool()
	if err != nil {
		return nil, err
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		idx  int
		resp *Response
		err  error
	}
	results := make(chan result, len(reqs))
	go func() {
		for i, req := range reqs {
			i, req := i, req
			err := p.Enqueue(bctx, func(tctx context.Context) error {
				r, err := e.Solve(tctx, req)
				results <- result{idx: i, resp: r, err: err}
				return err
			})
			if err != nil {
				results <- result{idx: i, err: err}
			}
		}
	}()

	out := make([]*Response, len(reqs))
	var firstErr error
	for range reqs {
		select {
		case r := <-results:
			if r.err != nil {
				if firstErr == nil {
					firstErr = r.err
				}
				cancel()
				continue
			}
			out[r.idx] = r.resp
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// SolveBatchStream pipelines an unbounded request stream through the
// engine's pool with bounded memory: decode → solve → emit overlap,
// with at most maxInFlight requests (plus the one being decoded) alive
// at once, responses emitted strictly in input order, and the first
// failure — in input order, whether it came from next, a solve, or
// emit — cancelling every outstanding solve. It returns the number of
// responses emitted alongside that first error, so a caller that has
// already written output knows the stream is torn. Cancelling ctx tears
// the stream down too and is always reported as ctx.Err(), never as a
// clean completion, even when every in-flight solve had finished.
//
// next yields the requests one at a time and io.EOF to end the stream;
// a mid-stream next error takes the slot of the request it failed to
// produce, so every response before it is still emitted first. next and
// emit are never called concurrently with themselves, but next runs
// concurrently with emit — decoding the tail of a stream while the head
// solves is the point. maxInFlight <= 0 selects 2×workers+2, enough to
// keep every pool worker busy while the next responses drain.
func (e *Engine) SolveBatchStream(ctx context.Context, next func() (*Request, error), emit func(*Response) error, maxInFlight int) (int, error) {
	p, err := e.lazyPool()
	if err != nil {
		return 0, err
	}
	if maxInFlight <= 0 {
		maxInFlight = 2*p.Workers() + 2
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each slot is one input position; the bounded channel is both the
	// in-order hand-off and the in-flight window: the producer blocks
	// once maxInFlight slots are undrained.
	type slot struct {
		resp *Response
		err  error
		done chan struct{}
	}
	window := make(chan *slot, maxInFlight)
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		defer close(window)
		for bctx.Err() == nil {
			req, err := next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					s := &slot{err: err, done: make(chan struct{})}
					close(s.done)
					select {
					case window <- s:
					case <-bctx.Done():
					}
				}
				return
			}
			s := &slot{done: make(chan struct{})}
			select {
			case window <- s:
			case <-bctx.Done():
				return
			}
			if err := p.Enqueue(bctx, func(tctx context.Context) error {
				s.resp, s.err = e.Solve(tctx, req)
				close(s.done)
				return s.err
			}); err != nil {
				s.err = err
				close(s.done)
			}
		}
	}()

	// fail tears the stream down and joins the producer before
	// returning, so next is guaranteed not to be called (and not to be
	// mid-call) once SolveBatchStream has returned — callers hand next a
	// request body they must not touch after their handler exits.
	fail := func(err error) error {
		cancel()
		<-prodDone
		return err
	}
	emitted := 0
	for s := range window {
		// The select below races s.done against ctx.Done() and may pick
		// either when both are ready, so cancellation must also be
		// checked deterministically: a cancelled stream never reports
		// clean completion, even if every in-flight slot had solved.
		if err := ctx.Err(); err != nil {
			return emitted, fail(err)
		}
		select {
		case <-s.done:
		case <-ctx.Done():
			return emitted, fail(ctx.Err())
		}
		if s.err != nil {
			return emitted, fail(s.err)
		}
		if err := emit(s.resp); err != nil {
			return emitted, fail(err)
		}
		emitted++
	}
	if err := ctx.Err(); err != nil {
		return emitted, fail(err)
	}
	return emitted, nil
}

// Close drains and stops the engine's pool, if one was ever started,
// and marks the engine closed: the concurrent entry points (Submit,
// SolveBatch) return ErrClosed afterwards. Synchronous entry points
// keep working after Close. Closing twice is a no-op.
func (e *Engine) Close() {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.pool != nil {
		e.pool.Close()
	}
}

// Pool exposes the engine's worker pool (starting it if needed) so
// callers can poll its Stats snapshot. It returns nil after Close.
func (e *Engine) Pool() *solverpool.Pool {
	p, _ := e.lazyPool()
	return p
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide shared engine (default options,
// never closed). The aa facade and the variant packages solve through
// it.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(Options{}) })
	return defaultEngine
}
