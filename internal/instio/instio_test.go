package instio

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
	"aa/internal/utility"
)

func roundTrip(t *testing.T, in *core.Instance) *core.Instance {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestRoundTripClosedForms(t *testing.T) {
	in := &core.Instance{
		M: 3,
		C: 200,
		Threads: []utility.Func{
			utility.Linear{Slope: 2, C: 200},
			utility.CappedLinear{Slope: 1.5, Knee: 80, C: 200},
			utility.Power{Scale: 3, Beta: 0.7, C: 200},
			utility.Log{Scale: 4, Shift: 25, C: 200},
			utility.SatExp{Scale: 5, K: 60, C: 200},
			utility.Saturating{Scale: 6, K: 90, C: 200},
		},
	}
	out := roundTrip(t, in)
	if out.M != in.M || out.C != in.C || out.N() != in.N() {
		t.Fatalf("shape changed: m=%d c=%v n=%d", out.M, out.C, out.N())
	}
	for i := range in.Threads {
		for x := 0.0; x <= 200; x += 7 {
			a, b := in.Threads[i].Value(x), out.Threads[i].Value(x)
			if math.Abs(a-b) > 1e-12*(1+a) {
				t.Errorf("thread %d differs at x=%v: %v vs %v", i, x, a, b)
			}
		}
	}
}

func TestRoundTripGeneratedSampledCurves(t *testing.T) {
	r := rng.New(8)
	in, err := gen.Instance(gen.DefaultUniform, 2, 1000, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	out := roundTrip(t, in)
	for i := range in.Threads {
		for x := 0.0; x <= 1000; x += 125 { // grid points are exact
			a, b := in.Threads[i].Value(x), out.Threads[i].Value(x)
			if math.Abs(a-b) > 1e-6*(1+a) {
				t.Errorf("thread %d differs at x=%v: %v vs %v", i, x, a, b)
			}
		}
	}
	// Solving the round-tripped instance gives nearly the same utility.
	u1 := core.Assign2(in).Utility(in)
	u2 := core.Assign2(out).Utility(out)
	if math.Abs(u1-u2) > 0.01*(1+u1) {
		t.Errorf("solution utility drifted: %v vs %v", u1, u2)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"m":0,"c":100,"threads":[{"kind":"linear","slope":1}]}`,
		`{"m":2,"c":100,"threads":[]}`,
		`{"m":2,"c":100,"threads":[{"kind":"warp"}]}`,
		`{"m":2,"c":100,"threads":[{"kind":"piecewise","xs":[1,2],"ys":[0,1]}]}`,
	}
	for _, src := range cases {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("decoded invalid input %q", src)
		}
	}
}

func TestEncodeAssignment(t *testing.T) {
	in := &core.Instance{
		M: 2,
		C: 10,
		Threads: []utility.Func{
			utility.Linear{Slope: 1, C: 10},
			utility.Linear{Slope: 2, C: 10},
		},
	}
	a := core.Assign2(in)
	var buf bytes.Buffer
	if err := EncodeAssignment(&buf, in, a); err != nil {
		t.Fatal(err)
	}
	var decoded AssignmentJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Server) != 2 || len(decoded.Alloc) != 2 {
		t.Errorf("decoded %+v", decoded)
	}
	if decoded.Utility <= 0 || decoded.Bound < decoded.Utility-1e-9 {
		t.Errorf("utility %v, bound %v", decoded.Utility, decoded.Bound)
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	in := &core.Instance{
		M:       1,
		C:       10,
		Threads: []utility.Func{weird{}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, in); err == nil {
		t.Error("encoded unknown utility type")
	}
}

type weird struct{}

func (weird) Value(float64) float64 { return 0 }
func (weird) Deriv(float64) float64 { return 0 }
func (weird) Cap() float64          { return 10 }
