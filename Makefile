# Convenience targets for the aa reproduction.

GO ?= go

.PHONY: all build test vet bench figures examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper figure/claim plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation at full scale (tables + CSV).
figures:
	$(GO) run ./cmd/aabench -fig all -ext -rom -trials 1000 -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cachepartition
	$(GO) run ./examples/hosting
	$(GO) run ./examples/cloudbroker
	$(GO) run ./examples/onlinerebalance
	$(GO) run ./examples/heterogeneous

cover:
	$(GO) test -cover ./...

clean:
	rm -f aabench
	rm -rf results
