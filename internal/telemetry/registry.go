package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered metric. name carries optional Prometheus-style
// labels: `aa_experiment_trials_total{fig="fig1a"}`.
type entry struct {
	name    string
	kind    kind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// base splits the entry name into metric base name and label block
// (including braces, or "" when unlabeled).
func (e *entry) base() (string, string) {
	if i := strings.IndexByte(e.name, '{'); i >= 0 {
		return e.name[:i], e.name[i:]
	}
	return e.name, ""
}

// Registry is a process-wide set of named metrics. Lookup is
// get-or-create: asking for the same name twice returns the same metric,
// so packages can declare their metrics independently at init. Asking
// for an existing name with a different kind (or different histogram
// bounds) panics — that is a programming error, caught at init in tests.
//
// The zero Registry is not usable; call NewRegistry or use Default.
type Registry struct {
	mu     sync.Mutex
	order  []*entry
	byName map[string]*entry

	// history is the optional snapshot ring started by StartHistory,
	// read by the /metrics/history handler.
	history atomic.Pointer[History]
}

// Default is the process-wide registry used by the instrumented
// packages (core, solverpool, experiment) and served by Handler.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// validName reports whether name is a legal Prometheus metric name with
// an optional {label="value",...} suffix. Kept permissive on the label
// block: it must merely be brace-delimited and non-empty.
func validName(name string) bool {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i:]
		if len(labels) < 3 || labels[len(labels)-1] != '}' {
			return false
		}
	}
	if base == "" {
		return false
	}
	for i := 0; i < len(base); i++ {
		c := base[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// Label builds a labeled metric name from a base name and key/value
// pairs: Label("aa_experiment_trials_total", "fig", "fig1a") returns
// `aa_experiment_trials_total{fig="fig1a"}`. Values are quoted with the
// Prometheus escaping rules (backslash, quote, newline).
func Label(base string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the entry for name, creating it with mk when absent.
func (r *Registry) lookup(name string, k kind, mk func() *entry) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: metric %q already registered as %v, requested %v", name, e.kind, k))
		}
		return e
	}
	e := mk()
	r.byName[name] = e
	r.order = append(r.order, e)
	return e
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	e := r.lookup(name, kindCounter, func() *entry {
		return &entry{name: name, kind: kindCounter, counter: new(Counter)}
	})
	return e.counter
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	e := r.lookup(name, kindGauge, func() *entry {
		return &entry{name: name, kind: kindGauge, gauge: new(Gauge)}
	})
	return e.gauge
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds if needed. Re-registering with different
// bounds panics.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	e := r.lookup(name, kindHistogram, func() *entry {
		return &entry{name: name, kind: kindHistogram, hist: NewHistogram(bounds)}
	})
	if len(e.hist.bounds) != len(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q re-registered with different bounds", name))
	}
	for i := range bounds {
		if e.hist.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("telemetry: histogram %q re-registered with different bounds", name))
		}
	}
	return e.hist
}

// Names returns every registered metric name in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	for i, e := range r.order {
		out[i] = e.name
	}
	return out
}

// snapshot copies the entry list so exporters iterate without holding
// the lock (metric values are atomics, safe to read live).
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*entry(nil), r.order...)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation, +Inf spelled "+Inf").
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # TYPE comment per metric base
// name, `name value` sample lines, and the _bucket/_sum/_count triplet
// with cumulative le labels for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.snapshot()
	typed := make(map[string]bool)
	for _, e := range entries {
		base, labels := e.base()
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, e.kind); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.gauge.Value())
		case kindHistogram:
			err = writePrometheusHistogram(w, base, labels, e.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePrometheusHistogram emits the cumulative bucket series. labels is
// "" or "{k=\"v\"}"; the le label is merged into the existing block.
func writePrometheusHistogram(w io.Writer, base, labels string, h *Histogram) error {
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`%s_bucket{le="%s"}`, base, le)
		}
		// Merge: {k="v"} -> {k="v",le="..."}
		return fmt.Sprintf(`%s_bucket%s,le="%s"}`, base, labels[:len(labels)-1], le)
	}
	counts := h.BucketCounts()
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", withLE(formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, cum)
	return err
}

// JSONValue is the export shape of one metric in WriteJSON output.
type JSONValue struct {
	Type    string            `json:"type"`
	Value   any               `json:"value,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// jsonSnapshot builds the expvar-style map (name → value) served at
// /vars and published into expvar.
func (r *Registry) jsonSnapshot() map[string]JSONValue {
	entries := r.snapshot()
	out := make(map[string]JSONValue, len(entries))
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			out[e.name] = JSONValue{Type: "counter", Value: e.counter.Value()}
		case kindGauge:
			out[e.name] = JSONValue{Type: "gauge", Value: e.gauge.Value()}
		case kindHistogram:
			h := e.hist
			counts := h.BucketCounts()
			buckets := make(map[string]uint64, len(counts))
			for i, bound := range h.bounds {
				if counts[i] > 0 {
					buckets[formatFloat(bound)] = counts[i]
				}
			}
			if over := counts[len(counts)-1]; over > 0 {
				buckets["+Inf"] = over
			}
			out[e.name] = JSONValue{
				Type:    "histogram",
				Count:   h.Count(),
				Sum:     h.Sum(),
				Buckets: buckets,
			}
		}
	}
	return out
}

// WriteJSON writes every registered metric as one JSON object keyed by
// metric name (keys sorted, as encoding/json does for maps).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.jsonSnapshot())
}

// SortedNames returns every registered metric name sorted, handy for
// assertions and debug output.
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}
