package core

// Assign1 is the paper's Algorithm 1: the O(mn² + n(log mC)²) greedy on
// the linearized problem, achieving total utility at least
// α = 2(√2−1) ≈ 0.828 times optimal (Theorem V.16).
//
// Each iteration considers the unassigned threads. If some thread still
// fits its super-optimal allocation ĉ_i on some server (a "full"
// candidate), the one with the greatest linearized utility g_i(ĉ_i) is
// assigned there and allocated exactly ĉ_i. Otherwise every remaining
// thread must settle for a server's leftovers; the (thread, server) pair
// extracting the greatest utility g_i(C_j) is chosen and the thread takes
// everything the server has left.
func Assign1(in *Instance) Assignment {
	so := SuperOptimal(in)
	gs := Linearize(in, so)
	return Assign1Linearized(in, gs)
}

// Assign1Linearized runs Algorithm 1 given precomputed linearized
// utilities, letting callers share one super-optimal computation across
// several algorithms (or drive adversarial linearizations in tests).
func Assign1Linearized(in *Instance, gs []Linearized) Assignment {
	start := stageStart()
	n, m := in.N(), in.M
	out := NewAssignment(n)
	residual := make([]float64, m)
	for j := range residual {
		residual[j] = in.C
	}
	assigned := make([]bool, n)

	for remaining := n; remaining > 0; remaining-- {
		// Phase 1 candidate: unassigned thread with the greatest g_i(ĉ_i)
		// among those whose ĉ_i still fits on some server. Track the
		// fullest feasible server for the tie-breaking placement.
		bestFull, bestFullServer := -1, -1
		var bestFullVal float64
		// Phase 2 candidate: pair (i, j) maximizing g_i(C_j); since no
		// server fits ĉ_i, g_i(C_j) = slope_i · C_j, maximized at the
		// fullest server, so only the fullest server matters per thread.
		maxServer, maxResidual := 0, residual[0]
		for j := 1; j < m; j++ {
			if residual[j] > maxResidual {
				maxServer, maxResidual = j, residual[j]
			}
		}
		bestPartial := -1
		var bestPartialVal float64

		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			g := gs[i]
			if g.CHat <= maxResidual {
				// Thread fits somewhere (in particular on maxServer).
				if bestFull < 0 || g.UHat > bestFullVal {
					bestFull, bestFullVal, bestFullServer = i, g.UHat, maxServer
				}
				continue
			}
			if v := g.Value(maxResidual); bestPartial < 0 || v > bestPartialVal {
				bestPartial, bestPartialVal = i, v
			}
		}

		var pick, server int
		var amount float64
		if bestFull >= 0 {
			pick, server, amount = bestFull, bestFullServer, gs[bestFull].CHat
		} else {
			pick, server, amount = bestPartial, maxServer, maxResidual
		}
		assigned[pick] = true
		out.Server[pick] = server
		out.Alloc[pick] = amount
		residual[server] -= amount
		if residual[server] < 0 {
			residual[server] = 0 // float guard
		}
	}
	if !start.IsZero() {
		metricAssign1Calls.Inc()
		// One greedy pass per thread; each pass fit-checks every thread
		// still unassigned against the fullest server, so the totals are
		// exact without touching the loops above.
		metricAssign1Passes.Add(uint64(n))
		metricAssign1FitChecks.Add(uint64(n) * uint64(n+1) / 2)
		stageEnd(start, metricAssign1Seconds, "core.assign1", n)
	}
	return out
}
