package check

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"aa/internal/alloc"
	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
	"aa/internal/utility"
)

func demoInstance() *core.Instance {
	return &core.Instance{
		M: 2, C: 100,
		Threads: []utility.Func{
			utility.Log{Scale: 5, Shift: 10, C: 100},
			utility.Linear{Slope: 1, C: 30},
			utility.SatExp{Scale: 3, K: 20, C: 100},
		},
	}
}

func TestFeasibleAcceptsSolverOutput(t *testing.T) {
	in := demoInstance()
	for _, a := range []core.Assignment{
		core.Assign2(in),
		core.Assign1(in),
		core.AssignUU(in),
	} {
		if err := Feasible(in, a, DefaultEps); err != nil {
			t.Errorf("valid assignment rejected: %v", err)
		}
	}
}

func TestFeasibleRejects(t *testing.T) {
	in := demoInstance()
	ok := func() core.Assignment {
		return core.Assignment{Server: []int{0, 1, 0}, Alloc: []float64{50, 30, 50}}
	}
	cases := []struct {
		name  string
		wreck func(a *core.Assignment)
	}{
		{"invalid server", func(a *core.Assignment) { a.Server[1] = 2 }},
		{"negative server", func(a *core.Assignment) { a.Server[0] = -1 }},
		{"negative allocation", func(a *core.Assignment) { a.Alloc[0] = -1 }},
		{"NaN allocation", func(a *core.Assignment) { a.Alloc[2] = math.NaN() }},
		{"past thread cap", func(a *core.Assignment) { a.Alloc[1] = 31 }},
		{"overloaded server", func(a *core.Assignment) { a.Alloc[0] = 80 }},
		{"length mismatch", func(a *core.Assignment) { a.Alloc = a.Alloc[:2] }},
	}
	for _, tc := range cases {
		a := ok()
		tc.wreck(&a)
		err := Feasible(in, a, DefaultEps)
		if !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: got %v, want ErrInfeasible", tc.name, err)
		}
	}
	if err := Feasible(in, ok(), DefaultEps); err != nil {
		t.Fatalf("baseline assignment rejected: %v", err)
	}
}

func TestFeasibleToleratesRoundoff(t *testing.T) {
	in := demoInstance()
	a := core.Assignment{
		Server: []int{0, 1, 0},
		// A hair past the cap and the server capacity, within ε·(1+·).
		Alloc: []float64{50, 30 + 1e-8, 50 + 1e-8},
	}
	if err := Feasible(in, a, DefaultEps); err != nil {
		t.Errorf("roundoff-sized overshoot rejected: %v", err)
	}
}

func TestAllocationInvariants(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 2, C: 10},
		utility.Linear{Slope: 1, C: 10},
	}
	if err := Allocation(fs, []float64{10, 5}, 15, DefaultEps); err != nil {
		t.Errorf("feasible allocation rejected: %v", err)
	}
	for name, xs := range map[string][]float64{
		"over budget":  {10, 10},
		"over cap":     {11, 1},
		"negative":     {-1, 5},
		"wrong length": {5},
		"infinite":     {math.Inf(1), 0},
	} {
		if err := Allocation(fs, xs, 15, DefaultEps); !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: got %v, want ErrInfeasible", name, err)
		}
	}
}

func TestRatioReportBounds(t *testing.T) {
	if err := (RatioReport{F: 90, FHat: 100, Ratio: 0.9}).CheckAlpha(0); err != nil {
		t.Errorf("ratio 0.9 > α rejected: %v", err)
	}
	if err := (RatioReport{F: 50, FHat: 100, Ratio: 0.5}).CheckAlpha(0); !errors.Is(err, ErrRatio) {
		t.Errorf("ratio 0.5 < α accepted: %v", err)
	}
	if err := (RatioReport{F: 101, FHat: 100, Ratio: 1.01}).CheckBound(0); !errors.Is(err, ErrRatio) {
		t.Errorf("F above F̂ accepted: %v", err)
	}
	if err := (RatioReport{F: 0, FHat: 0, Ratio: 1}).CheckAlpha(0); err != nil {
		t.Errorf("empty instance (F = F̂ = 0) rejected: %v", err)
	}
}

func TestRatioComputesAgainstSuperOpt(t *testing.T) {
	in := demoInstance()
	a := core.Assign2(in)
	rep := Ratio(in, a)
	if rep.FHat != core.SuperOptimal(in).Total {
		t.Errorf("FHat %v, want the super-optimal total", rep.FHat)
	}
	if math.Abs(rep.F-a.Utility(in)) > 1e-12 {
		t.Errorf("F %v, want the assignment utility %v", rep.F, a.Utility(in))
	}
	if err := rep.CheckAlpha(0); err != nil {
		t.Errorf("Assign2 on the demo instance violates α: %v", err)
	}
}

func TestPostSolve(t *testing.T) {
	in := demoInstance()
	if err := PostSolve(in, core.Assign2(in)); err != nil {
		t.Errorf("PostSolve rejected Assign2: %v", err)
	}
	bad := core.Assignment{Server: []int{0, 0, 0}, Alloc: []float64{200, 30, 50}}
	if err := PostSolve(in, bad); !errors.Is(err, ErrInfeasible) {
		t.Errorf("PostSolve accepted an infeasible assignment: %v", err)
	}
}

func TestEnableDisable(t *testing.T) {
	defer Disable()
	if Enabled() {
		t.Fatal("checking enabled before Enable")
	}
	Enable()
	if !Enabled() {
		t.Fatal("Enable did not stick")
	}
	Disable()
	if Enabled() {
		t.Fatal("Disable did not stick")
	}
}

func TestCountersCountChecksAndViolations(t *testing.T) {
	in := demoInstance()
	c0, v0 := Totals()
	if err := Feasible(in, core.Assign2(in), DefaultEps); err != nil {
		t.Fatal(err)
	}
	bad := core.Assignment{Server: []int{0, 0, 0}, Alloc: []float64{200, 30, 50}}
	if err := Feasible(in, bad, DefaultEps); err == nil {
		t.Fatal("infeasible assignment accepted")
	}
	c1, v1 := Totals()
	if c1-c0 != 2 {
		t.Errorf("aa_check_total grew by %d, want 2", c1-c0)
	}
	if v1-v0 != 1 {
		t.Errorf("aa_check_violations_total grew by %d, want 1", v1-v0)
	}
}

// The acceptance-criterion property test: Feasible and Ratio hold for
// Assign1, Assign2, all four §VII heuristics, the marginal-gain greedy,
// and alloc.Concave across the full figure corpus at figure scale
// (m = 8, C = 1000), with zero growth of aa_check_violations_total.
func TestSolversSatisfyInvariantsAcrossFigureCorpus(t *testing.T) {
	const (
		m = 8
		c = 1000.0
	)
	_, v0 := Totals()
	base := rng.New(7)
	for wi, w := range FigureWorkloads() {
		for _, beta := range []int{1, 5, 15} {
			for trial := 0; trial < 2; trial++ {
				r := base.SplitPath(uint64(wi), uint64(beta), uint64(trial))
				n := beta * m
				in, err := gen.Instance(w.Dist, m, c, n, r)
				if err != nil {
					t.Fatalf("%s β=%d: %v", w.Name, beta, err)
				}
				where := fmt.Sprintf("%s β=%d trial %d", w.Name, beta, trial)

				so := core.SuperOptimal(in)
				if err := Allocation(in.Threads, so.Alloc, float64(m)*c, DefaultEps); err != nil {
					t.Errorf("%s: super-optimal allocation: %v", where, err)
				}
				cc := alloc.Concave(in.Threads, c)
				if err := Allocation(in.Threads, cc.Alloc, c, DefaultEps); err != nil {
					t.Errorf("%s: Concave on one server: %v", where, err)
				}

				gs := core.Linearize(in, so)
				solvers := []struct {
					label      string
					a          core.Assignment
					guaranteed bool
				}{
					{"A1", core.Assign1Linearized(in, gs), true},
					{"A2", core.Assign2Linearized(in, gs), true},
					{"GM", core.AssignGreedyMarginal(in), false},
					{"UU", core.AssignUU(in), false},
					{"UR", core.AssignUR(in, r), false},
					{"RU", core.AssignRU(in, r), false},
					{"RR", core.AssignRR(in, r), false},
				}
				for _, sc := range solvers {
					if err := Feasible(in, sc.a, DefaultEps); err != nil {
						t.Errorf("%s: %s: %v", where, sc.label, err)
						continue
					}
					rr := RatioAgainst(so.Total, in, sc.a)
					if sc.guaranteed {
						err = rr.CheckAlpha(0)
					} else {
						err = rr.CheckBound(0)
					}
					if err != nil {
						t.Errorf("%s: %s: %v", where, sc.label, err)
					}
				}
			}
		}
	}
	if _, v1 := Totals(); v1 != v0 {
		t.Errorf("aa_check_violations_total grew by %d, want 0", v1-v0)
	}
}
