// Hosting-center example — the paper's second motivating application.
//
// A fleet of identical hosts runs a mixed portfolio of web services.
// Each service earns revenue per served request and has a concave
// served-rate curve in its resource share. The operator wants maximum
// revenue, so services must be placed on hosts AND given the right share
// — the joint problem AA solves.
//
// The example solves the placement with Algorithm 2, then validates it
// with a Poisson queueing simulation, comparing against the operating
// practice of spreading services round robin with equal shares.
package main

import (
	"fmt"

	"aa/internal/core"
	"aa/internal/hosting"
	"aa/internal/rng"
)

func main() {
	d := &hosting.Deployment{
		Hosts:    3,
		Capacity: 100, // e.g. 100 CPU shares per host
		Services: []hosting.Service{
			// High-value API with linear scaling: every share pays.
			{Name: "checkout", Demand: 800, Revenue: 0.020, Curve: hosting.LinearCurve{PerUnit: 12}},
			// Search saturates: the index fits in memory past ~40 shares.
			{Name: "search", Demand: 400, Revenue: 0.012, Curve: hosting.SaturatingCurve{Max: 500, K: 30}},
			// Low-value batch work that would happily eat a whole host.
			{Name: "reports", Demand: 5000, Revenue: 0.0002, Curve: hosting.LinearCurve{PerUnit: 40}},
			{Name: "thumbnails", Demand: 3000, Revenue: 0.0004, Curve: hosting.LinearCurve{PerUnit: 30}},
			// Medium services with diminishing returns.
			{Name: "recs", Demand: 300, Revenue: 0.008, Curve: hosting.SaturatingCurve{Max: 350, K: 25}},
			{Name: "ads", Demand: 600, Revenue: 0.010, Curve: hosting.SaturatingCurve{Max: 700, K: 45}},
			{Name: "profiles", Demand: 250, Revenue: 0.005, Curve: hosting.SaturatingCurve{Max: 320, K: 20}},
			{Name: "mail", Demand: 150, Revenue: 0.006, Curve: hosting.LinearCurve{PerUnit: 4}},
		},
	}

	in, err := d.Instance()
	if err != nil {
		panic(err)
	}
	solved, err := d.Solve()
	if err != nil {
		panic(err)
	}
	sol := solved.Assignment
	uu := core.AssignUU(in)

	fmt.Printf("%-11s %5s %8s   %5s %8s\n", "service", "host", "share", "host", "share")
	fmt.Printf("%-11s %14s   %14s\n", "", "-- AA --", "-- RR/equal --")
	for i, s := range d.Services {
		fmt.Printf("%-11s %5d %8.1f   %5d %8.1f\n",
			s.Name, sol.Server[i], sol.Alloc[i], uu.Server[i], uu.Alloc[i])
	}

	fmt.Printf("\nmodel revenue rate: AA %.3f $/s, RR/equal %.3f $/s, upper bound %.3f $/s\n",
		solved.Revenue, uu.Utility(in), solved.Bound)

	// Validate with the queueing simulator: 10 minutes of Poisson load.
	const seconds = 600
	r := rng.New(7)
	resAA, err := d.Simulate(sol, seconds, 1e9, r.Split(1))
	if err != nil {
		panic(err)
	}
	resUU, err := d.Simulate(uu, seconds, 1e9, r.Split(2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsimulated %ds of Poisson traffic:\n", seconds)
	fmt.Printf("  AA revenue:        $%.2f (model predicted $%.2f)\n", resAA.Revenue, resAA.Predicted)
	fmt.Printf("  RR/equal revenue:  $%.2f\n", resUU.Revenue)
	fmt.Printf("  uplift:            %.1f%%\n", 100*(resAA.Revenue/resUU.Revenue-1))

	fmt.Printf("\nper-service mean latency (s, Little's law; Inf = starved):\n")
	fmt.Printf("%-11s %10s %10s\n", "service", "AA", "RR/equal")
	for i, s := range d.Services {
		fmt.Printf("%-11s %10.2f %10.2f\n",
			s.Name, resAA.MeanLatency(i, seconds), resUU.MeanLatency(i, seconds))
	}
}
