package cache

// noop is the ModeOff implementation: every lookup misses, every store
// is dropped, counters stay zero. The engine never installs the cache
// middleware for a ModeOff cache (canonicalizing each request just to
// miss would cost an O(n) hash pass per solve), so noop exists for
// callers that want a Cache value unconditionally — tests, the factory,
// code paths that treat "no cache" uniformly.
type noop struct{}

var noopCache Cache = noop{}

// Noop returns the shared no-op cache.
func Noop() Cache { return noopCache }

func (noop) Mode() Mode                                 { return ModeOff }
func (noop) Get(Key) (*Entry, bool)                     { return nil, false }
func (noop) Put(Key, uint64, *Entry)                    {}
func (noop) Candidates(_ uint64, dst []*Entry) []*Entry { return dst }
func (noop) Remove(Key)                                 {}
func (noop) Len() int                                   { return 0 }
func (noop) Stats() Stats                               { return Stats{} }
func (noop) NoteWarmStart()                             {}
func (noop) NoteBypass()                                {}
func (noop) HashKey() HashKey                           { return HashKey{} }
