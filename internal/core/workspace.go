package core

import (
	"sync"

	"aa/internal/alloc"
	"aa/internal/telemetry"
	"aa/internal/utility"
)

// Workspace owns every scratch buffer one solve needs — capped utility
// wrappers, the super-optimal allocation and linearization, sort orders and
// the heaps of both assignment algorithms — so a goroutine that re-solves
// instances back to back allocates nothing once the buffers have grown to
// the workload's size. A Workspace is not safe for concurrent use; give
// each worker its own (solverpool does), or borrow one from the package
// pool with GetWorkspace/PutWorkspace.
//
// Slices returned by the Workspace methods (SuperOpt.Alloc/Value, the
// Linearized slice) alias the workspace and are valid only until the next
// method call on the same Workspace; callers that retain results must copy
// them or use the allocating package-level functions.
type Workspace struct {
	capped  []cappedFunc
	fs      []utility.Func // fs[i] = &capped[i]: no per-element boxing
	soAlloc []float64
	soValue []float64
	gs      []Linearized
	allocSc alloc.Scratch // λ-bisection working set, owned per workspace

	// Algorithm 2 scratch.
	order  []int
	h2     serverHeap
	byUHat uhatSorter
	byTail tailSorter

	// Parallel Assign2 scratch (parallel.go): the merge ping-pong
	// buffer, per-chunk sorters (each with its own comparison counter),
	// per-merge-task counters, and the sharded server heap. Pooled with
	// the workspace so steady-state parallel solves reuse them.
	sortScratch []int
	parUHat     []uhatSorter
	parTail     []tailSorter
	taskCmps    []uint64
	hs          shardedServerHeap

	// Algorithm 1 fast-path scratch.
	a1servers []serverEntry
	full      []threadItem
	partial   []threadItem

	// span is the request span the solver stages parent their trace
	// spans to (SetSpanContext); zero means "use the process default".
	span telemetry.SpanContext
}

// SetSpanContext plants the enclosing request's span context so the
// solver-stage spans of subsequent calls (SuperOptimal, Assign*,
// assign2) become its children. The engine sets it per solve; the zero
// SpanContext restores the default parenting.
func (w *Workspace) SetSpanContext(sc telemetry.SpanContext) { w.span = sc }

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

var workspacePool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace borrows a workspace from the package-wide pool.
func GetWorkspace() *Workspace { return workspacePool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the pool. The utility-function
// references from the last solve are dropped so the pool never keeps
// caller objects alive.
func PutWorkspace(w *Workspace) {
	for i := range w.capped {
		w.capped[i].f = nil
	}
	w.span = telemetry.SpanContext{} // don't leak a request's span to the next borrower
	workspacePool.Put(w)
}

// capFuncs fills the workspace's capped wrappers for the instance and
// returns them as []utility.Func of pointers into the workspace — the
// pointer indirection keeps the interface conversion allocation-free.
func (w *Workspace) capFuncs(in *Instance) []utility.Func {
	n := in.N()
	if cap(w.capped) < n {
		w.capped = make([]cappedFunc, n)
		w.fs = make([]utility.Func, n)
	}
	w.capped = w.capped[:n]
	w.fs = w.fs[:n]
	for i, f := range in.Threads {
		c := f.Cap()
		if c > in.C {
			c = in.C
		}
		w.capped[i] = cappedFunc{f: f, c: c}
		w.fs[i] = &w.capped[i]
	}
	return w.fs
}

// superOptimalWith is the shared super-optimal implementation: both the
// allocating package-level SuperOptimal and the buffer-reusing Workspace
// method funnel here, so their numerics are identical by construction.
func superOptimalWith(in *Instance, fs []utility.Func, sc *alloc.Scratch, allocDst, valueDst []float64, parent telemetry.SpanContext) SuperOpt {
	start := stageStart()
	budget := float64(in.M) * in.C
	res := alloc.ConcaveWith(sc, allocDst, fs, budget)
	n := len(fs)
	if cap(valueDst) >= n {
		valueDst = valueDst[:n]
	} else {
		valueDst = make([]float64, n)
	}
	so := SuperOpt{Alloc: res.Alloc, Value: valueDst, Total: res.Total, Lambda: res.Lambda}
	for i, f := range fs {
		so.Value[i] = f.Value(res.Alloc[i])
	}
	if !start.IsZero() {
		metricSuperOptCalls.Inc()
		metricBisectIters.Add(uint64(res.Iterations))
		stageEnd(start, metricSuperOptSeconds, "core.superopt", parent, in.N())
	}
	return so
}

// SuperOptimal is the workspace variant of the package-level SuperOptimal;
// the returned SuperOpt aliases workspace buffers.
func (w *Workspace) SuperOptimal(in *Instance) SuperOpt {
	so := superOptimalWith(in, w.capFuncs(in), &w.allocSc, w.soAlloc, w.soValue, w.span)
	w.soAlloc, w.soValue = so.Alloc, so.Value
	return so
}

// Linearize is the workspace variant of the package-level Linearize; the
// returned slice aliases the workspace.
func (w *Workspace) Linearize(in *Instance, so SuperOpt) []Linearized {
	n := in.N()
	if cap(w.gs) >= n {
		w.gs = w.gs[:n]
	} else {
		w.gs = make([]Linearized, n)
	}
	for i := range w.gs {
		w.gs[i] = Linearized{UHat: so.Value[i], CHat: so.Alloc[i], C: in.C}
	}
	if telemetry.Enabled() {
		metricLinearizeCalls.Inc()
	}
	return w.gs
}

// threadItem is one entry of the fast path's thread priority queues: key
// is g(ĉ) for the full-candidate heap and the ramp slope g(ĉ)/ĉ for the
// partial heap; ties break toward the lower thread index, matching the
// first-maximum semantics of the reference scan.
type threadItem struct {
	key float64
	idx int
}

// itemBefore is the strict total order of the thread heaps.
func itemBefore(a, b threadItem) bool {
	return a.key > b.key || (a.key == b.key && a.idx < b.idx)
}

func heapifyItems(h []threadItem) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownItem(h, i)
	}
}

func siftDownItem(h []threadItem, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && itemBefore(h[l], h[best]) {
			best = l
		}
		if r < len(h) && itemBefore(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func pushItem(h []threadItem, it threadItem) []threadItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func popItem(h []threadItem) (threadItem, []threadItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	siftDownItem(h, 0)
	return top, h
}

// serverBefore is the strict total order of Algorithm 1's server heap:
// most residual first, lower id on ties — exactly the server the reference
// implementation's first-maximum scan selects.
func serverBefore(a, b serverEntry) bool {
	return a.residual > b.residual || (a.residual == b.residual && a.id < b.id)
}

// siftTopServer lowers the top server's residual and restores the heap,
// returning the number of swaps for the server-ops telemetry.
func siftTopServer(s []serverEntry, newResidual float64) int {
	s[0].residual = newResidual
	swaps := 0
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && serverBefore(s[l], s[best]) {
			best = l
		}
		if r < len(s) && serverBefore(s[r], s[best]) {
			best = r
		}
		if best == i {
			return swaps
		}
		s[i], s[best] = s[best], s[i]
		swaps++
		i = best
	}
}

// Assign1Linearized is the workspace variant of the package-level fast
// Assign1Linearized, writing the assignment into out (resized as needed).
func (w *Workspace) Assign1Linearized(in *Instance, gs []Linearized, out *Assignment) {
	start := stageStart()
	n, m := in.N(), in.M
	out.Reset(n)

	if cap(w.a1servers) >= m {
		w.a1servers = w.a1servers[:m]
	} else {
		w.a1servers = make([]serverEntry, m)
	}
	servers := w.a1servers
	for j := range servers {
		servers[j] = serverEntry{id: j, residual: in.C}
	}
	// All residuals equal and ids ascending is already a valid heap under
	// (residual desc, id asc).

	// Initial split against the starting residual C: threads whose ĉ fits
	// a fresh server are full candidates keyed by g(ĉ); the rest can only
	// ever take leftovers and are keyed by slope. A thread moves from full
	// to partial at most once, when the shrinking max residual drops below
	// its ĉ — the max residual never grows (every pass removes amount ≥ 0
	// from the fullest server), so the move is permanent and the lazy
	// migration below stays O(n log n) total.
	full, partial := w.full[:0], w.partial[:0]
	for i := range gs {
		if gs[i].CHat <= in.C {
			full = append(full, threadItem{key: gs[i].UHat, idx: i})
		} else {
			partial = append(partial, threadItem{key: gs[i].Slope(), idx: i})
		}
	}
	heapifyItems(full)
	heapifyItems(partial)

	var fitChecks, serverOps uint64
	for remaining := n; remaining > 0; remaining-- {
		top := servers[0]
		maxResidual := top.residual

		// Migrate full-heap tops that no longer fit the fullest server.
		// Entries below the top may also have outgrown maxResidual; they
		// migrate when they surface, and until then they cannot win a
		// full pick — the top bounds their key from above, so the chosen
		// full candidate is always the true maximum over the threads that
		// actually still fit.
		for len(full) > 0 {
			fitChecks++
			if gs[full[0].idx].CHat <= maxResidual {
				break
			}
			var it threadItem
			it, full = popItem(full)
			partial = pushItem(partial, threadItem{key: gs[it.idx].Slope(), idx: it.idx})
		}

		var pick int
		var amount float64
		if len(full) > 0 {
			var it threadItem
			it, full = popItem(full)
			pick, amount = it.idx, gs[it.idx].CHat
		} else {
			// No unassigned thread fits anywhere (the full heap drains
			// exactly when every remaining ĉ exceeds the max residual), so
			// the partial heap holds all of them; the best slope takes
			// everything the fullest server has left.
			var it threadItem
			it, partial = popItem(partial)
			pick, amount = it.idx, maxResidual
		}
		out.Server[pick] = top.id
		out.Alloc[pick] = amount
		newResidual := maxResidual - amount
		if newResidual < 0 {
			newResidual = 0 // float guard
		}
		serverOps += uint64(siftTopServer(servers, newResidual)) + 1
	}
	w.full, w.partial = full[:0], partial[:0]

	if !start.IsZero() {
		metricAssign1Calls.Inc()
		metricAssign1Passes.Add(uint64(n))
		metricAssign1FitChecks.Add(fitChecks)
		metricAssign1ServerOps.Add(serverOps)
		stageEnd(start, metricAssign1Seconds, "core.assign1", w.span, n)
	}
}

// Assign2Linearized is the workspace variant of the package-level
// Assign2Linearized, writing the assignment into out.
func (w *Workspace) Assign2Linearized(in *Instance, gs []Linearized, out *Assignment) {
	w.assign2(in, gs, TailBySlope, out)
}

// uhatSorter orders thread indices by nonincreasing g(ĉ) (Algorithm 2,
// line 1). A concrete sort.Interface kept in the workspace avoids the
// closure and header allocations of sort.SliceStable; stability makes the
// result identical either way.
type uhatSorter struct {
	order []int
	gs    []Linearized
	cmps  uint64
}

func (s *uhatSorter) Len() int { return len(s.order) }
func (s *uhatSorter) Less(a, b int) bool {
	s.cmps++
	return s.gs[s.order[a]].UHat > s.gs[s.order[b]].UHat
}
func (s *uhatSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }

// tailSorter orders the tail (Algorithm 2, line 2) by the ablation's
// TailOrder: nonincreasing slope (the paper's rule) or nonincreasing ĉ.
type tailSorter struct {
	order  []int
	gs     []Linearized
	byCHat bool
	cmps   uint64
}

func (s *tailSorter) Len() int { return len(s.order) }
func (s *tailSorter) Less(a, b int) bool {
	s.cmps++
	if s.byCHat {
		return s.gs[s.order[a]].CHat > s.gs[s.order[b]].CHat
	}
	return s.gs[s.order[a]].Slope() > s.gs[s.order[b]].Slope()
}
func (s *tailSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }
