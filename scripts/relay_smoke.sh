#!/usr/bin/env bash
# relay_smoke.sh — end-to-end check of the aarelay cluster tier.
#
# Starts three aaserve nodes and an aarelay in front of them, then
# drives the cluster through its contract:
#
#   1. Determinism across the relay: a flash-scenario replay through the
#      relay must produce a byte-identical canonical report to the same
#      replay straight at a single node — even though one node is
#      SIGTERMed mid-replay (failover + client retry must hide it:
#      "failed": 0 in the report).
#   2. Recovery: the killed node restarts on its old address and the
#      relay's prober must return it to the ready set.
#   3. Shared cache: a repeated solve must be answered by the relay
#      cache byte-identically, with aa_cache_hits_total moving on the
#      relay and no extra solve reaching the nodes.
#   4. Least-loaded routing: with one node's solver pool saturated,
#      fresh solves must shift to the other nodes — asserted from each
#      node's own aa_engine_requests_total counters.
#   5. Rate limiting: a second relay with -rate/-burst must answer 429
#      with a Retry-After header once the client's bucket is empty.
#   6. One trace tree: the union of the replay client's, the relay's
#      and every node's JSONL trace files must form a single connected
#      tree — every parent span resolves in the union, node requests
#      hang under relay.forward spans, relay requests hang under the
#      client's replay.event spans.
#
# Run from the repository root; CI runs it after the replay smoke.
#
# Environment knobs:
#   SEED      replay seed (default 7)
#   OUT_DIR   keep reports and trace files here for CI artifact upload
#             (default: a temp dir removed at exit)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-7}"

tmpdir="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && wait "$p" 2>/dev/null || true
    done
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

out_dir="${OUT_DIR:-$tmpdir/out}"
mkdir -p "$out_dir"

go build -o "$tmpdir/aaserve" ./cmd/aaserve
go build -o "$tmpdir/aarelay" ./cmd/aarelay
go build -o "$tmpdir/aareplay" ./cmd/aareplay
go build -o "$tmpdir/aagen" ./cmd/aagen

# wait_addr <logfile> <pid>: echo the address from the listening line.
wait_addr() {
    local log="$1" pid="$2" addr="" i=0
    while [ $i -lt 100 ]; do
        addr="$(sed -n 's|.*listening on http://\([^ ]*\)$|\1|p' "$log" | head -n1)"
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "relay_smoke: process exited before listening" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "relay_smoke: never saw the listening line in $log" >&2
        cat "$log" >&2
        exit 1
    fi
    echo "$addr"
}

# start_node <name> <listen>: leaves the pid in node_pid. Runs in the
# main shell (not a substitution) so the script can wait on it.
start_node() {
    local name="$1" listen="$2"
    "$tmpdir/aaserve" -addr "$listen" -workers 1 -queue 16 \
        -history-interval 100ms -trace-out "$out_dir/$name.jsonl" \
        >/dev/null 2>"$tmpdir/$name.log" &
    node_pid=$!
}

start_node n1 127.0.0.1:0; n1_pid=$node_pid; pids+=("$n1_pid")
start_node n2 127.0.0.1:0; n2_pid=$node_pid; pids+=("$n2_pid")
start_node n3 127.0.0.1:0; n3_pid=$node_pid; pids+=("$n3_pid")
n1="$(wait_addr "$tmpdir/n1.log" "$n1_pid")"
n2="$(wait_addr "$tmpdir/n2.log" "$n2_pid")"
n3="$(wait_addr "$tmpdir/n3.log" "$n3_pid")"

# --- 1a. Single-node baseline: the byte-identity reference. -----------
echo "relay_smoke: baseline replay against $n1 (seed=$SEED) ..."
"$tmpdir/aareplay" -scenario flash -seed "$SEED" -canonical -addr "$n1" \
    -out "$out_dir/baseline.json"

"$tmpdir/aarelay" -addr 127.0.0.1:0 -nodes "$n1,$n2,$n3" \
    -strategy least-loaded -probe-interval 100ms \
    -cache shared -cache-key smoke-secret \
    -trace-out "$out_dir/relay.jsonl" 2>"$tmpdir/relay.log" &
relay_pid=$!
pids+=("$relay_pid")
relay="$(wait_addr "$tmpdir/relay.log" "$relay_pid")"

# --- 1b. Replay through the relay, killing n2 mid-run. ----------------
echo "relay_smoke: replay through relay $relay, killing n2 mid-run ..."
"$tmpdir/aareplay" -scenario flash -seed "$SEED" -canonical -addr "$relay" \
    -trace-out "$out_dir/client.jsonl" -out "$out_dir/relay_run.json" &
replay_pid=$!
sleep 0.5
kill -TERM "$n2_pid" 2>/dev/null || true
rc=0
wait "$replay_pid" || rc=$?
if [ "$rc" != 0 ]; then
    echo "relay_smoke: replay through relay exited $rc" >&2
    cat "$tmpdir/relay.log" >&2
    exit 1
fi
wait "$n2_pid" 2>/dev/null || {
    echo "relay_smoke: n2 did not drain cleanly after SIGTERM" >&2
    exit 1
}
pids=("$n1_pid" "$n3_pid" "$relay_pid") # n2 is gone; keep the rest

if ! grep -q '"failed": 0' "$out_dir/relay_run.json"; then
    echo "relay_smoke: FAIL: solves failed despite failover + retry:" >&2
    grep -o '"failed": [0-9]*' "$out_dir/relay_run.json" | head -1 >&2
    exit 1
fi
if ! cmp -s "$out_dir/baseline.json" "$out_dir/relay_run.json"; then
    echo "relay_smoke: FAIL: relay report differs from single-node baseline" >&2
    diff "$out_dir/baseline.json" "$out_dir/relay_run.json" | head -20 >&2
    exit 1
fi
echo "relay_smoke: relay replay byte-identical to baseline, 0 failed solves"

# --- 2. Restart n2 on its old address; the prober must readmit it. ----
start_node n2b "$n2"
n2_pid=$node_pid
pids+=("$n2_pid")
wait_addr "$tmpdir/n2b.log" "$n2_pid" >/dev/null
i=0
until curl -fsS "http://$relay/nodes" | grep -A2 "\"addr\": \"$n2\"" |
    grep -q '"state": "ready"'; do
    i=$((i + 1))
    if [ $i -gt 50 ]; then
        echo "relay_smoke: FAIL: restarted n2 never returned to ready" >&2
        curl -fsS "http://$relay/nodes" >&2 || true
        exit 1
    fi
    sleep 0.1
done
echo "relay_smoke: restarted n2 back in the ready set"

# --- 3. Shared relay cache: repeat solve served from the relay. -------
"$tmpdir/aagen" -dist powerlaw -m 4 -c 1000 -n 30 -seed 11 >"$tmpdir/repeat.json"
hits_before="$(curl -fsS "http://$relay/metrics" | sed -n 's/^aa_cache_hits_total \([0-9]*\)$/\1/p')"
curl -fsS -X POST --data-binary @"$tmpdir/repeat.json" "http://$relay/solve" \
    >"$tmpdir/repeat.a.json"
curl -fsS -X POST --data-binary @"$tmpdir/repeat.json" "http://$relay/solve" \
    >"$tmpdir/repeat.b.json"
if ! cmp -s "$tmpdir/repeat.a.json" "$tmpdir/repeat.b.json"; then
    echo "relay_smoke: FAIL: cached repeat not byte-identical" >&2
    exit 1
fi
hits_after="$(curl -fsS "http://$relay/metrics" | sed -n 's/^aa_cache_hits_total \([0-9]*\)$/\1/p')"
if [ "${hits_after:-0}" -le "${hits_before:-0}" ]; then
    echo "relay_smoke: FAIL: aa_cache_hits_total did not move ($hits_before -> $hits_after)" >&2
    exit 1
fi
echo "relay_smoke: shared cache hit, byte-identical repeat"

# --- 4. Least-loaded shift away from a saturated node. ----------------
# engine_count <addr>: the node's assign2 request counter (the backend
# quick solves use; the saturating exact solves count separately).
engine_count() {
    curl -fsS "http://$1/metrics" |
        sed -n 's/^aa_engine_requests_total{backend="assign2"} \([0-9]*\)$/\1/p'
}
c1_before="$(engine_count "$n1")"
c2_before="$(engine_count "$n2")"
c3_before="$(engine_count "$n3")"

# Saturate n1's single worker: three branch-and-bound solves, sent
# straight at the node so only its queue-depth gauge (not the relay's
# in-flight count) can steer traffic away. The node budget is what
# bounds them — BranchAndBound is not context-aware, so an unbounded
# search would outlive its request and hang the final drain.
"$tmpdir/aagen" -dist powerlaw -m 4 -c 1000 -n 26 -seed 3 >"$tmpdir/slow.json"
slow_pids=()
for _ in 1 2 3; do
    curl -s -o /dev/null -X POST --data-binary @"$tmpdir/slow.json" \
        "http://$n1/solve?backend=exact&maxnodes=150000" &
    slow_pids+=($!)
done
sleep 0.5 # a few probe sweeps observe n1's queue depth

for i in $(seq 1 12); do
    "$tmpdir/aagen" -dist powerlaw -m 4 -c 1000 -n 20 -seed "$((100 + i))" \
        >"$tmpdir/quick.json"
    curl -fsS -o /dev/null -X POST --data-binary @"$tmpdir/quick.json" \
        "http://$relay/solve"
done

c1="$(( $(engine_count "$n1") - ${c1_before:-0} ))"
c2="$(( $(engine_count "$n2") - ${c2_before:-0} ))"
c3="$(( $(engine_count "$n3") - ${c3_before:-0} ))"
echo "relay_smoke: least-loaded spread with n1 saturated: n1=$c1 n2=$c2 n3=$c3"
if [ "$c1" -gt 2 ] || [ "$((c2 + c3))" -lt 10 ]; then
    echo "relay_smoke: FAIL: traffic did not shift off the saturated node" >&2
    exit 1
fi
for p in "${slow_pids[@]}"; do
    kill "$p" 2>/dev/null || true
    wait "$p" 2>/dev/null || true
done

# --- 5. Rate limiting on a second relay. ------------------------------
"$tmpdir/aarelay" -addr 127.0.0.1:0 -nodes "$n3" -rate 0.5 -burst 1 \
    2>"$tmpdir/relay2.log" &
relay2_pid=$!
pids+=("$relay2_pid")
relay2="$(wait_addr "$tmpdir/relay2.log" "$relay2_pid")"
code1="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    --data-binary @"$tmpdir/repeat.json" "http://$relay2/solve")"
code2="$(curl -s -D "$tmpdir/limited.headers" -o /dev/null -w '%{http_code}' \
    -X POST --data-binary @"$tmpdir/repeat.json" "http://$relay2/solve")"
if [ "$code1" != 200 ] || [ "$code2" != 429 ]; then
    echo "relay_smoke: FAIL: rate limit codes $code1,$code2 (want 200,429)" >&2
    exit 1
fi
grep -iq '^retry-after: [0-9]' "$tmpdir/limited.headers" || {
    echo "relay_smoke: FAIL: 429 without Retry-After" >&2
    cat "$tmpdir/limited.headers" >&2
    exit 1
}
echo "relay_smoke: rate limit 429 with Retry-After"

# --- Drain everything so the trace sinks flush. -----------------------
for p in "${pids[@]}"; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in "${pids[@]}"; do
    rc=0
    wait "$p" || rc=$?
    if [ "$rc" != 0 ]; then
        echo "relay_smoke: a process exited $rc after SIGTERM" >&2
        exit 1
    fi
done
pids=()

# --- 6. One connected trace tree across client, relay and nodes. ------
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out_dir/client.jsonl" "$out_dir/relay.jsonl" \
        "$out_dir"/n*.jsonl <<'EOF' || { echo "relay_smoke: bad trace tree" >&2; exit 1; }
import json, sys

def load(path):
    spans = []
    with open(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            rec = json.loads(line)  # truncated record fails here
            if rec.get("type") == "span":
                spans.append(rec)
    return spans

client, relay = load(sys.argv[1]), load(sys.argv[2])
nodes = [s for p in sys.argv[3:] for s in load(p)]
union = {s["span_id"] for s in client + relay + nodes}

for s in client + relay + nodes:
    parent = s.get("parent_id", "")
    assert not parent or parent in union, \
        f'span {s["name"]} has dangling parent {parent}'

events = {s["span_id"] for s in client if s["name"] == "replay.event"}
forwards = {s["span_id"] for s in relay if s["name"] == "relay.forward"}
assert events, "client produced no replay.event spans"
assert forwards, "relay produced no relay.forward spans"

relay_reqs = [s for s in relay
              if s["name"] == "http.request" and s.get("parent_id") in events]
assert relay_reqs, "no relay http.request hangs under a client replay.event"
node_reqs = [s for s in nodes
             if s["name"] == "http.request" and s.get("parent_id") in forwards]
assert node_reqs, "no node http.request hangs under a relay.forward"
print(f"relay_smoke: trace tree connected: {len(events)} events, "
      f"{len(relay_reqs)} relayed requests, {len(node_reqs)} node requests, "
      f"{len(union)} spans total")
EOF
else
    echo "relay_smoke: python3 unavailable; skipping trace-tree check"
fi

echo "relay_smoke: OK (artifacts in $out_dir)"
