// Package cache is the solve-result cache behind the engine's caching
// middleware: fingerprint-keyed storage of verified solver responses,
// plus the canonical-form machinery (Canonicalize / Diff) the engine's
// warm-start repair path uses to recognize instances that differ from a
// cached one by only a few threads.
//
// The cache stores entries in canonical (hash-sorted) thread order, so a
// request whose threads are a permutation of a cached instance's still
// gets an exact hit, un-permuted back through its own Perm — with the
// assignment byte-identical to the one the populating solve produced.
// Entries are immutable once stored: Put hands ownership of the entry
// and its slices to the cache, and Get returns shared pointers that
// callers must not mutate.
//
// Three modes hide behind one factory (New): ModeOff (a no-op cache),
// ModeMemory (an in-process sharded LRU with size and TTL bounds, unkeyed
// hashing), and ModeShared (the relay tier's exact-hit cache: the same
// LRU storage, but with keyed thread hashing — a configured cluster key,
// or a random per-process key when none is given — so fingerprints are
// safe to derive from untrusted request bodies).
package cache

import (
	"fmt"
	"time"
)

// Mode selects a cache implementation in Config.
type Mode string

// The cache modes accepted by New (and the -cache CLI flag).
const (
	// ModeOff disables caching: every lookup misses, stores are dropped.
	ModeOff Mode = "off"
	// ModeMemory is the in-process sharded LRU with size and TTL bounds.
	ModeMemory Mode = "memory"
	// ModeShared is the relay tier's exact-hit cache (ROADMAP item 1):
	// ModeMemory storage semantics, but thread hashing is keyed —
	// Config.Key when set (every relay given the same cluster key
	// derives the same fingerprints), else a random per-process key —
	// because relay cache keys are derived from untrusted request
	// bodies, where the published unkeyed constants would be a
	// collision target.
	ModeShared Mode = "shared"
)

// Config configures a cache built by New. The zero value is a usable
// ModeOff configuration.
type Config struct {
	// Mode selects the implementation; "" means ModeOff.
	Mode Mode
	// Size bounds the number of entries (memory/shared modes); <= 0
	// means DefaultSize. The bound is enforced per shard, so the
	// effective capacity is Size rounded up to a multiple of Shards.
	Size int
	// TTL bounds entry age; entries older than TTL are evicted lazily on
	// access. 0 means no expiry (required for deterministic replay
	// reports — see internal/replay).
	TTL time.Duration
	// Shards is the number of independently locked LRU shards; <= 0
	// means DefaultShards.
	Shards int
	// Candidates bounds the per-group recency ring consulted by the
	// warm-start path (most-recent fingerprints per (m, C, backend)
	// group); <= 0 means DefaultCandidates.
	Candidates int
	// Key keys the thread-hash mixer (CanonicalizeKeyed). The zero key
	// means unkeyed hashing in ModeMemory (byte-compatible with
	// pre-keying fingerprints) and a fresh random per-process key in
	// ModeShared. Derive from a shared secret with KeyFromString.
	Key HashKey
}

// Defaults for Config fields left at zero.
const (
	DefaultSize       = 1024
	DefaultShards     = 8
	DefaultCandidates = 8
)

// Stats is a point-in-time snapshot of one cache's counters. The same
// events also feed the process-wide aa_cache_* telemetry counters;
// Stats exists so a single cache (a replay run, a test) can be read in
// isolation from every other cache in the process.
type Stats struct {
	// Hits and Misses count Get outcomes (a warm start is also a miss:
	// the exact key was absent and a nearby entry was repaired instead).
	Hits, Misses uint64
	// WarmStarts counts misses the engine repaired from a near-miss
	// candidate instead of solving cold (NoteWarmStart).
	WarmStarts uint64
	// Evictions counts entries dropped for capacity or TTL.
	Evictions uint64
	// Stores counts successful Puts.
	Stores uint64
	// Bypasses counts requests that skipped the cache (NoteBypass —
	// Request.NoCache / ?cache=bypass).
	Bypasses uint64
}

// Cache is the interface the engine middleware drives. Implementations
// are safe for concurrent use.
type Cache interface {
	// Mode reports the mode this cache was built with.
	Mode() Mode
	// Get returns the entry stored under key, counting a hit or miss.
	// The returned entry is shared and must not be mutated.
	Get(key Key) (*Entry, bool)
	// Put stores e under key and registers the key in group's recency
	// ring for warm-start candidate lookup. The cache takes ownership of
	// e and its slices.
	Put(key Key, group uint64, e *Entry)
	// Candidates appends the live entries of group's recency ring to
	// dst, most recently stored first, without disturbing LRU order or
	// hit/miss accounting.
	Candidates(group uint64, dst []*Entry) []*Entry
	// Remove drops the entry stored under key, if any. Benchmarks use it
	// to force the warm path on every iteration.
	Remove(key Key)
	// Len returns the number of live entries.
	Len() int
	// Stats returns a snapshot of this cache's counters.
	Stats() Stats
	// NoteWarmStart counts one warm-start repair (called by the engine
	// middleware, which is the only place that can tell a warm start
	// from a plain miss).
	NoteWarmStart()
	// NoteBypass counts one explicitly bypassed request.
	NoteBypass()
	// HashKey returns the key requests against this cache must
	// canonicalize with (CanonicalizeKeyed); the zero key means the
	// unkeyed hash. Mixing keys against one cache silently misses on
	// everything, so every reader and writer must go through this.
	HashKey() HashKey
}

// Entry is one cached solve result, stored in canonical thread order
// (position k holds the thread Canon.Hashes[k] describes). Canon keeps
// the canonical form of the populating instance so the warm-start path
// can diff new instances against it without re-deriving anything.
type Entry struct {
	// Canon is the canonical form of the instance that produced this
	// entry. Its Perm is meaningless here (it related the populating
	// request's thread order, which is gone); only M, C and Hashes are
	// read back.
	Canon *Canonical
	// Server and Alloc are the assignment in canonical thread order.
	Server []int
	Alloc  []float64
	// AltServer/AltAlloc hold Algorithm 1's alternative assignment when
	// the populating request set AltAssign1, else nil.
	AltServer []int
	AltAlloc  []float64
	// Utility and AltUtility are the populating response's values (NaN
	// when the populating request did not ask for utility).
	Utility    float64
	AltUtility float64
	// Bound is the super-optimal bound F̂ the populating solve computed
	// (NaN for backends that do not produce one).
	Bound float64
	// Lambda is the water-filling price of the populating solve's
	// λ-search; > 0 is the precondition for warm-starting from this
	// entry.
	Lambda float64
	// Moves is the populating response's local-search move count.
	Moves int
	// Backend is the canonical backend name that produced the entry.
	Backend string
}

// New builds a cache for cfg. ModeOff (and the zero Config) return the
// shared no-op cache; unknown modes are an error.
func New(cfg Config) (Cache, error) {
	switch cfg.Mode {
	case "", ModeOff:
		return Noop(), nil
	case ModeMemory:
		return newMemCache(cfg), nil
	case ModeShared:
		if cfg.Key.IsZero() {
			cfg.Key = RandomKey()
		}
		return newMemCache(cfg), nil
	default:
		return nil, fmt.Errorf("cache: unknown mode %q (want %q, %q or %q)",
			cfg.Mode, ModeOff, ModeMemory, ModeShared)
	}
}
