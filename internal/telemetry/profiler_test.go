package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestProfilerCapturesAndStops(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiler(dir, ProfilerOptions{
		Interval:    50 * time.Millisecond,
		CPUDuration: 10 * time.Millisecond,
		Keep:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", p.Dir(), dir)
	}
	// Wait for at least one full cycle's files to land.
	waitFor(t, func() bool {
		cpu, _ := filepath.Glob(filepath.Join(dir, "cpu-*.pprof"))
		heap, _ := filepath.Glob(filepath.Join(dir, "heap-*.pprof"))
		return len(cpu) >= 1 && len(heap) >= 1
	})
	p.Stop()
	p.Stop() // idempotent

	heaps, _ := filepath.Glob(filepath.Join(dir, "heap-*.pprof"))
	for _, f := range heaps {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("heap capture %s empty or unreadable: %v", f, err)
		}
	}
}

func TestProfilerPrunesRing(t *testing.T) {
	dir := t.TempDir()
	// Pre-seed the directory with stale captures from an "older process"
	// (lexicographically earlier prefixes) so one cycle must prune.
	for i := 0; i < 5; i++ {
		name := filepath.Join(dir, "heap-0-0-00000"+string(rune('0'+i))+".pprof")
		if err := os.WriteFile(name, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err := StartProfiler(dir, ProfilerOptions{
		Interval:    40 * time.Millisecond,
		CPUDuration: 5 * time.Millisecond,
		Keep:        2,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		heaps, _ := filepath.Glob(filepath.Join(dir, "heap-*.pprof"))
		if len(heaps) != 2 {
			return false
		}
		// The survivors must be the newest: no stale prefix remains.
		for _, f := range heaps {
			if strings.Contains(filepath.Base(f), "heap-0-0-") {
				return false
			}
		}
		return true
	})
	p.Stop()
}

func TestProfilerBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := StartProfiler(filepath.Join(file, "sub"), ProfilerOptions{}); err == nil {
		t.Fatal("StartProfiler into a file path succeeded, want error")
	}
}
