package aa_test

import (
	"fmt"

	"aa"
)

// The basic workflow: describe threads by concave utilities, solve, and
// inspect the assignment.
func ExampleSolve() {
	inst := &aa.Instance{
		M: 2,
		C: 10,
		Threads: []aa.Utility{
			aa.CappedLinear{Slope: 2, Knee: 5, C: 10},
			aa.CappedLinear{Slope: 2, Knee: 5, C: 10},
			aa.Linear{Slope: 1, C: 10},
		},
	}
	sol := aa.Solve(inst)
	fmt.Printf("utility %.1f of bound %.1f\n",
		sol.Utility(inst), aa.SuperOptimal(inst).Total)
	// Output:
	// utility 25.0 of bound 30.0
}

// The super-optimal allocation is the pooled-capacity relaxation: it
// upper-bounds every feasible assignment and supplies the ĉ_i driving
// the approximation algorithms.
func ExampleSuperOptimal() {
	inst := &aa.Instance{
		M: 2,
		C: 10,
		Threads: []aa.Utility{
			aa.Linear{Slope: 3, C: 10},
			aa.Linear{Slope: 1, C: 10},
		},
	}
	so := aa.SuperOptimal(inst)
	fmt.Printf("allocations %.0f, total %.0f\n", so.Alloc, so.Total)
	// Output:
	// allocations [10 10], total 40
}

// Exact solving is available for small instances; the approximation is
// never more than a factor 1/α ≈ 1.21 away and usually much closer.
func ExampleSolveExact() {
	inst := &aa.Instance{
		M: 2,
		C: 1,
		Threads: []aa.Utility{
			// Theorem V.17's tightness instance.
			aa.CappedLinear{Slope: 2, Knee: 0.5, C: 1},
			aa.CappedLinear{Slope: 2, Knee: 0.5, C: 1},
			aa.Linear{Slope: 1, C: 1},
		},
	}
	exact, err := aa.SolveExact(inst, 0)
	if err != nil {
		panic(err)
	}
	approx := aa.Solve(inst)
	fmt.Printf("exact %.2f, algorithm 2 %.2f, ratio %.3f (alpha %.3f)\n",
		exact.Utility(inst), approx.Utility(inst),
		approx.Utility(inst)/exact.Utility(inst), aa.Alpha)
	// Output:
	// exact 3.00, algorithm 2 2.50, ratio 0.833 (alpha 0.828)
}

// Local search recovers most of the residual gap on hard instances.
func ExampleImprove() {
	inst := &aa.Instance{
		M: 2,
		C: 1,
		Threads: []aa.Utility{
			aa.CappedLinear{Slope: 2, Knee: 0.5, C: 1},
			aa.CappedLinear{Slope: 2, Knee: 0.5, C: 1},
			aa.Linear{Slope: 1, C: 1},
		},
	}
	sol := aa.Solve(inst)
	improved, moves := aa.Improve(inst, sol, 0)
	fmt.Printf("%.2f -> %.2f in %d move(s)\n",
		sol.Utility(inst), improved.Utility(inst), moves)
	// Output:
	// 2.50 -> 3.00 in 1 move(s)
}

// GenerateInstance reproduces the paper's synthetic workloads.
func ExampleGenerateInstance() {
	r := aa.NewRand(7)
	inst, err := aa.GenerateInstance(aa.PowerLawDist{Alpha: 2, Xmin: 1}, 8, 1000, 40, r)
	if err != nil {
		panic(err)
	}
	sol := aa.Solve(inst)
	fmt.Printf("n=%d threads on m=%d servers: solved feasibly: %v\n",
		inst.N(), inst.M, sol.Validate(inst, 1e-9) == nil)
	// Output:
	// n=40 threads on m=8 servers: solved feasibly: true
}
