package check

import (
	"fmt"
	"math"

	"aa/internal/alloc"
	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

// Workload pairs a name with one of the thread-value distributions of
// the paper's §VII evaluation corpus (internal/gen).
type Workload struct {
	Name string
	Dist gen.Dist
}

// FigureWorkloads returns the distribution behind every figure panel of
// the paper's evaluation: uniform (Fig. 1a), truncated normal (Fig. 1b),
// power laws with α = 2 and α = 1.5 (Fig. 2a/2b), and the discrete
// geometric family at θ = 5 and θ = 20 (Fig. 3). The differential
// harness and the property tests iterate over this list so that "checked
// across the figure corpus" means all of them, not a sample.
func FigureWorkloads() []Workload {
	return []Workload{
		{Name: "fig1a-uniform", Dist: gen.DefaultUniform},
		{Name: "fig1b-normal", Dist: gen.DefaultNormal},
		{Name: "fig2a-powerlaw2.0", Dist: gen.PowerLaw{Alpha: 2, Xmin: 1}},
		{Name: "fig2b-powerlaw1.5", Dist: gen.PowerLaw{Alpha: 1.5, Xmin: 1}},
		{Name: "fig3-discrete-theta5", Dist: gen.Discrete{L: 1, Gamma: 0.85, Theta: 5}},
		{Name: "fig3-discrete-theta20", Dist: gen.Discrete{L: 1, Gamma: 0.85, Theta: 20}},
	}
}

// DiffOptions configures the differential harness. The zero value is a
// sensible smoke configuration: a handful of trials per figure workload
// on instances small enough for the exact solver.
type DiffOptions struct {
	Seed     uint64  // base seed for the deterministic rng tree (0 → 1)
	Trials   int     // instances per workload (0 → 8)
	MaxM     int     // server counts drawn from 1..MaxM (0 → 3)
	MaxN     int     // thread counts drawn from 1..MaxN (0 → 7)
	C        float64 // server capacity (0 → 100)
	Eps      float64 // feasibility tolerance (0 → DefaultEps)
	MaxNodes int     // branch-and-bound node budget (0 → core.ExactLimit)
}

// DiffReport summarizes one Differential run.
type DiffReport struct {
	// Workloads, Instances and Solvers count what was covered: figure
	// distributions, generated instances, and solver results
	// cross-checked (several per instance).
	Workloads int
	Instances int
	Solvers   int
	// Violations holds one human-readable line per failed check,
	// prefixed "workload[trial]/solver:". Empty means the run is clean.
	Violations []string
}

// Err returns nil for a clean report, or an error wrapping
// ErrDifferential that carries the first violation.
func (rep *DiffReport) Err() error {
	if len(rep.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %d violations, first: %s",
		ErrDifferential, len(rep.Violations), rep.Violations[0])
}

// note records a failed check in the report. The underlying checkers
// already counted the violation in aa_check_violations_total; note only
// captures the text. It reports whether err was non-nil.
func (rep *DiffReport) note(where string, err error) bool {
	if err == nil {
		return false
	}
	rep.Violations = append(rep.Violations, fmt.Sprintf("%s: %v", where, err))
	return true
}

// Differential cross-checks the repository's solvers against independent
// ground truths on small random instances drawn from the figure corpus:
//
//   - every assignment solver (Assign1, Assign2, the marginal-gain
//     greedy, and the four §VII heuristics) against branch-and-bound
//     exact: feasible, at most the exact optimum, and — for
//     Assign1/Assign2 — at least α·F̂;
//   - the λ-bisection allocator alloc.Concave against Fox's unit-greedy
//     alloc.Greedy at a fixed granularity: both feasible, and Concave
//     within 2% of the greedy ground truth (Concave is exact, so it may
//     only exceed greedy, but the greedy grid quantizes the comparison).
//
// The run is deterministic in opts.Seed. It never fails fast: all
// workloads are covered and every violation is collected in the report.
func Differential(opts DiffOptions) *DiffReport {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Trials == 0 {
		opts.Trials = 8
	}
	if opts.MaxM == 0 {
		opts.MaxM = 3
	}
	if opts.MaxN == 0 {
		opts.MaxN = 7
	}
	if opts.C == 0 {
		opts.C = 100
	}
	if opts.Eps == 0 {
		opts.Eps = DefaultEps
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = core.ExactLimit
	}

	rep := &DiffReport{}
	base := rng.New(opts.Seed)
	for wi, w := range FigureWorkloads() {
		rep.Workloads++
		for t := 0; t < opts.Trials; t++ {
			r := base.SplitPath(uint64(wi), uint64(t))
			m := 1 + r.Intn(opts.MaxM)
			n := 1 + r.Intn(opts.MaxN)
			in, err := gen.Instance(w.Dist, m, opts.C, n, r)
			where := fmt.Sprintf("%s[%d]", w.Name, t)
			if err != nil {
				rep.note(where, record(fmt.Errorf("generator: %w", err)))
				continue
			}
			rep.Instances++
			rep.checkInstance(where, in, r, opts)
		}
	}
	return rep
}

// checkInstance runs every cross-check on one generated instance.
func (rep *DiffReport) checkInstance(where string, in *core.Instance, r *rng.Rand, opts DiffOptions) {
	exact, err := core.BranchAndBound(in, opts.MaxNodes)
	if err != nil {
		// Instances here are sized for the exact solver; running out of
		// nodes means the harness could not verify, which the smoke job
		// must surface rather than skip.
		rep.note(where+"/exact", record(fmt.Errorf("branch and bound: %w", err)))
		return
	}
	fExact := exact.Utility(in)
	rep.note(where+"/exact", Feasible(in, exact, opts.Eps))

	so := core.SuperOptimal(in)
	rep.note(where+"/exact", RatioAgainst(so.Total, in, exact).CheckBound(0))

	gs := core.Linearize(in, so)

	// Fast-path differential: the heap-based Assign1 must reproduce the
	// retained quadratic reference bit for bit — same servers, same
	// amounts — on every corpus instance, not merely equal utility.
	fastA1 := core.Assign1Linearized(in, gs)
	refA1 := core.Assign1LinearizedRef(in, gs)
	for i := range refA1.Server {
		if fastA1.Server[i] != refA1.Server[i] || fastA1.Alloc[i] != refA1.Alloc[i] {
			rep.note(where+"/a1-fastref", record(fmt.Errorf(
				"%w: thread %d: fast Assign1 (server %d, alloc %v) != reference (server %d, alloc %v)",
				ErrDifferential, i, fastA1.Server[i], fastA1.Alloc[i], refA1.Server[i], refA1.Alloc[i])))
			break
		}
	}

	// Parallel-path differential: the chunked-sort + sharded-heap
	// Assign2 must reproduce the serial path bit for bit, the same
	// contract the Assign1 fast/ref pair carries above.
	a2 := core.Assign2Linearized(in, gs)
	parA2 := core.Assign2LinearizedParallel(in, gs)
	for i := range a2.Server {
		if parA2.Server[i] != a2.Server[i] || parA2.Alloc[i] != a2.Alloc[i] {
			rep.note(where+"/a2-parallel", record(fmt.Errorf(
				"%w: thread %d: parallel Assign2 (server %d, alloc %v) != serial (server %d, alloc %v)",
				ErrDifferential, i, parA2.Server[i], parA2.Alloc[i], a2.Server[i], a2.Alloc[i])))
			break
		}
	}

	solvers := []struct {
		label      string
		a          core.Assignment
		guaranteed bool // proven α lower bound
	}{
		{"a1", fastA1, true},
		{"a2", a2, true},
		{"gm", core.AssignGreedyMarginal(in), false},
		{"uu", core.AssignUU(in), false},
		{"ur", core.AssignUR(in, r), false},
		{"ru", core.AssignRU(in, r), false},
		{"rr", core.AssignRR(in, r), false},
	}
	for _, sc := range solvers {
		rep.Solvers++
		sw := where + "/" + sc.label
		if rep.note(sw, Feasible(in, sc.a, opts.Eps)) {
			continue
		}
		rr := RatioAgainst(so.Total, in, sc.a)
		if sc.guaranteed {
			rep.note(sw, rr.CheckAlpha(0))
		} else {
			rep.note(sw, rr.CheckBound(0))
		}
		// No solver may beat the exact optimum.
		if u := sc.a.Utility(in); u > fExact+1e-6*(1+math.Abs(fExact)) {
			rep.note(sw, record(fmt.Errorf("%w: utility %v exceeds the exact optimum %v",
				ErrDifferential, u, fExact)))
		}
	}

	// Allocator differential, on a single server's budget and on the
	// pooled cluster budget (the super-optimal formulation).
	rep.checkAlloc(where+"/alloc-C", in, in.C, opts.Eps)
	rep.checkAlloc(where+"/alloc-mC", in, float64(in.M)*in.C, opts.Eps)
}

// checkAlloc cross-checks alloc.Concave against the alloc.Greedy ground
// truth on the instance's thread set at a 1/256 granularity, and against
// the retained unpruned bisection alloc.ConcaveRef (the pruning may shift
// λ's bisection trajectory, so the comparison is tolerance-based, unlike
// the bitwise Assign1 differential).
func (rep *DiffReport) checkAlloc(where string, in *core.Instance, budget, eps float64) {
	fs := in.Threads
	cc := alloc.Concave(fs, budget)
	gr := alloc.Greedy(fs, budget, budget/256)
	rep.note(where+"/concave", Allocation(fs, cc.Alloc, budget, eps))
	rep.note(where+"/greedy", Allocation(fs, gr.Alloc, budget, eps))
	if cc.Total < gr.Total*(1-0.02)-eps {
		rep.note(where, record(fmt.Errorf(
			"%w: Concave total %v below the unit-greedy ground truth %v",
			ErrDifferential, cc.Total, gr.Total)))
	}
	ref := alloc.ConcaveRef(fs, budget)
	if d := math.Abs(cc.Total - ref.Total); d > 1e-7*(1+math.Abs(ref.Total)) {
		rep.note(where+"/concave-ref", record(fmt.Errorf(
			"%w: pruned Concave total %v != unpruned reference %v (diff %g)",
			ErrDifferential, cc.Total, ref.Total, d)))
	}
	for i := range ref.Alloc {
		if d := math.Abs(cc.Alloc[i] - ref.Alloc[i]); d > 1e-6*(1+budget) {
			rep.note(where+"/concave-ref", record(fmt.Errorf(
				"%w: thread %d: pruned allocation %v != unpruned reference %v",
				ErrDifferential, i, cc.Alloc[i], ref.Alloc[i])))
			break
		}
	}
}
