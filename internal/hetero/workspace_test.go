package hetero

import (
	"context"
	"errors"
	"testing"

	"aa/internal/engine"
	"aa/internal/rng"
)

// TestWorkspaceMatchesDirect pins that the pooled solve is bit-identical
// to the allocating entry points.
func TestWorkspaceMatchesDirect(t *testing.T) {
	base := rng.New(17)
	var w Workspace
	var a Assignment
	for trial := 0; trial < 10; trial++ {
		r := base.Split(uint64(trial))
		in := randomSkewInstance(r, 15+trial, []float64{200, 80, 60, 60})
		want := Assign(in)
		wantSO := SuperOptimal(in)
		bound := w.Assign(in, &a)
		if bound != wantSO.Total {
			t.Fatalf("trial %d: bound %v, want %v", trial, bound, wantSO.Total)
		}
		for i := range want.Server {
			if a.Server[i] != want.Server[i] || a.Alloc[i] != want.Alloc[i] {
				t.Fatalf("trial %d thread %d: got (%d, %v), want (%d, %v)",
					trial, i, a.Server[i], a.Alloc[i], want.Server[i], want.Alloc[i])
			}
		}
	}
}

// TestSkewSolveSteadyStateAllocs pins the series-solve contract: after
// the first solve sizes the arena, repeat solves of same-shape
// instances allocate nothing.
func TestSkewSolveSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	in := randomSkewInstance(rng.New(5), 20, []float64{220, 60, 60, 60})
	var w Workspace
	var a Assignment
	w.Assign(in, &a)
	allocs := testing.AllocsPerRun(20, func() { w.Assign(in, &a) })
	if allocs != 0 {
		t.Fatalf("workspace Assign allocates %v per op in steady state, want 0", allocs)
	}
}

// TestEngineBackend: the hetero adapter solves through the shared
// pipeline, carrying the instance in the request payload.
func TestEngineBackend(t *testing.T) {
	in := randomSkewInstance(rng.New(9), 18, []float64{200, 100, 50, 50})
	resp, err := engine.New(engine.Options{}).Solve(context.Background(),
		&engine.Request{Backend: "hetero", Payload: in, WantUtility: true})
	if err != nil {
		t.Fatal(err)
	}
	want := Assign(in)
	for i := range want.Server {
		if resp.Assignment.Server[i] != want.Server[i] || resp.Assignment.Alloc[i] != want.Alloc[i] {
			t.Fatalf("thread %d: got (%d, %v), want (%d, %v)",
				i, resp.Assignment.Server[i], resp.Assignment.Alloc[i], want.Server[i], want.Alloc[i])
		}
	}
	if so := SuperOptimal(in).Total; resp.Bound != so {
		t.Fatalf("bound %v, want %v", resp.Bound, so)
	}
	if wantU := want.Utility(in); resp.Utility != wantU {
		t.Fatalf("utility %v, want %v", resp.Utility, wantU)
	}

	// A payload of the wrong type is a bad request, not a panic.
	if _, err := engine.New(engine.Options{}).Solve(context.Background(),
		&engine.Request{Backend: "hetero", Payload: 42}); !errors.Is(err, engine.ErrBadRequest) {
		t.Fatalf("bad payload returned %v, want ErrBadRequest", err)
	}
}
