package solverpool

import (
	"context"
	"testing"

	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

// TestSessionMatchesAssign2 demands bit-identity between the session's
// workspace-driven solve and the allocating core.Assign2 across a spread
// of instance sizes through one reused session and output assignment.
func TestSessionMatchesAssign2(t *testing.T) {
	s := NewSession()
	defer s.Close()
	var out core.Assignment
	base := rng.New(31)
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		r := base.Split(uint64(trial))
		in, err := gen.Instance(gen.DefaultUniform, 1+r.Intn(8), 100, 1+r.Intn(80), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Solve(ctx, in, &out); err != nil {
			t.Fatal(err)
		}
		want := core.Assign2(in)
		for i := range want.Server {
			if out.Server[i] != want.Server[i] || out.Alloc[i] != want.Alloc[i] {
				t.Fatalf("trial %d thread %d: session (%d,%v) != core.Assign2 (%d,%v)",
					trial, i, out.Server[i], out.Alloc[i], want.Server[i], want.Alloc[i])
			}
		}
	}
}

// TestSessionSolveCancellation: a dead context aborts the solve before it
// writes anything.
func TestSessionSolveCancellation(t *testing.T) {
	s := NewSession()
	defer s.Close()
	in, err := gen.Instance(gen.DefaultUniform, 4, 100, 20, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out core.Assignment
	if err := s.Solve(ctx, in, &out); err != context.Canceled {
		t.Fatalf("cancelled solve returned %v, want context.Canceled", err)
	}
}

// TestSessionSolveZeroAllocs pins the steady-state allocation contract:
// once the session's workspace and the output assignment have grown to
// the workload's size, a solve allocates nothing.
func TestSessionSolveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	in, err := gen.Instance(gen.DefaultUniform, 8, 1000, 400, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession()
	defer s.Close()
	var out core.Assignment
	ctx := context.Background()
	if err := s.Solve(ctx, in, &out); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Solve(ctx, in, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state session solve allocates %v times per run, want 0", allocs)
	}
}
