package alloc_test

// Tests for the warm-started water-filling search: seeded with a λ hint
// from a previous solve, ConcaveWarmInto must match the cold solver's
// value up to bisection tolerance on the figure corpus — whether the
// hint is exact, perturbed, or garbage (the fall-through path).

import (
	"math"
	"testing"

	"aa/internal/alloc"
	"aa/internal/check"
	"aa/internal/utility"
)

// warmAgrees solves cold and warm with the given hint and asserts the
// warm result is feasible and matches the cold total to a relative
// tolerance dominated by the two searches' stopping criteria.
func warmAgrees(t *testing.T, label string, fs []utility.Func, budget, hint float64) {
	t.Helper()
	cold := alloc.ConcaveInto(nil, fs, budget)
	warm := alloc.ConcaveWarmInto(nil, fs, budget, hint)
	if err := check.Allocation(fs, warm.Alloc, budget, 0); err != nil {
		t.Fatalf("%s (hint %v): warm allocation infeasible: %v", label, hint, err)
	}
	tol := 1e-6 * (1 + math.Abs(cold.Total))
	if math.Abs(warm.Total-cold.Total) > tol {
		t.Fatalf("%s (hint %v): warm total %v vs cold %v (diff %v > %v)",
			label, hint, warm.Total, cold.Total, warm.Total-cold.Total, tol)
	}
}

func TestConcaveWarmMatchesColdAcrossCorpus(t *testing.T) {
	corpusThreads(t, func(label string, fs []utility.Func, c float64) {
		for _, budget := range budgets(fs) {
			cold := alloc.ConcaveInto(nil, fs, budget)
			// Exact hint, and hints bracketing it from both sides — the
			// up-doubling and down-halving bracket paths respectively.
			for _, hint := range []float64{cold.Lambda, cold.Lambda * 4, cold.Lambda / 4} {
				warmAgrees(t, label, fs, budget, hint)
			}
		}
	})
}

func TestConcaveWarmBadHintFallsThrough(t *testing.T) {
	corpusThreads(t, func(label string, fs []utility.Func, c float64) {
		budget := 0.5 * c
		cold := alloc.ConcaveInto(nil, fs, budget)
		for _, hint := range []float64{0, -1, math.Inf(1), math.NaN()} {
			warm := alloc.ConcaveWarmInto(nil, fs, budget, hint)
			if len(warm.Alloc) != len(cold.Alloc) {
				t.Fatalf("%s (hint %v): %d allocs, want %d", label, hint, len(warm.Alloc), len(cold.Alloc))
			}
			for i := range warm.Alloc {
				if warm.Alloc[i] != cold.Alloc[i] {
					t.Fatalf("%s (hint %v): fall-through alloc[%d] = %v differs from cold %v",
						label, hint, i, warm.Alloc[i], cold.Alloc[i])
				}
			}
		}
	})
}

func TestConcaveWarmWildHints(t *testing.T) {
	// Hints orders of magnitude off must still converge (the brackets
	// double/halve geometrically), just with more probes.
	corpusThreads(t, func(label string, fs []utility.Func, c float64) {
		budget := 0.5 * c
		for _, hint := range []float64{1e-12, 1e12} {
			warmAgrees(t, label, fs, budget, hint)
		}
	})
}

func TestConcaveWarmCheaperWithExactHint(t *testing.T) {
	// The point of warm starting: an exact hint should need far fewer
	// λ probes than the cold geometric bracket + 1e-15 bisection.
	fs := make([]utility.Func, 0, 400)
	corpusThreads(t, func(label string, fsIn []utility.Func, c float64) {
		if len(fsIn) == 40 && len(fs) < 400 {
			fs = append(fs, fsIn...)
		}
	})
	budget := 0.3 * capSum(fs)
	cold := alloc.ConcaveInto(nil, fs, budget)
	warm := alloc.ConcaveWarmInto(nil, fs, budget, cold.Lambda)
	if cold.Iterations == 0 {
		t.Skip("cold solve took the trivial path")
	}
	if warm.Iterations*2 >= cold.Iterations {
		t.Fatalf("warm used %d iterations vs cold %d; want < half", warm.Iterations, cold.Iterations)
	}
}

func capSum(fs []utility.Func) float64 {
	s := 0.0
	for _, f := range fs {
		s += f.Cap()
	}
	return s
}
