package instio

import (
	"bytes"
	"math"
	"testing"

	"aa/internal/core"
	"aa/internal/utility"
)

// fixtureThreads returns one representative of every wire kind the
// package can encode, all defined over capacity c.
func fixtureThreads(t *testing.T, c float64) map[string]utility.Func {
	t.Helper()
	pw, err := utility.NewPiecewiseLinear(
		[]float64{0, c / 8, c / 2, c},
		[]float64{0, 30, 70, 80},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Concave samples of sqrt-like growth, knots through Cap.
	xs := []float64{0, c / 16, c / 8, c / 4, c / 2, 3 * c / 4, c}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 12 * math.Sqrt(x)
	}
	sm, err := utility.NewSampled(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]utility.Func{
		"linear":       utility.Linear{Slope: 2.5, C: c},
		"cappedLinear": utility.CappedLinear{Slope: 1.5, Knee: c / 3, C: c},
		"power":        utility.Power{Scale: 3, Beta: 0.6, C: c},
		"log":          utility.Log{Scale: 4, Shift: c / 10, C: c},
		"satexp":       utility.SatExp{Scale: 5, K: c / 4, C: c},
		"saturating":   utility.Saturating{Scale: 6, K: c / 2, C: c},
		"piecewise":    pw,
		"sampled":      sm,
	}
}

func encodeBytes(t *testing.T, in *core.Instance) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestEncodeDecodeEncodeStable checks that one round trip reaches a
// fixed point of the wire format for every utility kind: re-encoding a
// decoded instance reproduces the same bytes. (The first encode of a
// curve kind resamples it onto the wire grid, so stability is asserted
// from the second encode on; closed forms must be byte-stable from the
// first.)
func TestEncodeDecodeEncodeStable(t *testing.T) {
	const c = 160.0
	for kind, f := range fixtureThreads(t, c) {
		t.Run(kind, func(t *testing.T) {
			in := &core.Instance{M: 1, C: c, Threads: []utility.Func{f}}
			w1 := encodeBytes(t, in)
			in2, err := Decode(bytes.NewReader(w1))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			w2 := encodeBytes(t, in2)
			in3, err := Decode(bytes.NewReader(w2))
			if err != nil {
				t.Fatalf("second decode: %v", err)
			}
			w3 := encodeBytes(t, in3)
			if !bytes.Equal(w2, w3) {
				t.Errorf("wire format not stable after one round trip:\n%s\nvs\n%s", w2, w3)
			}
			closedForm := kind != "piecewise" && kind != "sampled"
			if closedForm && !bytes.Equal(w1, w2) {
				t.Errorf("closed form re-encoded differently:\n%s\nvs\n%s", w1, w2)
			}
			// Values survive the trip everywhere, not just at knots.
			for x := 0.0; x <= c; x += c / 64 {
				a, b := f.Value(x), in2.Threads[0].Value(x)
				tol := 1e-12 * (1 + math.Abs(a))
				if !closedForm {
					tol = 1e-6 * (1 + math.Abs(a)) // grid resampling noise
				}
				if math.Abs(a-b) > tol {
					t.Fatalf("value drifted at x=%v: %v vs %v", x, a, b)
				}
			}
		})
	}
}

// TestDecodedThreadsImplementDerivInverter pins the water-filling fast
// path across serialization: every kind the wire format can carry must
// decode to a utility that still satisfies utility.DerivInverter.
// Losing the interface (e.g. by decoding Sampled into a generic
// wrapper) would silently put every deserialized instance back on the
// ~50x slower bisection path.
func TestDecodedThreadsImplementDerivInverter(t *testing.T) {
	const c = 160.0
	fixtures := fixtureThreads(t, c)
	in := &core.Instance{M: 1, C: c}
	kinds := make([]string, 0, len(fixtures))
	for kind, f := range fixtures {
		kinds = append(kinds, kind)
		in.Threads = append(in.Threads, f)
	}
	out, err := Decode(bytes.NewReader(encodeBytes(t, in)))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range out.Threads {
		if _, ok := f.(utility.DerivInverter); !ok {
			t.Errorf("decoded %s (%T) lost the DerivInverter fast path", kinds[i], f)
		}
	}
}

// refInverseDeriv is the definitional answer: the largest x in
// [0, Cap()] with Deriv(x) >= lambda, found by bisection on the
// nonincreasing derivative (independent of the fast paths under test).
func refInverseDeriv(f utility.Func, lambda float64) float64 {
	c := f.Cap()
	if f.Deriv(0) < lambda {
		return 0
	}
	if f.Deriv(c) >= lambda {
		return c
	}
	lo, hi := 0.0, c
	for i := 0; i < 200 && hi-lo > 1e-12; i++ {
		mid := 0.5 * (lo + hi)
		if f.Deriv(mid) >= lambda {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// TestInverseDerivConsistentAfterDecode checks fast-path fidelity: for
// each decoded thread, InverseDeriv must agree with bisection on that
// same decoded curve across the useful lambda range. This is the
// property the λ-bisection allocator relies on — a decoded curve whose
// closed-form inverter disagrees with its own derivative would
// misallocate silently.
func TestInverseDerivConsistentAfterDecode(t *testing.T) {
	const c = 160.0
	for kind, f := range fixtureThreads(t, c) {
		t.Run(kind, func(t *testing.T) {
			in := &core.Instance{M: 1, C: c, Threads: []utility.Func{f}}
			out, err := Decode(bytes.NewReader(encodeBytes(t, in)))
			if err != nil {
				t.Fatal(err)
			}
			g := out.Threads[0]
			inv, ok := g.(utility.DerivInverter)
			if !ok {
				t.Fatalf("decoded %s (%T) is not a DerivInverter", kind, g)
			}
			d0 := g.Deriv(0)
			if d0 <= 0 {
				t.Fatalf("decoded %s has nonpositive initial derivative %v", kind, d0)
			}
			// Sweep lambda from above the initial slope down to near 0,
			// hitting plateaus and knot slopes in between.
			for i := 0; i <= 40; i++ {
				lambda := d0 * 1.25 * float64(40-i) / 40
				if lambda == 0 {
					lambda = 1e-9 * d0
				}
				got := inv.InverseDeriv(lambda)
				want := refInverseDeriv(g, lambda)
				if got < 0 || got > c {
					t.Fatalf("lambda=%v: InverseDeriv out of domain: %v", lambda, got)
				}
				// Piecewise-constant derivatives make the preimage a
				// plateau edge; compare the definitional property rather
				// than demanding identical x when both points satisfy it.
				if math.Abs(got-want) > 1e-6*c {
					dGot, dWant := g.Deriv(got), g.Deriv(want)
					if math.Abs(dGot-dWant) > 1e-9*(1+d0) {
						t.Errorf("lambda=%v: InverseDeriv=%v (deriv %v) vs bisection %v (deriv %v)",
							lambda, got, dGot, want, dWant)
					}
				}
			}
		})
	}
}

// TestSampledInverterSurvivesGeneratorTrip mirrors how instances reach
// the solver in practice: the workload generator emits PCHIP-sampled
// curves, aagen writes them, aasolve/aaserve read them back. The
// decoded curve's inverter must agree with its own derivative just as
// the original's does.
func TestSampledInverterSurvivesGeneratorTrip(t *testing.T) {
	const c = 1000.0
	xs := []float64{0, 50, 125, 250, 500, 750, 1000}
	ys := []float64{0, 18, 31, 47, 66, 78, 85}
	orig, err := utility.NewSampled(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	in := &core.Instance{M: 1, C: c, Threads: []utility.Func{orig}}
	out, err := Decode(bytes.NewReader(encodeBytes(t, in)))
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := out.Threads[0].(*utility.Sampled)
	if !ok {
		t.Fatalf("sampled decoded as %T", out.Threads[0])
	}
	d0 := dec.Deriv(0)
	for i := 1; i <= 30; i++ {
		lambda := d0 * float64(i) / 30
		x := dec.InverseDeriv(lambda)
		// Definitional check on the decoded curve: Deriv(x) >= lambda
		// (within noise) and any point meaningfully right of x is below.
		if x > 0 && dec.Deriv(math.Nextafter(x, 0)) < lambda-1e-9*(1+d0) {
			t.Errorf("lambda=%v: Deriv(%v)=%v below lambda", lambda, x, dec.Deriv(x))
		}
		if x < c {
			beyond := math.Min(c, x+1e-6*c)
			if dec.Deriv(beyond) >= lambda+1e-9*(1+d0) && beyond > x {
				t.Errorf("lambda=%v: x=%v not maximal, Deriv(%v)=%v", lambda, x, beyond, dec.Deriv(beyond))
			}
		}
	}
}
