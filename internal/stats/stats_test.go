package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev with n−1 denominator: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty: %+v", s)
	}
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.Stddev != 0 || s.Stderr() != 0 {
		t.Errorf("single: %+v", s)
	}
}

func TestStderrAndCI(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	wantSE := s.Stddev / math.Sqrt(10)
	if math.Abs(s.Stderr()-wantSE) > 1e-12 {
		t.Errorf("Stderr = %v, want %v", s.Stderr(), wantSE)
	}
	if math.Abs(s.CI95()-1.96*wantSE) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), 1.96*wantSE)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {2, 5},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("median of {0,10} = %v, want 5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{2, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %v, want 0", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestRatioOfMeans(t *testing.T) {
	if got := RatioOfMeans([]float64{2, 4}, []float64{1, 1}); got != 3 {
		t.Errorf("RatioOfMeans = %v, want 3", got)
	}
	if got := RatioOfMeans([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("zero denominator = %v, want 0", got)
	}
}

// Property: Mean lies within [Min, Max]; stddev is nonnegative.
func TestSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological draws
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
