package serveutil

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ServeConfig configures ListenAndServe.
type ServeConfig struct {
	// Name prefixes the lifecycle lines on Stderr ("<name>: listening
	// on http://ADDR", "<name>: <sig>, draining").
	Name string
	// Addr is the TCP listen address; ":0" binds an ephemeral port.
	Addr string
	// Handler serves the requests.
	Handler http.Handler
	// Stderr receives the lifecycle lines; scripts parse the listening
	// line for the bound address.
	Stderr io.Writer
	// Ready, when non-nil, receives the bound address once the listener
	// is up (tests use it instead of parsing Stderr).
	Ready chan<- string
	// Health, when non-nil, has StartDrain called at the instant a
	// shutdown signal arrives — before the drain grace and long before
	// the listener closes — so /readyz flips while the node still
	// answers.
	Health *Health
	// DrainGrace holds the listener open (readiness already 503) for
	// this long after the shutdown signal, giving probers a window to
	// observe the flip and stop routing here before in-flight draining
	// begins. 0 drains immediately (the single-node behavior).
	DrainGrace time.Duration
	// ShutdownTimeout bounds the in-flight drain; <= 0 means 10s.
	ShutdownTimeout time.Duration
}

// ListenAndServe runs the shared serve lifecycle: bind, announce,
// serve until SIGINT/SIGTERM, then drain — flip readiness, hold the
// drain grace, and http.Server.Shutdown (which closes the listener
// immediately and waits for in-flight requests). The grace window
// exists because Shutdown's listener close is instantaneous: without
// it, a prober would learn about the drain only from connection
// failures rather than a clean 503.
func ListenAndServe(cfg ServeConfig) error {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: cfg.Handler}
	fmt.Fprintf(cfg.Stderr, "%s: listening on http://%s\n", cfg.Name, ln.Addr())
	if cfg.Ready != nil {
		cfg.Ready <- ln.Addr().String()
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(cfg.Stderr, "%s: %v, draining\n", cfg.Name, sig)
		if cfg.Health != nil {
			cfg.Health.StartDrain()
		}
		if cfg.DrainGrace > 0 {
			select {
			case <-time.After(cfg.DrainGrace):
			case err := <-serveErr:
				// The server died during the grace window; nothing left
				// to drain.
				return err
			}
		}
		timeout := cfg.ShutdownTimeout
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-serveErr // http.ErrServerClosed
		return nil
	}
}
