package main

import (
	"os"
	"strings"
	"testing"
)

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkSolve-8", "BenchmarkSolve", 8},
		{"BenchmarkSolve/fig1a-uniform/n=10000-4", "BenchmarkSolve/fig1a-uniform/n=10000", 4},
		{"BenchmarkSolve", "BenchmarkSolve", 0},
		{"BenchmarkAssign2Warm/n=10000", "BenchmarkAssign2Warm/n=10000", 0},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}

// errsAbout filters assertSpeedups output down to the lines that
// mention the million-thread tier.
func errsAbout1M(errs []string) []string {
	var out []string
	for _, e := range errs {
		if strings.Contains(e, "1M") {
			out = append(out, e)
		}
	}
	return out
}

// TestMillionFloorConditional: the n=10⁶ parallel-speedup floor arms
// only when the snapshot carries the benchmark pair AND ≥4 cores; a
// half-present pair is malformed regardless of core count.
func TestMillionFloorConditional(t *testing.T) {
	snap := func(procs int, serial, parallel float64) *Snapshot {
		s := &Snapshot{Procs: procs, Benchmarks: map[string]Bench{}}
		if serial > 0 {
			s.Benchmarks["BenchmarkAssign2Serial1M"] = Bench{NsPerOp: serial}
		}
		if parallel > 0 {
			s.Benchmarks["BenchmarkAssign2Parallel1M"] = Bench{NsPerOp: parallel}
		}
		return s
	}
	for _, tc := range []struct {
		name    string
		cur     *Snapshot
		wantErr bool
	}{
		{"absent pair, no error", snap(8, 0, 0), false},
		{"half pair is malformed", snap(1, 1e9, 0), true},
		{"small machine records without arming", snap(2, 1e9, 9e8), false},
		{"big machine, floor met", snap(8, 1e9, 4e8), false},
		{"big machine, floor missed", snap(8, 1e9, 9e8), true},
	} {
		got := errsAbout1M(assertSpeedups(tc.cur))
		if (len(got) > 0) != tc.wantErr {
			t.Errorf("%s: 1M errors = %v, wantErr=%v", tc.name, got, tc.wantErr)
		}
	}
}

// TestParseBenchTextProcs: the emitted snapshot records the GOMAXPROCS
// suffix even though the benchmark keys have it stripped.
func TestParseBenchTextProcs(t *testing.T) {
	tmp := t.TempDir() + "/bench.txt"
	text := "goos: linux\nBenchmarkSolve-6   \t 100\t 12345 ns/op\t 0 allocs/op\nPASS\n"
	if err := os.WriteFile(tmp, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tmp)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := parseBenchText(f, "test")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Procs != 6 {
		t.Fatalf("Procs = %d, want 6", snap.Procs)
	}
	if b, ok := snap.Benchmarks["BenchmarkSolve"]; !ok || b.NsPerOp != 12345 {
		t.Fatalf("benchmarks = %+v", snap.Benchmarks)
	}
}
