package cachesim

import "aa/internal/rng"

// TraceGen produces a synthetic address stream for one thread. All
// generators are deterministic in the supplied generator, so profiles
// and co-runs are reproducible.
type TraceGen interface {
	// Generate returns n addresses.
	Generate(n int, r *rng.Rand) []uint64
	// Name identifies the workload in reports.
	Name() string
}

// WorkingSet models a thread that touches Lines distinct cache lines
// uniformly at random — the classic shape whose hit-rate curve rises
// smoothly and saturates once the working set fits, giving a concave
// miss-rate curve.
type WorkingSet struct {
	Lines    int    // distinct lines in the working set
	LineSize int    // bytes per line (must match the cache config)
	Base     uint64 // base address, to separate threads' footprints
}

// Generate implements TraceGen.
func (w WorkingSet) Generate(n int, r *rng.Rand) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = w.Base + uint64(r.Intn(w.Lines))*uint64(w.LineSize)
	}
	return out
}

// Name implements TraceGen.
func (w WorkingSet) Name() string { return "workingset" }

// ZipfReuse models skewed reuse: line popularity follows a Zipf law, so
// a few hot lines dominate. Small partitions already capture most hits —
// a sharply saturating, strongly concave curve.
type ZipfReuse struct {
	Lines    int     // distinct lines
	S        float64 // Zipf exponent (larger = more skew)
	LineSize int
	Base     uint64
}

// Generate implements TraceGen.
func (z ZipfReuse) Generate(n int, r *rng.Rand) []uint64 {
	zipf := rng.NewZipf(z.S, z.Lines)
	out := make([]uint64, n)
	for i := range out {
		rank := zipf.Sample(r) - 1
		out[i] = z.Base + uint64(rank)*uint64(z.LineSize)
	}
	return out
}

// Name implements TraceGen.
func (z ZipfReuse) Name() string { return "zipf" }

// Stream models a streaming thread that never reuses a line: every
// access misses regardless of partition size. Cache allocated to such a
// thread is wasted — exactly the thread AA should starve.
type Stream struct {
	LineSize int
	Base     uint64
}

// Generate implements TraceGen.
func (s Stream) Generate(n int, r *rng.Rand) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.Base + uint64(i)*uint64(s.LineSize)
	}
	return out
}

// Name implements TraceGen.
func (s Stream) Name() string { return "stream" }

// SequentialLoop cycles through Lines lines in order — the LRU
// pathological case: with fewer ways than needed the hit rate is ~0,
// then jumps to ~1 once the loop fits. Its raw profile is convex (a
// cliff), exercising the concave-envelope machinery.
type SequentialLoop struct {
	Lines    int
	LineSize int
	Base     uint64
}

// Generate implements TraceGen.
func (l SequentialLoop) Generate(n int, r *rng.Rand) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = l.Base + uint64(i%l.Lines)*uint64(l.LineSize)
	}
	return out
}

// Name implements TraceGen.
func (l SequentialLoop) Name() string { return "loop" }

// Mixture interleaves two generators with probability P of drawing the
// next address from A — e.g. a hot working set plus streaming traffic.
type Mixture struct {
	A, B TraceGen
	P    float64 // probability of A
}

// Generate implements TraceGen.
func (m Mixture) Generate(n int, r *rng.Rand) []uint64 {
	a := m.A.Generate(n, r)
	b := m.B.Generate(n, r)
	out := make([]uint64, n)
	for i := range out {
		if r.Float64() < m.P {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// Name implements TraceGen.
func (m Mixture) Name() string { return "mix(" + m.A.Name() + "," + m.B.Name() + ")" }
