package main

// Service-level cache tests: a repeated /solve of the same instance is
// served from the cache byte-identically, and ?cache=bypass forces a
// fresh solve without touching the cache.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"aa/internal/cache"
	"aa/internal/engine"
)

func newCachedTestServer(t *testing.T) (*httptest.Server, cache.Cache) {
	t.Helper()
	c, err := cache.New(cache.Config{Mode: cache.ModeMemory, Size: 64})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Backend: "a2", Workers: 2, Cache: c, WarmK: 8})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer((&server{eng: eng, backend: "a2"}).mux())
	t.Cleanup(ts.Close)
	return ts, c
}

func TestSolveCacheHitByteIdentical(t *testing.T) {
	ts, c := newCachedTestServer(t)
	resp1, body1 := postSolve(t, ts, "/solve", demoInstance)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first solve: %d: %s", resp1.StatusCode, body1)
	}
	resp2, body2 := postSolve(t, ts, "/solve", demoInstance)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second solve: %d: %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached response differs from populating one:\n%s\nvs\n%s", body1, body2)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("cache stats %+v, want 1 hit / 1 miss / 1 store", st)
	}
}

func TestSolveCacheBypass(t *testing.T) {
	ts, c := newCachedTestServer(t)
	for i := 0; i < 2; i++ {
		resp, body := postSolve(t, ts, "/solve?cache=bypass", demoInstance)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bypass solve %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	st := c.Stats()
	if st.Bypasses != 2 || st.Hits != 0 || st.Misses != 0 || st.Stores != 0 {
		t.Fatalf("bypassed requests touched the cache: %+v", st)
	}
	// A normal request afterwards misses — the bypasses stored nothing.
	if resp, body := postSolve(t, ts, "/solve", demoInstance); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-bypass solve: %d: %s", resp.StatusCode, body)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats after bypasses + one normal solve: %+v", st)
	}
}
