//go:build !aadebug

package alloc

// debugChecks gates assertions on paths that are unreachable by
// construction (see debug_on.go). Off in normal builds so the checks cost
// nothing; `go test -tags aadebug ./...` turns them into panics.
const debugChecks = false
