package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync/atomic"
)

// Trace identity. Spans carry W3C Trace Context identifiers so that the
// JSONL trace of one process links into the traces of every process a
// request crossed: a 128-bit trace ID shared by the whole request tree
// and a 64-bit span ID per span, serialized on the wire as the
// `traceparent` header (https://www.w3.org/TR/trace-context/).
//
// ID generation must be cheap (it runs once per span while tracing is
// on) and race-safe. A single atomic counter seeded from crypto/rand
// and finalized through the splitmix64 mixer gives both: every Add is
// one atomic instruction, the mixer is a bijection on uint64, so IDs
// never collide within a process, and the random seed makes collisions
// across processes as unlikely as random 64-bit draws.

// TraceID is the 128-bit identifier shared by every span of one
// request tree. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether t is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-digit lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the 64-bit identifier of one span. The zero value means
// "no span" (a root span has a zero parent).
type SpanID [8]byte

// IsZero reports whether s is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-digit lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// FlagSampled is the traceparent trace-flags bit for "the caller
// recorded this trace". Locally started roots always set it.
const FlagSampled = 0x01

// SpanContext identifies one span within one trace — the part of a
// span that crosses process boundaries. It is what context.Context
// carries between StartSpanCtx calls and what traceparent encodes on
// the wire.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether the context names a real span (nonzero trace
// and span IDs).
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Sampled reports the sampled trace-flags bit.
func (sc SpanContext) Sampled() bool { return sc.Flags&FlagSampled != 0 }

// Traceparent renders the context in the W3C traceparent format,
// version 00: "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>".
// The zero context renders as "" (nothing to propagate).
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.SpanID[:])
	b[52] = '-'
	hex.Encode(b[53:55], []byte{sc.Flags})
	return string(b[:])
}

// Traceparent parse errors.
var (
	ErrTraceparent = errors.New("telemetry: malformed traceparent")
)

// isLowerHex reports whether s is entirely lowercase hex digits — the
// W3C grammar requires lowercase; uppercase MUST be rejected.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// version 00 exactly, and forward-compatibly accepts higher versions
// when their first 55 bytes parse as version-00 fields followed by a
// dash (per the spec's versioning rules). The all-zero trace or span
// ID, the reserved version ff, and any uppercase hex are rejected.
func ParseTraceparent(s string) (SpanContext, error) {
	if len(s) < 55 {
		return SpanContext{}, ErrTraceparent
	}
	ver := s[0:2]
	if !isLowerHex(ver) || ver == "ff" {
		return SpanContext{}, ErrTraceparent
	}
	if ver == "00" {
		if len(s) != 55 {
			return SpanContext{}, ErrTraceparent
		}
	} else if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, ErrTraceparent
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, ErrTraceparent
	}
	traceHex, spanHex, flagsHex := s[3:35], s[36:52], s[53:55]
	if !isLowerHex(traceHex) || !isLowerHex(spanHex) || !isLowerHex(flagsHex) {
		return SpanContext{}, ErrTraceparent
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(traceHex)); err != nil {
		return SpanContext{}, ErrTraceparent
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(spanHex)); err != nil {
		return SpanContext{}, ErrTraceparent
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(flagsHex)); err != nil {
		return SpanContext{}, ErrTraceparent
	}
	sc.Flags = fb[0]
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return SpanContext{}, ErrTraceparent
	}
	return sc, nil
}

// idState is the process-wide ID sequence, seeded once from
// crypto/rand so different processes draw from different streams.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to a fixed seed; IDs stay unique within the process.
		b = [8]byte{0x9e, 0x37, 0x79, 0xb9, 0x7f, 0x4a, 0x7c, 0x15}
	}
	idState.Store(binary.LittleEndian.Uint64(b[:]))
}

// nextID draws the next nonzero 64-bit ID: one atomic add on the
// Weyl-sequence state, finalized through the splitmix64 mixer.
func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// NewSpanID returns a fresh process-unique span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}

// NewTraceID returns a fresh trace ID.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], nextID())
	binary.BigEndian.PutUint64(t[8:], nextID())
	return t
}

// NewRoot returns a fresh root span context: new trace, new span, the
// sampled flag set. Use it to mint a trace without emitting a span
// (cliutil's process root goes through StartSpan instead).
func NewRoot() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
}

// procParent is the process-wide default parent: spans started without
// an explicit parent (StartSpan, the solver-stage EmitSpan sites)
// become its children instead of isolated roots. cliutil installs the
// per-invocation "process" root span here, which is what links every
// span of a CLI run into one trace with no per-binary changes.
var procParent atomic.Pointer[SpanContext]

// SetProcessParent installs sc as the process-wide default span
// parent; an invalid (zero) sc clears it.
func SetProcessParent(sc SpanContext) {
	if !sc.Valid() {
		procParent.Store(nil)
		return
	}
	procParent.Store(&sc)
}

// ProcessParent returns the installed process-wide default parent, or
// the zero SpanContext when none is installed.
func ProcessParent() SpanContext {
	if p := procParent.Load(); p != nil {
		return *p
	}
	return SpanContext{}
}

// childOf derives a new span identity under parent: same trace and
// flags, fresh span ID. An invalid parent falls back to the process
// parent, and with neither installed the span becomes the root of a
// fresh trace.
func childOf(parent SpanContext) (sc SpanContext, parentID SpanID) {
	if !parent.Valid() {
		parent = ProcessParent()
	}
	if parent.Valid() {
		return SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID(), Flags: parent.Flags}, parent.SpanID
	}
	return NewRoot(), SpanID{}
}
