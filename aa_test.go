package aa

import (
	"math"
	"testing"
)

func exampleInstance() *Instance {
	return &Instance{
		M: 2,
		C: 100,
		Threads: []Utility{
			Log{Scale: 5, Shift: 10, C: 100},
			Power{Scale: 2, Beta: 0.5, C: 100},
			SatExp{Scale: 3, K: 20, C: 100},
			Linear{Slope: 0.02, C: 100},
		},
	}
}

func TestSolveEndToEnd(t *testing.T) {
	in := exampleInstance()
	sol := Solve(in)
	if err := sol.Validate(in, 1e-9); err != nil {
		t.Fatalf("Solve produced infeasible assignment: %v", err)
	}
	so := SuperOptimal(in)
	u := sol.Utility(in)
	if u < Alpha*so.Total {
		t.Errorf("Solve utility %v below α·F̂ = %v", u, Alpha*so.Total)
	}
	if u > so.Total*(1+1e-9) {
		t.Errorf("Solve utility %v exceeds upper bound %v", u, so.Total)
	}
}

func TestSolveAlgorithm1EndToEnd(t *testing.T) {
	in := exampleInstance()
	sol := SolveAlgorithm1(in)
	if err := sol.Validate(in, 1e-9); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	so := SuperOptimal(in)
	if u := sol.Utility(in); u < Alpha*so.Total {
		t.Errorf("Algorithm 1 utility %v below guarantee", u)
	}
}

func TestSolveExactDominates(t *testing.T) {
	in := exampleInstance()
	exact, err := SolveExact(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Utility(in) < Solve(in).Utility(in)-1e-9 {
		t.Error("exact solution worse than approximation")
	}
}

func TestHeuristicsExported(t *testing.T) {
	in := exampleInstance()
	r := NewRand(3)
	for _, a := range []Assignment{
		HeuristicUU(in),
		HeuristicUR(in, r),
		HeuristicRU(in, r),
		HeuristicRR(in, r),
		FixedRequest(in, []float64{30, 30, 30, 30}),
	} {
		if err := a.Validate(in, 1e-9); err != nil {
			t.Errorf("heuristic infeasible: %v", err)
		}
	}
}

func TestUtilityConstructors(t *testing.T) {
	pl, err := NewPiecewiseLinear([]float64{0, 50, 100}, []float64{0, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateUtility(pl, 500, 1e-9); err != nil {
		t.Error(err)
	}
	s, err := NewSampled([]float64{0, 50, 100}, []float64{0, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Value(100); math.Abs(got-10) > 1e-9 {
		t.Errorf("sampled Value(100) = %v, want 10", got)
	}
}

func TestGenerateAndExperimentFacade(t *testing.T) {
	r := NewRand(5)
	in, err := GenerateInstance(UniformDist{Lo: 0, Hi: 1}, 4, 500, 12, r)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 12 {
		t.Errorf("n = %d, want 12", in.N())
	}
	specs := Figures(5)
	if len(specs) != 7 {
		t.Fatalf("got %d figures, want 7", len(specs))
	}
	spec := specs[0]
	spec.Sweep = spec.Sweep[:1]
	res, err := RunExperiment(spec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Errorf("got %d points", len(res.Points))
	}
}

func TestAlphaConstant(t *testing.T) {
	if math.Abs(Alpha-2*(math.Sqrt2-1)) > 1e-15 {
		t.Errorf("Alpha = %v", Alpha)
	}
}

func TestImproveFacade(t *testing.T) {
	in := exampleInstance()
	sol := Solve(in)
	improved, moves := Improve(in, sol, 0)
	if err := improved.Validate(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	if improved.Utility(in) < sol.Utility(in)-1e-9 {
		t.Errorf("Improve decreased utility (%d moves)", moves)
	}
}

func TestSolveGreedyMarginalFacade(t *testing.T) {
	in := exampleInstance()
	a := SolveGreedyMarginal(in)
	if err := a.Validate(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	if a.Utility(in) > SuperOptimal(in).Total*(1+1e-9) {
		t.Error("greedy-marginal exceeded the bound")
	}
}
