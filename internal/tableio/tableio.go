// Package tableio renders experiment series as aligned ASCII tables and
// CSV. The benchmark harness reports every paper figure as a table (the
// output medium is text), so this package is the terminal-facing half of
// the evaluation pipeline.
package tableio

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-oriented table: one header per column and a
// list of rows of equal width.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates an empty table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. It panics if the width differs from the headers —
// that is a programming error in the harness, not a data condition.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("tableio: row has %d cells, table has %d columns",
			len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a row of floats, formatting the first value with
// labelFmt (e.g. "%.0f" for an integer sweep parameter) and the rest with
// valueFmt (e.g. "%.4f").
func (t *Table) AddFloatRow(labelFmt, valueFmt string, values ...float64) {
	cells := make([]string, len(values))
	for i, v := range values {
		f := valueFmt
		if i == 0 {
			f = labelFmt
		}
		cells[i] = fmt.Sprintf(f, v)
	}
	t.AddRow(cells...)
}

// WriteASCII renders the table with aligned columns to w.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells that
// contain commas, quotes or newlines) to w. The title is not emitted.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(cell string) string {
	if !strings.ContainsAny(cell, ",\"\n") {
		return cell
	}
	return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
}

// String renders the ASCII form.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteASCII(&b)
	return b.String()
}

// FormatFloat renders a float compactly: integers without a decimal
// point, otherwise with the given precision.
func FormatFloat(v float64, prec int) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}
