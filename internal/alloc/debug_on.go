//go:build aadebug

package alloc

// debugChecks is enabled by the aadebug build tag: invariants that are
// unreachable by construction panic instead of being silently tolerated,
// so a future edit that breaks one fails loudly under
// `go test -tags aadebug ./...`.
const debugChecks = true
