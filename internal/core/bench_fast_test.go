package core_test

// The benchmark matrix behind scripts/bench_regress.sh: solve, superopt,
// assign1 and assign2 across the six figure workloads at n ∈ {100, 1k,
// 10k} (m = 8, C = 1000, the paper's §VII configuration), plus the
// retained reference implementations on the uniform workload — the
// "before" side of the committed BENCH_*.json speedup evidence. All
// benches report allocs/op; the workspace-driven ones are expected to
// stay at zero in steady state.

import (
	"fmt"
	"math"
	"testing"

	"aa/internal/alloc"
	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
	"aa/internal/utility"
)

var benchSizes = []int{100, 1000, 10000}

// calibrateSink defeats dead-code elimination in BenchmarkCalibrate.
var calibrateSink float64

// BenchmarkCalibrate is a fixed floating-point workload with no inputs
// and no allocations. cmd/benchgate divides its ns/op in the current run
// by the baseline's to estimate how fast this machine is relative to the
// one that produced the baseline, and rescales every ns/op gate by that
// factor — so the committed baseline stays meaningful across CI runners
// of different speeds.
func BenchmarkCalibrate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := 0.0
		for j := 1; j <= 4096; j++ {
			s += math.Sqrt(float64(j))
		}
		calibrateSink = s
	}
}

func benchInstance(b *testing.B, dist gen.Dist, n int) *core.Instance {
	b.Helper()
	in, err := gen.Instance(dist, 8, 1000, n, rng.New(uint64(4242+n)))
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// forEachWorkload runs fn for every (figure workload, n) pair.
func forEachWorkload(b *testing.B, fn func(b *testing.B, in *core.Instance)) {
	for _, w := range check.FigureWorkloads() {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/n=%d", w.Name, n), func(b *testing.B) {
				fn(b, benchInstance(b, w.Dist, n))
			})
		}
	}
}

func BenchmarkSuperOptimal(b *testing.B) {
	forEachWorkload(b, func(b *testing.B, in *core.Instance) {
		w := core.NewWorkspace()
		w.SuperOptimal(in) // size the workspace before counting allocs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.SuperOptimal(in)
		}
	})
}

func BenchmarkAssign1(b *testing.B) {
	forEachWorkload(b, func(b *testing.B, in *core.Instance) {
		w := core.NewWorkspace()
		so := w.SuperOptimal(in)
		gs := w.Linearize(in, so)
		var out core.Assignment
		w.Assign1Linearized(in, gs, &out) // size the workspace before counting allocs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Assign1Linearized(in, gs, &out)
		}
	})
}

func BenchmarkAssign2(b *testing.B) {
	forEachWorkload(b, func(b *testing.B, in *core.Instance) {
		w := core.NewWorkspace()
		so := w.SuperOptimal(in)
		gs := w.Linearize(in, so)
		var out core.Assignment
		w.Assign2Linearized(in, gs, &out) // size the workspace before counting allocs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Assign2Linearized(in, gs, &out)
		}
	})
}

// BenchmarkSolve is the full steady-state pipeline — super-optimal bound,
// linearization, Algorithm 2 — through one reused workspace, the hot loop
// a solverpool worker runs per request.
func BenchmarkSolve(b *testing.B) {
	forEachWorkload(b, func(b *testing.B, in *core.Instance) {
		w := core.NewWorkspace()
		var out core.Assignment
		{ // size the workspace before counting allocs
			so := w.SuperOptimal(in)
			gs := w.Linearize(in, so)
			w.Assign2Linearized(in, gs, &out)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			so := w.SuperOptimal(in)
			gs := w.Linearize(in, so)
			w.Assign2Linearized(in, gs, &out)
		}
	})
}

// --- Reference ("before") implementations, uniform workload only --------

func BenchmarkAssign1Ref(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("fig1a-uniform/n=%d", n), func(b *testing.B) {
			in := benchInstance(b, gen.DefaultUniform, n)
			so := core.SuperOptimal(in)
			gs := core.Linearize(in, so)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Assign1LinearizedRef(in, gs)
			}
		})
	}
}

// derivOnly hides a utility's DerivInverter fast path, forcing the
// generic derivative bisection — how every λ-probe evaluated sampled
// curves before the closed-form PCHIP inverse.
type derivOnly struct{ f utility.Func }

func (d derivOnly) Value(x float64) float64 { return d.f.Value(x) }
func (d derivOnly) Deriv(x float64) float64 { return d.f.Deriv(x) }
func (d derivOnly) Cap() float64            { return d.f.Cap() }

// BenchmarkSuperOptimalRef is the pre-fast-path super-optimal bound: the
// unpruned ConcaveRef water-filling with bisection-based inverse
// derivatives (gen threads have cap = C, so the capping wrapper the real
// pipeline adds is a no-op and is omitted).
func BenchmarkSuperOptimalRef(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("fig1a-uniform/n=%d", n), func(b *testing.B) {
			in := benchInstance(b, gen.DefaultUniform, n)
			fs := make([]utility.Func, in.N())
			for i, f := range in.Threads {
				fs[i] = derivOnly{f: f}
			}
			budget := float64(in.M) * in.C
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alloc.ConcaveRef(fs, budget)
			}
		})
	}
}
