package engine

// Cache-path benchmarks at the ISSUE's headline operating point:
// n = 10⁴ threads, k = 8 changed. Three rungs of the same solve —
// cold Assign2 through the pipeline, warm-start repair from a cached
// neighbor, and an exact cache hit — measured in one snapshot so
// benchgate can assert the warm-start ≥ 2× and exact-hit speedup
// floors without machine calibration.

import (
	"context"
	"testing"

	"aa/internal/cache"
	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

// benchCachePair returns a 10⁴-thread instance plus the same instance
// with its last 8 threads swapped for in-distribution replacements —
// the near-miss pair the warm-start path repairs.
func benchCachePair(b *testing.B) (base, churned *core.Instance) {
	b.Helper()
	r := rng.New(99)
	in, err := gen.Instance(gen.DefaultUniform, 8, 1000, 10000, r.Split(0))
	if err != nil {
		b.Fatal(err)
	}
	donor, err := gen.Instance(gen.DefaultUniform, 8, 1000, 10000, r.Split(1))
	if err != nil {
		b.Fatal(err)
	}
	ch := &core.Instance{M: in.M, C: in.C, Threads: append(in.Threads[:0:0], in.Threads...)}
	for i := 0; i < 8; i++ {
		ch.Threads[len(ch.Threads)-1-i] = donor.Threads[i]
	}
	return in, ch
}

func benchCacheKey(b *testing.B, in *core.Instance) cache.Key {
	b.Helper()
	canon, err := cache.Canonicalize(in)
	if err != nil {
		b.Fatal(err)
	}
	return cache.RequestKey(canon.Fingerprint(), cache.Params{Backend: "assign2"})
}

func newBenchCache(b *testing.B) cache.Cache {
	b.Helper()
	c, err := cache.New(cache.Config{Mode: cache.ModeMemory, Size: 64})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkCacheColdSolve(b *testing.B) {
	b.Run("n=10000", func(b *testing.B) {
		_, churned := benchCachePair(b)
		eng := New(Options{})
		defer eng.Close()
		ctx := context.Background()
		var resp Response
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.SolveInto(ctx, &Request{Instance: churned}, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCacheWarmStart(b *testing.B) {
	b.Run("n=10000", func(b *testing.B) {
		base, churned := benchCachePair(b)
		c := newBenchCache(b)
		eng := New(Options{Cache: c, WarmK: 8})
		defer eng.Close()
		ctx := context.Background()
		var resp Response
		if err := eng.SolveInto(ctx, &Request{Instance: base}, &resp); err != nil {
			b.Fatal(err)
		}
		churnedKey := benchCacheKey(b, churned)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Drop the exact entry so every iteration takes the warm
			// repair path, never the exact hit.
			c.Remove(churnedKey)
			if err := eng.SolveInto(ctx, &Request{Instance: churned}, &resp); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := c.Stats(); st.WarmStarts != uint64(b.N) {
			b.Fatalf("warm-started %d of %d solves (stats %+v)", st.WarmStarts, b.N, st)
		}
	})
}

func BenchmarkCacheExactHit(b *testing.B) {
	b.Run("n=10000", func(b *testing.B) {
		_, churned := benchCachePair(b)
		c := newBenchCache(b)
		eng := New(Options{Cache: c, WarmK: 8})
		defer eng.Close()
		ctx := context.Background()
		var resp Response
		if err := eng.SolveInto(ctx, &Request{Instance: churned}, &resp); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.SolveInto(ctx, &Request{Instance: churned}, &resp); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := c.Stats(); st.Hits != uint64(b.N) {
			b.Fatalf("hit on %d of %d solves (stats %+v)", st.Hits, b.N, st)
		}
	})
}
