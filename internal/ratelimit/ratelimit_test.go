package ratelimit

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic refill tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBucket(rate, burst float64) (*Bucket, *fakeClock) {
	clk := newFakeClock()
	b := NewBucket(rate, burst)
	b.setNow(clk.Now)
	return b, clk
}

func TestBucketStartsFullAndDrains(t *testing.T) {
	b, _ := newTestBucket(1, 3)
	if got := b.Tokens(); got != 3 {
		t.Fatalf("initial tokens = %v, want 3", got)
	}
	for i := 0; i < 3; i++ {
		ok, wait := b.Take()
		if !ok || wait != 0 {
			t.Fatalf("take %d: ok=%v wait=%v, want granted", i, ok, wait)
		}
	}
	ok, wait := b.Take()
	if ok {
		t.Fatal("take on empty bucket granted")
	}
	if wait <= 0 {
		t.Fatalf("empty-bucket wait = %v, want positive", wait)
	}
	if got := b.Tokens(); got != 0 {
		t.Fatalf("tokens after failed take = %v, want 0 (no charge)", got)
	}
}

// Property: with no intervening Take, the token level is non-decreasing
// as the clock advances by random steps (refill monotonicity), and never
// exceeds the burst ceiling.
func TestBucketRefillMonotonicAndCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rate := 0.1 + rng.Float64()*20
		burst := 1 + rng.Float64()*10
		b, clk := newTestBucket(rate, burst)
		// Drain to a random level first.
		for b.Tokens() >= 1 && rng.Intn(2) == 0 {
			b.Take()
		}
		prev := b.Tokens()
		for step := 0; step < 100; step++ {
			clk.Advance(time.Duration(rng.Int63n(int64(500 * time.Millisecond))))
			cur := b.Tokens()
			if cur < prev-1e-9 {
				t.Fatalf("trial %d step %d: tokens decreased %v -> %v without Take", trial, step, prev, cur)
			}
			if cur > burst+1e-9 {
				t.Fatalf("trial %d step %d: tokens %v exceed burst %v", trial, step, cur, burst)
			}
			prev = cur
		}
	}
}

// Property: Retry-After is honest — after advancing the clock by the
// returned wait, the same Take succeeds.
func TestBucketRetryAfterSufficient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rate := 0.5 + rng.Float64()*10
		burst := 1 + float64(rng.Intn(5))
		b, clk := newTestBucket(rate, burst)
		for {
			if ok, _ := b.Take(); !ok {
				break
			}
		}
		ok, wait := b.Take()
		if ok {
			t.Fatalf("trial %d: expected empty bucket", trial)
		}
		clk.Advance(wait + time.Millisecond)
		if ok, _ := b.Take(); !ok {
			t.Fatalf("trial %d: take still denied after waiting %v", trial, wait)
		}
	}
}

func TestBucketTakeNAllOrNothing(t *testing.T) {
	b, clk := newTestBucket(2, 5)
	ok, _ := b.TakeN(4)
	if !ok {
		t.Fatal("TakeN(4) from full bucket of 5 denied")
	}
	ok, wait := b.TakeN(3)
	if ok {
		t.Fatal("TakeN(3) with 1 token granted")
	}
	if got := b.Tokens(); got != 1 {
		t.Fatalf("failed TakeN charged the bucket: tokens = %v, want 1", got)
	}
	// Deficit is 2 tokens at 2/s => 1s.
	if wait < 900*time.Millisecond || wait > 1100*time.Millisecond {
		t.Fatalf("wait = %v, want ~1s", wait)
	}
	clk.Advance(wait + time.Millisecond)
	if ok, _ := b.TakeN(3); !ok {
		t.Fatal("TakeN(3) denied after refill window")
	}
	// Requests above burst can never succeed but must not wedge.
	ok, wait = b.TakeN(100)
	if ok {
		t.Fatal("TakeN above burst granted")
	}
	if wait <= 0 {
		t.Fatal("TakeN above burst returned non-positive wait")
	}
	if ok, _ := b.TakeN(0); !ok {
		t.Fatal("TakeN(0) should be a free grant")
	}
}

func TestBucketClampsBadConfig(t *testing.T) {
	for _, b := range []*Bucket{
		NewBucket(0, 0),
		NewBucket(-3, -1),
		NewBucket(math.NaN(), math.NaN()),
	} {
		if ok, _ := b.Take(); !ok {
			t.Fatal("clamped bucket should grant its single burst token")
		}
		if ok, _ := b.Take(); ok {
			t.Fatal("clamped bucket should be strict, not unlimited")
		}
	}
}

func TestBucketIgnoresClockRegression(t *testing.T) {
	b, clk := newTestBucket(1, 4)
	b.Take()
	b.Take()
	before := b.Tokens()
	clk.Advance(-time.Hour)
	if got := b.Tokens(); got < before-1e-9 || got > before+1e-9 {
		t.Fatalf("tokens changed across clock regression: %v -> %v", before, got)
	}
	// Clock resumes from the regressed point; refill works again.
	clk.Advance(time.Hour + 2*time.Second)
	if got := b.Tokens(); got < before+2-1e-9 {
		t.Fatalf("tokens = %v, want >= %v after 2s of refill", got, before+2)
	}
}

// Property (race-enabled): under concurrent Take against a live clock,
// tokens never go negative and total grants never exceed
// burst + rate·elapsed — the bucket cannot be over-granted by racing.
func TestBucketConcurrentTakeInvariants(t *testing.T) {
	const (
		rate  = 50.0
		burst = 10.0
		gor   = 8
		tries = 200
	)
	b := NewBucket(rate, burst)
	start := time.Now()
	var granted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < tries; i++ {
				ok, _ := b.Take()
				if ok {
					mu.Lock()
					granted++
					mu.Unlock()
				}
				if tok := b.Tokens(); tok < 0 {
					t.Errorf("negative tokens: %v", tok)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	// Generous slack: one extra second of refill covers scheduling skew.
	ceiling := burst + rate*(elapsed+1)
	if float64(granted) > ceiling {
		t.Fatalf("granted %d tokens in %.3fs, ceiling %.1f", granted, elapsed, ceiling)
	}
	if tok := b.Tokens(); tok < 0 || tok > burst {
		t.Fatalf("final tokens %v outside [0, %v]", tok, burst)
	}
}

func TestLimiterPerClientIsolation(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1, 2, 0)
	l.now = clk.Now
	for i := 0; i < 2; i++ {
		if ok, _ := l.Take("alice"); !ok {
			t.Fatalf("alice take %d denied", i)
		}
	}
	if ok, wait := l.Take("alice"); ok || wait <= 0 {
		t.Fatalf("alice over-burst: ok=%v wait=%v", ok, wait)
	}
	// A different client has its own untouched bucket.
	if ok, _ := l.Take("bob"); !ok {
		t.Fatal("bob's first take denied by alice's exhaustion")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	// After refill, alice is admitted again.
	clk.Advance(1100 * time.Millisecond)
	if ok, _ := l.Take("alice"); !ok {
		t.Fatal("alice denied after refill window")
	}
}

func TestLimiterSweepBoundsClients(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(100, 2, 8)
	l.now = clk.Now
	for i := 0; i < 100; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if ok, _ := l.Take(key); !ok {
			t.Fatalf("take for %q denied", key)
		}
		clk.Advance(50 * time.Millisecond) // all prior buckets refill to full
	}
	if l.Len() > 8+1 {
		t.Fatalf("Len = %d, want <= maxClients+1", l.Len())
	}
}

func TestLimiterSweepEvictsLRUWhenNoneFull(t *testing.T) {
	clk := newFakeClock()
	// Rate so slow nothing refills during the test: sweep must fall back
	// to LRU eviction instead of finding full buckets.
	l := NewLimiter(0.001, 1, 3)
	l.now = clk.Now
	keys := []string{"k1", "k2", "k3", "k4"}
	for _, k := range keys {
		l.Take(k) // drains each bucket to 0
		clk.Advance(time.Millisecond)
	}
	if l.Len() > 3 {
		t.Fatalf("Len = %d, want <= 3 after LRU sweep", l.Len())
	}
}

func TestLimiterConcurrentTake(t *testing.T) {
	l := NewLimiter(1000, 50, 16)
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d", "e"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Take(keys[(g+i)%len(keys)])
			}
		}(g)
	}
	wg.Wait()
	if l.Len() > 16 {
		t.Fatalf("Len = %d, want <= 16", l.Len())
	}
}
