package core

import (
	"math"
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

// smallInstance returns a well-formed 2-server, 4-thread instance.
func smallInstance() *Instance {
	return &Instance{
		M: 2,
		C: 100,
		Threads: []utility.Func{
			utility.Linear{Slope: 1, C: 100},
			utility.Log{Scale: 5, Shift: 10, C: 100},
			utility.SatExp{Scale: 3, K: 20, C: 100},
			utility.Power{Scale: 2, Beta: 0.5, C: 100},
		},
	}
}

func TestInstanceValidate(t *testing.T) {
	if err := smallInstance().Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	cases := []struct {
		name string
		in   Instance
	}{
		{"no servers", Instance{M: 0, C: 10, Threads: []utility.Func{utility.Linear{Slope: 1, C: 10}}}},
		{"zero capacity", Instance{M: 1, C: 0, Threads: []utility.Func{utility.Linear{Slope: 1, C: 10}}}},
		{"nan capacity", Instance{M: 1, C: math.NaN(), Threads: []utility.Func{utility.Linear{Slope: 1, C: 10}}}},
		{"no threads", Instance{M: 1, C: 10}},
		{"nil utility", Instance{M: 1, C: 10, Threads: []utility.Func{nil}}},
	}
	for _, tc := range cases {
		if err := tc.in.Validate(); err == nil {
			t.Errorf("%s: invalid instance accepted", tc.name)
		}
	}
}

func TestAssignmentUtilityAndLoads(t *testing.T) {
	in := smallInstance()
	a := Assignment{
		Server: []int{0, 0, 1, 1},
		Alloc:  []float64{40, 60, 50, 50},
	}
	if err := a.Validate(in, 1e-9); err != nil {
		t.Fatalf("feasible assignment rejected: %v", err)
	}
	loads := a.ServerLoads(in)
	if loads[0] != 100 || loads[1] != 100 {
		t.Errorf("loads = %v, want [100 100]", loads)
	}
	want := in.Threads[0].Value(40) + in.Threads[1].Value(60) +
		in.Threads[2].Value(50) + in.Threads[3].Value(50)
	if got := a.Utility(in); math.Abs(got-want) > 1e-12 {
		t.Errorf("utility = %v, want %v", got, want)
	}
}

func TestAssignmentValidateRejectsInfeasible(t *testing.T) {
	in := smallInstance()
	cases := []struct {
		name string
		a    Assignment
	}{
		{"wrong length", Assignment{Server: []int{0}, Alloc: []float64{1}}},
		{"bad server", Assignment{Server: []int{0, 0, 5, 1}, Alloc: []float64{1, 1, 1, 1}}},
		{"unassigned", Assignment{Server: []int{0, 0, -1, 1}, Alloc: []float64{1, 1, 1, 1}}},
		{"negative alloc", Assignment{Server: []int{0, 0, 1, 1}, Alloc: []float64{-1, 1, 1, 1}}},
		{"thread over C", Assignment{Server: []int{0, 0, 1, 1}, Alloc: []float64{101, 0, 1, 1}}},
		{"server overloaded", Assignment{Server: []int{0, 0, 0, 1}, Alloc: []float64{50, 50, 50, 1}}},
	}
	for _, tc := range cases {
		if err := tc.a.Validate(in, 1e-9); err == nil {
			t.Errorf("%s: infeasible assignment accepted", tc.name)
		}
	}
}

func TestNewAssignmentUnassigned(t *testing.T) {
	a := NewAssignment(3)
	for i, s := range a.Server {
		if s != -1 {
			t.Errorf("thread %d starts on server %d, want -1", i, s)
		}
	}
}

func TestCappedThreadsRestrictDomain(t *testing.T) {
	in := &Instance{
		M: 1,
		C: 10,
		Threads: []utility.Func{
			utility.Linear{Slope: 2, C: 100}, // wider domain than C
		},
	}
	fs := cappedThreads(in)
	if got := fs[0].Cap(); got != 10 {
		t.Errorf("capped Cap() = %v, want 10", got)
	}
	if got := fs[0].Value(50); got != 20 {
		t.Errorf("capped Value(50) = %v, want f(10)=20", got)
	}
	if got := fs[0].Deriv(10); got != 0 {
		t.Errorf("capped Deriv(10) = %v, want 0", got)
	}
	if got := fs[0].(utility.DerivInverter).InverseDeriv(1); got != 10 {
		t.Errorf("capped InverseDeriv(1) = %v, want 10", got)
	}
}

func TestSuperOptimalRespectsBudgetAndCaps(t *testing.T) {
	in := smallInstance()
	so := SuperOptimal(in)
	sum := 0.0
	for i, c := range so.Alloc {
		if c < -1e-12 || c > in.C+1e-9 {
			t.Errorf("ĉ_%d = %v outside [0, C]", i, c)
		}
		sum += c
	}
	if sum > float64(in.M)*in.C*(1+1e-9) {
		t.Errorf("Σĉ = %v > mC = %v", sum, float64(in.M)*in.C)
	}
	if so.Total <= 0 {
		t.Errorf("F̂ = %v, want > 0", so.Total)
	}
}

func TestSuperOptimalUpperBoundsFeasible(t *testing.T) {
	// Lemma V.2: any feasible assignment's utility is at most F̂.
	in := smallInstance()
	so := SuperOptimal(in)
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		a := AssignRR(in, r)
		if err := a.Validate(in, 1e-9); err != nil {
			t.Fatalf("heuristic produced infeasible assignment: %v", err)
		}
		if u := a.Utility(in); u > so.Total*(1+1e-9) {
			t.Errorf("feasible utility %v exceeds super-optimal %v", u, so.Total)
		}
	}
}

func TestSuperOptimalSaturatesStrictlyIncreasing(t *testing.T) {
	// Lemma V.3: with strictly increasing utilities and n >= m, the
	// super-optimal allocation uses the entire pooled capacity m·C.
	in := &Instance{
		M: 2,
		C: 50,
		Threads: []utility.Func{
			utility.Power{Scale: 1, Beta: 0.6, C: 50},
			utility.Log{Scale: 2, Shift: 5, C: 50},
			utility.Power{Scale: 3, Beta: 0.8, C: 50},
		},
	}
	so := SuperOptimal(in)
	sum := 0.0
	for _, c := range so.Alloc {
		sum += c
	}
	if math.Abs(sum-100) > 1e-6*100 {
		t.Errorf("Σĉ = %v, want mC = 100", sum)
	}
}

func TestSuperOptimalPartitionShape(t *testing.T) {
	// On the NP-hardness instance every thread's ĉ must equal its knee.
	nums := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	in, err := ReduceFromPartition(nums)
	if err != nil {
		t.Fatal(err)
	}
	so := SuperOptimal(in)
	for i, v := range nums {
		if math.Abs(so.Alloc[i]-v) > 1e-6 {
			t.Errorf("ĉ_%d = %v, want knee %v", i, so.Alloc[i], v)
		}
	}
	if want := PartitionTarget(nums); math.Abs(so.Total-want) > 1e-6 {
		t.Errorf("F̂ = %v, want %v", so.Total, want)
	}
}

func TestLinearizedShape(t *testing.T) {
	g := Linearized{UHat: 10, CHat: 4, C: 8}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 2.5}, {2, 5}, {4, 10}, {6, 10}, {8, 10}, {100, 10},
	}
	for _, tc := range cases {
		if got := g.Value(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("g(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := g.Slope(); got != 2.5 {
		t.Errorf("Slope() = %v, want 2.5", got)
	}
	if got := g.Deriv(1); got != 2.5 {
		t.Errorf("Deriv(1) = %v, want 2.5", got)
	}
	if got := g.Deriv(5); got != 0 {
		t.Errorf("Deriv(5) = %v, want 0", got)
	}
	if got := g.InverseDeriv(2); got != 4 {
		t.Errorf("InverseDeriv(2) = %v, want 4", got)
	}
	if got := g.InverseDeriv(3); got != 0 {
		t.Errorf("InverseDeriv(3) = %v, want 0", got)
	}
}

func TestLinearizedDegenerateZeroCHat(t *testing.T) {
	g := Linearized{UHat: 7, CHat: 0, C: 8}
	if got := g.Value(0); got != 7 {
		t.Errorf("g(0) = %v, want 7 (constant)", got)
	}
	if got := g.Value(5); got != 7 {
		t.Errorf("g(5) = %v, want 7", got)
	}
	if got := g.Slope(); got != 0 {
		t.Errorf("Slope() = %v, want 0", got)
	}
}

func TestLinearizeLowerBoundsOriginal(t *testing.T) {
	// Lemma V.4: g_i(x) <= f_i(x) for all x in [0, C].
	in := smallInstance()
	so := SuperOptimal(in)
	gs := Linearize(in, so)
	for i, f := range in.Threads {
		g := gs[i]
		for x := 0.0; x <= in.C; x += 0.5 {
			if g.Value(x) > f.Value(x)+1e-9*(1+f.Value(x)) {
				t.Errorf("thread %d: g(%v)=%v > f(%v)=%v", i, x, g.Value(x), x, f.Value(x))
			}
		}
		// Equality at the super-optimal point.
		if math.Abs(g.Value(so.Alloc[i])-f.Value(so.Alloc[i])) > 1e-9 {
			t.Errorf("thread %d: g(ĉ) != f(ĉ)", i)
		}
	}
}

func TestAlphaValue(t *testing.T) {
	if math.Abs(Alpha-0.8284271247461903) > 1e-15 {
		t.Errorf("Alpha = %v, want 2(√2−1)", Alpha)
	}
	if Alpha <= 0.828 {
		t.Errorf("Alpha = %v, paper claims > 0.828", Alpha)
	}
}
