package cloud

import (
	"math"
	"testing"

	"aa/internal/core"
	"aa/internal/rng"
	"aa/internal/utility"
)

func demoFleet() *Fleet {
	const c = 64.0
	return &Fleet{
		Machines: 2,
		Capacity: c,
		Customers: []Customer{
			{Name: "bursty", Pay: utility.Power{Scale: 1, Beta: 0.5, C: c}},
			{Name: "steady", Pay: utility.Log{Scale: 3, Shift: 4, C: c}},
			{Name: "small", Pay: utility.CappedLinear{Slope: 0.8, Knee: 4, C: c}},
			{Name: "whale", Pay: utility.Linear{Slope: 0.4, C: c}},
			{Name: "medium", Pay: utility.SatExp{Scale: 6, K: 10, C: c}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := demoFleet().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Fleet{
		{Machines: 0, Capacity: 1, Customers: []Customer{{Pay: utility.Linear{Slope: 1, C: 1}}}},
		{Machines: 1, Capacity: 0, Customers: []Customer{{Pay: utility.Linear{Slope: 1, C: 1}}}},
		{Machines: 1, Capacity: 1},
		{Machines: 1, Capacity: 1, Customers: []Customer{{}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSolveRevenueFeasibleAndBounded(t *testing.T) {
	f := demoFleet()
	rev, a, err := SolveRevenue(f)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := f.Instance()
	if err := a.Validate(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	so := core.SuperOptimal(in)
	if rev < core.Alpha*so.Total-1e-9 || rev > so.Total+1e-9 {
		t.Errorf("revenue %v outside [α·F̂, F̂] = [%v, %v]", rev, core.Alpha*so.Total, so.Total)
	}
}

func TestDefaultTiers(t *testing.T) {
	tiers := DefaultTiers(64)
	if len(tiers) != 4 {
		t.Fatalf("got %d tiers", len(tiers))
	}
	if tiers[0].Size != 2 || tiers[3].Size != 32 {
		t.Errorf("tier sizes: %v, %v", tiers[0].Size, tiers[3].Size)
	}
	for _, tier := range tiers {
		if tier.Price <= 0 || tier.Size <= 0 {
			t.Errorf("bad tier %+v", tier)
		}
	}
}

func TestChooseTiersSurplus(t *testing.T) {
	// A customer whose payment curve saturates at 4 units should choose
	// the small tier (size 2, price 2): surplus at 2 units is
	// 0.8·2−2 < 0... pick a curve where surplus is clearly positive.
	const c = 64.0
	f := &Fleet{
		Machines: 1,
		Capacity: c,
		Customers: []Customer{
			// Strong payer: Pay(2)=8·(1−e^-1)≈5.06 ⇒ small-tier surplus ~3.
			{Name: "hot", Pay: utility.SatExp{Scale: 8, K: 2, C: c}},
			// Near-zero payer: no tier has positive surplus.
			{Name: "cold", Pay: utility.Linear{Slope: 0.001, C: c}},
		},
	}
	choices := ChooseTiers(f, DefaultTiers(c))
	if choices[0].Tier < 0 {
		t.Error("hot customer opted out")
	}
	if choices[1].Tier != -1 {
		t.Errorf("cold customer picked tier %d, want opt-out", choices[1].Tier)
	}
}

func TestTierRevenueFeasible(t *testing.T) {
	f := demoFleet()
	tiers := DefaultTiers(f.Capacity)
	choices := ChooseTiers(f, tiers)
	rev, a := TierRevenue(f, tiers, choices)
	in, _ := f.Instance()
	if err := a.Validate(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	if rev < 0 {
		t.Errorf("negative revenue %v", rev)
	}
}

func TestTierRevenueCapacityPressure(t *testing.T) {
	// 20 customers all wanting xlarge on one machine: only 2 fit.
	const c = 64.0
	f := &Fleet{Machines: 1, Capacity: c}
	for i := 0; i < 20; i++ {
		f.Customers = append(f.Customers, Customer{
			Name: "t",
			Pay:  utility.Power{Scale: 20, Beta: 0.9, C: c},
		})
	}
	tiers := DefaultTiers(c)
	choices := ChooseTiers(f, tiers)
	_, a := TierRevenue(f, tiers, choices)
	placed := 0
	for _, alloc := range a.Alloc {
		if alloc > 0 {
			placed++
		}
	}
	if placed != 2 {
		t.Errorf("placed %d xlarge VMs on a 64-unit machine, want 2", placed)
	}
}

func TestAADominatesTiersOnRandomFleets(t *testing.T) {
	base := rng.New(17)
	wins := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		r := base.Split(uint64(trial))
		f := RandomFleet(4, 64, 40, 0.3, 0.9, r)
		aaRev, _, err := SolveRevenue(f)
		if err != nil {
			t.Fatal(err)
		}
		tiers := DefaultTiers(f.Capacity)
		tierRev, _ := TierRevenue(f, tiers, ChooseTiers(f, tiers))
		if aaRev >= tierRev {
			wins++
		}
	}
	if wins < trials {
		t.Errorf("AA beat tier pricing in only %d/%d trials", wins, trials)
	}
}

func TestIntroGapSeriesMatchesClosedForm(t *testing.T) {
	// §I: fixed = C·z^(β−1) constant in n; opt = C^β·n^(1−β).
	const (
		c    = 1000.0
		z    = 100.0
		beta = 0.5
	)
	pts := IntroGapSeries(c, z, beta, []int{10, 40, 160})
	for _, pt := range pts {
		wantFixed := c * math.Pow(z, beta-1)
		if pt.N*int(z) >= int(c) { // only when requests saturate capacity
			if math.Abs(pt.FixedTotal-wantFixed) > 1e-6*wantFixed {
				t.Errorf("n=%d: fixed %v, want %v", pt.N, pt.FixedTotal, wantFixed)
			}
		}
		wantOpt := math.Pow(c, beta) * math.Pow(float64(pt.N), 1-beta)
		if math.Abs(pt.OptTotal-wantOpt) > 1e-6*wantOpt {
			t.Errorf("n=%d: opt %v, want %v", pt.N, pt.OptTotal, wantOpt)
		}
	}
	// The ratio must grow with n (the intro's "arbitrarily better").
	if !(pts[0].Ratio < pts[1].Ratio && pts[1].Ratio < pts[2].Ratio) {
		t.Errorf("ratios not increasing: %v %v %v", pts[0].Ratio, pts[1].Ratio, pts[2].Ratio)
	}
}

func TestRandomFleetShape(t *testing.T) {
	f := RandomFleet(3, 32, 12, 0.4, 0.8, rng.New(5))
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Customers) != 12 {
		t.Errorf("%d customers", len(f.Customers))
	}
	for _, cust := range f.Customers {
		if err := utility.Validate(cust.Pay, 200, 1e-9); err != nil {
			t.Errorf("%s: %v", cust.Name, err)
		}
	}
}
