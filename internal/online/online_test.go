package online

import (
	"fmt"
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

func randomUtility(r *rng.Rand, c float64) utility.Func {
	switch r.Intn(3) {
	case 0:
		return utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, c/4), C: c}
	case 1:
		return utility.SatExp{Scale: r.Uniform(0.5, 5), K: r.Uniform(c/30, c/3), C: c}
	default:
		return utility.Power{Scale: r.Uniform(0.3, 2), Beta: r.Uniform(0.3, 0.9), C: c}
	}
}

// randomTimeline builds a churny workload: waves of arrivals, departures
// and drifts with strictly increasing times.
func randomTimeline(r *rng.Rand, c float64, events int) []Event {
	var out []Event
	nextID := 0
	active := []int{}
	t := 0.0
	for len(out) < events {
		t += r.Uniform(0.5, 2)
		switch {
		case len(active) == 0 || r.Float64() < 0.45:
			out = append(out, Event{Time: t, Kind: Arrive, ID: nextID, Util: randomUtility(r, c)})
			active = append(active, nextID)
			nextID++
		case r.Float64() < 0.5 && len(active) > 0:
			k := r.Intn(len(active))
			out = append(out, Event{Time: t, Kind: Depart, ID: active[k]})
			active = append(active[:k], active[k+1:]...)
		default:
			k := r.Intn(len(active))
			out = append(out, Event{Time: t, Kind: Drift, ID: active[k], Util: randomUtility(r, c)})
		}
	}
	return out
}

func TestSimulateAllPoliciesFeasibleOnRandomChurn(t *testing.T) {
	base := rng.New(11)
	policies := []Policy{FullResolve{}, Incremental{}, Hybrid{Threshold: 0.83}}
	for trial := 0; trial < 8; trial++ {
		r := base.Split(uint64(trial))
		events := randomTimeline(r, 100, 40)
		for _, p := range policies {
			res, err := Simulate(3, 100, events, p, 1.0, 1e9)
			if err != nil {
				t.Fatalf("trial %d, %s: %v", trial, p.Name(), err)
			}
			if res.UtilityIntegral < 0 {
				t.Errorf("%s: negative utility integral", p.Name())
			}
		}
	}
}

func TestFullResolveDominatesIncrementalUtility(t *testing.T) {
	// Ignoring migration costs, re-solving on every event can only help.
	base := rng.New(12)
	for trial := 0; trial < 6; trial++ {
		r := base.Split(uint64(trial))
		events := randomTimeline(r, 100, 50)
		full, err := Simulate(3, 100, events, FullResolve{}, 0, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := Simulate(3, 100, events, Incremental{}, 0, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		if full.UtilityIntegral < inc.UtilityIntegral*(1-1e-9)-1e-9 {
			t.Errorf("trial %d: full %v < incremental %v", trial, full.UtilityIntegral, inc.UtilityIntegral)
		}
	}
}

func TestIncrementalNeverMigrates(t *testing.T) {
	r := rng.New(13)
	events := randomTimeline(r, 100, 60)
	res, err := Simulate(4, 100, events, Incremental{}, 10, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Errorf("incremental migrated %d times", res.Migrations)
	}
}

func TestHighMigrationCostFavorsIncremental(t *testing.T) {
	base := rng.New(14)
	betterNet := 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		r := base.Split(uint64(trial))
		events := randomTimeline(r, 100, 50)
		horizon := events[len(events)-1].Time + 1
		const cost = 1e6 // absurd move cost
		full, err := Simulate(3, 100, events, FullResolve{}, cost, horizon)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := Simulate(3, 100, events, Incremental{}, cost, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if inc.Net >= full.Net {
			betterNet++
		}
	}
	if betterNet < trials-1 {
		t.Errorf("incremental had better net in only %d/%d trials under huge move cost", betterNet, trials)
	}
}

func TestHybridBetweenExtremes(t *testing.T) {
	// Trajectory effects mean strict pathwise dominance does not hold
	// event-by-event, but on aggregate hybrid should sit near or above
	// incremental in utility while migrating far less than full resolve.
	base := rng.New(15)
	var hybU, incU float64
	var hybMig, fullMig int
	for trial := 0; trial < 5; trial++ {
		r := base.Split(uint64(trial))
		events := randomTimeline(r, 100, 60)
		full, err := Simulate(3, 100, events, FullResolve{}, 0, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := Simulate(3, 100, events, Incremental{}, 0, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := Simulate(3, 100, events, Hybrid{Threshold: 0.83}, 0, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		hybU += hyb.UtilityIntegral
		incU += inc.UtilityIntegral
		hybMig += hyb.Migrations
		fullMig += full.Migrations
		if hyb.UtilityIntegral > full.UtilityIntegral*1.05 {
			t.Errorf("trial %d: hybrid %v implausibly above full resolve %v",
				trial, hyb.UtilityIntegral, full.UtilityIntegral)
		}
	}
	if hybU < incU*0.98 {
		t.Errorf("hybrid aggregate utility %v below incremental %v", hybU, incU)
	}
	if hybMig >= fullMig {
		t.Errorf("hybrid migrated %d times, full resolve %d — expected far fewer", hybMig, fullMig)
	}
}

func TestSimulateErrors(t *testing.T) {
	f := utility.Linear{Slope: 1, C: 10}
	cases := []struct {
		name   string
		events []Event
	}{
		{"out of order", []Event{
			{Time: 5, Kind: Arrive, ID: 0, Util: f},
			{Time: 1, Kind: Arrive, ID: 1, Util: f},
		}},
		{"arrival without utility", []Event{{Time: 1, Kind: Arrive, ID: 0}}},
		{"duplicate arrival", []Event{
			{Time: 1, Kind: Arrive, ID: 0, Util: f},
			{Time: 2, Kind: Arrive, ID: 0, Util: f},
		}},
		{"drift without utility", []Event{
			{Time: 1, Kind: Arrive, ID: 0, Util: f},
			{Time: 2, Kind: Drift, ID: 0},
		}},
	}
	for _, tc := range cases {
		if _, err := Simulate(2, 10, tc.events, FullResolve{}, 0, 100); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDriftForDepartedThreadIgnored(t *testing.T) {
	f := utility.Linear{Slope: 1, C: 10}
	events := []Event{
		{Time: 1, Kind: Arrive, ID: 0, Util: f},
		{Time: 2, Kind: Depart, ID: 0},
		{Time: 3, Kind: Drift, ID: 0, Util: f},
	}
	res, err := Simulate(2, 10, events, FullResolve{}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalThreads != 0 {
		t.Errorf("final threads %d, want 0", res.FinalThreads)
	}
}

func TestUtilityIntegralSimpleCase(t *testing.T) {
	// One linear thread arrives at t=2 on a 10-capacity server: rate 10
	// from t=2 to horizon 7 → integral 50.
	f := utility.Linear{Slope: 1, C: 10}
	events := []Event{{Time: 2, Kind: Arrive, ID: 0, Util: f}}
	res, err := Simulate(1, 10, events, FullResolve{}, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.UtilityIntegral - 50; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("integral %v, want 50", res.UtilityIntegral)
	}
}

func TestEventsAfterHorizonIgnored(t *testing.T) {
	f := utility.Linear{Slope: 1, C: 10}
	events := []Event{
		{Time: 1, Kind: Arrive, ID: 0, Util: f},
		{Time: 100, Kind: Arrive, ID: 1, Util: f},
	}
	res, err := Simulate(1, 10, events, FullResolve{}, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalThreads != 1 {
		t.Errorf("final threads %d, want 1", res.FinalThreads)
	}
}

func TestPolicyNames(t *testing.T) {
	if (FullResolve{}).Name() != "full-resolve" {
		t.Error((FullResolve{}).Name())
	}
	if (Incremental{}).Name() != "incremental" {
		t.Error((Incremental{}).Name())
	}
	if got := (Hybrid{Threshold: 0.83}).Name(); got != fmt.Sprintf("hybrid(%.2f)", 0.83) {
		t.Error(got)
	}
}
