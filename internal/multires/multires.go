// Package multires extends AA to multiple resource types — the paper's
// second future-work item (§VIII): servers offer a vector of resources
// (CPU, memory, bandwidth, ...) and each thread consumes them jointly.
//
// Threads have Leontief (fixed-proportion) demands: thread i consumes
// its resources in the ratio W_i, so its allocation is fully described
// by a scalar bundle count t_i ≥ 0 with resource usage t_i·W_i, and its
// utility is G_i(t_i) for a concave scalar G_i. This captures VMs
// ("1 vCPU : 4 GiB per unit") and makes the per-server problem a
// concave maximization over a polymatroid-like feasible set:
//
//	max Σ G_i(t_i)   s.t.   Σ_i t_i·W_i[k] ≤ C[k]  for every resource k.
//
// Allocate solves it with a Fox-style greedy in bundle units (exact as
// the unit shrinks, since the objective is concave and the feasible set
// is down-closed); Assign layers an Algorithm-2-flavored placement on
// top: threads ordered by standalone utility, each placed on the server
// that currently fits it best.
package multires

import (
	"fmt"
	"math"

	"aa/internal/utility"
)

// Thread is a Leontief consumer: utility G over bundle count, resource
// footprint W per bundle.
type Thread struct {
	G utility.Func // concave utility over bundles; G.Cap() bounds t
	W []float64    // per-bundle demand of each resource, >= 0, some > 0
}

// Instance is a multi-resource AA problem: M identical servers, each
// with capacity vector Cap, and Leontief threads.
type Instance struct {
	M       int
	Cap     []float64 // capacity per resource type
	Threads []Thread
}

// N returns the number of threads.
func (in *Instance) N() int { return len(in.Threads) }

// D returns the number of resource types.
func (in *Instance) D() int { return len(in.Cap) }

// Validate checks the instance is well formed.
func (in *Instance) Validate() error {
	if in.M < 1 {
		return fmt.Errorf("multires: %d servers", in.M)
	}
	if len(in.Cap) == 0 {
		return fmt.Errorf("multires: no resource types")
	}
	for k, c := range in.Cap {
		if !(c > 0) {
			return fmt.Errorf("multires: resource %d capacity %v", k, c)
		}
	}
	if len(in.Threads) == 0 {
		return fmt.Errorf("multires: no threads")
	}
	for i, t := range in.Threads {
		if t.G == nil {
			return fmt.Errorf("multires: thread %d has nil utility", i)
		}
		if len(t.W) != len(in.Cap) {
			return fmt.Errorf("multires: thread %d has %d demands, want %d", i, len(t.W), len(in.Cap))
		}
		positive := false
		for k, w := range t.W {
			if w < 0 {
				return fmt.Errorf("multires: thread %d negative demand for resource %d", i, k)
			}
			if w > 0 {
				positive = true
			}
		}
		if !positive {
			return fmt.Errorf("multires: thread %d consumes nothing", i)
		}
	}
	return nil
}

// MaxBundles returns the largest bundle count thread i could run alone on
// one server: min over resources of Cap[k]/W[k], also capped by G.Cap().
func (in *Instance) MaxBundles(i int) float64 {
	t := in.Threads[i]
	limit := t.G.Cap()
	for k, w := range t.W {
		if w > 0 {
			if b := in.Cap[k] / w; b < limit {
				limit = b
			}
		}
	}
	return limit
}

// Assignment is a solution: per-thread server and bundle count.
type Assignment struct {
	Server  []int
	Bundles []float64
}

// Utility returns Σ G_i(Bundles[i]).
func (a Assignment) Utility(in *Instance) float64 {
	total := 0.0
	for i, t := range in.Threads {
		total += t.G.Value(a.Bundles[i])
	}
	return total
}

// Validate checks per-server, per-resource feasibility.
func (a Assignment) Validate(in *Instance, tol float64) error {
	n := in.N()
	if len(a.Server) != n || len(a.Bundles) != n {
		return fmt.Errorf("multires: assignment covers %d/%d threads", len(a.Server), n)
	}
	loads := make([][]float64, in.M)
	for j := range loads {
		loads[j] = make([]float64, in.D())
	}
	for i := 0; i < n; i++ {
		s := a.Server[i]
		if s < 0 || s >= in.M {
			return fmt.Errorf("multires: thread %d on invalid server %d", i, s)
		}
		if a.Bundles[i] < -tol {
			return fmt.Errorf("multires: thread %d negative bundles", i)
		}
		for k, w := range in.Threads[i].W {
			loads[s][k] += a.Bundles[i] * w
		}
	}
	for j := range loads {
		for k, load := range loads[j] {
			if load > in.Cap[k]+tol*(1+in.Cap[k]) {
				return fmt.Errorf("multires: server %d resource %d overloaded: %v > %v",
					j, k, load, in.Cap[k])
			}
		}
	}
	return nil
}

// Allocate solves the single-server problem for the given thread subset
// by a scarcity-priced greedy in steps of `unit` bundles: each step
// grants a unit to the thread maximizing marginal utility per
// scarcity-weighted footprint, where resource k's price is 1/residual_k.
// With one resource type the price is a common factor, so the rule
// reduces exactly to Fox's marginal-utility greedy (optimal for concave
// G). With several types the dynamic prices steer grants toward threads
// whose shape matches the leftover capacity, balancing complementary
// consumers instead of letting one exhaust a shared bottleneck.
// Returns per-thread bundles (indexed like threads) and the total.
func Allocate(cap []float64, threads []Thread, unit float64) ([]float64, float64) {
	n := len(threads)
	bundles := make([]float64, n)
	if n == 0 || unit <= 0 {
		return bundles, 0
	}
	residual := append([]float64(nil), cap...)
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	for {
		best := -1
		var bestScore, bestGain float64
		for i, t := range threads {
			if !active[i] {
				continue
			}
			if bundles[i]+unit > t.G.Cap()+1e-12 || !fits(residual, t.W, unit) {
				active[i] = false
				continue
			}
			gain := t.G.Value(bundles[i]+unit) - t.G.Value(bundles[i])
			if gain <= 0 {
				active[i] = false
				continue
			}
			cost := 0.0
			for k, w := range t.W {
				if w > 0 {
					cost += w / math.Max(residual[k], 1e-12)
				}
			}
			score := gain / cost
			if best < 0 || score > bestScore {
				best, bestScore, bestGain = i, score, gain
			}
		}
		if best < 0 || bestGain <= 0 {
			break
		}
		bundles[best] += unit
		for k, w := range threads[best].W {
			residual[k] -= w * unit
		}
	}
	total := 0.0
	for i, t := range threads {
		total += t.G.Value(bundles[i])
	}
	return bundles, total
}

func fits(residual, w []float64, unit float64) bool {
	for k, r := range residual {
		if w[k]*unit > r+1e-12 {
			return false
		}
	}
	return true
}

// Assign places threads on servers by marginal-gain greedy: threads are
// ordered by standalone utility (what each would earn alone on a fresh
// server) descending, and each thread goes to the server where adding it
// increases that server's optimally-allocated total the most — the
// multi-resource analogue of "assign where you obtain the greatest
// utility" in the paper's Algorithm 1. Complementary threads (CPU-heavy
// with memory-heavy) naturally end up together because a thread adds the
// most on the server whose leftover resources match its shape.
//
// Placement deltas are evaluated at granularity 4·unit for speed; the
// final per-server allocations are re-solved at `unit`.
func Assign(in *Instance, unit float64) Assignment {
	n := in.N()
	type cand struct {
		idx        int
		standalone float64
	}
	cands := make([]cand, n)
	for i := range cands {
		cands[i] = cand{idx: i, standalone: in.Threads[i].G.Value(in.MaxBundles(i))}
	}
	// Insertion sort by standalone utility desc (n is moderate).
	for a := 1; a < n; a++ {
		for b := a; b > 0 && cands[b].standalone > cands[b-1].standalone; b-- {
			cands[b], cands[b-1] = cands[b-1], cands[b]
		}
	}

	coarse := 4 * unit
	groups := make([][]int, in.M)
	groupTotal := make([]float64, in.M)
	server := make([]int, n)
	scratch := make([]Thread, 0, n)
	for _, c := range cands {
		bestJ, bestDelta := 0, math.Inf(-1)
		for j := 0; j < in.M; j++ {
			scratch = scratch[:0]
			for _, i := range groups[j] {
				scratch = append(scratch, in.Threads[i])
			}
			scratch = append(scratch, in.Threads[c.idx])
			_, total := Allocate(in.Cap, scratch, coarse)
			if delta := total - groupTotal[j]; delta > bestDelta {
				bestJ, bestDelta = j, delta
			}
		}
		server[c.idx] = bestJ
		groups[bestJ] = append(groups[bestJ], c.idx)
		groupTotal[bestJ] += bestDelta
	}

	// Final allocations: exact greedy per server group at fine unit.
	out := Assignment{Server: server, Bundles: make([]float64, n)}
	for _, group := range groups {
		if len(group) == 0 {
			continue
		}
		ts := make([]Thread, len(group))
		for k, i := range group {
			ts[k] = in.Threads[i]
		}
		bundles, _ := Allocate(in.Cap, ts, unit)
		for k, i := range group {
			out.Bundles[i] = bundles[k]
		}
	}
	return out
}

// AssignRoundRobin is the naive baseline: round-robin placement and an
// equal split of each server's bottleneck resource.
func AssignRoundRobin(in *Instance, unit float64) Assignment {
	n := in.N()
	out := Assignment{Server: make([]int, n), Bundles: make([]float64, n)}
	groups := make([][]int, in.M)
	for i := 0; i < n; i++ {
		out.Server[i] = i % in.M
		groups[i%in.M] = append(groups[i%in.M], i)
	}
	for _, group := range groups {
		if len(group) == 0 {
			continue
		}
		// Equal share: each thread may use Cap/k of every resource.
		share := make([]float64, in.D())
		for k, c := range in.Cap {
			share[k] = c / float64(len(group))
		}
		for _, i := range group {
			t := in.Threads[i]
			b := t.G.Cap()
			for k, w := range t.W {
				if w > 0 {
					if lim := share[k] / w; lim < b {
						b = lim
					}
				}
			}
			// Snap to the greedy unit for comparability.
			if unit > 0 {
				b = math.Floor(b/unit) * unit
			}
			out.Bundles[i] = b
		}
	}
	return out
}
