package core_test

// The million-thread benchmark tier (ISSUE 9): serial vs parallel
// Assign2 and the full solve pipeline at n = 10⁶, m = 64 — the regime
// the parallel path exists for. Building and solving a million-thread
// instance takes seconds, so the tier is opt-in behind AA_BENCH_1M
// (scripts/bench_regress.sh runs it when the variable is set) and the
// default CI lane stays fast. benchgate arms the ≥2× parallel-speedup
// floor only when the snapshot both contains this pair and was recorded
// on ≥4 cores.
//
// BenchmarkAssign2Parallel (no suffix) is the always-on counterpart: it
// forces the parallel machinery on the regular n=10⁴ workload so every
// snapshot covers the chunked-sort + sharded-heap code path even where
// the 10⁶ tier is skipped.

import (
	"math"
	"os"
	"testing"

	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

const millionN = 1_000_000

func guard1M(b *testing.B) {
	b.Helper()
	if os.Getenv("AA_BENCH_1M") == "" {
		b.Skip("set AA_BENCH_1M=1 to run the n=10^6 benchmark tier")
	}
}

func millionInstance(b *testing.B) *core.Instance {
	b.Helper()
	in, err := gen.Instance(gen.DefaultUniform, 64, 1000, millionN, rng.New(uint64(4242+millionN)))
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// assign2Steady times w.Assign2Linearized in steady state under the
// caller's threshold setting, restoring the default afterwards.
func assign2Steady(b *testing.B, in *core.Instance, threshold int) {
	b.Helper()
	core.SetParallelThreshold(threshold)
	defer core.SetParallelThreshold(0)
	w := core.NewWorkspace()
	so := w.SuperOptimal(in)
	gs := w.Linearize(in, so)
	var out core.Assignment
	w.Assign2Linearized(in, gs, &out) // size the workspace before counting allocs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Assign2Linearized(in, gs, &out)
	}
}

func BenchmarkAssign2Serial1M(b *testing.B) {
	guard1M(b)
	assign2Steady(b, millionInstance(b), math.MaxInt)
}

func BenchmarkAssign2Parallel1M(b *testing.B) {
	guard1M(b)
	assign2Steady(b, millionInstance(b), 1)
}

// BenchmarkSolve1M is the full pipeline — super-optimal bound,
// linearization, Assign2 under the default threshold policy — at 10⁶
// threads: the "single-node million-thread solve" headline number.
func BenchmarkSolve1M(b *testing.B) {
	guard1M(b)
	in := millionInstance(b)
	w := core.NewWorkspace()
	var out core.Assignment
	{ // size the workspace before counting allocs
		so := w.SuperOptimal(in)
		gs := w.Linearize(in, so)
		w.Assign2Linearized(in, gs, &out)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		so := w.SuperOptimal(in)
		gs := w.Linearize(in, so)
		w.Assign2Linearized(in, gs, &out)
	}
}

// BenchmarkAssign2Parallel runs the parallel path on the standard
// benchmark workload (fig1a-uniform, n=10⁴, below the natural
// threshold) in every lane, so the default snapshot tracks the parallel
// machinery's cost too.
func BenchmarkAssign2Parallel(b *testing.B) {
	b.Run("fig1a-uniform/n=10000", func(b *testing.B) {
		assign2Steady(b, benchInstance(b, gen.DefaultUniform, 10000), 1)
	})
}
