package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// key derives a distinct synthetic key. Real keys are SHA-256 outputs;
// these only need to be distinct and non-zero.
func key(i int) Key {
	var k Key
	copy(k[:], fmt.Sprintf("key-%08d", i))
	return k
}

func entry(i int) *Entry {
	return &Entry{Server: []int{i}, Alloc: []float64{float64(i)}, Backend: "assign2"}
}

func TestFactory(t *testing.T) {
	for _, mode := range []Mode{"", ModeOff} {
		c, err := New(Config{Mode: mode})
		if err != nil {
			t.Fatalf("New(%q): %v", mode, err)
		}
		if c.Mode() != ModeOff {
			t.Fatalf("New(%q).Mode() = %q, want off", mode, c.Mode())
		}
	}
	for _, mode := range []Mode{ModeMemory, ModeShared} {
		c, err := New(Config{Mode: mode})
		if err != nil {
			t.Fatalf("New(%q): %v", mode, err)
		}
		if c.Mode() != mode {
			t.Fatalf("New(%q).Mode() = %q", mode, c.Mode())
		}
	}
	if _, err := New(Config{Mode: "redis"}); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestNoop(t *testing.T) {
	c := Noop()
	c.Put(key(1), 7, entry(1))
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("noop cache returned a hit")
	}
	if got := c.Candidates(7, nil); len(got) != 0 {
		t.Fatalf("noop candidates: %d", len(got))
	}
	c.NoteWarmStart()
	c.NoteBypass()
	c.Remove(key(1))
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatalf("noop cache has state: len %d stats %+v", c.Len(), c.Stats())
	}
}

func TestMemCacheHitMissStats(t *testing.T) {
	c, _ := New(Config{Mode: ModeMemory, Size: 8})
	k, g := key(1), uint64(7)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, g, entry(1))
	e, ok := c.Get(k)
	if !ok || e.Server[0] != 1 {
		t.Fatalf("expected entry 1, got %v %v", e, ok)
	}
	c.NoteWarmStart()
	c.NoteBypass()
	st := c.Stats()
	want := Stats{Hits: 1, Misses: 1, WarmStarts: 1, Stores: 1, Bypasses: 1}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

func TestMemCacheUpdateExistingKey(t *testing.T) {
	c, _ := New(Config{Mode: ModeMemory, Size: 8})
	k := key(1)
	c.Put(k, 0, entry(1))
	c.Put(k, 0, entry(2))
	if c.Len() != 1 {
		t.Fatalf("len %d after double put, want 1", c.Len())
	}
	e, _ := c.Get(k)
	if e.Server[0] != 2 {
		t.Fatalf("got entry %d, want the updated 2", e.Server[0])
	}
}

func TestMemCacheLRUEviction(t *testing.T) {
	// One shard, capacity 3: inserting a 4th evicts the least recently
	// used, and a Get refreshes recency.
	c, _ := New(Config{Mode: ModeMemory, Size: 3, Shards: 1})
	for i := 1; i <= 3; i++ {
		c.Put(key(i), 0, entry(i))
	}
	c.Get(key(1)) // 1 is now most recent; 2 is LRU
	c.Put(key(4), 0, entry(4))
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, i := range []int{1, 3, 4} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("entry %d evicted, want only 2 gone", i)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions %d, want 1", ev)
	}
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}
}

func TestMemCacheTTL(t *testing.T) {
	c, _ := New(Config{Mode: ModeMemory, Size: 8, TTL: time.Minute})
	mc := c.(*memCache)
	now := time.Unix(1000, 0)
	mc.now = func() time.Time { return now }

	k, g := key(1), uint64(3)
	c.Put(k, g, entry(1))
	if _, ok := c.Get(k); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get(k); ok {
		t.Fatal("expired entry served")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions %d, want 1 (TTL)", ev)
	}
	if got := c.Candidates(g, nil); len(got) != 0 {
		t.Fatalf("candidates served %d expired entries", len(got))
	}

	// TTL = 0 never expires.
	c2, _ := New(Config{Mode: ModeMemory, Size: 8})
	mc2 := c2.(*memCache)
	mc2.now = func() time.Time { return now }
	c2.Put(k, g, entry(1))
	now = now.Add(1000 * time.Hour)
	if _, ok := c2.Get(k); !ok {
		t.Fatal("TTL=0 entry expired")
	}
}

func TestMemCacheRemove(t *testing.T) {
	c, _ := New(Config{Mode: ModeMemory, Size: 8})
	k := key(1)
	c.Put(k, 0, entry(1))
	c.Remove(k)
	c.Remove(key(2)) // absent: no-op
	if _, ok := c.Get(k); ok {
		t.Fatal("removed entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("len %d after remove, want 0", c.Len())
	}
}

func TestCandidatesRecencyRing(t *testing.T) {
	c, _ := New(Config{Mode: ModeMemory, Size: 64, Candidates: 3})
	g := uint64(9)
	for i := 1; i <= 5; i++ {
		c.Put(key(i), g, entry(i))
	}
	got := c.Candidates(g, nil)
	if len(got) != 3 {
		t.Fatalf("ring served %d candidates, want 3 (the bound)", len(got))
	}
	for i, want := range []int{5, 4, 3} {
		if got[i].Server[0] != want {
			t.Fatalf("candidate %d is entry %d, want %d (most recent first)", i, got[i].Server[0], want)
		}
	}

	// Re-putting an older key moves it to the front without duplicating.
	c.Put(key(4), g, entry(4))
	got = c.Candidates(g, nil)
	if len(got) != 3 || got[0].Server[0] != 4 || got[1].Server[0] != 5 {
		t.Fatalf("after re-put: %v", serversOf(got))
	}

	// Evicted entries are skipped, not served stale.
	c.Remove(key(4))
	got = c.Candidates(g, nil)
	if len(got) != 2 || got[0].Server[0] != 5 || got[1].Server[0] != 3 {
		t.Fatalf("after remove: %v", serversOf(got))
	}

	// Groups are independent.
	if extra := c.Candidates(g+1, nil); len(extra) != 0 {
		t.Fatalf("foreign group served %d candidates", len(extra))
	}

	// dst is appended to, not replaced.
	pre := []*Entry{entry(0)}
	got = c.Candidates(g, pre)
	if len(got) != 3 || got[0].Server[0] != 0 {
		t.Fatalf("append semantics broken: %v", serversOf(got))
	}
}

func serversOf(es []*Entry) []int {
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.Server[0]
	}
	return out
}

func TestMemCacheShardClamp(t *testing.T) {
	// More shards than capacity must not round per-shard capacity to 0.
	c, _ := New(Config{Mode: ModeMemory, Size: 2, Shards: 16})
	for i := 0; i < 10; i++ {
		c.Put(key(i), 0, entry(i))
	}
	if c.Len() == 0 {
		t.Fatal("tiny cache holds nothing")
	}
	if c.Len() > 2 {
		t.Fatalf("len %d exceeds size bound 2", c.Len())
	}
}

func TestMemCacheConcurrent(t *testing.T) {
	// Race-detector smoke over all entry points.
	c, _ := New(Config{Mode: ModeMemory, Size: 32, Shards: 4, TTL: time.Hour})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(i % 40)
				switch i % 5 {
				case 0:
					c.Put(k, uint64(i%3), entry(i))
				case 1:
					c.Get(k)
				case 2:
					c.Candidates(uint64(i%3), nil)
				case 3:
					c.Remove(k)
				default:
					c.Len()
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
}
