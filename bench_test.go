package aa

// Benchmark harness: one benchmark per figure/claim in the paper's
// evaluation (§VII). Each figure benchmark runs its sweep at a reduced
// trial count per iteration and reports the headline ratios as benchmark
// metrics, so `go test -bench=.` regenerates the paper's series shapes;
// cmd/aabench runs the same specs at the paper's full 1000 trials.
//
//	fig1a/1b: uniform / normal(1,1), ratio vs β = n/m ∈ [1, 15]
//	fig2a/2b: power law, ratio vs β (α=2) and vs α (β=5)
//	fig3a/3b/3c: two-point discrete, ratio vs β, γ, θ
//	runtime: Algorithm 2 end-to-end at the paper's n=100, m=8, C=1000
//	intro: the §I fixed-request gap series
//	ablations: Algorithm 1 vs 2; allocation-only vs joint optimization

import (
	"context"
	"io"
	"testing"

	"aa/internal/cachesim"
	"aa/internal/cloud"
	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/experiment"
	"aa/internal/gen"
	"aa/internal/hosting"
	"aa/internal/rng"
	"aa/internal/telemetry"
)

const benchTrials = 30

// runFigure executes a figure spec once per benchmark iteration and
// reports the mean A2/SO ratio plus the final sweep point's heuristic
// ratios as metrics.
func runFigure(b *testing.B, spec experiment.Spec) {
	b.Helper()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(spec, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last == nil {
		return
	}
	// Mean A2/SO across the sweep; heuristic ratios at the last point.
	soSum := 0.0
	for _, pt := range last.Points {
		soSum += pt.Ratios["SO"].Mean
	}
	final := last.Points[len(last.Points)-1]
	b.ReportMetric(soSum/float64(len(last.Points)), "A2/SO-mean")
	b.ReportMetric(final.Ratios["UU"].Mean, "A2/UU-last")
	b.ReportMetric(final.Ratios["UR"].Mean, "A2/UR-last")
	b.ReportMetric(final.Ratios["RU"].Mean, "A2/RU-last")
	b.ReportMetric(final.Ratios["RR"].Mean, "A2/RR-last")
}

// BenchmarkFig1aUniformBeta regenerates Figure 1(a).
func BenchmarkFig1aUniformBeta(b *testing.B) {
	runFigure(b, experiment.Fig1a(benchTrials))
}

// BenchmarkFig1bNormalBeta regenerates Figure 1(b).
func BenchmarkFig1bNormalBeta(b *testing.B) {
	runFigure(b, experiment.Fig1b(benchTrials))
}

// BenchmarkFig2aPowerBeta regenerates Figure 2(a).
func BenchmarkFig2aPowerBeta(b *testing.B) {
	runFigure(b, experiment.Fig2a(benchTrials))
}

// BenchmarkFig2bPowerAlpha regenerates Figure 2(b).
func BenchmarkFig2bPowerAlpha(b *testing.B) {
	runFigure(b, experiment.Fig2b(benchTrials))
}

// BenchmarkFig3aDiscreteBeta regenerates Figure 3(a).
func BenchmarkFig3aDiscreteBeta(b *testing.B) {
	runFigure(b, experiment.Fig3a(benchTrials))
}

// BenchmarkFig3bDiscreteGamma regenerates Figure 3(b).
func BenchmarkFig3bDiscreteGamma(b *testing.B) {
	runFigure(b, experiment.Fig3b(benchTrials))
}

// BenchmarkFig3cDiscreteTheta regenerates Figure 3(c).
func BenchmarkFig3cDiscreteTheta(b *testing.B) {
	runFigure(b, experiment.Fig3c(benchTrials))
}

// BenchmarkAlgorithm2_N100 is the paper's in-text runtime claim: an
// unoptimized Matlab implementation solved n=100, m=8, C=1000 in 0.02 s.
// This measures the full pipeline (super-optimal allocation,
// linearization, assignment) on the same shape.
func BenchmarkAlgorithm2_N100(b *testing.B) {
	r := rng.New(1)
	in, err := gen.Instance(gen.DefaultUniform, 8, 1000, 100, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Assign2(in)
	}
}

// BenchmarkAlgorithm1_N100 is the same pipeline through Algorithm 1
// (O(mn²) assignment phase) for comparison.
func BenchmarkAlgorithm1_N100(b *testing.B) {
	r := rng.New(1)
	in, err := gen.Instance(gen.DefaultUniform, 8, 1000, 100, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Assign1(in)
	}
}

// BenchmarkAlgorithm2Scaling sweeps n to expose the near-linear scaling
// of Algorithm 2 (the log² factors come from the allocation step).
func BenchmarkAlgorithm2Scaling(b *testing.B) {
	for _, n := range []int{100, 400, 1600, 6400} {
		b.Run(benchName("n", n), func(b *testing.B) {
			r := rng.New(1)
			in, err := gen.Instance(gen.DefaultUniform, 8, 1000, n, r)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Assign2(in)
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkIntroFixedRequest reproduces the introduction's fixed-request
// series (t-intro in DESIGN.md): optimal/fixed utility ratio for
// f(x)=x^0.5, z=100, C=1000, growing with n as n^(1-β).
func BenchmarkIntroFixedRequest(b *testing.B) {
	ns := []int{10, 20, 40, 80, 160, 320}
	var pts []cloud.IntroGapPoint
	for i := 0; i < b.N; i++ {
		pts = cloud.IntroGapSeries(1000, 100, 0.5, ns)
	}
	if len(pts) > 0 {
		b.ReportMetric(pts[len(pts)-1].Ratio, "opt/fixed@n320")
	}
}

// BenchmarkAblationAssignmentVsAllocation quantifies DESIGN.md's
// ablation: how much of AA's win comes from joint assignment versus
// fixing the round-robin assignment and only optimizing allocation.
func BenchmarkAblationAssignmentVsAllocation(b *testing.B) {
	r := rng.New(5)
	in, err := gen.Instance(gen.PowerLaw{Alpha: 2, Xmin: 1}, 8, 1000, 80, r)
	if err != nil {
		b.Fatal(err)
	}
	rr := make([]int, in.N())
	for i := range rr {
		rr[i] = i % in.M
	}
	var a2U, bestAllocU, uuU float64
	for i := 0; i < b.N; i++ {
		a2U = core.Assign2(in).Utility(in)
		bestAllocU = core.AssignBestAlloc(in, rr).Utility(in)
		uuU = core.AssignUU(in).Utility(in)
	}
	if uuU > 0 {
		b.ReportMetric(a2U/uuU, "A2/UU")
		b.ReportMetric(bestAllocU/uuU, "RR+opt-alloc/UU")
	}
}

// BenchmarkCacheEndToEnd runs the full multicore application pipeline —
// profile, solve, refine, co-run — and reports AA's measured advantage
// over equal partitioning and over an unpartitioned shared cache
// (the application claims in EXPERIMENTS.md).
func BenchmarkCacheEndToEnd(b *testing.B) {
	cfg := cachesim.Config{Sets: 32, Ways: 8, LineSize: 64}
	r := rng.New(9)
	gens := []cachesim.TraceGen{
		cachesim.WorkingSet{Lines: 120, LineSize: 64, Base: 0},
		cachesim.WorkingSet{Lines: 300, LineSize: 64, Base: 1 << 30},
		cachesim.ZipfReuse{Lines: 800, S: 1.2, LineSize: 64, Base: 2 << 30},
		cachesim.Stream{LineSize: 64, Base: 3 << 30},
		cachesim.SequentialLoop{Lines: 160, LineSize: 64, Base: 4 << 30},
		cachesim.WorkingSet{Lines: 90, LineSize: 64, Base: 5 << 30},
	}
	workloads := cachesim.GenerateWorkloads(gens, 20000, cachesim.DefaultModel, r)
	var aaTotal, uuTotal, sharedTotal float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, profiles, err := cachesim.BuildInstance(cfg, 2, workloads)
		if err != nil {
			b.Fatal(err)
		}
		sol := core.Assign2(in)
		ways := cachesim.OptimizeWays(cfg, 2, workloads, profiles, sol)
		res, err := cachesim.CoRunWays(cfg, 2, workloads, sol, ways)
		if err != nil {
			b.Fatal(err)
		}
		uu := core.AssignUU(in)
		uuRes, err := cachesim.CoRun(cfg, 2, workloads, uu)
		if err != nil {
			b.Fatal(err)
		}
		sharedRes, err := cachesim.SharedCoRun(cfg, 2, workloads, uu.Server)
		if err != nil {
			b.Fatal(err)
		}
		aaTotal, uuTotal, sharedTotal = res.Total, uuRes.Total, sharedRes.Total
	}
	if uuTotal > 0 {
		b.ReportMetric(aaTotal/uuTotal, "AA/equal")
	}
	if sharedTotal > 0 {
		b.ReportMetric(aaTotal/sharedTotal, "AA/shared")
	}
}

// BenchmarkHostingEndToEnd measures the hosting pipeline: model solve +
// 60 s of Poisson queueing simulation, reporting AA's revenue uplift.
func BenchmarkHostingEndToEnd(b *testing.B) {
	d := &hosting.Deployment{
		Hosts:    3,
		Capacity: 100,
		Services: []hosting.Service{
			{Name: "checkout", Demand: 800, Revenue: 0.020, Curve: hosting.LinearCurve{PerUnit: 12}},
			{Name: "search", Demand: 400, Revenue: 0.012, Curve: hosting.SaturatingCurve{Max: 500, K: 30}},
			{Name: "reports", Demand: 5000, Revenue: 0.0002, Curve: hosting.LinearCurve{PerUnit: 40}},
			{Name: "recs", Demand: 300, Revenue: 0.008, Curve: hosting.SaturatingCurve{Max: 350, K: 25}},
			{Name: "ads", Demand: 600, Revenue: 0.010, Curve: hosting.SaturatingCurve{Max: 700, K: 45}},
			{Name: "mail", Demand: 150, Revenue: 0.006, Curve: hosting.LinearCurve{PerUnit: 4}},
		},
	}
	var aaRev, uuRev float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := d.Instance()
		if err != nil {
			b.Fatal(err)
		}
		sol := core.Assign2(in)
		uu := core.AssignUU(in)
		r := rng.New(uint64(i) + 1)
		resAA, err := d.Simulate(sol, 60, 1e9, r.Split(1))
		if err != nil {
			b.Fatal(err)
		}
		resUU, err := d.Simulate(uu, 60, 1e9, r.Split(2))
		if err != nil {
			b.Fatal(err)
		}
		aaRev, uuRev = resAA.Revenue, resUU.Revenue
	}
	if uuRev > 0 {
		b.ReportMetric(aaRev/uuRev, "AA/equal-revenue")
	}
}

// BenchmarkCloudTiersSweep measures the cloud scenario across tenant
// counts: AA joint sizing versus surplus-maximizing tier selection +
// first-fit-decreasing, reporting the revenue uplift at the largest
// fleet (the cloudbroker example's claim as a tracked metric).
func BenchmarkCloudTiersSweep(b *testing.B) {
	var uplift float64
	for i := 0; i < b.N; i++ {
		r := rng.New(11)
		for _, tenants := range []int{12, 24, 48} {
			f := cloud.RandomFleet(4, 64, tenants, 0.3, 0.9, r.Split(uint64(tenants)))
			aaRev, _, err := cloud.SolveRevenue(f)
			if err != nil {
				b.Fatal(err)
			}
			tiers := cloud.DefaultTiers(f.Capacity)
			tierRev, _ := cloud.TierRevenue(f, tiers, cloud.ChooseTiers(f, tiers))
			if tierRev > 0 {
				uplift = aaRev / tierRev
			}
		}
	}
	b.ReportMetric(uplift, "AA/tiers@48")
}

// BenchmarkSuperOptimalN100 isolates the dominant O(n (log mC)²) step.
func BenchmarkSuperOptimalN100(b *testing.B) {
	r := rng.New(1)
	in, err := gen.Instance(gen.DefaultUniform, 8, 1000, 100, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SuperOptimal(in)
	}
}

// BenchmarkTelemetryOverhead runs the full Algorithm 2 pipeline at the
// paper's n=100 shape with telemetry disabled and enabled. The disabled
// sub-benchmark is the guarantee tracked by DESIGN.md §7: instrumenting
// the solver must not slow down an uninstrumented process (budget <2%
// versus the pre-telemetry baseline).
func BenchmarkTelemetryOverhead(b *testing.B) {
	r := rng.New(1)
	in, err := gen.Instance(gen.DefaultUniform, 8, 1000, 100, r)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("disabled", func(b *testing.B) {
		telemetry.Disable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.Assign2(in)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		telemetry.Enable()
		defer telemetry.Disable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.Assign2(in)
		}
	})

	// Context-propagation variants through the full engine pipeline.
	// ctx-disabled is the request-scoped analogue of the disabled
	// guarantee: carrying a context through SolveInto with tracing off
	// must stay at 0 allocs/op (no span machinery touched). ctx-traced
	// prices a fully traced solve — caller span inherited, engine root +
	// dispatch + core stage spans serialized to a discarded sink.
	eng := engine.New(engine.Options{})
	req := &engine.Request{Instance: in}
	var resp engine.Response
	b.Run("ctx-disabled", func(b *testing.B) {
		telemetry.Disable()
		ctx := context.Background()
		if err := eng.SolveInto(ctx, req, &resp); err != nil { // size buffers
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.SolveInto(ctx, req, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ctx-traced", func(b *testing.B) {
		telemetry.Enable()
		defer telemetry.Disable()
		telemetry.SetTraceWriter(io.Discard)
		defer telemetry.SetTraceWriter(nil)
		ctx, span := telemetry.StartSpanCtx(context.Background(), "bench.caller")
		defer span.End()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.SolveInto(ctx, req, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
