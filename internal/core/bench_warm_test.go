package core_test

// Warm-start repair benchmarks at the cache's headline operating point:
// n = 10⁴ threads with k = 8 swapped for in-distribution replacements.
// BenchmarkAssign2Warm is the repair pass seeded from a solved neighbor;
// BenchmarkAssign2WarmColdRef is the full cold pipeline on the same
// churned instance — the pair cmd/benchgate holds to the ISSUE's
// "warm-start ≥ 2× over cold Assign2" floor.

import (
	"testing"

	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

// warmBenchPair returns a 10⁴-thread instance plus the same instance with
// its last 8 threads replaced — mirroring the engine cache benchmarks'
// churn so the core and engine numbers describe the same workload.
func warmBenchPair(b *testing.B) (base, churned *core.Instance) {
	b.Helper()
	r := rng.New(99)
	in, err := gen.Instance(gen.DefaultUniform, 8, 1000, 10000, r.Split(0))
	if err != nil {
		b.Fatal(err)
	}
	donor, err := gen.Instance(gen.DefaultUniform, 8, 1000, 10000, r.Split(1))
	if err != nil {
		b.Fatal(err)
	}
	ch := &core.Instance{M: in.M, C: in.C, Threads: append(in.Threads[:0:0], in.Threads...)}
	for i := 0; i < 8; i++ {
		ch.Threads[len(ch.Threads)-1-i] = donor.Threads[i]
	}
	return in, ch
}

func BenchmarkAssign2Warm(b *testing.B) {
	b.Run("n=10000", func(b *testing.B) {
		base, churned := warmBenchPair(b)
		w := core.NewWorkspace()
		var cold core.Assignment
		so := w.SuperOptimal(base)
		gs := w.Linearize(base, so)
		w.Assign2Linearized(base, gs, &cold)
		n := churned.N()
		seed := core.WarmSeed{
			Lambda: so.Lambda,
			Server: append([]int(nil), cold.Server...),
			Alloc:  append([]float64(nil), cold.Alloc...),
		}
		for i := n - 8; i < n; i++ {
			seed.Server[i] = -1
			seed.Alloc[i] = 0
		}
		var out core.Assignment
		w.Assign2Warm(churned, seed, &out) // size the workspace before counting allocs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Assign2Warm(churned, seed, &out)
		}
	})
}

func BenchmarkAssign2WarmColdRef(b *testing.B) {
	b.Run("n=10000", func(b *testing.B) {
		_, churned := warmBenchPair(b)
		w := core.NewWorkspace()
		var out core.Assignment
		{ // size the workspace before counting allocs
			so := w.SuperOptimal(churned)
			gs := w.Linearize(churned, so)
			w.Assign2Linearized(churned, gs, &out)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			so := w.SuperOptimal(churned)
			gs := w.Linearize(churned, so)
			w.Assign2Linearized(churned, gs, &out)
		}
	})
}
