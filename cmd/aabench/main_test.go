package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig2b", "-trials", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fig2b", "A2/SO", "alpha"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestRunWithPlotAndCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-fig", "fig3c", "-trials", "2", "-plot", "-csv", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "utility ratio") {
		t.Error("plot not rendered")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig3c.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "theta,n,A2/SO") {
		t.Errorf("csv header: %q", strings.SplitN(string(csv), "\n", 2)[0])
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig9z"}, &out); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-fig", "fig2b", "-trials", "2", "-seed", "3"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	// Strip the timing lines before comparing.
	clean := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "(") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if clean(a.String()) != clean(b.String()) {
		t.Error("same seed produced different tables")
	}
}

// Worker count must not change a single digit of the output.
func TestRunSameTablesForAnyWorkerCount(t *testing.T) {
	clean := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "(") { // timing line
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	var serial, parallel bytes.Buffer
	if err := run([]string{"-fig", "fig3b", "-trials", "6", "-seed", "9", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "fig3b", "-trials", "6", "-seed", "9", "-workers", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if clean(serial.String()) != clean(parallel.String()) {
		t.Errorf("-workers=8 output differs from -workers=1:\n--- 1 ---\n%s\n--- 8 ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunTimeoutExpires(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "fig1a", "-trials", "5000", "-timeout", "1ms"}, &out)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRunParallelAliasStillWorks(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig2b", "-trials", "2", "-parallel", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig2b") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunExtHetero(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "ext-hetero", "-trials", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ext-hetero") || !strings.Contains(out.String(), "A/SO") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunExtRuntime(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "ext-runtime", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ext-runtime") || !strings.Contains(out.String(), "us/thread") {
		t.Errorf("output:\n%s", out.String())
	}
}
