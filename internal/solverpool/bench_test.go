package solverpool

import (
	"context"
	"fmt"
	"testing"

	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

// benchBatch is the large synthetic workload: many independent
// mid-sized instances, the shape of a Monte-Carlo experiment sweep or a
// batch of solve requests.
func benchBatch(b *testing.B, batch, threads int) []*core.Instance {
	b.Helper()
	base := rng.New(99)
	ins := make([]*core.Instance, batch)
	for i := range ins {
		in, err := gen.Instance(gen.DefaultUniform, 8, 1000, threads, base.Split(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
	}
	return ins
}

// BenchmarkSolveBatch measures batch-solve throughput as the worker
// count grows; on a multi-core machine throughput should scale well
// past 2x from 1 to 8 workers.
func BenchmarkSolveBatch(b *testing.B) {
	ins := benchBatch(b, 64, 400)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := New(Options{Workers: workers, QueueDepth: len(ins)})
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.SolveBatch(context.Background(), ins); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := p.Snapshot()
			b.ReportMetric(float64(st.Completed)/b.Elapsed().Seconds(), "solves/s")
		})
	}
}

// BenchmarkSolveSession is the steady-state batch hot loop: one Session
// (one workspace) and one reused output assignment re-solving instances
// back to back. The number to watch is allocs/op — it must be zero.
func BenchmarkSolveSession(b *testing.B) {
	ins := benchBatch(b, 8, 400)
	s := NewSession()
	defer s.Close()
	var out core.Assignment
	ctx := context.Background()
	for _, in := range ins { // size the workspace before counting allocs
		if err := s.Solve(ctx, in, &out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Solve(ctx, ins[i%len(ins)], &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSingle is the per-request overhead of going through the
// pool versus calling core.Assign2 directly.
func BenchmarkSolveSingle(b *testing.B) {
	in := benchBatch(b, 1, 400)[0]
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Assign2(in)
		}
	})
	b.Run("pool", func(b *testing.B) {
		p := New(Options{Workers: 1})
		defer p.Close()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Solve(ctx, in); err != nil {
				b.Fatal(err)
			}
		}
	})
}
