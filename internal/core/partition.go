package core

import (
	"errors"

	"aa/internal/utility"
)

// ReduceFromPartition builds the AA instance of the paper's NP-hardness
// proof (Theorem IV.1) from a PARTITION instance: two servers, each with
// capacity C = ½ Σ c_i, and one thread per number with the capped-linear
// utility f_i(x) = min(x, c_i).
//
// The numbers must be positive. The resulting instance has maximum
// utility Σ c_i if and only if the numbers can be split into two halves
// of equal sum.
func ReduceFromPartition(nums []float64) (*Instance, error) {
	if len(nums) == 0 {
		return nil, errors.New("core: empty partition instance")
	}
	sum := 0.0
	for _, v := range nums {
		if v <= 0 {
			return nil, errors.New("core: partition numbers must be positive")
		}
		sum += v
	}
	c := sum / 2
	threads := make([]utility.Func, len(nums))
	for i, v := range nums {
		threads[i] = utility.CappedLinear{Slope: 1, Knee: v, C: c}
	}
	return &Instance{M: 2, C: c, Threads: threads}, nil
}

// PartitionTarget returns the utility value Σ c_i that certifies a
// PARTITION solution under the reduction.
func PartitionTarget(nums []float64) float64 {
	sum := 0.0
	for _, v := range nums {
		sum += v
	}
	return sum
}

// HasPartition decides a small PARTITION instance by solving the reduced
// AA instance exactly and checking whether the optimal utility reaches
// Σ c_i (within tol). It inherits Exhaustive's size limits.
func HasPartition(nums []float64, tol float64) (bool, error) {
	in, err := ReduceFromPartition(nums)
	if err != nil {
		return false, err
	}
	best, err := Exhaustive(in)
	if err != nil {
		return false, err
	}
	return best.Utility(in) >= PartitionTarget(nums)-tol, nil
}
