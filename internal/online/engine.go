package online

import (
	"context"
	"fmt"

	"aa/internal/engine"
)

// The online backend snapshots a live State's active thread set (in
// ascending id order) and solves it with the stock assign2 handler, so
// ad-hoc re-solves of a running system — from aaserve or a CLI — ride
// the same pipeline as policy re-solves. The instance is built over the
// state's UP servers only: the response's server index j names the j-th
// up server in ascending order (the identity when nothing is failed).
// The state is read through its scratch buffers, so a request must not
// race the state's own event loop; it does not modify placements.
func init() {
	a2, ok := engine.Lookup("assign2")
	if !ok {
		panic("online: assign2 backend not registered")
	}
	engine.Register(engine.Backend{
		Name:       "online",
		Doc:        "Algorithm 2 over an online State's active threads (request Payload: *online.State)",
		Guaranteed: true,
		Handle: func(ctx context.Context, req *engine.Request, resp *engine.Response) error {
			s, ok := req.Payload.(*State)
			if !ok {
				return fmt.Errorf("%w: online backend needs Payload of type *online.State", engine.ErrBadRequest)
			}
			in, ids, up, _ := s.instance()
			if len(ids) == 0 {
				return fmt.Errorf("%w: online state has no active threads", engine.ErrBadRequest)
			}
			if len(up) == 0 {
				return fmt.Errorf("%w: online state has no servers up", engine.ErrBadRequest)
			}
			req.Instance = in
			return a2.Handle(ctx, req, resp)
		},
	})
}
