module aa

go 1.22
