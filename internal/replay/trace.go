// Trace generation: a scenario plus a seed expands deterministically
// into an online.Event timeline. Every random draw comes from a
// purpose-keyed rng.SplitPath stream, so traces are reproducible by
// construction and independent of how many other streams are consumed.
package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"aa/internal/online"
	"aa/internal/rng"
	"aa/internal/utility"
)

// Stream path constants: base.SplitPath(stream, ...) names each
// independent random process of a scenario.
const (
	streamArrivals  = 1 // thinned Poisson arrival times
	streamLifetimes = 2 // exponential thread lifetimes
	streamUtilities = 3 // per-thread utility curves (split again by id)
	streamFailures  = 4 // failure episodes: gaps, groups, durations
	streamDrift     = 5 // drift times, victims and re-measured curves
	streamInitial   = 6 // initial-fleet utility curves (split again by id)
)

// TraceStats counts what a generated (or loaded) trace contains.
type TraceStats struct {
	Events      int `json:"events"`
	Arrivals    int `json:"arrivals"`
	Departures  int `json:"departures"`
	Drifts      int `json:"drifts"`
	Failures    int `json:"failures"`
	Recoveries  int `json:"recoveries"`
	PeakThreads int `json:"peakThreads"`
	// Batches counts ArriveBatch events; their cohort members are
	// included in Arrivals.
	Batches int `json:"batches,omitempty"`
}

// Trace expands the scenario into its event timeline under the seed.
// Events are sorted by (time, kind, id); departures scheduled past the
// horizon are retained (the simulator ignores them), so the final state
// reflects threads still live at the horizon.
func Trace(sc *Scenario, seed uint64) ([]online.Event, TraceStats, error) {
	if err := sc.Validate(); err != nil {
		return nil, TraceStats{}, err
	}
	dist, err := sc.Utility.dist()
	if err != nil {
		return nil, TraceStats{}, err
	}
	base := rng.New(seed)
	var events []online.Event

	type span struct{ arrive, depart float64 }
	var spans []span
	id := 0

	// The initial fleet: one ArriveBatch at t=0 admitting InitialThreads
	// threads that persist to the horizon (their spans stay open so the
	// drift process can pick them as victims). Churn ids start above.
	if k := sc.InitialThreads; k > 0 {
		init := base.SplitPath(streamInitial)
		batch := make([]online.BatchArrival, k)
		for i := 0; i < k; i++ {
			f, err := genThread(dist, sc.Capacity, init.Split(uint64(i)))
			if err != nil {
				return nil, TraceStats{}, fmt.Errorf("replay: initial thread %d utility: %w", i, err)
			}
			batch[i] = online.BatchArrival{ID: i, Util: f}
			spans = append(spans, span{arrive: 0, depart: sc.Horizon + 1})
		}
		events = append(events, online.Event{Time: 0, Kind: online.ArriveBatch, ID: -1, Batch: batch})
		id = k
	}

	// Arrivals via Poisson thinning against λmax, with an exponential
	// lifetime and a three-point PCHIP utility per thread.
	arr := base.SplitPath(streamArrivals)
	life := base.SplitPath(streamLifetimes)
	util := base.SplitPath(streamUtilities)
	lambdaMax := sc.Arrivals.maxRate()
	t := 0.0
	for {
		t += arr.Exponential(lambdaMax)
		if t >= sc.Horizon {
			break
		}
		if arr.Float64() >= sc.Arrivals.Rate(t)/lambdaMax {
			continue
		}
		f, err := genThread(dist, sc.Capacity, util.Split(uint64(id)))
		if err != nil {
			return nil, TraceStats{}, fmt.Errorf("replay: thread %d utility: %w", id, err)
		}
		depart := t + life.Exponential(1/sc.Lifetime.Mean)
		events = append(events,
			online.Event{Time: t, Kind: online.Arrive, ID: id, Util: f},
			online.Event{Time: depart, Kind: online.Depart, ID: id})
		spans = append(spans, span{arrive: t, depart: depart})
		id++
	}

	// Correlated failure episodes: sequential (never overlapping), each
	// taking a contiguous server group down together.
	if fs := sc.Failures; fs != nil {
		fr := base.SplitPath(streamFailures)
		t := 0.0
		for {
			gap := fr.Exponential(1 / fs.MTBF)
			if gap <= 0 {
				gap = 1e-9 // ULP guard: keep recover strictly before the next fail
			}
			t += gap
			if t >= sc.Horizon {
				break
			}
			first := fr.Intn(sc.Servers - fs.GroupSize + 1)
			dur := fr.Exponential(1 / fs.MTTR)
			if dur <= 0 {
				dur = 1e-9
			}
			for j := first; j < first+fs.GroupSize; j++ {
				events = append(events,
					online.Event{Time: t, Kind: online.Fail, ID: j},
					online.Event{Time: t + dur, Kind: online.Recover, ID: j})
			}
			t += dur
		}
	}

	// Drift: global Poisson re-measurement clock; each tick re-draws
	// the utility of a uniformly chosen thread active at that time.
	// Active sets are reconstructed from the arrival/departure spans,
	// walked in thread-id order for determinism.
	if sc.DriftRate > 0 {
		dr := base.SplitPath(streamDrift)
		t := 0.0
		for {
			t += dr.Exponential(sc.DriftRate)
			if t >= sc.Horizon {
				break
			}
			var active []int
			for id, sp := range spans {
				if sp.arrive < t && t < sp.depart {
					active = append(active, id)
				}
			}
			if len(active) == 0 {
				continue
			}
			victim := active[dr.Intn(len(active))]
			// Draw the re-measured curve from the drift stream itself:
			// it advances, so repeated drifts of one thread differ.
			f, err := genThread(dist, sc.Capacity, dr)
			if err != nil {
				return nil, TraceStats{}, fmt.Errorf("replay: drift utility: %w", err)
			}
			events = append(events, online.Event{Time: t, Kind: online.Drift, ID: victim, Util: f})
		}
	}

	sortEvents(events)
	return events, statsOf(events, sc.Horizon), nil
}

// genThread mirrors gen.Thread but keeps the draw order explicit so the
// per-thread stream is self-contained.
func genThread(dist distSampler, c float64, r *rng.Rand) (utility.Func, error) {
	v := dist.Sample(r)
	w := dist.Sample(r)
	if w > v {
		v, w = w, v
	}
	return utility.NewSampled([]float64{0, c / 2, c}, []float64{0, v, v + w})
}

// distSampler is the slice of gen.Dist the generator needs.
type distSampler interface {
	Sample(r *rng.Rand) float64
}

// curveVW reconstructs the paper's three-point PCHIP utility through
// (0,0), (C/2, v), (C, v+w) from recorded curve parameters.
func curveVW(c, v, w float64) (utility.Func, error) {
	if w > v {
		v, w = w, v
	}
	return utility.NewSampled([]float64{0, c / 2, c}, []float64{0, v, v + w})
}

// sortEvents orders the timeline by (time, kind, id): arrivals precede
// same-instant departures, and failures precede the recoveries of a
// later episode never (episodes are gap-separated by construction).
func sortEvents(events []online.Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.ID < b.ID
	})
}

// statsOf counts the events the simulator will actually apply (time <
// horizon) and the peak concurrent thread count.
func statsOf(events []online.Event, horizon float64) TraceStats {
	var st TraceStats
	live := 0
	for _, ev := range events {
		if ev.Time >= horizon {
			continue
		}
		st.Events++
		switch ev.Kind {
		case online.Arrive:
			st.Arrivals++
			live++
			if live > st.PeakThreads {
				st.PeakThreads = live
			}
		case online.Depart:
			st.Departures++
			live--
		case online.Drift:
			st.Drifts++
		case online.Fail:
			st.Failures++
		case online.Recover:
			st.Recoveries++
		case online.ArriveBatch:
			st.Batches++
			st.Arrivals += len(ev.Batch)
			live += len(ev.Batch)
			if live > st.PeakThreads {
				st.PeakThreads = live
			}
		}
	}
	return st
}

// --- Recorded traces ---
//
// A recorded trace is a self-contained JSON envelope: the cluster shape
// plus an explicit event list. Arrival and drift events carry the
// paper's (v, w) curve parameters — the utility is reconstructed as the
// PCHIP through (0,0), (C/2, v), (C, v+w) — so traces serialize without
// a general utility encoding and replay bit-identically.

// TraceFile is the on-disk recorded-trace format.
type TraceFile struct {
	Name     string  `json:"name"`
	Servers  int     `json:"servers"`
	Capacity float64 `json:"capacity"`
	// Horizon defaults to just past the last event when 0.
	Horizon float64 `json:"horizon,omitempty"`
	// Policy defaults to full-resolve when empty.
	Policy          string       `json:"policy,omitempty"`
	HybridThreshold float64      `json:"hybridThreshold,omitempty"`
	SolveCost       float64      `json:"solveCost,omitempty"`
	GridPoints      int          `json:"gridPoints,omitempty"`
	Events          []TraceEvent `json:"events"`
}

// TraceEvent is one recorded event. Kind is "arrive", "depart",
// "drift", "fail", "recover" or "arrive-batch"; arrive/drift carry V
// and W, arrive-batch carries Batch instead of ID.
type TraceEvent struct {
	T    float64 `json:"t"`
	Kind string  `json:"kind"`
	ID   int     `json:"id"`
	V    float64 `json:"v,omitempty"`
	W    float64 `json:"w,omitempty"`
	// Batch holds an arrive-batch cohort's per-thread curve parameters.
	Batch []TraceThread `json:"batch,omitempty"`
}

// TraceThread is one member of a recorded arrive-batch cohort.
type TraceThread struct {
	ID int     `json:"id"`
	V  float64 `json:"v"`
	W  float64 `json:"w,omitempty"`
}

// LoadTrace reads a recorded trace file and expands it into a scenario
// envelope (for reporting) plus the event timeline.
func LoadTrace(path string) (*Scenario, []online.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	sc, events, err := DecodeTrace(f)
	if err != nil {
		return nil, nil, fmt.Errorf("replay: %s: %w", path, err)
	}
	return sc, events, nil
}

// DecodeTrace decodes a recorded trace from JSON.
func DecodeTrace(r io.Reader) (*Scenario, []online.Event, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tf TraceFile
	if err := dec.Decode(&tf); err != nil {
		return nil, nil, fmt.Errorf("decode trace: %w", err)
	}
	if tf.Servers < 1 || !(tf.Capacity > 0) {
		return nil, nil, fmt.Errorf("trace needs servers >= 1 and capacity > 0")
	}
	if len(tf.Events) == 0 {
		return nil, nil, fmt.Errorf("trace has no events")
	}
	events := make([]online.Event, 0, len(tf.Events))
	last := 0.0
	for i, te := range tf.Events {
		if te.T < 0 || math.IsNaN(te.T) {
			return nil, nil, fmt.Errorf("event %d: bad time %g", i, te.T)
		}
		if te.T > last {
			last = te.T
		}
		ev := online.Event{Time: te.T, ID: te.ID}
		switch te.Kind {
		case "arrive", "drift":
			if te.Kind == "arrive" {
				ev.Kind = online.Arrive
			} else {
				ev.Kind = online.Drift
			}
			f, err := curveVW(tf.Capacity, te.V, te.W)
			if err != nil {
				return nil, nil, fmt.Errorf("event %d: utility(v=%g, w=%g): %w", i, te.V, te.W, err)
			}
			ev.Util = f
		case "arrive-batch":
			if len(te.Batch) == 0 {
				return nil, nil, fmt.Errorf("event %d: arrive-batch without members", i)
			}
			ev.Kind = online.ArriveBatch
			ev.ID = -1
			ev.Batch = make([]online.BatchArrival, len(te.Batch))
			for k, tt := range te.Batch {
				f, err := curveVW(tf.Capacity, tt.V, tt.W)
				if err != nil {
					return nil, nil, fmt.Errorf("event %d: batch member %d: utility(v=%g, w=%g): %w",
						i, tt.ID, tt.V, tt.W, err)
				}
				ev.Batch[k] = online.BatchArrival{ID: tt.ID, Util: f}
			}
		case "depart":
			ev.Kind = online.Depart
		case "fail":
			ev.Kind = online.Fail
		case "recover":
			ev.Kind = online.Recover
		default:
			return nil, nil, fmt.Errorf("event %d: unknown kind %q", i, te.Kind)
		}
		events = append(events, ev)
	}
	sortEvents(events)
	name := tf.Name
	if name == "" {
		name = "trace"
	}
	horizon := tf.Horizon
	if horizon == 0 {
		horizon = last + 1
	}
	sc := &Scenario{
		Name: name, Servers: tf.Servers, Capacity: tf.Capacity, Horizon: horizon,
		Policy: tf.Policy, HybridThreshold: tf.HybridThreshold,
		SolveCost: tf.SolveCost, GridPoints: tf.GridPoints,
		// Envelope-only fields so Validate passes; a recorded trace
		// never consults the synthetic generators.
		Utility:  UtilitySpec{Dist: "uniform"},
		Arrivals: ArrivalSpec{BaseRate: 1},
		Lifetime: LifetimeSpec{Mean: 1},
	}
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	return sc, events, nil
}
