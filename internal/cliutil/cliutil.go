// Package cliutil collects the command-line plumbing every AA binary
// shares, so the observability and verification surface is uniform
// across aasolve, aagen, aabench, aaonline, aacache and aaserve:
//
//   - -metrics-addr serves live /metrics, /metrics/history, /vars and
//     /debug/pprof,
//   - -trace-out appends telemetry span/event JSONL to a file; every
//     span of the run links under one per-invocation "process" root
//     span (the process-wide default parent), so the file reconstructs
//     into a single trace tree with no per-binary wiring,
//   - -profile-dir runs the continuous profiler: periodic CPU and heap
//     pprof captures into a bounded on-disk ring,
//   - -check (or AA_CHECK=1) turns on process-wide invariant checking
//     (internal/check), which the engine pipeline enforces on every
//     solve, with a per-binary check summary printed at exit.
//
// Typical use:
//
//	fs := flag.NewFlagSet("aathing", flag.ContinueOnError)
//	var common cliutil.Common
//	common.AddFlags(fs)
//	if err := cliutil.Parse(fs, args, stderr); err != nil {
//		return err // nil for -h, after usage was printed
//	}
//	shutdown, err := common.Start("aathing", stderr)
//	if err != nil {
//		return err
//	}
//	defer shutdown()
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"aa/internal/check"
	"aa/internal/telemetry"
)

// Common is the flag set shared by every AA binary.
type Common struct {
	MetricsAddr string
	TraceOut    string
	ProfileDir  string
	Check       bool
}

// AddFlags registers the shared flags on fs with the shared wording.
func (c *Common) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "",
		"serve /metrics, /vars and /debug/pprof on this address (e.g. localhost:0)")
	fs.StringVar(&c.TraceOut, "trace-out", "",
		"write telemetry span/event JSONL to this file")
	fs.StringVar(&c.ProfileDir, "profile-dir", "",
		"continuously capture CPU and heap pprof profiles into this directory (bounded ring)")
	fs.BoolVar(&c.Check, "check", os.Getenv("AA_CHECK") == "1",
		"verify solver outputs through internal/check (also AA_CHECK=1)")
}

// ErrHelp is returned by Parse after -h/-help printed the flag
// documentation; commands should treat it as a successful exit:
//
//	if err := cliutil.Parse(fs, args, stderr); err != nil {
//		if errors.Is(err, cliutil.ErrHelp) {
//			return nil
//		}
//		return err
//	}
var ErrHelp = flag.ErrHelp

// Parse parses args with usage output going to stderr, so -h documents
// the shared flags instead of dying with an opaque "flag: help
// requested". Parse errors are printed by the flag package (with
// usage) and returned.
func Parse(fs *flag.FlagSet, args []string, stderr io.Writer) error {
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return ErrHelp
		}
		return err
	}
	return nil
}

// Start turns the parsed common flags on: the metrics endpoint and
// trace sink via telemetry.Setup, the continuous profiler when
// ProfileDir is set, and process-wide invariant checking when Check is
// set. With a trace sink installed, Start also opens the binary's
// "process" root span and installs it as the process-wide default
// parent, so every span the run emits — engine solves, solver stages,
// pool events — links into one trace.
//
// The returned shutdown function prints the check summary (when
// checking), ends the process span, stops the profiler, and flushes
// telemetry; defer it.
func (c *Common) Start(name string, stderr io.Writer) (func(), error) {
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format, a...) }
	shutdownTelemetry, err := telemetry.Setup(c.MetricsAddr, c.TraceOut, logf)
	if err != nil {
		return nil, err
	}
	var prof *telemetry.Profiler
	if c.ProfileDir != "" {
		prof, err = telemetry.StartProfiler(c.ProfileDir, telemetry.ProfilerOptions{Logf: logf})
		if err != nil {
			sherr := shutdownTelemetry()
			_ = sherr // the profiler error is the one worth reporting
			return nil, err
		}
		logf("telemetry: writing pprof profiles to %s\n", c.ProfileDir)
	}
	var procSpan telemetry.Span
	if telemetry.TraceEnabled() {
		procSpan = telemetry.StartSpan("process", telemetry.String("binary", name))
		telemetry.SetProcessParent(procSpan.Context())
	}
	if c.Check {
		check.Enable()
	}
	return func() {
		if c.Check {
			check.Disable()
			checks, violations := check.Totals()
			fmt.Fprintf(stderr, "%s: check: %d checks, %d violations\n", name, checks, violations)
		}
		// End the process span (it must land in the file) and clear the
		// default parent before the sink detaches.
		telemetry.SetProcessParent(telemetry.SpanContext{})
		procSpan.End()
		if prof != nil {
			prof.Stop()
		}
		if err := shutdownTelemetry(); err != nil {
			logf("%s: telemetry shutdown: %v\n", name, err)
		}
	}, nil
}
