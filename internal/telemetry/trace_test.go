package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// decodeRecords parses a JSONL trace buffer into generic records.
func decodeRecords(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line not JSON: %v\n%s", err, line)
		}
		out = append(out, rec)
	}
	return out
}

func str(rec map[string]any, key string) string {
	s, _ := rec[key].(string)
	return s
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewRoot()
	tp := sc.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent %q: len %d, want 55", tp, len(tp))
	}
	back, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", tp, err)
	}
	if back != sc {
		t.Fatalf("round trip: got %+v, want %+v", back, sc)
	}
	// encode → decode → encode is the identity on the wire form too.
	if again := back.Traceparent(); again != tp {
		t.Fatalf("re-encode: got %q, want %q", again, tp)
	}
	// The zero context has no wire form.
	if got := (SpanContext{}).Traceparent(); got != "" {
		t.Fatalf("zero Traceparent() = %q, want empty", got)
	}
}

func TestParseTraceparentAcceptsKnownGood(t *testing.T) {
	// The example from the W3C spec.
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("ParseTraceparent: %v", err)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" ||
		sc.SpanID.String() != "00f067aa0ba902b7" || !sc.Sampled() {
		t.Fatalf("parsed %+v", sc)
	}
	// Forward compatibility: a higher version with trailing fields parses
	// by its first 55 bytes.
	future := "01" + tp[2:] + "-extra"
	if _, err := ParseTraceparent(future); err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	good := NewRoot().Traceparent()
	cases := map[string]string{
		"empty":           "",
		"short":           good[:54],
		"version 00 long": good + "-extra",
		"future no dash":  "01" + good[2:] + "x",
		"uppercase":       strings.ToUpper(good),
		"version ff":      "ff" + good[2:],
		"bad dash":        good[:2] + "_" + good[3:],
		"zero trace id":   "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":    "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"non-hex trace":   "00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01",
		"non-hex flags":   good[:53] + "zz",
		"non-hex version": "zz" + good[2:],
		"spaces":          " " + good[1:],
	}
	for name, in := range cases {
		if _, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want error", name, in)
		}
	}
}

func TestNewIDsAreUniqueAndNonzero(t *testing.T) {
	seen := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		id := NewSpanID()
		if id.IsZero() {
			t.Fatal("NewSpanID returned zero")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %v after %d draws", id, i)
		}
		seen[id] = true
	}
	if NewTraceID().IsZero() {
		t.Fatal("NewTraceID returned zero")
	}
}

func TestSpanTreeLinkage(t *testing.T) {
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	defer SetTraceWriter(nil)

	ctx, root := StartSpanCtx(context.Background(), "root")
	ctx2, child := StartSpanCtx(ctx, "child")
	_, grandchild := StartSpanCtx(ctx2, "grandchild")
	grandchild.End()
	child.End()
	root.End()

	recs := decodeRecords(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]map[string]any{}
	for _, r := range recs {
		byName[str(r, "name")] = r
	}
	tid := str(byName["root"], "trace_id")
	if len(tid) != 32 {
		t.Fatalf("root trace_id %q, want 32 hex digits", tid)
	}
	if str(byName["root"], "parent_id") != "" {
		t.Errorf("root has parent %q, want none", str(byName["root"], "parent_id"))
	}
	for _, name := range []string{"child", "grandchild"} {
		if got := str(byName[name], "trace_id"); got != tid {
			t.Errorf("%s trace_id = %q, want %q", name, got, tid)
		}
	}
	if got, want := str(byName["child"], "parent_id"), str(byName["root"], "span_id"); got != want {
		t.Errorf("child parent_id = %q, want root span %q", got, want)
	}
	if got, want := str(byName["grandchild"], "parent_id"), str(byName["child"], "span_id"); got != want {
		t.Errorf("grandchild parent_id = %q, want child span %q", got, want)
	}
}

func TestProcessParentLinksOrphans(t *testing.T) {
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	defer SetTraceWriter(nil)

	proc := StartSpan("process")
	SetProcessParent(proc.Context())
	defer SetProcessParent(SpanContext{})

	orphan := StartSpan("solver.stage")
	orphan.End()
	Event("pool.reject")
	SetProcessParent(SpanContext{})
	fresh := StartSpan("fresh.root")
	fresh.End()
	proc.End()

	recs := decodeRecords(t, &buf)
	byName := map[string]map[string]any{}
	for _, r := range recs {
		byName[str(r, "name")] = r
	}
	procID := proc.Context()
	if got := str(byName["solver.stage"], "parent_id"); got != procID.SpanID.String() {
		t.Errorf("orphan parent_id = %q, want process span %q", got, procID.SpanID.String())
	}
	if got := str(byName["solver.stage"], "trace_id"); got != procID.TraceID.String() {
		t.Errorf("orphan trace_id = %q, want process trace %q", got, procID.TraceID.String())
	}
	if got := str(byName["pool.reject"], "trace_id"); got != procID.TraceID.String() {
		t.Errorf("event trace_id = %q, want process trace %q", got, procID.TraceID.String())
	}
	// After clearing the process parent, spans root fresh traces.
	if got := str(byName["fresh.root"], "parent_id"); got != "" {
		t.Errorf("fresh root has parent %q after clear", got)
	}
	if got := str(byName["fresh.root"], "trace_id"); got == procID.TraceID.String() {
		t.Error("fresh root reused the old process trace")
	}
}

func TestStartSpanCtxDisabledIsInert(t *testing.T) {
	SetTraceWriter(nil)
	ctx := context.Background()
	ctx2, sp := StartSpanCtx(ctx, "off")
	if ctx2 != ctx {
		t.Error("StartSpanCtx rewrapped ctx with tracing off")
	}
	if sp.Context().Valid() {
		t.Error("inert span has a valid context")
	}
	sp.AddAttrs(Int("n", 1)) // must not panic
	sp.End()
	if SpanFromContext(ctx).Valid() {
		t.Error("empty ctx carries a span")
	}
}

func TestEventCtxTagsEnclosingSpan(t *testing.T) {
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	defer SetTraceWriter(nil)

	ctx, sp := StartSpanCtx(context.Background(), "enclosing")
	EventCtx(ctx, "inner.event")
	sp.End()

	recs := decodeRecords(t, &buf)
	byName := map[string]map[string]any{}
	for _, r := range recs {
		byName[str(r, "name")] = r
	}
	sc := sp.Context()
	if got := str(byName["inner.event"], "trace_id"); got != sc.TraceID.String() {
		t.Errorf("event trace_id = %q, want %q", got, sc.TraceID.String())
	}
	if got := str(byName["inner.event"], "span_id"); got != sc.SpanID.String() {
		t.Errorf("event span_id = %q, want enclosing span %q", got, sc.SpanID.String())
	}
}

func TestDetachTraceWriterFlushesBuffered(t *testing.T) {
	var raw bytes.Buffer
	bw := bufio.NewWriter(&raw)
	SetTraceWriter(bw)

	sp := StartSpan("buffered.span")
	sp.End()
	if err := DetachTraceWriter(); err != nil {
		t.Fatalf("DetachTraceWriter: %v", err)
	}
	if TraceEnabled() {
		t.Fatal("trace still enabled after detach")
	}
	recs := decodeRecords(t, &raw)
	if len(recs) != 1 || str(recs[0], "name") != "buffered.span" {
		t.Fatalf("flushed records = %v, want the buffered span", recs)
	}
	// Emitting after detach drops whole records — nothing new appears.
	StartSpan("dropped").End()
	Event("dropped.event")
	if got := len(decodeRecords(t, &raw)); got != 1 {
		t.Fatalf("post-detach emits leaked: %d records", got)
	}
	// Detaching with nothing installed is a clean no-op.
	if err := DetachTraceWriter(); err != nil {
		t.Fatalf("second DetachTraceWriter: %v", err)
	}
}

func TestEmitSpanInLinksParent(t *testing.T) {
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	defer SetTraceWriter(nil)

	parent := StartSpan("request")
	EmitSpanIn(parent.Context(), "core.stage", parent.start, Int("n", 7))
	parent.End()

	recs := decodeRecords(t, &buf)
	byName := map[string]map[string]any{}
	for _, r := range recs {
		byName[str(r, "name")] = r
	}
	if got, want := str(byName["core.stage"], "parent_id"), parent.Context().SpanID.String(); got != want {
		t.Errorf("stage parent_id = %q, want %q", got, want)
	}
	attrs, _ := byName["core.stage"]["attrs"].(map[string]any)
	if attrs["n"].(float64) != 7 {
		t.Errorf("stage attrs = %v", attrs)
	}
}
