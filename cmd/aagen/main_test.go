package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"aa/internal/instio"
)

func TestRunGeneratesDecodableInstance(t *testing.T) {
	for _, dist := range []string{"uniform", "normal", "powerlaw", "discrete"} {
		var out bytes.Buffer
		err := run([]string{"-dist", dist, "-n", "6", "-m", "2", "-c", "100"}, &out, io.Discard)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		in, err := instio.Decode(&out)
		if err != nil {
			t.Fatalf("%s: generated instance does not decode: %v", dist, err)
		}
		if in.N() != 6 || in.M != 2 || in.C != 100 {
			t.Errorf("%s: shape n=%d m=%d C=%v", dist, in.N(), in.M, in.C)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-seed", "9", "-n", "4"}, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "9", "-n", "4"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunRejectsUnknownDist(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dist", "warp"}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown distribution") {
		t.Errorf("err = %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "not-a-number"}, &out, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}
