// Package instio serializes AA instances and assignments as JSON so the
// command-line tools (aagen, aasolve) can round-trip problems. Utility
// functions are encoded as type-tagged objects covering every closed-form
// family plus piecewise-linear and PCHIP-sampled curves.
package instio

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"aa/internal/core"
	"aa/internal/utility"
)

// threadJSON is the tagged wire form of one utility function.
type threadJSON struct {
	Kind  string    `json:"kind"`
	Slope float64   `json:"slope,omitempty"`
	Knee  float64   `json:"knee,omitempty"`
	Scale float64   `json:"scale,omitempty"`
	Beta  float64   `json:"beta,omitempty"`
	Shift float64   `json:"shift,omitempty"`
	K     float64   `json:"k,omitempty"`
	Xs    []float64 `json:"xs,omitempty"`
	Ys    []float64 `json:"ys,omitempty"`
}

// instanceJSON is the wire form of an instance.
type instanceJSON struct {
	M       int          `json:"m"`
	C       float64      `json:"c"`
	Threads []threadJSON `json:"threads"`
}

// AssignmentJSON is the wire form of a solution, returned by aasolve.
type AssignmentJSON struct {
	Server  []int     `json:"server"`
	Alloc   []float64 `json:"alloc"`
	Utility float64   `json:"utility"`
	Bound   float64   `json:"superOptimalBound"`
}

// encodeThread converts a utility.Func into its wire form.
func encodeThread(f utility.Func) (threadJSON, error) {
	switch v := f.(type) {
	case utility.Linear:
		return threadJSON{Kind: "linear", Slope: v.Slope}, nil
	case utility.CappedLinear:
		return threadJSON{Kind: "cappedLinear", Slope: v.Slope, Knee: v.Knee}, nil
	case utility.Power:
		return threadJSON{Kind: "power", Scale: v.Scale, Beta: v.Beta}, nil
	case utility.Log:
		return threadJSON{Kind: "log", Scale: v.Scale, Shift: v.Shift}, nil
	case utility.SatExp:
		return threadJSON{Kind: "satexp", Scale: v.Scale, K: v.K}, nil
	case utility.Saturating:
		return threadJSON{Kind: "saturating", Scale: v.Scale, K: v.K}, nil
	case *utility.PiecewiseLinear:
		xs, ys := knotsOf(v)
		return threadJSON{Kind: "piecewise", Xs: xs, Ys: ys}, nil
	case *utility.Sampled:
		xs, ys := sampledKnots(v)
		return threadJSON{Kind: "sampled", Xs: xs, Ys: ys}, nil
	default:
		return threadJSON{}, fmt.Errorf("instio: cannot encode utility type %T", f)
	}
}

// decodeThread converts a wire thread back into a utility over capacity c.
func decodeThread(tj threadJSON, c float64) (utility.Func, error) {
	switch tj.Kind {
	case "linear":
		return utility.Linear{Slope: tj.Slope, C: c}, nil
	case "cappedLinear":
		return utility.CappedLinear{Slope: tj.Slope, Knee: tj.Knee, C: c}, nil
	case "power":
		return utility.Power{Scale: tj.Scale, Beta: tj.Beta, C: c}, nil
	case "log":
		return utility.Log{Scale: tj.Scale, Shift: tj.Shift, C: c}, nil
	case "satexp":
		return utility.SatExp{Scale: tj.Scale, K: tj.K, C: c}, nil
	case "saturating":
		return utility.Saturating{Scale: tj.Scale, K: tj.K, C: c}, nil
	case "piecewise":
		return utility.NewPiecewiseLinear(tj.Xs, tj.Ys)
	case "sampled":
		return utility.NewSampled(tj.Xs, tj.Ys)
	default:
		return nil, fmt.Errorf("instio: unknown utility kind %q", tj.Kind)
	}
}

// knotsOf and sampledKnots return the exact defining knots of the knot
// families, so the wire form round-trips the curve bit-exactly: the
// decoder rebuilds the same interpolant from the same knots.
func knotsOf(p *utility.PiecewiseLinear) ([]float64, []float64) { return p.Knots() }

func sampledKnots(s *utility.Sampled) ([]float64, []float64) { return s.Knots() }

// Binary family tags for AppendThreadBinary. One distinct byte per wire
// family; never reorder or reuse values — the tags are part of the
// stable encoding the solve cache hashes.
const (
	binLinear byte = iota + 1
	binCappedLinear
	binPower
	binLog
	binSatExp
	binSaturating
	binPiecewise
	binSampled
)

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendF64(dst []byte, v float64) []byte { return appendU64(dst, math.Float64bits(v)) }

// AppendThreadBinary appends the canonical binary encoding of one
// utility function to dst — the stable per-thread identity the solve
// cache hashes instances with. The layout is the cap's exact float64
// bits (the JSON wire form drops per-thread caps — Decode re-derives
// them from the instance C — but in memory two utilities can differ
// only in cap and must not share an identity), a one-byte family tag,
// then the family's parameters as float64 bits; the knot families write
// a knot count followed by the exact xs and ys bits. Every field is
// fixed-width little-endian, so the encoding is unambiguous and stable
// across processes and Go releases. It fails only on a utility type
// outside the wire vocabulary; such instances are uncacheable.
func AppendThreadBinary(dst []byte, f utility.Func) ([]byte, error) {
	dst = appendF64(dst, f.Cap())
	switch v := f.(type) {
	case utility.Linear:
		return appendF64(append(dst, binLinear), v.Slope), nil
	case utility.CappedLinear:
		return appendF64(appendF64(append(dst, binCappedLinear), v.Slope), v.Knee), nil
	case utility.Power:
		return appendF64(appendF64(append(dst, binPower), v.Scale), v.Beta), nil
	case utility.Log:
		return appendF64(appendF64(append(dst, binLog), v.Scale), v.Shift), nil
	case utility.SatExp:
		return appendF64(appendF64(append(dst, binSatExp), v.Scale), v.K), nil
	case utility.Saturating:
		return appendF64(appendF64(append(dst, binSaturating), v.Scale), v.K), nil
	case *utility.PiecewiseLinear:
		return appendKnots(append(dst, binPiecewise), v), nil
	case *utility.Sampled:
		return appendKnots(append(dst, binSampled), v), nil
	default:
		return nil, fmt.Errorf("instio: cannot encode utility type %T", f)
	}
}

// knotCurve is the per-knot access the knot families share; using it
// instead of Knots() keeps the encoder allocation-free, which matters
// because the solve cache encodes every thread on every lookup.
type knotCurve interface {
	KnotCount() int
	Knot(i int) (x, y float64)
}

func appendKnots(dst []byte, c knotCurve) []byte {
	n := c.KnotCount()
	dst = appendU64(dst, uint64(n))
	for i := 0; i < n; i++ {
		x, _ := c.Knot(i)
		dst = appendF64(dst, x)
	}
	for i := 0; i < n; i++ {
		_, y := c.Knot(i)
		dst = appendF64(dst, y)
	}
	return dst
}

// Encode writes an instance as JSON.
func Encode(w io.Writer, in *core.Instance) error {
	ij := instanceJSON{M: in.M, C: in.C, Threads: make([]threadJSON, len(in.Threads))}
	for i, f := range in.Threads {
		tj, err := encodeThread(f)
		if err != nil {
			return fmt.Errorf("thread %d: %w", i, err)
		}
		ij.Threads[i] = tj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ij)
}

// Decode reads an instance from JSON and validates it.
func Decode(r io.Reader) (*core.Instance, error) {
	return DecodeNext(json.NewDecoder(r))
}

// DecodeNext decodes one instance from an existing json.Decoder and
// validates it — the streaming form of Decode: a caller walking a JSON
// array with dec.Token/dec.More pulls instances off the wire one at a
// time without buffering the enclosing document.
func DecodeNext(dec *json.Decoder) (*core.Instance, error) {
	var ij instanceJSON
	if err := dec.Decode(&ij); err != nil {
		return nil, fmt.Errorf("instio: %w", err)
	}
	in := &core.Instance{M: ij.M, C: ij.C, Threads: make([]utility.Func, len(ij.Threads))}
	for i, tj := range ij.Threads {
		f, err := decodeThread(tj, ij.C)
		if err != nil {
			return nil, fmt.Errorf("instio: thread %d: %w", i, err)
		}
		in.Threads[i] = f
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// EncodeAssignment writes a solved assignment (with its utility and the
// super-optimal bound) as JSON.
func EncodeAssignment(w io.Writer, in *core.Instance, a core.Assignment) error {
	out := AssignmentJSON{
		Server:  a.Server,
		Alloc:   a.Alloc,
		Utility: a.Utility(in),
		Bound:   core.SuperOptimal(in).Total,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
