package core

import (
	"sort"

	"aa/internal/alloc"
)

// WarmSeed carries the reusable parts of a previous Algorithm 2 solve of
// a nearby instance, remapped onto the threads of the new instance:
// Lambda is the cached solve's water-filling price, and Server/Alloc hold
// the cached placement for every thread the two instances share, with
// Server[i] = -1 marking threads the cached solve does not cover (the
// added or changed ones the repair pass must place from scratch).
type WarmSeed struct {
	Lambda float64
	Server []int
	Alloc  []float64
}

// SuperOptimalWarm is SuperOptimal with the λ-search warm-started from a
// previous solve's price (alloc.ConcaveWarmInto): a handful of probes
// instead of the cold search's dozens when the instance changed by only
// a few threads. The returned bound is a valid F̂ for ratio checks — the
// warm allocation is feasible for the pooled relaxation, so its total
// can only undershoot the exact relaxation optimum, making α-checks
// against it conservative. The returned SuperOpt aliases workspace
// buffers, like SuperOptimal.
func (w *Workspace) SuperOptimalWarm(in *Instance, lambdaHint float64) SuperOpt {
	start := stageStart()
	fs := w.capFuncs(in)
	budget := float64(in.M) * in.C
	res := alloc.ConcaveWarmInto(w.soAlloc, fs, budget, lambdaHint)
	n := len(fs)
	valueDst := w.soValue
	if cap(valueDst) >= n {
		valueDst = valueDst[:n]
	} else {
		valueDst = make([]float64, n)
	}
	so := SuperOpt{Alloc: res.Alloc, Value: valueDst, Total: res.Total, Lambda: res.Lambda}
	for i, f := range fs {
		so.Value[i] = f.Value(res.Alloc[i])
	}
	w.soAlloc, w.soValue = so.Alloc, so.Value
	if !start.IsZero() {
		metricSuperOptWarm.Inc()
		metricBisectIters.Add(uint64(res.Iterations))
		stageEnd(start, metricSuperOptSeconds, "core.superopt.warm", w.span, n)
	}
	return so
}

// Assign2Warm repairs a cached Algorithm 2 assignment for an instance
// that differs from the cached one by a few threads: it recomputes the
// linearization from a warm-started super-optimal solve, keeps every
// seeded placement verbatim (feasible by construction — the kept loads
// are a subset of an assignment that already respected the same server
// capacities), and serves only the uncovered threads by Algorithm 2's
// rule, nonincreasing g(ĉ) onto the most-residual server.
//
// The repaired assignment keeps Algorithm 2's feasibility invariants but
// NOT its worst-case α guarantee — the caller (the engine's cache
// middleware) must verify check.Feasible and the ratio bound against the
// returned F̂ and fall back to a cold solve when either trips.
func (w *Workspace) Assign2Warm(in *Instance, seed WarmSeed, out *Assignment) SuperOpt {
	so := w.SuperOptimalWarm(in, seed.Lambda)
	gs := w.Linearize(in, so)

	start := stageStart()
	n, m := in.N(), in.M
	out.Reset(n)

	if cap(w.a1servers) >= m {
		w.a1servers = w.a1servers[:m]
	} else {
		w.a1servers = make([]serverEntry, m)
	}
	servers := w.a1servers
	for j := range servers {
		servers[j] = serverEntry{id: j, residual: in.C}
	}

	if cap(w.order) >= n {
		w.order = w.order[:0]
	} else {
		w.order = make([]int, 0, n)
	}
	added := w.order
	for i := 0; i < n; i++ {
		if s := seed.Server[i]; s >= 0 {
			out.Server[i] = s
			out.Alloc[i] = seed.Alloc[i]
			servers[s].residual -= seed.Alloc[i]
		} else {
			added = append(added, i)
		}
	}
	for j := range servers {
		if servers[j].residual < 0 {
			servers[j].residual = 0 // float guard; kept loads never truly exceed C
		}
	}

	// Serve the uncovered threads in nonincreasing g(ĉ) order (stable, so
	// ties keep ascending thread index) onto the most-residual server,
	// exactly Algorithm 2's placement rule restricted to the changed
	// threads.
	w.byUHat = uhatSorter{order: added, gs: gs}
	sort.Stable(&w.byUHat)
	heapifyServers(servers)
	for _, i := range added {
		top := servers[0]
		amount := gs[i].CHat
		if amount > top.residual {
			amount = top.residual
		}
		out.Server[i] = top.id
		out.Alloc[i] = amount
		siftTopServer(servers, top.residual-amount)
	}
	w.order = added[:0]

	if !start.IsZero() {
		metricWarmRepairs.Inc()
		stageEnd(start, metricAssign2Seconds, "core.assign2.warm", w.span, len(added))
	}
	return so
}

// heapifyServers builds the (residual desc, id asc) server heap in place
// — the warm repair starts from uneven residuals, unlike the cold
// algorithms whose all-equal initial residuals are trivially a heap.
func heapifyServers(s []serverEntry) {
	for i := len(s)/2 - 1; i >= 0; i-- {
		siftDownServer(s, i)
	}
}

// siftDownServer restores the server-heap order below position i.
func siftDownServer(s []serverEntry, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && serverBefore(s[l], s[best]) {
			best = l
		}
		if r < len(s) && serverBefore(s[r], s[best]) {
			best = r
		}
		if best == i {
			return
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
}
