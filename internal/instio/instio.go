// Package instio serializes AA instances and assignments as JSON so the
// command-line tools (aagen, aasolve) can round-trip problems. Utility
// functions are encoded as type-tagged objects covering every closed-form
// family plus piecewise-linear and PCHIP-sampled curves.
package instio

import (
	"encoding/json"
	"fmt"
	"io"

	"aa/internal/core"
	"aa/internal/utility"
)

// threadJSON is the tagged wire form of one utility function.
type threadJSON struct {
	Kind  string    `json:"kind"`
	Slope float64   `json:"slope,omitempty"`
	Knee  float64   `json:"knee,omitempty"`
	Scale float64   `json:"scale,omitempty"`
	Beta  float64   `json:"beta,omitempty"`
	Shift float64   `json:"shift,omitempty"`
	K     float64   `json:"k,omitempty"`
	Xs    []float64 `json:"xs,omitempty"`
	Ys    []float64 `json:"ys,omitempty"`
}

// instanceJSON is the wire form of an instance.
type instanceJSON struct {
	M       int          `json:"m"`
	C       float64      `json:"c"`
	Threads []threadJSON `json:"threads"`
}

// AssignmentJSON is the wire form of a solution, returned by aasolve.
type AssignmentJSON struct {
	Server  []int     `json:"server"`
	Alloc   []float64 `json:"alloc"`
	Utility float64   `json:"utility"`
	Bound   float64   `json:"superOptimalBound"`
}

// encodeThread converts a utility.Func into its wire form.
func encodeThread(f utility.Func) (threadJSON, error) {
	switch v := f.(type) {
	case utility.Linear:
		return threadJSON{Kind: "linear", Slope: v.Slope}, nil
	case utility.CappedLinear:
		return threadJSON{Kind: "cappedLinear", Slope: v.Slope, Knee: v.Knee}, nil
	case utility.Power:
		return threadJSON{Kind: "power", Scale: v.Scale, Beta: v.Beta}, nil
	case utility.Log:
		return threadJSON{Kind: "log", Scale: v.Scale, Shift: v.Shift}, nil
	case utility.SatExp:
		return threadJSON{Kind: "satexp", Scale: v.Scale, K: v.K}, nil
	case utility.Saturating:
		return threadJSON{Kind: "saturating", Scale: v.Scale, K: v.K}, nil
	case *utility.PiecewiseLinear:
		xs, ys := knotsOf(v)
		return threadJSON{Kind: "piecewise", Xs: xs, Ys: ys}, nil
	case *utility.Sampled:
		xs, ys := sampledKnots(v)
		return threadJSON{Kind: "sampled", Xs: xs, Ys: ys}, nil
	default:
		return threadJSON{}, fmt.Errorf("instio: cannot encode utility type %T", f)
	}
}

// decodeThread converts a wire thread back into a utility over capacity c.
func decodeThread(tj threadJSON, c float64) (utility.Func, error) {
	switch tj.Kind {
	case "linear":
		return utility.Linear{Slope: tj.Slope, C: c}, nil
	case "cappedLinear":
		return utility.CappedLinear{Slope: tj.Slope, Knee: tj.Knee, C: c}, nil
	case "power":
		return utility.Power{Scale: tj.Scale, Beta: tj.Beta, C: c}, nil
	case "log":
		return utility.Log{Scale: tj.Scale, Shift: tj.Shift, C: c}, nil
	case "satexp":
		return utility.SatExp{Scale: tj.Scale, K: tj.K, C: c}, nil
	case "saturating":
		return utility.Saturating{Scale: tj.Scale, K: tj.K, C: c}, nil
	case "piecewise":
		return utility.NewPiecewiseLinear(tj.Xs, tj.Ys)
	case "sampled":
		return utility.NewSampled(tj.Xs, tj.Ys)
	default:
		return nil, fmt.Errorf("instio: unknown utility kind %q", tj.Kind)
	}
}

func knotsOf(p *utility.PiecewiseLinear) ([]float64, []float64) {
	// PiecewiseLinear exposes knots via its interp curve; sample the
	// boundary structure by probing (the type intentionally keeps its
	// representation private). We reconstruct knots from the public API:
	// evaluate on a dense grid and keep slope-change points.
	return reconstructKnots(p, p.Cap())
}

func sampledKnots(s *utility.Sampled) ([]float64, []float64) {
	return reconstructKnots(s, s.Cap())
}

// reconstructKnots samples f on a uniform grid; exact for reasonably
// smooth curves at the chosen density. The grid includes 0 and Cap.
func reconstructKnots(f utility.Func, c float64) ([]float64, []float64) {
	const gridPoints = 65
	xs := make([]float64, gridPoints)
	ys := make([]float64, gridPoints)
	for i := 0; i < gridPoints; i++ {
		x := c * float64(i) / float64(gridPoints-1)
		xs[i] = x
		y := f.Value(x)
		if i > 0 && y < ys[i-1] {
			y = ys[i-1] // enforce monotone wire data against float noise
		}
		ys[i] = y
	}
	// Enforce concavity of the wire data (required by the piecewise
	// constructor) by clamping secant slopes to be nonincreasing.
	for i := 2; i < gridPoints; i++ {
		prevSlope := (ys[i-1] - ys[i-2]) / (xs[i-1] - xs[i-2])
		maxY := ys[i-1] + prevSlope*(xs[i]-xs[i-1])
		if ys[i] > maxY {
			ys[i] = maxY
		}
	}
	return xs, ys
}

// Encode writes an instance as JSON.
func Encode(w io.Writer, in *core.Instance) error {
	ij := instanceJSON{M: in.M, C: in.C, Threads: make([]threadJSON, len(in.Threads))}
	for i, f := range in.Threads {
		tj, err := encodeThread(f)
		if err != nil {
			return fmt.Errorf("thread %d: %w", i, err)
		}
		ij.Threads[i] = tj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ij)
}

// Decode reads an instance from JSON and validates it.
func Decode(r io.Reader) (*core.Instance, error) {
	var ij instanceJSON
	if err := json.NewDecoder(r).Decode(&ij); err != nil {
		return nil, fmt.Errorf("instio: %w", err)
	}
	in := &core.Instance{M: ij.M, C: ij.C, Threads: make([]utility.Func, len(ij.Threads))}
	for i, tj := range ij.Threads {
		f, err := decodeThread(tj, ij.C)
		if err != nil {
			return nil, fmt.Errorf("instio: thread %d: %w", i, err)
		}
		in.Threads[i] = f
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// EncodeAssignment writes a solved assignment (with its utility and the
// super-optimal bound) as JSON.
func EncodeAssignment(w io.Writer, in *core.Instance, a core.Assignment) error {
	out := AssignmentJSON{
		Server:  a.Server,
		Alloc:   a.Alloc,
		Utility: a.Utility(in),
		Bound:   core.SuperOptimal(in).Total,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
