package tableio

import (
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	c := NewChart("demo", "beta", "ratio", []float64{1, 2, 3, 4})
	c.AddSeries("up", []float64{1, 2, 3, 4})
	c.AddSeries("flat", []float64{2, 2, 2, 2})
	out := c.String()
	if !strings.Contains(out, "demo") {
		t.Errorf("missing title:\n%s", out)
	}
	for _, want := range []string{"* up", "o flat", "(y: ratio)", "beta"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Markers appear in the grid.
	if strings.Count(out, "*") < 4 {
		t.Errorf("expected at least 4 '*' marks:\n%s", out)
	}
	// The rising series touches top row, the flat one does not.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") {
		t.Errorf("top row should contain the max of the rising series:\n%s", out)
	}
}

func TestChartAxisLabels(t *testing.T) {
	c := NewChart("t", "x", "y", []float64{0, 10})
	c.AddSeries("s", []float64{5, 15})
	out := c.String()
	if !strings.Contains(out, "15") || !strings.Contains(out, "5") {
		t.Errorf("missing y-axis extremes:\n%s", out)
	}
	if !strings.Contains(out, "10") {
		t.Errorf("missing x max:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("nothing", "x", "y", nil)
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := NewChart("const", "x", "y", []float64{1, 2})
	c.AddSeries("s", []float64{3, 3})
	out := c.String()
	if out == "" || strings.Contains(out, "NaN") {
		t.Errorf("constant series mis-rendered:\n%s", out)
	}
}

func TestChartPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c := NewChart("t", "x", "y", []float64{1, 2})
	c.AddSeries("bad", []float64{1})
}
