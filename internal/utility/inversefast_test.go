package utility

import (
	"math"
	"testing"
)

// sampledCorpus builds Sampled curves shaped like the paper's workload
// generator output — PCHIP through (0,0), (C/2, v), (C, v+w) with w <= v —
// plus a few denser monotone profiles with flat and steep stretches.
func sampledCorpus(t testing.TB) []*Sampled {
	t.Helper()
	build := func(xs, ys []float64) *Sampled {
		s, err := NewSampled(xs, ys)
		if err != nil {
			t.Fatalf("NewSampled(%v, %v): %v", xs, ys, err)
		}
		return s
	}
	const c = 1000.0
	out := []*Sampled{
		build([]float64{0, c / 2, c}, []float64{0, 5, 9}),
		build([]float64{0, c / 2, c}, []float64{0, 0.3, 0.3001}),
		build([]float64{0, c / 2, c}, []float64{0, 7.2, 14.4}), // equal secants
		build([]float64{0, c / 2, c}, []float64{0, 1e-9, 2e-9}),
		build([]float64{0, c / 2, c}, []float64{0, 4e6, 7.5e6}),
		// Denser profiles: plateau in the middle, steep tail segment.
		build([]float64{0, 1, 5, 20, 100}, []float64{0, 3, 3.5, 3.5, 4}),
		build([]float64{0, 0.5, 2, 2.5}, []float64{0, 10, 11, 30}),
	}
	return out
}

// TestSampledInverseDerivDefinition checks the closed-form PCHIP inverse
// against the defining property of InverseDeriv — x* is the LARGEST point
// whose derivative clears lambda — without assuming the derivative is
// monotone (PCHIP of monotone data need not have a monotone derivative).
func TestSampledInverseDerivDefinition(t *testing.T) {
	for ci, s := range sampledCorpus(t) {
		c := s.Cap()
		lambdas := []float64{0, 1e-15, 1e-9, 1e-3, 0.005, 0.01, 0.02, 0.1, 1, 50, 1e6, 1e12}
		// Add data-adapted probes around the derivative scale.
		d0 := s.Deriv(0)
		lambdas = append(lambdas, d0, d0/2, d0*0.999, d0*1.001, s.Deriv(c/2), s.Deriv(c*0.99))
		for _, lambda := range lambdas {
			x := s.InverseDeriv(lambda)
			if x < 0 || x > c {
				t.Fatalf("curve %d: InverseDeriv(%g)=%g outside [0,%g]", ci, lambda, x, c)
			}
			if lambda <= 0 {
				if x != c {
					t.Fatalf("curve %d: InverseDeriv(%g)=%g, want cap %g", ci, lambda, x, c)
				}
				continue
			}
			// Nothing above x* may clear lambda. eps absorbs the ~ulp-level
			// root rounding of the quadratic solve.
			eps := 1e-9 * (1 + lambda)
			for k := 1; k <= 64; k++ {
				probe := x + (c-x)*float64(k)/64
				if probe <= x || probe >= c {
					continue
				}
				if d := s.Deriv(probe); d >= lambda+eps {
					t.Fatalf("curve %d: InverseDeriv(%g)=%g but Deriv(%g)=%g >= lambda",
						ci, lambda, x, probe, d)
				}
			}
			// x* itself sits on the (closed) superlevel set boundary.
			if x > 0 && x < c {
				if d := s.Deriv(x); d < lambda-eps {
					t.Fatalf("curve %d: InverseDeriv(%g)=%g but Deriv there is %g < lambda",
						ci, lambda, x, d)
				}
			}
		}
	}
}

// TestSampledInverseDerivMatchesBisection pins the closed form to the old
// generic bisection on the generator-shaped corpus. The bisection always
// lands inside the superlevel set (or at 0), so the closed-form supremum
// must never be below it; on these curves the derivative is effectively
// nonincreasing, so the two should agree to well under the bisection
// tolerance scale.
func TestSampledInverseDerivMatchesBisection(t *testing.T) {
	for ci, s := range sampledCorpus(t) {
		c := s.Cap()
		for _, lambda := range []float64{1e-12, 1e-6, 1e-3, 0.004, 0.0101, 0.05, 0.5, 3, 1e4} {
			fast := s.InverseDeriv(lambda)
			slow := bisectInverseDeriv(s, lambda, 1e-12)
			if fast < slow-1e-6*(1+c) {
				t.Fatalf("curve %d λ=%g: closed form %v below bisection %v", ci, lambda, fast, slow)
			}
			// The tight comparison only holds where the derivative is
			// nonincreasing, i.e. the 3-knot generator-shaped curves; on
			// the dense profiles the derivative dips and recovers, and the
			// bisection converges to an inner crossing rather than the
			// supremum (which is exactly why the closed form exists).
			if ci >= 5 {
				continue
			}
			if math.Abs(fast-slow) > 1e-6*(1+c) {
				t.Fatalf("curve %d λ=%g: closed form %v, bisection %v", ci, lambda, fast, slow)
			}
		}
	}
}

// TestSampledInverseDerivMonotoneInLambda asserts the property the pruned
// λ-bisection in internal/alloc leans on: raising lambda never raises the
// granted amount, and the pinned states x=0 / x=cap are absorbing.
func TestSampledInverseDerivMonotoneInLambda(t *testing.T) {
	for ci, s := range sampledCorpus(t) {
		prev := math.Inf(1)
		for k := 0; k <= 2000; k++ {
			lambda := 1e-12 * math.Pow(1.03, float64(k)) // spans ~1e-12..1e14
			x := s.InverseDeriv(lambda)
			if x > prev+1e-9*(1+s.Cap()) {
				t.Fatalf("curve %d: InverseDeriv not monotone: λ=%g gives %v after %v",
					ci, lambda, x, prev)
			}
			if x < prev {
				prev = x
			}
		}
	}
}
