package core

// shardedServerHeap is serverHeap re-laid-out for huge server counts:
// the same abstract binary max-heap, stored as the first topLevels
// levels in one small array (the merge region) plus one contiguous
// array per depth-topLevels subtree (the shards). Every subtree of a
// complete binary tree is itself a complete binary tree, so each shard
// uses the standard 2i+1/2i+2 layout internally and the abstract
// parent/child relation is preserved exactly.
//
// Determinism: peek and updateTop visit the same abstract nodes and
// perform the same strict-> comparisons and swaps as serverHeap on the
// same operation sequence — only the memory addresses differ — so the
// two heaps are byte-identical in observable behavior (peeked entries,
// final contents, swap counts) by construction. The layout buys two
// things at large m: reset fills independent shard arrays in parallel,
// and a sift-down touches one small shard instead of striding across
// the whole entry array.
type shardedServerHeap struct {
	top      []serverEntry   // abstract nodes [0, len(top))
	shards   [][]serverEntry // shard s: subtree rooted at abstract len(top)+s
	shardBuf []serverEntry   // backing storage shards slice into
	m        int
	swaps    int // sift-down swaps, matching serverHeap.swaps exactly
}

// shardedHeapMinM is the server count above which the parallel assign2
// path switches from the plain serverHeap to the sharded layout. Below
// it the whole heap fits comfortably in cache and sharding buys nothing.
const shardedHeapMinM = 2048

// shardedTopLevels is the default depth of the merge region: 2^6-1 = 63
// top entries and 64 shards, enough fan-out for any realistic worker
// count during the parallel reset.
const shardedTopLevels = 6

// subtreeSize counts the nodes of the subtree rooted at abstract node r
// in a complete binary tree of m nodes.
func subtreeSize(r, m int) int {
	if r >= m {
		return 0
	}
	size, lo, hi := 0, r, r
	for lo < m {
		last := hi
		if last > m-1 {
			last = m - 1
		}
		size += last - lo + 1
		lo, hi = 2*lo+1, 2*hi+2
	}
	return size
}

// reset refills the heap with m servers at residual c, reusing storage.
// topLevels sets the merge-region depth (tests shrink it to exercise
// shard crossings at small m); workers bounds the parallel shard fill.
func (h *shardedServerHeap) reset(m int, c float64, topLevels, workers int) {
	topLen := 1<<topLevels - 1
	if topLen > m {
		topLen = m
	}
	if cap(h.top) >= topLen {
		h.top = h.top[:topLen]
	} else {
		h.top = make([]serverEntry, topLen)
	}
	rest := m - topLen
	if cap(h.shardBuf) >= rest {
		h.shardBuf = h.shardBuf[:rest]
	} else {
		h.shardBuf = make([]serverEntry, rest)
	}
	numShards := 0
	if rest > 0 {
		numShards = topLen + 1
		if numShards > rest {
			numShards = rest // only roots < m have nonempty subtrees
		}
	}
	if cap(h.shards) >= numShards {
		h.shards = h.shards[:numShards]
	} else {
		h.shards = make([][]serverEntry, numShards)
	}
	off := 0
	for s := 0; s < numShards; s++ {
		size := subtreeSize(topLen+s, m)
		h.shards[s] = h.shardBuf[off : off+size]
		off += size
	}
	h.m = m
	h.swaps = 0

	// Task 0 fills the merge region, task s+1 fills shard s; every task
	// writes a disjoint range, so the parallel fill is deterministic.
	parfor(numShards+1, workers, func(task int) {
		if task == 0 {
			for a := range h.top {
				h.top[a] = serverEntry{id: a, residual: c}
			}
			return
		}
		s := task - 1
		sh := h.shards[s]
		// Row d of the subtree rooted at r spans abstract nodes
		// [(r+1)<<d - 1, ...) and local nodes [2^d - 1, ...); both rows
		// are contiguous, so the fill walks row by row.
		localBase, absBase, width := 0, topLen+s, 1
		for localBase < len(sh) {
			cnt := len(sh) - localBase
			if cnt > width {
				cnt = width
			}
			for q := 0; q < cnt; q++ {
				sh[localBase+q] = serverEntry{id: absBase + q, residual: c}
			}
			localBase += width
			absBase = 2*absBase + 1
			width <<= 1
		}
	})
}

// at returns the entry at abstract node a — the same entry
// serverHeap.entries[a] would hold after the same operation sequence.
func (h *shardedServerHeap) at(a int) serverEntry {
	topLen := len(h.top)
	if a < topLen {
		return h.top[a]
	}
	// Walk up to find the shard root this node descends from: the
	// ancestor at depth shardedTopLevels. Only tests and the residual
	// accessor use this; the hot path never does.
	x, depth := a, 0
	for x >= 2*topLen+1 {
		x = (x - 1) / 2
		depth++
	}
	s := x - topLen
	// Local index: in 1-based binary, replace the shard-root prefix of
	// the abstract index with a leading 1.
	li := (a + 1) - (x+1)<<depth + 1<<depth - 1
	return h.shards[s][li]
}

// peek returns the server with the most remaining resource.
func (h *shardedServerHeap) peek() serverEntry { return h.top[0] }

func (h *shardedServerHeap) swapCount() int { return h.swaps }

// updateTop replaces the top's residual and restores the heap property,
// with exactly serverHeap.updateTop's comparison and swap sequence.
func (h *shardedServerHeap) updateTop(newResidual float64) {
	top, topLen, m := h.top, len(h.top), h.m
	top[0].residual = newResidual
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		bestV := top[largest].residual
		if l < m {
			if v := h.rootOrTop(l, topLen); v > bestV {
				largest, bestV = l, v
			}
		}
		if r < m {
			if v := h.rootOrTop(r, topLen); v > bestV {
				largest, bestV = r, v
			}
		}
		if largest == i {
			return
		}
		if largest < topLen {
			top[i], top[largest] = top[largest], top[i]
			h.swaps++
			i = largest
			continue
		}
		// The sift-down crosses from the merge region into a shard:
		// swap with the shard root, then finish entirely inside it.
		s := largest - topLen
		sh := h.shards[s]
		top[i], sh[0] = sh[0], top[i]
		h.swaps++
		h.siftShard(sh)
		return
	}
}

// rootOrTop reads abstract node a's residual: a merge-region entry or a
// shard root (the only out-of-region nodes updateTop's walk can see).
func (h *shardedServerHeap) rootOrTop(a, topLen int) float64 {
	if a < topLen {
		return h.top[a].residual
	}
	return h.shards[a-topLen][0].residual
}

// siftShard restores the heap property inside one shard, local layout.
func (h *shardedServerHeap) siftShard(sh []serverEntry) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(sh) && sh[l].residual > sh[largest].residual {
			largest = l
		}
		if r < len(sh) && sh[r].residual > sh[largest].residual {
			largest = r
		}
		if largest == i {
			return
		}
		sh[i], sh[largest] = sh[largest], sh[i]
		h.swaps++
		i = largest
	}
}
