package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Parallel Assign2 (ROADMAP item 4). Above a size threshold the
// assignment phase fans its two stable sorts out over GOMAXPROCS
// workers — per-chunk sort.Stable with the same concrete sorters the
// serial path uses, then pairwise stable merges — and serves from a
// sharded server heap at large m. The result is byte-identical to the
// serial path by construction:
//
//   - A stable sort under a given strict weak order has exactly one
//     result, so chunked-sort-then-stable-merge and sort.Stable produce
//     the same permutation (ties resolve to input order in both).
//   - The serve loop itself stays sequential (each grant depends on all
//     prior heap state); the sharded heap replays serverHeap's exact
//     comparison/swap sequence in a different layout, and the
//     saturation fast-forward only skips updateTop calls that provably
//     cannot move the heap.
//
// Telemetry counters are accumulated in per-chunk/per-task locals and
// flushed once per solve — no shared atomics inside parallel loops.

// DefaultParallelThreshold is the instance size at which Assign2
// switches to the parallel path when more than one CPU is available.
const DefaultParallelThreshold = 1 << 16

// minParallelChunk keeps sort chunks large enough that goroutine
// fan-out overhead stays negligible against the chunk sort itself.
const minParallelChunk = 1 << 12

var parallelThresholdOverride atomic.Int64

// ParallelThreshold returns the minimum instance size for the parallel
// Assign2 path: the override set by SetParallelThreshold, or the
// GOMAXPROCS-aware default (DefaultParallelThreshold, or "never" on a
// single-CPU process, where extra goroutines cannot help).
func ParallelThreshold() int {
	if v := parallelThresholdOverride.Load(); v > 0 {
		return int(v)
	}
	if runtime.GOMAXPROCS(0) < 2 {
		return math.MaxInt
	}
	return DefaultParallelThreshold
}

// SetParallelThreshold overrides the parallel-path threshold: instances
// with n >= threshold take the parallel Assign2 path. n <= 0 restores
// the GOMAXPROCS-aware default; math.MaxInt disables the path.
func SetParallelThreshold(n int) {
	if n < 0 {
		n = 0
	}
	parallelThresholdOverride.Store(int64(n))
}

// parfor runs f(task) for every task in [0, tasks), fanning out over at
// most workers goroutines with a static assignment (worker w takes
// tasks w, w+workers, ...). Tasks must write disjoint state; every
// parallel region in this package does, so scheduling order is
// unobservable and the overall result deterministic.
func parfor(tasks, workers int, f func(task int)) {
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for t := 0; t < tasks; t++ {
			f(t)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for t := w; t < tasks; t += workers {
				f(t)
			}
		}(w)
	}
	for t := 0; t < tasks; t += workers {
		f(t)
	}
	wg.Wait()
}

// sortKind names which of the serial sorters a parallel sort mirrors.
type sortKind int

const (
	sortByUHat  sortKind = iota // uhatSorter: g(ĉ) nonincreasing
	sortBySlope                 // tailSorter: g(ĉ)/ĉ nonincreasing
	sortByCHat                  // tailSorter{byCHat}: ĉ nonincreasing
)

// The merge comparators. Each mirrors the corresponding sorter's Less
// exactly (same fields, same strict >); the type parameter lets the
// compiler devirtualize the call in the merge inner loop.
type lessAt interface {
	less(gs []Linearized, x, y int) bool
}

type uhatLess struct{}

func (uhatLess) less(gs []Linearized, x, y int) bool { return gs[x].UHat > gs[y].UHat }

type slopeLess struct{}

func (slopeLess) less(gs []Linearized, x, y int) bool { return gs[x].Slope() > gs[y].Slope() }

type chatLess struct{}

func (chatLess) less(gs []Linearized, x, y int) bool { return gs[x].CHat > gs[y].CHat }

// mergeOrdered stably merges sorted runs a and b into dst
// (len(dst) == len(a)+len(b)): take from a unless b's head is strictly
// less — under "Less = greater" comparators that means equal keys keep
// a's (earlier) elements first, exactly sort.Stable's tie rule. Returns
// the number of comparisons for the sort-comparison telemetry.
func mergeOrdered[L lessAt](dst, a, b []int, gs []Linearized) uint64 {
	var less L
	var cmps uint64
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		cmps++
		if less.less(gs, b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
	return cmps
}

// sortChunksFor picks the chunk count (a power of two) for a parallel
// sort of n keys: enough chunks to feed every worker, but never so many
// that chunks drop below minParallelChunk. force (tests, the forced
// entry point) ignores the size floor so small instances still exercise
// the full chunk/merge machinery.
func sortChunksFor(n, workers int, force bool) int {
	maxChunks := 1
	for maxChunks < workers {
		maxChunks <<= 1
	}
	if force && maxChunks < 4 {
		maxChunks = 4
	}
	chunks := 1
	for chunks < maxChunks && (force || n/(chunks*2) >= minParallelChunk) {
		chunks <<= 1
	}
	return chunks
}

// parallelStableSort stably sorts order under the kind's comparator
// using chunked parallel merge sort, returning the comparison count.
// The permutation is identical to sort.Stable with the corresponding
// workspace sorter (see the package comment above).
func (w *Workspace) parallelStableSort(order []int, gs []Linearized, kind sortKind, workers int, force bool) uint64 {
	n := len(order)
	if n < 2 {
		return 0
	}
	chunks := sortChunksFor(n, workers, force)
	if chunks == 1 {
		switch kind {
		case sortByUHat:
			w.byUHat = uhatSorter{order: order, gs: gs}
			sort.Stable(&w.byUHat)
			return w.byUHat.cmps
		case sortBySlope:
			w.byTail = tailSorter{order: order, gs: gs}
			sort.Stable(&w.byTail)
			return w.byTail.cmps
		default:
			w.byTail = tailSorter{order: order, gs: gs, byCHat: true}
			sort.Stable(&w.byTail)
			return w.byTail.cmps
		}
	}

	if cap(w.sortScratch) >= n {
		w.sortScratch = w.sortScratch[:n]
	} else {
		w.sortScratch = make([]int, n)
	}
	if cap(w.parUHat) >= chunks {
		w.parUHat = w.parUHat[:chunks]
	} else {
		w.parUHat = make([]uhatSorter, chunks)
	}
	if cap(w.parTail) >= chunks {
		w.parTail = w.parTail[:chunks]
	} else {
		w.parTail = make([]tailSorter, chunks)
	}
	if cap(w.taskCmps) >= chunks {
		w.taskCmps = w.taskCmps[:chunks]
	} else {
		w.taskCmps = make([]uint64, chunks)
	}

	size := (n + chunks - 1) / chunks
	// Phase 1: sort each chunk with the serial path's concrete sorters,
	// one sorter (and comparison counter) per chunk.
	parfor(chunks, workers, func(k int) {
		lo, hi := k*size, (k+1)*size
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		sub := order[lo:hi]
		switch kind {
		case sortByUHat:
			s := &w.parUHat[k]
			*s = uhatSorter{order: sub, gs: gs}
			sort.Stable(s)
		case sortBySlope:
			s := &w.parTail[k]
			*s = tailSorter{order: sub, gs: gs}
			sort.Stable(s)
		default:
			s := &w.parTail[k]
			*s = tailSorter{order: sub, gs: gs, byCHat: true}
			sort.Stable(s)
		}
	})
	var cmps uint64
	for k := 0; k < chunks; k++ {
		if kind == sortByUHat {
			cmps += w.parUHat[k].cmps
		} else {
			cmps += w.parTail[k].cmps
		}
	}

	// Phase 2: pairwise stable merges, ping-ponging between order and
	// the scratch buffer. Each merge task writes a disjoint dst range
	// and its comparison count to its own taskCmps slot.
	src, dst := order, w.sortScratch
	for width := size; width < n; width *= 2 {
		pairs := (n + 2*width - 1) / (2 * width)
		parfor(pairs, workers, func(p int) {
			lo := p * 2 * width
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			var c uint64
			switch kind {
			case sortByUHat:
				c = mergeOrdered[uhatLess](dst[lo:hi], src[lo:mid], src[mid:hi], gs)
			case sortBySlope:
				c = mergeOrdered[slopeLess](dst[lo:hi], src[lo:mid], src[mid:hi], gs)
			default:
				c = mergeOrdered[chatLess](dst[lo:hi], src[lo:mid], src[mid:hi], gs)
			}
			w.taskCmps[p] = c
		})
		for p := 0; p < pairs; p++ {
			cmps += w.taskCmps[p]
		}
		src, dst = dst, src
	}
	if &src[0] != &order[0] {
		copy(order, src)
	}
	return cmps
}

// residualHeap is what the parallel serve loop needs from a server
// heap; serverHeap and shardedServerHeap both satisfy it.
type residualHeap interface {
	peek() serverEntry
	updateTop(newResidual float64)
	swapCount() int
}

// Assign2LinearizedParallel runs Algorithm 2's parallel path
// unconditionally, regardless of the threshold — the entry point the
// byte-identity tests, fuzzers and benchmarks use. Production callers
// go through Assign2Linearized and let the threshold decide.
func Assign2LinearizedParallel(in *Instance, gs []Linearized) Assignment {
	w := GetWorkspace()
	defer PutWorkspace(w)
	var out Assignment
	w.assign2Parallel(in, gs, TailBySlope, &out, true)
	return out
}

// assign2Parallel is the parallel twin of Workspace.assign2: same
// lines, same output bytes, different execution strategy. force runs
// the full chunk/merge/shard machinery even on small instances.
func (w *Workspace) assign2Parallel(in *Instance, gs []Linearized, tailOrder TailOrder, out *Assignment, force bool) {
	start := stageStart()
	n, m := in.N(), in.M
	out.Reset(n)
	workers := runtime.GOMAXPROCS(0)

	// Line 1: order all threads by g_i(ĉ_i), nonincreasing.
	if cap(w.order) >= n {
		w.order = w.order[:n]
	} else {
		w.order = make([]int, n)
	}
	order := w.order
	for i := range order {
		order[i] = i
	}
	sortCmps := w.parallelStableSort(order, gs, sortByUHat, workers, force)
	// Line 2: re-sort the tail (threads m+1..n in that ordering).
	if n > m {
		switch tailOrder {
		case TailBySlope:
			sortCmps += w.parallelStableSort(order[m:], gs, sortBySlope, workers, force)
		case TailByCHatDesc:
			sortCmps += w.parallelStableSort(order[m:], gs, sortByCHat, workers, force)
		case TailByUHat:
			// Keep the line-1 ordering.
		}
	}

	// Lines 3–4: max-heap of residual server capacities; the sharded
	// layout once m is large enough for parallel reset and shard-local
	// sift-downs to matter (force lowers the bar so tests cross it).
	var h residualHeap
	if m >= shardedHeapMinM || (force && m >= 2) {
		tl := shardedTopLevels
		if m < shardedHeapMinM {
			tl = 1 // tiny heap: a 1-entry merge region still exercises shard crossings
		}
		w.hs.reset(m, in.C, tl, workers)
		h = &w.hs
	} else {
		w.h2.reset(m, in.C)
		h = &w.h2
	}

	// Lines 5–10: serve threads in order from the fullest server. The
	// loop is inherently sequential, but once the fullest server hits
	// residual 0 every server is at 0 (the top of a max-heap bounds the
	// rest, and residuals never go negative), so each remaining thread
	// with ĉ > 0 gets (top.id, +0) and updateTop(0) cannot swap under
	// strict >: fast-forward those without touching the heap. Threads
	// with ĉ <= 0 still take the general path — a negative ĉ would
	// return resource to the server, and ±0 must keep its sign bit.
	k := 0
	for k < n {
		i := order[k]
		srv := h.peek()
		if srv.residual == 0 && gs[i].CHat > 0 {
			for ; k < n && gs[order[k]].CHat > 0; k++ {
				out.Server[order[k]] = srv.id
				// out.Alloc stays the +0 Reset wrote, as the serial
				// path's min(ĉ, 0) would.
			}
			continue
		}
		amount := gs[i].CHat
		if amount > srv.residual {
			amount = srv.residual
		}
		out.Server[i] = srv.id
		out.Alloc[i] = amount
		h.updateTop(srv.residual - amount)
		k++
	}

	if !start.IsZero() {
		metricAssign2Calls.Inc()
		metricAssign2SortCmps.Add(sortCmps)
		// Same accounting as the serial path: one updateTop per thread
		// (fast-forwarded ones performed zero swaps) plus every swap.
		metricAssign2HeapOps.Add(uint64(n) + uint64(h.swapCount()))
		stageEnd(start, metricAssign2Seconds, "core.assign2", w.span, n)
	}
}
