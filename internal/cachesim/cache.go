// Package cachesim is the multicore shared-cache substrate behind the
// paper's first motivating application (§I): threads bound to cores
// compete for a shared last-level cache, cache partitioning enforces a
// per-thread way allocation, and each thread's performance is a concave
// function of its partition size.
//
// The package provides a set-associative way-partitioned LRU cache
// model, synthetic address-trace generators, a profiler that measures a
// thread's hit-rate curve across partition sizes (the paper's "miss rate
// curves can be determined by running threads multiple times using
// different cache allocations", citing Qureshi et al.), an upper concave
// envelope to fit the model's concavity assumption, and a co-run
// simulator that validates an AA assignment end to end: because way
// partitioning isolates threads, the aggregate throughput of a co-run
// equals the sum of per-thread throughput at their allocated way counts.
package cachesim

import (
	"errors"
	"fmt"
)

// Config describes a shared cache: Sets × Ways lines of LineSize bytes.
// Ways is the resource that AA divides among the threads on a socket.
type Config struct {
	Sets     int // number of sets, >= 1
	Ways     int // total ways (associativity), >= 1
	LineSize int // bytes per line, >= 1 (used to map addresses to lines)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sets < 1 {
		return fmt.Errorf("cachesim: %d sets", c.Sets)
	}
	if c.Ways < 1 {
		return fmt.Errorf("cachesim: %d ways", c.Ways)
	}
	if c.LineSize < 1 {
		return fmt.Errorf("cachesim: line size %d", c.LineSize)
	}
	return nil
}

// Partition simulates one thread's private way partition: a
// set-associative LRU cache with the thread's allocated number of ways
// per set. Under way partitioning threads cannot evict each other's
// lines, so each thread's partition is an independent cache.
type Partition struct {
	sets     int
	ways     int
	lineSize int
	// tags[s] holds the resident line tags of set s in recency order,
	// most recent first. len(tags[s]) <= ways.
	tags [][]uint64

	hits     int
	accesses int
}

// NewPartition builds an empty partition with the given way count (may
// be 0: every access misses).
func NewPartition(cfg Config, ways int) (*Partition, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ways < 0 || ways > cfg.Ways {
		return nil, fmt.Errorf("cachesim: partition of %d ways outside [0, %d]", ways, cfg.Ways)
	}
	p := &Partition{
		sets:     cfg.Sets,
		ways:     ways,
		lineSize: cfg.LineSize,
		tags:     make([][]uint64, cfg.Sets),
	}
	return p, nil
}

// Access simulates one memory access and reports whether it hit.
func (p *Partition) Access(addr uint64) bool {
	p.accesses++
	if p.ways == 0 {
		return false
	}
	line := addr / uint64(p.lineSize)
	set := int(line % uint64(p.sets))
	tag := line / uint64(p.sets)
	ts := p.tags[set]
	for i, t := range ts {
		if t == tag {
			// Hit: move to front (most recently used).
			copy(ts[1:i+1], ts[:i])
			ts[0] = tag
			p.hits++
			return true
		}
	}
	// Miss: insert at front, evicting the LRU way if full.
	if len(ts) < p.ways {
		ts = append(ts, 0)
	}
	copy(ts[1:], ts)
	ts[0] = tag
	p.tags[set] = ts
	return false
}

// Run feeds an entire trace through the partition.
func (p *Partition) Run(trace []uint64) {
	for _, a := range trace {
		p.Access(a)
	}
}

// Hits returns the hit count so far.
func (p *Partition) Hits() int { return p.hits }

// Accesses returns the access count so far.
func (p *Partition) Accesses() int { return p.accesses }

// HitRate returns hits/accesses (0 before any access).
func (p *Partition) HitRate() float64 {
	if p.accesses == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.accesses)
}

// Reset clears contents and counters, keeping the configuration.
func (p *Partition) Reset() {
	for s := range p.tags {
		p.tags[s] = p.tags[s][:0]
	}
	p.hits, p.accesses = 0, 0
}

// ErrEmptyTrace is returned by profiling helpers when given no accesses.
var ErrEmptyTrace = errors.New("cachesim: empty trace")

// SimulateHits runs trace against a fresh partition of the given way
// count and returns (hits, accesses).
func SimulateHits(cfg Config, ways int, trace []uint64) (int, int, error) {
	if len(trace) == 0 {
		return 0, 0, ErrEmptyTrace
	}
	p, err := NewPartition(cfg, ways)
	if err != nil {
		return 0, 0, err
	}
	p.Run(trace)
	return p.Hits(), p.Accesses(), nil
}
