package aa_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRun builds every example program and executes it, asserting
// a clean exit and non-empty output. This keeps the examples honest: they
// are documentation that must keep compiling AND running.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected at least 3 examples, found %d", len(entries))
	}
	binDir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			var stdout, stderr bytes.Buffer
			cmd := exec.Command(bin)
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			done := make(chan error, 1)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example failed: %v\nstderr: %s", err, stderr.String())
				}
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatal("example timed out")
			}
			if stdout.Len() == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
