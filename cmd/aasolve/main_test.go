package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"aa/internal/instio"
)

const demoInstance = `{
  "m": 2, "c": 100,
  "threads": [
    {"kind": "log", "scale": 5, "shift": 10},
    {"kind": "power", "scale": 2, "beta": 0.5},
    {"kind": "cappedLinear", "slope": 1, "knee": 30},
    {"kind": "satexp", "scale": 3, "k": 20}
  ]
}`

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"a2", "a1", "a2p", "ls", "gm", "exact", "uu", "ur", "ru", "rr"} {
		var out bytes.Buffer
		err := run([]string{"-algo", algo}, strings.NewReader(demoInstance), &out, io.Discard)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "total utility") {
			t.Errorf("%s: missing summary:\n%s", algo, out.String())
		}
		if !strings.Contains(out.String(), "thread") {
			t.Errorf("%s: missing table", algo)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json"}, strings.NewReader(demoInstance), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var decoded instio.AssignmentJSON
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded.Server) != 4 || decoded.Utility <= 0 {
		t.Errorf("decoded %+v", decoded)
	}
	if decoded.Bound < decoded.Utility-1e-9 {
		t.Errorf("bound %v below utility %v", decoded.Bound, decoded.Utility)
	}
}

func TestRunPolishedAtLeastRaw(t *testing.T) {
	get := func(algo string) float64 {
		var out bytes.Buffer
		if err := run([]string{"-algo", algo, "-json"}, strings.NewReader(demoInstance), &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		var decoded instio.AssignmentJSON
		if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
			t.Fatal(err)
		}
		return decoded.Utility
	}
	raw := get("a2")
	polished := get("a2p")
	improved := get("ls")
	if polished < raw-1e-9 {
		t.Errorf("a2p (%v) below a2 (%v)", polished, raw)
	}
	if improved < polished-1e-9 {
		t.Errorf("ls (%v) below a2p (%v)", improved, polished)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "nope"}, strings.NewReader(demoInstance), &out, io.Discard); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(nil, strings.NewReader("not json"), &out, io.Discard); err == nil {
		t.Error("garbage input accepted")
	}
	if err := run([]string{"missing-file.json"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}
