package tableio

import (
	"strings"
	"testing"
)

func TestASCIIAlignment(t *testing.T) {
	tb := New("Demo", "beta", "ratio")
	tb.AddRow("1", "0.99")
	tb.AddRow("15", "1.2345")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "beta") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("rule = %q", lines[2])
	}
	// Columns align: "ratio" starts at the same offset in all rows.
	idx := strings.Index(lines[1], "ratio")
	if !strings.HasPrefix(lines[3][idx:], "0.99") {
		t.Errorf("row 1 misaligned: %q", lines[3])
	}
	if !strings.HasPrefix(lines[4][idx:], "1.2345") {
		t.Errorf("row 2 misaligned: %q", lines[4])
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestAddRowPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on row width mismatch")
		}
	}()
	New("t", "a", "b").AddRow("only one")
}

func TestAddFloatRow(t *testing.T) {
	tb := New("t", "beta", "r1", "r2")
	tb.AddFloatRow("%.0f", "%.3f", 5, 0.98765, 1.5)
	want := []string{"5", "0.988", "1.500"}
	for i, cell := range tb.Rows[0] {
		if cell != want[i] {
			t.Errorf("cell %d = %q, want %q", i, cell, want[i])
		}
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "a", "b")
	tb.AddRow("1", "plain")
	tb.AddRow("2", `has "quotes", commas`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\n1,plain\n2,\"has \"\"quotes\"\", commas\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		prec int
		want string
	}{
		{5, 2, "5"},
		{5.5, 2, "5.50"},
		{0.125, 3, "0.125"},
		{-3, 1, "-3"},
	}
	for _, tc := range cases {
		if got := FormatFloat(tc.v, tc.prec); got != tc.want {
			t.Errorf("FormatFloat(%v, %d) = %q, want %q", tc.v, tc.prec, got, tc.want)
		}
	}
}
