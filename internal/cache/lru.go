package cache

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"aa/internal/telemetry"
)

// Process-wide cache telemetry (aa_cache_*), aggregated across every
// cache in the process; per-cache numbers come from Stats. Registered
// eagerly so /metrics shows them at zero before the first solve.
var (
	metricHits       = telemetry.Default.Counter("aa_cache_hits_total")
	metricMisses     = telemetry.Default.Counter("aa_cache_misses_total")
	metricWarmStarts = telemetry.Default.Counter("aa_cache_warm_starts_total")
	metricEvictions  = telemetry.Default.Counter("aa_cache_evictions_total")
	metricStores     = telemetry.Default.Counter("aa_cache_stores_total")
	metricBypasses   = telemetry.Default.Counter("aa_cache_bypasses_total")
)

// counters backs Stats with per-cache atomics.
type counters struct {
	hits, misses, warm, evictions, stores, bypasses atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		WarmStarts: c.warm.Load(),
		Evictions:  c.evictions.Load(),
		Stores:     c.stores.Load(),
		Bypasses:   c.bypasses.Load(),
	}
}

// memCache is the in-process implementation behind ModeMemory (and, for
// now, the ModeShared stub): an LRU split across independently locked
// shards, with lazy TTL expiry and a per-group recency ring feeding the
// warm-start candidate lookup.
type memCache struct {
	mode   Mode
	key    HashKey
	shards []*shard
	ttl    time.Duration
	stats  counters

	// now is the clock, swappable in tests to drive TTL expiry.
	now func() time.Time

	groupMu   sync.Mutex
	groups    map[uint64][]Key
	groupSize int
}

// shard is one lock domain: a map into an LRU list, newest at the front.
type shard struct {
	mu  sync.Mutex
	max int
	m   map[Key]*list.Element
	ll  *list.List
}

// lruItem is one list element's payload.
type lruItem struct {
	key    Key
	e      *Entry
	stored time.Time
}

func newMemCache(cfg Config) *memCache {
	size := cfg.Size
	if size <= 0 {
		size = DefaultSize
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = DefaultShards
	}
	if nshards > size {
		nshards = size // tiny caches: never let per-shard capacity round to 0
	}
	perShard := (size + nshards - 1) / nshards
	groupSize := cfg.Candidates
	if groupSize <= 0 {
		groupSize = DefaultCandidates
	}
	c := &memCache{
		mode:      cfg.Mode,
		key:       cfg.Key,
		shards:    make([]*shard, nshards),
		ttl:       cfg.TTL,
		now:       time.Now,
		groups:    make(map[uint64][]Key),
		groupSize: groupSize,
	}
	for i := range c.shards {
		c.shards[i] = &shard{max: perShard, m: make(map[Key]*list.Element), ll: list.New()}
	}
	return c
}

func (c *memCache) Mode() Mode { return c.mode }

func (c *memCache) HashKey() HashKey { return c.key }

func (c *memCache) shard(key Key) *shard {
	return c.shards[binary.LittleEndian.Uint64(key[:8])%uint64(len(c.shards))]
}

// expired reports whether it is past its TTL; ttl = 0 never expires.
func (c *memCache) expired(it *lruItem) bool {
	return c.ttl > 0 && c.now().Sub(it.stored) > c.ttl
}

func (c *memCache) Get(key Key) (*Entry, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		it := el.Value.(*lruItem)
		if c.expired(it) {
			sh.ll.Remove(el)
			delete(sh.m, key)
			sh.mu.Unlock()
			c.stats.evictions.Add(1)
			metricEvictions.Inc()
		} else {
			sh.ll.MoveToFront(el)
			e := it.e
			sh.mu.Unlock()
			c.stats.hits.Add(1)
			metricHits.Inc()
			return e, true
		}
	} else {
		sh.mu.Unlock()
	}
	c.stats.misses.Add(1)
	metricMisses.Inc()
	return nil, false
}

// peek is Get without LRU promotion, expiry, or hit/miss accounting —
// the candidate path must not distort the stats it is reported next to.
func (c *memCache) peek(key Key) (*Entry, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.m[key]
	if !ok {
		return nil, false
	}
	it := el.Value.(*lruItem)
	if c.expired(it) {
		return nil, false
	}
	return it.e, true
}

func (c *memCache) Put(key Key, group uint64, e *Entry) {
	now := c.now()
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		it := el.Value.(*lruItem)
		it.e = e
		it.stored = now
		sh.ll.MoveToFront(el)
	} else {
		sh.m[key] = sh.ll.PushFront(&lruItem{key: key, e: e, stored: now})
		for len(sh.m) > sh.max {
			back := sh.ll.Back()
			it := back.Value.(*lruItem)
			sh.ll.Remove(back)
			delete(sh.m, it.key)
			c.stats.evictions.Add(1)
			metricEvictions.Inc()
		}
	}
	sh.mu.Unlock()
	c.stats.stores.Add(1)
	metricStores.Inc()

	c.groupMu.Lock()
	ring := c.groups[group]
	for i, k := range ring {
		if k == key {
			ring = append(ring[:i], ring[i+1:]...)
			break
		}
	}
	ring = append(ring, Key{})
	copy(ring[1:], ring)
	ring[0] = key
	if len(ring) > c.groupSize {
		ring = ring[:c.groupSize]
	}
	c.groups[group] = ring
	c.groupMu.Unlock()
}

func (c *memCache) Candidates(group uint64, dst []*Entry) []*Entry {
	c.groupMu.Lock()
	keys := append(make([]Key, 0, len(c.groups[group])), c.groups[group]...)
	c.groupMu.Unlock()
	// Keys whose entries were evicted since they entered the ring are
	// skipped; the ring is bounded (groupSize) so the dangling remainder
	// is harmless and ages out as newer stores displace it.
	for _, k := range keys {
		if e, ok := c.peek(k); ok {
			dst = append(dst, e)
		}
	}
	return dst
}

func (c *memCache) Remove(key Key) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		sh.ll.Remove(el)
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

func (c *memCache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

func (c *memCache) Stats() Stats { return c.stats.snapshot() }

func (c *memCache) NoteWarmStart() {
	c.stats.warm.Add(1)
	metricWarmStarts.Inc()
}

func (c *memCache) NoteBypass() {
	c.stats.bypasses.Add(1)
	metricBypasses.Inc()
}
