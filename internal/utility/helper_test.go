package utility

import "time"

// timeAfter gives regression tests a generous hang detector.
func timeAfter() <-chan time.Time { return time.After(10 * time.Second) }
