// Package cosched implements pair co-scheduling, the related-work
// baseline from the paper's §II (Jiang et al.): divide 2m threads into m
// pairs, each pair sharing one socket's cache without partitioning, so
// as to minimize total interference (equivalently maximize total co-run
// throughput). The paper's criticism — co-scheduling requires measuring
// the performance of *groups* of threads, which explodes combinatorially
// — is visible directly in the API: the cost model takes a measured
// pairwise co-run matrix, which already needs O(n²) co-run measurements
// versus AA's O(n·W) solo profiling.
//
// For moderate n the optimal pairing is found by exact DP over subsets
// (O(2^n · n)); a greedy matcher handles larger inputs.
package cosched

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// PairCost is a symmetric matrix: PairCost[i][j] is the total value
// (e.g. combined throughput — higher is better) of co-running threads i
// and j on one socket. The diagonal is unused.
type PairCost [][]float64

// Validate checks the matrix is square, symmetric and finite.
func (pc PairCost) Validate() error {
	n := len(pc)
	if n == 0 {
		return errors.New("cosched: empty cost matrix")
	}
	for i := range pc {
		if len(pc[i]) != n {
			return fmt.Errorf("cosched: row %d has %d entries, want %d", i, len(pc[i]), n)
		}
		for j := range pc[i] {
			if math.IsNaN(pc[i][j]) || math.IsInf(pc[i][j], 0) {
				return fmt.Errorf("cosched: non-finite cost at (%d,%d)", i, j)
			}
			if i != j && math.Abs(pc[i][j]-pc[j][i]) > 1e-9*(1+math.Abs(pc[i][j])) {
				return fmt.Errorf("cosched: asymmetric cost at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// Pairing assigns each thread a partner; Pairs lists each pair once.
type Pairing struct {
	Pairs [][2]int
	Value float64
}

// OptimalPairs finds the maximum-value perfect matching of an even
// number of threads by DP over subsets. n must be even and at most
// MaxExactThreads.
const MaxExactThreads = 22

// OptimalPairs computes the exact optimal pairing.
func OptimalPairs(pc PairCost) (Pairing, error) {
	if err := pc.Validate(); err != nil {
		return Pairing{}, err
	}
	n := len(pc)
	if n%2 != 0 {
		return Pairing{}, fmt.Errorf("cosched: %d threads cannot be paired", n)
	}
	if n > MaxExactThreads {
		return Pairing{}, fmt.Errorf("cosched: n=%d exceeds exact limit %d", n, MaxExactThreads)
	}
	full := (1 << n) - 1
	dp := make([]float64, full+1)
	choice := make([]int, full+1) // packed pair (i<<8|j) chosen for this subset
	for s := 1; s <= full; s++ {
		dp[s] = math.Inf(-1)
		choice[s] = -1
	}
	dp[0] = 0
	for s := 0; s <= full; s++ {
		if math.IsInf(dp[s], -1) || bits.OnesCount(uint(s))%2 != 0 {
			continue
		}
		if s == full {
			continue
		}
		// Always match the lowest unset thread — avoids double counting.
		i := bits.TrailingZeros(uint(^s))
		for j := i + 1; j < n; j++ {
			if s&(1<<j) != 0 {
				continue
			}
			t := s | 1<<i | 1<<j
			if v := dp[s] + pc[i][j]; v > dp[t] {
				dp[t] = v
				choice[t] = i<<8 | j
			}
		}
	}
	if math.IsInf(dp[full], -1) {
		return Pairing{}, errors.New("cosched: no perfect matching found")
	}
	out := Pairing{Value: dp[full]}
	for s := full; s != 0; {
		packed := choice[s]
		i, j := packed>>8, packed&0xff
		out.Pairs = append(out.Pairs, [2]int{i, j})
		s &^= 1<<i | 1<<j
	}
	return out, nil
}

// GreedyPairs pairs threads greedily by descending pair value — the
// practical heuristic for large n where the subset DP is infeasible.
func GreedyPairs(pc PairCost) (Pairing, error) {
	if err := pc.Validate(); err != nil {
		return Pairing{}, err
	}
	n := len(pc)
	if n%2 != 0 {
		return Pairing{}, fmt.Errorf("cosched: %d threads cannot be paired", n)
	}
	used := make([]bool, n)
	var out Pairing
	for k := 0; k < n/2; k++ {
		bi, bj, best := -1, -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if used[j] {
					continue
				}
				if pc[i][j] > best {
					bi, bj, best = i, j, pc[i][j]
				}
			}
		}
		used[bi], used[bj] = true, true
		out.Pairs = append(out.Pairs, [2]int{bi, bj})
		out.Value += best
	}
	return out, nil
}

// RoundRobinPairs pairs threads (0,1), (2,3), ... — the naive baseline.
func RoundRobinPairs(pc PairCost) (Pairing, error) {
	if err := pc.Validate(); err != nil {
		return Pairing{}, err
	}
	n := len(pc)
	if n%2 != 0 {
		return Pairing{}, fmt.Errorf("cosched: %d threads cannot be paired", n)
	}
	var out Pairing
	for i := 0; i < n; i += 2 {
		out.Pairs = append(out.Pairs, [2]int{i, i + 1})
		out.Value += pc[i][i+1]
	}
	return out, nil
}

// Servers converts a pairing into a thread→socket map (pair k on socket
// k), for feeding co-run simulators.
func (p Pairing) Servers(n int) []int {
	servers := make([]int, n)
	for k, pair := range p.Pairs {
		servers[pair[0]] = k
		servers[pair[1]] = k
	}
	return servers
}
