package hetero

import (
	"math"
	"strings"
	"testing"

	"aa/internal/core"
	"aa/internal/rng"
	"aa/internal/utility"
)

func randomInstance(r *rng.Rand, n int, caps []float64) *Instance {
	maxCap := 0.0
	for _, c := range caps {
		if c > maxCap {
			maxCap = c
		}
	}
	threads := make([]utility.Func, n)
	for i := range threads {
		switch r.Intn(3) {
		case 0:
			threads[i] = utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, maxCap/2), C: maxCap}
		case 1:
			threads[i] = utility.Power{Scale: r.Uniform(0.5, 2), Beta: r.Uniform(0.3, 0.95), C: maxCap}
		default:
			threads[i] = utility.SatExp{Scale: r.Uniform(0.5, 4), K: r.Uniform(maxCap/20, maxCap/2), C: maxCap}
		}
	}
	return &Instance{Caps: append([]float64(nil), caps...), Threads: threads}
}

func TestValidate(t *testing.T) {
	in := randomInstance(rng.New(1), 4, []float64{50, 100})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Instance{
		{Caps: nil, Threads: in.Threads},
		{Caps: []float64{0}, Threads: in.Threads},
		{Caps: []float64{-5}, Threads: in.Threads},
		{Caps: []float64{10}},
		{Caps: []float64{10}, Threads: []utility.Func{nil}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAccessors(t *testing.T) {
	in := &Instance{
		Caps:    []float64{30, 100, 70},
		Threads: []utility.Func{utility.Linear{Slope: 1, C: 100}},
	}
	if in.MaxCap() != 100 || in.TotalCap() != 200 || in.M() != 3 || in.N() != 1 {
		t.Errorf("accessors: max=%v total=%v m=%d n=%d", in.MaxCap(), in.TotalCap(), in.M(), in.N())
	}
}

func TestAssignFeasible(t *testing.T) {
	base := rng.New(2)
	capSets := [][]float64{
		{100, 100},
		{20, 200},
		{50, 100, 150, 25},
		{1000},
	}
	for trial := 0; trial < 20; trial++ {
		r := base.Split(uint64(trial))
		caps := capSets[trial%len(capSets)]
		in := randomInstance(r, 1+r.Intn(20), caps)
		a := Assign(in)
		if err := a.Validate(in, 1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSuperOptimalIsUpperBound(t *testing.T) {
	base := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 2+r.Intn(10), []float64{30, 90, 60})
		so := SuperOptimal(in)
		for _, a := range []Assignment{Assign(in), AssignRoundRobin(in), AssignProportional(in)} {
			if err := a.Validate(in, 1e-9); err != nil {
				t.Fatal(err)
			}
			if u := a.Utility(in); u > so.Total*(1+1e-9) {
				t.Errorf("trial %d: utility %v exceeds bound %v", trial, u, so.Total)
			}
		}
	}
}

// With equal capacities the heterogeneous algorithm must match the
// homogeneous Algorithm 2 exactly.
func TestReducesToHomogeneousAlgorithm2(t *testing.T) {
	base := rng.New(4)
	for trial := 0; trial < 15; trial++ {
		r := base.Split(uint64(trial))
		const c = 100.0
		in := randomInstance(r, 3+r.Intn(15), []float64{c, c, c})
		coreIn := &core.Instance{M: 3, C: c, Threads: in.Threads}
		want := core.Assign2(coreIn).Utility(coreIn)
		got := Assign(in).Utility(in)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("trial %d: hetero %v != homogeneous %v", trial, got, want)
		}
	}
}

// Empirical approximation quality against the exact optimum on tiny
// instances with skewed capacities.
func TestEmpiricalRatioVsExact(t *testing.T) {
	base := rng.New(5)
	worst := 1.0
	for trial := 0; trial < 20; trial++ {
		r := base.Split(uint64(trial))
		caps := []float64{r.Uniform(10, 40), r.Uniform(50, 150)}
		in := randomInstance(r, 2+r.Intn(5), caps)
		opt, err := Exhaustive(in)
		if err != nil {
			t.Fatal(err)
		}
		optU := opt.Utility(in)
		gotU := Assign(in).Utility(in)
		if optU > 0 {
			if ratio := gotU / optU; ratio < worst {
				worst = ratio
			}
		}
		if gotU > optU*(1+1e-6) {
			t.Errorf("trial %d: heuristic %v beats 'optimal' %v", trial, gotU, optU)
		}
	}
	// The homogeneous guarantee is α ≈ 0.828; empirically the
	// heterogeneous variant stays well above it on these seeds.
	if worst < core.Alpha {
		t.Errorf("worst observed ratio %v below α = %v", worst, core.Alpha)
	}
}

func TestAssignBeatsBaselinesOnSkewedInstance(t *testing.T) {
	// One big server, one tiny one; a few heavy hitters and junk threads.
	const maxCap = 160.0
	threads := []utility.Func{
		utility.Linear{Slope: 10, C: maxCap},
		utility.Linear{Slope: 8, C: maxCap},
		utility.Log{Scale: 0.1, Shift: 5, C: maxCap},
		utility.Log{Scale: 0.1, Shift: 5, C: maxCap},
		utility.Log{Scale: 0.1, Shift: 5, C: maxCap},
	}
	in := &Instance{Caps: []float64{160, 20}, Threads: threads}
	a := Assign(in).Utility(in)
	rr := AssignRoundRobin(in).Utility(in)
	prop := AssignProportional(in).Utility(in)
	if a < rr {
		t.Errorf("Assign %v worse than round robin %v", a, rr)
	}
	if a < prop*0.95 {
		t.Errorf("Assign %v materially worse than proportional %v", a, prop)
	}
}

func TestExhaustiveRefusesHuge(t *testing.T) {
	in := randomInstance(rng.New(6), 30, []float64{10, 20, 30, 40})
	if _, err := Exhaustive(in); err == nil {
		t.Error("4^30 search accepted")
	}
}

func TestRoundRobinSharesCapacityEqually(t *testing.T) {
	in := &Instance{
		Caps: []float64{60, 30},
		Threads: []utility.Func{
			utility.Linear{Slope: 1, C: 60},
			utility.Linear{Slope: 1, C: 60},
			utility.Linear{Slope: 1, C: 60},
			utility.Linear{Slope: 1, C: 60},
		},
	}
	a := AssignRoundRobin(in)
	if err := a.Validate(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	// Threads 0, 2 on server 0 (cap 60): 30 each; threads 1, 3 on
	// server 1 (cap 30): 15 each.
	want := []float64{30, 15, 30, 15}
	for i, w := range want {
		if math.Abs(a.Alloc[i]-w) > 1e-9 {
			t.Errorf("thread %d alloc %v, want %v", i, a.Alloc[i], w)
		}
	}
}

func TestSkewSeries(t *testing.T) {
	tbl, err := SkewSeries(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"ext-hetero", "A/SO", "A/RR", "0.85"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("got %d rows, want 5", len(tbl.Rows))
	}
	if _, err := SkewSeries(0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}
