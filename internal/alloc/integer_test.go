package alloc

import (
	"math"
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

func TestIntegerWaterfillMatchesGreedy(t *testing.T) {
	base := rng.New(51)
	for trial := 0; trial < 15; trial++ {
		r := base.Split(uint64(trial))
		n := 2 + r.Intn(8)
		fs := make([]utility.Func, n)
		for i := range fs {
			switch r.Intn(3) {
			case 0:
				fs[i] = utility.Log{Scale: r.Uniform(1, 5), Shift: r.Uniform(2, 40), C: 500}
			case 1:
				fs[i] = utility.SatExp{Scale: r.Uniform(1, 5), K: r.Uniform(10, 100), C: 500}
			default:
				fs[i] = utility.Power{Scale: r.Uniform(0.5, 2), Beta: r.Uniform(0.3, 0.9), C: 500}
			}
		}
		budget := 50 + r.Intn(800)
		wf := IntegerWaterfill(fs, budget)
		greedy := Greedy(fs, float64(budget), 1)
		if math.Abs(wf.Total-greedy.Total) > 1e-6*(1+greedy.Total) {
			t.Errorf("trial %d (budget %d): waterfill %v != greedy %v",
				trial, budget, wf.Total, greedy.Total)
		}
		// Integer allocations summing to at most the budget.
		sum := 0.0
		for i, a := range wf.Alloc {
			if a != math.Trunc(a) {
				t.Errorf("non-integer allocation %v", a)
			}
			if a < 0 || a > fs[i].Cap() {
				t.Errorf("allocation %v out of range", a)
			}
			sum += a
		}
		if sum > float64(budget) {
			t.Errorf("sum %v > budget %d", sum, budget)
		}
	}
}

func TestIntegerWaterfillTiesExhaustBudget(t *testing.T) {
	// Many identical linear threads: every unit has the same gain; the
	// plateau completion must still hand out the whole budget.
	fs := make([]utility.Func, 7)
	for i := range fs {
		fs[i] = utility.Linear{Slope: 2, C: 100}
	}
	res := IntegerWaterfill(fs, 250)
	sum := 0.0
	for _, a := range res.Alloc {
		sum += a
	}
	if sum != 250 {
		t.Errorf("allocated %v of 250 units", sum)
	}
	if res.Total != 500 {
		t.Errorf("total %v, want 500", res.Total)
	}
}

func TestIntegerWaterfillBudgetCoversCaps(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 1, C: 10},
		utility.Linear{Slope: 2, C: 20},
	}
	res := IntegerWaterfill(fs, 100)
	if res.Alloc[0] != 10 || res.Alloc[1] != 20 {
		t.Errorf("alloc %v, want caps", res.Alloc)
	}
}

func TestIntegerWaterfillDegenerate(t *testing.T) {
	if res := IntegerWaterfill(nil, 10); res.Total != 0 {
		t.Error("empty")
	}
	fs := []utility.Func{utility.Linear{Slope: 1, C: 10}}
	if res := IntegerWaterfill(fs, 0); res.Total != 0 {
		t.Error("zero budget")
	}
}

func TestIntegerWaterfillMatchesDPGroundTruth(t *testing.T) {
	fs := []utility.Func{
		utility.Log{Scale: 3, Shift: 5, C: 60},
		utility.CappedLinear{Slope: 0.7, Knee: 25, C: 60},
		utility.SatExp{Scale: 4, K: 15, C: 60},
	}
	for _, budget := range []int{10, 45, 90, 170} {
		wf := IntegerWaterfill(fs, budget)
		dp := DPExact(fs, float64(budget), 1)
		if math.Abs(wf.Total-dp.Total) > 1e-6*(1+dp.Total) {
			t.Errorf("budget %d: waterfill %v != DP %v", budget, wf.Total, dp.Total)
		}
	}
}

func TestIntegerEqualSplit(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 3, C: 100},
		utility.Linear{Slope: 1, C: 100},
		utility.Linear{Slope: 2, C: 100},
	}
	res := IntegerEqualSplit(fs, 10)
	// 3 each, remainder 1 goes to the slope-3 thread.
	if res.Alloc[0] != 4 || res.Alloc[1] != 3 || res.Alloc[2] != 3 {
		t.Errorf("alloc %v, want [4 3 3]", res.Alloc)
	}
}

func TestIntegerEqualSplitCapped(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 1, C: 2},
		utility.Linear{Slope: 1, C: 100},
	}
	res := IntegerEqualSplit(fs, 10)
	if res.Alloc[0] != 2 {
		t.Errorf("capped thread got %v", res.Alloc[0])
	}
	if res.Alloc[0]+res.Alloc[1] != 10 {
		t.Errorf("budget not exhausted: %v", res.Alloc)
	}
}

// The whole point of the Galil-style algorithm: runtime logarithmic, not
// linear, in the budget.
func BenchmarkIntegerWaterfillBigBudget(b *testing.B) {
	fs := make([]utility.Func, 100)
	for i := range fs {
		fs[i] = utility.Log{Scale: float64(i%7 + 1), Shift: float64(i%13 + 5), C: 1e6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntegerWaterfill(fs, 50_000_000)
	}
}

func BenchmarkGreedyBigBudget(b *testing.B) {
	fs := make([]utility.Func, 100)
	for i := range fs {
		fs[i] = utility.Log{Scale: float64(i%7 + 1), Shift: float64(i%13 + 5), C: 1e6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(fs, 50_000_000, 1000) // coarse units; exact greedy would take minutes
	}
}
