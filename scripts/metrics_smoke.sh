#!/usr/bin/env bash
# metrics_smoke.sh — end-to-end check of the live telemetry endpoint.
#
# Starts aabench with -metrics-addr=localhost:0 on a workload large
# enough to still be running when we scrape, waits for the "serving"
# line on stderr to learn the bound port, curls /metrics once, and
# fails unless every required aa_* metric is present in the exposition.
# Run from the repository root; CI runs it after the race tests.
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d)"
stderr_log="$tmpdir/stderr.log"
metrics="$tmpdir/metrics.txt"
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    [ -n "${pid:-}" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

go build -o "$tmpdir/aabench" ./cmd/aabench

# A big enough trial count that the run is alive for the scrape; the
# process is killed once the scrape succeeds, so total cost stays small.
"$tmpdir/aabench" -fig fig1a -trials 2000 -workers 2 \
    -metrics-addr=localhost:0 >/dev/null 2>"$stderr_log" &
pid=$!

# Wait for the bound address to appear on stderr (up to ~10 s).
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's|.*serving .* on http://\([^ ]*\)$|\1|p' "$stderr_log" | head -n1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "metrics_smoke: aabench exited before serving" >&2
        cat "$stderr_log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "metrics_smoke: never saw the serving line on stderr" >&2
    cat "$stderr_log" >&2
    exit 1
fi

# Scrape once, with retries while the first solves land.
ok=0
i=0
while [ $i -lt 50 ]; do
    if curl -fsS "http://$addr/metrics" >"$metrics" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ "$ok" != 1 ]; then
    echo "metrics_smoke: could not scrape http://$addr/metrics" >&2
    exit 1
fi

status=0
for want in \
    aa_core_superopt_total \
    aa_core_bisection_iterations_total \
    aa_core_linearize_total \
    aa_core_assign2_total \
    aa_pool_submitted_total \
    aa_pool_queue_depth \
    aa_pool_solve_latency_seconds_bucket \
    aa_experiment_points_total; do
    if ! grep -q "^$want" "$metrics" && ! grep -q "^${want}{" "$metrics"; then
        echo "metrics_smoke: MISSING $want" >&2
        status=1
    fi
done
if [ "$status" != 0 ]; then
    echo "--- scraped exposition ---" >&2
    cat "$metrics" >&2
    exit 1
fi

echo "metrics_smoke: OK ($(grep -c '^aa_' "$metrics") aa_* sample lines from http://$addr/metrics)"
