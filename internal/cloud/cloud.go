// Package cloud is the cloud-provider substrate behind the paper's third
// motivating application (§I): a provider sells virtual machine
// instances running on physical machines. Each customer expresses a
// willingness to pay for different resource amounts as a concave utility
// function, and the provider both places VMs on machines and sizes them
// to maximize revenue.
//
// The package also implements the industry-practice baseline the paper's
// introduction argues against: fixed instance tiers (t-shirt sizes)
// placed first-fit, where each customer receives exactly the tier they
// requested or nothing. The intro shows this can be a factor n^(1−β)
// from optimal for power-law payment curves; IntroGapSeries reproduces
// that series.
package cloud

import (
	"fmt"
	"math"
	"sort"

	"aa/internal/core"
	"aa/internal/rng"
	"aa/internal/utility"
)

// Customer is one tenant with a willingness-to-pay curve.
type Customer struct {
	Name string
	// Pay is the $/hour the customer pays for a VM with x resource
	// units. Must be nonnegative, nondecreasing, concave.
	Pay utility.Func
}

// Fleet is a set of physical machines and customers to serve.
type Fleet struct {
	Machines  int     // identical physical machines (AA servers)
	Capacity  float64 // resource units per machine (e.g. vCPUs)
	Customers []Customer
}

// Validate checks the fleet is well formed.
func (f *Fleet) Validate() error {
	if f.Machines < 1 {
		return fmt.Errorf("cloud: %d machines", f.Machines)
	}
	if f.Capacity <= 0 {
		return fmt.Errorf("cloud: capacity %v", f.Capacity)
	}
	if len(f.Customers) == 0 {
		return fmt.Errorf("cloud: no customers")
	}
	for i, c := range f.Customers {
		if c.Pay == nil {
			return fmt.Errorf("cloud: customer %d (%s) has nil payment curve", i, c.Name)
		}
	}
	return nil
}

// Instance converts the fleet into an AA instance whose total utility is
// the provider's revenue rate.
func (f *Fleet) Instance() (*core.Instance, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	threads := make([]utility.Func, len(f.Customers))
	for i, c := range f.Customers {
		threads[i] = c.Pay
	}
	return &core.Instance{M: f.Machines, C: f.Capacity, Threads: threads}, nil
}

// Tier is a fixed instance size with a fixed price — the baseline's
// product catalog.
type Tier struct {
	Name  string
	Size  float64 // resource units
	Price float64 // $/hour, fixed regardless of the customer's curve
}

// DefaultTiers is a typical 4-tier catalog over a 64-unit machine, priced
// linearly in size.
func DefaultTiers(capacity float64) []Tier {
	return []Tier{
		{Name: "small", Size: capacity / 32, Price: capacity / 32},
		{Name: "medium", Size: capacity / 8, Price: capacity / 8},
		{Name: "large", Size: capacity / 4, Price: capacity / 4},
		{Name: "xlarge", Size: capacity / 2, Price: capacity / 2},
	}
}

// TierChoice records which tier a customer picked.
type TierChoice struct {
	Customer int
	Tier     int // index into the catalog, -1 if no tier has positive surplus
}

// ChooseTiers has each customer pick the tier maximizing their consumer
// surplus Pay(size) − price (ties to the smaller tier); customers with no
// positive-surplus tier opt out (-1).
func ChooseTiers(f *Fleet, tiers []Tier) []TierChoice {
	choices := make([]TierChoice, len(f.Customers))
	for i, c := range f.Customers {
		best, bestSurplus := -1, 0.0
		for ti, tier := range tiers {
			if tier.Size > f.Capacity {
				continue
			}
			surplus := c.Pay.Value(tier.Size) - tier.Price
			if surplus > bestSurplus+1e-12 {
				best, bestSurplus = ti, surplus
			}
		}
		choices[i] = TierChoice{Customer: i, Tier: best}
	}
	return choices
}

// TierRevenue places the chosen tiers first-fit-decreasing on the fleet
// and returns the provider's revenue plus the assignment (opted-out or
// unplaceable customers are parked with zero allocation). Revenue per
// placed customer is the tier's fixed price.
func TierRevenue(f *Fleet, tiers []Tier, choices []TierChoice) (float64, core.Assignment) {
	n := len(f.Customers)
	a := core.NewAssignment(n)
	residual := make([]float64, f.Machines)
	for j := range residual {
		residual[j] = f.Capacity
	}
	// First-fit decreasing by tier size.
	order := make([]int, 0, n)
	for i := range choices {
		order = append(order, i)
	}
	sort.SliceStable(order, func(x, y int) bool {
		sx, sy := -1.0, -1.0
		if t := choices[order[x]].Tier; t >= 0 {
			sx = tiers[t].Size
		}
		if t := choices[order[y]].Tier; t >= 0 {
			sy = tiers[t].Size
		}
		return sx > sy
	})
	revenue := 0.0
	for _, i := range order {
		ti := choices[i].Tier
		if ti < 0 {
			a.Server[i], a.Alloc[i] = emptiest(residual), 0
			continue
		}
		size := tiers[ti].Size
		placed := false
		for j := range residual {
			if residual[j] >= size {
				a.Server[i] = j
				a.Alloc[i] = size
				residual[j] -= size
				revenue += tiers[ti].Price
				placed = true
				break
			}
		}
		if !placed {
			a.Server[i], a.Alloc[i] = emptiest(residual), 0
		}
	}
	return revenue, a
}

func emptiest(residual []float64) int {
	best := 0
	for j := 1; j < len(residual); j++ {
		if residual[j] > residual[best] {
			best = j
		}
	}
	return best
}

// RandomFleet draws n customers with power-law payment curves
// Pay(x) = scale·x^β, β ~ U[betaLo, betaHi], scale ~ U[0.5, 2].
func RandomFleet(machines int, capacity float64, n int, betaLo, betaHi float64, r *rng.Rand) *Fleet {
	f := &Fleet{Machines: machines, Capacity: capacity}
	for i := 0; i < n; i++ {
		f.Customers = append(f.Customers, Customer{
			Name: fmt.Sprintf("tenant-%d", i),
			Pay: utility.Power{
				Scale: r.Uniform(0.5, 2),
				Beta:  r.Uniform(betaLo, betaHi),
				C:     capacity,
			},
		})
	}
	return f
}

// IntroGapPoint is one entry of the introduction's fixed-request series.
type IntroGapPoint struct {
	N          int
	FixedTotal float64 // utility of fixed z-sized requests, C·z^(β−1)
	OptTotal   float64 // optimal equal-split utility, C^β·n^(1−β)
	Ratio      float64 // Opt/Fixed = (n·z/C)^(1−β)
}

// IntroGapSeries reproduces the §I example analytically and
// computationally: n threads with f(x) = x^β on one server of capacity
// C, each requesting a fixed z. The fixed-request utility is constant in
// n while the optimum grows as n^(1−β).
func IntroGapSeries(c, z, beta float64, ns []int) []IntroGapPoint {
	out := make([]IntroGapPoint, 0, len(ns))
	for _, n := range ns {
		threads := make([]utility.Func, n)
		requests := make([]float64, n)
		for i := range threads {
			threads[i] = utility.Power{Scale: 1, Beta: beta, C: c}
			requests[i] = z
		}
		in := &core.Instance{M: 1, C: c, Threads: threads}
		fixed := core.AssignFixedRequest(in, requests).Utility(in)
		opt := core.SuperOptimal(in).Total
		ratio := math.Inf(1)
		if fixed > 0 {
			ratio = opt / fixed
		}
		out = append(out, IntroGapPoint{N: n, FixedTotal: fixed, OptTotal: opt, Ratio: ratio})
	}
	return out
}
