// Command aagen generates a random AA instance in the JSON format
// accepted by aasolve, using the paper's §VII workload generator.
//
// Usage:
//
//	aagen [-dist uniform|normal|powerlaw|discrete] [-m 8] [-c 1000]
//	      [-n 40] [-seed 1] [-alpha 2] [-gamma 0.85] [-theta 5]
//	      [-metrics-addr host:port] [-trace-out file.jsonl] [-check]
//
// The instance is written to stdout. The observability flags
// (-metrics-addr, -trace-out, -check) are the shared trio every AA
// binary accepts (see internal/cliutil); generation itself performs no
// solves, so they matter mostly when aagen is embedded in scripted
// pipelines that expect a uniform flag surface.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"aa/internal/cliutil"
	"aa/internal/gen"
	"aa/internal/instio"
	"aa/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "aagen: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aagen", flag.ContinueOnError)
	var (
		distName = fs.String("dist", "uniform", "value distribution: uniform, normal, powerlaw, discrete")
		m        = fs.Int("m", 8, "number of servers")
		c        = fs.Float64("c", 1000, "capacity per server")
		n        = fs.Int("n", 40, "number of threads")
		seed     = fs.Uint64("seed", 1, "random seed")
		alpha    = fs.Float64("alpha", 2, "power-law exponent (dist=powerlaw)")
		gamma    = fs.Float64("gamma", 0.85, "low-value probability (dist=discrete)")
		theta    = fs.Float64("theta", 5, "high/low value ratio (dist=discrete)")
	)
	var common cliutil.Common
	common.AddFlags(fs)
	if err := cliutil.Parse(fs, args, stderr); err != nil {
		if errors.Is(err, cliutil.ErrHelp) {
			return nil
		}
		return err
	}
	shutdown, err := common.Start("aagen", stderr)
	if err != nil {
		return err
	}
	defer shutdown()

	var dist gen.Dist
	switch *distName {
	case "uniform":
		dist = gen.DefaultUniform
	case "normal":
		dist = gen.DefaultNormal
	case "powerlaw":
		dist = gen.PowerLaw{Alpha: *alpha, Xmin: 1}
	case "discrete":
		dist = gen.Discrete{L: 1, Gamma: *gamma, Theta: *theta}
	default:
		return fmt.Errorf("unknown distribution %q", *distName)
	}

	in, err := gen.Instance(dist, *m, *c, *n, rng.New(*seed))
	if err != nil {
		return err
	}
	return instio.Encode(stdout, in)
}
