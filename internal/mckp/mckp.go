// Package mckp implements the Multiple-Choice Knapsack Problem, the
// closest classical relative of AA the paper discusses in §II: "The
// MCKP problem can model utility functions as it considers classes of
// items with different weights and values and chooses one item from
// each class ... However, MCKP only considers a single knapsack, and
// thus corresponds to a restricted form of AA with one server."
//
// Given n classes, each offering items (weight, value), choose exactly
// one item per class with total weight ≤ capacity, maximizing total
// value. Discretizing a thread's utility function into (allocation,
// utility) pairs turns single-server AA into MCKP exactly — the tests
// verify our concave allocators against this independent formulation.
//
// Two solvers are provided: an exact O(n·C·k) dynamic program and the
// classical LP-greedy (dominance filtering + incremental efficiency
// ordering, cf. Kellerer and Gens–Levner in the paper's related work)
// which is near-optimal for concave classes because their incremental
// items are already efficiency-sorted.
package mckp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"aa/internal/utility"
)

// Item is one choice within a class.
type Item struct {
	Weight int
	Value  float64
}

// Problem is an MCKP instance. Every class must contain a zero-weight
// item (threads may receive nothing) or the instance may be infeasible;
// FromUtilities always includes one.
type Problem struct {
	Capacity int
	Classes  [][]Item
}

// Validate checks the instance is well formed.
func (p *Problem) Validate() error {
	if p.Capacity < 0 {
		return fmt.Errorf("mckp: negative capacity %d", p.Capacity)
	}
	if len(p.Classes) == 0 {
		return errors.New("mckp: no classes")
	}
	for ci, class := range p.Classes {
		if len(class) == 0 {
			return fmt.Errorf("mckp: class %d is empty", ci)
		}
		for _, it := range class {
			if it.Weight < 0 {
				return fmt.Errorf("mckp: class %d has negative weight %d", ci, it.Weight)
			}
			if math.IsNaN(it.Value) || math.IsInf(it.Value, 0) {
				return fmt.Errorf("mckp: class %d has non-finite value", ci)
			}
		}
	}
	return nil
}

// Solution is a choice of one item index per class.
type Solution struct {
	Pick   []int // Pick[c] indexes Classes[c]
	Value  float64
	Weight int
}

// FromUtilities discretizes single-server AA into MCKP: class i holds
// items (w, f_i(w·unit)) for w = 0..cap_i in steps of one unit.
func FromUtilities(fs []utility.Func, capacity int, unit float64) *Problem {
	p := &Problem{Capacity: capacity}
	for _, f := range fs {
		maxW := int(f.Cap() / unit)
		if maxW > capacity {
			maxW = capacity
		}
		class := make([]Item, 0, maxW+1)
		for w := 0; w <= maxW; w++ {
			class = append(class, Item{Weight: w, Value: f.Value(float64(w) * unit)})
		}
		p.Classes = append(p.Classes, class)
	}
	return p
}

// SolveDP solves the instance exactly by dynamic programming over
// capacity: dp[c] is the best value of the processed classes using
// weight exactly ≤ c. O(classes · capacity · items-per-class).
func (p *Problem) SolveDP() (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	const negInf = math.SmallestNonzeroFloat64 - math.MaxFloat64
	cap := p.Capacity
	dp := make([]float64, cap+1)
	next := make([]float64, cap+1)
	// picks[c][b] = item chosen for class c in the optimum with budget b.
	picks := make([][]int16, len(p.Classes))
	for b := range dp {
		dp[b] = 0 // zero classes, any budget: value 0
	}
	for ci, class := range p.Classes {
		picks[ci] = make([]int16, cap+1)
		for b := 0; b <= cap; b++ {
			best, bestItem := negInf, -1
			for ii, it := range class {
				if it.Weight > b {
					continue
				}
				if v := dp[b-it.Weight] + it.Value; v > best {
					best, bestItem = v, ii
				}
			}
			if bestItem < 0 {
				return Solution{}, fmt.Errorf("mckp: class %d infeasible at budget %d (no zero-weight item?)", ci, b)
			}
			next[b] = best
			picks[ci][b] = int16(bestItem)
		}
		dp, next = next, dp
	}
	sol := Solution{Pick: make([]int, len(p.Classes)), Value: dp[cap]}
	b := cap
	for ci := len(p.Classes) - 1; ci >= 0; ci-- {
		ii := int(picks[ci][b])
		sol.Pick[ci] = ii
		sol.Weight += p.Classes[ci][ii].Weight
		b -= p.Classes[ci][ii].Weight
	}
	return sol, nil
}

// incItem is an incremental (delta-weight, delta-value) step used by the
// LP greedy.
type incItem struct {
	class      int
	item       int // index of the item this step upgrades to
	dw         int
	dv         float64
	efficiency float64
}

// SolveGreedy is the classical LP-relaxation greedy: per class, filter
// to the efficient frontier (dominance + LP-dominance), decompose each
// class into incremental upgrade steps, sort all steps by efficiency
// (Δvalue/Δweight) and apply them while capacity remains. For classes
// derived from concave utilities the steps are exactly the marginal
// gains, so the greedy is optimal up to the last fractional step —
// matching the Fox/Galil allocators from another direction.
func (p *Problem) SolveGreedy() (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Classes)
	sol := Solution{Pick: make([]int, n)}
	perClass := make([][]incItem, n)
	for ci, class := range p.Classes {
		frontier := lpFrontier(class)
		if len(frontier) == 0 {
			return Solution{}, fmt.Errorf("mckp: class %d has no feasible items", ci)
		}
		// Start every class at its lightest frontier item.
		sol.Pick[ci] = frontier[0]
		sol.Weight += class[frontier[0]].Weight
		sol.Value += class[frontier[0]].Value
		for k := 1; k < len(frontier); k++ {
			prev, cur := class[frontier[k-1]], class[frontier[k]]
			dw := cur.Weight - prev.Weight
			dv := cur.Value - prev.Value
			if dw <= 0 || dv <= 0 {
				continue
			}
			perClass[ci] = append(perClass[ci], incItem{
				class: ci, item: frontier[k], dw: dw, dv: dv,
				efficiency: dv / float64(dw),
			})
		}
	}
	if sol.Weight > p.Capacity {
		return Solution{}, errors.New("mckp: lightest choices already exceed capacity")
	}
	// Incremental greedy: each class exposes only its next upgrade step
	// (the frontier guarantees those steps have nonincreasing efficiency
	// within a class); repeatedly apply the fitting step of greatest
	// efficiency until nothing fits.
	ptr := make([]int, n)
	for {
		best := -1
		var bestStep incItem
		for ci := 0; ci < n; ci++ {
			if ptr[ci] >= len(perClass[ci]) {
				continue
			}
			st := perClass[ci][ptr[ci]]
			if sol.Weight+st.dw > p.Capacity {
				continue
			}
			if best < 0 || st.efficiency > bestStep.efficiency {
				best, bestStep = ci, st
			}
		}
		if best < 0 {
			break
		}
		ptr[best]++
		sol.Pick[best] = bestStep.item
		sol.Weight += bestStep.dw
		sol.Value += bestStep.dv
	}
	return sol, nil
}

// lpFrontier returns indices of the LP-efficient items of a class in
// increasing weight order: dominated items (heavier and no more
// valuable) and LP-dominated items (below the upper convex hull in
// weight–value space) are removed.
func lpFrontier(class []Item) []int {
	idx := make([]int, len(class))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := class[idx[a]], class[idx[b]]
		if ia.Weight != ib.Weight {
			return ia.Weight < ib.Weight
		}
		return ia.Value > ib.Value
	})
	// Remove dominated items (keep strictly increasing value).
	var kept []int
	bestValue := math.Inf(-1)
	for _, i := range idx {
		if class[i].Value > bestValue {
			kept = append(kept, i)
			bestValue = class[i].Value
		}
	}
	// Upper convex hull in (weight, value): LP-dominance filtering.
	var hull []int
	for _, i := range kept {
		for len(hull) >= 2 {
			a, b := class[hull[len(hull)-2]], class[hull[len(hull)-1]]
			c := class[i]
			// Remove b only if it is strictly under the chord a–c;
			// collinear points stay so that concave classes keep their
			// fine-grained unit steps (coarse steps would strand
			// residual capacity in the integral greedy).
			lhs := (b.Value - a.Value) * float64(c.Weight-a.Weight)
			rhs := (c.Value - a.Value) * float64(b.Weight-a.Weight)
			if lhs < rhs-1e-12*(1+math.Abs(rhs)) {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, i)
	}
	return hull
}
