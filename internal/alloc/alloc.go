// Package alloc solves the single-knapsack concave resource allocation
// problem: given utility functions f_1..f_n and a budget B, choose
// allocations x_i ∈ [0, f_i.Cap()] with Σ x_i ≤ B maximizing Σ f_i(x_i).
//
// This is the classic separable concave allocation problem. Concave
// implies a water-filling optimum: there is a marginal value λ ≥ 0 such
// that every thread is allocated up to the point where its derivative
// drops to λ. Concave solves it by bisection on λ, the same structure as
// Galil's O(n (log B)²) algorithm cited by the paper; Greedy is Fox's
// unit-by-unit greedy, exact at a fixed granularity and used as ground
// truth in tests.
//
// The paper's super-optimal allocation (Definition V.1) is exactly
// Concave with budget B = m·C and per-thread caps C.
package alloc

import (
	"math"
	"sync"

	"aa/internal/rng"
	"aa/internal/utility"
)

// Result is the outcome of an allocation.
type Result struct {
	// Alloc[i] is the resource given to thread i.
	Alloc []float64
	// Total is Σ f_i(Alloc[i]).
	Total float64
	// Lambda is the water-filling marginal value found by Concave
	// (0 for allocators that do not compute one).
	Lambda float64
	// Iterations counts the λ-search steps Concave performed (doubling
	// plus bisection; 0 for the trivial all-caps case and for other
	// allocators). It is the empirical counterpart of the paper's
	// O(n (log mC)²) bound and feeds the aa_core_bisection_iterations
	// telemetry counter.
	Iterations int
}

// TotalValue returns Σ f_i(alloc[i]).
func TotalValue(fs []utility.Func, alloc []float64) float64 {
	total := 0.0
	for i, f := range fs {
		total += f.Value(alloc[i])
	}
	return total
}

// sumAt returns Σ_i InverseDeriv(f_i, λ) and fills alloc.
func sumAt(fs []utility.Func, lambda float64, alloc []float64) float64 {
	sum := 0.0
	for i, f := range fs {
		alloc[i] = utility.InverseDeriv(f, lambda, 1e-12)
		sum += alloc[i]
	}
	return sum
}

// Concave computes a water-filling optimal allocation of budget among the
// concave utilities fs by bisection on the marginal value λ. Each thread's
// allocation is capped at its own f.Cap(). The returned allocations sum to
// at most budget (up to 1e-9 relative tolerance).
//
// If Σ caps <= budget every thread simply receives its cap. Plateaus in
// the derivatives (piecewise-linear utilities) are handled by a final
// redistribution pass among threads whose marginal equals λ.
//
// Concave is exactly ConcaveInto(nil, fs, budget); use ConcaveInto to
// reuse an allocation slice across solves. ConcaveRef is the unpruned
// reference implementation kept for differential testing.
func Concave(fs []utility.Func, budget float64) Result {
	return ConcaveInto(nil, fs, budget)
}

// Scratch is the per-solve working set of the pruned bisection. The
// package-level entry points borrow one from an internal pool;
// ConcaveWith takes a caller-owned Scratch instead, so parallel solvers
// can give every worker its own and keep pool traffic (and the cache
// bouncing it implies) out of their hot loops. The zero value is ready
// to use; buffers grow on first solve and are reused afterwards. A
// Scratch is not safe for concurrent use.
type Scratch struct {
	caps   []float64
	active []int
}

// grow sizes the scratch for n threads, reusing prior capacity.
func (sc *Scratch) grow(n int) {
	if cap(sc.caps) < n {
		sc.caps = make([]float64, n)
		sc.active = make([]int, n)
	}
}

var concavePool = sync.Pool{New: func() any { return new(Scratch) }}

// ConcaveInto is Concave writing the allocation into dst (grown if its
// capacity is short, so pass a slice with capacity >= len(fs) for an
// allocation-free solve). It prunes the λ-search: the per-thread amount
// x_i(λ) = InverseDeriv_i(λ) is nonincreasing in λ, so once a probe on a
// branch that only raises λ finds x_i = 0 the thread is settled at 0 for
// the rest of the search, and once a probe on a branch that only lowers λ
// finds x_i = Cap_i the thread is settled at its cap. Settled threads drop
// out of the active set and later probes never re-evaluate them; their sum
// is carried as a constant. Probe cost decays from O(n) toward O(#threads
// interior at the optimum), which on capacity-tight workloads is a small
// fraction of n.
func ConcaveInto(dst []float64, fs []utility.Func, budget float64) Result {
	sc := concavePool.Get().(*Scratch)
	defer concavePool.Put(sc)
	return ConcaveWith(sc, dst, fs, budget)
}

// ConcaveWith is ConcaveInto using a caller-owned Scratch instead of
// the package pool — the parallel-solver form: one Scratch per worker
// means concurrent solves share no state at all.
func ConcaveWith(sc *Scratch, dst []float64, fs []utility.Func, budget float64) Result {
	n := len(fs)
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	if n == 0 || budget <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return Result{Alloc: dst}
	}

	sc.grow(n)
	caps := sc.caps[:n]
	active := sc.active[:0]

	// Trivial case: budget covers every cap.
	capSum := 0.0
	for i, f := range fs {
		caps[i] = f.Cap()
		capSum += caps[i]
	}
	if capSum <= budget {
		copy(dst, caps)
		return Result{Alloc: dst, Total: TotalValue(fs, dst)}
	}
	for i := range fs {
		active = append(active, i)
	}

	// base carries the settled threads' contribution to Σ x_i(λ).
	base := 0.0
	sumActive := func(lambda float64) float64 {
		sum := base
		for _, i := range active {
			x := utility.InverseDeriv(fs[i], lambda, 1e-12)
			dst[i] = x
			sum += x
		}
		return sum
	}
	// settleAtZero drops threads the last (over-budget) probe priced out;
	// every later evaluation uses a λ at least as large, where x_i stays 0.
	settleAtZero := func() {
		kept := active[:0]
		for _, i := range active {
			if dst[i] != 0 {
				kept = append(kept, i)
			}
		}
		active = kept
	}
	// settleAtCap drops threads the last (within-budget) probe saturated;
	// every later evaluation uses a λ no larger, where x_i stays Cap_i.
	settleAtCap := func() {
		kept := active[:0]
		for _, i := range active {
			if dst[i] == caps[i] {
				base += caps[i]
			} else {
				kept = append(kept, i)
			}
		}
		active = kept
	}

	// Find hi with sumAt(hi) <= budget by doubling. λ = 0 gives capSum >
	// budget, so the optimal λ is positive. Only the over-budget probes
	// (the ones that keep the loop running) settle threads: the search
	// never revisits a λ below the probe that priced a thread out.
	iterations := 0
	lo, hi := 0.0, 1.0
	for sumActive(hi) > budget {
		iterations++
		settleAtZero()
		lo = hi
		hi *= 2
		if hi > 1e18 {
			break // derivatives are astronomically steep; give up doubling
		}
	}

	// Bisect λ. 100 iterations gives ~2^-100 relative precision, far past
	// float64; we stop early once the interval is negligible.
	for iter := 0; iter < 200 && hi-lo > 1e-15*(1+hi); iter++ {
		iterations++
		mid := 0.5 * (lo + hi)
		if sumActive(mid) > budget {
			lo = mid
			settleAtZero()
		} else {
			hi = mid
			settleAtCap()
		}
	}

	// Use the feasible end (λ = hi ⇒ sum <= budget), then hand out any
	// remaining budget to plateau threads: those that would take more at
	// λ = lo. Giving them the leftovers is optimal because their marginal
	// utility in the gap is exactly the water level. Settled threads take
	// nothing in the gap — a thread at its cap has no headroom and a
	// priced-out thread still prices out at λ = lo — so only the active
	// set is scanned, in index order as before.
	sum := sumActive(hi)
	if sum > budget {
		// The doubling search gave up: even at λ = 1e18 the derivatives
		// are steeper than the water level, so every probed allocation
		// over-fills the budget. Feasibility must hold unconditionally,
		// so scale the whole vector back onto the budget; scaling down
		// keeps every x_i within its cap, and the utility lost versus
		// the true optimum is bounded by the water-level gap beyond the
		// deepest probed λ (astronomically small in practice). Lambda
		// reports that deepest probe so callers can tell this path from
		// an exact bisection. No thread can be settled at cap here (that
		// needs a within-budget probe, which ends the doubling search),
		// so scaling the whole vector touches only live amounts.
		scale := budget / sum
		for i := range dst {
			dst[i] *= scale
		}
		return Result{Alloc: dst, Total: TotalValue(fs, dst), Lambda: hi, Iterations: iterations}
	}
	remaining := budget - sum
	if remaining > 0 {
		for _, i := range active {
			if remaining <= 1e-12*budget {
				break
			}
			more := utility.InverseDeriv(fs[i], lo, 1e-12) - dst[i]
			if more <= 0 {
				continue
			}
			grant := math.Min(more, remaining)
			dst[i] += grant
			remaining -= grant
		}
	}
	return Result{Alloc: dst, Total: TotalValue(fs, dst), Lambda: hi, Iterations: iterations}
}

// Greedy is Fox's unit-greedy allocator: it repeatedly grants one unit of
// resource to the thread with the greatest marginal utility for its next
// unit, until the budget is exhausted or no thread gains from more
// resource. For concave utilities this is exact at the chosen
// granularity. Runtime O((budget/unit)·log n).
//
// Budget quantization: exactly ⌊budget/unit⌋ grants are made and the
// fractional remainder of budget/unit is deliberately left unallocated —
// it is the granularity error the caller accepted by choosing unit, and
// keeping all grants on the unit grid is what makes Greedy directly
// comparable with DPExact at the same granularity. A grant never exceeds
// a thread's remaining headroom: a thread whose Cap() is below unit (or
// not a multiple of it) receives min(unit, Cap−alloc) on its final grant,
// though the grant still consumes one whole budget unit.
func Greedy(fs []utility.Func, budget, unit float64) Result {
	n := len(fs)
	alloc := make([]float64, n)
	if n == 0 || budget <= 0 || unit <= 0 {
		return Result{Alloc: alloc}
	}
	h := newGainHeap(n)
	// push re-inserts a thread keyed by the gain of its next grant,
	// min(unit, remaining headroom); threads at their cap drop out.
	push := func(thread int) {
		f := fs[thread]
		room := f.Cap() - alloc[thread]
		if room <= 0 {
			return
		}
		if g := marginalGain(f, alloc[thread], math.Min(unit, room)); g > 0 {
			h.push(gainItem{thread: thread, gain: g})
		}
	}
	for i := range fs {
		push(i)
	}
	units := int(budget / unit)
	for step := 0; step < units && h.len() > 0; step++ {
		it := h.pop()
		f := fs[it.thread]
		grant := math.Min(unit, f.Cap()-alloc[it.thread])
		if grant <= 0 {
			// Unreachable by construction: push only enqueues threads with
			// headroom and each thread sits in the heap at most once, so a
			// popped thread always has room. Tolerated in release builds,
			// fatal under -tags aadebug so a regression cannot hide as a
			// silently skipped grant.
			if debugChecks {
				panic("alloc: Greedy popped a thread with no headroom")
			}
			continue
		}
		alloc[it.thread] += grant
		push(it.thread)
	}
	return Result{Alloc: alloc, Total: TotalValue(fs, alloc)}
}

// marginalGain is f(x+unit) - f(x).
func marginalGain(f utility.Func, x, unit float64) float64 {
	return f.Value(x+unit) - f.Value(x)
}

// EqualSplit gives each thread budget/n, capped at its own Cap. This is
// the per-server allocation used by the paper's UU and RU heuristics.
func EqualSplit(fs []utility.Func, budget float64) Result {
	n := len(fs)
	alloc := make([]float64, n)
	if n == 0 || budget <= 0 {
		return Result{Alloc: alloc}
	}
	share := budget / float64(n)
	for i, f := range fs {
		alloc[i] = math.Min(share, f.Cap())
	}
	return Result{Alloc: alloc, Total: TotalValue(fs, alloc)}
}

// RandomSplit allocates each thread an independent uniform random amount
// of the server's resource, scaled down proportionally if the draws
// exceed the budget, and capped at each thread's own Cap. This is the
// paper's "random allocation" used by the UR and RR heuristics; notably
// a lone thread receives a uniformly random share rather than
// everything, which is why UR is suboptimal even at β = 1 (§VII-A).
func RandomSplit(fs []utility.Func, budget float64, r *rng.Rand) Result {
	n := len(fs)
	alloc := make([]float64, n)
	if n == 0 || budget <= 0 {
		return Result{Alloc: alloc}
	}
	sum := 0.0
	for i := range alloc {
		alloc[i] = r.Float64() * budget
		sum += alloc[i]
	}
	scale := 1.0
	if sum > budget {
		scale = budget / sum
	}
	for i, f := range fs {
		alloc[i] *= scale
		if c := f.Cap(); alloc[i] > c {
			alloc[i] = c
		}
	}
	return Result{Alloc: alloc, Total: TotalValue(fs, alloc)}
}

// gainHeap is a max-heap of (thread, marginal gain) pairs.
type gainItem struct {
	thread int
	gain   float64
}

type gainHeap struct {
	items []gainItem
}

func newGainHeap(capacity int) *gainHeap {
	return &gainHeap{items: make([]gainItem, 0, capacity)}
}

func (h *gainHeap) len() int { return len(h.items) }

func (h *gainHeap) push(it gainItem) {
	// Each thread occupies at most one slot (Greedy re-pushes only after a
	// pop), so the backing array pre-sized to n in newGainHeap never
	// regrows in the units loop; the append below must stay in place.
	if debugChecks && len(h.items) == cap(h.items) {
		panic("alloc: gainHeap grew past its pre-sized capacity")
	}
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].gain >= h.items[i].gain {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *gainHeap) pop() gainItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < last && h.items[l].gain > h.items[largest].gain {
			largest = l
		}
		if r < last && h.items[r].gain > h.items[largest].gain {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}
