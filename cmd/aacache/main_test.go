package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunAllMixes(t *testing.T) {
	for _, mix := range []string{"balanced", "hungry", "streaming"} {
		var out bytes.Buffer
		err := run([]string{
			"-mix", mix, "-n", "4", "-sets", "16", "-ways", "4", "-accesses", "4000",
		}, &out, io.Discard)
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		s := out.String()
		for _, want := range []string{"profiles", "AA assignment", "aggregate throughput", "shared, no parts"} {
			if !strings.Contains(s, want) {
				t.Errorf("%s: missing %q", mix, want)
			}
		}
	}
}

func TestRunAdaptiveMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "4", "-sets", "16", "-ways", "4", "-accesses", "3000", "-adaptive", "3",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adaptive controller (3 epochs") {
		t.Errorf("missing adaptive section:\n%s", out.String())
	}
	if strings.Count(out.String(), "epoch") < 3 {
		t.Error("missing epoch rows")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mix", "warp"}, &out, io.Discard); err == nil {
		t.Error("unknown mix accepted")
	}
	if err := run([]string{"-ways", "0"}, &out, io.Discard); err == nil {
		t.Error("zero ways accepted")
	}
}
