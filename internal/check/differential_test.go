package check

import (
	"errors"
	"reflect"
	"testing"
)

// TestDifferentialFigureCorpus is the check-smoke entry point: the
// default harness configuration over every figure workload must come
// back clean, and must not have grown aa_check_violations_total.
func TestDifferentialFigureCorpus(t *testing.T) {
	_, v0 := Totals()
	rep := Differential(DiffOptions{})
	if err := rep.Err(); err != nil {
		t.Fatalf("%v\nall violations: %q", err, rep.Violations)
	}
	if want := len(FigureWorkloads()); rep.Workloads != want {
		t.Errorf("covered %d workloads, want %d", rep.Workloads, want)
	}
	if rep.Instances == 0 || rep.Solvers == 0 {
		t.Fatalf("harness ran nothing: %+v", rep)
	}
	if _, v1 := Totals(); v1 != v0 {
		t.Errorf("aa_check_violations_total grew by %d, want 0", v1-v0)
	}
}

func TestDifferentialDeterministic(t *testing.T) {
	opts := DiffOptions{Seed: 42, Trials: 3, MaxM: 2, MaxN: 5}
	a := Differential(opts)
	b := Differential(opts)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same options, different reports:\n%+v\n%+v", a, b)
	}
	if a.Instances != 3*len(FigureWorkloads()) {
		t.Errorf("ran %d instances, want %d", a.Instances, 3*len(FigureWorkloads()))
	}
}

func TestDiffReportErr(t *testing.T) {
	clean := &DiffReport{}
	if err := clean.Err(); err != nil {
		t.Errorf("clean report errored: %v", err)
	}
	dirty := &DiffReport{Violations: []string{"x[0]/a2: boom"}}
	if err := dirty.Err(); !errors.Is(err, ErrDifferential) {
		t.Errorf("got %v, want ErrDifferential", err)
	}
}
