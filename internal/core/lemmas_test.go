package core

// Executable lemmas: the structural facts Lemmas V.5–V.8 of the paper
// prove about Algorithm 2's output, checked directly on the assignments
// the implementation produces. The lemmas assume the regime of Lemma
// V.3 (Σ ĉ_i = mC), which holds when utilities are strictly increasing
// and n ≥ m, so the generators here use strictly increasing families.

import (
	"math"
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

// strictlyIncreasingInstance builds an instance in the Σĉ = mC regime.
func strictlyIncreasingInstance(r *rng.Rand, n, m int, c float64) *Instance {
	threads := make([]utility.Func, n)
	for i := range threads {
		switch r.Intn(3) {
		case 0:
			threads[i] = utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, c/2), C: c}
		case 1:
			threads[i] = utility.Power{Scale: r.Uniform(0.5, 2), Beta: r.Uniform(0.3, 0.95), C: c}
		default:
			threads[i] = utility.Linear{Slope: r.Uniform(0.1, 3), C: c}
		}
	}
	return &Instance{M: m, C: c, Threads: threads}
}

// splitFullUnfull partitions threads into D (full: c_i = ĉ_i) and E
// (unfull) per the paper's definitions in §V-C.
func splitFullUnfull(so SuperOpt, a Assignment) (full, unfull []int) {
	for i := range a.Alloc {
		if a.Alloc[i] >= so.Alloc[i]-1e-9*(1+so.Alloc[i]) {
			full = append(full, i)
		} else {
			unfull = append(unfull, i)
		}
	}
	return full, unfull
}

func lemmaInstances(t *testing.T, check func(t *testing.T, in *Instance, so SuperOpt, gs []Linearized, a Assignment, full, unfull []int)) {
	t.Helper()
	base := rng.New(71)
	for trial := 0; trial < 40; trial++ {
		r := base.Split(uint64(trial))
		m := 1 + r.Intn(6)
		n := m + r.Intn(40)
		in := strictlyIncreasingInstance(r, n, m, 100)
		so := SuperOptimal(in)
		gs := Linearize(in, so)
		a := Assign2Linearized(in, gs)
		full, unfull := splitFullUnfull(so, a)
		check(t, in, so, gs, a, full, unfull)
	}
}

// Lemma V.5: at most one unfull thread is assigned to any server.
func TestLemmaV5AtMostOneUnfullPerServer(t *testing.T) {
	lemmaInstances(t, func(t *testing.T, in *Instance, so SuperOpt, gs []Linearized, a Assignment, full, unfull []int) {
		perServer := make(map[int]int)
		for _, i := range unfull {
			perServer[a.Server[i]]++
			if perServer[a.Server[i]] > 1 {
				t.Fatalf("server %d hosts %d unfull threads", a.Server[i], perServer[a.Server[i]])
			}
		}
	})
}

// Lemma V.5's proof mechanism: a server hosting an unfull thread has no
// remaining resource (the unfull thread took everything left).
func TestLemmaV5UnfullServersAreFull(t *testing.T) {
	lemmaInstances(t, func(t *testing.T, in *Instance, so SuperOpt, gs []Linearized, a Assignment, full, unfull []int) {
		loads := a.ServerLoads(in)
		for _, i := range unfull {
			if load := loads[a.Server[i]]; load < in.C-1e-6*(1+in.C) {
				t.Fatalf("unfull thread %d sits on server %d with residual %v",
					i, a.Server[i], in.C-load)
			}
		}
	})
}

// Corollary of Lemma V.5: |E| <= m (in fact |E| < m when Σĉ = mC).
func TestLemmaV6UnfullCountBelowServerCount(t *testing.T) {
	lemmaInstances(t, func(t *testing.T, in *Instance, so SuperOpt, gs []Linearized, a Assignment, full, unfull []int) {
		if len(unfull) > in.M {
			t.Fatalf("|E| = %d > m = %d", len(unfull), in.M)
		}
	})
}

// Lemma V.7: Σ_{i∈E} c_i >= (|E|/m)·Σ_{i∈E} ĉ_i.
func TestLemmaV7UnfullResourceShare(t *testing.T) {
	lemmaInstances(t, func(t *testing.T, in *Instance, so SuperOpt, gs []Linearized, a Assignment, full, unfull []int) {
		if len(unfull) == 0 {
			return
		}
		var got, hat float64
		for _, i := range unfull {
			got += a.Alloc[i]
			hat += so.Alloc[i]
		}
		want := float64(len(unfull)) / float64(in.M) * hat
		if got < want-1e-6*(1+want) {
			t.Fatalf("Σ_E c = %v < (|E|/m)·Σ_E ĉ = %v (|E|=%d, m=%d)",
				got, want, len(unfull), in.M)
		}
	})
}

// Lemma V.8 / Corollary V.9: there are at least m full threads, and the
// full threads' linearized utility sum is at least m·γ where γ is the
// largest super-optimal utility among unfull threads.
func TestLemmaV8FullThreadsDominate(t *testing.T) {
	lemmaInstances(t, func(t *testing.T, in *Instance, so SuperOpt, gs []Linearized, a Assignment, full, unfull []int) {
		if in.N() >= in.M && len(full) < in.M {
			t.Fatalf("only %d full threads for m = %d servers", len(full), in.M)
		}
		gamma := 0.0
		for _, i := range unfull {
			if gs[i].UHat > gamma {
				gamma = gs[i].UHat
			}
		}
		var fullSum float64
		for _, i := range full {
			fullSum += gs[i].Value(a.Alloc[i])
		}
		if want := float64(in.M) * gamma; fullSum < want-1e-6*(1+want) {
			t.Fatalf("Σ_D g = %v < m·γ = %v", fullSum, want)
		}
	})
}

// Lemma V.3: with strictly increasing utilities and n >= m the
// super-optimal allocation saturates the pooled capacity.
func TestLemmaV3PooledSaturation(t *testing.T) {
	lemmaInstances(t, func(t *testing.T, in *Instance, so SuperOpt, gs []Linearized, a Assignment, full, unfull []int) {
		sum := 0.0
		for _, c := range so.Alloc {
			sum += c
		}
		want := float64(in.M) * in.C
		if math.Abs(sum-want) > 1e-6*want {
			t.Fatalf("Σĉ = %v, want mC = %v", sum, want)
		}
	})
}

// Lemma V.10: among unfull threads, higher linearized slope implies at
// least as much allocated resource.
func TestLemmaV10SlopeOrdering(t *testing.T) {
	lemmaInstances(t, func(t *testing.T, in *Instance, so SuperOpt, gs []Linearized, a Assignment, full, unfull []int) {
		for x := 0; x < len(unfull); x++ {
			for y := 0; y < len(unfull); y++ {
				i, j := unfull[x], unfull[y]
				if gs[i].Slope() > gs[j].Slope()*(1+1e-9)+1e-12 {
					if a.Alloc[i] < a.Alloc[j]-1e-6*(1+a.Alloc[j]) {
						t.Fatalf("slope(%d)=%v > slope(%d)=%v but c_%d=%v < c_%d=%v",
							i, gs[i].Slope(), j, gs[j].Slope(), i, a.Alloc[i], j, a.Alloc[j])
					}
				}
			}
		}
	})
}
