package core

import (
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

func TestAssignGreedyMarginalFeasible(t *testing.T) {
	base := rng.New(61)
	for trial := 0; trial < 15; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 1+r.Intn(20), 1+r.Intn(5), 100)
		a := AssignGreedyMarginal(in)
		assertFeasible(t, in, a, "AssignGreedyMarginal")
	}
}

func TestAssignGreedyMarginalDominatesUU(t *testing.T) {
	base := rng.New(62)
	wins, trials := 0, 15
	for trial := 0; trial < trials; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 8+r.Intn(20), 2+r.Intn(4), 100)
		gm := AssignGreedyMarginal(in).Utility(in)
		uu := AssignUU(in).Utility(in)
		if gm >= uu*(1-1e-9) {
			wins++
		}
	}
	if wins < trials-1 {
		t.Errorf("greedy-marginal beat UU in only %d/%d trials", wins, trials)
	}
}

func TestImproveNeverDecreasesUtility(t *testing.T) {
	base := rng.New(63)
	for trial := 0; trial < 12; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 4+r.Intn(15), 2+r.Intn(3), 100)
		for _, start := range []Assignment{
			Assign2(in),
			AssignUU(in),
			AssignRR(in, r),
		} {
			before := start.Utility(in)
			improved, moves := Improve(in, start, 0)
			assertFeasible(t, in, improved, "Improve")
			after := improved.Utility(in)
			if after < before*(1-1e-9)-1e-9 {
				t.Errorf("trial %d: Improve decreased utility %v -> %v (%d moves)",
					trial, before, after, moves)
			}
		}
	}
}

func TestImproveRespectsBound(t *testing.T) {
	r := rng.New(64)
	in := randomInstance(r, 12, 3, 100)
	so := SuperOptimal(in)
	improved, _ := Improve(in, Assign2(in), 0)
	if u := improved.Utility(in); u > so.Total*(1+1e-9) {
		t.Errorf("improved utility %v exceeds super-optimal bound %v", u, so.Total)
	}
}

func TestImproveFixesBadAssignment(t *testing.T) {
	// Two high-slope threads dumped on the same server while another
	// server idles: one relocation fixes it.
	in := &Instance{
		M: 2,
		C: 10,
		Threads: []utility.Func{
			utility.CappedLinear{Slope: 1, Knee: 10, C: 10},
			utility.CappedLinear{Slope: 1, Knee: 10, C: 10},
		},
	}
	bad := Assignment{Server: []int{0, 0}, Alloc: []float64{5, 5}}
	improved, moves := Improve(in, bad, 0)
	assertFeasible(t, in, improved, "Improve")
	if moves < 1 {
		t.Errorf("expected at least one move, got %d", moves)
	}
	if u := improved.Utility(in); u < 20-1e-9 {
		t.Errorf("utility %v, want 20 (one thread per server)", u)
	}
}

func TestImproveMoveLimit(t *testing.T) {
	r := rng.New(65)
	in := randomInstance(r, 15, 3, 100)
	_, moves := Improve(in, AssignRR(in, r), 2)
	if moves > 2 {
		t.Errorf("move budget exceeded: %d", moves)
	}
}

func TestImproveAtLocalOptimumIsNoOp(t *testing.T) {
	// Running Improve twice: the second pass must make zero moves.
	r := rng.New(66)
	in := randomInstance(r, 10, 3, 100)
	once, _ := Improve(in, Assign2(in), 0)
	again, moves := Improve(in, once, 0)
	if moves != 0 {
		t.Errorf("second Improve pass made %d moves", moves)
	}
	if again.Utility(in) != once.Utility(in) {
		t.Errorf("idempotence violated: %v vs %v", again.Utility(in), once.Utility(in))
	}
}

// The motivating case: two-class discrete workloads are where the
// linearized greedy leaves a few percent on the table; local search
// should claw a chunk of it back.
func TestImproveClosesDiscreteGap(t *testing.T) {
	base := rng.New(67)
	var sumBefore, sumAfter, sumOpt float64
	for trial := 0; trial < 10; trial++ {
		r := base.Split(uint64(trial))
		// Two-class instance: values 1 or 5, capped-linear style curves.
		n, m := 8, 2
		threads := make([]utility.Func, n)
		for i := range threads {
			v := 1.0
			if r.Float64() > 0.7 {
				v = 5.0
			}
			threads[i] = utility.CappedLinear{Slope: v / 40, Knee: 40 + r.Uniform(0, 20), C: 100}
		}
		in := &Instance{M: m, C: 100, Threads: threads}
		a2 := Assign2(in)
		improved, _ := Improve(in, a2, 0)
		opt, err := BranchAndBound(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		sumBefore += a2.Utility(in)
		sumAfter += improved.Utility(in)
		sumOpt += opt.Utility(in)
	}
	if sumAfter < sumBefore {
		t.Errorf("local search lost utility in aggregate: %v -> %v", sumBefore, sumAfter)
	}
	// Local search should recover at least half of the gap to optimal.
	gapBefore := sumOpt - sumBefore
	gapAfter := sumOpt - sumAfter
	if gapBefore > 1e-9 && gapAfter > 0.5*gapBefore {
		t.Errorf("local search closed too little: gap %v -> %v (optimal %v)",
			gapBefore, gapAfter, sumOpt)
	}
}

func BenchmarkImproveN40(b *testing.B) {
	r := rng.New(1)
	in := randomInstance(r, 40, 4, 100)
	start := Assign2(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Improve(in, start, 0)
	}
}

func TestPolishAllocationsNeverDecreases(t *testing.T) {
	base := rng.New(68)
	for trial := 0; trial < 15; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 4+r.Intn(20), 2+r.Intn(4), 100)
		a2 := Assign2(in)
		polished := PolishAllocations(in, a2)
		assertFeasible(t, in, polished, "PolishAllocations")
		if polished.Utility(in) < a2.Utility(in)*(1-1e-9)-1e-9 {
			t.Errorf("trial %d: polish decreased utility %v -> %v",
				trial, a2.Utility(in), polished.Utility(in))
		}
		for i := range a2.Server {
			if polished.Server[i] != a2.Server[i] {
				t.Fatalf("polish moved thread %d", i)
			}
		}
	}
}

func TestPolishReclaimsResiduals(t *testing.T) {
	// Build an assignment that leaves an obvious residual: a lone linear
	// thread allocated half its server. Polishing must give it the rest.
	in := &Instance{
		M:       1,
		C:       10,
		Threads: []utility.Func{utility.Linear{Slope: 1, C: 10}},
	}
	a := Assignment{Server: []int{0}, Alloc: []float64{5}}
	polished := PolishAllocations(in, a)
	if polished.Alloc[0] != 10 {
		t.Errorf("polish left residual: alloc %v, want 10", polished.Alloc[0])
	}
}

func TestImproveSwapFixesTightInstance(t *testing.T) {
	// Partition-flavored tight instance: servers full, relocation is
	// useless (no residual anywhere) but a swap fixes the pairing.
	// Threads: knees 6,4 on server 0 and 4,6 on server 1 with C=10 is
	// already optimal; craft a bad start instead: (6,6) and (4,4).
	in := &Instance{
		M: 2,
		C: 10,
		Threads: []utility.Func{
			utility.CappedLinear{Slope: 1, Knee: 6, C: 10},
			utility.CappedLinear{Slope: 1, Knee: 6, C: 10},
			utility.CappedLinear{Slope: 1, Knee: 4, C: 10},
			utility.CappedLinear{Slope: 1, Knee: 4, C: 10},
		},
	}
	bad := Assignment{
		Server: []int{0, 0, 1, 1},
		Alloc:  []float64{6, 4, 4, 4}, // server 0 full, server 1 holds 8/10
	}
	assertFeasible(t, in, bad, "start")
	improved, moves := Improve(in, bad, 0)
	assertFeasible(t, in, improved, "Improve")
	// Optimal pairs a 6-knee with a 4-knee per server: utility 20.
	if u := improved.Utility(in); u < 20-1e-6 {
		t.Errorf("utility %v after %d moves, want 20 (swap needed)", u, moves)
	}
}
