// Command aasolve solves one AA instance given as JSON (see
// internal/instio for the format) and prints the assignment.
//
// Usage:
//
//	aasolve [-algo a2|a1|a2p|ls|gm|exact|uu|ur|ru|rr] [-seed 1] [-json]
//	        [-check] [-maxnodes 0] [-metrics-addr host:port]
//	        [-trace-out file.jsonl] [file]
//
// With no file argument the instance is read from stdin. The default
// output is a human-readable table; -json emits machine-readable JSON
// including the super-optimal upper bound. Beyond the paper's
// algorithms, a2p is Algorithm 2 + allocation polish and ls is
// Algorithm 2 + relocation/swap local search; gm is the marginal-gain
// greedy baseline. -metrics-addr serves live /metrics, /vars and
// /debug/pprof while solving; -trace-out appends solver-stage span
// events as JSONL (useful for profiling a single large instance).
// -check (or AA_CHECK=1) verifies the solution through internal/check:
// strict feasibility for every algorithm, plus the α-ratio guarantee
// for the algorithms that carry one (a1, a2, a2p, ls).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/instio"
	"aa/internal/rng"
	"aa/internal/tableio"
	"aa/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "aasolve: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aasolve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		algo    = fs.String("algo", "a2", "solver: a2, a1, a2p, ls, gm, exact, uu, ur, ru, rr")
		seed    = fs.Uint64("seed", 1, "seed for the randomized heuristics")
		asJSON  = fs.Bool("json", false, "emit the assignment as JSON")
		doCheck = fs.Bool("check", os.Getenv("AA_CHECK") == "1",
			"verify feasibility and the approximation-ratio bounds (also AA_CHECK=1)")
		maxNodes    = fs.Int("maxnodes", 0, "node limit for -algo exact (0 = default)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /vars and /debug/pprof on this address (e.g. localhost:0)")
		traceOut    = fs.String("trace-out", "", "write telemetry span/event JSONL to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format, a...) }
	shutdownTelemetry, err := telemetry.Setup(*metricsAddr, *traceOut, logf)
	if err != nil {
		return err
	}
	defer func() {
		if err := shutdownTelemetry(); err != nil {
			logf("aasolve: telemetry shutdown: %v\n", err)
		}
	}()

	var src io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	in, err := instio.Decode(src)
	if err != nil {
		return err
	}

	r := rng.New(*seed)
	var a core.Assignment
	switch *algo {
	case "a2":
		a = core.Assign2(in)
	case "a1":
		a = core.Assign1(in)
	case "a2p":
		a = core.PolishAllocations(in, core.Assign2(in))
	case "ls":
		a, _ = core.Improve(in, core.Assign2(in), 0)
	case "gm":
		a = core.AssignGreedyMarginal(in)
	case "exact":
		a, err = core.BranchAndBound(in, *maxNodes)
		if err != nil {
			return err
		}
	case "uu":
		a = core.AssignUU(in)
	case "ur":
		a = core.AssignUR(in, r)
	case "ru":
		a = core.AssignRU(in, r)
	case "rr":
		a = core.AssignRR(in, r)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	if err := a.Validate(in, 1e-6); err != nil {
		return fmt.Errorf("internal error, infeasible solution: %w", err)
	}

	if *doCheck {
		if err := check.Feasible(in, a, check.DefaultEps); err != nil {
			return err
		}
		rep := check.Ratio(in, a)
		// Algorithms with a proven α lower bound get the full two-sided
		// check; everything else must still respect F ≤ F̂.
		guaranteed := map[string]bool{"a1": true, "a2": true, "a2p": true, "ls": true}
		var cerr error
		if guaranteed[*algo] {
			cerr = rep.CheckAlpha(0)
		} else {
			cerr = rep.CheckBound(0)
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(stderr, "aasolve: check ok: feasible, F/F̂ = %.4f\n", rep.Ratio)
	}

	if *asJSON {
		return instio.EncodeAssignment(stdout, in, a)
	}

	so := core.SuperOptimal(in)
	u := a.Utility(in)
	t := tableio.New(
		fmt.Sprintf("%s on n=%d threads, m=%d servers, C=%g", *algo, in.N(), in.M, in.C),
		"thread", "server", "alloc", "utility")
	for i := range in.Threads {
		t.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", a.Server[i]),
			fmt.Sprintf("%.3f", a.Alloc[i]),
			fmt.Sprintf("%.4f", in.Threads[i].Value(a.Alloc[i])),
		)
	}
	if err := t.WriteASCII(stdout); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "total utility      %.4f\n", u)
	fmt.Fprintf(stdout, "super-optimal F̂    %.4f\n", so.Total)
	if so.Total > 0 {
		fmt.Fprintf(stdout, "fraction of bound  %.4f (guarantee: >= %.4f for a1/a2)\n",
			u/so.Total, core.Alpha)
	}
	return nil
}
