package core

// Operation-level parity of shardedServerHeap against serverHeap: the
// blocked layout must replay the serial heap's peeks, swaps and final
// abstract contents exactly, for every shape (tiny heaps, boundary
// sizes around the merge region, ragged last rows, full-size shards).

import (
	"testing"

	"aa/internal/rng"
)

func TestSubtreeSize(t *testing.T) {
	for m := 1; m <= 300; m++ {
		// Brute force: count descendants of r by walking every node's
		// ancestor chain.
		for r := 0; r < m; r++ {
			want := 0
			for x := 0; x < m; x++ {
				for a := x; ; a = (a - 1) / 2 {
					if a == r {
						want++
						break
					}
					if a == 0 {
						break
					}
				}
			}
			if got := subtreeSize(r, m); got != want {
				t.Fatalf("subtreeSize(%d, %d) = %d, want %d", r, m, got, want)
			}
		}
	}
}

func TestShardedHeapMatchesSerial(t *testing.T) {
	shapes := []struct{ m, topLevels int }{
		{1, 1}, {2, 1}, {3, 1}, {4, 1}, {7, 2}, {8, 2}, {15, 3}, {16, 3},
		{63, 6}, {64, 6}, {100, 3}, {127, 6}, {128, 6}, {200, 4},
		{2048, 6}, {2049, 6}, {5000, 6},
	}
	for _, sh := range shapes {
		const c = 64.0
		r := rng.New(uint64(sh.m*8 + sh.topLevels))
		ref := newServerHeap(sh.m, c)
		var sharded shardedServerHeap
		sharded.reset(sh.m, c, sh.topLevels, 4)

		// Reset parity: every abstract slot identical.
		for a := 0; a < sh.m; a++ {
			if sharded.at(a) != ref.entries[a] {
				t.Fatalf("m=%d T=%d: reset slot %d: %+v != %+v",
					sh.m, sh.topLevels, a, sharded.at(a), ref.entries[a])
			}
		}

		ops := 4 * sh.m
		if ops > 4000 {
			ops = 4000
		}
		for op := 0; op < ops; op++ {
			if sharded.peek() != ref.peek() {
				t.Fatalf("m=%d T=%d op %d: peek %+v != %+v",
					sh.m, sh.topLevels, op, sharded.peek(), ref.peek())
			}
			// Mostly shrink the top (the serve loop's move), sometimes
			// to a tying value to exercise equal-residual sift-downs.
			top := ref.peek().residual
			var next float64
			switch r.Intn(8) {
			case 0:
				next = 0
			case 1:
				next = top // no-op update
			case 2:
				next = top + 1 // grow (a negative-ĉ serve refills the server)
			default:
				next = top * float64(r.Intn(16)) / 16
			}
			ref.updateTop(next)
			sharded.updateTop(next)
			if ref.swaps != sharded.swaps {
				t.Fatalf("m=%d T=%d op %d: swaps %d != %d",
					sh.m, sh.topLevels, op, sharded.swaps, ref.swaps)
			}
		}
		for a := 0; a < sh.m; a++ {
			if sharded.at(a) != ref.entries[a] {
				t.Fatalf("m=%d T=%d: final slot %d: %+v != %+v",
					sh.m, sh.topLevels, a, sharded.at(a), ref.entries[a])
			}
		}
	}
}

// TestShardedHeapReuse re-resets a grown heap at a smaller size: the
// sliced-down storage must not leak stale entries into the new shape.
func TestShardedHeapReuse(t *testing.T) {
	var h shardedServerHeap
	h.reset(5000, 10, 6, 4)
	for i := 0; i < 100; i++ {
		h.updateTop(h.peek().residual / 2)
	}
	h.reset(37, 3, 2, 1)
	ref := newServerHeap(37, 3)
	for a := 0; a < 37; a++ {
		if h.at(a) != ref.entries[a] {
			t.Fatalf("slot %d after shrink: %+v != %+v", a, h.at(a), ref.entries[a])
		}
	}
	r := rng.New(5)
	for op := 0; op < 200; op++ {
		if h.peek() != ref.peek() {
			t.Fatalf("op %d: peek %+v != %+v", op, h.peek(), ref.peek())
		}
		next := ref.peek().residual * float64(r.Intn(8)) / 8
		ref.updateTop(next)
		h.updateTop(next)
	}
}
