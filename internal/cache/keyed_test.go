package cache

import (
	"math/rand"
	"testing"

	"aa/internal/utility"
)

// TestHash128GoldenUnkeyed pins the unkeyed hash byte-for-byte: memory-
// mode fingerprints must survive the keyed-hash refactor (and any future
// one) unchanged, or every deployed cache silently cold-starts.
func TestHash128GoldenUnkeyed(t *testing.T) {
	golden := []struct {
		in     string
		hi, lo uint64
	}{
		{"", 0xBB254DDED35FA2E9, 0x3FBF1D97C6ABD32A},
		{"a", 0x33D419678FD69C74, 0x8ABD111E15822257},
		{"abcdefgh", 0x8A6BB9515EBCD3C3, 0x1A637C49CEF724A7},
		{"the quick brown fox jumps over the lazy dog", 0x2A0172BC7D45DDC8, 0x185B312A64B5614F},
	}
	for _, g := range golden {
		hi, lo := hash128([]byte(g.in))
		if hi != g.hi || lo != g.lo {
			t.Errorf("hash128(%q) = %016X %016X, want %016X %016X", g.in, hi, lo, g.hi, g.lo)
		}
	}
}

// TestHash128GoldenKeyed pins one keyed lane the same way: a cluster of
// relays sharing -cache-key must keep deriving identical fingerprints
// across releases, or rolling restarts wipe the shared hit rate.
func TestHash128GoldenKeyed(t *testing.T) {
	k := KeyFromString("cluster-secret")
	want := HashKey{0xBFF71BE3C2F1B62F, 0x8A5AF5E26631CCD3, 0xB7D370158D40A130, 0x3C03ECBAF2684C3D}
	if k != want {
		t.Fatalf("KeyFromString(cluster-secret) = %#v, want %#v", k, want)
	}
	golden := []struct {
		in     string
		hi, lo uint64
	}{
		{"", 0xC9B1E25F423E27A9, 0x7FE699D649088301},
		{"a", 0xB096CFC8B7BA88D3, 0x0D69BECB715599A3},
		{"abcdefgh", 0xB0FFC466116ED6E9, 0xD64BA4048DD11308},
		{"the quick brown fox jumps over the lazy dog", 0x474EC9A437919B33, 0x2DD8B98B486CC565},
	}
	for _, g := range golden {
		hi, lo := hash128Keyed([]byte(g.in), &k)
		if hi != g.hi || lo != g.lo {
			t.Errorf("hash128Keyed(%q) = %016X %016X, want %016X %016X", g.in, hi, lo, g.hi, g.lo)
		}
	}
}

// TestHash128ZeroKeyIsUnkeyed pins the compat contract at the hash
// level: the zero key IS the unkeyed hash, bit for bit.
func TestHash128ZeroKeyIsUnkeyed(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var zero HashKey
	for trial := 0; trial < 100; trial++ {
		b := make([]byte, r.Intn(200))
		r.Read(b)
		h1, l1 := hash128(b)
		h2, l2 := hash128Keyed(b, &zero)
		if h1 != h2 || l1 != l2 {
			t.Fatalf("len %d: zero-key hash diverges from unkeyed", len(b))
		}
	}
}

func TestCanonicalizeKeyedZeroKeyMatchesUnkeyed(t *testing.T) {
	in := inst(4, 100, threads(3, 40, 100)...)
	unkeyed := mustCanon(t, in)
	keyed, err := CanonicalizeKeyed(in, HashKey{})
	if err != nil {
		t.Fatalf("CanonicalizeKeyed: %v", err)
	}
	if keyed.Fingerprint() != unkeyed.Fingerprint() {
		t.Fatal("zero-key fingerprint differs from unkeyed")
	}
	for i := range keyed.Hashes {
		if keyed.Hashes[i] != unkeyed.Hashes[i] {
			t.Fatalf("hash %d differs under zero key", i)
		}
	}
}

// Distinct keys must induce disjoint fingerprint spaces — including
// disjoint from the unkeyed space even for the same instance, which the
// scheme-version marker guarantees independently of hash behavior.
func TestCanonicalizeKeyedSeparatesKeySpaces(t *testing.T) {
	in := inst(4, 100, threads(5, 40, 100)...)
	unkeyed := mustCanon(t, in).Fingerprint()
	k1, err := CanonicalizeKeyed(in, KeyFromString("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonicalizeKeyed(in, KeyFromString("beta"))
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := k1.Fingerprint(), k2.Fingerprint()
	if f1 == f2 {
		t.Fatal("different keys produced the same fingerprint")
	}
	if f1 == unkeyed || f2 == unkeyed {
		t.Fatal("keyed fingerprint collides with unkeyed")
	}
}

// Keyed canonical forms must keep the order-invariance contract: the
// same thread multiset fingerprints identically however it arrives.
func TestCanonicalizeKeyedOrderInvariance(t *testing.T) {
	key := KeyFromString("perm-check")
	fs := threads(9, 30, 100)
	base, err := CanonicalizeKeyed(inst(4, 100, fs...), key)
	if err != nil {
		t.Fatal(err)
	}
	fp := base.Fingerprint()
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		perm := r.Perm(len(fs))
		shuffled := make([]utility.Func, len(fs))
		for i, p := range perm {
			shuffled[i] = fs[p]
		}
		c, err := CanonicalizeKeyed(inst(4, 100, shuffled...), key)
		if err != nil {
			t.Fatal(err)
		}
		if c.Fingerprint() != fp {
			t.Fatalf("trial %d: permuted instance fingerprints differently under key", trial)
		}
		// Perm must still un-permute: canonical position k holds the
		// thread originally at c.Perm[k].
		for k := range c.Perm {
			if base.Hashes[k] != c.Hashes[k] {
				t.Fatalf("trial %d: canonical hash order diverged", trial)
			}
		}
	}
}

func TestKeyFromString(t *testing.T) {
	if !KeyFromString("").IsZero() {
		t.Fatal("empty secret must map to the zero (unkeyed) key")
	}
	a, b := KeyFromString("s1"), KeyFromString("s1")
	if a != b {
		t.Fatal("KeyFromString not deterministic")
	}
	if a.IsZero() {
		t.Fatal("non-empty secret mapped to zero key")
	}
	if a == KeyFromString("s2") {
		t.Fatal("distinct secrets mapped to the same key")
	}
}

func TestRandomKey(t *testing.T) {
	a, b := RandomKey(), RandomKey()
	if a.IsZero() || b.IsZero() {
		t.Fatal("RandomKey returned the zero key")
	}
	if a == b {
		t.Fatal("two RandomKey draws collided")
	}
}

// TestSharedModeIsKeyed pins the factory contract: shared mode always
// hashes keyed (configured key, else random per-process), memory mode
// stays unkeyed unless explicitly keyed.
func TestSharedModeIsKeyed(t *testing.T) {
	shared, err := New(Config{Mode: ModeShared})
	if err != nil {
		t.Fatal(err)
	}
	if shared.HashKey().IsZero() {
		t.Fatal("shared mode without a key must generate a random one")
	}
	want := KeyFromString("cluster")
	shared2, err := New(Config{Mode: ModeShared, Key: want})
	if err != nil {
		t.Fatal(err)
	}
	if shared2.HashKey() != want {
		t.Fatal("shared mode dropped the configured key")
	}
	mem, err := New(Config{Mode: ModeMemory})
	if err != nil {
		t.Fatal(err)
	}
	if !mem.HashKey().IsZero() {
		t.Fatal("memory mode must default to the unkeyed hash")
	}
	if !Noop().HashKey().IsZero() {
		t.Fatal("noop cache must report the zero key")
	}
}

// TestKeyedExactHitRoundTrip drives the canonical store/serve pattern
// under a keyed cache: an entry stored in canonical order for one
// thread order is recovered exactly for a permutation of the same
// instance — the relay-side consistency contract.
func TestKeyedExactHitRoundTrip(t *testing.T) {
	c, err := New(Config{Mode: ModeShared, Key: KeyFromString("roundtrip")})
	if err != nil {
		t.Fatal(err)
	}
	fs := threads(13, 20, 100)
	in := inst(3, 100, fs...)
	canon, err := CanonicalizeKeyed(in, c.HashKey())
	if err != nil {
		t.Fatal(err)
	}
	key := RequestKey(canon.Fingerprint(), Params{Backend: "assign2"})
	server := make([]int, len(fs))
	alloc := make([]float64, len(fs))
	for i := range server {
		server[i] = i % 3
		alloc[i] = float64(i) + 0.5
	}
	e := &Entry{Canon: canon, Server: make([]int, len(fs)), Alloc: make([]float64, len(fs)), Backend: "assign2"}
	for k, orig := range canon.Perm {
		e.Server[k] = server[orig]
		e.Alloc[k] = alloc[orig]
	}
	c.Put(key, canon.GroupKey("assign2"), e)

	// A permuted arrival of the same threads must hit the same key and
	// un-permute to its own order.
	perm := rand.New(rand.NewSource(3)).Perm(len(fs))
	shuffled := make([]utility.Func, len(fs))
	for i, p := range perm {
		shuffled[i] = fs[p]
	}
	canon2, err := CanonicalizeKeyed(inst(3, 100, shuffled...), c.HashKey())
	if err != nil {
		t.Fatal(err)
	}
	key2 := RequestKey(canon2.Fingerprint(), Params{Backend: "assign2"})
	if key2 != key {
		t.Fatal("permuted instance derived a different keyed request key")
	}
	got, ok := c.Get(key2)
	if !ok {
		t.Fatal("keyed exact hit missed")
	}
	for k, orig := range canon2.Perm {
		// shuffled[orig] is fs[perm[orig]]: the served values must match
		// that original thread's.
		if got.Server[k] != server[perm[orig]] || got.Alloc[k] != alloc[perm[orig]] {
			t.Fatalf("canonical position %d served wrong thread's assignment", k)
		}
	}
}
