package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws across different seeds", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	zero := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Errorf("seed 0 produced %d zero outputs of 100", zero)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split(1)
	b := parent.Split(2)
	a2 := New(7).Split(1)
	// Same (parent seed, id) must reproduce the same stream.
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatal("Split not deterministic")
		}
	}
	// Different ids should give different streams.
	c := New(7).Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams for different split ids overlap: %d/100", same)
	}
}

func TestSplitPathEqualsNestedSplit(t *testing.T) {
	a := New(7).SplitPath(3, 11, 2)
	b := New(7).Split(3).Split(11).Split(2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitPath diverged from nested Split")
		}
	}
	// Empty path is the identity stream.
	c := New(7).SplitPath()
	d := New(7)
	if c.Uint64() != d.Uint64() {
		t.Error("SplitPath() changed the stream")
	}
}

func TestSplitPathIndependentAcrossPaths(t *testing.T) {
	parent := New(21)
	a := parent.SplitPath(1, 2)
	b := parent.SplitPath(2, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("paths (1,2) and (2,1) overlap: %d/100", same)
	}
	// SplitPath must not advance the parent.
	if parent.Uint64() != New(21).Uint64() {
		t.Error("SplitPath advanced the parent stream")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) value %d drawn %d times of 70000, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("normal mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("normal variance = %v, want ~9", variance)
	}
}

func TestPositiveNormalIsPositive(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		if v := r.PositiveNormal(1, 1); v <= 0 {
			t.Fatalf("PositiveNormal returned %v", v)
		}
	}
}

func TestPowerLawSupportAndTail(t *testing.T) {
	r := New(9)
	const n = 100000
	over2 := 0
	for i := 0; i < n; i++ {
		v := r.PowerLaw(2, 1)
		if v < 1 {
			t.Fatalf("PowerLaw below xmin: %v", v)
		}
		if v > 2 {
			over2++
		}
	}
	// For alpha=2, xmin=1: P(X > 2) = 1/2.
	frac := float64(over2) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P(X>2) = %v, want ~0.5", frac)
	}
}

func TestPowerLawPanics(t *testing.T) {
	for _, c := range []struct{ alpha, xmin float64 }{{1, 1}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PowerLaw(%v,%v) did not panic", c.alpha, c.xmin)
				}
			}()
			New(1).PowerLaw(c.alpha, c.xmin)
		}()
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(10)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exp(rate=2) mean = %v, want ~0.5", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 4, 25, 100} {
		const n = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			if v < 0 {
				t.Fatalf("negative Poisson draw")
			}
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.1*mean+0.1 {
			t.Errorf("Poisson(%v) variance = %v", mean, variance)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if v := New(1).Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %d", v)
	}
	if v := New(1).Poisson(-3); v != 0 {
		t.Errorf("Poisson(-3) = %d", v)
	}
}

func TestTwoPointFrequencies(t *testing.T) {
	r := New(11)
	const n = 100000
	lo := 0
	for i := 0; i < n; i++ {
		v := r.TwoPoint(1, 5, 0.85)
		switch v {
		case 1:
			lo++
		case 5:
		default:
			t.Fatalf("TwoPoint returned %v", v)
		}
	}
	if frac := float64(lo) / n; math.Abs(frac-0.85) > 0.01 {
		t.Errorf("P(lo) = %v, want ~0.85", frac)
	}
}

func TestDirichletSplitSumsToTotal(t *testing.T) {
	r := New(12)
	f := func(k uint8, totalRaw uint16) bool {
		parts := int(k%10) + 1
		total := float64(totalRaw) / 100
		out := make([]float64, parts)
		r.DirichletSplit(total, out)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-total) < 1e-9*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDirichletSplitSingle(t *testing.T) {
	out := make([]float64, 1)
	New(1).DirichletSplit(7, out)
	if out[0] != 7 {
		t.Errorf("single split = %v, want 7", out[0])
	}
	New(1).DirichletSplit(7, nil) // must not panic
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(14)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed elements: %v", xs)
	}
}

func TestZipfRange(t *testing.T) {
	r := New(15)
	z := NewZipf(1.0, 100)
	counts := make([]int, 101)
	for i := 0; i < 50000; i++ {
		v := z.Sample(r)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 1 must dominate rank 100 heavily for s=1.
	if counts[1] < 10*counts[100] {
		t.Errorf("Zipf skew too weak: rank1=%d rank100=%d", counts[1], counts[100])
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(1, 0) did not panic")
		}
	}()
	NewZipf(1, 0)
}

func TestUniformRange(t *testing.T) {
	r := New(16)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal = %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Normal(0, 1)
	}
}
