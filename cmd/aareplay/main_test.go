package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI half of the determinism gate: two -canonical runs with the
// same scenario and seed must emit byte-identical reports.
func TestCanonicalRunsBitIdentical(t *testing.T) {
	args := []string{"-scenario", "flash", "-seed", "9", "-grid", "16", "-canonical"}
	var a, b bytes.Buffer
	if err := run(args, &a, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("no report written")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed -canonical runs differ")
	}
	if bytes.Contains(a.Bytes(), []byte(`"wall"`)) {
		t.Fatal("-canonical report still contains the wall section")
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	csv := filepath.Join(dir, "trajectory.csv")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-scenario", "churn", "-seed", "4", "-grid", "12",
		"-out", out, "-csv", csv, "-v",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not empty with -out: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "scenario=churn") {
		t.Errorf("missing -v summary: %q", stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Scenario struct {
			Name   string `json:"name"`
			Policy string `json:"policy"`
		} `json:"scenario"`
		Trajectory []json.RawMessage `json:"trajectory"`
		Wall       json.RawMessage   `json:"wall"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario.Name != "churn" || rep.Scenario.Policy != "hybrid" {
		t.Errorf("bad report header: %+v", rep.Scenario)
	}
	if len(rep.Trajectory) != 13 {
		t.Errorf("trajectory has %d samples, want 13", len(rep.Trajectory))
	}
	if rep.Wall == nil {
		t.Error("wall section missing without -canonical")
	}
	csvRaw, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(csvRaw), "\n"), "\n")
	if lines[0] != "t,threads,up_servers,queue_depth,resolves,utility,bound" {
		t.Errorf("bad CSV header %q", lines[0])
	}
	if len(lines) != 14 {
		t.Errorf("CSV has %d lines, want 14", len(lines))
	}
}

func TestScenarioFileAndPolicyOverride(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.json")
	src := `{
		"name": "tiny", "servers": 2, "capacity": 100, "horizon": 600,
		"utility": {"dist": "uniform"},
		"arrivals": {"baseRate": 0.05},
		"lifetime": {"mean": 60},
		"gridPoints": 8
	}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	err := run([]string{"-scenario", path, "-policy", "incremental", "-seed", "2"},
		&stdout, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Scenario struct {
			Name   string `json:"name"`
			Policy string `json:"policy"`
		} `json:"scenario"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario.Name != "tiny" || rep.Scenario.Policy != "incremental" {
		t.Errorf("got %+v", rep.Scenario)
	}
}

func TestTraceFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	src := `{
		"name": "rec", "servers": 2, "capacity": 100, "gridPoints": 4,
		"events": [
			{"t": 1, "kind": "arrive", "id": 0, "v": 4, "w": 2},
			{"t": 2, "kind": "arrive", "id": 1, "v": 3, "w": 1},
			{"t": 5, "kind": "fail", "id": 0},
			{"t": 8, "kind": "recover", "id": 0},
			{"t": 10, "kind": "depart", "id": 1}
		]
	}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if err := run([]string{"-trace", path, "-canonical"}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Trace struct {
			Events   int `json:"events"`
			Failures int `json:"failures"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Events != 5 || rep.Trace.Failures != 1 {
		t.Errorf("got %+v", rep.Trace)
	}
}

func TestList(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"diurnal", "flash", "failures", "churn"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestErrors(t *testing.T) {
	sink := func() (*bytes.Buffer, *bytes.Buffer) { return &bytes.Buffer{}, &bytes.Buffer{} }
	for name, args := range map[string][]string{
		"unknown scenario": {"-scenario", "volcano"},
		"missing file":     {"-scenario", "nope/missing.json"},
		"missing trace":    {"-trace", "nope/missing.json"},
		"bad policy":       {"-scenario", "flash", "-policy", "sorcery"},
		"addr non-full":    {"-scenario", "churn", "-addr", "localhost:1"},
	} {
		o, e := sink()
		if err := run(args, o, e); err == nil {
			t.Errorf("%s: succeeded", name)
		}
	}
}

func TestHelp(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-h"}, &bytes.Buffer{}, &stderr); err != nil {
		t.Fatalf("-h should exit clean: %v", err)
	}
	if !strings.Contains(stderr.String(), "-scenario") {
		t.Error("usage missing -scenario")
	}
}

// -cache memory adds a deterministic cache section with warm-start
// rates to the report (churn scenario: consecutive solves differ by a
// few threads, the warm-start operating point).
func TestCacheFlagAddsReportSection(t *testing.T) {
	args := []string{"-scenario", "churn", "-policy", "full-resolve", "-seed", "3",
		"-grid", "16", "-canonical", "-cache", "memory", "-cache-warm-k", "8"}
	var a, b bytes.Buffer
	if err := run(args, &a, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed cached -canonical runs differ")
	}
	var rep struct {
		Cache *struct {
			Mode       string  `json:"mode"`
			Misses     uint64  `json:"misses"`
			WarmStarts uint64  `json:"warmStarts"`
			WarmRate   float64 `json:"warmRate"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(a.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Cache == nil {
		t.Fatal("-cache memory report has no cache section")
	}
	if rep.Cache.Mode != "memory" || rep.Cache.Misses == 0 {
		t.Fatalf("cache section %+v, want memory mode with misses", rep.Cache)
	}
	if rep.Cache.WarmStarts == 0 || rep.Cache.WarmRate <= 0 {
		t.Fatalf("churn replay reported no warm starts: %+v", rep.Cache)
	}
}
