// Package hetero extends AA to heterogeneous servers — the first item on
// the paper's future-work list (§VIII): "we would like to extend our
// algorithm to accommodate heterogeneous servers with different
// capacities".
//
// The super-optimal relaxation generalizes directly (pool Σ C_j with
// per-thread cap max_j C_j), and Algorithm 2's structure — serve threads
// in order of linearized utility from the server with the most remaining
// resource — carries over unchanged. The paper's approximation proof
// does not (Lemmas V.5–V.8 use capacity homogeneity), so the guarantee
// here is empirical; the tests calibrate it against exact solutions on
// small instances, and with equal capacities the algorithm reduces
// exactly to the homogeneous Algorithm 2.
package hetero

import (
	"fmt"
	"math"

	"aa/internal/alloc"
	"aa/internal/core"
	"aa/internal/utility"
)

// Instance is an AA problem with per-server capacities.
type Instance struct {
	Caps    []float64 // capacity of each server, all > 0
	Threads []utility.Func
}

// N returns the number of threads.
func (in *Instance) N() int { return len(in.Threads) }

// M returns the number of servers.
func (in *Instance) M() int { return len(in.Caps) }

// MaxCap returns the largest server capacity.
func (in *Instance) MaxCap() float64 {
	c := 0.0
	for _, v := range in.Caps {
		if v > c {
			c = v
		}
	}
	return c
}

// TotalCap returns Σ C_j.
func (in *Instance) TotalCap() float64 {
	s := 0.0
	for _, v := range in.Caps {
		s += v
	}
	return s
}

// Validate checks the instance is well formed.
func (in *Instance) Validate() error {
	if len(in.Caps) == 0 {
		return fmt.Errorf("hetero: no servers")
	}
	for j, c := range in.Caps {
		if !(c > 0) {
			return fmt.Errorf("hetero: server %d capacity %v", j, c)
		}
	}
	if len(in.Threads) == 0 {
		return fmt.Errorf("hetero: no threads")
	}
	for i, f := range in.Threads {
		if f == nil {
			return fmt.Errorf("hetero: thread %d has nil utility", i)
		}
	}
	return nil
}

// Assignment mirrors core.Assignment for heterogeneous instances.
type Assignment struct {
	Server []int
	Alloc  []float64
}

// Utility returns Σ f_i(Alloc[i]).
func (a Assignment) Utility(in *Instance) float64 {
	total := 0.0
	for i, f := range in.Threads {
		total += f.Value(a.Alloc[i])
	}
	return total
}

// Validate checks feasibility against the per-server capacities.
func (a Assignment) Validate(in *Instance, tol float64) error {
	n := in.N()
	if len(a.Server) != n || len(a.Alloc) != n {
		return fmt.Errorf("hetero: assignment covers %d/%d threads", len(a.Server), n)
	}
	loads := make([]float64, in.M())
	for i := 0; i < n; i++ {
		s := a.Server[i]
		if s < 0 || s >= in.M() {
			return fmt.Errorf("hetero: thread %d on invalid server %d", i, s)
		}
		if a.Alloc[i] < -tol {
			return fmt.Errorf("hetero: thread %d negative allocation", i)
		}
		loads[s] += a.Alloc[i]
	}
	for j, load := range loads {
		if load > in.Caps[j]+tol*(1+in.Caps[j]) {
			return fmt.Errorf("hetero: server %d overloaded: %v > %v", j, load, in.Caps[j])
		}
	}
	return nil
}

// capped restricts a utility to cap (threads can use at most the largest
// server's capacity in the relaxation, and at most their server's in an
// assignment).
type capped struct {
	f utility.Func
	c float64
}

func (cf capped) Value(x float64) float64 {
	if x > cf.c {
		x = cf.c
	}
	return cf.f.Value(x)
}

func (cf capped) Deriv(x float64) float64 {
	if x >= cf.c {
		return 0
	}
	return cf.f.Deriv(x)
}

func (cf capped) Cap() float64 { return cf.c }

func (cf capped) InverseDeriv(lambda float64) float64 {
	x := utility.InverseDeriv(cf.f, lambda, 1e-12)
	if x > cf.c {
		return cf.c
	}
	return x
}

// SuperOptimal computes the heterogeneous relaxation: allocate the
// pooled capacity Σ C_j with per-thread cap max_j C_j. Its total is an
// upper bound on any feasible assignment's utility. Series callers
// should hold a Workspace and call its method instead.
func SuperOptimal(in *Instance) core.SuperOpt {
	var w Workspace
	return w.SuperOptimal(in)
}

// Assign generalizes Algorithm 2: sort threads by linearized utility
// f_i(ĉ_i) nonincreasing, re-sort the tail (beyond the m-th) by ramp
// slope, then serve each thread min(ĉ_i, residual) from the server with
// the most remaining resource. Series callers should hold a Workspace
// and call its method instead.
func Assign(in *Instance) Assignment {
	var w Workspace
	var out Assignment
	w.Assign(in, &out)
	return out
}

func argmax(xs []float64) int {
	best := 0
	for j := 1; j < len(xs); j++ {
		if xs[j] > xs[best] {
			best = j
		}
	}
	return best
}

// AssignRoundRobin is the heterogeneous analogue of UU: threads go round
// robin over servers and each server's capacity is split equally — the
// naive practice that ignores both utilities and capacity skew.
func AssignRoundRobin(in *Instance) Assignment {
	n, m := in.N(), in.M()
	out := Assignment{Server: make([]int, n), Alloc: make([]float64, n)}
	counts := make([]int, m)
	for i := 0; i < n; i++ {
		out.Server[i] = i % m
		counts[i%m]++
	}
	for i := 0; i < n; i++ {
		s := out.Server[i]
		share := in.Caps[s] / float64(counts[s])
		if c := in.Threads[i].Cap(); share > c {
			share = c
		}
		out.Alloc[i] = share
	}
	return out
}

// AssignProportional spreads threads over servers proportionally to
// capacity (each thread goes to the server with the most remaining
// per-thread headroom), then splits each server optimally among its
// threads. A stronger capacity-aware baseline than round robin.
func AssignProportional(in *Instance) Assignment {
	n, m := in.N(), in.M()
	out := Assignment{Server: make([]int, n), Alloc: make([]float64, n)}
	headroom := append([]float64(nil), in.Caps...)
	counts := make([]int, m)
	for i := 0; i < n; i++ {
		best := 0
		for j := 1; j < m; j++ {
			if headroom[j]/float64(counts[j]+1) > headroom[best]/float64(counts[best]+1) {
				best = j
			}
		}
		out.Server[i] = best
		counts[best]++
	}
	// Optimal concave split within each server.
	groups := make([][]int, m)
	for i, s := range out.Server {
		groups[s] = append(groups[s], i)
	}
	for s, group := range groups {
		if len(group) == 0 {
			continue
		}
		fs := make([]utility.Func, len(group))
		for k, i := range group {
			c := in.Threads[i].Cap()
			if c > in.Caps[s] {
				c = in.Caps[s]
			}
			fs[k] = capped{f: in.Threads[i], c: c}
		}
		res := alloc.Concave(fs, in.Caps[s])
		for k, i := range group {
			out.Alloc[i] = res.Alloc[k]
		}
	}
	return out
}

// Exhaustive finds the optimal heterogeneous assignment by enumerating
// all m^n thread→server maps (no server symmetry to exploit when
// capacities differ) and solving each server's concave allocation.
// Limited to tiny instances.
func Exhaustive(in *Instance) (Assignment, error) {
	n, m := in.N(), in.M()
	space := 1
	for i := 0; i < n; i++ {
		if space > core.ExactLimit/m {
			return Assignment{}, fmt.Errorf("hetero: m^n search space too large")
		}
		space *= m
	}
	servers := make([]int, n)
	best := Assignment{Server: make([]int, n), Alloc: make([]float64, n)}
	bestUtil := math.Inf(-1)
	var recurse func(i int)
	recurse = func(i int) {
		if i == n {
			util, allocs := evaluate(in, servers)
			if util > bestUtil {
				bestUtil = util
				copy(best.Server, servers)
				copy(best.Alloc, allocs)
			}
			return
		}
		for j := 0; j < m; j++ {
			servers[i] = j
			recurse(i + 1)
		}
	}
	recurse(0)
	return best, nil
}

func evaluate(in *Instance, servers []int) (float64, []float64) {
	groups := make([][]int, in.M())
	for i, s := range servers {
		groups[s] = append(groups[s], i)
	}
	allocs := make([]float64, len(servers))
	total := 0.0
	for s, group := range groups {
		if len(group) == 0 {
			continue
		}
		fs := make([]utility.Func, len(group))
		for k, i := range group {
			c := in.Threads[i].Cap()
			if c > in.Caps[s] {
				c = in.Caps[s]
			}
			fs[k] = capped{f: in.Threads[i], c: c}
		}
		res := alloc.Concave(fs, in.Caps[s])
		total += res.Total
		for k, i := range group {
			allocs[i] = res.Alloc[k]
		}
	}
	return total, allocs
}
