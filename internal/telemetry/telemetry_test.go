package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_ops_total"); again != c {
		t.Error("get-or-create returned a different counter")
	}
	g := r.Gauge("test_depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_thing")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("test_thing")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9starts_with_digit", "has space", "half{label"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid name %q accepted", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive bucket semantics:
// a value exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4.9, 5, 5.1, 100} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	// le=1: {0.5, 1}; le=2: {1.0000001, 2}; le=5: {4.9, 5}; +Inf: {5.1, 100}
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 4.9 + 5 + 5.1 + 100
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform in (0, 1]: everything in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if q := h.Quantile(0.5); math.Abs(q-0.5) > 0.02 {
		t.Errorf("p50 = %v, want ~0.5", q)
	}
	// Push 100 more into (1, 2]: p75 sits mid second bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(1 + float64(i)/100)
	}
	if q := h.Quantile(0.75); q < 1.4 || q > 1.6 {
		t.Errorf("p75 = %v, want ~1.5", q)
	}
	// Overflow clamps to the last bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %v, want clamp to 1", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds accepted")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this is the
// data-race proof for the atomic implementations.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total")
	g := r.Gauge("test_conc_depth")
	h := r.Histogram("test_conc_seconds", []float64{0.25, 0.5, 1})
	const workers, per = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%4) / 4)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestPrometheusExposition parses the text output line by line: every
// line is either a # TYPE comment or a `name value` sample with a
// parsable value, and the expected names, types and values all appear.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total").Add(3)
	r.Gauge("test_depth").Set(-2)
	r.Counter(Label("test_tagged_total", "fig", "fig1a")).Add(7)
	h := r.Histogram("test_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	types := map[string]string{}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample: name (possibly with {labels}) space value. Split on the
		// last space so label values containing spaces would still parse.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, valStr := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparsable value in line %q: %v", line, err)
		}
		samples[name] = v
	}

	wantTypes := map[string]string{
		"test_total":        "counter",
		"test_depth":        "gauge",
		"test_tagged_total": "counter",
		"test_seconds":      "histogram",
	}
	for name, kind := range wantTypes {
		if types[name] != kind {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], kind)
		}
	}
	wantSamples := map[string]float64{
		"test_total":                     3,
		"test_depth":                     -2,
		`test_tagged_total{fig="fig1a"}`: 7,
		`test_seconds_bucket{le="0.1"}`:  1,
		`test_seconds_bucket{le="1"}`:    2,
		`test_seconds_bucket{le="+Inf"}`: 3,
		"test_seconds_count":             3,
	}
	for name, v := range wantSamples {
		got, ok := samples[name]
		if !ok {
			t.Errorf("missing sample %s in output:\n%s", name, out)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if s := samples["test_seconds_sum"]; math.Abs(s-5.55) > 1e-9 {
		t.Errorf("test_seconds_sum = %v, want 5.55", s)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total").Add(9)
	h := r.Histogram("test_seconds", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]JSONValue
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if m["test_total"].Type != "counter" || m["test_total"].Value.(float64) != 9 {
		t.Errorf("test_total = %+v", m["test_total"])
	}
	if m["test_seconds"].Count != 2 || m["test_seconds"].Buckets["+Inf"] != 1 {
		t.Errorf("test_seconds = %+v", m["test_seconds"])
	}
}

func TestLabel(t *testing.T) {
	if got := Label("aa_x_total", "fig", "fig1a", "param", "3"); got != `aa_x_total{fig="fig1a",param="3"}` {
		t.Errorf("Label = %q", got)
	}
	if got := Label("aa_x_total", "k", `a"b`); got != `aa_x_total{k="a\"b"}` {
		t.Errorf("Label escaping = %q", got)
	}
	if got := Label("aa_x_total"); got != "aa_x_total" {
		t.Errorf("Label no kv = %q", got)
	}
}

func TestEnableDisable(t *testing.T) {
	defer Disable()
	if Enabled() {
		t.Fatal("telemetry enabled at package start")
	}
	Enable()
	if !Enabled() {
		t.Error("Enable did not take")
	}
	Disable()
	if Enabled() {
		t.Error("Disable did not take")
	}
}

func TestTraceSpansAndEvents(t *testing.T) {
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	defer SetTraceWriter(nil)
	sp := StartSpan("core.solve", String("fig", "fig1a"), Int("n", 40))
	Event("pool.reject", Float("depth", 8))
	sp.End()

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev, span map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("event line not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil {
		t.Fatalf("span line not JSON: %v", err)
	}
	if ev["type"] != "event" || ev["name"] != "pool.reject" {
		t.Errorf("event record = %v", ev)
	}
	if span["type"] != "span" || span["name"] != "core.solve" {
		t.Errorf("span record = %v", span)
	}
	attrs := span["attrs"].(map[string]any)
	if attrs["fig"] != "fig1a" || attrs["n"].(float64) != 40 {
		t.Errorf("span attrs = %v", attrs)
	}
	if span["dur_us"].(float64) < 0 {
		t.Errorf("negative span duration: %v", span["dur_us"])
	}
}

func TestTraceDisabledIsInert(t *testing.T) {
	SetTraceWriter(nil)
	if TraceEnabled() {
		t.Fatal("trace enabled with no writer")
	}
	sp := StartSpan("should.not.panic")
	sp.End()
	Event("also.fine")
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("aa_test_requests_total").Add(2)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "aa_test_requests_total 2") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/vars"); code != 200 || !strings.Contains(body, "aa_test_requests_total") {
		t.Errorf("/vars: code %d body %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code %d, body %.80q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("/: code %d body %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope: code %d, want 404", code)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	r := NewRegistry()
	r.Counter("aa_test_total").Inc()
	s, err := Serve("localhost:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.Contains(s.Addr, ":") || strings.HasSuffix(s.Addr, ":0") {
		t.Fatalf("Addr = %q, want a real port", s.Addr)
	}
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "aa_test_total 1") {
		t.Errorf("scrape missing metric:\n%s", body)
	}
}

func TestSetupAndShutdown(t *testing.T) {
	defer Disable()
	trace := t.TempDir() + "/trace.jsonl"
	var logged bytes.Buffer
	shutdown, err := Setup("localhost:0", trace, func(format string, args ...any) {
		logged.WriteString(strings.TrimSpace(format))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() || !TraceEnabled() {
		t.Error("Setup did not enable telemetry/trace")
	}
	Event("test.event")
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if TraceEnabled() {
		t.Error("trace writer still installed after shutdown")
	}
	if logged.Len() == 0 {
		t.Error("no activation lines logged")
	}
	// Both flags empty: still a usable no-op shutdown.
	shutdown, err = Setup("", "", nil)
	if err != nil || shutdown == nil {
		t.Fatalf("empty Setup: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Errorf("empty shutdown: %v", err)
	}
}

// Map-iteration-order audit pin (the State.Loads class of bug): the
// exposition text is canonical output fed from registry state, so it
// must ride the ordered entry list, never Go map order. Two registries
// populated identically — and repeated exports of one registry — must
// be byte-identical.
func TestWritePrometheusByteDeterministic(t *testing.T) {
	populate := func() *Registry {
		r := NewRegistry()
		for i := 0; i < 40; i++ {
			r.Counter(Label("audit_total", "shard", fmt.Sprintf("s%02d", i))).Add(uint64(i))
		}
		r.Gauge("audit_depth").Set(7)
		h := r.Histogram("audit_seconds", []float64{0.1, 1, 10})
		for i := 0; i < 10; i++ {
			h.Observe(float64(i) / 3)
		}
		return r
	}
	var a, b, again bytes.Buffer
	ra, rb := populate(), populate()
	if err := ra.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := rb.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ra.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identically populated registries export different bytes:\n%s\nvs\n%s", &a, &b)
	}
	if !bytes.Equal(a.Bytes(), again.Bytes()) {
		t.Fatal("repeated export of one registry changed bytes")
	}
}
