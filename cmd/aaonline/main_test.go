package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunProducesTables(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-events", "40", "-costs", "0,10"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"policy summary", "full-resolve", "hybrid(0.83)", "incremental",
		"net value", "migrations",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-events", "30", "-seed", "5", "-costs", "0"}
	var a, b bytes.Buffer
	if err := run(args, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

// The parallel grid must print the same tables as a single worker.
func TestRunSameOutputForAnyWorkerCount(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run([]string{"-events", "30", "-seed", "5", "-costs", "0,10", "-workers", "1"}, &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-events", "30", "-seed", "5", "-costs", "0,10", "-workers", "8"}, &parallel, io.Discard); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("-workers=8 output differs from -workers=1:\n--- 1 ---\n%s\n--- 8 ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunTimeoutExpires(t *testing.T) {
	var out bytes.Buffer
	// The deadline expires while the first grid cells are in flight; the
	// remaining cells are cancelled and the error propagates.
	err := run([]string{"-events", "400", "-timeout", "1ms"}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-costs", "zero"}, &out, io.Discard); err == nil {
		t.Error("bad costs accepted")
	}
	if err := run([]string{"-events", "0"}, &out, io.Discard); err == nil {
		t.Error("zero events accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-events", "30", "-costs", "0,10", "-csv", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	summary, err := os.ReadFile(filepath.Join(dir, "policy-summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(summary), "policy,utility-integral,migrations") {
		t.Errorf("summary header: %q", strings.SplitN(string(summary), "\n", 2)[0])
	}
	sweep, err := os.ReadFile(filepath.Join(dir, "net-value-sweep.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(sweep), "cost,full-resolve") {
		t.Errorf("sweep header: %q", strings.SplitN(string(sweep), "\n", 2)[0])
	}
}

func TestRunCSVCreateFails(t *testing.T) {
	// Pointing -csv at a path whose parent is a file makes MkdirAll fail;
	// the error must propagate out of run rather than being swallowed.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-events", "30", "-costs", "0", "-csv", filepath.Join(blocker, "sub")}, &out, io.Discard)
	if err == nil {
		t.Error("csv write error not propagated")
	}
}

func TestParseCosts(t *testing.T) {
	costs, err := parseCosts(" 0, 1.5 ,20 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 || costs[1] != 1.5 {
		t.Errorf("costs %v", costs)
	}
}
