package core

import (
	"aa/internal/alloc"
	"aa/internal/telemetry"
)

// SuperOpt is the super-optimal relaxation of an AA instance
// (Definition V.1): the optimal allocation of a single pooled knapsack of
// capacity m·C with per-thread caps C. Its total utility F̂ upper-bounds
// the optimal AA utility F* (Lemma V.2), and its allocations ĉ_i drive the
// linearization and both approximation algorithms.
type SuperOpt struct {
	// Alloc[i] is ĉ_i, thread i's super-optimal allocation.
	Alloc []float64
	// Value[i] is f_i(ĉ_i).
	Value []float64
	// Total is F̂ = Σ f_i(ĉ_i).
	Total float64
	// Lambda is the water-filling price the λ-search converged to
	// (0 for the trivial all-caps case). The solve cache persists it so
	// warm-start re-solves of nearby instances can seed their λ-search
	// from it instead of bisecting from scratch.
	Lambda float64
}

// SuperOptimal computes the super-optimal allocation by water-filling
// (λ-bisection) over the pooled budget m·C, the same structure as the
// O(n (log mC)²) algorithm of Galil cited by the paper.
func SuperOptimal(in *Instance) SuperOpt {
	start := stageStart()
	fs := cappedThreads(in)
	budget := float64(in.M) * in.C
	res := alloc.Concave(fs, budget)
	so := SuperOpt{
		Alloc:  res.Alloc,
		Value:  make([]float64, len(fs)),
		Total:  res.Total,
		Lambda: res.Lambda,
	}
	for i, f := range fs {
		so.Value[i] = f.Value(res.Alloc[i])
	}
	if !start.IsZero() {
		metricSuperOptCalls.Inc()
		metricBisectIters.Add(uint64(res.Iterations))
		stageEnd(start, metricSuperOptSeconds, "core.superopt", telemetry.SpanContext{}, in.N())
	}
	return so
}

// Linearized is the two-segment utility g_i from Equation 1 of the paper:
// a linear ramp from (0,0) to (ĉ_i, f_i(ĉ_i)), flat afterwards. It lower
// bounds f_i (Lemma V.4) and makes the greedy analysis tractable.
//
// When ĉ_i = 0 the ramp degenerates: g is the constant f_i(0) and the
// thread is "full" with zero resource anywhere (slope 0).
type Linearized struct {
	UHat float64 // f_i(ĉ_i), the plateau value
	CHat float64 // ĉ_i, the super-optimal allocation
	C    float64 // domain bound (server capacity)
}

// Value returns g(x).
func (g Linearized) Value(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if g.CHat <= 0 || x >= g.CHat {
		return g.UHat
	}
	return g.UHat * x / g.CHat
}

// Deriv returns the ramp slope before ĉ and 0 after.
func (g Linearized) Deriv(x float64) float64 {
	if g.CHat <= 0 || x >= g.CHat || x >= g.C {
		return 0
	}
	return g.UHat / g.CHat
}

// Cap returns the domain bound.
func (g Linearized) Cap() float64 { return g.C }

// Slope returns g's ramp slope g(ĉ)/ĉ, or 0 for the degenerate ĉ = 0
// case (such a thread needs no resource at all).
func (g Linearized) Slope() float64 {
	if g.CHat <= 0 {
		return 0
	}
	return g.UHat / g.CHat
}

// InverseDeriv returns ĉ when the ramp slope is at least lambda, else 0.
func (g Linearized) InverseDeriv(lambda float64) float64 {
	if g.CHat > 0 && g.Slope() >= lambda {
		return g.CHat
	}
	return 0
}

// Linearize builds the linearized utilities g_1..g_n for an instance from
// its super-optimal allocation (§V-A).
func Linearize(in *Instance, so SuperOpt) []Linearized {
	gs := make([]Linearized, in.N())
	for i := range gs {
		gs[i] = Linearized{UHat: so.Value[i], CHat: so.Alloc[i], C: in.C}
	}
	if telemetry.Enabled() {
		metricLinearizeCalls.Inc()
	}
	return gs
}
