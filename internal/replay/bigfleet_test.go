package replay

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestBigfleetScaled: the bigfleet family (batch admission at t=0 plus
// churn) must replay deterministically at test scale and report the
// cohort in its trace stats. The full 2×10⁵-thread builtin runs under
// TestBigfleetFullSize.
func TestBigfleetScaled(t *testing.T) {
	sc := shrink(t, "bigfleet")
	var a, b bytes.Buffer
	for i, buf := range []*bytes.Buffer{&a, &b} {
		rep, err := Run(sc, RunOptions{Seed: 9})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if rep.Trace.Batches != 1 {
			t.Fatalf("run %d: %d batch events, want 1", i, rep.Trace.Batches)
		}
		if rep.Trace.Arrivals < sc.InitialThreads {
			t.Fatalf("run %d: %d arrivals, want >= %d cohort members",
				i, rep.Trace.Arrivals, sc.InitialThreads)
		}
		if rep.Utility.FinalThreads < sc.InitialThreads {
			t.Fatalf("run %d: %d final threads, cohort should persist to the horizon",
				i, rep.Utility.FinalThreads)
		}
		if err := rep.Canonical().WriteJSON(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed bigfleet reports differ:\n%s", firstDiff(a.String(), b.String()))
	}
}

// TestBigfleetFullSize runs the unshrunken builtin — a 2×10⁵-thread
// standing fleet whose every full re-solve crosses the parallel Assign2
// threshold. Minutes of work on a small machine, so opt-in.
func TestBigfleetFullSize(t *testing.T) {
	if os.Getenv("AA_REPLAY_BIGFLEET") == "" {
		t.Skip("set AA_REPLAY_BIGFLEET=1 to replay the full-size bigfleet scenario")
	}
	sc, ok := Builtin("bigfleet")
	if !ok {
		t.Fatal("no bigfleet builtin")
	}
	rep, err := Run(sc, RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Utility.FinalThreads < sc.InitialThreads {
		t.Fatalf("final threads %d, want >= %d", rep.Utility.FinalThreads, sc.InitialThreads)
	}
	if !(rep.Utility.Ratio > 0.8) {
		t.Errorf("full-resolve utility/bound ratio %v, want > 0.8", rep.Utility.Ratio)
	}
}

// TestDecodeTraceBatch: recorded traces can carry arrive-batch events,
// and they replay.
func TestDecodeTraceBatch(t *testing.T) {
	src := `{
		"name": "fleet", "servers": 2, "capacity": 100,
		"events": [
			{"t": 0, "kind": "arrive-batch", "batch": [
				{"id": 0, "v": 3, "w": 1},
				{"id": 1, "v": 2},
				{"id": 2, "v": 4, "w": 2}
			]},
			{"t": 5, "kind": "depart", "id": 1}
		]
	}`
	sc, events, err := DecodeTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || len(events[0].Batch) != 3 || events[0].ID != -1 {
		t.Fatalf("bad decode: %+v", events)
	}
	rep, err := Run(sc, RunOptions{Seed: 1, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Batches != 1 || rep.Trace.Arrivals != 3 || rep.Utility.FinalThreads != 2 {
		t.Fatalf("batch replay stats: %+v final=%d", rep.Trace, rep.Utility.FinalThreads)
	}
}

// TestDecodeTraceBatchErrors: empty cohorts are rejected at decode time.
func TestDecodeTraceBatchErrors(t *testing.T) {
	src := `{"servers":2,"capacity":10,"events":[{"t":0,"kind":"arrive-batch"}]}`
	if _, _, err := DecodeTrace(strings.NewReader(src)); err == nil {
		t.Fatal("empty arrive-batch accepted")
	}
}
