// Quickstart: build an AA instance from closed-form utility functions,
// solve it with the paper's Algorithm 2, and compare against the
// super-optimal bound, Algorithm 1, the exact optimum and the four
// heuristics from the paper's evaluation.
package main

import (
	"fmt"

	"aa"
)

func main() {
	// Two servers with 100 units of a shared resource each (think: two
	// sockets with 100 cache ways, or two hosts with 100 GB of RAM).
	// Six threads with different appetite for the resource.
	const c = 100.0
	inst := &aa.Instance{
		M: 2,
		C: c,
		Threads: []aa.Utility{
			// A cache-friendly thread: big win from the first few units.
			aa.SatExp{Scale: 10, K: 10, C: c},
			// A streaming thread: almost flat — resources are wasted on it.
			aa.Log{Scale: 0.5, Shift: 5, C: c},
			// Two medium threads with diminishing returns.
			aa.Power{Scale: 1.5, Beta: 0.5, C: c},
			aa.Power{Scale: 1.5, Beta: 0.5, C: c},
			// A thread that saturates at 40 units and gains nothing after.
			aa.CappedLinear{Slope: 0.2, Knee: 40, C: c},
			// A high-value linear thread: every unit pays off.
			aa.Linear{Slope: 0.12, C: c},
		},
	}

	sol := aa.Solve(inst) // Algorithm 2: O(n (log mC)²), ratio >= 0.828
	so := aa.SuperOptimal(inst)

	fmt.Println("thread  server  alloc    utility")
	for i := range inst.Threads {
		fmt.Printf("%6d  %6d  %7.2f  %7.3f\n",
			i, sol.Server[i], sol.Alloc[i], inst.Threads[i].Value(sol.Alloc[i]))
	}
	fmt.Printf("\nAlgorithm 2 total utility: %.3f\n", sol.Utility(inst))
	fmt.Printf("super-optimal upper bound: %.3f (achieved %.1f%%)\n",
		so.Total, 100*sol.Utility(inst)/so.Total)

	// The guarantee is a worst case; in practice Algorithm 2 is nearly
	// optimal. Verify against the exact branch-and-bound solver (fine
	// here: only 2^6 symmetric assignments).
	exact, err := aa.SolveExact(inst, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("exact optimum:             %.3f\n", exact.Utility(inst))

	// Compare with Algorithm 1 and the four heuristics of the paper.
	r := aa.NewRand(42)
	fmt.Printf("\n%-24s %8s\n", "algorithm", "utility")
	for _, row := range []struct {
		name string
		u    float64
	}{
		{"Algorithm 2", sol.Utility(inst)},
		{"Algorithm 1", aa.SolveAlgorithm1(inst).Utility(inst)},
		{"exact", exact.Utility(inst)},
		{"UU (round robin/equal)", aa.HeuristicUU(inst).Utility(inst)},
		{"UR (round robin/random)", aa.HeuristicUR(inst, r).Utility(inst)},
		{"RU (random/equal)", aa.HeuristicRU(inst, r).Utility(inst)},
		{"RR (random/random)", aa.HeuristicRR(inst, r).Utility(inst)},
	} {
		fmt.Printf("%-24s %8.3f\n", row.name, row.u)
	}
}
