package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"aa/internal/engine"
	"aa/internal/instio"
)

const demoInstance = `{
  "m": 2, "c": 100,
  "threads": [
    {"kind": "log", "scale": 5, "shift": 10},
    {"kind": "power", "scale": 2, "beta": 0.5},
    {"kind": "cappedLinear", "slope": 1, "knee": 30},
    {"kind": "satexp", "scale": 3, "k": 20}
  ]
}`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{Backend: "a2", Workers: 2})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer((&server{eng: eng, backend: "a2"}).mux())
	t.Cleanup(ts.Close)
	return ts
}

func postSolve(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestSolveEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postSolve(t, ts, "/solve?check=1", demoInstance)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var a instio.AssignmentJSON
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(a.Server) != 4 || len(a.Alloc) != 4 {
		t.Fatalf("short assignment: %+v", a)
	}
	if a.Utility <= 0 || a.Bound < a.Utility-1e-9 {
		t.Fatalf("utility %v, bound %v", a.Utility, a.Bound)
	}
}

func TestSolveBackendsAndSeeds(t *testing.T) {
	ts := newTestServer(t)
	for _, backend := range []string{"a1", "polish", "greedy", "uu", "ur", "exact"} {
		resp, body := postSolve(t, ts, "/solve?backend="+backend+"&seed=7", demoInstance)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", backend, resp.StatusCode, body)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		path, body string
		status     int
	}{
		{"/solve", "not json", http.StatusBadRequest},
		{"/solve?backend=nope", demoInstance, http.StatusBadRequest},
		{"/solve?deadline=bogus", demoInstance, http.StatusBadRequest},
		{"/solve?seed=minus", demoInstance, http.StatusBadRequest},
		{"/solve/batch", "[]", http.StatusBadRequest},
		{"/solve/batch", `[{"m": 0, "c": 1, "threads": []}]`, http.StatusBadRequest},
	} {
		resp, body := postSolve(t, ts, tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.path, resp.StatusCode, tc.status, body)
		}
	}

	get, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d", get.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	batch := "[" + demoInstance + "," + demoInstance + "," + demoInstance + "]"
	resp, body := postSolve(t, ts, "/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out []instio.AssignmentJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Utility != out[0].Utility {
			t.Errorf("identical instances solved differently: %v vs %v", out[i].Utility, out[0].Utility)
		}
	}
}

func TestAuxiliaryEndpoints(t *testing.T) {
	ts := newTestServer(t)
	for path, want := range map[string]string{
		"/healthz":  "ok",
		"/backends": "assign2",
		"/metrics":  "aa_",
		"/vars":     "{",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(body, want) {
			t.Errorf("%s: missing %q in:\n%s", path, want, body)
		}
	}
}

// TestServeAndShutdown exercises the real run() lifecycle: bind an
// ephemeral port, solve once over TCP, then SIGTERM-drain.
func TestServeAndShutdown(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}, testWriter{t}, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Post("http://"+addr+"/solve", "application/json", strings.NewReader(demoInstance))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// run() has SIGTERM notification installed before it reports ready,
	// so raising it here reaches the drain path, not the default
	// handler.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
