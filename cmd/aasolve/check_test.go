package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCheckFlagAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"a2", "a1", "a2p", "ls", "gm", "exact", "uu", "ur", "ru", "rr"} {
		var out, errOut bytes.Buffer
		err := run([]string{"-algo", algo, "-check"}, strings.NewReader(demoInstance), &out, &errOut)
		if err != nil {
			t.Fatalf("%s -check: %v", algo, err)
		}
		if !strings.Contains(errOut.String(), "check ok") {
			t.Errorf("%s: missing check-ok line, stderr: %q", algo, errOut.String())
		}
	}
}

func TestRunCheckEnvVar(t *testing.T) {
	t.Setenv("AA_CHECK", "1")
	var out, errOut bytes.Buffer
	if err := run(nil, strings.NewReader(demoInstance), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "check ok") {
		t.Errorf("AA_CHECK=1 did not trigger checking, stderr: %q", errOut.String())
	}
}

func TestRunCheckOffByDefault(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(nil, strings.NewReader(demoInstance), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(errOut.String(), "check ok") {
		t.Error("checking ran without -check")
	}
}
