package online

import (
	"strings"
	"testing"

	"aa/internal/rng"
)

// batchOf draws n random-utility members with ids starting at base.
func batchOf(r *rng.Rand, c float64, base, n int) []BatchArrival {
	out := make([]BatchArrival, n)
	for i := range out {
		out[i] = BatchArrival{ID: base + i, Util: randomUtility(r, c)}
	}
	return out
}

// TestArriveBatchFeasibleAllPolicies: a cohort admission followed by
// churn must leave every policy in a feasible state, with every batch
// member placed.
func TestArriveBatchFeasibleAllPolicies(t *testing.T) {
	base := rng.New(21)
	for pi, p := range []Policy{FullResolve{}, Incremental{}, Hybrid{Threshold: 0.83}} {
		r := base.Split(uint64(pi))
		events := []Event{{Time: 0, Kind: ArriveBatch, ID: -1, Batch: batchOf(r, 100, 0, 40)}}
		t2 := 0.0
		for _, ev := range randomTimeline(r, 100, 20) {
			ev.ID += 40 // churn ids above the batch
			t2 = ev.Time + 1
			events = append(events, ev)
		}
		res, err := Simulate(4, 100, events, p, 1.0, t2+10)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.FinalThreads < 40-20 {
			t.Errorf("%s: final threads %d, batch members lost", p.Name(), res.FinalThreads)
		}
		if res.UtilityIntegral <= 0 {
			t.Errorf("%s: utility integral %v", p.Name(), res.UtilityIntegral)
		}
	}
}

// TestArriveBatchSpreads: the incremental placement must not stack the
// cohort on one server — the capped-demand load estimate spreads it.
func TestArriveBatchSpreads(t *testing.T) {
	r := rng.New(22)
	s := NewState(4, 100)
	batch := batchOf(r, 100, 0, 32)
	for _, ba := range batch {
		s.Threads[ba.ID] = ba.Util
	}
	s.placeBatch(batch)
	used := map[int]int{}
	for _, ba := range batch {
		p, ok := s.Place[ba.ID]
		if !ok {
			t.Fatalf("batch member %d unplaced", ba.ID)
		}
		used[p.Server]++
	}
	if len(used) != 4 {
		t.Errorf("32 threads over 4 servers used only %d servers: %v", len(used), used)
	}
	if err := s.Validate(1e-9); err != nil {
		t.Error(err)
	}
}

// TestArriveBatchNoSelfMigrations: admitting a cohort under
// full-resolve counts no migrations when nothing was placed before.
func TestArriveBatchNoSelfMigrations(t *testing.T) {
	r := rng.New(23)
	events := []Event{{Time: 0, Kind: ArriveBatch, ID: -1, Batch: batchOf(r, 100, 0, 25)}}
	res, err := Simulate(3, 100, events, FullResolve{}, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Errorf("cohort admission counted %d migrations", res.Migrations)
	}
	if res.FinalThreads != 25 {
		t.Errorf("final threads %d, want 25", res.FinalThreads)
	}
}

// TestArriveBatchErrors: empty cohorts, missing utilities and duplicate
// ids (within the batch or against earlier arrivals) are rejected.
func TestArriveBatchErrors(t *testing.T) {
	r := rng.New(24)
	u := randomUtility(r, 100)
	for name, tc := range map[string]struct {
		events []Event
		want   string
	}{
		"empty batch": {
			[]Event{{Time: 0, Kind: ArriveBatch, ID: -1}}, "empty arrival batch"},
		"nil utility": {
			[]Event{{Time: 0, Kind: ArriveBatch, ID: -1, Batch: []BatchArrival{{ID: 0}}}},
			"without utility"},
		"duplicate inside batch": {
			[]Event{{Time: 0, Kind: ArriveBatch, ID: -1,
				Batch: []BatchArrival{{ID: 7, Util: u}, {ID: 7, Util: u}}}},
			"duplicate arrival 7"},
		"duplicate of prior arrival": {
			[]Event{
				{Time: 0, Kind: Arrive, ID: 3, Util: u},
				{Time: 1, Kind: ArriveBatch, ID: -1, Batch: []BatchArrival{{ID: 3, Util: u}}}},
			"duplicate arrival 3"},
	} {
		_, err := Simulate(2, 100, tc.events, FullResolve{}, 0, 10)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want %q", name, err, tc.want)
		}
	}
}

func TestArriveBatchKindString(t *testing.T) {
	if got := ArriveBatch.String(); got != "arrive-batch" {
		t.Errorf("ArriveBatch.String() = %q", got)
	}
}
