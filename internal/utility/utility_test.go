package utility

import (
	"math"
	"testing"
	"testing/quick"
)

const c1000 = 1000.0

// allFamilies returns one representative of each closed-form family over
// capacity C=1000 for table-driven property tests.
func allFamilies() map[string]Func {
	return map[string]Func{
		"linear":       Linear{Slope: 2, C: c1000},
		"cappedLinear": CappedLinear{Slope: 3, Knee: 400, C: c1000},
		"powerHalf":    Power{Scale: 5, Beta: 0.5, C: c1000},
		"powerOne":     Power{Scale: 5, Beta: 1, C: c1000},
		"log":          Log{Scale: 4, Shift: 50, C: c1000},
		"satexp":       SatExp{Scale: 7, K: 200, C: c1000},
		"saturating":   Saturating{Scale: 9, K: 300, C: c1000},
	}
}

func TestAllFamiliesValidate(t *testing.T) {
	for name, f := range allFamilies() {
		if err := Validate(f, 2000, 1e-9); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAllFamiliesValueAtZero(t *testing.T) {
	for name, f := range allFamilies() {
		if v := f.Value(0); v != 0 {
			t.Errorf("%s: Value(0) = %v, want 0", name, v)
		}
	}
}

func TestAllFamiliesClampOutsideDomain(t *testing.T) {
	for name, f := range allFamilies() {
		atCap := f.Value(f.Cap())
		if v := f.Value(f.Cap() + 100); v != atCap {
			t.Errorf("%s: Value beyond cap = %v, want %v", name, v, atCap)
		}
		if v := f.Value(-5); v != f.Value(0) {
			t.Errorf("%s: Value(-5) = %v, want f(0)", name, v)
		}
	}
}

func TestAllFamiliesDerivMatchesFiniteDifference(t *testing.T) {
	const h = 1e-5
	for name, f := range allFamilies() {
		for _, x := range []float64{1, 10, 100, 500, 900} {
			fd := (f.Value(x+h) - f.Value(x-h)) / (2 * h)
			got := f.Deriv(x)
			if math.Abs(got-fd) > 1e-3*(1+math.Abs(fd)) {
				t.Errorf("%s: Deriv(%v) = %v, finite difference %v", name, x, got, fd)
			}
		}
	}
}

// InverseDeriv must agree with the generic bisection for every family that
// provides a closed form.
func TestInverseDerivClosedFormsAgreeWithBisection(t *testing.T) {
	for name, f := range allFamilies() {
		inv, ok := f.(DerivInverter)
		if !ok {
			continue
		}
		for _, lambda := range []float64{0.0001, 0.001, 0.01, 0.1, 1, 10} {
			got := inv.InverseDeriv(lambda)
			// Reference: bisection directly on Deriv (bypass fast path).
			ref := bisectInverse(f, lambda)
			if math.Abs(got-ref) > 1e-3*(1+ref) {
				t.Errorf("%s: InverseDeriv(%v) = %v, bisection %v", name, lambda, got, ref)
			}
		}
	}
}

// bisectInverse is the generic inversion without the fast-path dispatch.
func bisectInverse(f Func, lambda float64) float64 {
	c := f.Cap()
	if f.Deriv(0) < lambda {
		return 0
	}
	if f.Deriv(c) >= lambda {
		return c
	}
	lo, hi := 0.0, c
	for hi-lo > 1e-9 {
		mid := 0.5 * (lo + hi)
		if f.Deriv(mid) >= lambda {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func TestInverseDerivDefinition(t *testing.T) {
	// For every family: at x = InverseDeriv(λ), Deriv(x) >= λ holds just
	// below x, and fails just above (unless clamped at 0 or C).
	for name, f := range allFamilies() {
		for _, lambda := range []float64{0.001, 0.05, 0.5} {
			x := InverseDeriv(f, lambda, 1e-10)
			if x > 1e-6 {
				if d := f.Deriv(x * (1 - 1e-9)); d < lambda*(1-1e-6) {
					t.Errorf("%s: Deriv just below InverseDeriv(%v)=%v is %v < λ", name, lambda, x, d)
				}
			}
			if x < f.Cap()-1e-6 {
				if d := f.Deriv(x + 1e-6*(1+x)); d > lambda*(1+1e-3) {
					t.Errorf("%s: Deriv just above InverseDeriv(%v)=%v is %v > λ", name, lambda, x, d)
				}
			}
		}
	}
}

func TestPowerIntroExample(t *testing.T) {
	// Paper §I: with f(x) = x^β, equal allocation of C among n threads
	// yields C^β n^(1-β), arbitrarily better than fixed-request for big n.
	f := Power{Scale: 1, Beta: 0.5, C: c1000}
	n := 100.0
	equal := n * f.Value(c1000/n) // n threads, C/n each
	want := math.Pow(c1000, 0.5) * math.Pow(n, 0.5)
	if math.Abs(equal-want) > 1e-6*want {
		t.Errorf("equal-split total = %v, want %v", equal, want)
	}
}

func TestCappedLinearShape(t *testing.T) {
	f := CappedLinear{Slope: 2, Knee: 10, C: 100}
	cases := []struct{ x, want float64 }{
		{0, 0}, {5, 10}, {10, 20}, {50, 20}, {100, 20},
	}
	for _, tc := range cases {
		if got := f.Value(tc.x); got != tc.want {
			t.Errorf("Value(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if d := f.Deriv(5); d != 2 {
		t.Errorf("Deriv(5) = %v, want 2", d)
	}
	if d := f.Deriv(15); d != 0 {
		t.Errorf("Deriv(15) = %v, want 0", d)
	}
}

func TestPiecewiseLinear(t *testing.T) {
	p, err := NewPiecewiseLinear([]float64{0, 10, 30}, []float64{0, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Value(5); got != 10 {
		t.Errorf("Value(5) = %v, want 10", got)
	}
	if got := p.Value(20); got != 25 {
		t.Errorf("Value(20) = %v, want 25", got)
	}
	if got := p.Deriv(5); got != 2 {
		t.Errorf("Deriv(5) = %v, want 2", got)
	}
	if got := p.Cap(); got != 30 {
		t.Errorf("Cap() = %v, want 30", got)
	}
	if err := Validate(p, 500, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestPiecewiseLinearInverseDeriv(t *testing.T) {
	p, _ := NewPiecewiseLinear([]float64{0, 10, 30}, []float64{0, 20, 30})
	cases := []struct{ lambda, want float64 }{
		{3, 0},    // no segment has slope >= 3
		{2, 10},   // first segment only
		{1, 10},   // first segment only (second has slope 0.5)
		{0.5, 30}, // both segments
		{0.1, 30},
	}
	for _, tc := range cases {
		if got := p.InverseDeriv(tc.lambda); got != tc.want {
			t.Errorf("InverseDeriv(%v) = %v, want %v", tc.lambda, got, tc.want)
		}
	}
}

func TestPiecewiseLinearRejectsBadData(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
	}{
		{"not from zero", []float64{1, 2}, []float64{0, 1}},
		{"decreasing", []float64{0, 1, 2}, []float64{0, 2, 1}},
		{"convex", []float64{0, 1, 2}, []float64{0, 1, 3}},
		{"negative", []float64{0, 1}, []float64{-1, 0}},
		{"empty", nil, nil},
	}
	for _, tc := range cases {
		if _, err := NewPiecewiseLinear(tc.xs, tc.ys); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSampledPaperGeneratorShape(t *testing.T) {
	// The paper's three-point construction (0,0), (C/2, v), (C, v+w), w<=v.
	s, err := NewSampled([]float64{0, c1000 / 2, c1000}, []float64{0, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Value(c1000 / 2); math.Abs(got-5) > 1e-9 {
		t.Errorf("Value(C/2) = %v, want 5", got)
	}
	if got := s.Value(c1000); math.Abs(got-6) > 1e-9 {
		t.Errorf("Value(C) = %v, want 6", got)
	}
	// Monotone nondecreasing on a dense grid.
	prev := s.Value(0)
	for x := 0.0; x <= c1000; x += 1 {
		v := s.Value(x)
		if v < prev-1e-9 {
			t.Fatalf("sampled curve decreases at x=%v", x)
		}
		prev = v
	}
}

func TestSampledRejectsBadData(t *testing.T) {
	if _, err := NewSampled([]float64{0, 1}, []float64{1, 0}); err == nil {
		t.Error("decreasing data accepted")
	}
	if _, err := NewSampled([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("domain not starting at 0 accepted")
	}
	if _, err := NewSampled([]float64{0, 1}, []float64{-1, 1}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestScaledCombinator(t *testing.T) {
	f := Scaled{F: Linear{Slope: 2, C: 100}, Factor: 3}
	if got := f.Value(10); got != 60 {
		t.Errorf("Value(10) = %v, want 60", got)
	}
	if got := f.Deriv(10); got != 6 {
		t.Errorf("Deriv(10) = %v, want 6", got)
	}
	if got := f.InverseDeriv(5); got != 100 {
		t.Errorf("InverseDeriv(5) = %v, want 100 (slope 6 >= 5 everywhere)", got)
	}
	if got := f.InverseDeriv(7); got != 0 {
		t.Errorf("InverseDeriv(7) = %v, want 0", got)
	}
}

func TestSumCombinator(t *testing.T) {
	s := Sum{Fs: []Func{
		Linear{Slope: 1, C: 100},
		CappedLinear{Slope: 1, Knee: 50, C: 100},
	}}
	if got := s.Value(60); got != 110 {
		t.Errorf("Value(60) = %v, want 110", got)
	}
	if got := s.Deriv(10); got != 2 {
		t.Errorf("Deriv(10) = %v, want 2", got)
	}
	if got := s.Cap(); got != 100 {
		t.Errorf("Cap() = %v, want 100", got)
	}
	if err := Validate(s, 500, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestOffsetCombinator(t *testing.T) {
	o := Offset{F: Linear{Slope: 1, C: 10}, Base: 5}
	if got := o.Value(0); got != 5 {
		t.Errorf("Value(0) = %v, want 5", got)
	}
	if got := o.Value(10); got != 15 {
		t.Errorf("Value(10) = %v, want 15", got)
	}
	if err := Validate(o, 100, 1e-9); err != nil {
		t.Error(err)
	}
	if got := o.InverseDeriv(0.5); got != 10 {
		t.Errorf("InverseDeriv(0.5) = %v, want 10", got)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	// Convex function must be rejected.
	conv := quadratic{c: 100}
	err := Validate(conv, 500, 1e-9)
	if err == nil {
		t.Fatal("convex function passed validation")
	}
	ve, ok := err.(*ValidationError)
	if !ok || ve.Property != "concave" {
		t.Errorf("got %v, want concavity violation", err)
	}

	// Decreasing function must be rejected.
	dec := negLinear{c: 100}
	err = Validate(dec, 500, 1e-9)
	if err == nil {
		t.Fatal("decreasing function passed validation")
	}
}

// quadratic f(x) = x² is convex — used to exercise Validate.
type quadratic struct{ c float64 }

func (q quadratic) Value(x float64) float64 { x = clamp(x, q.c); return x * x }
func (q quadratic) Deriv(x float64) float64 { return 2 * clamp(x, q.c) }
func (q quadratic) Cap() float64            { return q.c }

// negLinear f(x) = -x is decreasing and negative.
type negLinear struct{ c float64 }

func (n negLinear) Value(x float64) float64 { return -clamp(x, n.c) }
func (n negLinear) Deriv(x float64) float64 { return -1 }
func (n negLinear) Cap() float64            { return n.c }

func TestValidateNonpositiveCap(t *testing.T) {
	if err := Validate(Linear{Slope: 1, C: 0}, 100, 1e-9); err == nil {
		t.Error("zero capacity passed validation")
	}
}

// Property: InverseDeriv is monotone nonincreasing in lambda for all
// families (higher marginal-value threshold ⇒ less resource qualifies).
func TestInverseDerivMonotoneProperty(t *testing.T) {
	for name, f := range allFamilies() {
		f := f
		prop := func(a, b float64) bool {
			la, lb := math.Abs(a)+1e-6, math.Abs(b)+1e-6
			if la > lb {
				la, lb = lb, la
			}
			return InverseDeriv(f, la, 1e-9) >= InverseDeriv(f, lb, 1e-9)-1e-6
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func BenchmarkPowerInverseDeriv(b *testing.B) {
	f := Power{Scale: 5, Beta: 0.5, C: c1000}
	for i := 0; i < b.N; i++ {
		f.InverseDeriv(0.1)
	}
}

func BenchmarkGenericInverseDeriv(b *testing.B) {
	// Force the bisection path with a wrapper lacking the fast path.
	f := noInvWrapper{Power{Scale: 5, Beta: 0.5, C: c1000}}
	for i := 0; i < b.N; i++ {
		InverseDeriv(f, 0.1, 1e-9)
	}
}

type noInvWrapper struct{ f Func }

func (w noInvWrapper) Value(x float64) float64 { return w.f.Value(x) }
func (w noInvWrapper) Deriv(x float64) float64 { return w.f.Deriv(x) }
func (w noInvWrapper) Cap() float64            { return w.f.Cap() }

func TestMinCombinator(t *testing.T) {
	// Demand cap: linear growth clipped at 12.
	m := Min{Fs: []Func{
		Linear{Slope: 2, C: 100},
		CappedLinear{Slope: 1e9, Knee: 12e-9, C: 100}, // ~constant 12
	}}
	if got := m.Value(3); got != 6 {
		t.Errorf("Value(3) = %v, want 6", got)
	}
	if got := m.Value(50); math.Abs(got-12) > 1e-6 {
		t.Errorf("Value(50) = %v, want ~12", got)
	}
	if got := m.Deriv(3); got != 2 {
		t.Errorf("Deriv(3) = %v, want 2 (linear branch binding)", got)
	}
	if got := m.Deriv(50); got != 0 {
		t.Errorf("Deriv(50) = %v, want 0 (cap binding)", got)
	}
	if err := Validate(m, 1000, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestMinCombinatorEmptyAndCap(t *testing.T) {
	var m Min
	if m.Value(5) != 0 || m.Deriv(5) != 0 || m.Cap() != 0 {
		t.Error("empty Min should be identically zero")
	}
	m = Min{Fs: []Func{Linear{Slope: 1, C: 10}, Linear{Slope: 1, C: 7}}}
	if m.Cap() != 7 {
		t.Errorf("Cap = %v, want 7", m.Cap())
	}
}

// randomConcavePL builds a random concave nondecreasing piecewise-linear
// utility with up to 6 knots.
func randomConcavePL(seed uint64, c float64) *PiecewiseLinear {
	// Simple LCG so this helper has no dependencies.
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / (1 << 53)
	}
	k := 2 + int(next()*5)
	xs := make([]float64, k)
	ys := make([]float64, k)
	for i := 1; i < k; i++ {
		xs[i] = xs[i-1] + 0.05*c + next()*c/float64(k)
	}
	// Force last knot to c and rescale.
	scale := c / xs[k-1]
	for i := range xs {
		xs[i] *= scale
	}
	slope := 1 + next()*3
	for i := 1; i < k; i++ {
		ys[i] = ys[i-1] + slope*(xs[i]-xs[i-1])
		slope *= 0.3 + 0.7*next() // nonincreasing slopes => concave
	}
	pl, err := NewPiecewiseLinear(xs, ys)
	if err != nil {
		panic(err)
	}
	return pl
}

// Property: generic concave piecewise-linear utilities (arbitrary knots)
// pass validation and InverseDeriv honors its definition.
func TestRandomPiecewiseLinearProperties(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		pl := randomConcavePL(seed, 100)
		if err := Validate(pl, 400, 1e-9); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, lambda := range []float64{0.01, 0.5, 1, 2, 5} {
			x := pl.InverseDeriv(lambda)
			if x < 0 || x > pl.Cap() {
				t.Fatalf("seed %d: InverseDeriv out of range: %v", seed, x)
			}
			if x > 1e-9 && pl.Deriv(x-1e-9) < lambda-1e-9 {
				t.Fatalf("seed %d λ=%v: slope before x=%v is %v < λ",
					seed, lambda, x, pl.Deriv(x-1e-9))
			}
		}
	}
}

func TestCombinatorDerivAndCapCoverage(t *testing.T) {
	// Scaled without a fast-path inner function falls back to bisection.
	s := Scaled{F: noInvWrapper{Log{Scale: 2, Shift: 10, C: 100}}, Factor: 2}
	if got, want := s.Deriv(10), 2*(Log{Scale: 2, Shift: 10, C: 100}).Deriv(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("Scaled.Deriv = %v, want %v", got, want)
	}
	x := s.InverseDeriv(0.1)
	if d := s.Deriv(x); math.Abs(d-0.1) > 1e-3 {
		t.Errorf("Scaled.InverseDeriv(0.1) = %v with Deriv %v", x, d)
	}
	// Non-positive factor: no resource is ever worth taking.
	z := Scaled{F: Linear{Slope: 1, C: 10}, Factor: 0}
	if z.InverseDeriv(0.5) != 0 {
		t.Error("zero-factor Scaled should demand nothing")
	}

	// Sum/Offset/Min Deriv and Cap edges.
	sum := Sum{}
	if sum.Cap() != 0 {
		t.Error("empty Sum cap")
	}
	off := Offset{F: noInvWrapper{SatExp{Scale: 2, K: 10, C: 50}}, Base: 1}
	if got := off.InverseDeriv(0.05); got <= 0 || got > 50 {
		t.Errorf("Offset.InverseDeriv via bisection = %v", got)
	}
	if off.Cap() != 50 {
		t.Errorf("Offset.Cap = %v", off.Cap())
	}
	mn := Min{Fs: []Func{Linear{Slope: 2, C: 30}, Linear{Slope: 1, C: 40}}}
	if mn.Value(10) != 10 {
		t.Errorf("Min.Value = %v, want 10 (slope-1 branch)", mn.Value(10))
	}
}

func TestInverseDerivBoundaryBranches(t *testing.T) {
	f := noInvWrapper{Log{Scale: 1, Shift: 10, C: 100}}
	// λ larger than Deriv(0)=0.1: nothing qualifies.
	if got := InverseDeriv(f, 0.2, 1e-9); got != 0 {
		t.Errorf("InverseDeriv above max marginal = %v, want 0", got)
	}
	// λ smaller than every interior marginal: (almost) everything
	// qualifies. Deriv is 0 exactly at the cap by convention, so the
	// bisection converges to C from below.
	if got := InverseDeriv(f, 1e-9, 1e-9); got < 100-1e-6 {
		t.Errorf("InverseDeriv below min marginal = %v, want ~C", got)
	}
}

func TestValidationErrorMessage(t *testing.T) {
	err := Validate(quadratic{c: 100}, 300, 1e-9)
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("got %T", err)
	}
	msg := ve.Error()
	if msg == "" || ve.Property != "concave" {
		t.Errorf("message %q property %q", msg, ve.Property)
	}
}

func TestFamilyDerivBeyondCap(t *testing.T) {
	// Every family must report zero marginal value beyond its domain.
	for name, f := range allFamilies() {
		if d := f.Deriv(f.Cap() + 1); d != 0 {
			t.Errorf("%s: Deriv beyond cap = %v, want 0", name, d)
		}
	}
	// And Linear/CappedLinear inside vs at the cap.
	lin := Linear{Slope: 2, C: 10}
	if lin.Deriv(10) != 0 {
		t.Error("Linear.Deriv at cap should be 0")
	}
	pw, _ := NewPiecewiseLinear([]float64{0, 5, 10}, []float64{0, 5, 8})
	if pw.Deriv(10) != 0 {
		t.Error("PiecewiseLinear.Deriv at cap should be 0")
	}
}

func TestInverseDerivTerminatesOnHugeDomains(t *testing.T) {
	// Regression: with C = 1e6 the float64 ulp (~1.2e-10) exceeds an
	// absolute tolerance of 1e-12, so an unbounded bisection spins
	// forever. The loop must terminate and return a sensible point.
	xs := []float64{0, 5e5, 1e6}
	ys := []float64{0, 0.8, 1.0}
	s, err := NewSampled(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan float64, 1)
	go func() { done <- InverseDeriv(s, 1e-7, 1e-12) }()
	select {
	case x := <-done:
		if x < 0 || x > 1e6 {
			t.Errorf("InverseDeriv = %v out of domain", x)
		}
	case <-timeAfter():
		t.Fatal("InverseDeriv did not terminate")
	}
}
