package gen

import (
	"math"
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

func TestDistributionsNonnegative(t *testing.T) {
	r := rng.New(1)
	dists := []Dist{
		DefaultUniform,
		DefaultNormal,
		PowerLaw{Alpha: 2, Xmin: 1},
		Discrete{L: 1, Gamma: 0.85, Theta: 5},
	}
	for _, d := range dists {
		for i := 0; i < 1000; i++ {
			if v := d.Sample(r); v < 0 {
				t.Errorf("%s produced negative value %v", d.Name(), v)
			}
		}
	}
}

func TestDistNames(t *testing.T) {
	cases := []struct {
		d    Dist
		want string
	}{
		{Uniform{0, 1}, "uniform[0,1)"},
		{Normal{1, 1}, "normal(1,1)+"},
		{PowerLaw{Alpha: 2, Xmin: 1}, "powerlaw(α=2)"},
		{Discrete{L: 1, Gamma: 0.85, Theta: 5}, "discrete(γ=0.85,θ=5)"},
	}
	for _, tc := range cases {
		if got := tc.d.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestDiscreteValues(t *testing.T) {
	r := rng.New(2)
	d := Discrete{L: 2, Gamma: 0.5, Theta: 3}
	for i := 0; i < 100; i++ {
		v := d.Sample(r)
		if v != 2 && v != 6 {
			t.Fatalf("discrete sample %v not in {2, 6}", v)
		}
	}
}

func TestThreadShape(t *testing.T) {
	r := rng.New(3)
	const c = 1000.0
	for trial := 0; trial < 200; trial++ {
		f, err := Thread(DefaultUniform, c, r)
		if err != nil {
			t.Fatal(err)
		}
		if f.Cap() != c {
			t.Fatalf("Cap() = %v, want %v", f.Cap(), c)
		}
		if v := f.Value(0); v != 0 {
			t.Fatalf("f(0) = %v, want 0", v)
		}
		// Nondecreasing on a coarse grid.
		prev := 0.0
		for x := 0.0; x <= c; x += 20 {
			y := f.Value(x)
			if y < prev-1e-9 {
				t.Fatalf("trial %d: f decreases at x=%v", trial, x)
			}
			prev = y
		}
		// Midpoint value at least the endpoint-half: f(C) = v+w <= 2v = 2 f(C/2).
		if f.Value(c) > 2*f.Value(c/2)+1e-9 {
			t.Fatalf("w > v construction violated: f(C)=%v > 2·f(C/2)=%v",
				f.Value(c), 2*f.Value(c/2))
		}
	}
}

func TestThreadNearConcave(t *testing.T) {
	// PCHIP through concave data should produce (nearly) concave curves;
	// verify secant slopes never increase materially.
	r := rng.New(4)
	const c = 1000.0
	for trial := 0; trial < 100; trial++ {
		f, err := Thread(PowerLaw{Alpha: 2, Xmin: 1}, c, r)
		if err != nil {
			t.Fatal(err)
		}
		scale := f.Value(c)
		if scale == 0 {
			continue
		}
		prevSlope := math.Inf(1)
		prev := 0.0
		for x := 10.0; x <= c; x += 10 {
			y := f.Value(x)
			slope := (y - prev) / 10
			if slope > prevSlope+1e-6*scale {
				t.Fatalf("trial %d: slope increases at x=%v (%v -> %v)", trial, x, prevSlope, slope)
			}
			prevSlope, prev = slope, y
		}
	}
}

func TestInstanceGeneration(t *testing.T) {
	r := rng.New(5)
	in, err := Instance(DefaultNormal, 8, 1000, 40, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.N() != 40 || in.M != 8 || in.C != 1000 {
		t.Errorf("instance shape (n=%d m=%d C=%v)", in.N(), in.M, in.C)
	}
}

func TestInstanceDeterministicPerSeed(t *testing.T) {
	a, err := Instance(DefaultUniform, 4, 100, 10, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instance(DefaultUniform, 4, 100, 10, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Threads {
		for x := 0.0; x <= 100; x += 10 {
			if a.Threads[i].Value(x) != b.Threads[i].Value(x) {
				t.Fatalf("thread %d differs at x=%v across identical seeds", i, x)
			}
		}
	}
}

func TestMixedFamilies(t *testing.T) {
	r := rng.New(6)
	in := MixedFamilies(4, 500, 30, r)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, f := range in.Threads {
		if err := utility.Validate(f, 300, 1e-9); err != nil {
			t.Errorf("thread %d: %v", i, err)
		}
	}
}
