package core

// White-box byte-identity tests for the parallel Assign2 path: the
// chunked merge sort must reproduce sort.Stable's permutation exactly
// (including adversarial tie patterns, where stability is the whole
// contract), and assign2Parallel must reproduce assign2's output bits
// on hand-crafted linearizations the generator corpus cannot produce —
// equal g(ĉ) everywhere, equal residuals, saturated heaps, zero and
// negative ĉ.

import (
	"math"
	"runtime"
	"sort"
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

// withProcs runs f with GOMAXPROCS pinned to procs, so parfor really
// fans out even on a single-CPU test machine (goroutines timeshare; the
// identity properties don't care about true parallelism).
func withProcs(t *testing.T, procs int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	f()
}

// tieGS builds adversarial linearizations: keys drawn from a tiny value
// set so the sorts see long runs of equal g(ĉ), equal slopes and equal
// ĉ, and the serve loop sees equal residuals.
func tieGS(n int, seed uint64) []Linearized {
	r := rng.New(seed)
	uhats := []float64{1, 1, 1, 2, 5}
	chats := []float64{10, 10, 20, 40, 0}
	gs := make([]Linearized, n)
	for i := range gs {
		gs[i] = Linearized{
			UHat: uhats[r.Intn(len(uhats))],
			CHat: chats[r.Intn(len(chats))],
			C:    100,
		}
	}
	return gs
}

func TestParallelStableSortMatchesSortStable(t *testing.T) {
	kinds := []sortKind{sortByUHat, sortBySlope, sortByCHat}
	for _, n := range []int{0, 1, 2, 3, 17, 100, 1000, 5000} {
		for _, seed := range []uint64{1, 2, 3} {
			gs := tieGS(n, seed)
			for _, kind := range kinds {
				for _, workers := range []int{1, 2, 4, 7} {
					want := make([]int, n)
					for i := range want {
						want[i] = i
					}
					switch kind {
					case sortByUHat:
						sort.Stable(&uhatSorter{order: want, gs: gs})
					case sortBySlope:
						sort.Stable(&tailSorter{order: want, gs: gs})
					case sortByCHat:
						sort.Stable(&tailSorter{order: want, gs: gs, byCHat: true})
					}
					got := make([]int, n)
					for i := range got {
						got[i] = i
					}
					w := NewWorkspace()
					w.parallelStableSort(got, gs, kind, workers, true)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("n=%d seed=%d kind=%d workers=%d: position %d: got %d, want %d",
								n, seed, kind, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// assertSameAssignment compares two assignments bit for bit: same
// servers, same allocation float bits (±0 included).
func assertSameAssignment(t *testing.T, label string, got, want Assignment) {
	t.Helper()
	if len(got.Server) != len(want.Server) {
		t.Fatalf("%s: length %d != %d", label, len(got.Server), len(want.Server))
	}
	for i := range want.Server {
		if got.Server[i] != want.Server[i] ||
			math.Float64bits(got.Alloc[i]) != math.Float64bits(want.Alloc[i]) {
			t.Fatalf("%s: thread %d: parallel (%d,%v) != serial (%d,%v)",
				label, i, got.Server[i], got.Alloc[i], want.Server[i], want.Alloc[i])
		}
	}
}

// runBoth solves the same hand-crafted linearization through the serial
// and forced-parallel assign2 bodies and asserts byte-identity, across
// every tail ordering.
func runBoth(t *testing.T, label string, m int, c float64, gs []Linearized) {
	t.Helper()
	in := &Instance{M: m, C: c, Threads: make([]utility.Func, len(gs))}
	for i := range in.Threads {
		in.Threads[i] = utility.Linear{Slope: 1, C: c}
	}
	for _, tailOrder := range []TailOrder{TailBySlope, TailByUHat, TailByCHatDesc} {
		ws, wp := NewWorkspace(), NewWorkspace()
		var serial, par Assignment
		ws.assign2(in, gs, tailOrder, &serial)
		wp.assign2Parallel(in, gs, tailOrder, &par, true)
		assertSameAssignment(t, label, par, serial)
		// Heap-op telemetry parity: the fast-forward must not change the
		// swap accounting.
		if sw, pw := ws.h2.swaps, heapSwaps(wp, m); sw != pw {
			t.Fatalf("%s tail=%d: serial swaps %d != parallel swaps %d", label, tailOrder, sw, pw)
		}
	}
}

// heapSwaps reads the swap counter of whichever heap the parallel body
// used for m servers.
func heapSwaps(w *Workspace, m int) int {
	if m >= 2 {
		return w.hs.swaps
	}
	return w.h2.swaps
}

func TestAssign2ParallelAdversarialTies(t *testing.T) {
	withProcs(t, 4, func() {
		// Long runs of equal keys in every field.
		for _, n := range []int{1, 2, 7, 64, 500, 3000} {
			for _, m := range []int{1, 2, 3, 8, 64} {
				runBoth(t, "ties", m, 100, tieGS(n, uint64(n*31+m)))
			}
		}
		// All threads identical: the sorts are pure stability tests and
		// every serve step ties on residuals.
		same := make([]Linearized, 1000)
		for i := range same {
			same[i] = Linearized{UHat: 3, CHat: 25, C: 100}
		}
		runBoth(t, "identical", 7, 100, same)
		// Saturation: total demand far beyond cluster capacity, so the
		// heap hits all-zero residuals early and the fast-forward covers
		// most of the order.
		sat := make([]Linearized, 2000)
		for i := range sat {
			sat[i] = Linearized{UHat: float64(i % 5), CHat: 90, C: 100}
		}
		runBoth(t, "saturated", 3, 100, sat)
		// Zero, negative-zero and negative ĉ sprinkled through a
		// saturating workload: the fast-forward must fall back to the
		// general path for them (a negative ĉ refills the server; ±0
		// must keep its sign bit in the output).
		odd := make([]Linearized, 1500)
		r := rng.New(99)
		for i := range odd {
			odd[i] = Linearized{UHat: 1, CHat: 80, C: 100}
			switch r.Intn(10) {
			case 0:
				odd[i].CHat = 0
			case 1:
				odd[i].CHat = math.Copysign(0, -1)
			case 2:
				odd[i].CHat = -5
			}
		}
		runBoth(t, "odd-chat", 4, 100, odd)
	})
}

// TestAssign2ParallelShardedHeapPath forces server counts past the
// sharded-heap threshold so the full-size layout (topLevels = 6) serves
// real traffic, not just the shrunken test layout.
func TestAssign2ParallelShardedHeapPath(t *testing.T) {
	withProcs(t, 4, func() {
		for _, m := range []int{shardedHeapMinM, shardedHeapMinM + 1, 3000} {
			gs := tieGS(4*m, uint64(m))
			runBoth(t, "big-m", m, 50, gs)
		}
	})
}

// TestAssign2ThresholdGate checks the production gate: below the
// threshold Assign2Linearized runs the serial body, at or above it the
// parallel body, and both give the same bytes.
func TestAssign2ThresholdGate(t *testing.T) {
	withProcs(t, 4, func() {
		gs := tieGS(4000, 7)
		in := &Instance{M: 8, C: 100, Threads: make([]utility.Func, len(gs))}
		for i := range in.Threads {
			in.Threads[i] = utility.Linear{Slope: 1, C: 100}
		}
		defer SetParallelThreshold(0)

		SetParallelThreshold(math.MaxInt)
		serial := Assign2Linearized(in, gs)
		SetParallelThreshold(1)
		par := Assign2Linearized(in, gs)
		assertSameAssignment(t, "gate", par, serial)

		SetParallelThreshold(0)
		if runtime.GOMAXPROCS(0) < 2 {
			t.Fatalf("withProcs did not raise GOMAXPROCS")
		}
		if got := ParallelThreshold(); got != DefaultParallelThreshold {
			t.Fatalf("default threshold = %d, want %d", got, DefaultParallelThreshold)
		}
	})
}

// TestAssign2ParallelConcurrentSolves runs forced-parallel solves from
// several goroutines at once — under -race this asserts the telemetry
// satellite: no shared counters inside the parallel loops.
func TestAssign2ParallelConcurrentSolves(t *testing.T) {
	withProcs(t, 4, func() {
		gs := tieGS(5000, 13)
		in := &Instance{M: 16, C: 100, Threads: make([]utility.Func, len(gs))}
		for i := range in.Threads {
			in.Threads[i] = utility.Linear{Slope: 1, C: 100}
		}
		want := Assign2Linearized(in, gs)
		done := make(chan Assignment, 8)
		for g := 0; g < 8; g++ {
			go func() { done <- Assign2LinearizedParallel(in, gs) }()
		}
		for g := 0; g < 8; g++ {
			assertSameAssignment(t, "concurrent", <-done, want)
		}
	})
}

func TestSortChunksFor(t *testing.T) {
	// Small inputs stay serial unless forced; large inputs split up to
	// the worker count rounded to a power of two.
	if got := sortChunksFor(1000, 8, false); got != 1 {
		t.Fatalf("small input: %d chunks, want 1", got)
	}
	if got := sortChunksFor(1<<20, 8, false); got != 8 {
		t.Fatalf("large input: %d chunks, want 8", got)
	}
	if got := sortChunksFor(1<<20, 6, false); got != 8 {
		t.Fatalf("odd workers: %d chunks, want 8", got)
	}
	if got := sortChunksFor(100, 1, true); got != 4 {
		t.Fatalf("forced: %d chunks, want 4", got)
	}
	if got := sortChunksFor(1<<20, 2, false); got != 2 {
		t.Fatalf("two workers: %d chunks, want 2", got)
	}
}
