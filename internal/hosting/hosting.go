// Package hosting is the web-hosting-center substrate behind the paper's
// second motivating application (§I): service threads run on a fleet of
// identical hosts and compete for a per-host resource (CPU shares,
// memory, ...). The host operator maximizes revenue, so each service's
// utility is its revenue rate as a concave function of the resource it
// receives (cf. Chase et al., cited by the paper).
//
// The package models services with concave served-rate curves, converts
// a deployment into an AA instance, and provides a slotted queueing
// simulator with Poisson arrivals that measures the revenue an
// assignment actually earns — validating the utility model end to end
// and quantifying AA's advantage over round-robin/equal-share operating
// practice.
package hosting

import (
	"fmt"
	"math"

	"aa/internal/core"
	"aa/internal/rng"
	"aa/internal/utility"
)

// Service is one hosted web service.
type Service struct {
	Name    string
	Demand  float64 // offered load, requests/sec
	Revenue float64 // revenue per served request
	Curve   Curve   // served-rate curve
}

// Curve maps a resource allocation to a service's sustainable service
// rate (requests/sec), independent of demand. Implementations must be
// nonnegative, nondecreasing and concave in the allocation.
type Curve interface {
	// Rate returns the sustainable service rate at allocation x.
	Rate(x float64) float64
	// Name identifies the curve family in reports.
	Name() string
}

// LinearCurve models a CPU-bound service: rate = PerUnit·x (each unit of
// resource serves PerUnit requests/sec).
type LinearCurve struct {
	PerUnit float64
}

// Rate implements Curve.
func (c LinearCurve) Rate(x float64) float64 {
	if x < 0 {
		return 0
	}
	return c.PerUnit * x
}

// Name implements Curve.
func (c LinearCurve) Name() string { return "linear" }

// SaturatingCurve models a memory/cache-bound service: rate =
// Max·x/(x+K). Returns diminish as the hot data set fits.
type SaturatingCurve struct {
	Max float64 // asymptotic rate
	K   float64 // half-saturation allocation
}

// Rate implements Curve.
func (c SaturatingCurve) Rate(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return c.Max * x / (x + c.K)
}

// Name implements Curve.
func (c SaturatingCurve) Name() string { return "saturating" }

// Deployment is a fleet of hosts and the services to place on them.
type Deployment struct {
	Hosts    int     // number of identical hosts (AA servers)
	Capacity float64 // resource per host (AA's C)
	Services []Service
}

// Validate checks the deployment is well formed.
func (d *Deployment) Validate() error {
	if d.Hosts < 1 {
		return fmt.Errorf("hosting: %d hosts", d.Hosts)
	}
	if d.Capacity <= 0 {
		return fmt.Errorf("hosting: capacity %v", d.Capacity)
	}
	if len(d.Services) == 0 {
		return fmt.Errorf("hosting: no services")
	}
	for i, s := range d.Services {
		if s.Demand < 0 || s.Revenue < 0 || s.Curve == nil {
			return fmt.Errorf("hosting: service %d (%s) malformed", i, s.Name)
		}
	}
	return nil
}

// revenueUtility adapts a service to the AA utility interface: revenue
// rate = Revenue · min(Demand, Curve.Rate(x)). The min of a constant and
// a concave nondecreasing function is concave and nondecreasing.
type revenueUtility struct {
	svc Service
	c   float64
}

// Value returns the revenue rate at allocation x.
func (u revenueUtility) Value(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > u.c {
		x = u.c
	}
	rate := u.svc.Curve.Rate(x)
	if rate > u.svc.Demand {
		rate = u.svc.Demand
	}
	return u.svc.Revenue * rate
}

// Deriv returns the right derivative via a central difference — curves
// are cheap closed forms, and the solver only needs monotone marginals.
func (u revenueUtility) Deriv(x float64) float64 {
	if x >= u.c {
		return 0
	}
	const h = 1e-6
	lo := x - h
	if lo < 0 {
		lo = 0
	}
	hi := x + h
	if hi > u.c {
		hi = u.c
	}
	if hi == lo {
		return 0
	}
	return (u.Value(hi) - u.Value(lo)) / (hi - lo)
}

// Cap returns the host capacity.
func (u revenueUtility) Cap() float64 { return u.c }

// Instance converts the deployment into an AA instance whose total
// utility is the fleet-wide revenue rate.
func (d *Deployment) Instance() (*core.Instance, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	threads := make([]utility.Func, len(d.Services))
	for i, s := range d.Services {
		threads[i] = revenueUtility{svc: s, c: d.Capacity}
	}
	return &core.Instance{M: d.Hosts, C: d.Capacity, Threads: threads}, nil
}

// SimResult is the outcome of a queueing simulation.
type SimResult struct {
	Revenue   float64   // total revenue earned
	Served    []float64 // requests served per service
	Dropped   []float64 // requests dropped per service (queue overflow)
	Predicted float64   // utility-model prediction: Σ u_i(alloc_i) · seconds
	// MeanQueue is each service's time-averaged queue length; by
	// Little's law MeanQueue/throughput approximates the mean sojourn
	// time, so under-provisioned services show up here long before they
	// drop requests.
	MeanQueue []float64
}

// MeanLatency returns service i's mean request latency estimate in
// seconds (Little's law: average queue over throughput). Returns +Inf
// for a service that served nothing while queueing.
func (s SimResult) MeanLatency(i int, seconds int) float64 {
	if seconds <= 0 {
		return 0
	}
	throughput := s.Served[i] / float64(seconds)
	if throughput == 0 {
		if s.MeanQueue[i] > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return s.MeanQueue[i] / throughput
}

// Simulate runs a slotted (1-second) queueing simulation of the
// assignment for the given duration: Poisson arrivals per service, each
// service drains at its curve's rate for its allocation, and queues are
// bounded at maxQueue (excess arrivals are dropped). Returns the revenue
// actually earned, which should track the utility model's prediction for
// stationary loads.
func (d *Deployment) Simulate(a core.Assignment, seconds int, maxQueue float64, r *rng.Rand) (SimResult, error) {
	in, err := d.Instance()
	if err != nil {
		return SimResult{}, err
	}
	if err := a.Validate(in, 1e-6); err != nil {
		return SimResult{}, fmt.Errorf("hosting: %w", err)
	}
	n := len(d.Services)
	res := SimResult{
		Served:    make([]float64, n),
		Dropped:   make([]float64, n),
		MeanQueue: make([]float64, n),
	}
	queues := make([]float64, n)
	for t := 0; t < seconds; t++ {
		for i, s := range d.Services {
			arrivals := float64(r.Poisson(s.Demand))
			queues[i] += arrivals
			if queues[i] > maxQueue {
				res.Dropped[i] += queues[i] - maxQueue
				queues[i] = maxQueue
			}
			capacity := s.Curve.Rate(a.Alloc[i])
			served := queues[i]
			if served > capacity {
				served = capacity
			}
			queues[i] -= served
			res.Served[i] += served
			res.Revenue += served * s.Revenue
			res.MeanQueue[i] += queues[i]
		}
	}
	for i := range res.MeanQueue {
		res.MeanQueue[i] /= float64(seconds)
	}
	for i, f := range in.Threads {
		res.Predicted += f.Value(a.Alloc[i]) * float64(seconds)
	}
	return res, nil
}
