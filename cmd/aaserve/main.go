// Command aaserve runs the AA solver as a long-lived HTTP service: the
// engine pipeline (pooled workspaces, telemetry, invariant checks,
// cancellation and queue backpressure) behind two JSON endpoints.
//
// Usage:
//
//	aaserve [-addr localhost:8080] [-backend a2] [-workers 0] [-queue 0]
//	        [-deadline 0] [-history-interval 10s] [-metrics-addr host:port]
//	        [-trace-out file.jsonl] [-profile-dir dir] [-check]
//	        [-cache memory] [-cache-size 1024] [-cache-ttl 0] [-cache-warm-k 8]
//	        [-max-batch-bytes 1073741824] [-stream-batch] [-parallel-threshold 0]
//	        [-drain-grace 0]
//
// Endpoints:
//
//	POST /solve           one instance (internal/instio JSON) → assignment
//	POST /solve/batch     JSON array of instances → array of assignments
//	GET  /backends        the solver registry: one line per backend
//	GET  /healthz         liveness probe (200 for the life of the process)
//	GET  /readyz          readiness probe (503 from SIGTERM-drain start)
//	GET  /metrics         Prometheus text exposition (plus /vars,
//	                      /debug/vars and /debug/pprof/), the same handler
//	                      the -metrics-addr flag serves elsewhere
//	GET  /metrics/history JSON ring of periodic metric snapshots
//	                      (-history-interval apart; ?last=N limits)
//
// Every request is assigned a request ID (the X-Request-ID header is
// honored when the caller sends one, minted otherwise and always
// echoed back) and logged as one structured JSON line on stderr. With
// tracing on (-trace-out), an incoming W3C traceparent header parents
// the server-side http.request span — and everything under it: the
// engine.solve root, the core solver stages, checking — to the
// caller's span, and the response traceparent header carries the
// server span back.
//
// Per-request query parameters on /solve and /solve/batch:
//
//	backend   registry name or alias (default: the -backend flag)
//	seed      uint64 seed for the randomized heuristics (default 1)
//	deadline  per-request timeout like "500ms" (default: -deadline)
//	check     "1" verifies the response through the check middleware
//	maxnodes  node budget for backend=exact
//	cache     "bypass" skips the solve-result cache for this request
//	          (lookup and store; only meaningful with -cache enabled)
//
// Responses: 200 with an assignment JSON (server, alloc, utility,
// superOptimalBound) on success; 400 for malformed instances or unknown
// backends; 413 (typed JSON: error, code, limitBytes) when a batch body
// exceeds -max-batch-bytes; 422 when a requested check fails; 429 when
// the solve queue is full (retry later); 504 when the deadline expires
// mid-solve.
//
// By default /solve/batch streams: instances are decoded off the wire
// one at a time, solved through the worker pool with a bounded
// in-flight window, and each assignment is written as soon as it is
// ready, so server memory is bounded by the window rather than the
// batch. The bytes produced are identical to the buffered path
// (-stream-batch=false); a solve failure after the response has begun
// aborts the connection mid-array rather than fabricating a status.
//
// On SIGINT/SIGTERM, /readyz flips to 503 immediately, the listener
// stays open for -drain-grace (so load balancers and the aarelay prober
// observe the flip and stop routing here), then in-flight requests
// drain (up to 10s) before the process exits; /healthz stays 200
// throughout — a draining node is healthy, just not ready. The startup
// line "aaserve: listening on
// http://ADDR" is printed to stderr once the socket is bound; with
// -addr ending in :0 the kernel picks the port and scripts parse that
// line (scripts/serve_smoke.sh does exactly this).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"time"

	"aa/internal/check"
	"aa/internal/cliutil"
	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/instio"
	"aa/internal/serveutil"
	"aa/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "aaserve: %v\n", err)
		os.Exit(1)
	}
}

// server holds the engine and per-request defaults behind the handlers.
type server struct {
	eng      *engine.Engine
	backend  string        // default backend for requests that name none
	deadline time.Duration // default per-request deadline, 0 = none
	log      *slog.Logger  // JSON access/lifecycle logs; nil = discard
	health   *serveutil.Health

	maxBatchBytes int64 // /solve/batch body cap; <= 0 = unlimited
	streamBatch   bool  // stream /solve/batch instead of buffering it
	batchInFlight int   // streaming window; <= 0 lets the engine pick
}

// run is the testable body of the command. ready, when non-nil,
// receives the bound address once the listener is up (tests use it
// instead of parsing stderr).
func run(args []string, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("aaserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8080", "listen address (use :0 for an ephemeral port)")
		backend  = fs.String("backend", "a2", "default solver backend (see /backends)")
		workers  = fs.Int("workers", 0, "solver pool workers (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 0, "solve queue depth before 429s (0 = 2x workers)")
		deadline = fs.Duration("deadline", 0, "default per-request deadline (0 = none)")
		history  = fs.Duration("history-interval", 10*time.Second,
			"metrics-history snapshot interval for /metrics/history (0 disables)")
		maxBatchBytes = fs.Int64("max-batch-bytes", 1<<30,
			"reject /solve/batch bodies larger than this with 413 (0 = unlimited)")
		streamBatch = fs.Bool("stream-batch", true,
			"stream /solve/batch: decode, solve and respond incrementally with bounded memory (false = buffer the whole batch)")
		parallelThreshold = fs.Int("parallel-threshold", 0,
			"instance size at which the core solver goes multi-core (0 = GOMAXPROCS-aware default)")
		drainGrace = fs.Duration("drain-grace", 0,
			"on SIGTERM, keep the listener open this long with /readyz already 503 so load balancers eject the node before in-flight draining begins (0 = drain immediately)")
	)
	var common cliutil.Common
	common.AddFlags(fs)
	var cacheFlags cliutil.CacheFlags
	cacheFlags.AddFlags(fs)
	if err := cliutil.Parse(fs, args, stderr); err != nil {
		if errors.Is(err, cliutil.ErrHelp) {
			return nil
		}
		return err
	}
	shutdown, err := common.Start("aaserve", stderr)
	if err != nil {
		return err
	}
	defer shutdown()
	// A serving process always meters itself: the /metrics endpoint is
	// part of the API surface, not an opt-in debug flag. Same for the
	// metrics history behind /metrics/history.
	telemetry.Enable()
	if *history > 0 {
		telemetry.Default.StartHistory(telemetry.HistoryOptions{Interval: *history})
	}

	if _, ok := engine.Lookup(*backend); !ok {
		return fmt.Errorf("unknown default backend %q", *backend)
	}
	if *parallelThreshold != 0 {
		core.SetParallelThreshold(*parallelThreshold)
	}
	solveCache, err := cacheFlags.Build()
	if err != nil {
		return err
	}
	eng := engine.New(engine.Options{
		Backend:    *backend,
		Workers:    *workers,
		QueueDepth: *queue,
		Check:      common.Check,
		Cache:      solveCache,
		WarmK:      cacheFlags.WarmK,
	})
	defer eng.Close()
	log := slog.New(slog.NewJSONHandler(stderr, nil))
	wk := *workers
	if wk <= 0 {
		wk = runtime.GOMAXPROCS(0)
	}
	srv := &server{
		eng: eng, backend: *backend, deadline: *deadline, log: log,
		health:        &serveutil.Health{},
		maxBatchBytes: *maxBatchBytes,
		streamBatch:   *streamBatch,
		batchInFlight: 2*wk + 2,
	}

	return serveutil.ListenAndServe(serveutil.ServeConfig{
		Name:       "aaserve",
		Addr:       *addr,
		Handler:    srv.mux(),
		Stderr:     stderr,
		Ready:      ready,
		Health:     srv.health,
		DrainGrace: *drainGrace,
	})
}

// mux wires the handlers behind the observability middleware (request
// IDs, traceparent propagation, http.request spans, JSON access logs);
// split out so tests can drive the server through httptest without a
// listener or signals.
func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/solve/batch", s.handleBatch)
	mux.HandleFunc("/backends", handleBackends)
	health := s.health
	if health == nil {
		health = &serveutil.Health{}
	}
	mux.HandleFunc("/healthz", health.LivenessHandler())
	mux.HandleFunc("/readyz", health.ReadinessHandler())
	// The telemetry handler owns /metrics, /vars, /debug/* and the
	// index; mounting it at / keeps this binary's exposition identical
	// to every other binary's -metrics-addr endpoint.
	mux.Handle("/", telemetry.Handler(telemetry.Default))
	log := s.log
	if log == nil {
		log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	return serveutil.WithObservability(log, mux)
}

// reqParams decodes the shared query parameters into an engine request.
func (s *server) reqParams(r *http.Request, req *engine.Request) (time.Duration, error) {
	q := r.URL.Query()
	req.Backend = s.backend
	if b := q.Get("backend"); b != "" {
		req.Backend = b
	}
	req.Seed = 1
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad seed %q", v)
		}
		req.Seed = seed
	}
	if v := q.Get("maxnodes"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("bad maxnodes %q", v)
		}
		req.MaxNodes = n
	}
	req.Check = q.Get("check") == "1"
	req.NoCache = q.Get("cache") == "bypass"
	req.WantUtility = true
	deadline := s.deadline
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return 0, fmt.Errorf("bad deadline %q", v)
		}
		deadline = d
	}
	return deadline, nil
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an instance (see internal/instio for the JSON format)", http.StatusMethodNotAllowed)
		return
	}
	var req engine.Request
	deadline, err := s.reqParams(r, &req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	in, err := instio.Decode(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req.Instance = in
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	resp, err := s.eng.Submit(ctx, &req)
	if err != nil {
		writeSolveError(w, err)
		return
	}
	writeAssignment(w, in, resp)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON array of instances", http.StatusMethodNotAllowed)
		return
	}
	var proto engine.Request
	deadline, err := s.reqParams(r, &proto)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.maxBatchBytes > 0 {
		if r.ContentLength > s.maxBatchBytes {
			writeBatchTooLarge(w, r.ContentLength, s.maxBatchBytes)
			return
		}
		// Chunked bodies carry no Content-Length; the reader enforces the
		// same cap as the bytes actually arrive.
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBatchBytes)
	}
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	if s.streamBatch {
		s.handleBatchStream(ctx, w, r, &proto)
		return
	}
	s.handleBatchBuffered(ctx, w, r, &proto)
}

// handleBatchBuffered is the legacy batch path (-stream-batch=false): it
// materializes the whole request and the whole response in memory.
// Retained as the reference the streaming path is byte-compared against
// (scripts/batch_stream_smoke.sh) and as an escape hatch.
func (s *server) handleBatchBuffered(ctx context.Context, w http.ResponseWriter, r *http.Request, proto *engine.Request) {
	var raw []json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeBatchTooLarge(w, -1, tooBig.Limit)
			return
		}
		http.Error(w, fmt.Sprintf("batch body: %v", err), http.StatusBadRequest)
		return
	}
	if len(raw) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	ins := make([]*core.Instance, len(raw))
	reqs := make([]*engine.Request, len(raw))
	for i, msg := range raw {
		in, err := instio.Decode(bytes.NewReader(msg))
		if err != nil {
			http.Error(w, fmt.Sprintf("instance %d: %v", i, err), http.StatusBadRequest)
			return
		}
		r := *proto
		r.Instance = in
		ins[i], reqs[i] = in, &r
	}
	resps, err := s.eng.SolveBatch(ctx, reqs)
	if err != nil {
		writeSolveError(w, err)
		return
	}
	out := make([]instio.AssignmentJSON, len(resps))
	for i, resp := range resps {
		out[i] = assignmentJSON(ins[i], resp)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// batchBodyError marks a request-side decode failure inside the
// streaming batch pipeline so the handler maps it to 400 (the client
// sent a bad element) rather than 500.
type batchBodyError struct{ err error }

func (e *batchBodyError) Error() string { return e.err.Error() }
func (e *batchBodyError) Unwrap() error { return e.err }

// handleBatchStream is the default /solve/batch path: it decodes
// instances off the request body one at a time, pipelines them through
// the engine with a bounded in-flight window, and writes each
// assignment as soon as it is solved. Memory stays proportional to the
// window (and the largest single instance), not to the batch, while the
// bytes on the wire are identical to handleBatchBuffered's encoder
// output: "[\n  ", elements rendered by MarshalIndent at one indent
// level, ",\n  " separators, "\n]\n".
func (s *server) handleBatchStream(ctx context.Context, w http.ResponseWriter, r *http.Request, proto *engine.Request) {
	// The pipeline reads the tail of the request body while writing the
	// head of the response; without this the HTTP/1 server closes the
	// body at the first write. Best-effort: HTTP/2 is always full
	// duplex, and test recorders have no body lifecycle to manage.
	_ = http.NewResponseController(w).EnableFullDuplex()
	dec := json.NewDecoder(r.Body)
	if tok, err := dec.Token(); err != nil || tok != json.Delim('[') {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeBatchTooLarge(w, -1, tooBig.Limit)
			return
		}
		if err == nil {
			err = fmt.Errorf("expected a JSON array, got %v", tok)
		}
		http.Error(w, fmt.Sprintf("batch body: %v", err), http.StatusBadRequest)
		return
	}
	win := s.batchInFlight
	if win <= 0 {
		win = 2*runtime.GOMAXPROCS(0) + 2
	}
	// The engine hands responses back in input order but without their
	// instances; insq carries each decoded instance from next to emit in
	// the same order. The decoder runs at most win+1 requests ahead of
	// the emitter (the stream window is the bound), so the extra slack
	// means sends below never block.
	insq := make(chan *core.Instance, win+4)
	idx := 0
	next := func() (*engine.Request, error) {
		if !dec.More() {
			if _, err := dec.Token(); err != nil { // the closing ']'
				return nil, &batchBodyError{fmt.Errorf("batch body: %w", err)}
			}
			return nil, io.EOF
		}
		in, err := instio.DecodeNext(dec)
		if err != nil {
			return nil, &batchBodyError{fmt.Errorf("instance %d: %w", idx, err)}
		}
		req := *proto
		req.Instance = in
		insq <- in
		idx++
		return &req, nil
	}
	started := false
	emit := func(resp *engine.Response) error {
		buf, err := json.MarshalIndent(assignmentJSON(<-insq, resp), "  ", "  ")
		if err != nil {
			return err
		}
		sep := ",\n  "
		if !started {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			sep = "[\n  "
			started = true
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		_, err = w.Write(buf)
		return err
	}
	_, err := s.eng.SolveBatchStream(ctx, next, emit, win)
	switch {
	case err != nil && !started:
		// Nothing is on the wire yet, so a real error response is still
		// possible.
		var tooBig *http.MaxBytesError
		var bad *batchBodyError
		switch {
		case errors.As(err, &tooBig):
			writeBatchTooLarge(w, -1, tooBig.Limit)
		case errors.As(err, &bad):
			http.Error(w, bad.Error(), http.StatusBadRequest)
		default:
			writeSolveError(w, err)
		}
	case err != nil:
		// The 200 header and part of the array are already written; the
		// only honest signal left is aborting the connection so the
		// client sees a truncated body, never a parseable success.
		panic(http.ErrAbortHandler)
	case !started:
		http.Error(w, "empty batch", http.StatusBadRequest)
	default:
		_, _ = io.WriteString(w, "\n]\n")
	}
}

// batchErrorJSON is the typed body of request-level batch rejections
// (today only 413): a machine-readable code plus the configured limit,
// so clients can split the batch and retry instead of parsing prose.
type batchErrorJSON struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	Limit int64  `json:"limitBytes"`
	Size  int64  `json:"sizeBytes,omitempty"`
}

func writeBatchTooLarge(w http.ResponseWriter, size, limit int64) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusRequestEntityTooLarge)
	body := batchErrorJSON{
		Error: "batch body exceeds the server's -max-batch-bytes limit",
		Code:  "batch_too_large",
		Limit: limit,
	}
	if size > 0 {
		body.Size = size
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func handleBackends(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range engine.Backends() {
		bk, _ := engine.Lookup(name)
		fmt.Fprintf(w, "%-10s %s", bk.Name, bk.Doc)
		if len(bk.Aliases) > 0 {
			fmt.Fprintf(w, " (aliases: %v)", bk.Aliases)
		}
		fmt.Fprintln(w)
	}
}

// writeSolveError maps engine pipeline errors onto HTTP status codes.
func writeSolveError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, engine.ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client went away; nginx's conventional code
	case errors.Is(err, engine.ErrUnknownBackend), errors.Is(err, engine.ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, check.ErrInfeasible), errors.Is(err, check.ErrRatio):
		status = http.StatusUnprocessableEntity
	}
	http.Error(w, err.Error(), status)
}

// assignmentJSON builds the wire response from an engine response
// without re-solving: utility comes from the pipeline (WantUtility) and
// the bound is recomputed only for backends that do not produce one.
func assignmentJSON(in *core.Instance, resp *engine.Response) instio.AssignmentJSON {
	bound := resp.Bound
	if math.IsNaN(bound) {
		bound = core.SuperOptimal(in).Total
	}
	return instio.AssignmentJSON{
		Server:  resp.Assignment.Server,
		Alloc:   resp.Assignment.Alloc,
		Utility: resp.Utility,
		Bound:   bound,
	}
}

func writeAssignment(w http.ResponseWriter, in *core.Instance, resp *engine.Response) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(assignmentJSON(in, resp))
}
