//go:build race

package online

// raceEnabled reports whether the race detector is compiled in; the
// allocation-pinning tests skip under it because instrumentation
// allocates.
const raceEnabled = true
