package replay

import (
	"bytes"
	"strings"
	"testing"
)

// The determinism contract (mgpusim idiom): running the same scenario
// with the same seed twice must produce bit-identical canonical JSON
// reports. This is the Go-test half of the CI replay gate.
func TestRunDeterministic(t *testing.T) {
	for _, name := range Builtins() {
		t.Run(name, func(t *testing.T) {
			sc := shrink(t, name)
			var a, b bytes.Buffer
			for i, buf := range []*bytes.Buffer{&a, &b} {
				rep, err := Run(sc, RunOptions{Seed: 42})
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				if err := rep.Canonical().WriteJSON(buf); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("same-seed reports differ:\n--- first ---\n%s\n--- second ---\n%s",
					firstDiff(a.String(), b.String()), "")
			}
		})
	}
}

// shrink returns a builtin scenario with the horizon cut down so tests
// stay fast while still exercising every generator of the family.
func shrink(t *testing.T, name string) *Scenario {
	t.Helper()
	sc, ok := Builtin(name)
	if !ok {
		t.Fatalf("no builtin %q", name)
	}
	sc.Horizon /= 8
	if sc.Arrivals.Diurnal != nil {
		sc.Arrivals.Diurnal.Period /= 8
	}
	for i := range sc.Arrivals.Bursts {
		sc.Arrivals.Bursts[i].Start /= 8
		sc.Arrivals.Bursts[i].Duration /= 8
	}
	if sc.Failures != nil {
		sc.Failures.MTBF /= 8
		sc.Failures.MTTR /= 8
	}
	// A bigfleet's 2×10⁵-thread batch would dominate every test run;
	// 500 threads still exercises the batch machinery end to end (the
	// full-size fleet runs under TestBigfleetFullSize, env-guarded).
	if sc.InitialThreads > 500 {
		sc.InitialThreads = 500
	}
	sc.GridPoints = 24
	if err := sc.Validate(); err != nil {
		t.Fatalf("shrunken %s invalid: %v", name, err)
	}
	return sc
}

// firstDiff points at the first line where two strings diverge.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + "\nvs " + bl[i]
		}
	}
	return "length mismatch"
}

func TestRunReportSanity(t *testing.T) {
	for _, name := range Builtins() {
		t.Run(name, func(t *testing.T) {
			sc := shrink(t, name)
			rep, err := Run(sc, RunOptions{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			u := rep.Utility
			if !(u.Ratio > 0 && u.Ratio <= 1+1e-9) {
				t.Errorf("utility/bound ratio %v outside (0, 1]", u.Ratio)
			}
			if u.BoundIntegral < u.Integral {
				t.Errorf("bound integral %v below achieved %v", u.BoundIntegral, u.Integral)
			}
			if rep.Solves.Resolves == 0 {
				t.Error("no re-solves recorded")
			}
			if rep.Solves.VirtualP99 < rep.Solves.VirtualP50 {
				t.Errorf("p99 %v < p50 %v", rep.Solves.VirtualP99, rep.Solves.VirtualP50)
			}
			if rep.Solves.VirtualMax < rep.Solves.VirtualP99 {
				t.Errorf("max %v < p99 %v", rep.Solves.VirtualMax, rep.Solves.VirtualP99)
			}
			if got, want := len(rep.Trajectory), sc.GridPoints+1; got != want {
				t.Errorf("trajectory has %d samples, want %d", got, want)
			}
			for i, s := range rep.Trajectory {
				if s.Bound+1e-9 < s.Utility {
					t.Errorf("sample %d: bound %v < utility %v", i, s.Bound, s.Utility)
				}
				if s.UpServers < 0 || s.UpServers > sc.Servers {
					t.Errorf("sample %d: upServers %d out of range", i, s.UpServers)
				}
				if i > 0 && s.T <= rep.Trajectory[i-1].T {
					t.Errorf("sample %d: time not increasing", i)
				}
			}
			if rep.Wall == nil || rep.Wall.TotalSec <= 0 {
				t.Errorf("wall stats missing: %+v", rep.Wall)
			}
			if rep.Canonical().Wall != nil {
				t.Error("Canonical kept wall stats")
			}
			if !strings.Contains(rep.Summary(), "scenario="+name) {
				t.Errorf("summary %q missing scenario name", rep.Summary())
			}
		})
	}
}

func TestRunPolicies(t *testing.T) {
	// Each policy string must run end to end on the same shrunken trace.
	for _, policy := range []string{"full-resolve", "incremental", "hybrid"} {
		t.Run(policy, func(t *testing.T) {
			sc := shrink(t, "flash")
			sc.Policy = policy
			rep, err := Run(sc, RunOptions{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Scenario.Policy != policy {
				t.Errorf("report policy %q", rep.Scenario.Policy)
			}
			if rep.Utility.Ratio <= 0 {
				t.Errorf("ratio %v", rep.Utility.Ratio)
			}
		})
	}
}

func TestRunSeedChangesReport(t *testing.T) {
	sc := shrink(t, "diurnal")
	var a, b bytes.Buffer
	r1, err := Run(sc, RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc, RunOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Canonical().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r2.Canonical().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestWriteCSVShape(t *testing.T) {
	sc := shrink(t, "failures")
	rep, err := Run(sc, RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "t,threads,up_servers,queue_depth,resolves,utility,bound" {
		t.Fatalf("bad header %q", lines[0])
	}
	if got, want := len(lines)-1, len(rep.Trajectory); got != want {
		t.Fatalf("%d data rows, want %d", got, want)
	}
	for i, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 6 {
			t.Fatalf("row %d has %d commas: %q", i, got, line)
		}
	}
}

func TestRunHTTPRequiresFullResolve(t *testing.T) {
	sc := shrink(t, "diurnal")
	sc.Policy = "incremental"
	if _, err := Run(sc, RunOptions{Seed: 1, Addr: "localhost:0"}); err == nil {
		t.Fatal("incremental policy against -addr accepted")
	}
}
