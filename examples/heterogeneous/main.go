// Heterogeneous and multi-resource example — the paper's §VIII
// future-work extensions in action.
//
// Part 1: a cluster with mixed machine sizes (one big box, several
// small ones). The generalized Algorithm 2 places threads against
// per-server capacities; round robin ignores the skew and pays for it.
//
// Part 2: two resource types (CPU and memory) with Leontief threads.
// The scarcity-priced allocator pairs complementary shapes (CPU-heavy
// with memory-heavy) on the same machine, which a shape-blind round
// robin cannot do.
package main

import (
	"fmt"

	"aa/internal/hetero"
	"aa/internal/multires"
	"aa/internal/rng"
	"aa/internal/utility"
)

func main() {
	heterogeneousPart()
	fmt.Println()
	multiResourcePart()
}

func heterogeneousPart() {
	fmt.Println("== heterogeneous capacities ==")
	// One 128-unit box and three 32-unit boxes.
	caps := []float64{128, 32, 32, 32}
	r := rng.New(41)
	var threads []utility.Func
	for i := 0; i < 14; i++ {
		switch i % 3 {
		case 0: // cache-hungry: keeps improving up to large allocations
			threads = append(threads, utility.Log{Scale: r.Uniform(2, 5), Shift: 20, C: 128})
		case 1: // saturates quickly: perfect for a small box
			threads = append(threads, utility.SatExp{Scale: r.Uniform(1, 4), K: 8, C: 128})
		default:
			threads = append(threads, utility.Power{Scale: r.Uniform(0.5, 1.5), Beta: 0.5, C: 128})
		}
	}
	in := &hetero.Instance{Caps: caps, Threads: threads}

	sol := hetero.Assign(in)
	rr := hetero.AssignRoundRobin(in)
	prop := hetero.AssignProportional(in)
	so := hetero.SuperOptimal(in)

	fmt.Printf("machines: %v\n", caps)
	fmt.Printf("%-28s %8s\n", "policy", "utility")
	fmt.Printf("%-28s %8.2f\n", "generalized Algorithm 2", sol.Utility(in))
	fmt.Printf("%-28s %8.2f\n", "proportional + opt alloc", prop.Utility(in))
	fmt.Printf("%-28s %8.2f\n", "round robin + equal", rr.Utility(in))
	fmt.Printf("%-28s %8.2f\n", "super-optimal bound", so.Total)
	loads := make([]float64, len(caps))
	for i, s := range sol.Server {
		loads[s] += sol.Alloc[i]
	}
	fmt.Printf("AA load per machine: %.1f\n", loads)
}

func multiResourcePart() {
	fmt.Println("== multiple resource types (CPU, memory) ==")
	// Two machines, each 64 vCPU and 256 GiB.
	caps := []float64{64, 256}
	mk := func(name string, w []float64, g utility.Func) multires.Thread {
		_ = name
		return multires.Thread{G: g, W: w}
	}
	in := &multires.Instance{
		M:   2,
		Cap: caps,
		Threads: []multires.Thread{
			// CPU-heavy analytics: 2 vCPU + 1 GiB per bundle.
			mk("analytics-1", []float64{2, 1}, utility.Log{Scale: 4, Shift: 5, C: 1000}),
			mk("analytics-2", []float64{2, 1}, utility.Log{Scale: 4, Shift: 5, C: 1000}),
			// Memory-heavy caches: 0.25 vCPU + 16 GiB per bundle.
			mk("redis-1", []float64{0.25, 16}, utility.SatExp{Scale: 6, K: 6, C: 1000}),
			mk("redis-2", []float64{0.25, 16}, utility.SatExp{Scale: 6, K: 6, C: 1000}),
			// Balanced web tier.
			mk("web-1", []float64{1, 4}, utility.Power{Scale: 1, Beta: 0.6, C: 1000}),
			mk("web-2", []float64{1, 4}, utility.Power{Scale: 1, Beta: 0.6, C: 1000}),
		},
	}
	names := []string{"analytics-1", "analytics-2", "redis-1", "redis-2", "web-1", "web-2"}

	sol := multires.Assign(in, 0.25)
	rr := multires.AssignRoundRobin(in, 0.25)

	fmt.Printf("machine capacity: %v (vCPU, GiB)\n", caps)
	fmt.Printf("%-12s %8s %9s\n", "thread", "machine", "bundles")
	for i, name := range names {
		fmt.Printf("%-12s %8d %9.2f\n", name, sol.Server[i], sol.Bundles[i])
	}
	fmt.Printf("\nmarginal-gain + scarcity-priced greedy: %.2f\n", sol.Utility(in))
	fmt.Printf("round robin + equal shares:             %.2f\n", rr.Utility(in))
	fmt.Printf("uplift:                                 %.1f%%\n",
		100*(sol.Utility(in)/rr.Utility(in)-1))
}
