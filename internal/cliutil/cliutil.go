// Package cliutil collects the command-line plumbing every AA binary
// shares, so the observability and verification surface is uniform
// across aasolve, aagen, aabench, aaonline, aacache and aaserve:
//
//   - -metrics-addr serves live /metrics, /vars and /debug/pprof,
//   - -trace-out appends telemetry span/event JSONL to a file,
//   - -check (or AA_CHECK=1) turns on process-wide invariant checking
//     (internal/check), which the engine pipeline enforces on every
//     solve, with a per-binary check summary printed at exit.
//
// Typical use:
//
//	fs := flag.NewFlagSet("aathing", flag.ContinueOnError)
//	var common cliutil.Common
//	common.AddFlags(fs)
//	if err := cliutil.Parse(fs, args, stderr); err != nil {
//		return err // nil for -h, after usage was printed
//	}
//	shutdown, err := common.Start("aathing", stderr)
//	if err != nil {
//		return err
//	}
//	defer shutdown()
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"aa/internal/check"
	"aa/internal/telemetry"
)

// Common is the flag trio shared by every AA binary.
type Common struct {
	MetricsAddr string
	TraceOut    string
	Check       bool
}

// AddFlags registers the shared flags on fs with the shared wording.
func (c *Common) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "",
		"serve /metrics, /vars and /debug/pprof on this address (e.g. localhost:0)")
	fs.StringVar(&c.TraceOut, "trace-out", "",
		"write telemetry span/event JSONL to this file")
	fs.BoolVar(&c.Check, "check", os.Getenv("AA_CHECK") == "1",
		"verify solver outputs through internal/check (also AA_CHECK=1)")
}

// ErrHelp is returned by Parse after -h/-help printed the flag
// documentation; commands should treat it as a successful exit:
//
//	if err := cliutil.Parse(fs, args, stderr); err != nil {
//		if errors.Is(err, cliutil.ErrHelp) {
//			return nil
//		}
//		return err
//	}
var ErrHelp = flag.ErrHelp

// Parse parses args with usage output going to stderr, so -h documents
// the shared flags instead of dying with an opaque "flag: help
// requested". Parse errors are printed by the flag package (with
// usage) and returned.
func Parse(fs *flag.FlagSet, args []string, stderr io.Writer) error {
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return ErrHelp
		}
		return err
	}
	return nil
}

// Start turns the parsed common flags on: the metrics endpoint and
// trace sink via telemetry.Setup, and process-wide invariant checking
// when Check is set. The returned shutdown function prints the check
// summary (when checking) and flushes telemetry; defer it.
func (c *Common) Start(name string, stderr io.Writer) (func(), error) {
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format, a...) }
	shutdownTelemetry, err := telemetry.Setup(c.MetricsAddr, c.TraceOut, logf)
	if err != nil {
		return nil, err
	}
	if c.Check {
		check.Enable()
	}
	return func() {
		if c.Check {
			check.Disable()
			checks, violations := check.Totals()
			fmt.Fprintf(stderr, "%s: check: %d checks, %d violations\n", name, checks, violations)
		}
		if err := shutdownTelemetry(); err != nil {
			logf("%s: telemetry shutdown: %v\n", name, err)
		}
	}, nil
}
