package engine

// Regression tests for two engine lifecycle bugs:
//
//   - Response.prepare never reset Assignment/Alt, so a Response reused
//     via SolveInto leaked the previous solve's Alt after a request
//     without AltAssign1, and kept a stale assignment tail when a
//     backend wrote fewer threads than the previous solve.
//
//   - Engine.Close raced with the sync.Once lazy pool start: Submit or
//     SolveBatch after Close silently started a fresh pool that nothing
//     would ever drain (goroutine + queue leak) instead of failing.
//
// Both tests fail against the pre-fix engine.

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestResponseReuseClearsAlt(t *testing.T) {
	eng := New(Options{})
	ctx := context.Background()
	in := corpus(t, 1, 30)[0]

	var resp Response
	if err := eng.SolveInto(ctx, &Request{Instance: in, AltAssign1: true}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Alt.Server) != in.N() {
		t.Fatalf("alt solve produced %d alt threads, want %d", len(resp.Alt.Server), in.N())
	}
	// Reuse the same Response without AltAssign1: Alt must come back
	// empty, not as the previous solve's leftover.
	if err := eng.SolveInto(ctx, &Request{Instance: in}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Alt.Server) != 0 || len(resp.Alt.Alloc) != 0 {
		t.Fatalf("reused response leaked a stale Alt: %d servers / %d allocs",
			len(resp.Alt.Server), len(resp.Alt.Alloc))
	}
}

func TestResponseReuseTruncatesStaleTail(t *testing.T) {
	eng := New(Options{})
	ctx := context.Background()
	big := corpus(t, 1, 40)[0]
	small := corpus(t, 1, 10)[0]

	var resp Response
	if err := eng.SolveInto(ctx, &Request{Instance: big}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := eng.SolveInto(ctx, &Request{Instance: small}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Assignment.Server) != small.N() || len(resp.Assignment.Alloc) != small.N() {
		t.Fatalf("reused response kept a stale tail: %d threads, want %d",
			len(resp.Assignment.Server), small.N())
	}
}

func TestClosedEngineRejectsConcurrentEntryPoints(t *testing.T) {
	ctx := context.Background()
	in := corpus(t, 1, 10)[0]

	t.Run("never-started pool", func(t *testing.T) {
		eng := New(Options{})
		eng.Close() // pool never started; Close must still latch
		if _, err := eng.Submit(ctx, &Request{Instance: in}); !errors.Is(err, ErrClosed) {
			t.Fatalf("Submit after Close: %v, want ErrClosed", err)
		}
		if _, err := eng.SolveBatch(ctx, []*Request{{Instance: in}}); !errors.Is(err, ErrClosed) {
			t.Fatalf("SolveBatch after Close: %v, want ErrClosed", err)
		}
		if p := eng.Pool(); p != nil {
			t.Fatal("Pool() restarted a pool on a closed engine")
		}
		// Synchronous solves keep working after Close.
		if _, err := eng.Solve(ctx, &Request{Instance: in}); err != nil {
			t.Fatalf("Solve after Close: %v", err)
		}
	})

	t.Run("started pool", func(t *testing.T) {
		eng := New(Options{Workers: 2})
		if _, err := eng.Submit(ctx, &Request{Instance: in}); err != nil {
			t.Fatal(err)
		}
		eng.Close()
		eng.Close() // idempotent
		if _, err := eng.Submit(ctx, &Request{Instance: in}); !errors.Is(err, ErrClosed) {
			t.Fatalf("Submit after Close: %v, want ErrClosed", err)
		}
		if _, err := eng.SolveBatch(ctx, []*Request{{Instance: in}}); !errors.Is(err, ErrClosed) {
			t.Fatalf("SolveBatch after Close: %v, want ErrClosed", err)
		}
	})

	t.Run("concurrent close and submit", func(t *testing.T) {
		// Race-detector fodder for the Close/lazy-start interleaving the
		// old sync.Once version got wrong.
		eng := New(Options{Workers: 2})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 50; i++ {
				_, err := eng.Submit(ctx, &Request{Instance: in})
				if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}()
		time.Sleep(time.Millisecond)
		eng.Close()
		<-done
	})
}

// testBatchBlock releases the batch-cancellation fixture; unlike
// testBlock it is owned by this file so TestSubmitBackpressure's
// close(testBlock) cannot interfere.
var testBatchBlock = make(chan struct{})

func init() {
	Register(Backend{
		Name: "test-batch-block", Doc: "test fixture: blocks until released or cancelled",
		Handle: func(ctx context.Context, req *Request, resp *Response) error {
			select {
			case <-testBatchBlock:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
}

func TestSolveBatchFirstErrorCancelsRest(t *testing.T) {
	// One worker, bad request first: its failure must cancel the batch
	// context, so the enqueue goroutine's remaining blocking Enqueue
	// calls fail fast instead of deadlocking on the full queue, and the
	// batch returns the first error.
	eng := New(Options{Workers: 1, QueueDepth: 1})
	defer eng.Close()
	in := corpus(t, 1, 10)[0]
	reqs := []*Request{
		{Instance: in, Backend: "no-such-backend"},
	}
	for i := 0; i < 8; i++ {
		reqs = append(reqs, &Request{Instance: in, Backend: "test-batch-block"})
	}
	done := make(chan struct{})
	var batchErr error
	go func() {
		defer close(done)
		_, batchErr = eng.SolveBatch(context.Background(), reqs)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SolveBatch deadlocked after first error")
	}
	if !errors.Is(batchErr, ErrUnknownBackend) {
		t.Fatalf("batch error %v, want ErrUnknownBackend", batchErr)
	}
}

func TestSolveBatchContextCancelMidBatch(t *testing.T) {
	eng := New(Options{Workers: 2, QueueDepth: 4})
	defer eng.Close()
	in := corpus(t, 1, 10)[0]
	reqs := make([]*Request, 6)
	for i := range reqs {
		reqs[i] = &Request{Instance: in, Backend: "test-batch-block"}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.SolveBatch(ctx, reqs)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let workers park on the fixture
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled SolveBatch never returned")
	}
	// No task may leak: every submitted task must resolve (the fixture
	// honors ctx), leaving the pool fully drained.
	pool := eng.Pool()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := pool.Snapshot()
		if st.Submitted == st.Completed+st.Cancelled+st.Failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool tasks leaked after batch cancel: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSolveBatchMixedResults(t *testing.T) {
	// Results come back in input order with exactly one slot per request
	// even when some fail — the accounting that would break if an index
	// ever reported twice.
	eng := New(Options{Workers: 4})
	defer eng.Close()
	ins := corpus(t, 3, 15)
	reqs := []*Request{
		{Instance: ins[0]},
		{Instance: ins[1], Backend: "assign1"},
		{Instance: ins[2], Backend: "greedy"},
	}
	out, err := eng.SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(out), len(reqs))
	}
	for i, resp := range out {
		if resp == nil {
			t.Fatalf("response %d missing", i)
		}
		if want := map[int]string{0: "assign2", 1: "assign1", 2: "greedy"}[i]; resp.Backend != want {
			t.Fatalf("response %d from backend %q, want %q", i, resp.Backend, want)
		}
	}
}
