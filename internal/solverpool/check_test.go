package solverpool

import (
	"context"
	"errors"
	"testing"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/utility"
)

func checkedInstance() *core.Instance {
	return &core.Instance{
		M: 2, C: 100,
		Threads: []utility.Func{
			utility.Log{Scale: 5, Shift: 10, C: 100},
			utility.Linear{Slope: 1, C: 30},
			utility.SatExp{Scale: 3, K: 20, C: 100},
		},
	}
}

func TestCheckedPoolVerifiesSolves(t *testing.T) {
	p := New(Options{Workers: 2, Check: true})
	defer p.Close()
	c0, v0 := check.Totals()
	a, err := p.Solve(context.Background(), checkedInstance())
	if err != nil {
		t.Fatalf("checked solve failed: %v", err)
	}
	if got := a.Utility(checkedInstance()); got <= 0 {
		t.Errorf("utility %v, want > 0", got)
	}
	c1, v1 := check.Totals()
	if c1 == c0 {
		t.Error("Options.Check did not run any checks")
	}
	if v1 != v0 {
		t.Errorf("clean solve grew aa_check_violations_total by %d", v1-v0)
	}
}

func TestProcessWideCheckCoversUncheckedPool(t *testing.T) {
	p := New(Options{Workers: 1})
	defer p.Close()
	check.Enable()
	defer check.Disable()
	c0, _ := check.Totals()
	if _, err := p.SolveBatch(context.Background(),
		[]*core.Instance{checkedInstance(), checkedInstance()}); err != nil {
		t.Fatalf("batch failed under check.Enable: %v", err)
	}
	if c1, _ := check.Totals(); c1 == c0 {
		t.Error("check.Enable did not reach a pool built without Options.Check")
	}
}

func TestErrInfeasibleReexport(t *testing.T) {
	if !errors.Is(ErrInfeasible, check.ErrInfeasible) {
		t.Error("solverpool.ErrInfeasible is not check.ErrInfeasible")
	}
}
