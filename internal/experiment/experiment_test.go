package experiment

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// shrink reduces a spec for fast unit testing: few trials, short sweep.
func shrink(s Spec, trials, points int) Spec {
	s.Trials = trials
	if len(s.Sweep) > points {
		// Keep the first and last points to cover both sweep extremes.
		kept := []SweepPoint{s.Sweep[0]}
		if points > 1 {
			kept = append(kept, s.Sweep[len(s.Sweep)-1])
		}
		s.Sweep = kept
	}
	return s
}

func TestRunValidation(t *testing.T) {
	spec := Fig1a(0)
	if _, err := Run(spec, 1, 1); err == nil {
		t.Error("zero trials accepted")
	}
	spec = Fig1a(5)
	spec.Sweep = nil
	if _, err := Run(spec, 1, 1); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	spec := shrink(Fig1a(8), 8, 2)
	seq, err := Run(spec, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(spec, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range seq.Points {
		for _, c := range Competitors {
			a := seq.Points[pi].Ratios[c]
			b := par.Points[pi].Ratios[c]
			if a.Mean != b.Mean || a.Stddev != b.Stddev {
				t.Errorf("point %d competitor %s: sequential %+v != parallel %+v", pi, c, a, b)
			}
		}
	}
}

// The batch engine's determinism guarantee: the rendered experiment
// output — every digit of every table — is identical whether the trials
// run on one worker or eight.
func TestRunOutputIdenticalSerialVsParallel(t *testing.T) {
	spec := shrink(Fig3a(12), 12, 2)
	serial, err := Run(spec, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, 99, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Render(parallel).String(), Render(serial).String(); got != want {
		t.Errorf("workers=8 table differs from workers=1:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if got, want := RenderRoM(parallel).String(), RenderRoM(serial).String(); got != want {
		t.Errorf("workers=8 RoM table differs from workers=1:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, shrink(Fig1a(8), 8, 2), 1, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextDeadlinePrompt(t *testing.T) {
	// A spec far too big to finish in a millisecond: the deadline must
	// surface promptly rather than after the full sweep.
	spec := Fig1a(2000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, spec, 1, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("RunContext took %v to notice the deadline", elapsed)
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	// Use the β=15 point: at β=1 both A2 and UU are optimal, so the ratio
	// is exactly 1 for every seed.
	spec := shrink(Fig2a(6), 6, 2)
	a, err := Run(spec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points[1].Ratios["UU"].Mean == b.Points[1].Ratios["UU"].Mean {
		t.Error("different seeds produced identical means (suspicious)")
	}
}

// The headline claims of §VII at reduced trial counts: Algorithm 2 is
// within a few percent of the super-optimal bound and never behind the
// heuristics.
func TestShapeAlgorithm2NearSuperOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	for _, spec := range []Spec{
		shrink(Fig1a(30), 30, 2),
		shrink(Fig1b(30), 30, 2),
		shrink(Fig2a(30), 30, 2),
	} {
		res, err := Run(spec, 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range res.Points {
			so := pt.Ratios["SO"].Mean
			if so < 0.97 || so > 1.0+1e-9 {
				t.Errorf("%s %s=%g: A2/SO = %v, want in [0.97, 1]",
					spec.ID, spec.ParamName, pt.Param, so)
			}
			for _, c := range []string{"UU", "UR", "RU", "RR"} {
				if r := pt.Ratios[c].Mean; r < 0.999 {
					t.Errorf("%s %s=%g: A2/%s = %v, expected >= 1",
						spec.ID, spec.ParamName, pt.Param, c, r)
				}
			}
		}
	}
}

// At β = 1, UU is optimal (§VII-A): the A2/UU ratio must be ~1, and the
// heuristic gap must widen with β.
func TestShapeUUOptimalAtBetaOneAndGapGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	spec := Fig2a(40)
	spec.Sweep = []SweepPoint{spec.Sweep[0], spec.Sweep[14]} // β = 1 and 15
	res, err := Run(spec, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	atBeta1 := res.Points[0].Ratios["UU"].Mean
	if atBeta1 > 1.02 {
		t.Errorf("A2/UU at beta=1 is %v, want ~1 (UU optimal)", atBeta1)
	}
	atBeta15 := res.Points[1].Ratios["UU"].Mean
	if atBeta15 < 1.5*atBeta1 {
		t.Errorf("heuristic gap should grow with beta: %v at 1 vs %v at 15", atBeta1, atBeta15)
	}
}

func TestRenderTable(t *testing.T) {
	spec := shrink(Fig3a(4), 4, 2)
	res, err := Run(spec, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl := Render(res)
	out := tbl.String()
	if !strings.Contains(out, "fig3a") {
		t.Errorf("missing figure id:\n%s", out)
	}
	for _, col := range []string{"A2/SO", "A2/UU", "A2/RR"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %s:\n%s", col, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := 3 + len(res.Points); len(lines) != want {
		t.Errorf("table has %d lines, want %d:\n%s", len(lines), want, out)
	}
}

func TestAllFiguresSpecsWellFormed(t *testing.T) {
	specs := AllFigures(10)
	if len(specs) != 7 {
		t.Fatalf("got %d figure specs, want 7", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Errorf("duplicate spec id %s", s.ID)
		}
		seen[s.ID] = true
		if len(s.Sweep) == 0 {
			t.Errorf("%s: empty sweep", s.ID)
		}
		if s.M != DefaultM || s.C != DefaultC {
			t.Errorf("%s: m=%d C=%v, want paper defaults", s.ID, s.M, s.C)
		}
		for _, sp := range s.Sweep {
			if sp.N <= 0 || sp.Dist == nil {
				t.Errorf("%s: malformed sweep point %+v", s.ID, sp)
			}
		}
	}
	// Beta sweeps cover 1..15 as in the paper.
	for _, id := range []string{"fig1a", "fig1b", "fig2a", "fig3a"} {
		s, ok := ByID(id, 10)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		if len(s.Sweep) != 15 || s.Sweep[0].Param != 1 || s.Sweep[14].Param != 15 {
			t.Errorf("%s: beta sweep malformed", id)
		}
		if s.Sweep[4].N != 5*DefaultM {
			t.Errorf("%s: n at beta=5 is %d, want %d", id, s.Sweep[4].N, 5*DefaultM)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig2b", 5); !ok {
		t.Error("fig2b not found")
	}
	if _, ok := ByID("nope", 5); ok {
		t.Error("unknown id found")
	}
}

func TestSafeRatio(t *testing.T) {
	if got := safeRatio(2, 4); got != 0.5 {
		t.Errorf("safeRatio(2,4) = %v", got)
	}
	if got := safeRatio(0, 0); got != 1 {
		t.Errorf("safeRatio(0,0) = %v, want 1", got)
	}
	if got := safeRatio(1, 0); got != 0 {
		t.Errorf("safeRatio(1,0) = %v, want 0", got)
	}
}

func TestExtensionSpecLocalSearch(t *testing.T) {
	spec := ExtDiscreteLS(6)
	spec.Sweep = spec.Sweep[:1] // β=2 point only for speed
	res, err := Run(spec, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	so := pt.Ratios["SO"].Mean
	ls := pt.Ratios["LS"].Mean
	gm := pt.Ratios["GM"].Mean
	if ls < so-1e-9 {
		t.Errorf("LS/SO = %v below A2/SO = %v — local search lost utility", ls, so)
	}
	if ls > 1+1e-9 || gm > 1+1e-9 {
		t.Errorf("extension ratios exceed the bound: LS %v GM %v", ls, gm)
	}
	if gm <= 0 {
		t.Errorf("GM/SO = %v", gm)
	}
	// Render includes the extension columns.
	out := Render(res).String()
	for _, col := range []string{"LS/SO", "GM/SO"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %s:\n%s", col, out)
		}
	}
}

func TestByIDFindsExtensions(t *testing.T) {
	if _, ok := ByID("ext-ls", 5); !ok {
		t.Error("ext-ls not found")
	}
}

func TestRunRejectsUnknownExtra(t *testing.T) {
	spec := Fig1a(3)
	spec.Sweep = spec.Sweep[:1]
	spec.Extra = []string{"bogus"}
	if _, err := Run(spec, 1, 1); err == nil {
		t.Error("unknown extra competitor accepted")
	}
}

func TestRenderChart(t *testing.T) {
	spec := shrink(Fig2a(4), 4, 2)
	res, err := Run(spec, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderChart(res).String()
	for _, want := range []string{"fig2a", "A2/SO", "A2/RR", "beta", "utility ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestRatioOfMeansComputed(t *testing.T) {
	spec := shrink(Fig1a(10), 10, 2)
	res, err := Run(spec, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		for _, c := range Competitors {
			rom := pt.RatioOfMeans[c]
			mor := pt.Ratios[c].Mean
			if rom <= 0 {
				t.Errorf("%s: ratio of means = %v", c, rom)
			}
			// On the light-tailed uniform panel the two estimators agree
			// within a few percent.
			if rom < mor*0.9 || rom > mor*1.1 {
				t.Errorf("%s at %s=%g: ratio-of-means %v far from mean-of-ratios %v",
					c, spec.ParamName, pt.Param, rom, mor)
			}
		}
		// A2/SO specifically must still be <= 1 under both estimators.
		if pt.RatioOfMeans["SO"] > 1+1e-9 {
			t.Errorf("RoM A2/SO = %v > 1", pt.RatioOfMeans["SO"])
		}
	}
}

func TestRuntimeTable(t *testing.T) {
	tbl, err := RuntimeTable(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Errorf("got %d rows, want 8", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "ext-runtime") {
		t.Error("missing title")
	}
	if _, err := RuntimeTable(1, 0); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestExtClusterSizeSweep(t *testing.T) {
	spec := ExtClusterSize(6)
	spec.Sweep = []SweepPoint{spec.Sweep[0], spec.Sweep[2]} // m = 2 and 8
	res, err := Run(spec, 31, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		so := pt.Ratios["SO"].Mean
		if so < 0.9 || so > 1+1e-9 {
			t.Errorf("m=%g: A2/SO = %v out of range", pt.Param, so)
		}
		if pt.Ratios["UU"].Mean < 1 {
			t.Errorf("m=%g: A2/UU = %v below 1", pt.Param, pt.Ratios["UU"].Mean)
		}
	}
	// n scales with m: 10 at m=2, 40 at m=8.
	if res.Points[0].N != 10 || res.Points[1].N != 40 {
		t.Errorf("n per point: %d, %d", res.Points[0].N, res.Points[1].N)
	}
}
