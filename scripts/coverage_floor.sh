#!/usr/bin/env bash
# coverage_floor.sh — per-package statement-coverage floors.
#
# Runs go test -coverprofile on the packages named in FLOORS and fails
# if any drops below its committed floor. The floors are set a few
# points under the measured coverage at the time they were added — the
# gate catches coverage erosion, not day-to-day noise. Profiles are
# written under COVER_DIR for CI artifact upload.
#
# Environment knobs:
#   COVER_DIR  where to write coverage profiles (default: coverage/)
set -euo pipefail
cd "$(dirname "$0")/.."

COVER_DIR="${COVER_DIR:-coverage}"
mkdir -p "$COVER_DIR"

tmp="$(mktemp)"
cleanup() {
    rm -f "$tmp"
}
trap cleanup EXIT INT TERM

# package floor%
FLOORS="
./internal/replay 82
./internal/online 85
./internal/telemetry 85
./internal/cache 85
./internal/router 85
./internal/ratelimit 85
"

fail=0
while read -r pkg floor; do
    [ -z "$pkg" ] && continue
    name="$(basename "$pkg")"
    profile="$COVER_DIR/$name.out"
    go test -count=1 -coverprofile="$profile" "$pkg" >"$tmp" 2>&1 || {
        cat "$tmp" >&2
        exit 1
    }
    pct="$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')"
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage_floor: FAIL: $pkg at ${pct}%, floor ${floor}%" >&2
        fail=1
    else
        echo "coverage_floor: $pkg ${pct}% (floor ${floor}%)"
    fi
done <<EOF2
$FLOORS
EOF2

exit "$fail"
