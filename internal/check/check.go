// Package check is the repository's verification layer: invariant checks
// that a solver's output is feasible, approximation-ratio checks against
// the paper's proven guarantee F ≥ α·F̂ with α = 2(√2−1) (Theorems V.5
// and V.6), and a differential harness that cross-checks every solver
// against independent ground truths on small instances.
//
// Checking is opt-in. The process-wide switch (Enable / AA_CHECK=1 /
// the CLIs' -check flag) turns on post-solve verification in the solver
// pool, the experiment harness and the online simulator; library callers
// can also invoke the checks directly. Every check outcome is counted in
// the aa_check_total / aa_check_violations_total telemetry counters, so
// a long -check run can assert "zero violations" from /metrics alone.
//
// Tolerance policy: feasibility comparisons use a relative ε
// (DefaultEps = 1e-6) scaled by the magnitude being compared — an
// allocation may exceed its cap by ε·(1+cap) and a server load may reach
// C·(1+ε)+ε — because allocations come out of float64 bisection, not
// exact arithmetic. Ratio comparisons use DefaultRatioEps against the
// α guarantee; α itself is exact in float64 (2·(√2−1)) while F and F̂
// each carry bisection error, so the slack covers both.
package check

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"aa/internal/core"
	"aa/internal/telemetry"
	"aa/internal/utility"
)

const (
	// DefaultEps is the relative feasibility tolerance used by every
	// -check path in the repository.
	DefaultEps = 1e-6
	// DefaultRatioEps is the slack applied to approximation-ratio
	// comparisons (both the α lower bound and the F ≤ F̂ upper bound).
	DefaultRatioEps = 1e-6
)

// Typed sentinels: every violation error wraps one of these, so callers
// can classify failures with errors.Is regardless of the wrapped detail.
var (
	// ErrInfeasible marks a solution that violates a hard constraint:
	// a negative or NaN allocation, an allocation past its thread's cap,
	// an over-full server, or a thread placed on an invalid server.
	ErrInfeasible = errors.New("check: infeasible assignment")
	// ErrRatio marks a violation of a proven bound: F below the α
	// guarantee for Assign1/Assign2, or any solver's F above the
	// super-optimal bound F̂.
	ErrRatio = errors.New("check: approximation-ratio violation")
	// ErrDifferential marks a cross-solver mismatch found by the
	// differential harness (e.g. a heuristic beating the exact optimum,
	// or Concave falling below the unit-greedy ground truth).
	ErrDifferential = errors.New("check: differential mismatch")
)

// enabled is the process-wide opt-in switch, mirroring
// telemetry.Enable's atomic-bool pattern.
var enabled atomic.Bool

// Enable turns on process-wide post-solve checking in the solver pool,
// the experiment harness and the online simulator.
func Enable() { enabled.Store(true) }

// Disable turns process-wide checking back off.
func Disable() { enabled.Store(false) }

// Enabled reports whether process-wide checking is on.
func Enabled() bool { return enabled.Load() }

// The check counters are registered eagerly so they appear on /metrics
// (at zero) even before the first check runs. They are incremented
// unconditionally — checking is opt-in, so there is no hot path to
// protect with telemetry.Enabled.
var (
	checksTotal     = telemetry.Default.Counter("aa_check_total")
	violationsTotal = telemetry.Default.Counter("aa_check_violations_total")
)

// Totals returns the process-wide number of checks performed and
// violations found so far (the aa_check_total and
// aa_check_violations_total counters).
func Totals() (checks, violations uint64) {
	return checksTotal.Value(), violationsTotal.Value()
}

// record counts one check outcome into the telemetry counters and
// passes the error through.
func record(err error) error {
	checksTotal.Inc()
	if err != nil {
		violationsTotal.Inc()
	}
	return err
}

// Feasible verifies the hard constraints of the AA problem (§II) for an
// assignment: every thread placed on a valid server, every allocation
// finite, ≥ 0 and at most min(Cap, C) — note this is stricter than
// core.Assignment.Validate, which only bounds allocations by C — and
// every server's load at most C(1+ε). It returns nil or an error
// wrapping ErrInfeasible, and counts the outcome in the aa_check_*
// metrics. eps ≤ 0 falls back to DefaultEps.
func Feasible(in *core.Instance, a core.Assignment, eps float64) error {
	return record(feasible(in, a, eps))
}

// ProbeFeasible is Feasible without the aa_check_* accounting — for
// callers probing a candidate solution they will recover from rejecting
// (the engine's warm-start repair path) rather than verifying a final
// answer: a probe failure is handled by falling back to a cold solve,
// so it must not surface as a violation in a "zero violations" run.
func ProbeFeasible(in *core.Instance, a core.Assignment, eps float64) error {
	return feasible(in, a, eps)
}

func feasible(in *core.Instance, a core.Assignment, eps float64) error {
	if eps <= 0 {
		eps = DefaultEps
	}
	n := in.N()
	if len(a.Server) != n || len(a.Alloc) != n {
		return fmt.Errorf("%w: assignment covers %d servers / %d allocs for %d threads",
			ErrInfeasible, len(a.Server), len(a.Alloc), n)
	}
	loads := make([]float64, in.M)
	for i, x := range a.Alloc {
		s := a.Server[i]
		if s < 0 || s >= in.M {
			return fmt.Errorf("%w: thread %d on invalid server %d (m = %d)", ErrInfeasible, i, s, in.M)
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: thread %d allocation is %v", ErrInfeasible, i, x)
		}
		if x < -eps*(1+in.C) {
			return fmt.Errorf("%w: thread %d allocation %v is negative", ErrInfeasible, i, x)
		}
		c := in.Threads[i].Cap()
		if c > in.C {
			c = in.C
		}
		if x > c+eps*(1+c) {
			return fmt.Errorf("%w: thread %d allocated %v past its cap %v", ErrInfeasible, i, x, c)
		}
		loads[s] += x
	}
	for j, load := range loads {
		if load > in.C*(1+eps)+eps {
			return fmt.Errorf("%w: server %d load %v exceeds C(1+ε) = %v",
				ErrInfeasible, j, load, in.C*(1+eps))
		}
	}
	return nil
}

// Allocation verifies the single-knapsack invariants of an allocation
// vector (the internal/alloc contract): finite, ≥ 0, per-thread caps,
// and Σ x_i ≤ budget(1+ε). Used by the fuzz targets and the
// differential harness directly against alloc.Concave / alloc.Greedy
// output. eps ≤ 0 falls back to DefaultEps.
func Allocation(fs []utility.Func, xs []float64, budget, eps float64) error {
	return record(allocation(fs, xs, budget, eps))
}

func allocation(fs []utility.Func, xs []float64, budget, eps float64) error {
	if eps <= 0 {
		eps = DefaultEps
	}
	if len(xs) != len(fs) {
		return fmt.Errorf("%w: %d allocations for %d utilities", ErrInfeasible, len(xs), len(fs))
	}
	sum := 0.0
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: allocation %d is %v", ErrInfeasible, i, x)
		}
		if x < -eps*(1+budget) {
			return fmt.Errorf("%w: allocation %d is negative (%v)", ErrInfeasible, i, x)
		}
		c := fs[i].Cap()
		if x > c+eps*(1+c) {
			return fmt.Errorf("%w: allocation %d is %v, past its cap %v", ErrInfeasible, i, x, c)
		}
		sum += x
	}
	if sum > budget*(1+eps)+eps {
		return fmt.Errorf("%w: allocations sum to %v, past the budget %v", ErrInfeasible, sum, budget)
	}
	return nil
}

// RatioReport is the outcome of comparing an assignment's utility F
// against the super-optimal bound F̂ (Definition V.1).
type RatioReport struct {
	// F is the assignment's total utility.
	F float64
	// FHat is the super-optimal bound F̂ it is measured against.
	FHat float64
	// Ratio is F/F̂ (1 when both are zero, +Inf when only F̂ is).
	Ratio float64
}

// Ratio computes F/F̂ for the assignment against a freshly computed
// super-optimal bound. When the bound is already at hand (the experiment
// harness computes it once per trial), use RatioAgainst instead.
func Ratio(in *core.Instance, a core.Assignment) RatioReport {
	return RatioAgainst(core.SuperOptimal(in).Total, in, a)
}

// RatioAgainst computes F/F̂ against a caller-supplied bound.
func RatioAgainst(fhat float64, in *core.Instance, a core.Assignment) RatioReport {
	f := a.Utility(in)
	ratio := 1.0
	switch {
	case fhat != 0:
		ratio = f / fhat
	case f != 0:
		ratio = math.Inf(1)
	}
	return RatioReport{F: f, FHat: fhat, Ratio: ratio}
}

// CheckBound verifies the one bound every solver must respect: F cannot
// exceed F̂, because F̂ pools all m servers into one (Lemma V.2). It
// returns nil or an error wrapping ErrRatio, counted in the aa_check_*
// metrics. eps ≤ 0 falls back to DefaultRatioEps.
func (r RatioReport) CheckBound(eps float64) error {
	if eps <= 0 {
		eps = DefaultRatioEps
	}
	return record(r.checkBound(eps))
}

func (r RatioReport) checkBound(eps float64) error {
	if r.F > r.FHat*(1+eps)+eps {
		return fmt.Errorf("%w: F = %v exceeds the super-optimal bound F̂ = %v", ErrRatio, r.F, r.FHat)
	}
	return nil
}

// CheckAlpha verifies the full guarantee for Assign1/Assign2 (and
// anything built on top of them, e.g. polish or local search, which only
// increase F): α·F̂ ≤ F ≤ F̂ with α = 2(√2−1). Heuristics without a
// proven lower bound should use CheckBound instead. eps ≤ 0 falls back
// to DefaultRatioEps.
func (r RatioReport) CheckAlpha(eps float64) error {
	if eps <= 0 {
		eps = DefaultRatioEps
	}
	return record(r.probeAlpha(eps))
}

// ProbeAlpha is CheckAlpha without the aa_check_* accounting, for the
// same recover-on-failure callers as ProbeFeasible. eps ≤ 0 falls back
// to DefaultRatioEps.
func (r RatioReport) ProbeAlpha(eps float64) error {
	if eps <= 0 {
		eps = DefaultRatioEps
	}
	return r.probeAlpha(eps)
}

func (r RatioReport) probeAlpha(eps float64) error {
	err := r.checkBound(eps)
	if err == nil && r.F < (core.Alpha-eps)*r.FHat {
		err = fmt.Errorf("%w: F/F̂ = %v below the guarantee α = %v (F = %v, F̂ = %v)",
			ErrRatio, r.Ratio, core.Alpha, r.F, r.FHat)
	}
	return err
}

// PostSolve is the solver-pool hook: one call verifies an Algorithm 2
// result end to end — feasibility plus the α-ratio guarantee against a
// freshly computed super-optimal bound. It costs roughly one extra
// water-filling pass per solve, which is why the pool only runs it when
// opted in (Options.Check or the process-wide Enable).
func PostSolve(in *core.Instance, a core.Assignment) error {
	if err := Feasible(in, a, DefaultEps); err != nil {
		return err
	}
	return Ratio(in, a).CheckAlpha(DefaultRatioEps)
}
