package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aa/internal/engine"
	"aa/internal/instio"
)

// demoInstance is a small 2-server instance in the instio wire format.
const demoInstance = `{
  "m": 2,
  "c": 10,
  "threads": [
    {"kind": "linear", "slope": 1.5},
    {"kind": "log", "scale": 2, "shift": 1},
    {"kind": "linear", "slope": 0.5},
    {"kind": "power", "scale": 1, "beta": 0.5}
  ]
}`

// fakeNode is a minimal aaserve stand-in: a real /solve (through the
// in-process engine), /readyz, and a solve counter for routing asserts.
type fakeNode struct {
	srv    *httptest.Server
	solves atomic.Int64
	busy   atomic.Bool // answer 429 on /solve when set
}

func newFakeNode(t *testing.T) *fakeNode {
	t.Helper()
	f := &fakeNode{}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		if f.busy.Load() {
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		in, err := instio.Decode(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := engine.Default().Solve(r.Context(), &engine.Request{Instance: in})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		f.solves.Add(1)
		_ = instio.EncodeAssignment(w, in, resp.Assignment)
	})
	mux.HandleFunc("/solve/batch", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		io.WriteString(w, "[\n  {\"batch\": true}\n]\n")
	})
	mux.HandleFunc("/backends", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "assign2  fake registry\n")
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeNode) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// startRelay runs the real run() against the given extra flags and
// returns the relay's bound address.
func startRelay(t *testing.T, args ...string) string {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	full := append([]string{"-addr", "127.0.0.1:0"}, args...)
	go func() { done <- run(full, testWriter{t}, ready) }()
	select {
	case addr := <-ready:
		return addr
	case err := <-done:
		t.Fatalf("relay exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("relay never became ready")
	}
	return ""
}

func postSolve(t *testing.T, addr, query string) (*http.Response, string) {
	t.Helper()
	url := "http://" + addr + "/solve" + query
	resp, err := http.Post(url, "application/json", strings.NewReader(demoInstance))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestRelayRoutesAndFailsOver(t *testing.T) {
	n1, n2 := newFakeNode(t), newFakeNode(t)
	addr := startRelay(t, "-nodes", n1.addr()+","+n2.addr(), "-strategy", "round-robin",
		"-probe-interval", "50ms")

	resp, body := postSolve(t, addr, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve via relay = %d: %s", resp.StatusCode, body)
	}
	resp2, body2 := postSolve(t, addr, "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second solve = %d", resp2.StatusCode)
	}
	// Determinism across nodes: round-robin sent the two requests to
	// different nodes, yet the bytes must match.
	if body != body2 {
		t.Fatalf("responses differ across nodes:\n%s\n%s", body, body2)
	}
	if n1.solves.Load() == 0 || n2.solves.Load() == 0 {
		t.Fatalf("round-robin did not spread: n1=%d n2=%d", n1.solves.Load(), n2.solves.Load())
	}

	// Kill n1: the very next request must fail over, not error.
	n1.srv.Close()
	for i := 0; i < 4; i++ {
		resp3, body3 := postSolve(t, addr, "")
		if resp3.StatusCode != http.StatusOK {
			t.Fatalf("post-kill solve %d = %d: %s", i, resp3.StatusCode, body3)
		}
		if body3 != body {
			t.Fatalf("post-kill response differs:\n%s\n%s", body3, body)
		}
	}

	// /nodes reflects the failure.
	nresp, err := http.Get("http://" + addr + "/nodes")
	if err != nil {
		t.Fatal(err)
	}
	nbody, _ := io.ReadAll(nresp.Body)
	nresp.Body.Close()
	if !strings.Contains(string(nbody), `"down"`) {
		t.Fatalf("/nodes does not show the dead node: %s", nbody)
	}
}

func TestRelayAllNodesBusy(t *testing.T) {
	n1, n2 := newFakeNode(t), newFakeNode(t)
	n1.busy.Store(true)
	n2.busy.Store(true)
	addr := startRelay(t, "-nodes", n1.addr()+","+n2.addr(), "-probe-interval", "1h")

	resp, _ := postSolve(t, addr, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-busy relay = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("all-busy 429 missing Retry-After")
	}

	// One node recovers: the spill finds it.
	n2.busy.Store(false)
	resp2, _ := postSolve(t, addr, "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery solve = %d, want 200 (429 spill to healthy node)", resp2.StatusCode)
	}
	if n2.solves.Load() == 0 {
		t.Fatal("healthy node never solved")
	}
}

func TestRelayRateLimit(t *testing.T) {
	n := newFakeNode(t)
	addr := startRelay(t, "-nodes", n.addr(), "-rate", "0.5", "-burst", "2", "-probe-interval", "1h")

	var limited *http.Response
	for i := 0; i < 4; i++ {
		resp, _ := postSolve(t, addr, "")
		if resp.StatusCode == http.StatusTooManyRequests {
			limited = resp
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d", i, resp.StatusCode)
		}
	}
	if limited == nil {
		t.Fatal("burst of 2 at 0.5/s never hit the limiter in 4 requests")
	}
	ra := limited.Header.Get("Retry-After")
	if ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After = %q, want a positive integral wait", ra)
	}
}

func TestRelaySharedCacheExactHit(t *testing.T) {
	n := newFakeNode(t)
	addr := startRelay(t, "-nodes", n.addr(), "-cache", "shared", "-cache-key", "test-secret",
		"-probe-interval", "1h")

	_, first := postSolve(t, addr, "")
	before := n.solves.Load()
	_, second := postSolve(t, addr, "")
	if n.solves.Load() != before {
		t.Fatalf("repeat solve reached the node (solves %d -> %d); want relay cache hit",
			before, n.solves.Load())
	}
	if first != second {
		t.Fatalf("cache hit not byte-identical:\n%q\n%q", first, second)
	}
	// cache=bypass must reach the node again.
	_, _ = postSolve(t, addr, "?cache=bypass")
	if n.solves.Load() != before+1 {
		t.Fatalf("cache=bypass did not reach the node (solves %d)", n.solves.Load())
	}
}

func TestRelayBatchPipe(t *testing.T) {
	n := newFakeNode(t)
	addr := startRelay(t, "-nodes", n.addr(), "-probe-interval", "1h")

	resp, err := http.Post("http://"+addr+"/solve/batch", "application/json",
		strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch via relay = %d", resp.StatusCode)
	}
	if string(body) != "[\n  {\"batch\": true}\n]\n" {
		t.Fatalf("batch bytes not piped verbatim: %q", body)
	}
}

func TestRelayBackendsProxy(t *testing.T) {
	n := newFakeNode(t)
	addr := startRelay(t, "-nodes", n.addr(), "-probe-interval", "1h")
	resp, err := http.Get("http://" + addr + "/backends")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "assign2") {
		t.Fatalf("/backends proxy: %q", body)
	}
}

func TestRelayFlagValidation(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:0"}, io.Discard, nil); err == nil {
		t.Fatal("run without -nodes succeeded")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-nodes", "a:1", "-strategy", "bogus"}, io.Discard, nil); err == nil {
		t.Fatal("run with bogus strategy succeeded")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-nodes", ",,,"}, io.Discard, nil); err == nil {
		t.Fatal("run with empty node list succeeded")
	}
}
