package mckp

import (
	"math"
	"testing"

	"aa/internal/alloc"
	"aa/internal/rng"
	"aa/internal/utility"
)

func TestValidate(t *testing.T) {
	ok := &Problem{Capacity: 5, Classes: [][]Item{{{0, 0}, {2, 3}}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{Capacity: -1, Classes: [][]Item{{{0, 0}}}},
		{Capacity: 5},
		{Capacity: 5, Classes: [][]Item{{}}},
		{Capacity: 5, Classes: [][]Item{{{-1, 0}}}},
		{Capacity: 5, Classes: [][]Item{{{0, math.NaN()}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSolveDPHandExample(t *testing.T) {
	// Two classes, capacity 5:
	// class 0: (0,0), (2,3), (4,4)
	// class 1: (0,0), (3,5)
	// Best: class0→(2,3) + class1→(3,5) = 8 at weight 5.
	p := &Problem{
		Capacity: 5,
		Classes: [][]Item{
			{{0, 0}, {2, 3}, {4, 4}},
			{{0, 0}, {3, 5}},
		},
	}
	sol, err := p.SolveDP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 8 {
		t.Errorf("value %v, want 8", sol.Value)
	}
	if sol.Weight != 5 {
		t.Errorf("weight %d, want 5", sol.Weight)
	}
	if p.Classes[0][sol.Pick[0]].Weight != 2 || p.Classes[1][sol.Pick[1]].Weight != 3 {
		t.Errorf("picks %v", sol.Pick)
	}
}

func TestSolveDPInfeasibleWithoutZeroItem(t *testing.T) {
	p := &Problem{
		Capacity: 1,
		Classes:  [][]Item{{{5, 10}}},
	}
	if _, err := p.SolveDP(); err == nil {
		t.Error("infeasible instance solved")
	}
}

func TestGreedyFeasibleAndNearDP(t *testing.T) {
	base := rng.New(81)
	for trial := 0; trial < 20; trial++ {
		r := base.Split(uint64(trial))
		nClasses := 2 + r.Intn(6)
		capacity := 20 + r.Intn(60)
		p := &Problem{Capacity: capacity}
		for c := 0; c < nClasses; c++ {
			class := []Item{{0, 0}}
			items := 1 + r.Intn(8)
			w, v := 0, 0.0
			for k := 0; k < items; k++ {
				w += 1 + r.Intn(8)
				v += r.Uniform(0, 5)
				class = append(class, Item{Weight: w, Value: v})
			}
			p.Classes = append(p.Classes, class)
		}
		dp, err := p.SolveDP()
		if err != nil {
			t.Fatal(err)
		}
		gr, err := p.SolveGreedy()
		if err != nil {
			t.Fatal(err)
		}
		if gr.Weight > p.Capacity {
			t.Fatalf("trial %d: greedy weight %d > capacity %d", trial, gr.Weight, p.Capacity)
		}
		if gr.Value > dp.Value+1e-9 {
			t.Fatalf("trial %d: greedy %v beats exact DP %v", trial, gr.Value, dp.Value)
		}
		// Classical guarantee on frontier greedy is 1/2; random instances
		// do far better. Assert the conservative bound.
		if gr.Value < 0.5*dp.Value-1e-9 {
			t.Errorf("trial %d: greedy %v below half of optimal %v", trial, gr.Value, dp.Value)
		}
	}
}

// The §II connection: single-server AA with discretized concave
// utilities IS an MCKP instance; the MCKP DP must agree with the
// allocation DP and with the concave greedy.
func TestMCKPAgreesWithAllocatorsOnConcaveClasses(t *testing.T) {
	base := rng.New(82)
	for trial := 0; trial < 10; trial++ {
		r := base.Split(uint64(trial))
		n := 2 + r.Intn(5)
		fs := make([]utility.Func, n)
		for i := range fs {
			switch r.Intn(3) {
			case 0:
				fs[i] = utility.Log{Scale: r.Uniform(1, 5), Shift: r.Uniform(2, 20), C: 40}
			case 1:
				fs[i] = utility.SatExp{Scale: r.Uniform(1, 5), K: r.Uniform(5, 20), C: 40}
			default:
				fs[i] = utility.CappedLinear{Slope: r.Uniform(0.1, 2), Knee: r.Uniform(5, 35), C: 40}
			}
		}
		capacity := 15 + r.Intn(60)
		p := FromUtilities(fs, capacity, 1)
		mckpSol, err := p.SolveDP()
		if err != nil {
			t.Fatal(err)
		}
		allocSol := alloc.DPExact(fs, float64(capacity), 1)
		if math.Abs(mckpSol.Value-allocSol.Total) > 1e-9*(1+allocSol.Total) {
			t.Errorf("trial %d: MCKP DP %v != allocation DP %v", trial, mckpSol.Value, allocSol.Total)
		}
		greedy := alloc.Greedy(fs, float64(capacity), 1)
		if math.Abs(mckpSol.Value-greedy.Total) > 1e-9*(1+greedy.Total) {
			t.Errorf("trial %d: MCKP DP %v != Fox greedy %v (concave ⇒ greedy exact)",
				trial, mckpSol.Value, greedy.Total)
		}
		// The MCKP LP-greedy should also be exact here (concave classes
		// have fully efficient frontiers).
		gr, err := p.SolveGreedy()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gr.Value-mckpSol.Value) > 0.02*(1+mckpSol.Value) {
			t.Errorf("trial %d: MCKP greedy %v vs exact %v", trial, gr.Value, mckpSol.Value)
		}
	}
}

func TestLPFrontier(t *testing.T) {
	class := []Item{
		{0, 0},
		{1, 5},   // efficient
		{2, 4},   // dominated by (1,5)
		{3, 7},   // on hull
		{4, 7.5}, // LP-dominated by chord (3,7)-(6,12)? slope check below
		{6, 12},
	}
	frontier := lpFrontier(class)
	// Must include 0-weight start and be increasing in weight.
	if class[frontier[0]].Weight != 0 {
		t.Errorf("frontier does not start at weight 0: %v", frontier)
	}
	prevW := -1
	for _, i := range frontier {
		if class[i].Weight <= prevW {
			t.Errorf("frontier not strictly increasing in weight: %v", frontier)
		}
		prevW = class[i].Weight
	}
	// The dominated item (2,4) must be gone.
	for _, i := range frontier {
		if class[i].Weight == 2 && class[i].Value == 4 {
			t.Error("dominated item survived")
		}
	}
}

func TestGreedyTightCapacity(t *testing.T) {
	// Capacity forces everyone to the zero item.
	p := &Problem{
		Capacity: 0,
		Classes: [][]Item{
			{{0, 0}, {1, 10}},
			{{0, 0}, {2, 20}},
		},
	}
	sol, err := p.SolveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0 || sol.Weight != 0 {
		t.Errorf("expected all-zero solution, got %+v", sol)
	}
}

func BenchmarkMCKPDP(b *testing.B) {
	fs := make([]utility.Func, 20)
	for i := range fs {
		fs[i] = utility.Log{Scale: float64(i%5 + 1), Shift: float64(i%7 + 3), C: 100}
	}
	p := FromUtilities(fs, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveDP(); err != nil {
			b.Fatal(err)
		}
	}
}
