package cachesim

import (
	"math"
	"testing"

	"aa/internal/core"
	"aa/internal/rng"
)

var testCfg = Config{Sets: 64, Ways: 16, LineSize: 64}

func TestConfigValidate(t *testing.T) {
	if err := testCfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Sets: 0, Ways: 1, LineSize: 1},
		{Sets: 1, Ways: 0, LineSize: 1},
		{Sets: 1, Ways: 1, LineSize: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("accepted bad config %+v", cfg)
		}
	}
}

func TestPartitionZeroWaysAlwaysMisses(t *testing.T) {
	p, err := NewPartition(testCfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if p.Access(uint64(i % 3 * 64)) {
			t.Fatal("hit with zero ways")
		}
	}
	if p.HitRate() != 0 {
		t.Errorf("hit rate %v, want 0", p.HitRate())
	}
}

func TestPartitionRejectsBadWays(t *testing.T) {
	if _, err := NewPartition(testCfg, -1); err == nil {
		t.Error("negative ways accepted")
	}
	if _, err := NewPartition(testCfg, testCfg.Ways+1); err == nil {
		t.Error("oversized ways accepted")
	}
}

func TestPartitionHitsOnReuse(t *testing.T) {
	p, _ := NewPartition(testCfg, 4)
	addr := uint64(0x1000)
	if p.Access(addr) {
		t.Error("first access hit")
	}
	if !p.Access(addr) {
		t.Error("second access missed")
	}
	// Same line, different byte offset.
	if !p.Access(addr + 63) {
		t.Error("same-line access missed")
	}
	// Different line.
	if p.Access(addr + 64*64*64) {
		t.Error("distinct line hit")
	}
}

func TestPartitionLRUEviction(t *testing.T) {
	// 1 set, 2 ways: access lines A, B, C (all mapping to set 0), then A
	// must have been evicted.
	cfg := Config{Sets: 1, Ways: 2, LineSize: 64}
	p, _ := NewPartition(cfg, 2)
	a, b, c := uint64(0), uint64(64), uint64(128)
	p.Access(a)
	p.Access(b)
	p.Access(c) // evicts a (LRU)
	if p.Access(a) {
		t.Error("A survived eviction")
	}
	// Now the set holds {a, c} (b was evicted when a reloaded).
	if p.Access(b) {
		t.Error("B should have been evicted")
	}
}

func TestPartitionLRURecency(t *testing.T) {
	cfg := Config{Sets: 1, Ways: 2, LineSize: 64}
	p, _ := NewPartition(cfg, 2)
	a, b, c := uint64(0), uint64(64), uint64(128)
	p.Access(a)
	p.Access(b)
	p.Access(a) // refresh a; b is now LRU
	p.Access(c) // evicts b
	if !p.Access(a) {
		t.Error("A was evicted despite being MRU")
	}
}

func TestPartitionReset(t *testing.T) {
	p, _ := NewPartition(testCfg, 2)
	p.Access(0)
	p.Access(0)
	p.Reset()
	if p.Hits() != 0 || p.Accesses() != 0 {
		t.Error("counters survived reset")
	}
	if p.Access(0) {
		t.Error("contents survived reset")
	}
}

func TestSimulateHitsEmptyTrace(t *testing.T) {
	if _, _, err := SimulateHits(testCfg, 2, nil); err != ErrEmptyTrace {
		t.Errorf("err = %v, want ErrEmptyTrace", err)
	}
}

// LRU inclusion: hit count is nondecreasing in way count for any trace.
func TestStackProperty(t *testing.T) {
	r := rng.New(3)
	gens := []TraceGen{
		WorkingSet{Lines: 300, LineSize: 64},
		ZipfReuse{Lines: 500, S: 1.2, LineSize: 64},
		SequentialLoop{Lines: 200, LineSize: 64},
		Mixture{A: WorkingSet{Lines: 100, LineSize: 64}, B: Stream{LineSize: 64}, P: 0.7},
	}
	for _, g := range gens {
		trace := g.Generate(20000, r)
		prev := -1
		for w := 0; w <= testCfg.Ways; w++ {
			hits, _, err := SimulateHits(testCfg, w, trace)
			if err != nil {
				t.Fatal(err)
			}
			if hits < prev {
				t.Errorf("%s: hits(%d ways) = %d < hits(%d ways) = %d",
					g.Name(), w, hits, w-1, prev)
			}
			prev = hits
		}
	}
}

func TestStreamNeverHits(t *testing.T) {
	trace := Stream{LineSize: 64}.Generate(5000, rng.New(1))
	hits, _, err := SimulateHits(testCfg, testCfg.Ways, trace)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Errorf("streaming trace hit %d times", hits)
	}
}

func TestWorkingSetSaturates(t *testing.T) {
	// A working set of 256 lines over 64 sets needs ~4 ways; at full
	// associativity the steady-state hit rate should be near 1.
	trace := WorkingSet{Lines: 256, LineSize: 64}.Generate(60000, rng.New(2))
	p, err := ProfileThread(testCfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if p.HitRate[testCfg.Ways] < 0.95 {
		t.Errorf("full-cache hit rate %v, want > 0.95", p.HitRate[testCfg.Ways])
	}
	if p.HitRate[0] != 0 {
		t.Errorf("0-way hit rate %v, want 0", p.HitRate[0])
	}
	if !p.Monotone() {
		t.Error("profile not monotone")
	}
}

func TestLoopCliffAndEnvelope(t *testing.T) {
	// A sequential loop of 6 lines in a 1-set cache: with < 6 ways LRU
	// thrashes (0 hits), with 6 ways everything hits — a convex cliff.
	cfg := Config{Sets: 1, Ways: 8, LineSize: 64}
	trace := SequentialLoop{Lines: 6, LineSize: 64}.Generate(6000, rng.New(4))
	p, err := ProfileThread(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if p.HitRate[5] > 0.01 {
		t.Errorf("hit rate with 5 ways = %v, want ~0 (LRU thrash)", p.HitRate[5])
	}
	if p.HitRate[6] < 0.99 {
		t.Errorf("hit rate with 6 ways = %v, want ~1", p.HitRate[6])
	}
	env := p.ConcaveEnvelope()
	// Envelope dominates the curve and is concave.
	for w := range env {
		if env[w] < p.HitRate[w]-1e-12 {
			t.Errorf("envelope below curve at %d ways", w)
		}
	}
	for w := 2; w < len(env); w++ {
		s1 := env[w-1] - env[w-2]
		s2 := env[w] - env[w-1]
		if s2 > s1+1e-9 {
			t.Errorf("envelope convex at %d ways", w)
		}
	}
	// Envelope touches the curve at the cliff top.
	if math.Abs(env[6]-p.HitRate[6]) > 1e-12 {
		t.Errorf("envelope detached at the cliff: %v vs %v", env[6], p.HitRate[6])
	}
}

func TestConcaveEnvelopeIdempotentOnConcaveData(t *testing.T) {
	p := Profile{HitRate: []float64{0, 0.5, 0.75, 0.875, 0.9}}
	env := p.ConcaveEnvelope()
	for i := range env {
		if math.Abs(env[i]-p.HitRate[i]) > 1e-12 {
			t.Errorf("concave data changed at %d: %v vs %v", i, env[i], p.HitRate[i])
		}
	}
}

func TestThroughputModel(t *testing.T) {
	m := ThroughputModel{HitCycles: 1, MissPenalty: 40, Weight: 2}
	if got := m.Throughput(1); got != 2 {
		t.Errorf("all-hit throughput %v, want 2", got)
	}
	if got := m.Throughput(0); math.Abs(got-2.0/41) > 1e-12 {
		t.Errorf("all-miss throughput %v, want %v", got, 2.0/41)
	}
}

func TestProfileUtilityIsValidAAUtility(t *testing.T) {
	trace := WorkingSet{Lines: 256, LineSize: 64}.Generate(40000, rng.New(5))
	p, err := ProfileThread(testCfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Utility(DefaultModel)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cap() != float64(testCfg.Ways) {
		t.Errorf("Cap = %v, want %d", f.Cap(), testCfg.Ways)
	}
	// Monotone and concave by construction (piecewise-linear envelope).
	prev := f.Value(0)
	for x := 0.0; x <= f.Cap(); x += 0.25 {
		v := f.Value(x)
		if v < prev-1e-9 {
			t.Fatalf("utility decreases at %v", x)
		}
		prev = v
	}
}

func TestEndToEndPipelinePredictionMatchesCoRun(t *testing.T) {
	cfg := Config{Sets: 32, Ways: 8, LineSize: 64}
	r := rng.New(6)
	gens := []TraceGen{
		WorkingSet{Lines: 120, LineSize: 64, Base: 0},
		WorkingSet{Lines: 60, LineSize: 64, Base: 1 << 30},
		ZipfReuse{Lines: 400, S: 1.3, LineSize: 64, Base: 2 << 30},
		Stream{LineSize: 64, Base: 3 << 30},
		WorkingSet{Lines: 200, LineSize: 64, Base: 4 << 30},
		ZipfReuse{Lines: 300, S: 0.9, LineSize: 64, Base: 5 << 30},
	}
	workloads := GenerateWorkloads(gens, 30000, DefaultModel, r)
	in, profiles, err := BuildInstance(cfg, 2, workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(gens) || in.N() != len(gens) {
		t.Fatalf("pipeline shape wrong")
	}
	a := core.Assign2(in)
	if err := a.Validate(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	res, err := CoRun(cfg, 2, workloads, a)
	if err != nil {
		t.Fatal(err)
	}
	// Socket budgets respected.
	for s, load := range res.SocketLoads {
		if load > cfg.Ways {
			t.Errorf("socket %d over budget: %d", s, load)
		}
	}
	// Measured total should be close to the model's prediction at the
	// quantized allocation (identical traces, so only envelope gaps and
	// quantization separate them).
	pred := PredictedTotal(in, res.Ways)
	if math.Abs(res.Total-pred) > 0.15*pred {
		t.Errorf("co-run total %v far from predicted %v", res.Total, pred)
	}
	// AA should beat naive equal partitioning (round robin + equal ways).
	uu := core.AssignUU(in)
	uuRes, err := CoRun(cfg, 2, workloads, uu)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < uuRes.Total*0.99 {
		t.Errorf("AA co-run %v worse than UU co-run %v", res.Total, uuRes.Total)
	}
}

func TestQuantizeWaysRespectsBudget(t *testing.T) {
	in := &core.Instance{M: 2, C: 8}
	a := core.Assignment{
		Server: []int{0, 0, 1, 1, 1},
		Alloc:  []float64{3.7, 4.3, 2.5, 2.5, 3.0},
	}
	ways := QuantizeWays(in, a, 8)
	sums := map[int]int{}
	totalFrac := 0.0
	for i, w := range ways {
		sums[a.Server[i]] += w
		totalFrac += a.Alloc[i]
		if math.Abs(float64(w)-a.Alloc[i]) >= 1 {
			t.Errorf("thread %d: quantized %d far from %v", i, w, a.Alloc[i])
		}
	}
	for s, sum := range sums {
		if sum > 8 {
			t.Errorf("server %d over budget: %d ways", s, sum)
		}
	}
}

func TestMixtureAndNames(t *testing.T) {
	m := Mixture{A: WorkingSet{Lines: 10, LineSize: 64}, B: Stream{LineSize: 64}, P: 0.5}
	if m.Name() != "mix(workingset,stream)" {
		t.Errorf("Name() = %q", m.Name())
	}
	trace := m.Generate(100, rng.New(7))
	if len(trace) != 100 {
		t.Errorf("trace length %d", len(trace))
	}
}

func BenchmarkPartitionAccess(b *testing.B) {
	p, _ := NewPartition(testCfg, 8)
	trace := WorkingSet{Lines: 500, LineSize: 64}.Generate(b.N, rng.New(1))
	b.ResetTimer()
	for _, a := range trace {
		p.Access(a)
	}
}

func BenchmarkProfileThread(b *testing.B) {
	trace := WorkingSet{Lines: 300, LineSize: 64}.Generate(20000, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProfileThread(testCfg, trace); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHullVertices(t *testing.T) {
	// Concave curve: every point is a vertex.
	p := Profile{HitRate: []float64{0, 0.5, 0.75, 0.875}}
	if got := p.HullVertices(); len(got) != 4 {
		t.Errorf("concave curve vertices = %v, want all 4", got)
	}
	// Cliff curve: only the endpoints and the cliff top touch the hull.
	p = Profile{HitRate: []float64{0, 0, 0, 0.9, 0.9}}
	got := p.HullVertices()
	want := map[int]bool{0: true, 3: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("cliff vertices = %v, want {0,3,4}", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected vertex %d in %v", v, got)
		}
	}
}

func TestOptimizeWaysAvoidsWastedCliffWays(t *testing.T) {
	// One loop thread (cliff at 10 ways), one working-set thread, one
	// streamer on a single socket. The refined allocation must give the
	// loop 0 or >= 10 ways, never a useless partial cliff.
	cfg := Config{Sets: 64, Ways: 16, LineSize: 64}
	r := rng.New(31)
	gens := []TraceGen{
		SequentialLoop{Lines: 640, LineSize: 64, Base: 0}, // cliff at 10 ways
		WorkingSet{Lines: 800, LineSize: 64, Base: 1 << 30},
		Stream{LineSize: 64, Base: 2 << 30},
	}
	workloads := GenerateWorkloads(gens, 30000, DefaultModel, r)
	in, profiles, err := BuildInstance(cfg, 1, workloads)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Assign2(in)
	ways := OptimizeWays(cfg, 1, workloads, profiles, a)
	if ways[0] != 0 && ways[0] < 10 {
		t.Errorf("loop thread got %d ways — a useless partial cliff", ways[0])
	}
	// Budget respected.
	sum := 0
	for _, w := range ways {
		sum += w
	}
	if sum > cfg.Ways {
		t.Errorf("refined ways %v exceed budget %d", ways, cfg.Ways)
	}
	// The DP refinement must not lose to plain quantization (that
	// allocation is feasible for the DP).
	plain, err := CoRun(cfg, 1, workloads, a)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := CoRunWays(cfg, 1, workloads, a, ways)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Total < plain.Total*(1-1e-9) {
		t.Errorf("DP refinement (%v) lost to plain quantization (%v)",
			refined.Total, plain.Total)
	}
}

func TestOptimizeWaysPredictionExactAtMeasuredCurves(t *testing.T) {
	// The refined allocation is chosen on the measured curves, so the
	// measured co-run must match the measured-curve total exactly, and
	// stay close to the envelope model's prediction on concave profiles.
	cfg := Config{Sets: 32, Ways: 8, LineSize: 64}
	r := rng.New(32)
	gens := []TraceGen{
		WorkingSet{Lines: 120, LineSize: 64, Base: 0},
		ZipfReuse{Lines: 400, S: 1.2, LineSize: 64, Base: 1 << 30},
		WorkingSet{Lines: 200, LineSize: 64, Base: 2 << 30},
	}
	workloads := GenerateWorkloads(gens, 20000, DefaultModel, r)
	in, profiles, err := BuildInstance(cfg, 1, workloads)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Assign2(in)
	ways := OptimizeWays(cfg, 1, workloads, profiles, a)
	res, err := CoRunWays(cfg, 1, workloads, a, ways)
	if err != nil {
		t.Fatal(err)
	}
	fromCurves := 0.0
	for i := range profiles {
		fromCurves += workloads[i].Model.Throughput(profiles[i].HitRate[ways[i]])
	}
	if math.Abs(res.Total-fromCurves) > 1e-9 {
		t.Errorf("co-run %v != measured-curve total %v", res.Total, fromCurves)
	}
	pred := PredictedTotal(in, ways)
	if math.Abs(res.Total-pred) > 0.15*pred {
		t.Errorf("refined co-run %v far from envelope prediction %v", res.Total, pred)
	}
}

func TestSharedCoRunStreamerWrecksNeighbours(t *testing.T) {
	// A hot working set co-located with an aggressive streamer on a
	// shared cache loses most of its hits; under partitioning (AA) the
	// streamer gets no ways and the working set keeps its hit rate.
	cfg := Config{Sets: 16, Ways: 4, LineSize: 64}
	r := rng.New(41)
	gens := []TraceGen{
		WorkingSet{Lines: 48, LineSize: 64, Base: 0}, // fits in 3 ways
		Stream{LineSize: 64, Base: 1 << 30},
	}
	workloads := GenerateWorkloads(gens, 30000, DefaultModel, r)
	servers := []int{0, 0}

	shared, err := SharedCoRun(cfg, 1, workloads, servers)
	if err != nil {
		t.Fatal(err)
	}
	in, profiles, err := BuildInstance(cfg, 1, workloads)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Assign2(in)
	ways := OptimizeWays(cfg, 1, workloads, profiles, a)
	part, err := CoRunWays(cfg, 1, workloads, a, ways)
	if err != nil {
		t.Fatal(err)
	}
	// The streamer floods the shared LRU: the working set's shared hit
	// rate must be visibly below its partitioned hit rate.
	if shared.HitRate[0] > part.HitRate[0]-0.05 {
		t.Errorf("shared hit rate %v not clearly below partitioned %v",
			shared.HitRate[0], part.HitRate[0])
	}
	if part.Total < shared.Total {
		t.Errorf("partitioned total %v below shared %v", part.Total, shared.Total)
	}
}

func TestSharedCoRunValidatesInput(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 2, LineSize: 64}
	workloads := GenerateWorkloads([]TraceGen{Stream{LineSize: 64}}, 100, DefaultModel, rng.New(1))
	if _, err := SharedCoRun(cfg, 1, workloads, []int{0, 1}); err == nil {
		t.Error("mismatched servers slice accepted")
	}
}

func TestSharedCoRunAloneMatchesPartitionFullWays(t *testing.T) {
	// A thread alone on a socket sees the whole cache either way.
	cfg := Config{Sets: 16, Ways: 4, LineSize: 64}
	workloads := GenerateWorkloads(
		[]TraceGen{WorkingSet{Lines: 80, LineSize: 64}}, 20000, DefaultModel, rng.New(42))
	shared, err := SharedCoRun(cfg, 1, workloads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	hits, accesses, err := SimulateHits(cfg, cfg.Ways, workloads[0].Trace)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(hits) / float64(accesses)
	if math.Abs(shared.HitRate[0]-want) > 1e-12 {
		t.Errorf("alone shared hit rate %v != full partition %v", shared.HitRate[0], want)
	}
}

func TestSampledProfileApproximatesFull(t *testing.T) {
	// Set sampling (1 in 4) must track the full profile closely for
	// set-uniform workloads — the premise of the UMON-DSS monitors.
	cfg := Config{Sets: 64, Ways: 8, LineSize: 64}
	r := rng.New(51)
	cases := []struct {
		gen TraceGen
		tol float64
	}{
		// Set-uniform workloads sample accurately.
		{WorkingSet{Lines: 256, LineSize: 64, Base: 0}, 0.08},
		// Zipf reuse concentrates hot lines in a few sets, so sampling
		// carries a known bias — still bounded, but looser.
		{ZipfReuse{Lines: 1500, S: 1.1, LineSize: 64, Base: 1 << 30}, 0.15},
	}
	for _, tc := range cases {
		trace := tc.gen.Generate(60000, r)
		full, err := ProfileThread(cfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		sampled, err := ProfileThreadSampled(cfg, trace, 4)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w <= cfg.Ways; w++ {
			if diff := math.Abs(full.HitRate[w] - sampled.HitRate[w]); diff > tc.tol {
				t.Errorf("%s at %d ways: full %v vs sampled %v (diff %v)",
					tc.gen.Name(), w, full.HitRate[w], sampled.HitRate[w], diff)
			}
		}
		if !sampled.Monotone() {
			t.Errorf("%s: sampled profile not monotone", tc.gen.Name())
		}
	}
}

func TestSampledProfileStrideOneIsFull(t *testing.T) {
	cfg := Config{Sets: 16, Ways: 4, LineSize: 64}
	trace := WorkingSet{Lines: 64, LineSize: 64}.Generate(10000, rng.New(52))
	full, err := ProfileThread(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ProfileThreadSampled(cfg, trace, 1)
	if err != nil {
		t.Fatal(err)
	}
	for w := range full.HitRate {
		if full.HitRate[w] != s1.HitRate[w] {
			t.Fatalf("stride 1 differs at %d ways", w)
		}
	}
}

func TestSampledProfileErrors(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 2, LineSize: 64}
	if _, err := ProfileThreadSampled(cfg, nil, 2); err == nil {
		t.Error("empty trace accepted")
	}
	trace := []uint64{0, 64, 128}
	if _, err := ProfileThreadSampled(cfg, trace, 0); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := ProfileThreadSampled(cfg, trace, 8); err == nil {
		t.Error("stride beyond set count accepted")
	}
}
