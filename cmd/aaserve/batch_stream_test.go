package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aa/internal/engine"
)

// newBatchServer builds a test server with explicit batch settings;
// newTestServer (main_test.go) keeps the zero-value buffered defaults.
func newBatchServer(t *testing.T, stream bool, maxBytes int64) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{Backend: "a2", Workers: 2})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer((&server{
		eng: eng, backend: "a2",
		streamBatch:   stream,
		maxBatchBytes: maxBytes,
	}).mux())
	t.Cleanup(ts.Close)
	return ts
}

// TestBatchStreamMatchesBuffered pins the wire contract of the
// streaming rewrite: for the same batch, the streaming handler must
// produce byte-for-byte the output of the buffered json.Encoder path it
// replaced — same framing, same indentation, same trailing newline.
func TestBatchStreamMatchesBuffered(t *testing.T) {
	buffered := newBatchServer(t, false, 0)
	streamed := newBatchServer(t, true, 0)
	for _, batch := range []string{
		"[" + demoInstance + "]",
		"[" + demoInstance + "," + demoInstance + "," + demoInstance + "]",
		// Whitespace between elements must not leak into the output.
		"[\n  " + demoInstance + " ,\n\t" + demoInstance + "\n]",
	} {
		respB, bodyB := postSolve(t, buffered, "/solve/batch", batch)
		respS, bodyS := postSolve(t, streamed, "/solve/batch", batch)
		if respB.StatusCode != http.StatusOK || respS.StatusCode != http.StatusOK {
			t.Fatalf("status buffered %d, streamed %d: %s", respB.StatusCode, respS.StatusCode, bodyS)
		}
		if string(bodyB) != string(bodyS) {
			t.Fatalf("streamed body differs from buffered:\n--- buffered ---\n%s\n--- streamed ---\n%s", bodyB, bodyS)
		}
		if ct := respS.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Fatalf("streamed Content-Type = %q", ct)
		}
	}
}

// TestBatchStreamErrors: request-side failures on the streaming path
// keep the buffered path's status codes.
func TestBatchStreamErrors(t *testing.T) {
	ts := newBatchServer(t, true, 0)
	for _, tc := range []struct {
		name, body string
		status     int
		contains   string
	}{
		{"empty", "[]", http.StatusBadRequest, "empty batch"},
		{"null", "null", http.StatusBadRequest, "batch body"},
		{"object", "{}", http.StatusBadRequest, "batch body"},
		{"garbage", "not json", http.StatusBadRequest, "batch body"},
		{"bad element", `[{"m": 0, "c": 1, "threads": []}]`, http.StatusBadRequest, "instance 0"},
	} {
		resp, body := postSolve(t, ts, "/solve/batch", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, body)
		}
		if !strings.Contains(string(body), tc.contains) {
			t.Errorf("%s: body %q missing %q", tc.name, body, tc.contains)
		}
	}
}

// A batch with a decode failure after valid elements: by then part of
// the 200 response is on the wire, so the server aborts the connection
// rather than dressing the truncated array up as a success.
func TestBatchStreamMidStreamAbort(t *testing.T) {
	ts := newBatchServer(t, true, 0)
	batch := "[" + demoInstance + "," + demoInstance + "," + `{"m": "broken"` + "]"
	resp, err := http.Post(ts.URL+"/solve/batch", "application/json", strings.NewReader(batch))
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if _, err := io.ReadAll(resp.Body); err == nil {
				t.Fatal("mid-stream decode failure produced a complete 200 response")
			}
		}
		// A non-200 means no output had been written yet (the decoder
		// outran the solvers) and the error mapped to a status: also
		// correct, just a different interleaving.
	}
}

// TestBatchTooLarge: the -max-batch-bytes satellite. A declared
// Content-Length over the cap is rejected up front with a typed JSON
// 413 — no body bytes are read, so a multi-GB declaration costs
// nothing. The regression this pins: the old handler buffered the whole
// body first and would have tried to allocate it.
func TestBatchTooLarge(t *testing.T) {
	for _, stream := range []bool{true, false} {
		eng := engine.New(engine.Options{Backend: "a2", Workers: 1})
		t.Cleanup(eng.Close)
		h := (&server{eng: eng, backend: "a2", streamBatch: stream, maxBatchBytes: 1 << 20}).mux()

		req := httptest.NewRequest(http.MethodPost, "/solve/batch", strings.NewReader("[]"))
		req.ContentLength = 5 << 30 // a 5 GiB declaration, no actual payload
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("stream=%v: status %d, want 413: %s", stream, rec.Code, rec.Body)
		}
		var e struct {
			Code  string `json:"code"`
			Limit int64  `json:"limitBytes"`
			Size  int64  `json:"sizeBytes"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("stream=%v: 413 body is not JSON: %v\n%s", stream, err, rec.Body)
		}
		if e.Code != "batch_too_large" || e.Limit != 1<<20 || e.Size != 5<<30 {
			t.Fatalf("stream=%v: typed error %+v", stream, e)
		}
	}
}

// TestBatchTooLargeChunked: a chunked body (no Content-Length) that
// overruns the cap mid-read is also rejected with the typed 413 — the
// MaxBytesReader catches what the up-front check cannot see.
func TestBatchTooLargeChunked(t *testing.T) {
	ts := newBatchServer(t, true, 64)
	body := "[" + demoInstance + "]" // well-formed, just over 64 bytes
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/solve/batch", io.NopCloser(strings.NewReader(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = -1 // force chunked transfer encoding
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "batch_too_large") {
		t.Fatalf("413 body missing typed code: %s", data)
	}
}

// TestBatchStreamLargeBatch runs a batch big enough to exercise real
// decode/solve/emit overlap through the HTTP stack and checks every
// element of the response array arrives intact and in order.
func TestBatchStreamLargeBatch(t *testing.T) {
	ts := newBatchServer(t, true, 0)
	const k = 40
	elems := make([]string, k)
	for i := range elems {
		elems[i] = demoInstance
	}
	resp, body := postSolve(t, ts, "/solve/batch", "["+strings.Join(elems, ",")+"]")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out []struct {
		Server []int `json:"server"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(out) != k {
		t.Fatalf("got %d results, want %d", len(out), k)
	}
	for i, o := range out {
		if len(o.Server) != 4 {
			t.Fatalf("result %d: %d servers, want 4", i, len(o.Server))
		}
	}
}
