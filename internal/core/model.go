// Package core implements the AA (assign and allocate) problem from the
// paper "Utility Maximizing Thread Assignment and Resource Allocation"
// (IPDPS'16): simultaneously assign n threads to m homogeneous servers of
// capacity C and allocate each server's resource among its threads to
// maximize total utility, where each thread has a nonnegative,
// nondecreasing, concave utility function.
//
// The package provides the paper's two approximation algorithms
// (Assign1, Assign2, both with ratio α = 2(√2−1) ≈ 0.828), the
// super-optimal upper bound (SuperOptimal), the linearization they rely
// on, the four comparison heuristics UU/UR/RU/RR, a fixed-request
// first-fit baseline, exact solvers for small instances, and the
// PARTITION reduction from the NP-hardness proof.
package core

import (
	"errors"
	"fmt"
	"math"

	"aa/internal/utility"
)

// Alpha is the approximation ratio 2(√2−1) ≈ 0.8284 guaranteed by
// Algorithms 1 and 2 (Theorems V.16 and VI.1).
var Alpha = 2 * (math.Sqrt2 - 1)

// Instance is an AA problem: M homogeneous servers with capacity C each,
// and one utility function per thread.
type Instance struct {
	M       int            // number of servers
	C       float64        // resource capacity per server
	Threads []utility.Func // utility function of each thread
}

// N returns the number of threads.
func (in *Instance) N() int { return len(in.Threads) }

// Validate checks the instance is well formed: at least one server,
// positive capacity, and at least one thread with a non-nil utility.
// It does not re-verify concavity of each utility (see utility.Validate).
func (in *Instance) Validate() error {
	if in.M <= 0 {
		return fmt.Errorf("core: instance has %d servers, need >= 1", in.M)
	}
	if !(in.C > 0) {
		return fmt.Errorf("core: server capacity %v, need > 0", in.C)
	}
	if len(in.Threads) == 0 {
		return errors.New("core: instance has no threads")
	}
	for i, f := range in.Threads {
		if f == nil {
			return fmt.Errorf("core: thread %d has nil utility", i)
		}
	}
	return nil
}

// Assignment is a solution to an AA instance: Server[i] is the server
// index thread i is placed on and Alloc[i] the resource it is allocated
// there. Every thread is assigned to some server, possibly with zero
// resource (§III).
type Assignment struct {
	Server []int
	Alloc  []float64
}

// NewAssignment returns an empty assignment for n threads, with every
// thread marked unassigned (server -1, allocation 0).
func NewAssignment(n int) Assignment {
	a := Assignment{Server: make([]int, n), Alloc: make([]float64, n)}
	for i := range a.Server {
		a.Server[i] = -1
	}
	return a
}

// Reset reinitializes the assignment for n threads, reusing the backing
// arrays when they are large enough — the piece that lets Workspace-based
// solvers rewrite an Assignment every solve without allocating.
func (a *Assignment) Reset(n int) {
	if cap(a.Server) >= n {
		a.Server = a.Server[:n]
	} else {
		a.Server = make([]int, n)
	}
	if cap(a.Alloc) >= n {
		a.Alloc = a.Alloc[:n]
	} else {
		a.Alloc = make([]float64, n)
	}
	for i := range a.Server {
		a.Server[i] = -1
	}
	for i := range a.Alloc {
		a.Alloc[i] = 0
	}
}

// Utility returns the total utility Σ f_i(Alloc[i]) of the assignment
// under the given instance.
func (a Assignment) Utility(in *Instance) float64 {
	total := 0.0
	for i, f := range in.Threads {
		total += f.Value(a.Alloc[i])
	}
	return total
}

// ServerLoads returns the total allocation on each server.
func (a Assignment) ServerLoads(in *Instance) []float64 {
	loads := make([]float64, in.M)
	for i, s := range a.Server {
		if s >= 0 && s < in.M {
			loads[s] += a.Alloc[i]
		}
	}
	return loads
}

// Validate checks the assignment is feasible for the instance: every
// thread is placed on a valid server with a nonnegative allocation, and
// each server's allocations sum to at most C (within tol).
func (a Assignment) Validate(in *Instance, tol float64) error {
	n := in.N()
	if len(a.Server) != n || len(a.Alloc) != n {
		return fmt.Errorf("core: assignment covers %d/%d threads", len(a.Server), n)
	}
	loads := make([]float64, in.M)
	for i := 0; i < n; i++ {
		s := a.Server[i]
		if s < 0 || s >= in.M {
			return fmt.Errorf("core: thread %d assigned to invalid server %d", i, s)
		}
		if a.Alloc[i] < -tol {
			return fmt.Errorf("core: thread %d has negative allocation %v", i, a.Alloc[i])
		}
		if a.Alloc[i] > in.C+tol {
			return fmt.Errorf("core: thread %d allocated %v > C=%v", i, a.Alloc[i], in.C)
		}
		loads[s] += a.Alloc[i]
	}
	for j, load := range loads {
		if load > in.C+tol*(1+in.C) {
			return fmt.Errorf("core: server %d overloaded: %v > C=%v", j, load, in.C)
		}
	}
	return nil
}

// cappedFunc restricts a utility's domain to the server capacity C, so a
// thread whose Func was defined over a larger domain still respects the
// model's f : [0, C] → ℝ≥0.
type cappedFunc struct {
	f utility.Func
	c float64
}

func (cf cappedFunc) Value(x float64) float64 {
	if x > cf.c {
		x = cf.c
	}
	return cf.f.Value(x)
}

func (cf cappedFunc) Deriv(x float64) float64 {
	if x >= cf.c {
		return 0
	}
	return cf.f.Deriv(x)
}

func (cf cappedFunc) Cap() float64 { return cf.c }

func (cf cappedFunc) InverseDeriv(lambda float64) float64 {
	x := utility.InverseDeriv(cf.f, lambda, 1e-12)
	if x > cf.c {
		return cf.c
	}
	return x
}

// cappedThreads wraps every thread utility so its cap is min(own cap, C).
func cappedThreads(in *Instance) []utility.Func {
	fs := make([]utility.Func, in.N())
	for i, f := range in.Threads {
		c := f.Cap()
		if c > in.C {
			c = in.C
		}
		fs[i] = cappedFunc{f: f, c: c}
	}
	return fs
}
