package cachesim

import (
	"fmt"
	"sort"

	"aa/internal/alloc"
	"aa/internal/core"
	"aa/internal/rng"
	"aa/internal/utility"
)

// Workload is one thread's trace and throughput model, the input to the
// end-to-end pipeline.
type Workload struct {
	Trace []uint64
	Model ThroughputModel
}

// GenerateWorkloads draws traces for the given generators with
// independent per-thread streams derived from r.
func GenerateWorkloads(gens []TraceGen, accesses int, model ThroughputModel, r *rng.Rand) []Workload {
	out := make([]Workload, len(gens))
	for i, g := range gens {
		out[i] = Workload{
			Trace: g.Generate(accesses, r.Split(uint64(i))),
			Model: model,
		}
	}
	return out
}

// BuildInstance profiles every workload on the cache configuration and
// assembles the AA instance: sockets = servers, ways = resource.
func BuildInstance(cfg Config, sockets int, workloads []Workload) (*core.Instance, []Profile, error) {
	if sockets < 1 {
		return nil, nil, fmt.Errorf("cachesim: %d sockets", sockets)
	}
	threads := make([]utility.Func, len(workloads))
	profiles := make([]Profile, len(workloads))
	for i, wl := range workloads {
		p, err := ProfileThread(cfg, wl.Trace)
		if err != nil {
			return nil, nil, fmt.Errorf("cachesim: profiling thread %d: %w", i, err)
		}
		f, err := p.Utility(wl.Model)
		if err != nil {
			return nil, nil, fmt.Errorf("cachesim: thread %d: %w", i, err)
		}
		profiles[i] = p
		threads[i] = f
	}
	in := &core.Instance{M: sockets, C: float64(cfg.Ways), Threads: threads}
	return in, profiles, nil
}

// QuantizeWays rounds a fractional per-thread way allocation to integers
// per socket without exceeding the socket's way budget: floor everything,
// then hand leftover ways to the largest fractional remainders.
func QuantizeWays(in *core.Instance, a core.Assignment, totalWays int) []int {
	n := len(a.Alloc)
	ways := make([]int, n)
	type rem struct {
		idx  int
		frac float64
	}
	perServer := make(map[int][]rem)
	used := make(map[int]int)
	for i := 0; i < n; i++ {
		w := int(a.Alloc[i])
		if w > totalWays {
			w = totalWays
		}
		ways[i] = w
		used[a.Server[i]] += w
		perServer[a.Server[i]] = append(perServer[a.Server[i]],
			rem{idx: i, frac: a.Alloc[i] - float64(w)})
	}
	for s, rems := range perServer {
		left := totalWays - used[s]
		sort.Slice(rems, func(x, y int) bool { return rems[x].frac > rems[y].frac })
		for _, rm := range rems {
			if left <= 0 {
				break
			}
			if rm.frac > 0 && ways[rm.idx] < totalWays {
				ways[rm.idx]++
				left--
			}
		}
	}
	return ways
}

// OptimizeWays refines a fractional AA assignment into integer way
// counts by re-solving each socket's way split *exactly* against the
// measured (possibly non-concave) throughput curves with a small dynamic
// program. The AA solver decides which threads share a socket using the
// concave-envelope utilities; this step then removes both quantization
// error and envelope optimism — e.g. a sequential loop gets its full
// cliff or nothing, never a useless partial allocation. The result is
// never worse than plain largest-remainder quantization, since that
// allocation is feasible for the DP.
func OptimizeWays(cfg Config, sockets int, workloads []Workload, profiles []Profile, a core.Assignment) []int {
	n := len(profiles)
	ways := make([]int, n)
	for j := 0; j < sockets; j++ {
		var members []int
		for i := 0; i < n; i++ {
			if a.Server[i] == j {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		fs := make([]utility.Func, len(members))
		for k, i := range members {
			tp := make([]float64, len(profiles[i].HitRate))
			for w, hr := range profiles[i].HitRate {
				tp[w] = workloads[i].Model.Throughput(hr)
			}
			fs[k] = measuredCurve{vals: tp}
		}
		res := alloc.DPExact(fs, float64(cfg.Ways), 1)
		for k, i := range members {
			ways[i] = int(res.Alloc[k] + 0.5)
		}
	}
	return ways
}

// measuredCurve adapts a measured per-way value table to the allocator's
// utility interface. It is a step function on integer way counts and
// makes no concavity promise — only the exact DP allocator should
// consume it.
type measuredCurve struct {
	vals []float64
}

func (m measuredCurve) Value(x float64) float64 {
	w := int(x + 1e-9)
	if w < 0 {
		w = 0
	}
	if w >= len(m.vals) {
		w = len(m.vals) - 1
	}
	return m.vals[w]
}

func (m measuredCurve) Deriv(float64) float64 { return 0 }

func (m measuredCurve) Cap() float64 { return float64(len(m.vals) - 1) }

// CoRunWays simulates every thread at an explicit way allocation,
// validating socket budgets against the assignment's server map.
func CoRunWays(cfg Config, sockets int, workloads []Workload, a core.Assignment, ways []int) (CoRunResult, error) {
	res := CoRunResult{
		Ways:        ways,
		HitRate:     make([]float64, len(workloads)),
		Throughput:  make([]float64, len(workloads)),
		SocketLoads: make([]int, sockets),
	}
	for i, wl := range workloads {
		hits, accesses, err := SimulateHits(cfg, ways[i], wl.Trace)
		if err != nil {
			return CoRunResult{}, fmt.Errorf("cachesim: co-run thread %d: %w", i, err)
		}
		hr := float64(hits) / float64(accesses)
		res.HitRate[i] = hr
		res.Throughput[i] = wl.Model.Throughput(hr)
		res.Total += res.Throughput[i]
		res.SocketLoads[a.Server[i]] += ways[i]
	}
	for s, load := range res.SocketLoads {
		if load > cfg.Ways {
			return CoRunResult{}, fmt.Errorf("cachesim: socket %d uses %d/%d ways", s, load, cfg.Ways)
		}
	}
	return res, nil
}

// CoRunResult reports a simulated co-run under a quantized partition.
type CoRunResult struct {
	Ways        []int     // ways per thread
	HitRate     []float64 // measured hit rate per thread
	Throughput  []float64 // measured throughput per thread
	Total       float64   // Σ throughput (the metric AA maximizes)
	SocketLoads []int     // ways used per socket
}

// CoRun simulates every thread against its allocated partition (with
// plain largest-remainder quantization of the fractional allocation).
// Way partitioning isolates threads, so each partition simulates
// independently; the value of the co-run is validating that the measured
// aggregate matches the utility model's prediction. For cliff-shaped
// profiles prefer SnapToVertices + CoRunWays.
func CoRun(cfg Config, sockets int, workloads []Workload, a core.Assignment) (CoRunResult, error) {
	ways := QuantizeWays(&core.Instance{M: sockets, C: float64(cfg.Ways)}, a, cfg.Ways)
	return CoRunWays(cfg, sockets, workloads, a, ways)
}

// SharedCoRun simulates the no-partitioning baseline: all threads on a
// socket share the full cache and evict each other freely. Their traces
// are interleaved round robin (one access per thread per round) into a
// single LRU cache. This is the regime cache partitioning — and hence
// the AA problem — exists to improve on: a streaming thread can wreck
// its neighbours' hit rates. Thread placement still matters, so the
// assignment's Server map decides who interferes with whom.
func SharedCoRun(cfg Config, sockets int, workloads []Workload, servers []int) (CoRunResult, error) {
	if len(servers) != len(workloads) {
		return CoRunResult{}, fmt.Errorf("cachesim: %d servers for %d workloads", len(servers), len(workloads))
	}
	res := CoRunResult{
		Ways:        make([]int, len(workloads)), // ways are shared; reported as full
		HitRate:     make([]float64, len(workloads)),
		Throughput:  make([]float64, len(workloads)),
		SocketLoads: make([]int, sockets),
	}
	for j := 0; j < sockets; j++ {
		var members []int
		for i, s := range servers {
			if s == j {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		shared, err := NewPartition(cfg, cfg.Ways)
		if err != nil {
			return CoRunResult{}, err
		}
		hits := make([]int, len(members))
		accesses := make([]int, len(members))
		pos := make([]int, len(members))
		for {
			progressed := false
			for k, i := range members {
				trace := workloads[i].Trace
				if pos[k] >= len(trace) {
					continue
				}
				if shared.Access(trace[pos[k]]) {
					hits[k]++
				}
				accesses[k]++
				pos[k]++
				progressed = true
			}
			if !progressed {
				break
			}
		}
		for k, i := range members {
			if accesses[k] == 0 {
				continue
			}
			hr := float64(hits[k]) / float64(accesses[k])
			res.HitRate[i] = hr
			res.Throughput[i] = workloads[i].Model.Throughput(hr)
			res.Total += res.Throughput[i]
			res.Ways[i] = cfg.Ways
		}
		res.SocketLoads[j] = cfg.Ways
	}
	return res, nil
}

// PredictedTotal evaluates the utility model at a quantized allocation —
// the number CoRun should approximately reproduce.
func PredictedTotal(in *core.Instance, ways []int) float64 {
	total := 0.0
	for i, f := range in.Threads {
		total += f.Value(float64(ways[i]))
	}
	return total
}
