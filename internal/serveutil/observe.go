// Package serveutil is the shared HTTP serving layer behind the aa
// binaries (aaserve nodes, the aarelay tier): request observability
// (request IDs, W3C traceparent propagation, http.request spans, JSON
// access logs), the liveness/readiness split load balancers key on, and
// the signal-driven listen/drain/shutdown lifecycle — factored here so
// a node and the relay that fronts it drain and trace identically.
package serveutil

import (
	"log/slog"
	"net/http"
	"time"

	"aa/internal/telemetry"
)

// Request/response header names.
const (
	HeaderTraceparent = "traceparent"
	HeaderRequestID   = "X-Request-ID"
)

// statusWriter captures the status code and body size the handler
// produced, for the access log and the http.request span.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush forwards http.Flusher so streaming responses keep working
// through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the server's writer
// through the wrapper — the streaming batch handler needs
// EnableFullDuplex, which only the real writer implements.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// WithObservability wraps next with request IDs, traceparent
// extraction/injection, the http.request span and the access log. An
// incoming traceparent header makes the http.request span (and
// everything under it) a child of the caller's span, and the response
// carries the server-side span back so callers can link their records.
func WithObservability(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()

		// Honor a caller-supplied request ID (so log lines correlate
		// across services); mint one otherwise.
		reqID := r.Header.Get(HeaderRequestID)
		if reqID == "" {
			reqID = telemetry.NewSpanID().String()
		}
		w.Header().Set(HeaderRequestID, reqID)

		ctx := r.Context()
		var span telemetry.Span
		traced := telemetry.TraceEnabled()
		if traced {
			if sc, err := telemetry.ParseTraceparent(r.Header.Get(HeaderTraceparent)); err == nil {
				// The remote caller's span becomes the parent; a missing or
				// malformed header falls through to the process default.
				ctx = telemetry.ContextWithSpan(ctx, sc)
			}
			ctx, span = telemetry.StartSpanCtx(ctx, "http.request",
				telemetry.String("method", r.Method),
				telemetry.String("path", r.URL.Path),
				telemetry.String("request_id", reqID))
			w.Header().Set(HeaderTraceparent, span.Context().Traceparent())
		}

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)

		if traced {
			span.AddAttrs(telemetry.Int("status", sw.status), telemetry.Int("bytes", sw.bytes))
			span.End()
		}
		attrs := []slog.Attr{
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		}
		if sc := span.Context(); sc.Valid() {
			attrs = append(attrs,
				slog.String("trace_id", sc.TraceID.String()),
				slog.String("span_id", sc.SpanID.String()))
		}
		log.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
	})
}
