package engine

import (
	"context"
	"testing"

	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

// BenchmarkEngineSolve is BenchmarkSolveSession through the full engine
// pipeline: the same 8×400-thread workload, one reused Response, solves
// via SolveInto. The benchmark-regression gate holds it to < 5% ns/op
// overhead over the raw session solve and 0 allocs/op — the cost of
// riding the registry + middleware chain must stay noise-level.
func BenchmarkEngineSolve(b *testing.B) {
	base := rng.New(99)
	ins := make([]*core.Instance, 8)
	for i := range ins {
		in, err := gen.Instance(gen.DefaultUniform, 8, 1000, 400, base.Split(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
	}
	eng := New(Options{})
	ctx := context.Background()
	req := &Request{}
	var resp Response
	for _, in := range ins { // size the buffers before counting allocs
		req.Instance = in
		if err := eng.SolveInto(ctx, req, &resp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Instance = ins[i%len(ins)]
		if err := eng.SolveInto(ctx, req, &resp); err != nil {
			b.Fatal(err)
		}
	}
}
