package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"aa/internal/rng"
	"aa/internal/utility"
)

func feasible(t *testing.T, fs []utility.Func, alloc []float64, budget float64) {
	t.Helper()
	sum := 0.0
	for i, a := range alloc {
		if a < -1e-12 {
			t.Fatalf("negative allocation %v for thread %d", a, i)
		}
		if a > fs[i].Cap()+1e-9 {
			t.Fatalf("allocation %v exceeds cap %v for thread %d", a, fs[i].Cap(), i)
		}
		sum += a
	}
	if sum > budget*(1+1e-9)+1e-9 {
		t.Fatalf("allocations sum to %v > budget %v", sum, budget)
	}
}

func TestConcaveEmptyAndDegenerate(t *testing.T) {
	r := Concave(nil, 100)
	if r.Total != 0 || len(r.Alloc) != 0 {
		t.Errorf("empty problem: %+v", r)
	}
	fs := []utility.Func{utility.Linear{Slope: 1, C: 10}}
	r = Concave(fs, 0)
	if r.Total != 0 {
		t.Errorf("zero budget: %+v", r)
	}
	r = Concave(fs, -5)
	if r.Total != 0 {
		t.Errorf("negative budget: %+v", r)
	}
}

func TestConcaveBudgetCoversAllCaps(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 2, C: 10},
		utility.Log{Scale: 3, Shift: 1, C: 20},
	}
	r := Concave(fs, 100)
	if r.Alloc[0] != 10 || r.Alloc[1] != 20 {
		t.Errorf("allocations %v, want caps [10 20]", r.Alloc)
	}
}

func TestConcaveTwoIdenticalLogsSplitEvenly(t *testing.T) {
	fs := []utility.Func{
		utility.Log{Scale: 1, Shift: 10, C: 1000},
		utility.Log{Scale: 1, Shift: 10, C: 1000},
	}
	r := Concave(fs, 100)
	feasible(t, fs, r.Alloc, 100)
	if math.Abs(r.Alloc[0]-r.Alloc[1]) > 1e-6 {
		t.Errorf("identical threads got %v", r.Alloc)
	}
	if math.Abs(r.Alloc[0]-50) > 1e-6 {
		t.Errorf("each should get 50, got %v", r.Alloc[0])
	}
}

func TestConcaveKKTCondition(t *testing.T) {
	// Water-filling optimality: all threads with interior allocations have
	// (approximately) equal derivatives, and threads at 0 have derivative
	// below that level.
	fs := []utility.Func{
		utility.Log{Scale: 5, Shift: 20, C: 1000},
		utility.Log{Scale: 1, Shift: 20, C: 1000},
		utility.SatExp{Scale: 8, K: 100, C: 1000},
	}
	budget := 300.0
	r := Concave(fs, budget)
	feasible(t, fs, r.Alloc, budget)
	var level float64 = -1
	for i, f := range fs {
		a := r.Alloc[i]
		if a > 1e-6 && a < f.Cap()-1e-6 {
			d := f.Deriv(a)
			if level < 0 {
				level = d
			} else if math.Abs(d-level) > 1e-4*(1+level) {
				t.Errorf("thread %d marginal %v != water level %v", i, d, level)
			}
		}
	}
	for i, f := range fs {
		if r.Alloc[i] < 1e-6 && f.Deriv(0) > level*(1+1e-4) {
			t.Errorf("thread %d starved but has marginal %v > level %v", i, f.Deriv(0), level)
		}
	}
}

func TestConcaveUsesWholeBudgetWhenProfitable(t *testing.T) {
	fs := []utility.Func{
		utility.Power{Scale: 1, Beta: 0.5, C: 1000},
		utility.Power{Scale: 2, Beta: 0.7, C: 1000},
	}
	budget := 500.0
	r := Concave(fs, budget)
	sum := r.Alloc[0] + r.Alloc[1]
	if math.Abs(sum-budget) > 1e-6*budget {
		t.Errorf("sum %v, want full budget %v (strictly increasing utilities)", sum, budget)
	}
}

func TestConcavePartitionInstance(t *testing.T) {
	// NP-hardness reduction shape: capped-linear threads with slope 1 and
	// total knee mass equal to the budget. Optimal: everyone at the knee.
	knees := []float64{3, 7, 5, 5, 4, 6}
	budget := 0.0
	fs := make([]utility.Func, len(knees))
	for i, k := range knees {
		fs[i] = utility.CappedLinear{Slope: 1, Knee: k, C: 15}
		budget += k
	}
	r := Concave(fs, budget)
	feasible(t, fs, r.Alloc, budget)
	if math.Abs(r.Total-budget) > 1e-6 {
		t.Errorf("total %v, want %v", r.Total, budget)
	}
	for i, k := range knees {
		if math.Abs(r.Alloc[i]-k) > 1e-6 {
			t.Errorf("thread %d alloc %v, want knee %v", i, r.Alloc[i], k)
		}
	}
}

func TestConcavePlateauRedistribution(t *testing.T) {
	// Two identical capped-linear threads; budget covers only 1.5 knees.
	// Any split with both below knee and summing to budget is optimal.
	fs := []utility.Func{
		utility.CappedLinear{Slope: 2, Knee: 10, C: 100},
		utility.CappedLinear{Slope: 2, Knee: 10, C: 100},
	}
	budget := 15.0
	r := Concave(fs, budget)
	feasible(t, fs, r.Alloc, budget)
	if math.Abs(r.Total-30) > 1e-6 {
		t.Errorf("total %v, want 30 (= 2*budget on slope-2 segment)", r.Total)
	}
	if sum := r.Alloc[0] + r.Alloc[1]; math.Abs(sum-budget) > 1e-6 {
		t.Errorf("sum %v, want %v", sum, budget)
	}
}

func TestConcaveMatchesGreedyGroundTruth(t *testing.T) {
	// On mixed smooth instances the λ-bisection optimum must match Fox's
	// unit greedy at fine granularity.
	fs := []utility.Func{
		utility.Log{Scale: 5, Shift: 30, C: 200},
		utility.SatExp{Scale: 4, K: 50, C: 200},
		utility.Power{Scale: 1, Beta: 0.5, C: 200},
		utility.Saturating{Scale: 6, K: 80, C: 200},
	}
	budget := 250.0
	want := Greedy(fs, budget, 0.05).Total
	got := Concave(fs, budget).Total
	if got < want-0.02*want {
		t.Errorf("Concave total %v < greedy ground truth %v", got, want)
	}
}

func TestGreedyExactOnLinear(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 3, C: 10},
		utility.Linear{Slope: 1, C: 10},
	}
	r := Greedy(fs, 10, 1)
	// All 10 units should go to the slope-3 thread.
	if r.Alloc[0] != 10 || r.Alloc[1] != 0 {
		t.Errorf("alloc %v, want [10 0]", r.Alloc)
	}
	if r.Total != 30 {
		t.Errorf("total %v, want 30", r.Total)
	}
}

func TestGreedyRespectsCaps(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 3, C: 4},
		utility.Linear{Slope: 1, C: 100},
	}
	r := Greedy(fs, 10, 1)
	feasible(t, fs, r.Alloc, 10)
	if r.Alloc[0] != 4 {
		t.Errorf("capped thread got %v, want 4", r.Alloc[0])
	}
	if r.Alloc[1] != 6 {
		t.Errorf("second thread got %v, want 6", r.Alloc[1])
	}
}

func TestGreedyDegenerate(t *testing.T) {
	if r := Greedy(nil, 10, 1); r.Total != 0 {
		t.Errorf("empty: %+v", r)
	}
	fs := []utility.Func{utility.Linear{Slope: 1, C: 10}}
	if r := Greedy(fs, 10, 0); r.Total != 0 {
		t.Errorf("zero unit: %+v", r)
	}
	if r := Greedy(fs, -1, 1); r.Total != 0 {
		t.Errorf("negative budget: %+v", r)
	}
}

func TestEqualSplit(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 1, C: 100},
		utility.Linear{Slope: 2, C: 100},
		utility.Linear{Slope: 3, C: 100},
	}
	r := EqualSplit(fs, 30)
	for i, a := range r.Alloc {
		if a != 10 {
			t.Errorf("thread %d got %v, want 10", i, a)
		}
	}
	if r.Total != 60 {
		t.Errorf("total %v, want 60", r.Total)
	}
}

func TestEqualSplitCaps(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 1, C: 5},
		utility.Linear{Slope: 1, C: 100},
	}
	r := EqualSplit(fs, 40)
	if r.Alloc[0] != 5 || r.Alloc[1] != 20 {
		t.Errorf("alloc %v, want [5 20]", r.Alloc)
	}
}

func TestRandomSplitFeasible(t *testing.T) {
	r := rng.New(1)
	fs := []utility.Func{
		utility.Linear{Slope: 1, C: 1000},
		utility.Linear{Slope: 2, C: 1000},
		utility.Linear{Slope: 3, C: 1000},
	}
	for trial := 0; trial < 100; trial++ {
		res := RandomSplit(fs, 100, r)
		feasible(t, fs, res.Alloc, 100)
	}
}

func TestRandomSplitSingleThreadIsRandomShare(t *testing.T) {
	// The paper's random allocation gives even a lone thread a random
	// share of C, not all of it — that is why UR is suboptimal at β = 1.
	r := rng.New(2)
	fs := []utility.Func{utility.Linear{Slope: 1, C: 1000}}
	sum, full := 0.0, 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		res := RandomSplit(fs, 1000, r)
		feasible(t, fs, res.Alloc, 1000)
		sum += res.Alloc[0]
		if res.Alloc[0] > 999.999 {
			full++
		}
	}
	if mean := sum / trials; math.Abs(mean-500) > 25 {
		t.Errorf("lone-thread mean share %v, want ~500 (uniform on [0, C])", mean)
	}
	if full > 5 {
		t.Errorf("lone thread received full capacity %d/%d times", full, trials)
	}
}

func TestRandomSplitDeterministicPerSeed(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 1, C: 1000},
		utility.Linear{Slope: 2, C: 1000},
	}
	a := RandomSplit(fs, 50, rng.New(7))
	b := RandomSplit(fs, 50, rng.New(7))
	for i := range a.Alloc {
		if a.Alloc[i] != b.Alloc[i] {
			t.Fatalf("same seed diverged: %v vs %v", a.Alloc, b.Alloc)
		}
	}
}

func TestTotalValue(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 2, C: 10},
		utility.Linear{Slope: 3, C: 10},
	}
	if got := TotalValue(fs, []float64{1, 2}); got != 8 {
		t.Errorf("TotalValue = %v, want 8", got)
	}
}

// Property: Concave is feasible and at least as good as equal split for
// random log-utility instances (equal split is feasible, so the optimum
// must dominate it).
func TestConcaveDominatesEqualSplitProperty(t *testing.T) {
	r := rng.New(99)
	prop := func(seed uint32) bool {
		tr := r.Split(uint64(seed))
		n := 2 + tr.Intn(8)
		fs := make([]utility.Func, n)
		for i := range fs {
			fs[i] = utility.Log{
				Scale: tr.Uniform(0.5, 10),
				Shift: tr.Uniform(1, 100),
				C:     1000,
			}
		}
		budget := tr.Uniform(10, 3000)
		opt := Concave(fs, budget)
		eq := EqualSplit(fs, budget)
		sum := 0.0
		for i, a := range opt.Alloc {
			if a < -1e-9 || a > fs[i].Cap()+1e-9 {
				return false
			}
			sum += a
		}
		if sum > budget*(1+1e-9) {
			return false
		}
		return opt.Total >= eq.Total-1e-6*(1+eq.Total)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Concave matches fine-grained Greedy within 2% on random
// mixed instances.
func TestConcaveNearGreedyProperty(t *testing.T) {
	base := rng.New(123)
	for trial := 0; trial < 25; trial++ {
		tr := base.Split(uint64(trial))
		n := 2 + tr.Intn(5)
		fs := make([]utility.Func, n)
		for i := range fs {
			switch tr.Intn(3) {
			case 0:
				fs[i] = utility.Log{Scale: tr.Uniform(1, 5), Shift: tr.Uniform(5, 50), C: 100}
			case 1:
				fs[i] = utility.SatExp{Scale: tr.Uniform(1, 5), K: tr.Uniform(5, 50), C: 100}
			default:
				fs[i] = utility.Saturating{Scale: tr.Uniform(1, 5), K: tr.Uniform(5, 50), C: 100}
			}
		}
		budget := tr.Uniform(20, 250)
		got := Concave(fs, budget).Total
		want := Greedy(fs, budget, 0.02).Total
		if got < want*(1-0.02) {
			t.Errorf("trial %d: Concave %v < 0.98×Greedy %v", trial, got, want)
		}
	}
}

func TestGainHeapOrdering(t *testing.T) {
	h := newGainHeap(8)
	for _, g := range []float64{3, 1, 4, 1.5, 9, 2.6} {
		h.push(gainItem{gain: g})
	}
	prev := math.Inf(1)
	for h.len() > 0 {
		it := h.pop()
		if it.gain > prev {
			t.Fatalf("heap pop out of order: %v after %v", it.gain, prev)
		}
		prev = it.gain
	}
}

func BenchmarkConcaveN100(b *testing.B) {
	fs := make([]utility.Func, 100)
	for i := range fs {
		fs[i] = utility.Log{Scale: float64(i%7 + 1), Shift: float64(i%13 + 5), C: 1000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Concave(fs, 8000)
	}
}

func BenchmarkGreedyN100(b *testing.B) {
	fs := make([]utility.Func, 100)
	for i := range fs {
		fs[i] = utility.Log{Scale: float64(i%7 + 1), Shift: float64(i%13 + 5), C: 1000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(fs, 8000, 1)
	}
}
