package serveutil

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestHealthSplit(t *testing.T) {
	var h Health
	get := func(fn http.HandlerFunc) (int, string) {
		rec := httptest.NewRecorder()
		fn(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		return rec.Code, strings.TrimSpace(rec.Body.String())
	}
	if code, body := get(h.LivenessHandler()); code != 200 || body != "ok" {
		t.Fatalf("liveness = %d %q, want 200 ok", code, body)
	}
	if code, body := get(h.ReadinessHandler()); code != 200 || body != "ok" {
		t.Fatalf("readiness before drain = %d %q, want 200 ok", code, body)
	}
	h.StartDrain()
	h.StartDrain() // idempotent
	if !h.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	if code, body := get(h.ReadinessHandler()); code != 503 || body != "draining" {
		t.Fatalf("readiness during drain = %d %q, want 503 draining", code, body)
	}
	if code, _ := get(h.LivenessHandler()); code != 200 {
		t.Fatalf("liveness during drain = %d, want 200", code)
	}
}

func TestWithObservability(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "short and stout")
	})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/brew", nil)
	req.Header.Set(HeaderRequestID, "req-123")
	WithObservability(log, inner).ServeHTTP(rec, req)
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d, want 418", rec.Code)
	}
	if got := rec.Header().Get(HeaderRequestID); got != "req-123" {
		t.Fatalf("request ID not echoed: %q", got)
	}
	line := buf.String()
	for _, want := range []string{`"request_id":"req-123"`, `"status":418`, `"path":"/brew"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log missing %s: %s", want, line)
		}
	}

	// No caller-supplied ID: one must be minted and echoed.
	rec = httptest.NewRecorder()
	WithObservability(log, inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Header().Get(HeaderRequestID) == "" {
		t.Fatal("no request ID minted")
	}
}

// TestListenAndServeLifecycle runs the real lifecycle: bind :0, serve a
// request, SIGTERM, observe the readiness flip inside the drain grace,
// and a clean nil return.
func TestListenAndServeLifecycle(t *testing.T) {
	var h Health
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", h.ReadinessHandler())
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "pong") })
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var stderr bytes.Buffer
	go func() {
		done <- ListenAndServe(ServeConfig{
			Name: "testsrv", Addr: "127.0.0.1:0", Handler: mux,
			Stderr: &stderr, Ready: ready, Health: &h, DrainGrace: 2 * time.Second,
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v (stderr: %s)", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("never ready")
	}
	resp, err := http.Get("http://" + addr + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ping = %d", resp.StatusCode)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(1500 * time.Millisecond)
	for {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusServiceUnavailable {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped during drain grace")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ListenAndServe returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no clean shutdown")
	}
	if !strings.Contains(stderr.String(), "testsrv: listening on http://") {
		t.Fatalf("missing listening line: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Fatalf("missing draining line: %s", stderr.String())
	}
}

func TestListenAndServeBadAddr(t *testing.T) {
	err := ListenAndServe(ServeConfig{Name: "x", Addr: "256.256.256.256:1", Stderr: io.Discard})
	if err == nil {
		t.Fatal("expected listen error")
	}
}
