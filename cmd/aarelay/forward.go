package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"aa/internal/cache"
	"aa/internal/engine"
	"aa/internal/instio"
	"aa/internal/router"
	"aa/internal/serveutil"
	"aa/internal/telemetry"
)

// Relay telemetry (aa_relay_*). Registered eagerly so /metrics shows
// them at zero before the first request.
var (
	metricRequests    = telemetry.Default.Counter("aa_relay_requests_total")
	metricRateLimited = telemetry.Default.Counter("aa_relay_rate_limited_total")
	metricFailovers   = telemetry.Default.Counter("aa_relay_failovers_total")
	metricNoNodes     = telemetry.Default.Counter("aa_relay_no_nodes_total")
	metricBusy        = telemetry.Default.Counter("aa_relay_all_busy_total")
)

// admit applies the per-client token bucket; a false return means the
// 429 (with Retry-After) is already written.
func (rl *relay) admit(w http.ResponseWriter, r *http.Request) bool {
	if rl.limiter == nil {
		return true
	}
	key := r.RemoteAddr
	if host, _, err := net.SplitHostPort(key); err == nil {
		key = host // one bucket per client, not per connection
	}
	ok, wait := rl.limiter.Take(key)
	if ok {
		return true
	}
	metricRateLimited.Inc()
	w.Header().Set("Retry-After", retryAfterSeconds(wait))
	http.Error(w, "rate limit exceeded, retry later", http.StatusTooManyRequests)
	return false
}

// retryAfterSeconds renders a wait as the integral seconds form of
// Retry-After, rounded up and never below 1 (a "0" invites an instant
// retry, defeating the limiter).
func retryAfterSeconds(wait time.Duration) string {
	s := int64(math.Ceil(wait.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// handleSolve routes one solve: admission, relay-cache lookup, then the
// failover forward loop. The request body is buffered up front — it is
// re-sent on every failover attempt and fingerprinted for the cache.
func (rl *relay) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an instance (see internal/instio for the JSON format)", http.StatusMethodNotAllowed)
		return
	}
	metricRequests.Inc()
	if !rl.admit(w, r) {
		return
	}
	if rl.maxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, rl.maxBodyBytes)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}

	// Relay-side exact-hit cache: canonicalize with the cache's key and
	// answer byte-identically without touching a node. Uncacheable
	// requests (bad params, undecodable bodies, check=1, cache=bypass)
	// fall through to forwarding — the node is the authority on errors.
	ck, canon, cacheable := rl.cacheKey(r, body)
	if cacheable {
		if e, ok := rl.cache.Get(ck); ok {
			writeCachedAssignment(w, e, canon)
			return
		}
	} else if r.URL.Query().Get("cache") == "bypass" {
		rl.cache.NoteBypass()
	}

	status, respBody, ok := rl.forwardSolve(w, r, body)
	if !ok {
		return // forwardSolve wrote the error
	}
	if cacheable && status == http.StatusOK {
		rl.storeResponse(ck, canon, r, respBody)
	}
}

// forwardSolve runs the failover loop: pick a node, forward, and on
// transport errors (node marked down, routing reacts immediately) or
// backpressure (429: the engine queue is full; 503: the node is
// draining) move to the next node. Success pipes the node's response —
// whatever its status — through unchanged and returns it for caching.
func (rl *relay) forwardSolve(w http.ResponseWriter, r *http.Request, body []byte) (int, []byte, bool) {
	exclude := make(map[string]bool)
	sawBusy := false
	attempts := 0
	for {
		node, err := rl.rt.Pick(exclude)
		if err != nil {
			// Every node tried or unready. All-busy is backpressure the
			// client can retry; otherwise the cluster is unreachable.
			if sawBusy {
				metricBusy.Inc()
				w.Header().Set("Retry-After", "1")
				http.Error(w, "all nodes at capacity, retry later", http.StatusTooManyRequests)
			} else {
				metricNoNodes.Inc()
				http.Error(w, "no ready nodes", http.StatusBadGateway)
			}
			return 0, nil, false
		}
		if attempts > 0 {
			metricFailovers.Inc()
		}
		attempts++
		resp, err := rl.forwardOnce(r, node, "/solve", body)
		rl.rt.Done(node.Addr)
		if err != nil {
			rl.rt.ObserveFailure(node.Addr)
			exclude[node.Addr] = true
			continue
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			// engine.ErrQueueFull surfaced as the node's 429: the relay's
			// backpressure/load signal. Spill to the next node.
			drainBody(resp)
			exclude[node.Addr] = true
			sawBusy = true
			continue
		case http.StatusServiceUnavailable:
			// The node is draining behind our probe's back.
			drainBody(resp)
			exclude[node.Addr] = true
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			rl.rt.ObserveFailure(node.Addr)
			exclude[node.Addr] = true
			continue
		}
		copyResponseHeaders(w, resp)
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(respBody)
		return resp.StatusCode, respBody, true
	}
}

// forwardOnce sends one attempt to node, propagating the trace context
// (the relay's http.request span — or, traced, a per-attempt
// relay.forward child) and the request ID so one client request is one
// connected trace tree across relay and nodes.
func (rl *relay) forwardOnce(r *http.Request, node router.Node, path string, body []byte) (*http.Response, error) {
	ctx := r.Context()
	var span telemetry.Span
	traced := telemetry.TraceEnabled()
	if traced {
		ctx, span = telemetry.StartSpanCtx(ctx, "relay.forward",
			telemetry.String("node", node.Name),
			telemetry.String("addr", node.Addr))
	}
	url := "http://" + node.Addr + path
	if q := r.URL.RawQuery; q != "" {
		url += "?" + q
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		if traced {
			span.End()
		}
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := r.Header.Get(serveutil.HeaderRequestID); id != "" {
		req.Header.Set(serveutil.HeaderRequestID, id)
	}
	if sc := telemetry.SpanFromContext(ctx); sc.Valid() {
		req.Header.Set(serveutil.HeaderTraceparent, sc.Traceparent())
	}
	resp, err := rl.client.Do(req)
	if traced {
		if resp != nil {
			span.AddAttrs(telemetry.Int("status", resp.StatusCode))
		}
		span.AddAttrs(telemetry.Bool("ok", err == nil))
		span.End()
	}
	return resp, err
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}

// copyResponseHeaders forwards the node's response headers, keeping the
// relay's own traceparent/request ID (already set by the observability
// layer) authoritative for the client.
func copyResponseHeaders(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		switch http.CanonicalHeaderKey(k) {
		case serveutil.HeaderRequestID, http.CanonicalHeaderKey(serveutil.HeaderTraceparent):
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
}

// cacheKey derives the relay cache key for a /solve request, or reports
// it uncacheable. Mirrors the engine's cacheParams contract: the key is
// the keyed canonical fingerprint plus the output-relevant parameters,
// with the seed folded in only for stochastic backends.
func (rl *relay) cacheKey(r *http.Request, body []byte) (cache.Key, *cache.Canonical, bool) {
	if rl.cache.Mode() == cache.ModeOff {
		return cache.Key{}, nil, false
	}
	q := r.URL.Query()
	if q.Get("check") == "1" || q.Get("cache") == "bypass" {
		return cache.Key{}, nil, false
	}
	backend := q.Get("backend")
	if backend == "" {
		backend = "a2" // aaserve's default backend flag default
	}
	bk, ok := engine.Lookup(backend)
	if !ok {
		return cache.Key{}, nil, false
	}
	p := cache.Params{Backend: bk.Name}
	if v := q.Get("maxnodes"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return cache.Key{}, nil, false
		}
		p.MaxNodes = n
	}
	if bk.Stochastic {
		p.Seed = 1 // aaserve's default
		if v := q.Get("seed"); v != "" {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return cache.Key{}, nil, false
			}
			p.Seed = seed
		}
	}
	in, err := instio.Decode(bytes.NewReader(body))
	if err != nil {
		return cache.Key{}, nil, false
	}
	canon, err := cache.CanonicalizeKeyed(in, rl.cache.HashKey())
	if err != nil {
		return cache.Key{}, nil, false
	}
	return cache.RequestKey(canon.Fingerprint(), p), canon, true
}

// storeResponse parses a node's 200 response and stores it in canonical
// thread order under key. Responses that do not parse as an assignment
// of the right arity are silently not cached.
func (rl *relay) storeResponse(key cache.Key, canon *cache.Canonical, r *http.Request, respBody []byte) {
	var a instio.AssignmentJSON
	if err := json.Unmarshal(respBody, &a); err != nil {
		return
	}
	n := len(canon.Perm)
	if len(a.Server) != n || len(a.Alloc) != n {
		return
	}
	e := &cache.Entry{
		Canon:      canon,
		Server:     make([]int, n),
		Alloc:      make([]float64, n),
		Utility:    a.Utility,
		AltUtility: math.NaN(),
		Bound:      a.Bound,
	}
	for k, orig := range canon.Perm {
		e.Server[k] = a.Server[orig]
		e.Alloc[k] = a.Alloc[orig]
	}
	// Lambda stays 0: relay entries are exact-hit only, never
	// warm-start seeds (the relay has no solver to repair with).
	rl.cache.Put(key, 0, e)
}

// writeCachedAssignment serves a cache hit byte-identically to the
// populating node response: the canonical assignment is un-permuted
// through this request's own Perm and re-encoded with the exact encoder
// settings aaserve uses — Go's shortest-round-trip float encoding makes
// decode→re-encode byte-stable, which the relay smoke pins end to end.
func writeCachedAssignment(w http.ResponseWriter, e *cache.Entry, canon *cache.Canonical) {
	n := len(canon.Perm)
	out := instio.AssignmentJSON{
		Server:  make([]int, n),
		Alloc:   make([]float64, n),
		Utility: e.Utility,
		Bound:   e.Bound,
	}
	for k, orig := range canon.Perm {
		out.Server[orig] = e.Server[k]
		out.Alloc[orig] = e.Alloc[k]
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// handleBatch streams /solve/batch through a single node. No mid-stream
// failover: the request body is consumed as it forwards, so a node loss
// mid-batch aborts the connection (the client sees a truncated body,
// never a fabricated success) rather than replaying a half-read stream.
func (rl *relay) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON array of instances", http.StatusMethodNotAllowed)
		return
	}
	metricRequests.Inc()
	if !rl.admit(w, r) {
		return
	}
	node, err := rl.rt.Pick(nil)
	if err != nil {
		metricNoNodes.Inc()
		http.Error(w, "no ready nodes", http.StatusBadGateway)
		return
	}
	defer rl.rt.Done(node.Addr)

	// The node streams its response while still reading our forwarded
	// body; full duplex keeps the relay from closing the upstream read.
	_ = http.NewResponseController(w).EnableFullDuplex()
	ctx := r.Context()
	url := "http://" + node.Addr + "/solve/batch"
	if q := r.URL.RawQuery; q != "" {
		url += "?" + q
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := r.Header.Get(serveutil.HeaderRequestID); id != "" {
		req.Header.Set(serveutil.HeaderRequestID, id)
	}
	if sc := telemetry.SpanFromContext(ctx); sc.Valid() {
		req.Header.Set(serveutil.HeaderTraceparent, sc.Traceparent())
	}
	resp, err := rl.client.Do(req)
	if err != nil {
		rl.rt.ObserveFailure(node.Addr)
		http.Error(w, fmt.Sprintf("forwarding batch: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	copyResponseHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	if err := flushCopy(w, resp.Body); err != nil {
		// Bytes are on the wire; aborting the connection is the only
		// honest signal left (same contract as the node's own streamer).
		panic(http.ErrAbortHandler)
	}
}

// flushCopy copies src to w, flushing after every chunk so batch
// elements reach the client as the node produces them.
func flushCopy(w http.ResponseWriter, src io.Reader) error {
	rc := http.NewResponseController(w)
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return werr
			}
			_ = rc.Flush()
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// handleNodes reports the router's node-set snapshot.
func (rl *relay) handleNodes(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Strategy router.Strategy     `json:"strategy"`
		Nodes    []router.NodeStatus `json:"nodes"`
	}{rl.rt.Strategy(), rl.rt.Snapshot()})
}

// handleBackends proxies the registry listing from the first ready node
// (every node runs the same binary, so any node's answer is canonical).
func (rl *relay) handleBackends(w http.ResponseWriter, r *http.Request) {
	exclude := make(map[string]bool)
	for {
		node, err := rl.rt.Pick(exclude)
		if err != nil {
			http.Error(w, "no ready nodes", http.StatusBadGateway)
			return
		}
		resp, err := rl.client.Get("http://" + node.Addr + "/backends")
		rl.rt.Done(node.Addr)
		if err != nil {
			rl.rt.ObserveFailure(node.Addr)
			exclude[node.Addr] = true
			continue
		}
		defer resp.Body.Close()
		copyResponseHeaders(w, resp)
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}
}
