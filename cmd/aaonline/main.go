// Command aaonline simulates the dynamic AA setting (§VIII future
// work): random thread churn (arrivals, departures, utility drift) on a
// homogeneous cluster, handled by three rebalancing policies — full
// re-solve on every event, never-migrate incremental repair, and a
// hybrid that rebuilds when measured quality drops below a threshold of
// the super-optimal bound. It sweeps per-migration cost and prints the
// net value (utility integral minus migration costs) per policy.
//
// Usage:
//
//	aaonline [-m 4] [-c 100] [-events 300] [-seed 1]
//	         [-threshold 0.828] [-costs 0,1,5,20,100,500]
//	         [-workers 0] [-timeout 0] [-csv dir] [-check]
//	         [-metrics-addr host:port] [-trace-out file.jsonl]
//
// The (policy × cost) simulation grid fans out across a solver pool
// with -workers goroutines (0 = GOMAXPROCS); the tables are identical
// for every worker count. -timeout bounds the whole run. -csv writes
// both tables as CSV files into the given directory. -metrics-addr
// serves live /metrics, /vars and /debug/pprof while the simulation
// runs; -trace-out appends solver-stage span events as JSONL.
// -check (or AA_CHECK=1) runs the cap-aware feasibility invariants of
// internal/check on the live state after every event, failing the run
// on the first violation and printing a check summary at exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"aa/internal/cliutil"
	"aa/internal/online"
	"aa/internal/rng"
	"aa/internal/solverpool"
	"aa/internal/tableio"
	"aa/internal/utility"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "aaonline: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aaonline", flag.ContinueOnError)
	var (
		m         = fs.Int("m", 4, "number of servers")
		c         = fs.Float64("c", 100, "capacity per server")
		events    = fs.Int("events", 300, "number of churn events")
		seed      = fs.Uint64("seed", 1, "random seed")
		threshold = fs.Float64("threshold", 0.828, "hybrid rebuild threshold (fraction of the SO bound)")
		costsFlag = fs.String("costs", "0,1,5,20,100,500", "comma-separated per-migration costs to sweep")
		workers   = fs.Int("workers", 0, "solver pool workers (0 = GOMAXPROCS)")
		timeout   = fs.Duration("timeout", 0, "overall deadline for the run (0 = none)")
		csvDir    = fs.String("csv", "", "directory to write the summary and sweep tables as CSV (optional)")
	)
	var common cliutil.Common
	common.AddFlags(fs)
	if err := cliutil.Parse(fs, args, stderr); err != nil {
		if errors.Is(err, cliutil.ErrHelp) {
			return nil
		}
		return err
	}
	if *events < 1 {
		return fmt.Errorf("need at least one event")
	}
	shutdown, err := common.Start("aaonline", stderr)
	if err != nil {
		return err
	}
	defer shutdown()

	costs, err := parseCosts(*costsFlag)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	r := rng.New(*seed)
	timeline := buildTimeline(r, *c, *events)
	horizon := timeline[len(timeline)-1].Time + 1

	policies := []online.Policy{
		online.FullResolve{},
		online.Hybrid{Threshold: *threshold},
		online.Incremental{},
	}

	// Every (policy, cost) simulation is independent; fan the whole grid
	// out across the pool and collect results into slots keyed by grid
	// position, so the printed tables do not depend on scheduling. The
	// extra column 0 is the cost-0 summary table.
	grid, err := simulateGrid(ctx, *workers, *m, *c, timeline, policies, costs, horizon)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%d events over %.0f time units, m=%d, C=%g\n\n", *events, horizon, *m, *c)
	base := tableio.New("policy summary (migration cost 0)",
		"policy", "utility-integral", "migrations")
	for pi, p := range policies {
		res := grid[pi][0]
		base.AddRow(p.Name(),
			fmt.Sprintf("%.1f", res.UtilityIntegral),
			fmt.Sprintf("%d", res.Migrations))
	}
	if err := base.WriteASCII(stdout); err != nil {
		return err
	}

	headers := []string{"cost"}
	for _, p := range policies {
		headers = append(headers, p.Name())
	}
	sweep := tableio.New("\nnet value = utility − cost × migrations", headers...)
	for ci, cost := range costs {
		cells := []string{tableio.FormatFloat(cost, 1)}
		for pi := range policies {
			cells = append(cells, fmt.Sprintf("%.1f", grid[pi][ci+1].Net))
		}
		sweep.AddRow(cells...)
	}
	if err := sweep.WriteASCII(stdout); err != nil {
		return err
	}
	if *csvDir != "" {
		if err := writeCSV(*csvDir, "policy-summary", base); err != nil {
			return err
		}
		if err := writeCSV(*csvDir, "net-value-sweep", sweep); err != nil {
			return err
		}
	}
	return nil
}

// writeCSV writes one table into dir/name.csv, propagating Close errors
// the same way aabench does: the CSV is the artifact, and a failed
// flush must not be dropped silently.
func writeCSV(dir, name string, tbl *tableio.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := tbl.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// simulateGrid runs every (policy, cost) cell through a solver pool and
// returns grid[policy][cell], where cell 0 is migration cost 0 (the
// summary table) and cell ci+1 is costs[ci]. The first simulation error
// cancels the remaining cells and is returned.
func simulateGrid(ctx context.Context, workers, m int, c float64, timeline []online.Event, policies []online.Policy, costs []float64, horizon float64) ([][]online.Result, error) {
	pool := solverpool.New(solverpool.Options{Workers: workers})
	defer pool.Close()

	grid := make([][]online.Result, len(policies))
	for pi := range grid {
		grid[pi] = make([]online.Result, len(costs)+1)
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(e error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		mu.Unlock()
		cancel()
	}
	for pi := range policies {
		for cell := 0; cell <= len(costs); cell++ {
			pi, cell := pi, cell
			cost := 0.0
			if cell > 0 {
				cost = costs[cell-1]
			}
			wg.Add(1)
			task := func(tctx context.Context) error {
				defer wg.Done()
				if err := tctx.Err(); err != nil {
					fail(err)
					return err
				}
				res, err := online.Simulate(m, c, timeline, policies[pi], cost, horizon)
				if err != nil {
					fail(err)
					return err
				}
				grid[pi][cell] = res
				return nil
			}
			if err := pool.Enqueue(gctx, task); err != nil {
				wg.Done()
				fail(err)
			}
		}
	}
	wg.Wait()
	return grid, firstErr
}

// buildTimeline mirrors the churn generator used by the online tests.
func buildTimeline(r *rng.Rand, c float64, events int) []online.Event {
	var out []online.Event
	nextID := 0
	var active []int
	t := 0.0
	for len(out) < events {
		t += r.Uniform(0.5, 3)
		switch {
		case len(active) < 4 || r.Float64() < 0.4:
			out = append(out, online.Event{
				Time: t, Kind: online.Arrive, ID: nextID, Util: randomUtility(r, c)})
			active = append(active, nextID)
			nextID++
		case r.Float64() < 0.5:
			k := r.Intn(len(active))
			out = append(out, online.Event{Time: t, Kind: online.Depart, ID: active[k]})
			active = append(active[:k], active[k+1:]...)
		default:
			k := r.Intn(len(active))
			out = append(out, online.Event{
				Time: t, Kind: online.Drift, ID: active[k], Util: randomUtility(r, c)})
		}
	}
	return out
}

func randomUtility(r *rng.Rand, c float64) utility.Func {
	switch r.Intn(3) {
	case 0:
		return utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, c/4), C: c}
	case 1:
		return utility.SatExp{Scale: r.Uniform(0.5, 5), K: r.Uniform(c/30, c/3), C: c}
	default:
		return utility.Power{Scale: r.Uniform(0.3, 2), Beta: r.Uniform(0.3, 0.9), C: c}
	}
}

func parseCosts(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad cost %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no costs given")
	}
	return out, nil
}
