package main

import (
	"net/http"
	"syscall"
	"testing"
	"time"
)

// TestReadyzFlipsDuringDrain pins the liveness/readiness split across a
// SIGTERM drain: /readyz must flip to 503 as soon as the drain starts
// (while -drain-grace holds the listener open), and /healthz must stay
// 200 throughout — the relay ejects on readiness, orchestrators kill on
// liveness, and conflating the two kills draining nodes mid-flight.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain-grace", "3s"}, testWriter{t}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz before drain = %d, want 200", got)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The readiness flip races only signal delivery, not the drain
	// grace: poll briefly, well inside the 3s window the listener stays
	// open.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := get("/readyz"); got == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 during drain grace")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness must survive drain)", got)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}
