package alloc

import (
	"math"
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

func TestDPExactMatchesGreedyOnConcave(t *testing.T) {
	base := rng.New(41)
	for trial := 0; trial < 10; trial++ {
		r := base.Split(uint64(trial))
		n := 2 + r.Intn(5)
		fs := make([]utility.Func, n)
		for i := range fs {
			switch r.Intn(3) {
			case 0:
				fs[i] = utility.Log{Scale: r.Uniform(1, 5), Shift: r.Uniform(2, 20), C: 60}
			case 1:
				fs[i] = utility.SatExp{Scale: r.Uniform(1, 5), K: r.Uniform(5, 30), C: 60}
			default:
				fs[i] = utility.CappedLinear{Slope: r.Uniform(0.1, 2), Knee: r.Uniform(5, 50), C: 60}
			}
		}
		budget := r.Uniform(20, 100)
		dp := DPExact(fs, budget, 1)
		greedy := Greedy(fs, budget, 1)
		if math.Abs(dp.Total-greedy.Total) > 1e-9*(1+dp.Total) {
			t.Errorf("trial %d: DP %v != greedy %v (greedy is exact for concave)",
				trial, dp.Total, greedy.Total)
		}
	}
}

func TestDPExactFeasible(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 1, C: 10},
		utility.Linear{Slope: 2, C: 10},
	}
	res := DPExact(fs, 15, 1)
	sum := 0.0
	for i, a := range res.Alloc {
		if a < 0 || a > fs[i].Cap() {
			t.Errorf("alloc %d = %v out of range", i, a)
		}
		sum += a
	}
	if sum > 15 {
		t.Errorf("sum %v > budget", sum)
	}
	// Slope-2 thread takes its cap, slope-1 gets the remaining 5.
	if res.Alloc[1] != 10 || res.Alloc[0] != 5 {
		t.Errorf("alloc = %v, want [5 10]", res.Alloc)
	}
	if res.Total != 25 {
		t.Errorf("total = %v, want 25", res.Total)
	}
}

// cliff is a deliberately non-concave utility: worthless below the
// threshold, jumps to High at it. Greedy cannot see past the flat start;
// DP can.
type cliff struct {
	at   float64
	high float64
	c    float64
}

func (f cliff) Value(x float64) float64 {
	if x >= f.at {
		return f.high
	}
	return 0
}
func (f cliff) Deriv(float64) float64 { return 0 }
func (f cliff) Cap() float64          { return f.c }

func TestDPExactBeatsGreedyOnCliff(t *testing.T) {
	fs := []utility.Func{
		cliff{at: 8, high: 100, c: 10},
		utility.Linear{Slope: 1, C: 10},
	}
	dp := DPExact(fs, 10, 1)
	greedy := Greedy(fs, 10, 1)
	// DP: 8 units to the cliff (100) + 2 to linear (2) = 102.
	if dp.Total != 102 {
		t.Errorf("DP total %v, want 102", dp.Total)
	}
	if greedy.Total >= dp.Total {
		t.Errorf("greedy %v should lose to DP %v on non-concave input", greedy.Total, dp.Total)
	}
}

func TestDPExactDegenerate(t *testing.T) {
	if res := DPExact(nil, 10, 1); res.Total != 0 {
		t.Error("empty")
	}
	fs := []utility.Func{utility.Linear{Slope: 1, C: 10}}
	if res := DPExact(fs, 0, 1); res.Total != 0 {
		t.Error("zero budget")
	}
	if res := DPExact(fs, 10, 0); res.Total != 0 {
		t.Error("zero unit")
	}
}

func TestDPExactConcaveCrossCheck(t *testing.T) {
	// λ-bisection on a fine grid stays within a small tolerance of the
	// integer-exact DP optimum.
	fs := []utility.Func{
		utility.Log{Scale: 4, Shift: 10, C: 100},
		utility.Power{Scale: 1, Beta: 0.6, C: 100},
		utility.SatExp{Scale: 3, K: 25, C: 100},
	}
	dp := DPExact(fs, 120, 0.5)
	cc := Concave(fs, 120)
	if cc.Total < dp.Total-0.01*(1+dp.Total) {
		t.Errorf("Concave %v below DP ground truth %v", cc.Total, dp.Total)
	}
}
