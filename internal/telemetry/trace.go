package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// The trace sink is process-wide, like the registry: spans and events
// append JSONL records to the writer installed with SetTraceWriter.
// Writes are serialized by a mutex; with no writer installed, StartSpan
// and Event are a single atomic pointer load.

type traceSink struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

var sink atomic.Pointer[traceSink]

// SetTraceWriter installs w as the JSONL trace destination (nil
// removes it). The caller owns w and closes it after removing it here.
func SetTraceWriter(w io.Writer) {
	if w == nil {
		sink.Store(nil)
		return
	}
	sink.Store(&traceSink{w: w, enc: json.NewEncoder(w)})
}

// TraceEnabled reports whether a trace writer is installed. Hot paths
// guard span creation behind it.
func TraceEnabled() bool { return sink.Load() != nil }

// Attr is one key/value attribute on a span or event.
type Attr struct {
	Key string
	Val any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Val: v} }

// record is the JSONL schema shared by spans and events. Times are
// Unix microseconds; Dur is microseconds and present only on spans.
type record struct {
	Type  string         `json:"type"` // "span" or "event"
	Name  string         `json:"name"`
	TS    int64          `json:"ts_us"`
	Dur   float64        `json:"dur_us,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

func emit(rec record) {
	s := sink.Load()
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Encode ignores errors deliberately: a full disk must not take the
	// solver down, and there is no caller to report to mid-solve.
	_ = s.enc.Encode(rec)
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// Span is an in-flight trace span. The zero Span (returned when tracing
// is off) is inert: End is a no-op.
type Span struct {
	name  string
	start time.Time
	attrs []Attr
}

// StartSpan opens a span. Callers on hot paths should guard with
// TraceEnabled() to avoid constructing the attrs slice when tracing is
// off; StartSpan itself also returns an inert span in that case.
func StartSpan(name string, attrs ...Attr) Span {
	if sink.Load() == nil {
		return Span{}
	}
	return Span{name: name, start: time.Now(), attrs: attrs}
}

// End closes the span and appends its JSONL record.
func (s Span) End() {
	if s.start.IsZero() {
		return
	}
	emit(record{
		Type:  "span",
		Name:  s.name,
		TS:    s.start.UnixMicro(),
		Dur:   float64(time.Since(s.start).Nanoseconds()) / 1e3,
		Attrs: attrMap(s.attrs),
	})
}

// EmitSpan appends a span record for a region that began at start,
// for callers that track the start time themselves (the solver stages
// do, to share one time.Now with their latency histograms).
func EmitSpan(name string, start time.Time, attrs ...Attr) {
	if sink.Load() == nil {
		return
	}
	emit(record{
		Type:  "span",
		Name:  name,
		TS:    start.UnixMicro(),
		Dur:   float64(time.Since(start).Nanoseconds()) / 1e3,
		Attrs: attrMap(attrs),
	})
}

// Event appends an instantaneous JSONL event.
func Event(name string, attrs ...Attr) {
	if sink.Load() == nil {
		return
	}
	emit(record{
		Type:  "event",
		Name:  name,
		TS:    time.Now().UnixMicro(),
		Attrs: attrMap(attrs),
	})
}
