// Command aareplay replays datacenter traces through the AA engine
// pipeline at accelerated virtual time and reports how the allocator
// held up: total utility against the super-optimal bound F̂, virtual
// and wall-clock solve latency percentiles, and queue-depth /
// re-solve-count trajectories.
//
// Usage:
//
//	aareplay [-scenario name|file.json] [-trace file.json] [-seed 1]
//	         [-policy full-resolve|incremental|hybrid] [-grid n]
//	         [-out report.json] [-csv trajectory.csv] [-canonical]
//	         [-addr host:port] [-list] [-v] [-check]
//	         [-metrics-addr host:port] [-trace-out file.jsonl]
//	         [-cache memory] [-cache-size 1024] [-cache-ttl 0]
//	         [-cache-warm-k 8] [-parallel-threshold n]
//
// -scenario names a built-in scenario family (see -list) or a JSON
// scenario file; -trace replays a recorded event trace instead. The
// replay is deterministic: the same scenario and seed produce a
// bit-identical report, except for the "wall" section, which holds
// measured wall-clock timings. -canonical strips that section so the
// output can be byte-compared across runs — the CI determinism gate
// does exactly that (scripts/replay_smoke.sh).
//
// -addr sends every re-solve to a running aaserve instance's /solve
// endpoint instead of the in-process engine (full-resolve policy
// only), replaying the trace against the live service.
//
// -parallel-threshold overrides the instance size at which in-process
// re-solves switch to the parallel Assign2 path (the bigfleet scenarios
// cross the default threshold on every full re-solve; a negative value
// restores the default, a huge one forces serial). Parallel and serial
// solves are byte-identical, so the flag never perturbs the
// determinism contract — only wall-clock timings.
//
// -cache installs the solve-result cache in the in-process engine and
// adds a "cache" section (hit / warm-start rates) to the report. Leave
// -cache-ttl at 0 for deterministic reports: with no expiry the cache
// counters are a pure function of the trace, so the section survives
// -canonical. Ignored with -addr (caching then happens server-side).
//
// The JSON report goes to -out ("-" or empty = stdout); -csv
// additionally writes the trajectory as CSV for plotting. A one-line
// summary is printed to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"aa/internal/cliutil"
	"aa/internal/core"
	"aa/internal/online"
	"aa/internal/replay"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "aareplay: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aareplay", flag.ContinueOnError)
	var (
		scenario  = fs.String("scenario", "diurnal", "built-in scenario name (see -list) or scenario JSON file")
		tracePath = fs.String("trace", "", "replay a recorded trace file instead of a scenario")
		seed      = fs.Uint64("seed", 1, "random seed for trace expansion")
		policy    = fs.String("policy", "", "override the scenario's policy (full-resolve, incremental, hybrid)")
		grid      = fs.Int("grid", 0, "override the trajectory sample count (0 = scenario default)")
		out       = fs.String("out", "", "write the JSON report here ('-' or empty = stdout)")
		csv       = fs.String("csv", "", "also write the trajectory as CSV to this file")
		canonical = fs.Bool("canonical", false, "strip nondeterministic (wall-clock) fields from the report")
		addr      = fs.String("addr", "", "solve via a running aaserve at this address instead of in-process")
		list      = fs.Bool("list", false, "list built-in scenarios and exit")
		verbose   = fs.Bool("v", false, "print the one-line run summary to stderr")

		parallelThreshold = fs.Int("parallel-threshold", 0,
			"instance size at which the core solver goes multi-core (0 = GOMAXPROCS-aware default)")
	)
	var common cliutil.Common
	common.AddFlags(fs)
	var cacheFlags cliutil.CacheFlags
	cacheFlags.AddFlags(fs)
	if err := cliutil.Parse(fs, args, stderr); err != nil {
		if errors.Is(err, cliutil.ErrHelp) {
			return nil
		}
		return err
	}
	if *list {
		return listScenarios(stdout)
	}
	if *parallelThreshold != 0 {
		core.SetParallelThreshold(*parallelThreshold)
	}
	shutdown, err := common.Start("aareplay", stderr)
	if err != nil {
		return err
	}
	defer shutdown()

	sc, events, err := load(*scenario, *tracePath)
	if err != nil {
		return err
	}
	if *policy != "" {
		sc.Policy = *policy
	}
	if *grid > 0 {
		sc.GridPoints = *grid
	}

	solveCache, err := cacheFlags.Build()
	if err != nil {
		return err
	}
	rep, err := replay.Run(sc, replay.RunOptions{
		Seed: *seed, Addr: *addr, Events: events,
		Cache: solveCache, WarmK: cacheFlags.WarmK,
	})
	if err != nil {
		return err
	}
	if *canonical {
		rep = rep.Canonical()
	}
	if *verbose {
		fmt.Fprintln(stderr, rep.Summary())
	}
	if err := writeReport(rep, *out, stdout); err != nil {
		return err
	}
	if *csv != "" {
		if err := writeFile(*csv, rep.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

// load resolves the -scenario / -trace flags into a scenario plus, for
// recorded traces, an explicit event list (nil means "expand from the
// scenario generators").
func load(scenario, tracePath string) (*replay.Scenario, []online.Event, error) {
	if tracePath != "" {
		return replay.LoadTrace(tracePath)
	}
	if strings.ContainsAny(scenario, "/.") {
		sc, err := replay.Load(scenario)
		return sc, nil, err
	}
	sc, ok := replay.Builtin(scenario)
	if !ok {
		return nil, nil, fmt.Errorf("unknown scenario %q (try -list, or pass a .json file)", scenario)
	}
	return sc, nil, nil
}

// listScenarios prints the built-in scenario families, one per line.
func listScenarios(w io.Writer) error {
	names := replay.Builtins()
	sort.Strings(names)
	for _, name := range names {
		sc, _ := replay.Builtin(name)
		kind := "steady"
		switch {
		case sc.InitialThreads > 0:
			kind = "bigfleet"
		case sc.Failures != nil:
			kind = "failures"
		case len(sc.Arrivals.Bursts) > 0:
			kind = "flash-crowd"
		case sc.Arrivals.Diurnal != nil:
			kind = "diurnal"
		case sc.DriftRate > 0:
			kind = "drift"
		}
		fmt.Fprintf(w, "%-10s %-12s servers=%d horizon=%gs policy=%s\n",
			name, kind, sc.Servers, sc.Horizon, sc.Policy)
	}
	return nil
}

// writeReport sends the JSON report to path, with "-" or "" meaning
// stdout.
func writeReport(rep *replay.Report, path string, stdout io.Writer) error {
	if path == "" || path == "-" {
		return rep.WriteJSON(stdout)
	}
	return writeFile(path, rep.WriteJSON)
}

// writeFile writes via fn to path, propagating the Close error: the
// file is the artifact, a failed flush must fail the run.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
