package cachesim

import (
	"testing"

	"aa/internal/rng"
)

func adaptiveGens() []TraceGen {
	return []TraceGen{
		WorkingSet{Lines: 128, LineSize: 64, Base: 0},
		WorkingSet{Lines: 512, LineSize: 64, Base: 1 << 30},
		ZipfReuse{Lines: 1000, S: 1.2, LineSize: 64, Base: 2 << 30},
		Stream{LineSize: 64, Base: 3 << 30},
	}
}

func TestAdaptiveConvergesTowardOffline(t *testing.T) {
	cfg := Config{Sets: 32, Ways: 8, LineSize: 64}
	gens := adaptiveGens()
	r := rng.New(101)

	offline, err := OfflineReference(cfg, 2, gens, DefaultModel, 20000, r.Split(999))
	if err != nil {
		t.Fatal(err)
	}

	ctrl := NewAdaptive(cfg, 2, DefaultModel, len(gens))
	results, err := ctrl.Run(gens, 12, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	// Average of the last three epochs should reach 90% of offline.
	tail := 0.0
	for _, res := range results[len(results)-3:] {
		tail += res.Throughput
	}
	tail /= 3
	if tail < 0.9*offline {
		t.Errorf("adaptive tail throughput %v < 0.9 × offline %v", tail, offline)
	}
	// Budget respected every epoch.
	for e, res := range results {
		perSocket := map[int]int{}
		// Ways slice alone doesn't carry sockets; re-check global sum
		// conservatively: no socket can exceed cfg.Ways, so the total is
		// at most sockets × ways.
		sum := 0
		for _, w := range res.Ways {
			if w < 0 || w > cfg.Ways {
				t.Fatalf("epoch %d: way count %d out of range", e, w)
			}
			sum += w
		}
		if sum > 2*cfg.Ways {
			t.Fatalf("epoch %d: total ways %d exceed cluster budget", e, sum)
		}
		_ = perSocket
	}
}

func TestAdaptiveStarvesStreamer(t *testing.T) {
	// After learning, the streaming thread should hold (nearly) no ways.
	cfg := Config{Sets: 32, Ways: 8, LineSize: 64}
	gens := adaptiveGens()
	ctrl := NewAdaptive(cfg, 2, DefaultModel, len(gens))
	results, err := ctrl.Run(gens, 12, 15000, rng.New(102))
	if err != nil {
		t.Fatal(err)
	}
	final := results[len(results)-1]
	if final.Ways[3] > 2 {
		t.Errorf("streamer still holds %d ways after 12 epochs", final.Ways[3])
	}
}

func TestAdaptiveAdaptsToPhaseChange(t *testing.T) {
	// A thread flips from streaming to a hot working set mid-run; the
	// controller must eventually grant it cache again.
	cfg := Config{Sets: 32, Ways: 8, LineSize: 64}
	phase1 := []TraceGen{
		WorkingSet{Lines: 200, LineSize: 64, Base: 0},
		Stream{LineSize: 64, Base: 1 << 30}, // will flip
	}
	phase2 := []TraceGen{
		phase1[0],
		WorkingSet{Lines: 100, LineSize: 64, Base: 1 << 30},
	}
	ctrl := NewAdaptive(cfg, 1, DefaultModel, 2)
	r := rng.New(103)
	if _, err := ctrl.Run(phase1, 8, 15000, r.Split(1)); err != nil {
		t.Fatal(err)
	}
	// Sample expiry causes temporary excursions mid-run (the controller
	// re-probes old beliefs), so give it enough epochs to settle and
	// judge the best of the last five.
	results, err := ctrl.Run(phase2, 18, 15000, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	tail := results[len(results)-5:]
	bestWays1, bestTput := 0, 0.0
	for _, res := range tail {
		if res.Ways[1] > bestWays1 {
			bestWays1 = res.Ways[1]
		}
		if res.Throughput > bestTput {
			bestTput = res.Throughput
		}
	}
	if bestWays1 < 2 {
		t.Errorf("flipped thread still starved (%d ways) after phase change", bestWays1)
	}
	offline, err := OfflineReference(cfg, 1, phase2, DefaultModel, 15000, r.Split(3))
	if err != nil {
		t.Fatal(err)
	}
	if bestTput < 0.85*offline {
		t.Errorf("post-change throughput %v < 0.85 × offline %v", bestTput, offline)
	}
}

func TestAdaptiveDeterministicPerSeed(t *testing.T) {
	cfg := Config{Sets: 16, Ways: 4, LineSize: 64}
	gens := []TraceGen{
		WorkingSet{Lines: 40, LineSize: 64, Base: 0},
		ZipfReuse{Lines: 200, S: 1.1, LineSize: 64, Base: 1 << 30},
	}
	run := func() []EpochResult {
		ctrl := NewAdaptive(cfg, 1, DefaultModel, 2)
		out, err := ctrl.Run(gens, 5, 5000, rng.New(104))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for e := range a {
		if a[e].Throughput != b[e].Throughput {
			t.Fatalf("epoch %d diverged across identical seeds", e)
		}
	}
}

func TestAdaptiveRejectsWrongThreadCount(t *testing.T) {
	ctrl := NewAdaptive(Config{Sets: 4, Ways: 2, LineSize: 64}, 1, DefaultModel, 2)
	_, err := ctrl.Epoch([]TraceGen{Stream{LineSize: 64}}, 100, rng.New(1))
	if err == nil {
		t.Error("mismatched generator count accepted")
	}
}

func TestEstimatedProfileShapes(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 8, LineSize: 64}
	ctrl := NewAdaptive(cfg, 1, DefaultModel, 1)
	// No samples: pure optimism, rising to 1.
	p := ctrl.estimatedProfile(0)
	if p.HitRate[0] != 0 || p.HitRate[8] != 1 {
		t.Errorf("optimistic prior malformed: %v", p.HitRate)
	}
	// One sample: flat-ish extrapolation from it.
	ctrl.observe(0, 4, 0.5)
	p = ctrl.estimatedProfile(0)
	if p.HitRate[4] != 0.5 {
		t.Errorf("sample not honored: %v", p.HitRate[4])
	}
	if !p.Monotone() {
		t.Errorf("estimate not monotone: %v", p.HitRate)
	}
	// Saturating samples: extrapolation must flatten.
	ctrl.observe(0, 6, 0.5)
	p = ctrl.estimatedProfile(0)
	if p.HitRate[8] > 0.5+1e-9 {
		t.Errorf("extrapolation should be flat after saturation: %v", p.HitRate)
	}
}

func TestObserveEWMA(t *testing.T) {
	ctrl := NewAdaptive(Config{Sets: 4, Ways: 4, LineSize: 64}, 1, DefaultModel, 1)
	ctrl.observe(0, 2, 1.0)
	ctrl.observe(0, 2, 0.0)
	if got := ctrl.est[0][2].value; got != 0.5 {
		t.Errorf("EWMA = %v, want 0.5 with alpha 0.5", got)
	}
	// Zero-way observations are uninformative and must be discarded.
	ctrl.observe(0, 0, 0.9)
	if _, ok := ctrl.est[0][0]; ok {
		t.Error("zero-way sample recorded")
	}
}

func TestForgettingRestoresOptimism(t *testing.T) {
	ctrl := NewAdaptive(Config{Sets: 4, Ways: 8, LineSize: 64}, 1, DefaultModel, 1)
	ctrl.Forget = 3
	ctrl.observe(0, 4, 0.0) // looks hopeless
	p := ctrl.estimatedProfile(0)
	if p.HitRate[8] > 0.1 {
		t.Errorf("fresh hopeless sample should flatten the curve: %v", p.HitRate)
	}
	ctrl.epoch += 3 // sample expires
	p = ctrl.estimatedProfile(0)
	if p.HitRate[8] < 0.9 {
		t.Errorf("expired samples should restore the optimistic prior: %v", p.HitRate)
	}
}
