// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used by the paper's workload
// generator (IPDPS'16 §VII): uniform, normal, power law and two-point
// discrete, plus a few extras used by the application substrates.
//
// The generator is xoshiro256** seeded through SplitMix64. Each Rand is a
// plain value with no global or shared state, so experiments can derive an
// independent stream per trial (see Split) and produce bit-identical
// results regardless of goroutine scheduling or trial ordering.
package rng

import "math"

// Rand is a xoshiro256** generator. The zero value is not valid; construct
// with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, which guarantees
// the internal state is never all-zero.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	return r
}

// splitMix64 advances the SplitMix64 state and returns (next state, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// Split derives a statistically independent generator keyed by id. Two
// Splits of the same parent with different ids produce unrelated streams;
// the parent's own stream is not advanced.
func (r *Rand) Split(id uint64) *Rand {
	// Mix the parent state with the id through SplitMix64.
	h := r.s[0] ^ (r.s[1] << 1) ^ (r.s[2] >> 1) ^ r.s[3]
	_, mixed := splitMix64(h ^ (id * 0x9E3779B97F4A7C15))
	return New(mixed)
}

// SplitPath derives a generator from a hierarchical path of ids, e.g.
// base.SplitPath(point, trial) for trial number `trial` of sweep point
// `point`. It is exactly Split applied left to right, packaged so
// callers fanning work out across goroutines can name a stream by its
// coordinates in one call; like Split it leaves the parent untouched.
func (r *Rand) SplitPath(ids ...uint64) *Rand {
	out := r
	for _, id := range ids {
		out = out.Split(id)
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be faster; a
	// simple rejection loop keeps the implementation obviously unbiased.
	bound := uint64(n)
	threshold := -bound % bound // 2^64 mod n
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normal variate with the given mean and standard
// deviation, using the Marsaglia polar method.
func (r *Rand) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// PositiveNormal returns a normal variate conditioned to be strictly
// positive (rejection sampling), matching the paper's use of normal(1,1)
// draws as nonnegative utility values.
func (r *Rand) PositiveNormal(mean, stddev float64) float64 {
	for {
		v := r.Normal(mean, stddev)
		if v > 0 {
			return v
		}
	}
}

// PowerLaw returns a variate with density proportional to x^(-alpha) on
// [xmin, ∞), alpha > 1, via inverse-transform sampling.
func (r *Rand) PowerLaw(alpha, xmin float64) float64 {
	if alpha <= 1 {
		panic("rng: PowerLaw requires alpha > 1")
	}
	if xmin <= 0 {
		panic("rng: PowerLaw requires xmin > 0")
	}
	u := r.Float64()
	return xmin * math.Pow(1-u, -1/(alpha-1))
}

// Exponential returns an exponential variate with the given rate.
func (r *Rand) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential requires rate > 0")
	}
	return -math.Log(1-r.Float64()) / rate
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Poisson returns a Poisson variate with the given mean. Knuth's
// multiplication method is used for small means and a normal
// approximation (rounded, clamped at 0) for large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// TwoPoint returns lo with probability pLo, else hi — the paper's discrete
// distribution with P(ℓ) = γ and h = θℓ.
func (r *Rand) TwoPoint(lo, hi, pLo float64) float64 {
	if r.Float64() < pLo {
		return lo
	}
	return hi
}

// Zipf returns a value in [1, n] with probability proportional to
// rank^(-s), via inversion on the precomputed CDF-free rejection method of
// Devroye. For repeated sampling with the same parameters prefer NewZipf.
func (r *Rand) Zipf(s float64, n int) int {
	z := NewZipf(s, n)
	return z.Sample(r)
}

// DirichletSplit fills out with a uniform random split of total into
// len(out) nonnegative parts (a flat Dirichlet). The UR/RR heuristics
// use independent-uniform shares instead (see alloc.RandomSplit); this
// exact-simplex split remains available for workloads that need the
// budget fully consumed.
func (r *Rand) DirichletSplit(total float64, out []float64) {
	if len(out) == 0 {
		return
	}
	if len(out) == 1 {
		out[0] = total
		return
	}
	sum := 0.0
	for i := range out {
		out[i] = r.Exponential(1)
		sum += out[i]
	}
	if sum == 0 {
		for i := range out {
			out[i] = total / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] = total * out[i] / sum
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples ranks 1..n with probability proportional to rank^(-s),
// using a precomputed cumulative table and binary search. Suitable for the
// trace generators where n is the number of distinct addresses.
type Zipf struct {
	cdf []float64
	n   int
}

// NewZipf precomputes a Zipf(s) sampler over ranks [1, n].
func NewZipf(s float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: Zipf requires n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, n: n}
}

// Sample draws a rank in [1, n].
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
