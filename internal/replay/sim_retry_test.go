package replay

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPResolveRetriesConnectionRefused flaps a server: the target
// port has no listener when the first attempts land, then comes back up
// mid-backoff (via the sleep hook) on the same port. The post must ride
// out the refused window and succeed without losing the solve.
func TestHTTPResolveRetriesConnectionRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // flap down: connection refused until the hook re-listens

	var got atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"probe":true}` {
			t.Errorf("attempt body = %q; want the original bytes re-sent", body)
		}
		got.Add(1)
		io.WriteString(w, "solved")
	})

	var srv *httptest.Server
	var slept []time.Duration
	p := &httpResolve{addr: addr}
	p.sleep = func(d time.Duration) {
		slept = append(slept, d)
		if len(slept) == 2 { // flap back up on the same port
			l2, err := net.Listen("tcp", addr)
			if err != nil {
				t.Fatalf("re-listen on %s: %v", addr, err)
			}
			srv = &httptest.Server{Listener: l2, Config: &http.Server{Handler: handler}}
			srv.Start()
		}
	}

	resp := p.post([]byte(`{"probe":true}`), "")
	if resp == nil {
		t.Fatal("post gave up despite the server coming back")
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	srv.Close()
	if string(body) != "solved" {
		t.Fatalf("post body = %q", body)
	}
	if got.Load() != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 success", got.Load())
	}
	if len(slept) < 2 || slept[0] != retryBase || slept[1] != 2*retryBase {
		t.Fatalf("backoff waits = %v, want doubling from %v", slept, retryBase)
	}
}

// TestHTTPResolveRetriesBackpressure treats 429/503 as transients: the
// node sheds load twice, then accepts. The same body must arrive on
// every attempt.
func TestHTTPResolveRetriesBackpressure(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != "same-every-time" {
			t.Errorf("attempt %d body = %q", hits.Load(), body)
		}
		switch hits.Add(1) {
		case 1:
			http.Error(w, "queue full", http.StatusTooManyRequests)
		case 2:
			http.Error(w, "draining", http.StatusServiceUnavailable)
		default:
			io.WriteString(w, "ok")
		}
	}))
	defer srv.Close()

	p := &httpResolve{addr: srv.Listener.Addr().String(),
		sleep: func(time.Duration) {}}
	resp := p.post([]byte("same-every-time"), "")
	if resp == nil {
		t.Fatal("post gave up on retryable statuses")
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hits.Load() != 3 {
		t.Fatalf("status %d after %d attempts; want 200 after 3", resp.StatusCode, hits.Load())
	}
}

// TestHTTPResolveGivesUpAfterMaxRetries pins the retry budget and the
// capped doubling schedule when nobody ever answers.
func TestHTTPResolveGivesUpAfterMaxRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var slept []time.Duration
	p := &httpResolve{addr: addr,
		sleep: func(d time.Duration) { slept = append(slept, d) }}
	if resp := p.post([]byte("x"), ""); resp != nil {
		resp.Body.Close()
		t.Fatal("post succeeded against a dead port")
	}
	if len(slept) != retryMax {
		t.Fatalf("slept %d times, want %d", len(slept), retryMax)
	}
	want := retryBase
	for i, d := range slept {
		if d != want {
			t.Fatalf("wait %d = %v, want %v (doubling capped at %v)", i, d, want, retryBackoff)
		}
		if want *= 2; want > retryBackoff {
			want = retryBackoff
		}
	}
}

// TestHTTPResolveNoRetryOnHardStatus: a 400 is a broken request, not a
// transient — it must come straight back without burning the budget.
func TestHTTPResolveNoRetryOnHardStatus(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad instance", http.StatusBadRequest)
	}))
	defer srv.Close()

	p := &httpResolve{addr: srv.Listener.Addr().String(),
		sleep: func(time.Duration) { t.Fatal("slept on a non-retryable status") }}
	resp := p.post([]byte("x"), "")
	if resp == nil {
		t.Fatal("post swallowed the definitive response")
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || hits.Load() != 1 {
		t.Fatalf("status %d after %d attempts; want one 400", resp.StatusCode, hits.Load())
	}
}
