package telemetry

import (
	"strings"
	"testing"
)

// FuzzTraceparent hammers the header parser with malformed inputs. The
// invariants: never panic, never return an invalid SpanContext without
// an error, and every accepted version-00 input must survive a
// re-encode → re-parse round trip.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("")
	f.Add("garbage")
	f.Add(strings.Repeat("-", 55))
	f.Add("00-ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ-00f067aa0ba902b7-01")

	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseTraceparent(s)
		if err != nil {
			if sc != (SpanContext{}) {
				t.Fatalf("error with non-zero context: %+v", sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted %q but context invalid: %+v", s, sc)
		}
		tp := sc.Traceparent()
		back, err := ParseTraceparent(tp)
		if err != nil {
			t.Fatalf("re-parse of own encoding %q failed: %v", tp, err)
		}
		if back != sc {
			t.Fatalf("round trip changed context: %+v != %+v", back, sc)
		}
	})
}
