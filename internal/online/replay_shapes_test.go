package online

// Replay-shaped workloads: the event patterns the trace-driven replay
// simulator (internal/replay) feeds through Simulate — departure-heavy
// drains, the empty-system edge, and failure/recovery of servers that
// hold assigned threads — exercised here against every policy.

import (
	"strings"
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

func allPolicies() []Policy {
	return []Policy{FullResolve{}, Incremental{}, Hybrid{Threshold: 0.83}}
}

// A departure-heavy sequence: a burst of arrivals followed by a long
// drain down to an empty system, with utility accounting staying
// consistent the whole way.
func TestDepartureHeavyDrain(t *testing.T) {
	r := rng.New(21)
	const c, n = 100.0, 24
	var events []Event
	tm := 0.0
	for id := 0; id < n; id++ {
		tm += 0.25
		events = append(events, Event{Time: tm, Kind: Arrive, ID: id, Util: randomUtility(r, c)})
	}
	for id := 0; id < n; id++ {
		tm += 1.5
		events = append(events, Event{Time: tm, Kind: Depart, ID: id})
	}
	for _, p := range allPolicies() {
		var finalSeen int
		hook := func(info EventInfo, s *State) {
			finalSeen = len(s.Threads)
			if err := s.Validate(1e-6); err != nil {
				t.Fatalf("%s: invalid state after event %d: %v", p.Name(), info.Index, err)
			}
		}
		res, err := SimulateOpts(3, c, events, p, Options{Horizon: 1e9, Hook: hook})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.FinalThreads != 0 || finalSeen != 0 {
			t.Errorf("%s: system not drained: final=%d hook=%d", p.Name(), res.FinalThreads, finalSeen)
		}
		if res.UtilityIntegral <= 0 {
			t.Errorf("%s: utility integral %v", p.Name(), res.UtilityIntegral)
		}
	}
}

// The empty-system edge: departures and drifts of unknown threads,
// failures and recoveries with nothing placed, and utility zero
// throughout.
func TestEmptySystemEdge(t *testing.T) {
	events := []Event{
		{Time: 1, Kind: Depart, ID: 7},
		{Time: 2, Kind: Fail, ID: 0},
		{Time: 3, Kind: Drift, ID: 7, Util: utility.Linear{Slope: 1, C: 100}},
		{Time: 4, Kind: Recover, ID: 0},
	}
	for _, p := range allPolicies() {
		res, err := Simulate(2, 100, events, p, 1, 1e9)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.UtilityIntegral != 0 || res.Migrations != 0 || res.FinalThreads != 0 {
			t.Errorf("%s: empty system produced %+v", p.Name(), res)
		}
	}
}

// Failure of a server holding assigned threads: every thread must end
// up off the failed server with the state feasible, and recovery must
// make the server usable again.
func TestFailureEvacuatesAssignedThreads(t *testing.T) {
	r := rng.New(22)
	const c = 100.0
	var events []Event
	for id := 0; id < 9; id++ {
		events = append(events, Event{Time: 1 + float64(id)*0.1, Kind: Arrive, ID: id, Util: randomUtility(r, c)})
	}
	events = append(events,
		Event{Time: 5, Kind: Fail, ID: 1},
		Event{Time: 6, Kind: Arrive, ID: 100, Util: randomUtility(r, c)},
		Event{Time: 9, Kind: Recover, ID: 1},
		Event{Time: 10, Kind: Arrive, ID: 101, Util: randomUtility(r, c)},
	)
	for _, p := range allPolicies() {
		sawDownWindow := false
		hook := func(info EventInfo, s *State) {
			if err := s.Validate(1e-6); err != nil {
				t.Fatalf("%s: invalid state after event %d (%v): %v", p.Name(), info.Index, info.Event.Kind, err)
			}
			if info.Event.Time >= 5 && info.Event.Time < 9 {
				sawDownWindow = true
				if s.ServerUp(1) {
					t.Fatalf("%s: server 1 up during failure window", p.Name())
				}
				if got := s.UpCount(); got != 2 {
					t.Fatalf("%s: UpCount %d during failure, want 2", p.Name(), got)
				}
				for id, pl := range s.Place {
					if pl.Server == 1 {
						t.Fatalf("%s: thread %d still on failed server at t=%v", p.Name(), id, info.Event.Time)
					}
				}
			}
			if info.Event.Kind == Recover {
				if !s.ServerUp(1) || s.UpCount() != 3 {
					t.Fatalf("%s: server 1 not usable after recovery", p.Name())
				}
			}
		}
		res, err := SimulateOpts(3, c, events, p, Options{Horizon: 1e9, Hook: hook})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !sawDownWindow {
			t.Fatalf("%s: hook never saw the failure window", p.Name())
		}
		if res.FinalThreads != 11 {
			t.Errorf("%s: final threads %d, want 11", p.Name(), res.FinalThreads)
		}
		if res.Migrations == 0 {
			t.Errorf("%s: failure caused no migrations", p.Name())
		}
	}
}

// Whole-cluster failure: with every server down, arrivals cannot be
// placed and the simulation must report the infeasibility rather than
// silently continuing.
func TestAllServersDown(t *testing.T) {
	events := []Event{
		{Time: 1, Kind: Fail, ID: 0},
		{Time: 2, Kind: Fail, ID: 1},
		{Time: 3, Kind: Arrive, ID: 0, Util: utility.Linear{Slope: 1, C: 100}},
	}
	for _, p := range allPolicies() {
		_, err := Simulate(2, 100, events, p, 0, 1e9)
		if err == nil {
			t.Errorf("%s: arrival with all servers down succeeded", p.Name())
		}
	}
}

// Invalid failure timelines must be rejected with a useful error.
func TestFailureTimelineValidation(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"bad server", []Event{{Time: 1, Kind: Fail, ID: 9}}, "invalid server"},
		{"double fail", []Event{
			{Time: 1, Kind: Fail, ID: 0},
			{Time: 2, Kind: Fail, ID: 0},
		}, "already down"},
		{"recover while up", []Event{{Time: 1, Kind: Recover, ID: 0}}, "recovered while up"},
	}
	for _, tc := range cases {
		_, err := Simulate(2, 100, tc.events, FullResolve{}, 0, 1e9)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// Loads must be bit-stable across calls on the same state: placement
// decisions compare these float sums, so map-order accumulation would
// make replay nondeterministic (regression test for the sorted-order
// fix).
func TestLoadsDeterministic(t *testing.T) {
	r := rng.New(23)
	s := NewState(4, 100)
	for id := 0; id < 40; id++ {
		s.Threads[id] = randomUtility(r, 100)
		s.Place[id] = Placement{Server: id % 4, Alloc: r.Uniform(0.1, 2.3)}
	}
	first := s.Loads()
	for i := 0; i < 50; i++ {
		again := s.Loads()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("Loads()[%d] changed between calls: %v vs %v", j, first[j], again[j])
			}
		}
	}
}
