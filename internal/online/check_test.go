package online

import (
	"errors"
	"math"
	"testing"

	"aa/internal/check"
	"aa/internal/rng"
	"aa/internal/utility"
)

// Every policy must stay clean under the stricter cap-aware per-event
// check, and enabling it must not change the simulation outcome.
func TestSimulateCheckedCleanOnRandomChurn(t *testing.T) {
	base := rng.New(13)
	policies := []Policy{FullResolve{}, Incremental{}, Hybrid{Threshold: 0.83}}
	for trial := 0; trial < 4; trial++ {
		r := base.Split(uint64(trial))
		events := randomTimeline(r, 100, 30)
		for _, p := range policies {
			plain, err := Simulate(3, 100, events, p, 1.0, 1e9)
			if err != nil {
				t.Fatalf("trial %d, %s: %v", trial, p.Name(), err)
			}
			check.Enable()
			c0, v0 := check.Totals()
			checked, err := Simulate(3, 100, events, p, 1.0, 1e9)
			c1, v1 := check.Totals()
			check.Disable()
			if err != nil {
				t.Fatalf("trial %d, %s checked: %v", trial, p.Name(), err)
			}
			if c1 == c0 {
				t.Fatal("check.Enable did not run per-event checks")
			}
			if v1 != v0 {
				t.Errorf("%s: clean timeline grew aa_check_violations_total by %d", p.Name(), v1-v0)
			}
			// TotalUtility sums over a map, so the integral can differ by
			// ULPs between runs; checking must not change anything else.
			if plain.Migrations != checked.Migrations || plain.FinalThreads != checked.FinalThreads ||
				math.Abs(plain.UtilityIntegral-checked.UtilityIntegral) > 1e-9*(1+math.Abs(plain.UtilityIntegral)) {
				t.Errorf("%s: checking changed the result: %+v != %+v", p.Name(), plain, checked)
			}
		}
	}
}

func TestStateCheckCatchesCapViolation(t *testing.T) {
	s := NewState(2, 100)
	s.Threads[0] = utility.Linear{Slope: 1, C: 30}
	// Past the thread's own cap but within server capacity: invisible to
	// Validate, caught by the cap-aware Check.
	s.Place[0] = Placement{Server: 0, Alloc: 50}
	if err := s.Validate(1e-6); err != nil {
		t.Fatalf("Validate rejected what it historically accepted: %v", err)
	}
	if err := s.Check(check.DefaultEps); !errors.Is(err, check.ErrInfeasible) {
		t.Errorf("Check: got %v, want ErrInfeasible", err)
	}

	s.Place[0] = Placement{Server: 0, Alloc: 30}
	if err := s.Check(check.DefaultEps); err != nil {
		t.Errorf("feasible placement rejected: %v", err)
	}

	if err := NewState(2, 100).Check(check.DefaultEps); err != nil {
		t.Errorf("empty state rejected: %v", err)
	}
}
