package core

import "sort"

// Assign2 is the paper's Algorithm 2: the O(n (log mC)²) algorithm with
// the same α = 2(√2−1) approximation ratio as Algorithm 1 (Theorem VI.1).
//
// It sorts threads by linearized utility g_i(ĉ_i) in nonincreasing order,
// re-sorts the tail (positions m+1..n) by ramp slope g_i(ĉ_i)/ĉ_i in
// nonincreasing order, then serves threads in sequence: each takes
// min(ĉ_i, C_j) from the server j with the most remaining resource,
// maintained in a max-heap.
func Assign2(in *Instance) Assignment {
	so := SuperOptimal(in)
	gs := Linearize(in, so)
	return Assign2Linearized(in, gs)
}

// Assign2Linearized runs Algorithm 2 given precomputed linearized
// utilities, letting callers share one super-optimal computation across
// several algorithms.
func Assign2Linearized(in *Instance, gs []Linearized) Assignment {
	return assign2WithTailOrder(in, gs, TailBySlope)
}

// TailOrder selects how Algorithm 2's line 2 orders threads m+1..n; only
// TailBySlope carries the paper's guarantee, the others exist for the
// ablation study (ext-tail in DESIGN.md).
type TailOrder int

// Tail orderings for the ablation.
const (
	// TailBySlope is the paper's rule: nonincreasing g(ĉ)/ĉ.
	TailBySlope TailOrder = iota
	// TailByUHat skips line 2 entirely (tail stays sorted by g(ĉ)).
	TailByUHat
	// TailByCHatDesc orders by super-optimal allocation, biggest first.
	TailByCHatDesc
)

// Assign2TailOrder runs Algorithm 2 with a pluggable line-2 ordering —
// the ablation knob for quantifying how much the paper's slope re-sort
// contributes.
func Assign2TailOrder(in *Instance, tailOrder TailOrder) Assignment {
	so := SuperOptimal(in)
	gs := Linearize(in, so)
	return assign2WithTailOrder(in, gs, tailOrder)
}

func assign2WithTailOrder(in *Instance, gs []Linearized, tailOrder TailOrder) Assignment {
	w := GetWorkspace()
	defer PutWorkspace(w)
	var out Assignment
	w.assign2(in, gs, tailOrder, &out)
	return out
}

// assign2 is the implementation behind Assign2Linearized and the ablation
// entry points, reusing the workspace's order slice, sorters and server
// heap so steady-state re-solves allocate nothing beyond the caller's out.
func (w *Workspace) assign2(in *Instance, gs []Linearized, tailOrder TailOrder, out *Assignment) {
	if in.N() >= ParallelThreshold() {
		// Huge instances take the chunked-sort + sharded-heap path —
		// byte-identical output, multi-core execution (parallel.go).
		w.assign2Parallel(in, gs, tailOrder, out, false)
		return
	}
	start := stageStart()
	n, m := in.N(), in.M
	out.Reset(n)

	// Line 1: order all threads by g_i(ĉ_i), nonincreasing. The sorters
	// are concrete sort.Interface values held in the workspace —
	// sort.Stable over them visits the same comparison sequence as the
	// sort.SliceStable closure this replaces (both are stable, so the
	// permutation is identical too) without its per-call allocations.
	if cap(w.order) >= n {
		w.order = w.order[:n]
	} else {
		w.order = make([]int, n)
	}
	order := w.order
	for i := range order {
		order[i] = i
	}
	w.byUHat = uhatSorter{order: order, gs: gs}
	sort.Stable(&w.byUHat)
	sortCmps := w.byUHat.cmps
	// Line 2: re-sort the tail (threads m+1..n in that ordering).
	if n > m {
		switch tailOrder {
		case TailBySlope, TailByCHatDesc:
			w.byTail = tailSorter{order: order[m:], gs: gs, byCHat: tailOrder == TailByCHatDesc}
			sort.Stable(&w.byTail)
			sortCmps += w.byTail.cmps
		case TailByUHat:
			// Keep the line-1 ordering.
		}
	}

	// Lines 3–4: max-heap of residual server capacities.
	w.h2.reset(m, in.C)
	h := &w.h2

	// Lines 5–10: serve threads in order from the fullest server.
	for _, i := range order {
		srv := h.peek()
		amount := gs[i].CHat
		if amount > srv.residual {
			amount = srv.residual
		}
		out.Server[i] = srv.id
		out.Alloc[i] = amount
		h.updateTop(srv.residual - amount)
	}
	if !start.IsZero() {
		metricAssign2Calls.Inc()
		metricAssign2SortCmps.Add(sortCmps)
		// n updateTop calls plus every sift-down swap they performed.
		metricAssign2HeapOps.Add(uint64(n) + uint64(h.swaps))
		stageEnd(start, metricAssign2Seconds, "core.assign2", w.span, n)
	}
}

// serverHeap is a binary max-heap over server residual capacities.
type serverEntry struct {
	id       int
	residual float64
}

type serverHeap struct {
	entries []serverEntry
	swaps   int // sift-down swaps, for the heap-operations telemetry
}

// newServerHeap builds a heap of m servers, all with residual c. All keys
// equal means any order is a valid heap.
func newServerHeap(m int, c float64) *serverHeap {
	h := &serverHeap{}
	h.reset(m, c)
	return h
}

// reset refills the heap with m servers at residual c, reusing the entry
// array when it is large enough.
func (h *serverHeap) reset(m int, c float64) {
	if cap(h.entries) >= m {
		h.entries = h.entries[:m]
	} else {
		h.entries = make([]serverEntry, m)
	}
	for j := range h.entries {
		h.entries[j] = serverEntry{id: j, residual: c}
	}
	h.swaps = 0
}

// peek returns the server with the most remaining resource.
func (h *serverHeap) peek() serverEntry { return h.entries[0] }

func (h *serverHeap) swapCount() int { return h.swaps }

// updateTop replaces the top's residual and restores the heap property.
func (h *serverHeap) updateTop(newResidual float64) {
	h.entries[0].residual = newResidual
	n := len(h.entries)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.entries[l].residual > h.entries[largest].residual {
			largest = l
		}
		if r < n && h.entries[r].residual > h.entries[largest].residual {
			largest = r
		}
		if largest == i {
			return
		}
		h.entries[i], h.entries[largest] = h.entries[largest], h.entries[i]
		h.swaps++
		i = largest
	}
}
