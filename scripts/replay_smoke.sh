#!/usr/bin/env bash
# replay_smoke.sh — the deterministic-replay CI gate.
#
# Builds aareplay and runs the diurnal and flash scenario families twice
# each with the same seed and -canonical (wall-clock section stripped),
# then byte-compares the two reports: any difference means the replay
# pipeline leaked nondeterminism (map-order float accumulation, unkeyed
# randomness, wall-clock in the canonical report) and fails the gate.
# A recorded-trace round trip rides along as a third family.
#
# Environment knobs:
#   SEED      replay seed (default 1)
#   OUT_DIR   keep the reports here for CI artifact upload
#             (default: a temp dir removed at exit)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-1}"

tmpdir="$(mktemp -d)"
cleanup() {
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

out_dir="${OUT_DIR:-$tmpdir/reports}"
mkdir -p "$out_dir"

go build -o "$tmpdir/aareplay" ./cmd/aareplay

run_twice() {
    local name="$1"; shift
    echo "replay_smoke: $name (seed=$SEED) ..."
    "$tmpdir/aareplay" "$@" -seed "$SEED" -canonical -out "$out_dir/$name.a.json" \
        -csv "$out_dir/$name.a.csv"
    "$tmpdir/aareplay" "$@" -seed "$SEED" -canonical -out "$out_dir/$name.b.json" \
        -csv "$out_dir/$name.b.csv"
    if ! cmp -s "$out_dir/$name.a.json" "$out_dir/$name.b.json"; then
        echo "replay_smoke: FAIL: $name reports differ between same-seed runs" >&2
        diff "$out_dir/$name.a.json" "$out_dir/$name.b.json" | head -20 >&2 || true
        exit 1
    fi
    if ! cmp -s "$out_dir/$name.a.csv" "$out_dir/$name.b.csv"; then
        echo "replay_smoke: FAIL: $name trajectories differ between same-seed runs" >&2
        exit 1
    fi
}

run_twice diurnal -scenario diurnal
run_twice flash -scenario flash
run_twice failures -scenario failures

# Recorded-trace determinism: the same envelope must replay identically.
cat >"$tmpdir/recorded.json" <<'EOF'
{
  "name": "smoke-recorded", "servers": 3, "capacity": 100, "gridPoints": 16,
  "events": [
    {"t": 1, "kind": "arrive", "id": 0, "v": 4, "w": 2},
    {"t": 2, "kind": "arrive", "id": 1, "v": 3, "w": 1},
    {"t": 3, "kind": "arrive", "id": 2, "v": 5, "w": 3},
    {"t": 4, "kind": "fail", "id": 1},
    {"t": 5, "kind": "drift", "id": 0, "v": 2, "w": 2},
    {"t": 7, "kind": "recover", "id": 1},
    {"t": 9, "kind": "depart", "id": 2}
  ]
}
EOF
run_twice recorded -trace "$tmpdir/recorded.json"

echo "replay_smoke: OK (reports in $out_dir)"
