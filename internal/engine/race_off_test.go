//go:build !race

package engine

// raceEnabled reports whether the race detector is compiled in; the
// zero-alloc pins skip under it because its instrumentation allocates.
const raceEnabled = false
