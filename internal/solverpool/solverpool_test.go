package solverpool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

// testInstance draws a reproducible instance with n threads.
func testInstance(t testing.TB, n int, seed uint64) *core.Instance {
	t.Helper()
	in, err := gen.Instance(gen.DefaultUniform, 8, 1000, n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveMatchesAssign2(t *testing.T) {
	p := New(Options{Workers: 4})
	defer p.Close()
	for seed := uint64(1); seed <= 5; seed++ {
		in := testInstance(t, 40, seed)
		got, err := p.Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		want := core.Assign2(in)
		if got.Utility(in) != want.Utility(in) {
			t.Errorf("seed %d: pool utility %v != Assign2 %v", seed, got.Utility(in), want.Utility(in))
		}
		for i := range want.Server {
			if got.Server[i] != want.Server[i] || got.Alloc[i] != want.Alloc[i] {
				t.Fatalf("seed %d thread %d: pool (%d, %v) != Assign2 (%d, %v)",
					seed, i, got.Server[i], got.Alloc[i], want.Server[i], want.Alloc[i])
			}
		}
	}
}

func TestSolveBatchOrderAndDeterminism(t *testing.T) {
	p := New(Options{Workers: 8})
	defer p.Close()
	ins := make([]*core.Instance, 30)
	for i := range ins {
		ins[i] = testInstance(t, 10+i, uint64(i)+1)
	}
	a, err := p.SolveBatch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SolveBatch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(ins) {
		t.Fatalf("got %d assignments, want %d", len(a), len(ins))
	}
	for i := range ins {
		want := core.Assign2(ins[i])
		if a[i].Utility(ins[i]) != want.Utility(ins[i]) {
			t.Errorf("instance %d: batch utility %v != serial %v",
				i, a[i].Utility(ins[i]), want.Utility(ins[i]))
		}
		if a[i].Utility(ins[i]) != b[i].Utility(ins[i]) {
			t.Errorf("instance %d: two batch runs disagree", i)
		}
	}
}

func TestSolveBatchEmpty(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	out, err := p.SolveBatch(context.Background(), nil)
	if err != nil || out != nil {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}

func TestSolveBatchPropagatesInstanceError(t *testing.T) {
	p := New(Options{Workers: 2})
	defer p.Close()
	ins := []*core.Instance{
		testInstance(t, 10, 1),
		{M: 0, C: 100}, // invalid: no servers, no threads
		testInstance(t, 10, 2),
	}
	if _, err := p.SolveBatch(context.Background(), ins); err == nil {
		t.Fatal("invalid instance did not fail the batch")
	}
}

func TestSolveBatchCancelledPromptly(t *testing.T) {
	p := New(Options{Workers: 2, QueueDepth: 2})
	defer p.Close()
	// Large instances so workers are busy well past the cancellation.
	ins := make([]*core.Instance, 64)
	for i := range ins {
		ins[i] = testInstance(t, 4000, uint64(i)+1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.SolveBatch(ctx, ins)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("SolveBatch took %v to notice cancellation", elapsed)
	}
}

func TestSolveRespectsDeadline(t *testing.T) {
	p := New(Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	in := testInstance(t, 8000, 1)
	_, err := p.Solve(ctx, in)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	p := New(Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	release := make(chan struct{})
	var done sync.WaitGroup
	block := func(context.Context) error { <-release; return nil }
	// Fill the single worker and the single queue slot.
	done.Add(1)
	if err := p.Submit(context.Background(), func(ctx context.Context) error {
		defer done.Done()
		return block(ctx)
	}); err != nil {
		t.Fatal(err)
	}
	// The worker may not have picked the first job up yet; keep feeding
	// until the queue slot is occupied for sure.
	var queued int
	for i := 0; i < 100; i++ {
		err := p.Submit(context.Background(), func(ctx context.Context) error { return block(ctx) })
		if err == nil {
			queued++
			continue
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("err = %v, want ErrQueueFull", err)
		}
		break
	}
	if queued > 2 {
		t.Fatalf("queue of depth 1 accepted %d waiting jobs", queued)
	}
	st := p.Snapshot()
	if st.Rejected == 0 {
		t.Error("no rejections recorded under backpressure")
	}
	close(release)
	done.Wait()
}

func TestEnqueueBlocksUntilCancelled(t *testing.T) {
	p := New(Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	release := make(chan struct{})
	defer close(release)
	for i := 0; i < 2; i++ { // occupy worker + queue slot
		if err := p.Enqueue(context.Background(), func(context.Context) error {
			<-release
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := p.Enqueue(ctx, func(context.Context) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestClosedPoolRejects(t *testing.T) {
	p := New(Options{Workers: 1})
	p.Close()
	p.Close() // double close is a no-op
	if err := p.Submit(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: %v, want ErrClosed", err)
	}
	if err := p.Enqueue(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Enqueue after Close: %v, want ErrClosed", err)
	}
	if _, err := p.Solve(context.Background(), testInstance(t, 5, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Solve after Close: %v, want ErrClosed", err)
	}
}

func TestSnapshotCounts(t *testing.T) {
	p := New(Options{Workers: 4})
	ins := make([]*core.Instance, 20)
	for i := range ins {
		ins[i] = testInstance(t, 12, uint64(i)+1)
	}
	if _, err := p.SolveBatch(context.Background(), ins); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := p.Enqueue(context.Background(), func(context.Context) error { return boom }); err != nil {
		t.Fatal(err)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	// Dead-on-arrival submissions are rejected before they reach the queue.
	if err := p.Submit(cctx, func(context.Context) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with dead ctx: %v", err)
	}
	p.Close() // drains the queue
	st := p.Snapshot()
	if st.Workers != 4 || st.QueueDepth != 8 {
		t.Errorf("workers/queue = %d/%d, want 4/8", st.Workers, st.QueueDepth)
	}
	if st.Submitted != 21 {
		t.Errorf("submitted = %d, want 21", st.Submitted)
	}
	if st.Completed != 20 {
		t.Errorf("completed = %d, want 20", st.Completed)
	}
	if st.Failed != 1 {
		t.Errorf("failed = %d, want 1", st.Failed)
	}
	if st.Completed+st.Cancelled+st.Failed != st.Submitted {
		t.Errorf("counters do not add up: %+v", st)
	}
	if st.SolveTime <= 0 {
		t.Errorf("solve time = %v, want > 0", st.SolveTime)
	}
	if s := st.String(); s == "" {
		t.Error("empty stats string")
	}
}

func TestCancelledWhileQueuedCountsCancelled(t *testing.T) {
	p := New(Options{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	if err := p.Enqueue(context.Background(), func(context.Context) error {
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	solved := false
	if err := p.Enqueue(ctx, func(tctx context.Context) error {
		if err := tctx.Err(); err != nil {
			return err
		}
		solved = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	cancel() // dies while queued behind the blocker
	close(release)
	p.Close()
	if solved {
		t.Error("queued task did real work after its context was cancelled")
	}
	if st := p.Snapshot(); st.Cancelled != 1 {
		t.Errorf("cancelled = %d, want 1 (%+v)", st.Cancelled, st)
	}
}

func TestSolveInstanceValidates(t *testing.T) {
	if _, err := SolveInstance(context.Background(), &core.Instance{M: 0, C: 1}); err == nil {
		t.Error("invalid instance accepted")
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := testInstance(t, 10, 1)
	if _, err := SolveInstance(cctx, in); !errors.Is(err, context.Canceled) {
		t.Errorf("dead ctx: %v, want context.Canceled", err)
	}
}

func TestConcurrentSubmittersRaceClean(t *testing.T) {
	p := New(Options{Workers: 4, QueueDepth: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := testInstance(t, 20, uint64(g)+1)
			for i := 0; i < 10; i++ {
				if _, err := p.Solve(context.Background(), in); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				_ = p.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	if st := p.Snapshot(); st.Completed != 80 {
		t.Errorf("completed = %d, want 80", st.Completed)
	}
}

func ExamplePool() {
	p := New(Options{Workers: 2})
	defer p.Close()
	in := &core.Instance{M: 2, C: 100, Threads: nil}
	_, err := p.Solve(context.Background(), in)
	fmt.Println(err != nil) // invalid: no threads
	// Output: true
}
