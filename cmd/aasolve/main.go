// Command aasolve solves one AA instance given as JSON (see
// internal/instio for the format) and prints the assignment.
//
// Usage:
//
//	aasolve [-algo a2|a1|a2p|ls|gm|exact|uu|ur|ru|rr] [-seed 1] [-json]
//	        [-check] [-maxnodes 0] [-metrics-addr host:port]
//	        [-trace-out file.jsonl] [file]
//
// With no file argument the instance is read from stdin. The default
// output is a human-readable table; -json emits machine-readable JSON
// including the super-optimal upper bound. Every solve routes through
// the internal/engine registry — -algo names accept both the short CLI
// aliases above and the registry's canonical names (assign2, polish,
// greedy, ...). Beyond the paper's algorithms, a2p is Algorithm 2 +
// allocation polish and ls is Algorithm 2 + relocation/swap local
// search; gm is the marginal-gain greedy baseline. -metrics-addr serves
// live /metrics, /vars and /debug/pprof while solving; -trace-out
// appends solver-stage span events as JSONL (useful for profiling a
// single large instance). -check (or AA_CHECK=1) verifies the solution
// through the engine's check middleware: strict feasibility for every
// algorithm, plus the α-ratio guarantee for the algorithms that carry
// one (a1, a2, a2p, ls).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"aa/internal/check"
	"aa/internal/cliutil"
	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/instio"
	"aa/internal/tableio"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "aasolve: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aasolve", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "a2", "solver backend: a2, a1, a2p, ls, gm, exact, uu, ur, ru, rr")
		seed     = fs.Uint64("seed", 1, "seed for the randomized heuristics")
		asJSON   = fs.Bool("json", false, "emit the assignment as JSON")
		maxNodes = fs.Int("maxnodes", 0, "node limit for -algo exact (0 = default)")
	)
	var common cliutil.Common
	common.AddFlags(fs)
	if err := cliutil.Parse(fs, args, stderr); err != nil {
		if errors.Is(err, cliutil.ErrHelp) {
			return nil
		}
		return err
	}
	shutdown, err := common.Start("aasolve", stderr)
	if err != nil {
		return err
	}
	defer shutdown()

	var src io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	in, err := instio.Decode(src)
	if err != nil {
		return err
	}

	req := engine.Request{
		Instance:    in,
		Backend:     *algo,
		Seed:        *seed,
		MaxNodes:    *maxNodes,
		WantUtility: true,
		Check:       common.Check,
	}
	resp, err := engine.Default().Solve(context.Background(), &req)
	if err != nil {
		return err
	}
	a := resp.Assignment

	if common.Check {
		// The engine's check middleware already enforced feasibility and
		// the ratio bounds; recompute the report here only for display.
		var rep check.RatioReport
		if !math.IsNaN(resp.Bound) {
			rep = check.RatioAgainst(resp.Bound, in, a)
		} else {
			rep = check.Ratio(in, a)
		}
		fmt.Fprintf(stderr, "aasolve: check ok: feasible, F/F̂ = %.4f\n", rep.Ratio)
	}

	if *asJSON {
		return instio.EncodeAssignment(stdout, in, a)
	}

	so := core.SuperOptimal(in)
	u := resp.Utility
	t := tableio.New(
		fmt.Sprintf("%s on n=%d threads, m=%d servers, C=%g", *algo, in.N(), in.M, in.C),
		"thread", "server", "alloc", "utility")
	for i := range in.Threads {
		t.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", a.Server[i]),
			fmt.Sprintf("%.3f", a.Alloc[i]),
			fmt.Sprintf("%.4f", in.Threads[i].Value(a.Alloc[i])),
		)
	}
	if err := t.WriteASCII(stdout); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "total utility      %.4f\n", u)
	fmt.Fprintf(stdout, "super-optimal F̂    %.4f\n", so.Total)
	if so.Total > 0 {
		fmt.Fprintf(stdout, "fraction of bound  %.4f (guarantee: >= %.4f for a1/a2)\n",
			u/so.Total, core.Alpha)
	}
	return nil
}
