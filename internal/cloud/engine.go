package cloud

import (
	"context"
	"fmt"

	"aa/internal/core"
	"aa/internal/engine"
)

// The cloud backend translates a Fleet into an AA instance and then
// rides the stock assign2 handler, so fleet solves get the pooled
// workspace, telemetry, checks and cancellation of the shared pipeline.
// Registered at package init; any import of cloud makes "cloud" a
// routable engine backend.
func init() {
	a2, ok := engine.Lookup("assign2")
	if !ok {
		panic("cloud: assign2 backend not registered")
	}
	engine.Register(engine.Backend{
		Name:       "cloud",
		Doc:        "provider-revenue Algorithm 2 over a cloud fleet (request Payload: *cloud.Fleet)",
		Guaranteed: true,
		Handle: func(ctx context.Context, req *engine.Request, resp *engine.Response) error {
			f, ok := req.Payload.(*Fleet)
			if !ok {
				return fmt.Errorf("%w: cloud backend needs Payload of type *cloud.Fleet", engine.ErrBadRequest)
			}
			in, err := f.Instance()
			if err != nil {
				return fmt.Errorf("%w: %v", engine.ErrBadRequest, err)
			}
			req.Instance = in
			return a2.Handle(ctx, req, resp)
		},
	})
}

// SolveRevenue runs the paper's Algorithm 2 on the fleet through the
// engine pipeline and returns the provider revenue (= total utility)
// and the assignment: VMs are sized per-customer instead of snapped to
// tiers.
func SolveRevenue(f *Fleet) (float64, core.Assignment, error) {
	var resp engine.Response
	req := engine.Request{Backend: "cloud", Payload: f, WantUtility: true}
	if err := engine.Default().SolveInto(context.Background(), &req, &resp); err != nil {
		return 0, core.Assignment{}, err
	}
	return resp.Utility, resp.Assignment, nil
}
