package online

import (
	"context"
	"errors"
	"testing"

	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/rng"
	"aa/internal/utility"
)

// TestEngineBackendMatchesDirect pins the online adapter: it solves the
// state's active set (ascending id order) exactly as assign2 on a
// hand-built snapshot, without touching placements.
func TestEngineBackendMatchesDirect(t *testing.T) {
	s := NewState(3, 100)
	r := rng.New(13)
	for id := 0; id < 12; id++ {
		s.Threads[id] = randomUtility(r, 100)
	}
	threads := make([]utility.Func, 0, 12)
	for id := 0; id < 12; id++ {
		threads = append(threads, s.Threads[id])
	}
	want := core.Assign2(&core.Instance{M: 3, C: 100, Threads: threads})

	resp, err := engine.New(engine.Options{}).Solve(context.Background(),
		&engine.Request{Backend: "online", Payload: s})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Server {
		if resp.Assignment.Server[i] != want.Server[i] || resp.Assignment.Alloc[i] != want.Alloc[i] {
			t.Fatalf("thread %d: got (%d, %v), want (%d, %v)",
				i, resp.Assignment.Server[i], resp.Assignment.Alloc[i], want.Server[i], want.Alloc[i])
		}
	}
	if len(s.Place) != 0 {
		t.Fatal("engine solve must not touch placements")
	}

	if _, err := engine.New(engine.Options{}).Solve(context.Background(),
		&engine.Request{Backend: "online", Payload: NewState(2, 10)}); !errors.Is(err, engine.ErrBadRequest) {
		t.Fatalf("empty state returned %v, want ErrBadRequest", err)
	}
}
