//go:build race

package solverpool

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation assertions are skipped under it (instrumentation
// allocates).
const raceEnabled = true
