package multires

import (
	"context"
	"errors"
	"testing"

	"aa/internal/engine"
	"aa/internal/utility"
)

func engineTestInstance() *Instance {
	mk := func(scale, beta, c float64, w ...float64) Thread {
		return Thread{G: utility.Power{Scale: scale, Beta: beta, C: c}, W: w}
	}
	return &Instance{
		M:   2,
		Cap: []float64{16, 64},
		Threads: []Thread{
			mk(1.0, 0.6, 8, 1, 4),
			mk(0.8, 0.5, 8, 2, 2),
			mk(1.2, 0.7, 8, 1, 8),
			mk(0.5, 0.4, 8, 1, 1),
		},
	}
}

// TestEngineBackendMatchesDirect pins the multires adapter against the
// direct Assign call, bundles riding in Response.Assignment.Alloc.
func TestEngineBackendMatchesDirect(t *testing.T) {
	in := engineTestInstance()
	const unit = 0.25
	want := Assign(in, unit)
	resp, err := engine.New(engine.Options{}).Solve(context.Background(),
		&engine.Request{Backend: "multires", Payload: SolveSpec{In: in, Unit: unit}, WantUtility: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Server {
		if resp.Assignment.Server[i] != want.Server[i] || resp.Assignment.Alloc[i] != want.Bundles[i] {
			t.Fatalf("thread %d: got (%d, %v), want (%d, %v)",
				i, resp.Assignment.Server[i], resp.Assignment.Alloc[i], want.Server[i], want.Bundles[i])
		}
	}
	if wantU := want.Utility(in); resp.Utility != wantU {
		t.Fatalf("utility %v, want %v", resp.Utility, wantU)
	}

	for _, bad := range []any{nil, in, SolveSpec{In: in, Unit: 0}, SolveSpec{Unit: 0.25}} {
		if _, err := engine.New(engine.Options{}).Solve(context.Background(),
			&engine.Request{Backend: "multires", Payload: bad}); !errors.Is(err, engine.ErrBadRequest) {
			t.Fatalf("payload %v returned %v, want ErrBadRequest", bad, err)
		}
	}
}
