// Package ratelimit is the relay tier's admission-control primitive: a
// classic token bucket plus a keyed per-client limiter built on it.
//
// A Bucket holds up to Burst tokens and refills continuously at Rate
// tokens per second. Take removes one token if available; otherwise it
// reports how long the caller must wait before the same Take could
// succeed — the number an HTTP front end turns into a Retry-After
// header. The refill is computed lazily from the elapsed time on each
// operation, so an idle bucket costs nothing.
//
// Invariants (pinned by the property tests in this package):
//
//   - tokens never go negative, even under concurrent Take,
//   - tokens never exceed Burst (the burst ceiling),
//   - with no intervening Take, the token level is non-decreasing in
//     time (refill monotonicity).
//
// A Limiter maintains one bucket per client key (the relay keys on the
// client IP) with bounded memory: idle buckets are swept once the
// client map grows past its cap, full buckets being dropped first —
// dropping a full bucket is lossless, since a fresh bucket starts full.
package ratelimit

import (
	"math"
	"sync"
	"time"
)

// Bucket is a token bucket: capacity Burst, continuous refill at Rate
// tokens per second. Safe for concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity; also the initial level
	tokens float64
	last   time.Time

	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewBucket returns a full bucket refilling at rate tokens/second with
// capacity burst. rate and burst must be positive; non-positive values
// are clamped to a minimal working bucket (1 token/s, burst 1) so a
// misconfigured limiter degrades to "very strict", never to a panic or
// an unlimited pass.
func NewBucket(rate, burst float64) *Bucket {
	if rate <= 0 || math.IsNaN(rate) {
		rate = 1
	}
	if burst <= 0 || math.IsNaN(burst) {
		burst = 1
	}
	b := &Bucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// refill advances the token level to the current instant. Caller holds
// b.mu. A non-monotonic clock step (t before b.last) is ignored rather
// than refunded or charged.
func (b *Bucket) refill() {
	t := b.now()
	if dt := t.Sub(b.last); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*dt.Seconds())
	}
	b.last = t
}

// Take removes one token. When the bucket is empty it leaves the level
// untouched and returns false with the duration after which one token
// will have refilled — the Retry-After hint. A successful Take returns
// (true, 0).
func (b *Bucket) Take() (bool, time.Duration) { return b.TakeN(1) }

// TakeN removes n tokens atomically (all or nothing). n larger than the
// burst capacity can never succeed; the returned wait is then the time
// to refill the full deficit, which at least tells the caller how far
// out of range the request was.
func (b *Bucket) TakeN(n float64) (bool, time.Duration) {
	if n <= 0 || math.IsNaN(n) {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	wait := time.Duration(deficit / b.rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Nanosecond
	}
	return false, wait
}

// Tokens reports the current level after refill. Tests use it to pin
// the bucket invariants; the relay's /nodes status surfaces it.
func (b *Bucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	return b.tokens
}

// setNow installs a fake clock (tests only) and resets the refill
// anchor so the first interval is measured on the new clock.
func (b *Bucket) setNow(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	b.last = now()
}

// DefaultMaxClients bounds a Limiter's client map when the option is
// left zero.
const DefaultMaxClients = 4096

// Limiter hands out one Bucket per client key. Safe for concurrent use.
type Limiter struct {
	rate, burst float64
	maxClients  int

	mu      sync.Mutex
	clients map[string]*clientBucket

	// now is the clock used for sweep decisions and new buckets.
	now func() time.Time
}

// clientBucket pairs a bucket with its last-use instant for sweeping.
type clientBucket struct {
	b        *Bucket
	lastUsed time.Time
}

// NewLimiter builds a per-client limiter: every distinct key gets a
// bucket of the given rate and burst. maxClients bounds the client map
// (<= 0 means DefaultMaxClients); when the map is full, idle-and-full
// buckets are swept, and as a last resort the least recently used
// client is evicted — indistinguishable from its bucket having
// refilled, except for clients holding a drained bucket, who get a
// fresh burst early. That bias is the price of bounded memory and is
// acceptable for admission control (it never blocks a well-behaved
// client).
func NewLimiter(rate, burst float64, maxClients int) *Limiter {
	if maxClients <= 0 {
		maxClients = DefaultMaxClients
	}
	return &Limiter{
		rate: rate, burst: burst, maxClients: maxClients,
		clients: make(map[string]*clientBucket),
		now:     time.Now,
	}
}

// Take removes one token from key's bucket, creating it on first use.
// The false return carries the Retry-After hint, exactly like
// Bucket.Take.
func (l *Limiter) Take(key string) (bool, time.Duration) {
	l.mu.Lock()
	cb, ok := l.clients[key]
	if !ok {
		if len(l.clients) >= l.maxClients {
			l.sweepLocked()
		}
		b := NewBucket(l.rate, l.burst)
		b.setNow(l.now)
		cb = &clientBucket{b: b}
		l.clients[key] = cb
	}
	cb.lastUsed = l.now()
	l.mu.Unlock()
	return cb.b.Take()
}

// Len reports the number of tracked clients.
func (l *Limiter) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}

// sweepLocked frees map slots: first every bucket that has refilled to
// capacity (dropping those is lossless — a fresh bucket starts full),
// then, if nothing qualified, the least recently used client. Caller
// holds l.mu.
func (l *Limiter) sweepLocked() {
	var (
		lruKey  string
		lruTime time.Time
		dropped bool
	)
	for key, cb := range l.clients {
		if cb.b.Tokens() >= l.burst || (l.burst <= 0 && cb.b.Tokens() >= 1) {
			delete(l.clients, key)
			dropped = true
			continue
		}
		if lruKey == "" || cb.lastUsed.Before(lruTime) {
			lruKey, lruTime = key, cb.lastUsed
		}
	}
	if !dropped && lruKey != "" {
		delete(l.clients, lruKey)
	}
}
