package experiment

import (
	"context"
	"fmt"
	"time"

	"aa/internal/engine"
	"aa/internal/gen"
	"aa/internal/rng"
	"aa/internal/tableio"
)

// RuntimeTable measures Algorithm 2's end-to-end wall time (super-optimal
// allocation + linearization + assignment) across a grid of thread
// counts and capacities, averaged over reps runs — the empirical
// counterpart of the paper's O(n (log mC)²) bound and its in-text
// "0.02 s at n=100, m=8, C=1000" remark (ext-runtime in DESIGN.md).
func RuntimeTable(seed uint64, reps int) (*tableio.Table, error) {
	if reps < 1 {
		return nil, fmt.Errorf("experiment: %d reps", reps)
	}
	ns := []int{100, 400, 1600, 6400}
	cs := []float64{1000, 1e6}
	t := tableio.New(
		fmt.Sprintf("ext-runtime: Algorithm 2 wall time, m=8, mean of %d runs", reps),
		"n", "C", "time", "us/thread")
	base := rng.New(seed)
	// Timed through the engine's zero-alloc path (one reused response),
	// the same pipeline every production solve rides; the benchmark gate
	// holds its overhead under 5% of a raw session solve.
	eng := engine.Default()
	ctx := context.Background()
	var resp engine.Response
	for _, c := range cs {
		for _, n := range ns {
			in, err := gen.Instance(gen.DefaultUniform, 8, c, n, base.Split(uint64(n)+uint64(c)))
			if err != nil {
				return nil, err
			}
			req := engine.Request{Instance: in}
			// Warm once, then time.
			if err := eng.SolveInto(ctx, &req, &resp); err != nil {
				return nil, err
			}
			start := time.Now()
			for rep := 0; rep < reps; rep++ {
				if err := eng.SolveInto(ctx, &req, &resp); err != nil {
					return nil, err
				}
			}
			mean := time.Since(start) / time.Duration(reps)
			t.AddRow(
				fmt.Sprintf("%d", n),
				tableio.FormatFloat(c, 0),
				mean.Round(time.Microsecond).String(),
				fmt.Sprintf("%.1f", float64(mean.Microseconds())/float64(n)),
			)
		}
	}
	return t, nil
}
