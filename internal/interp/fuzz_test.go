package interp

import (
	"math"
	"testing"
)

// FuzzPCHIPMonotone feeds arbitrary nondecreasing data (built from
// absolute increments) and asserts the interpolant never decreases,
// never overshoots the data range, and reproduces the knots. Run with
// `go test -fuzz FuzzPCHIPMonotone ./internal/interp` to explore; the
// seed corpus runs in normal `go test`.
func FuzzPCHIPMonotone(f *testing.F) {
	f.Add(1.0, 0.5, 2.0, 0.0, 3.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(10.0, 1e-9, 5.0, 1e6, 0.1)
	f.Add(0.25, 0.25, 0.25, 0.25, 0.25)
	f.Fuzz(func(t *testing.T, a, b, c, d, e float64) {
		incs := [5]float64{a, b, c, d, e}
		xs := make([]float64, 6)
		ys := make([]float64, 6)
		for i := 1; i < 6; i++ {
			inc := math.Abs(incs[i-1])
			if math.IsNaN(inc) || math.IsInf(inc, 0) || inc > 1e9 {
				t.Skip()
			}
			xs[i] = xs[i-1] + 1
			ys[i] = ys[i-1] + inc
		}
		p, err := NewPCHIP(xs, ys)
		if err != nil {
			t.Fatalf("valid data rejected: %v", err)
		}
		lo, hi := ys[0], ys[5]
		prev := p.At(0)
		for x := 0.0; x <= 5.0; x += 0.01 {
			v := p.At(x)
			if math.IsNaN(v) {
				t.Fatalf("NaN at %v", x)
			}
			tol := 1e-9 * (1 + math.Abs(prev))
			if v < prev-tol {
				t.Fatalf("decreasing at %v: %v < %v", x, v, prev)
			}
			if v < lo-tol || v > hi+1e-9*(1+hi) {
				t.Fatalf("overshoot at %v: %v outside [%v, %v]", x, v, lo, hi)
			}
			prev = v
		}
		for i, x := range xs {
			if math.Abs(p.At(x)-ys[i]) > 1e-9*(1+math.Abs(ys[i])) {
				t.Fatalf("knot %d not interpolated", i)
			}
		}
	})
}
