package alloc

import "aa/internal/utility"

// DPExact solves the single-server allocation problem exactly on an
// integer grid by dynamic programming: allocations are multiples of
// unit, and dp[b] is the best total utility using b units across the
// threads processed so far. Unlike Concave and Greedy it makes no
// concavity assumption, so it is the ground truth for arbitrary
// (even non-concave) utilities at the chosen granularity.
//
// Runtime O(n·B²) for B = budget/unit grid points; intended for tests
// and small calibrations, not production solving.
func DPExact(fs []utility.Func, budget, unit float64) Result {
	n := len(fs)
	alloc := make([]float64, n)
	if n == 0 || budget <= 0 || unit <= 0 {
		return Result{Alloc: alloc}
	}
	b := int(budget / unit)
	if b < 0 {
		return Result{Alloc: alloc}
	}

	// dp[j] = best utility with j units; choice[i][j] = units given to
	// thread i in the optimum for the first i+1 threads and j units.
	dp := make([]float64, b+1)
	next := make([]float64, b+1)
	choice := make([][]int16, n)

	for i, f := range fs {
		choice[i] = make([]int16, b+1)
		maxUnits := b
		if cap := int(f.Cap() / unit); cap < maxUnits {
			maxUnits = cap
		}
		// Precompute f at grid points.
		vals := make([]float64, maxUnits+1)
		for x := 0; x <= maxUnits; x++ {
			vals[x] = f.Value(float64(x) * unit)
		}
		for j := 0; j <= b; j++ {
			best, bestX := dp[j]+vals[0], 0
			lim := j
			if lim > maxUnits {
				lim = maxUnits
			}
			for x := 1; x <= lim; x++ {
				if v := dp[j-x] + vals[x]; v > best {
					best, bestX = v, x
				}
			}
			next[j] = best
			choice[i][j] = int16(bestX)
		}
		dp, next = next, dp
	}

	// Backtrack.
	j := b
	total := dp[b]
	for i := n - 1; i >= 0; i-- {
		x := int(choice[i][j])
		alloc[i] = float64(x) * unit
		j -= x
	}
	return Result{Alloc: alloc, Total: total}
}
